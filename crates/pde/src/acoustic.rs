//! Linear acoustics: pressure–velocity first-order form.
//!
//! `p_t = -K ∇·u`, `u_t = -∇p / ρ`, with the bulk modulus `K` and density
//! `ρ` stored as per-node parameters (piecewise-smooth media). Four evolved
//! quantities + two parameters — the "small m" workload complementing the
//! 21-quantity elastic benchmark.

use crate::traits::{ExactSolution, LinearPde};

/// Index of the pressure variable.
pub const P: usize = 0;
/// Index of the first velocity component.
pub const U: usize = 1;
/// Number of evolved quantities.
pub const VARS: usize = 4;
/// Parameter slots: density, bulk modulus.
pub const PARAMS: usize = 2;

/// The acoustic wave equation with per-node material parameters.
///
/// ```
/// use aderdg_pde::{Acoustic, LinearPde};
///
/// let pde = Acoustic;
/// let mut q = vec![0.0; pde.num_quantities()];
/// q[aderdg_pde::acoustic::P] = 2.0;
/// Acoustic::set_params(&mut q, 2.0, 8.0); // ρ = 2, K = 8 → c = 2
/// assert_eq!(pde.max_wavespeed(0, &q), 2.0);
/// let mut f = vec![0.0; pde.num_quantities()];
/// pde.flux(0, &q, &mut f); // F_x[u_x] = −p/ρ = −1
/// assert_eq!(f[aderdg_pde::acoustic::U], -1.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Acoustic;

impl Acoustic {
    /// Sound speed `c = sqrt(K / ρ)` from a state's parameters.
    pub fn sound_speed(q: &[f64]) -> f64 {
        (q[VARS + 1] / q[VARS]).sqrt()
    }

    /// Fills the parameter slots of a state vector.
    pub fn set_params(q: &mut [f64], rho: f64, bulk: f64) {
        q[VARS] = rho;
        q[VARS + 1] = bulk;
    }
}

impl LinearPde for Acoustic {
    fn num_vars(&self) -> usize {
        VARS
    }

    fn num_params(&self) -> usize {
        PARAMS
    }

    fn flux(&self, d: usize, q: &[f64], f: &mut [f64]) {
        let rho = q[VARS];
        let bulk = q[VARS + 1];
        f.fill(0.0);
        // Q_t = ∇·F: F_d[p] = -K u_d, F_d[u_d] = -p/ρ.
        f[P] = -bulk * q[U + d];
        f[U + d] = -q[P] / rho;
    }

    fn flux_vect(&self, d: usize, q: &[f64], f: &mut [f64], len: usize, stride: usize) {
        // Vectorized user function (Fig. 8). Density can be zero in the
        // padding lanes (Sec. V-C's division-by-zero caveat), so the
        // reciprocal runs over the unpadded length only.
        const MAX_LANES: usize = 64;
        assert!(stride <= MAX_LANES, "x-line too long for the lane buffer");
        let mut inv_rho = [0.0f64; MAX_LANES];
        for i in 0..len {
            inv_rho[i] = 1.0 / q[VARS * stride + i];
        }
        f.fill(0.0);
        let (pf, rest) = f.split_at_mut(stride);
        let uf = &mut rest[d * stride..(d + 1) * stride];
        let bulk = &q[(VARS + 1) * stride..(VARS + 2) * stride];
        let ud = &q[(U + d) * stride..(U + d + 1) * stride];
        let p = &q[P * stride..stride];
        for i in 0..stride {
            pf[i] = -bulk[i] * ud[i];
            uf[i] = -p[i] * inv_rho[i];
        }
    }

    fn has_vectorized_user_functions(&self) -> bool {
        true
    }

    fn max_wavespeed(&self, _d: usize, q: &[f64]) -> f64 {
        Self::sound_speed(q)
    }

    /// Rigid-wall boundary: the normal velocity flips sign in the ghost
    /// state, pressure and tangential velocities are copied.
    fn reflective_ghost(&self, d: usize, _outward: f64, q: &[f64], ghost: &mut [f64]) {
        ghost.copy_from_slice(q);
        ghost[U + d] = -q[U + d];
    }

    fn flux_flops(&self) -> u64 {
        3 // one multiply, one divide, sign folds
    }
}

/// Exact plane-wave solution of the homogeneous acoustic equations:
/// `p = A sin(2πk (n·x − c t))`, `u = (n/(ρ c)) p`.
///
/// ```
/// use aderdg_pde::{AcousticPlaneWave, ExactSolution};
///
/// let wave = AcousticPlaneWave {
///     direction: [1.0, 0.0, 0.0],
///     amplitude: 1.0,
///     wavenumber: 1.0,
///     rho: 1.0,
///     bulk: 4.0,
/// };
/// assert_eq!(wave.speed(), 2.0);
/// let mut q = [0.0; 4];
/// wave.evaluate([0.25, 0.0, 0.0], 0.0, &mut q); // sin(π/2) = 1 at the crest
/// assert!((q[0] - 1.0).abs() < 1e-12);
/// assert!((q[1] - 0.5).abs() < 1e-12); // u = p/(ρc)
/// ```
#[derive(Debug, Clone)]
pub struct AcousticPlaneWave {
    /// Unit propagation direction.
    pub direction: [f64; 3],
    /// Amplitude of the pressure wave.
    pub amplitude: f64,
    /// Spatial frequency (integer for unit-cube periodicity).
    pub wavenumber: f64,
    /// Density of the (homogeneous) medium.
    pub rho: f64,
    /// Bulk modulus of the medium.
    pub bulk: f64,
}

impl AcousticPlaneWave {
    /// Sound speed of the medium.
    pub fn speed(&self) -> f64 {
        (self.bulk / self.rho).sqrt()
    }
}

impl ExactSolution for AcousticPlaneWave {
    fn evaluate(&self, x: [f64; 3], t: f64, q: &mut [f64]) {
        let n = self.direction;
        let c = self.speed();
        let phase = 2.0
            * std::f64::consts::PI
            * self.wavenumber
            * (n[0] * x[0] + n[1] * x[1] + n[2] * x[2] - c * t);
        let p = self.amplitude * phase.sin();
        q[P] = p;
        let z = 1.0 / (self.rho * c);
        q[U] = n[0] * z * p;
        q[U + 1] = n[1] * z * p;
        q[U + 2] = n[2] * z * p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(p: f64, u: [f64; 3], rho: f64, k: f64) -> Vec<f64> {
        let mut q = vec![0.0; VARS + PARAMS];
        q[P] = p;
        q[U] = u[0];
        q[U + 1] = u[1];
        q[U + 2] = u[2];
        Acoustic::set_params(&mut q, rho, k);
        q
    }

    #[test]
    fn flux_structure() {
        let pde = Acoustic;
        let q = state(2.0, [0.5, -1.0, 0.25], 2.0, 8.0);
        let mut f = vec![0.0; 6];
        pde.flux(0, &q, &mut f);
        assert_eq!(f[P], -8.0 * 0.5);
        assert_eq!(f[U], -1.0);
        assert_eq!(f[U + 1], 0.0);
        pde.flux(2, &q, &mut f);
        assert_eq!(f[P], -8.0 * 0.25);
        assert_eq!(f[U + 2], -1.0);
        // Parameter rows never flux.
        assert_eq!(f[VARS], 0.0);
        assert_eq!(f[VARS + 1], 0.0);
    }

    #[test]
    fn wavespeed_is_sound_speed() {
        let pde = Acoustic;
        let q = state(0.0, [0.0; 3], 2.0, 8.0);
        assert!((pde.max_wavespeed(1, &q) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn vectorized_matches_pointwise_and_handles_padding() {
        let pde = Acoustic;
        let stride = 8;
        let len = 6;
        let m = pde.num_quantities();
        let mut q = vec![0.0; m * stride];
        for i in 0..len {
            q[P * stride + i] = 0.3 * i as f64 - 1.0;
            q[U * stride + i] = 0.1 * i as f64;
            q[(U + 1) * stride + i] = -0.2;
            q[(U + 2) * stride + i] = 0.05 * i as f64;
            q[VARS * stride + i] = 1.0 + 0.1 * i as f64;
            q[(VARS + 1) * stride + i] = 4.0;
        }
        for d in 0..3 {
            let mut fv = vec![f64::NAN; m * stride];
            pde.flux_vect(d, &q, &mut fv, len, stride);
            for i in 0..len {
                let qi: Vec<f64> = (0..m).map(|s| q[s * stride + i]).collect();
                let mut fi = vec![0.0; m];
                pde.flux(d, &qi, &mut fi);
                for s in 0..m {
                    assert!(
                        (fv[s * stride + i] - fi[s]).abs() < 1e-14,
                        "d={d} s={s} i={i}"
                    );
                }
            }
            // Padding lanes must be finite zeros despite rho = 0 there.
            for s in 0..m {
                for i in len..stride {
                    assert_eq!(fv[s * stride + i], 0.0, "padding s={s} i={i}");
                }
            }
        }
    }

    #[test]
    fn plane_wave_satisfies_pde_residual() {
        // Finite-difference check: p_t + K ∇·u ≈ 0 and u_t + ∇p/ρ ≈ 0.
        let w = AcousticPlaneWave {
            direction: [0.6, 0.8, 0.0],
            amplitude: 1.0,
            wavenumber: 1.0,
            rho: 1.3,
            bulk: 2.6,
        };
        let h = 1e-6;
        let x = [0.21, 0.53, 0.7];
        let t = 0.13;
        let eval = |x: [f64; 3], t: f64| {
            let mut q = [0.0; 4];
            w.evaluate(x, t, &mut q);
            q
        };
        let qt: Vec<f64> = (0..4)
            .map(|s| (eval(x, t + h)[s] - eval(x, t - h)[s]) / (2.0 * h))
            .collect();
        let grad = |d: usize| -> Vec<f64> {
            let mut xp = x;
            xp[d] += h;
            let mut xm = x;
            xm[d] -= h;
            (0..4)
                .map(|s| (eval(xp, t)[s] - eval(xm, t)[s]) / (2.0 * h))
                .collect()
        };
        let gx = grad(0);
        let gy = grad(1);
        let gz = grad(2);
        let div_u = gx[U] + gy[U + 1] + gz[U + 2];
        assert!((qt[P] + w.bulk * div_u).abs() < 1e-4, "pressure residual");
        assert!((qt[U] + gx[P] / w.rho).abs() < 1e-4, "ux residual");
        assert!((qt[U + 1] + gy[P] / w.rho).abs() < 1e-4, "uy residual");
        assert!((qt[U + 2] + gz[P] / w.rho).abs() < 1e-4, "uz residual");
    }
}
