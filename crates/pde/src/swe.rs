//! Linearized shallow-water equations over variable bathymetry — a system
//! that genuinely *mixes* the conservative flux and the non-conservative
//! product, exercising the `computeF` and `computeNcp` kernel paths
//! simultaneously (the paper's eq. 1 has both terms).
//!
//! `η_t = −∇·(H(x) u)` (flux, parameter-dependent),
//! `u_t = −g ∇η` (non-conservative product).
//!
//! Four evolved quantities (η, u, v, w) and two parameters (depth `H`,
//! gravity `g`).

use crate::traits::{ExactSolution, LinearPde};

/// Surface elevation index.
pub const ETA: usize = 0;
/// First velocity component.
pub const U: usize = 1;
/// Number of evolved quantities.
pub const VARS: usize = 4;
/// Parameters: still-water depth `H`, gravity `g`.
pub const PARAMS: usize = 2;

/// The linearized shallow-water system.
///
/// ```
/// use aderdg_pde::{swe, LinearPde, LinearizedSwe};
///
/// let pde = LinearizedSwe;
/// assert!(pde.has_ncp()); // mixes flux (η) and ncp (u) terms
/// let mut q = vec![0.0; pde.num_quantities()];
/// q[swe::U] = 0.5;
/// LinearizedSwe::set_params(&mut q, 4.0, 9.0); // H = 4, g = 9 → c = 6
/// assert_eq!(pde.max_wavespeed(0, &q), 6.0);
/// let mut f = vec![0.0; pde.num_quantities()];
/// pde.flux(0, &q, &mut f); // η_t = ∂_x(−H u)
/// assert_eq!(f[swe::ETA], -2.0);
/// let grad = [3.0, 0.0, 0.0, 0.0, 0.0, 0.0];
/// let mut out = vec![0.0; pde.num_quantities()];
/// pde.ncp(0, &q, &grad, &mut out); // u_t = −g ∂_x η
/// assert_eq!(out[swe::U], -27.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinearizedSwe;

impl LinearizedSwe {
    /// Fills the parameter slots.
    pub fn set_params(q: &mut [f64], depth: f64, gravity: f64) {
        q[VARS] = depth;
        q[VARS + 1] = gravity;
    }

    /// Gravity-wave speed `sqrt(gH)`.
    pub fn wave_speed(q: &[f64]) -> f64 {
        (q[VARS] * q[VARS + 1]).sqrt()
    }
}

impl LinearPde for LinearizedSwe {
    fn num_vars(&self) -> usize {
        VARS
    }

    fn num_params(&self) -> usize {
        PARAMS
    }

    fn flux(&self, d: usize, q: &[f64], f: &mut [f64]) {
        f.fill(0.0);
        // η_t = ∂_d F_d[η] with F_d[η] = −H u_d.
        f[ETA] = -q[VARS] * q[U + d];
    }

    fn has_ncp(&self) -> bool {
        true
    }

    fn ncp(&self, d: usize, q: &[f64], grad: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        // u_t = −g ∂_d η on the d-th velocity component.
        out[U + d] = -q[VARS + 1] * grad[ETA];
    }

    fn flux_vect(&self, d: usize, q: &[f64], f: &mut [f64], _len: usize, stride: usize) {
        f.fill(0.0);
        let depth = &q[VARS * stride..(VARS + 1) * stride];
        let ud = &q[(U + d) * stride..(U + d + 1) * stride];
        let feta = &mut f[ETA * stride..(ETA + 1) * stride];
        for i in 0..stride {
            feta[i] = -depth[i] * ud[i];
        }
    }

    fn ncp_vect(
        &self,
        d: usize,
        q: &[f64],
        grad: &[f64],
        out: &mut [f64],
        _len: usize,
        stride: usize,
    ) {
        out.fill(0.0);
        let g = &q[(VARS + 1) * stride..(VARS + 2) * stride];
        let geta = &grad[ETA * stride..(ETA + 1) * stride];
        let oud = &mut out[(U + d) * stride..(U + d + 1) * stride];
        for i in 0..stride {
            oud[i] = -g[i] * geta[i];
        }
    }

    fn has_vectorized_user_functions(&self) -> bool {
        true
    }

    fn max_wavespeed(&self, _d: usize, q: &[f64]) -> f64 {
        Self::wave_speed(q)
    }

    /// Wall: normal velocity flips.
    fn reflective_ghost(&self, d: usize, _outward: f64, q: &[f64], ghost: &mut [f64]) {
        ghost.copy_from_slice(q);
        ghost[U + d] = -q[U + d];
    }

    fn flux_flops(&self) -> u64 {
        2
    }

    fn ncp_flops(&self) -> u64 {
        2
    }
}

/// Exact gravity-wave plane wave over a *flat* bottom:
/// `η = A sin(2πk(n·x − ct))`, `u = n (c/H) η`, `c = sqrt(gH)`.
///
/// ```
/// use aderdg_pde::{swe, ExactSolution, SweGravityWave};
///
/// let wave = SweGravityWave {
///     direction: [1.0, 0.0, 0.0],
///     amplitude: 0.1,
///     wavenumber: 1.0,
///     depth: 4.0,
///     gravity: 9.0,
/// };
/// assert_eq!(wave.speed(), 6.0); // c = √(gH)
/// let mut q = [0.0; 4];
/// wave.evaluate([0.25, 0.0, 0.0], 0.0, &mut q);
/// assert!((q[swe::ETA] - 0.1).abs() < 1e-12);
/// assert!((q[swe::U] - 0.1 * 6.0 / 4.0).abs() < 1e-12); // u = (c/H) η
/// ```
#[derive(Debug, Clone)]
pub struct SweGravityWave {
    /// Unit propagation direction.
    pub direction: [f64; 3],
    /// Elevation amplitude.
    pub amplitude: f64,
    /// Spatial frequency.
    pub wavenumber: f64,
    /// Still-water depth.
    pub depth: f64,
    /// Gravity.
    pub gravity: f64,
}

impl SweGravityWave {
    /// Phase speed.
    pub fn speed(&self) -> f64 {
        (self.gravity * self.depth).sqrt()
    }
}

impl ExactSolution for SweGravityWave {
    fn evaluate(&self, x: [f64; 3], t: f64, q: &mut [f64]) {
        let n = self.direction;
        let c = self.speed();
        let phase = 2.0
            * std::f64::consts::PI
            * self.wavenumber
            * (n[0] * x[0] + n[1] * x[1] + n[2] * x[2] - c * t);
        let eta = self.amplitude * phase.sin();
        q[ETA] = eta;
        let s = c / self.depth;
        q[U] = n[0] * s * eta;
        q[U + 1] = n[1] * s * eta;
        q[U + 2] = n[2] * s * eta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flux_and_ncp_structure() {
        let pde = LinearizedSwe;
        let mut q = vec![0.0; VARS + PARAMS];
        q[ETA] = 2.0;
        q[U] = 0.5;
        q[U + 1] = -1.0;
        LinearizedSwe::set_params(&mut q, 4.0, 9.81);
        let mut f = vec![0.0; VARS + PARAMS];
        pde.flux(0, &q, &mut f);
        assert_eq!(f[ETA], -4.0 * 0.5);
        assert_eq!(f[U], 0.0);
        pde.flux(1, &q, &mut f);
        assert_eq!(f[ETA], 4.0);

        let grad = [3.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let mut out = vec![0.0; VARS + PARAMS];
        pde.ncp(2, &q, &grad, &mut out);
        assert_eq!(out[U + 2], -9.81 * 3.0);
        assert_eq!(out[ETA], 0.0);
    }

    #[test]
    fn wave_speed() {
        let pde = LinearizedSwe;
        let mut q = vec![0.0; VARS + PARAMS];
        LinearizedSwe::set_params(&mut q, 2.0, 8.0);
        assert!((pde.max_wavespeed(1, &q) - 4.0).abs() < 1e-14);
    }

    #[test]
    fn vectorized_paths_match_pointwise() {
        let pde = LinearizedSwe;
        let stride = 8;
        let len = 6;
        let m = pde.num_quantities();
        let mut q = vec![0.0; m * stride];
        let mut grad = vec![0.0; m * stride];
        for i in 0..len {
            for s in 0..VARS {
                q[s * stride + i] = (s * 5 + i) as f64 * 0.1 - 1.0;
                grad[s * stride + i] = ((s + 2 * i) as f64).cos();
            }
            q[VARS * stride + i] = 1.0 + 0.2 * i as f64;
            q[(VARS + 1) * stride + i] = 9.81;
        }
        for d in 0..3 {
            let mut fv = vec![f64::NAN; m * stride];
            pde.flux_vect(d, &q, &mut fv, len, stride);
            let mut ov = vec![f64::NAN; m * stride];
            pde.ncp_vect(d, &q, &grad, &mut ov, len, stride);
            for i in 0..len {
                let qi: Vec<f64> = (0..m).map(|s| q[s * stride + i]).collect();
                let gi: Vec<f64> = (0..m).map(|s| grad[s * stride + i]).collect();
                let mut fi = vec![0.0; m];
                pde.flux(d, &qi, &mut fi);
                let mut oi = vec![0.0; m];
                pde.ncp(d, &qi, &gi, &mut oi);
                for s in 0..m {
                    assert!((fv[s * stride + i] - fi[s]).abs() < 1e-14);
                    assert!((ov[s * stride + i] - oi[s]).abs() < 1e-14);
                }
            }
        }
    }

    #[test]
    fn gravity_wave_satisfies_pde() {
        let pde = LinearizedSwe;
        let w = SweGravityWave {
            direction: [0.8, 0.6, 0.0],
            amplitude: 0.1,
            wavenumber: 1.0,
            depth: 2.0,
            gravity: 9.81,
        };
        let m = VARS + PARAMS;
        let eval = |x: [f64; 3], t: f64| -> Vec<f64> {
            let mut q = vec![0.0; m];
            w.evaluate(x, t, &mut q);
            LinearizedSwe::set_params(&mut q, w.depth, w.gravity);
            q
        };
        let h = 1e-6;
        let x = [0.3, 0.6, 0.1];
        let t = 0.07;
        let qp = eval(x, t + h);
        let qm = eval(x, t - h);
        // RHS: Σ_d ∂_d F_d + Σ_d B_d ∂_d.
        let mut rhs = [0.0; VARS];
        let q0 = eval(x, t);
        for d in 0..3 {
            let mut xp = x;
            xp[d] += h;
            let mut xm = x;
            xm[d] -= h;
            let (qd_p, qd_m) = (eval(xp, t), eval(xm, t));
            let mut fp = vec![0.0; m];
            let mut fm = vec![0.0; m];
            pde.flux(d, &qd_p, &mut fp);
            pde.flux(d, &qd_m, &mut fm);
            let grad: Vec<f64> = (0..m).map(|s| (qd_p[s] - qd_m[s]) / (2.0 * h)).collect();
            let mut ncp = vec![0.0; m];
            pde.ncp(d, &q0, &grad, &mut ncp);
            for s in 0..VARS {
                rhs[s] += (fp[s] - fm[s]) / (2.0 * h) + ncp[s];
            }
        }
        for s in 0..VARS {
            let qt = (qp[s] - qm[s]) / (2.0 * h);
            assert!(
                (qt - rhs[s]).abs() < 2e-3 * (1.0 + qt.abs()),
                "s={s}: {qt} vs {}",
                rhs[s]
            );
        }
    }
}
