//! The user-function API of the engine.
//!
//! A [`LinearPde`] supplies the PDE-specific terms of
//! `Q_t = ∇·F(Q) + B·∇Q + δ_x0` (paper eq. 1; the material matrix `M` is
//! folded into `F` and `B`): the conservative flux per dimension, the
//! non-conservative product, and wave speeds for the Riemann solver and the
//! CFL condition.
//!
//! Two call styles mirror the paper's API split (Sec. III-A, V-C):
//!
//! * **pointwise** — one quadrature node at a time, AoS quantity vector
//!   (the default ExaHyPE user API; executes scalar),
//! * **vectorized** — a whole x-line of nodes in SoA chunks (`stride`-spaced
//!   runs per quantity, Fig. 8), used by the AoSoA SplitCK kernel. Default
//!   implementations fall back to the pointwise functions lane by lane, so
//!   vectorization is opt-in per application exactly as in the paper.
//!
//! Convention: the state vector holds `num_vars()` *evolved* quantities
//! followed by `num_params()` material/geometry parameters, for a total of
//! `num_quantities()` stored entries per node. Fluxes of parameters are
//! zero; parameters never evolve.

/// A linear hyperbolic PDE system with cell-constant coefficients taken
/// from per-node material parameters.
///
/// Implementing the three required methods is enough for the full
/// engine; the vectorized SoA variants and the reflective ghost are
/// opt-in refinements:
///
/// ```
/// use aderdg_pde::LinearPde;
///
/// /// One quantity advected rightward at unit speed.
/// struct Upwind;
/// impl LinearPde for Upwind {
///     fn num_vars(&self) -> usize { 1 }
///     fn flux(&self, d: usize, q: &[f64], f: &mut [f64]) {
///         f[0] = if d == 0 { -q[0] } else { 0.0 };
///     }
///     fn max_wavespeed(&self, d: usize, _q: &[f64]) -> f64 {
///         if d == 0 { 1.0 } else { 0.0 }
///     }
///     fn flux_flops(&self) -> u64 { 1 }
/// }
///
/// let pde = Upwind;
/// assert_eq!(pde.num_quantities(), 1); // no parameters by default
/// // The SoA fallback gathers lane by lane into the pointwise flux.
/// let (q, mut f) = ([2.0, 3.0], [0.0, 0.0]);
/// pde.flux_vect(0, &q, &mut f, 2, 2);
/// assert_eq!(f, [-2.0, -3.0]);
/// ```
pub trait LinearPde: Send + Sync {
    /// Number of evolved quantities.
    fn num_vars(&self) -> usize;

    /// Number of stored (non-evolving) material / geometry parameters.
    fn num_params(&self) -> usize {
        0
    }

    /// Total stored quantities per node (`m` in the paper).
    fn num_quantities(&self) -> usize {
        self.num_vars() + self.num_params()
    }

    /// Pointwise conservative flux in direction `d` ∈ {0, 1, 2}:
    /// writes all `num_quantities()` entries of `f` (parameter rows zero).
    fn flux(&self, d: usize, q: &[f64], f: &mut [f64]);

    /// True if the PDE has a non-conservative product `B·∇Q`.
    fn has_ncp(&self) -> bool {
        false
    }

    /// Pointwise non-conservative product in direction `d`: given the state
    /// `q` (for its parameters) and the gradient `grad` of the state in
    /// direction `d`, writes `B_d · grad` into `out` (all entries,
    /// parameter rows zero). Only called when [`LinearPde::has_ncp`].
    fn ncp(&self, d: usize, q: &[f64], grad: &[f64], out: &mut [f64]) {
        let _ = (d, q, grad);
        out.fill(0.0);
    }

    /// Largest signal speed in direction `d` at state `q` (CFL and
    /// Rusanov dissipation).
    fn max_wavespeed(&self, d: usize, q: &[f64]) -> f64;

    /// Vectorized flux on an SoA chunk (paper Fig. 8): `q` and `f` hold
    /// `num_quantities()` runs of `stride` doubles; lanes `0..len` are
    /// valid, lanes `len..stride` are zero padding. The default gathers
    /// lane by lane into the pointwise function; optimized PDEs override
    /// with a vectorizable loop over the lane index.
    fn flux_vect(&self, d: usize, q: &[f64], f: &mut [f64], len: usize, stride: usize) {
        let m = self.num_quantities();
        let mut qi = vec![0.0; m];
        let mut fi = vec![0.0; m];
        for i in 0..len {
            for s in 0..m {
                qi[s] = q[s * stride + i];
            }
            self.flux(d, &qi, &mut fi);
            for s in 0..m {
                f[s * stride + i] = fi[s];
            }
        }
        // Keep padding lanes zero.
        for s in 0..m {
            for i in len..stride {
                f[s * stride + i] = 0.0;
            }
        }
    }

    /// Vectorized non-conservative product on an SoA chunk; see
    /// [`LinearPde::flux_vect`].
    fn ncp_vect(
        &self,
        d: usize,
        q: &[f64],
        grad: &[f64],
        out: &mut [f64],
        len: usize,
        stride: usize,
    ) {
        let m = self.num_quantities();
        let mut qi = vec![0.0; m];
        let mut gi = vec![0.0; m];
        let mut oi = vec![0.0; m];
        for i in 0..len {
            for s in 0..m {
                qi[s] = q[s * stride + i];
                gi[s] = grad[s * stride + i];
            }
            self.ncp(d, &qi, &gi, &mut oi);
            for s in 0..m {
                out[s * stride + i] = oi[s];
            }
        }
        for s in 0..m {
            for i in len..stride {
                out[s * stride + i] = 0.0;
            }
        }
    }

    /// True if this PDE provides genuinely vectorized overrides of
    /// [`LinearPde::flux_vect`] / [`LinearPde::ncp_vect`] (affects the
    /// instruction-mix classification of the AoSoA kernel, Fig. 9).
    fn has_vectorized_user_functions(&self) -> bool {
        false
    }

    /// Constructs the ghost state seen across a *reflective* boundary face
    /// with normal dimension `d` (`outward` = +1 on an upper face, −1 on a
    /// lower face). The default mirrors nothing (zero-gradient, i.e. the
    /// same as outflow); wave systems override to flip the normal velocity
    /// (rigid wall) or stress (free surface).
    fn reflective_ghost(&self, d: usize, outward: f64, q: &[f64], ghost: &mut [f64]) {
        let _ = (d, outward);
        ghost.copy_from_slice(q);
    }

    /// Estimated useful flops of one pointwise flux evaluation in one
    /// direction (for the analytic instruction-mix model).
    fn flux_flops(&self) -> u64;

    /// Estimated useful flops of one pointwise ncp evaluation in one
    /// direction.
    fn ncp_flops(&self) -> u64 {
        0
    }
}

/// An exact reference solution, used by convergence tests and examples.
///
/// ```
/// use aderdg_pde::ExactSolution;
///
/// struct Constant(f64);
/// impl ExactSolution for Constant {
///     fn evaluate(&self, _x: [f64; 3], _t: f64, q: &mut [f64]) {
///         q.fill(self.0);
///     }
/// }
/// let mut q = [0.0; 2];
/// Constant(3.0).evaluate([0.0; 3], 1.0, &mut q);
/// assert_eq!(q, [3.0, 3.0]);
/// ```
pub trait ExactSolution: Send + Sync {
    /// Evaluates the evolved quantities (not the parameters) at `(x, t)`.
    fn evaluate(&self, x: [f64; 3], t: f64, q: &mut [f64]);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal PDE for exercising the default SoA fallbacks: two evolved
    /// vars, flux_x = (q1, 2 q0), one parameter.
    struct Toy;

    impl LinearPde for Toy {
        fn num_vars(&self) -> usize {
            2
        }
        fn num_params(&self) -> usize {
            1
        }
        fn flux(&self, d: usize, q: &[f64], f: &mut [f64]) {
            f.fill(0.0);
            if d == 0 {
                f[0] = q[1];
                f[1] = 2.0 * q[0];
            }
        }
        fn has_ncp(&self) -> bool {
            true
        }
        fn ncp(&self, _d: usize, q: &[f64], grad: &[f64], out: &mut [f64]) {
            out.fill(0.0);
            out[0] = q[2] * grad[0]; // parameter-weighted gradient
        }
        fn max_wavespeed(&self, _d: usize, _q: &[f64]) -> f64 {
            2.0f64.sqrt()
        }
        fn flux_flops(&self) -> u64 {
            1
        }
    }

    #[test]
    fn soa_fallback_matches_pointwise() {
        let pde = Toy;
        let stride = 8;
        let len = 5;
        let m = pde.num_quantities();
        let mut q = vec![0.0; m * stride];
        for s in 0..m {
            for i in 0..len {
                q[s * stride + i] = (s * 10 + i) as f64 * 0.1;
            }
        }
        let mut f = vec![f64::NAN; m * stride];
        pde.flux_vect(0, &q, &mut f, len, stride);
        for i in 0..len {
            let qi: Vec<f64> = (0..m).map(|s| q[s * stride + i]).collect();
            let mut fi = vec![0.0; m];
            pde.flux(0, &qi, &mut fi);
            for s in 0..m {
                assert_eq!(f[s * stride + i], fi[s], "s={s} i={i}");
            }
        }
        // Padding lanes zeroed.
        for s in 0..m {
            for i in len..stride {
                assert_eq!(f[s * stride + i], 0.0);
            }
        }
    }

    #[test]
    fn ncp_fallback_matches_pointwise() {
        let pde = Toy;
        let stride = 4;
        let len = 3;
        let m = pde.num_quantities();
        let q: Vec<f64> = (0..m * stride).map(|x| x as f64 * 0.05).collect();
        let g: Vec<f64> = (0..m * stride).map(|x| (x as f64).sin()).collect();
        let mut out = vec![f64::NAN; m * stride];
        pde.ncp_vect(0, &q, &g, &mut out, len, stride);
        for i in 0..len {
            let qi: Vec<f64> = (0..m).map(|s| q[s * stride + i]).collect();
            let gi: Vec<f64> = (0..m).map(|s| g[s * stride + i]).collect();
            let mut oi = vec![0.0; m];
            pde.ncp(0, &qi, &gi, &mut oi);
            for s in 0..m {
                assert_eq!(out[s * stride + i], oi[s]);
            }
        }
    }

    #[test]
    fn quantity_counts() {
        let pde = Toy;
        assert_eq!(pde.num_quantities(), 3);
        assert!(!pde.has_vectorized_user_functions());
    }
}
