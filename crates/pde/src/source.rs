//! Point sources `δ_x0` (paper eq. 1) and their source-time functions.
//!
//! The Cauchy-Kowalewsky predictor needs *time derivatives* of the source
//! term at `t_n` up to the scheme's order (Fig. 1:
//! `derive(pointSource(t), dim = time, order = o)`), so every source-time
//! function provides exact analytic derivatives of arbitrary order —
//! Gaussian-family wavelets via probabilists' Hermite polynomials:
//! `dⁿ/dxⁿ e^{−x²/2} = (−1)ⁿ Heₙ(x) e^{−x²/2}`.

/// Source-time functions used in seismic benchmarks.
///
/// ```
/// use aderdg_pde::SourceTimeFunction;
///
/// let ricker = SourceTimeFunction::Ricker { t0: 1.0, frequency: 2.0 };
/// assert!((ricker.value(1.0) - 1.0).abs() < 1e-12); // unit peak at t0
/// let d = ricker.derivatives(1.0, 2);
/// assert!(d[1].abs() < 1e-12); // stationary at the peak
/// assert!(d[2] < 0.0);         // …and concave
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SourceTimeFunction {
    /// `g(t) = exp(−(t − t0)² / (2σ²))`.
    Gaussian {
        /// Centre time.
        t0: f64,
        /// Width.
        sigma: f64,
    },
    /// Ricker wavelet `(1 − 2π²f²(t−t0)²) exp(−π²f²(t−t0)²)` — the LOH1
    /// standard; equals `−σ² g''(t)` with `σ = 1/(√2 π f)`.
    Ricker {
        /// Centre time.
        t0: f64,
        /// Dominant frequency.
        frequency: f64,
    },
    /// `sin(ω t)` — convenient for exact-solution checks.
    Sine {
        /// Angular frequency.
        omega: f64,
    },
}

/// Evaluates probabilists' Hermite polynomials `He_0..He_n` at `x`.
fn hermite_all(n: usize, x: f64) -> Vec<f64> {
    let mut h = Vec::with_capacity(n + 1);
    h.push(1.0);
    if n >= 1 {
        h.push(x);
    }
    for k in 1..n {
        let next = x * h[k] - k as f64 * h[k - 1];
        h.push(next);
    }
    h
}

/// `dⁿ/dtⁿ exp(−((t−t0)/σ)²/2)` for `n = 0..=order`, exact.
fn gaussian_derivatives(t: f64, t0: f64, sigma: f64, order: usize) -> Vec<f64> {
    let x = (t - t0) / sigma;
    let g = (-0.5 * x * x).exp();
    let he = hermite_all(order, x);
    (0..=order)
        .map(|n| {
            let sign = if n % 2 == 0 { 1.0 } else { -1.0 };
            sign * he[n] * g / sigma.powi(n as i32)
        })
        .collect()
}

impl SourceTimeFunction {
    /// Value at `t`.
    pub fn value(&self, t: f64) -> f64 {
        self.derivatives(t, 0)[0]
    }

    /// Exact derivatives `g⁽ⁿ⁾(t)` for `n = 0..=order`.
    pub fn derivatives(&self, t: f64, order: usize) -> Vec<f64> {
        match *self {
            SourceTimeFunction::Gaussian { t0, sigma } => gaussian_derivatives(t, t0, sigma, order),
            SourceTimeFunction::Ricker { t0, frequency } => {
                let sigma = 1.0 / (std::f64::consts::SQRT_2 * std::f64::consts::PI * frequency);
                let g = gaussian_derivatives(t, t0, sigma, order + 2);
                let s2 = sigma * sigma;
                (0..=order).map(|n| -s2 * g[n + 2]).collect()
            }
            SourceTimeFunction::Sine { omega } => (0..=order)
                .map(|n| {
                    let w = omega.powi(n as i32);
                    match n % 4 {
                        0 => w * (omega * t).sin(),
                        1 => w * (omega * t).cos(),
                        2 => -w * (omega * t).sin(),
                        _ => -w * (omega * t).cos(),
                    }
                })
                .collect(),
        }
    }
}

/// A point source `A · stf(t) · δ(x − x0)`: position, per-quantity
/// amplitude vector, and source-time function.
///
/// ```
/// use aderdg_pde::{PointSource, SourceTimeFunction};
///
/// let source = PointSource {
///     position: [0.5, 0.5, 0.55],
///     amplitude: vec![0.0, 2.0],
///     stf: SourceTimeFunction::Gaussian { t0: 0.0, sigma: 1.0 },
/// };
/// // Per-quantity time derivatives feed the Cauchy-Kowalewsky predictor.
/// let d = source.amplitude_derivatives(0.0, 1);
/// assert_eq!(d[0], vec![0.0, 2.0]); // g(0) = 1 scales the amplitudes
/// assert_eq!(d[1], vec![0.0, 0.0]); // g'(0) = 0 at the peak
/// ```
#[derive(Debug, Clone)]
pub struct PointSource {
    /// Source location (physical coordinates).
    pub position: [f64; 3],
    /// Amplitude per evolved quantity (e.g. a moment-rate pattern applied
    /// to the stress components in LOH1).
    pub amplitude: Vec<f64>,
    /// Time dependence.
    pub stf: SourceTimeFunction,
}

impl PointSource {
    /// Time derivatives of the source amplitude for every quantity:
    /// `out[n][s] = A_s · stf⁽ⁿ⁾(t)`, `n = 0..=order`.
    pub fn amplitude_derivatives(&self, t: f64, order: usize) -> Vec<Vec<f64>> {
        let d = self.stf.derivatives(t, order);
        d.iter()
            .map(|&dn| self.amplitude.iter().map(|&a| a * dn).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_derivative(f: impl Fn(f64) -> f64, t: f64, h: f64) -> f64 {
        (f(t + h) - f(t - h)) / (2.0 * h)
    }

    #[test]
    fn hermite_recurrence_values() {
        // He_2 = x² − 1, He_3 = x³ − 3x.
        let h = hermite_all(3, 0.7);
        assert!((h[2] - (0.49 - 1.0)).abs() < 1e-14);
        assert!((h[3] - (0.343 - 2.1)).abs() < 1e-14);
    }

    #[test]
    fn gaussian_derivatives_match_finite_differences() {
        let stf = SourceTimeFunction::Gaussian {
            t0: 0.4,
            sigma: 0.15,
        };
        for &t in &[0.1, 0.35, 0.4, 0.6] {
            let d = stf.derivatives(t, 3);
            let fd1 = fd_derivative(|s| stf.value(s), t, 1e-6);
            assert!((d[1] - fd1).abs() < 1e-5 * (1.0 + fd1.abs()), "t={t}");
            let fd2 = fd_derivative(|s| stf.derivatives(s, 1)[1], t, 1e-6);
            assert!((d[2] - fd2).abs() < 1e-4 * (1.0 + fd2.abs()), "t={t}");
        }
    }

    #[test]
    fn ricker_shape_and_derivatives() {
        let stf = SourceTimeFunction::Ricker {
            t0: 1.0,
            frequency: 2.0,
        };
        // Peak value 1 at t0.
        assert!((stf.value(1.0) - 1.0).abs() < 1e-12);
        // Zero crossings at t0 ± 1/(√2 π f).
        let z = 1.0 / (std::f64::consts::SQRT_2 * std::f64::consts::PI * 2.0);
        assert!(stf.value(1.0 + z).abs() < 1e-12);
        // Derivative at the peak is zero, second derivative negative.
        let d = stf.derivatives(1.0, 2);
        assert!(d[1].abs() < 1e-12);
        assert!(d[2] < 0.0);
        // FD check away from the peak.
        let t = 1.13;
        let fd1 = fd_derivative(|s| stf.value(s), t, 1e-6);
        assert!((stf.derivatives(t, 1)[1] - fd1).abs() < 1e-4 * (1.0 + fd1.abs()));
    }

    #[test]
    fn sine_derivatives_cycle() {
        let stf = SourceTimeFunction::Sine { omega: 3.0 };
        let t = 0.21;
        let d = stf.derivatives(t, 4);
        assert!((d[0] - (3.0 * t).sin()).abs() < 1e-14);
        assert!((d[1] - 3.0 * (3.0 * t).cos()).abs() < 1e-14);
        assert!((d[4] - 81.0 * (3.0 * t).sin()).abs() < 1e-12);
    }

    #[test]
    fn point_source_scales_amplitudes() {
        let src = PointSource {
            position: [0.5; 3],
            amplitude: vec![0.0, 2.0, -1.0],
            stf: SourceTimeFunction::Gaussian {
                t0: 0.0,
                sigma: 1.0,
            },
        };
        let d = src.amplitude_derivatives(0.0, 2);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0], vec![0.0, 2.0, -1.0]); // g(0) = 1
        assert_eq!(d[1], vec![0.0, 0.0, 0.0]); // g'(0) = 0
                                               // g''(0) = -1/σ² = -1.
        assert_eq!(d[2], vec![0.0, -2.0, 1.0]);
    }
}
