//! # aderdg-pde
//!
//! PDE definitions for the linear ADER-DG engine: the [`LinearPde`]
//! user-function API (pointwise *and* vectorized SoA variants, mirroring
//! the paper's API split), concrete systems (multi-component linear
//! advection in flux and non-conservative form, 3-D acoustics, and the
//! paper's 21-quantity elastic wave equation on curvilinear meshes),
//! exact plane-wave solutions for convergence testing, and point sources
//! with analytic time derivatives for the Cauchy-Kowalewsky predictor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acoustic;
pub mod advection;
pub mod elastic;
pub mod maxwell;
pub mod source;
pub mod swe;
pub mod traits;

pub use acoustic::{Acoustic, AcousticPlaneWave};
pub use advection::{
    AdvectedSine, AdvectionNcpSystem, AdvectionSystem, RotatingAdvection, RotatingGaussian,
};
pub use elastic::{Elastic, ElasticPlaneWave, Material};
pub use maxwell::{Maxwell, MaxwellPlaneWave};
pub use source::{PointSource, SourceTimeFunction};
pub use swe::{LinearizedSwe, SweGravityWave};
pub use traits::{ExactSolution, LinearPde};
