//! Linear advection systems — the simplest linear PDEs, used for kernel
//! equivalence and convergence testing at arbitrary quantity counts.
//!
//! [`AdvectionSystem`] advects every component with the same velocity via
//! the conservative flux; [`AdvectionNcpSystem`] realizes the *identical*
//! dynamics through the non-conservative product `B·∇Q` instead. Running
//! both through a kernel and comparing results exercises the `computeF`
//! and `computeNcp` code paths of the predictor against each other.

use crate::traits::{ExactSolution, LinearPde};

/// `n_vars` independently advected quantities, `∂t q + a·∇q = 0`,
/// implemented via the conservative flux `F_d(q) = -a_d q`.
///
/// With the engine convention `Q_t = ∇·F(Q) + B·∇Q`, the flux must carry
/// the minus sign:
///
/// ```
/// use aderdg_pde::{AdvectionSystem, LinearPde};
///
/// let pde = AdvectionSystem::new(2, [3.0, 0.0, 0.0]);
/// let mut f = [0.0; 2];
/// pde.flux(0, &[1.0, -2.0], &mut f);
/// assert_eq!(f, [-3.0, 6.0]);
/// assert_eq!(pde.max_wavespeed(0, &[0.0; 2]), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct AdvectionSystem {
    /// Number of advected components.
    pub n_vars: usize,
    /// Advection velocity.
    pub velocity: [f64; 3],
}

impl AdvectionSystem {
    /// New system with `n_vars` components and velocity `a`.
    pub fn new(n_vars: usize, velocity: [f64; 3]) -> Self {
        assert!(n_vars >= 1);
        Self { n_vars, velocity }
    }
}

impl LinearPde for AdvectionSystem {
    fn num_vars(&self) -> usize {
        self.n_vars
    }

    fn flux(&self, d: usize, q: &[f64], f: &mut [f64]) {
        let a = -self.velocity[d];
        for s in 0..self.n_vars {
            f[s] = a * q[s];
        }
        for v in f[self.n_vars..].iter_mut() {
            *v = 0.0;
        }
    }

    fn flux_vect(&self, d: usize, q: &[f64], f: &mut [f64], _len: usize, stride: usize) {
        // Fig. 8 pattern: loop over the full padded lane range; padding
        // lanes are zero in q, so they stay zero in f.
        let a = -self.velocity[d];
        for s in 0..self.n_vars {
            let qs = &q[s * stride..(s + 1) * stride];
            let fs = &mut f[s * stride..(s + 1) * stride];
            for (fo, qi) in fs.iter_mut().zip(qs) {
                *fo = a * qi;
            }
        }
        for v in f[self.n_vars * stride..].iter_mut() {
            *v = 0.0;
        }
    }

    fn has_vectorized_user_functions(&self) -> bool {
        true
    }

    fn max_wavespeed(&self, d: usize, _q: &[f64]) -> f64 {
        self.velocity[d].abs()
    }

    fn flux_flops(&self) -> u64 {
        self.n_vars as u64
    }
}

/// The same advection dynamics expressed through the non-conservative
/// product: `F ≡ 0`, `B_d ∇_d Q = -a_d ∇_d Q`.
///
/// ```
/// use aderdg_pde::{AdvectionNcpSystem, LinearPde};
///
/// let pde = AdvectionNcpSystem::new(1, [2.0, 0.0, 0.0]);
/// assert!(pde.has_ncp());
/// let mut out = [7.0];
/// pde.flux(0, &[1.0], &mut out); // no conservative flux at all
/// assert_eq!(out, [0.0]);
/// pde.ncp(0, &[1.0], &[0.5], &mut out); // B_x ∇_x q = −a_x ∇_x q
/// assert_eq!(out, [-1.0]);
/// ```
#[derive(Debug, Clone)]
pub struct AdvectionNcpSystem {
    /// Number of advected components.
    pub n_vars: usize,
    /// Advection velocity.
    pub velocity: [f64; 3],
}

impl AdvectionNcpSystem {
    /// New system with `n_vars` components and velocity `a`.
    pub fn new(n_vars: usize, velocity: [f64; 3]) -> Self {
        assert!(n_vars >= 1);
        Self { n_vars, velocity }
    }
}

impl LinearPde for AdvectionNcpSystem {
    fn num_vars(&self) -> usize {
        self.n_vars
    }

    fn flux(&self, _d: usize, _q: &[f64], f: &mut [f64]) {
        f.fill(0.0);
    }

    fn has_ncp(&self) -> bool {
        true
    }

    fn ncp(&self, d: usize, _q: &[f64], grad: &[f64], out: &mut [f64]) {
        let a = -self.velocity[d];
        for s in 0..self.n_vars {
            out[s] = a * grad[s];
        }
        for v in out[self.n_vars..].iter_mut() {
            *v = 0.0;
        }
    }

    fn ncp_vect(
        &self,
        d: usize,
        _q: &[f64],
        grad: &[f64],
        out: &mut [f64],
        _len: usize,
        stride: usize,
    ) {
        let a = -self.velocity[d];
        for s in 0..self.n_vars {
            let gs = &grad[s * stride..(s + 1) * stride];
            let os = &mut out[s * stride..(s + 1) * stride];
            for (o, g) in os.iter_mut().zip(gs) {
                *o = a * g;
            }
        }
        for v in out[self.n_vars * stride..].iter_mut() {
            *v = 0.0;
        }
    }

    fn has_vectorized_user_functions(&self) -> bool {
        true
    }

    fn max_wavespeed(&self, d: usize, _q: &[f64]) -> f64 {
        self.velocity[d].abs()
    }

    fn flux_flops(&self) -> u64 {
        0
    }

    fn ncp_flops(&self) -> u64 {
        self.n_vars as u64
    }
}

/// Solid-body-rotation advection: one quantity transported by the
/// divergence-free velocity field `v(x) = ω ẑ × (x − c)` (rotation about
/// the vertical axis through `center`), stored per node as three
/// parameters — the first *variable-coefficient* system in the gallery.
///
/// Because `∇·v = 0`, the conservative flux `F_d = −v_d q` realizes the
/// transport `q_t + v·∇q = 0` exactly; the velocity parameters are linear
/// in position, so the nodal parameter interpolation is exact for every
/// scheme order ≥ 2.
///
/// ```
/// use aderdg_pde::{LinearPde, RotatingAdvection};
///
/// let pde = RotatingAdvection { omega: 2.0, center: [0.5, 0.5, 0.5] };
/// let mut q = vec![3.0, 0.0, 0.0, 0.0]; // q plus the 3 velocity params
/// RotatingAdvection::set_params(&mut q, 2.0, [0.5, 0.5, 0.5], [0.5, 0.75, 0.1]);
/// // At (0.5, 0.75, ·) the velocity is ω·(−0.25, 0, 0) = (−0.5, 0, 0).
/// let mut f = vec![0.0; 4];
/// pde.flux(0, &q, &mut f);
/// assert!((f[0] - 0.5 * 3.0).abs() < 1e-14); // F_x = −v_x q = +0.5 q
/// assert!((pde.max_wavespeed(0, &q) - 0.5).abs() < 1e-14);
/// ```
#[derive(Debug, Clone)]
pub struct RotatingAdvection {
    /// Angular velocity about the vertical axis.
    pub omega: f64,
    /// Rotation centre.
    pub center: [f64; 3],
}

/// Number of evolved quantities of [`RotatingAdvection`].
pub const ROTATION_VARS: usize = 1;
/// Parameters of [`RotatingAdvection`]: the local velocity `(vx, vy, vz)`.
pub const ROTATION_PARAMS: usize = 3;

impl RotatingAdvection {
    /// Fills the velocity parameter slots of a node at position `x` for a
    /// rotation of angular velocity `omega` about the vertical axis
    /// through `center`.
    pub fn set_params(q: &mut [f64], omega: f64, center: [f64; 3], x: [f64; 3]) {
        q[ROTATION_VARS] = -omega * (x[1] - center[1]);
        q[ROTATION_VARS + 1] = omega * (x[0] - center[0]);
        q[ROTATION_VARS + 2] = 0.0;
    }
}

impl LinearPde for RotatingAdvection {
    fn num_vars(&self) -> usize {
        ROTATION_VARS
    }

    fn num_params(&self) -> usize {
        ROTATION_PARAMS
    }

    fn flux(&self, d: usize, q: &[f64], f: &mut [f64]) {
        f.fill(0.0);
        f[0] = -q[ROTATION_VARS + d] * q[0];
    }

    fn flux_vect(&self, d: usize, q: &[f64], f: &mut [f64], _len: usize, stride: usize) {
        f.fill(0.0);
        let vd = &q[(ROTATION_VARS + d) * stride..(ROTATION_VARS + d + 1) * stride];
        let qs = &q[..stride];
        let fs = &mut f[..stride];
        for i in 0..stride {
            fs[i] = -vd[i] * qs[i];
        }
    }

    fn has_vectorized_user_functions(&self) -> bool {
        true
    }

    fn max_wavespeed(&self, d: usize, q: &[f64]) -> f64 {
        q[ROTATION_VARS + d].abs()
    }

    fn flux_flops(&self) -> u64 {
        1
    }
}

/// Exact solution of [`RotatingAdvection`]: a Gaussian patch carried
/// rigidly around the rotation centre,
/// `q(x, t) = A exp(−|R(−ωt)(x − c) − (x₀ − c)|² / (2σ²))`.
///
/// ```
/// use aderdg_pde::{ExactSolution, RotatingGaussian};
///
/// let exact = RotatingGaussian {
///     omega: std::f64::consts::PI, // half a turn per unit time
///     center: [0.5, 0.5, 0.5],
///     start: [0.7, 0.5, 0.5],
///     sigma: 0.1,
///     amplitude: 1.0,
/// };
/// let mut q = [0.0];
/// // After half a turn the peak sits diametrically opposite the start.
/// exact.evaluate([0.3, 0.5, 0.5], 1.0, &mut q);
/// assert!((q[0] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct RotatingGaussian {
    /// Angular velocity (must match the PDE).
    pub omega: f64,
    /// Rotation centre (must match the PDE).
    pub center: [f64; 3],
    /// Initial peak position.
    pub start: [f64; 3],
    /// Gaussian width.
    pub sigma: f64,
    /// Peak amplitude.
    pub amplitude: f64,
}

impl ExactSolution for RotatingGaussian {
    fn evaluate(&self, x: [f64; 3], t: f64, q: &mut [f64]) {
        // Trace the point back: rotate (x − c) by −ωt about ẑ.
        let (s, c) = (-self.omega * t).sin_cos();
        let dx = x[0] - self.center[0];
        let dy = x[1] - self.center[1];
        let back = [
            c * dx - s * dy + self.center[0],
            s * dx + c * dy + self.center[1],
            x[2],
        ];
        let r2: f64 = (0..3).map(|d| (back[d] - self.start[d]).powi(2)).sum();
        q[0] = self.amplitude * (-r2 / (2.0 * self.sigma * self.sigma)).exp();
    }
}

/// Smooth periodic exact solution `q_s(x, t) = sin(2π (k·(x − a t)) + φ_s)`
/// on the unit-periodic domain.
///
/// ```
/// use aderdg_pde::{AdvectedSine, ExactSolution};
///
/// let exact = AdvectedSine { n_vars: 1, velocity: [1.0, 0.0, 0.0], wave: [1.0, 0.0, 0.0] };
/// let (mut a, mut b) = ([0.0], [0.0]);
/// exact.evaluate([0.2, 0.0, 0.0], 0.0, &mut a);
/// exact.evaluate([0.5, 0.0, 0.0], 0.3, &mut b); // translated by a·t
/// assert!((a[0] - b[0]).abs() < 1e-14);
/// ```
#[derive(Debug, Clone)]
pub struct AdvectedSine {
    /// Number of components (each phase-shifted).
    pub n_vars: usize,
    /// Advection velocity (must match the PDE).
    pub velocity: [f64; 3],
    /// Integer wave vector (periodicity on the unit cube).
    pub wave: [f64; 3],
}

impl ExactSolution for AdvectedSine {
    fn evaluate(&self, x: [f64; 3], t: f64, q: &mut [f64]) {
        let phase: f64 = (0..3)
            .map(|d| self.wave[d] * (x[d] - self.velocity[d] * t))
            .sum();
        for s in 0..self.n_vars {
            q[s] = (2.0 * std::f64::consts::PI * phase + s as f64).sin();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flux_and_ncp_forms_agree_on_derivative_action() {
        // For the same state gradient, flux-divergence of F = -a q equals
        // the ncp product -a ∇q (constant coefficients).
        let a = [1.3, -0.4, 0.8];
        let f_sys = AdvectionSystem::new(4, a);
        let n_sys = AdvectionNcpSystem::new(4, a);
        let grad = [0.3, -1.0, 0.25, 2.0];
        let q = [0.0; 4];
        for d in 0..3 {
            // d(F_d)/dx = -a_d dq/dx for linear flux: evaluate flux on the
            // gradient itself (linearity).
            let mut via_flux = [0.0; 4];
            f_sys.flux(d, &grad, &mut via_flux);
            let mut via_ncp = [0.0; 4];
            n_sys.ncp(d, &q, &grad, &mut via_ncp);
            assert_eq!(via_flux, via_ncp);
        }
    }

    #[test]
    fn vectorized_paths_match_defaults() {
        let sys = AdvectionSystem::new(3, [0.5, 1.0, -2.0]);
        let stride = 8;
        let len = 6;
        let m = sys.num_quantities();
        let mut q = vec![0.0; m * stride];
        for s in 0..m {
            for i in 0..len {
                q[s * stride + i] = (s + 1) as f64 * (i as f64 - 2.5);
            }
        }
        for d in 0..3 {
            let mut f_vec = vec![0.0; m * stride];
            sys.flux_vect(d, &q, &mut f_vec, len, stride);
            // Pointwise reference.
            for i in 0..len {
                let qi: Vec<f64> = (0..m).map(|s| q[s * stride + i]).collect();
                let mut fi = vec![0.0; m];
                sys.flux(d, &qi, &mut fi);
                for s in 0..m {
                    assert!((f_vec[s * stride + i] - fi[s]).abs() < 1e-15);
                }
            }
        }
    }

    #[test]
    fn wavespeeds() {
        let sys = AdvectionSystem::new(1, [3.0, -4.0, 0.0]);
        assert_eq!(sys.max_wavespeed(0, &[0.0]), 3.0);
        assert_eq!(sys.max_wavespeed(1, &[0.0]), 4.0);
        assert_eq!(sys.max_wavespeed(2, &[0.0]), 0.0);
    }

    #[test]
    fn rotation_flux_matches_pointwise_and_is_divergence_free_transport() {
        let pde = RotatingAdvection {
            omega: 1.5,
            center: [0.5, 0.5, 0.5],
        };
        let x = [0.8, 0.4, 0.3];
        let mut q = vec![2.0, 0.0, 0.0, 0.0];
        RotatingAdvection::set_params(&mut q, 1.5, [0.5, 0.5, 0.5], x);
        // v = ω (−(y−cy), x−cx, 0) = 1.5 · (0.1, 0.3, 0).
        assert!((q[1] - 0.15).abs() < 1e-14);
        assert!((q[2] - 0.45).abs() < 1e-14);
        assert_eq!(q[3], 0.0);
        let mut f = vec![0.0; 4];
        pde.flux(0, &q, &mut f);
        assert!((f[0] + 0.15 * 2.0).abs() < 1e-14);
        pde.flux(2, &q, &mut f);
        assert_eq!(f[0], 0.0);

        // Vectorized path against pointwise.
        let stride = 4;
        let m = pde.num_quantities();
        let mut qs = vec![0.0; m * stride];
        for i in 0..stride {
            for s in 0..m {
                qs[s * stride + i] = q[s] * (1.0 + i as f64);
            }
        }
        for d in 0..3 {
            let mut fv = vec![f64::NAN; m * stride];
            pde.flux_vect(d, &qs, &mut fv, stride, stride);
            for i in 0..stride {
                let qi: Vec<f64> = (0..m).map(|s| qs[s * stride + i]).collect();
                let mut fi = vec![0.0; m];
                pde.flux(d, &qi, &mut fi);
                for s in 0..m {
                    assert!((fv[s * stride + i] - fi[s]).abs() < 1e-14);
                }
            }
        }
    }

    #[test]
    fn rotating_gaussian_returns_after_full_turn() {
        let exact = RotatingGaussian {
            omega: 2.0 * std::f64::consts::PI,
            center: [0.5, 0.5, 0.5],
            start: [0.7, 0.55, 0.5],
            sigma: 0.08,
            amplitude: 0.9,
        };
        let x = [0.62, 0.47, 0.51];
        let mut q0 = [0.0];
        let mut q1 = [0.0];
        exact.evaluate(x, 0.0, &mut q0);
        exact.evaluate(x, 1.0, &mut q1);
        assert!((q0[0] - q1[0]).abs() < 1e-12);
        // Quarter turn moves the peak from (0.7, 0.5) to (0.5, 0.7).
        let exact = RotatingGaussian {
            omega: std::f64::consts::FRAC_PI_2,
            center: [0.5, 0.5, 0.5],
            start: [0.7, 0.5, 0.5],
            sigma: 0.08,
            amplitude: 1.0,
        };
        let mut q = [0.0];
        exact.evaluate([0.5, 0.7, 0.5], 1.0, &mut q);
        assert!((q[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_solution_translates() {
        let ex = AdvectedSine {
            n_vars: 2,
            velocity: [1.0, 0.0, 0.0],
            wave: [1.0, 0.0, 0.0],
        };
        let mut q0 = [0.0; 2];
        let mut q1 = [0.0; 2];
        ex.evaluate([0.25, 0.0, 0.0], 0.0, &mut q0);
        ex.evaluate([0.55, 0.0, 0.0], 0.3, &mut q1);
        assert!((q0[0] - q1[0]).abs() < 1e-14);
        assert!((q0[1] - q1[1]).abs() < 1e-14);
    }
}
