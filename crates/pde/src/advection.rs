//! Linear advection systems — the simplest linear PDEs, used for kernel
//! equivalence and convergence testing at arbitrary quantity counts.
//!
//! [`AdvectionSystem`] advects every component with the same velocity via
//! the conservative flux; [`AdvectionNcpSystem`] realizes the *identical*
//! dynamics through the non-conservative product `B·∇Q` instead. Running
//! both through a kernel and comparing results exercises the `computeF`
//! and `computeNcp` code paths of the predictor against each other.

use crate::traits::{ExactSolution, LinearPde};

/// `n_vars` independently advected quantities, `∂t q + a·∇q = 0`,
/// implemented via the conservative flux `F_d(q) = -a_d q`.
///
/// With the engine convention `Q_t = ∇·F(Q) + B·∇Q`, the flux must carry
/// the minus sign.
#[derive(Debug, Clone)]
pub struct AdvectionSystem {
    /// Number of advected components.
    pub n_vars: usize,
    /// Advection velocity.
    pub velocity: [f64; 3],
}

impl AdvectionSystem {
    /// New system with `n_vars` components and velocity `a`.
    pub fn new(n_vars: usize, velocity: [f64; 3]) -> Self {
        assert!(n_vars >= 1);
        Self { n_vars, velocity }
    }
}

impl LinearPde for AdvectionSystem {
    fn num_vars(&self) -> usize {
        self.n_vars
    }

    fn flux(&self, d: usize, q: &[f64], f: &mut [f64]) {
        let a = -self.velocity[d];
        for s in 0..self.n_vars {
            f[s] = a * q[s];
        }
        for v in f[self.n_vars..].iter_mut() {
            *v = 0.0;
        }
    }

    fn flux_vect(&self, d: usize, q: &[f64], f: &mut [f64], _len: usize, stride: usize) {
        // Fig. 8 pattern: loop over the full padded lane range; padding
        // lanes are zero in q, so they stay zero in f.
        let a = -self.velocity[d];
        for s in 0..self.n_vars {
            let qs = &q[s * stride..(s + 1) * stride];
            let fs = &mut f[s * stride..(s + 1) * stride];
            for (fo, qi) in fs.iter_mut().zip(qs) {
                *fo = a * qi;
            }
        }
        for v in f[self.n_vars * stride..].iter_mut() {
            *v = 0.0;
        }
    }

    fn has_vectorized_user_functions(&self) -> bool {
        true
    }

    fn max_wavespeed(&self, d: usize, _q: &[f64]) -> f64 {
        self.velocity[d].abs()
    }

    fn flux_flops(&self) -> u64 {
        self.n_vars as u64
    }
}

/// The same advection dynamics expressed through the non-conservative
/// product: `F ≡ 0`, `B_d ∇_d Q = -a_d ∇_d Q`.
#[derive(Debug, Clone)]
pub struct AdvectionNcpSystem {
    /// Number of advected components.
    pub n_vars: usize,
    /// Advection velocity.
    pub velocity: [f64; 3],
}

impl AdvectionNcpSystem {
    /// New system with `n_vars` components and velocity `a`.
    pub fn new(n_vars: usize, velocity: [f64; 3]) -> Self {
        assert!(n_vars >= 1);
        Self { n_vars, velocity }
    }
}

impl LinearPde for AdvectionNcpSystem {
    fn num_vars(&self) -> usize {
        self.n_vars
    }

    fn flux(&self, _d: usize, _q: &[f64], f: &mut [f64]) {
        f.fill(0.0);
    }

    fn has_ncp(&self) -> bool {
        true
    }

    fn ncp(&self, d: usize, _q: &[f64], grad: &[f64], out: &mut [f64]) {
        let a = -self.velocity[d];
        for s in 0..self.n_vars {
            out[s] = a * grad[s];
        }
        for v in out[self.n_vars..].iter_mut() {
            *v = 0.0;
        }
    }

    fn ncp_vect(
        &self,
        d: usize,
        _q: &[f64],
        grad: &[f64],
        out: &mut [f64],
        _len: usize,
        stride: usize,
    ) {
        let a = -self.velocity[d];
        for s in 0..self.n_vars {
            let gs = &grad[s * stride..(s + 1) * stride];
            let os = &mut out[s * stride..(s + 1) * stride];
            for (o, g) in os.iter_mut().zip(gs) {
                *o = a * g;
            }
        }
        for v in out[self.n_vars * stride..].iter_mut() {
            *v = 0.0;
        }
    }

    fn has_vectorized_user_functions(&self) -> bool {
        true
    }

    fn max_wavespeed(&self, d: usize, _q: &[f64]) -> f64 {
        self.velocity[d].abs()
    }

    fn flux_flops(&self) -> u64 {
        0
    }

    fn ncp_flops(&self) -> u64 {
        self.n_vars as u64
    }
}

/// Smooth periodic exact solution `q_s(x, t) = sin(2π (k·(x − a t)) + φ_s)`
/// on the unit-periodic domain.
#[derive(Debug, Clone)]
pub struct AdvectedSine {
    /// Number of components (each phase-shifted).
    pub n_vars: usize,
    /// Advection velocity (must match the PDE).
    pub velocity: [f64; 3],
    /// Integer wave vector (periodicity on the unit cube).
    pub wave: [f64; 3],
}

impl ExactSolution for AdvectedSine {
    fn evaluate(&self, x: [f64; 3], t: f64, q: &mut [f64]) {
        let phase: f64 = (0..3)
            .map(|d| self.wave[d] * (x[d] - self.velocity[d] * t))
            .sum();
        for s in 0..self.n_vars {
            q[s] = (2.0 * std::f64::consts::PI * phase + s as f64).sin();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flux_and_ncp_forms_agree_on_derivative_action() {
        // For the same state gradient, flux-divergence of F = -a q equals
        // the ncp product -a ∇q (constant coefficients).
        let a = [1.3, -0.4, 0.8];
        let f_sys = AdvectionSystem::new(4, a);
        let n_sys = AdvectionNcpSystem::new(4, a);
        let grad = [0.3, -1.0, 0.25, 2.0];
        let q = [0.0; 4];
        for d in 0..3 {
            // d(F_d)/dx = -a_d dq/dx for linear flux: evaluate flux on the
            // gradient itself (linearity).
            let mut via_flux = [0.0; 4];
            f_sys.flux(d, &grad, &mut via_flux);
            let mut via_ncp = [0.0; 4];
            n_sys.ncp(d, &q, &grad, &mut via_ncp);
            assert_eq!(via_flux, via_ncp);
        }
    }

    #[test]
    fn vectorized_paths_match_defaults() {
        let sys = AdvectionSystem::new(3, [0.5, 1.0, -2.0]);
        let stride = 8;
        let len = 6;
        let m = sys.num_quantities();
        let mut q = vec![0.0; m * stride];
        for s in 0..m {
            for i in 0..len {
                q[s * stride + i] = (s + 1) as f64 * (i as f64 - 2.5);
            }
        }
        for d in 0..3 {
            let mut f_vec = vec![0.0; m * stride];
            sys.flux_vect(d, &q, &mut f_vec, len, stride);
            // Pointwise reference.
            for i in 0..len {
                let qi: Vec<f64> = (0..m).map(|s| q[s * stride + i]).collect();
                let mut fi = vec![0.0; m];
                sys.flux(d, &qi, &mut fi);
                for s in 0..m {
                    assert!((f_vec[s * stride + i] - fi[s]).abs() < 1e-15);
                }
            }
        }
    }

    #[test]
    fn wavespeeds() {
        let sys = AdvectionSystem::new(1, [3.0, -4.0, 0.0]);
        assert_eq!(sys.max_wavespeed(0, &[0.0]), 3.0);
        assert_eq!(sys.max_wavespeed(1, &[0.0]), 4.0);
        assert_eq!(sys.max_wavespeed(2, &[0.0]), 0.0);
    }

    #[test]
    fn exact_solution_translates() {
        let ex = AdvectedSine {
            n_vars: 2,
            velocity: [1.0, 0.0, 0.0],
            wave: [1.0, 0.0, 0.0],
        };
        let mut q0 = [0.0; 2];
        let mut q1 = [0.0; 2];
        ex.evaluate([0.25, 0.0, 0.0], 0.0, &mut q0);
        ex.evaluate([0.55, 0.0, 0.0], 0.3, &mut q1);
        assert!((q0[0] - q1[0]).abs() < 1e-14);
        assert!((q0[1] - q1[1]).abs() < 1e-14);
    }
}
