//! Maxwell's equations (source-free, linear, isotropic media) in
//! first-order form — a second large linear hyperbolic system exercising
//! the engine beyond seismics: `ε E_t = ∇×H`, `μ H_t = −∇×E`.
//!
//! Six evolved quantities (E, H) and two material parameters (ε, μ).

use crate::traits::{ExactSolution, LinearPde};

/// Index of Ex.
pub const EX: usize = 0;
/// Index of Ey.
pub const EY: usize = 1;
/// Index of Ez.
pub const EZ: usize = 2;
/// Index of Hx.
pub const HX: usize = 3;
/// Index of Hy.
pub const HY: usize = 4;
/// Index of Hz.
pub const HZ: usize = 5;
/// Number of evolved quantities.
pub const VARS: usize = 6;
/// Parameters: permittivity ε, permeability μ.
pub const PARAMS: usize = 2;

/// The Maxwell system.
///
/// ```
/// use aderdg_pde::{maxwell, LinearPde, Maxwell};
///
/// let pde = Maxwell;
/// let mut q = vec![0.0; pde.num_quantities()];
/// q[maxwell::HZ] = 3.0;
/// Maxwell::set_params(&mut q, 4.0, 1.0); // ε = 4, μ = 1 → c = 1/2
/// assert_eq!(pde.max_wavespeed(0, &q), 0.5);
/// let mut f = vec![0.0; pde.num_quantities()];
/// pde.flux(0, &q, &mut f); // E_t = (∇×H)/ε: the Ey row reads −Hz/ε
/// assert_eq!(f[maxwell::EY], -0.75);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Maxwell;

impl Maxwell {
    /// Fills the parameter slots.
    pub fn set_params(q: &mut [f64], epsilon: f64, mu: f64) {
        q[VARS] = epsilon;
        q[VARS + 1] = mu;
    }

    /// Light speed `1/sqrt(εμ)` of a state's medium.
    pub fn light_speed(q: &[f64]) -> f64 {
        1.0 / (q[VARS] * q[VARS + 1]).sqrt()
    }
}

impl LinearPde for Maxwell {
    fn num_vars(&self) -> usize {
        VARS
    }

    fn num_params(&self) -> usize {
        PARAMS
    }

    fn flux(&self, d: usize, q: &[f64], f: &mut [f64]) {
        let ie = 1.0 / q[VARS];
        let im = 1.0 / q[VARS + 1];
        f.fill(0.0);
        // Q_t = ∇·F with E_t = (∇×H)/ε, H_t = −(∇×E)/μ.
        match d {
            0 => {
                f[EY] = -q[HZ] * ie;
                f[EZ] = q[HY] * ie;
                f[HY] = q[EZ] * im;
                f[HZ] = -q[EY] * im;
            }
            1 => {
                f[EX] = q[HZ] * ie;
                f[EZ] = -q[HX] * ie;
                f[HX] = -q[EZ] * im;
                f[HZ] = q[EX] * im;
            }
            _ => {
                f[EX] = -q[HY] * ie;
                f[EY] = q[HX] * ie;
                f[HX] = q[EY] * im;
                f[HY] = -q[EX] * im;
            }
        }
    }

    fn flux_vect(&self, d: usize, q: &[f64], f: &mut [f64], len: usize, stride: usize) {
        const MAX_LANES: usize = 64;
        assert!(stride <= MAX_LANES, "x-line too long for the lane buffer");
        let mut ie = [0.0f64; MAX_LANES];
        let mut im = [0.0f64; MAX_LANES];
        for i in 0..len {
            ie[i] = 1.0 / q[VARS * stride + i];
            im[i] = 1.0 / q[(VARS + 1) * stride + i];
        }
        f.fill(0.0);
        // (dst, src, sign, electric?) rows per direction.
        let rows: [(usize, usize, f64, bool); 4] = match d {
            0 => [
                (EY, HZ, -1.0, true),
                (EZ, HY, 1.0, true),
                (HY, EZ, 1.0, false),
                (HZ, EY, -1.0, false),
            ],
            1 => [
                (EX, HZ, 1.0, true),
                (EZ, HX, -1.0, true),
                (HX, EZ, -1.0, false),
                (HZ, EX, 1.0, false),
            ],
            _ => [
                (EX, HY, -1.0, true),
                (EY, HX, 1.0, true),
                (HX, EY, 1.0, false),
                (HY, EX, -1.0, false),
            ],
        };
        for (dst, src, sign, electric) in rows {
            let srow = &q[src * stride..(src + 1) * stride];
            let frow = &mut f[dst * stride..(dst + 1) * stride];
            let coeff = if electric { &ie } else { &im };
            for i in 0..stride {
                frow[i] = sign * srow[i] * coeff[i];
            }
        }
    }

    fn has_vectorized_user_functions(&self) -> bool {
        true
    }

    fn max_wavespeed(&self, _d: usize, q: &[f64]) -> f64 {
        Self::light_speed(q)
    }

    /// Perfect-electric-conductor wall: tangential E flips.
    fn reflective_ghost(&self, d: usize, _outward: f64, q: &[f64], ghost: &mut [f64]) {
        ghost.copy_from_slice(q);
        for e in [EX, EY, EZ] {
            if e != d {
                ghost[e] = -q[e];
            }
        }
    }

    fn flux_flops(&self) -> u64 {
        4 * 2 + 2
    }
}

/// Exact transverse electromagnetic plane wave in a homogeneous medium:
/// `E = p A sin(2πk(n·x − ct))`, `H = (n×p) A √(ε/μ) sin(·)`, `p ⟂ n`.
///
/// ```
/// use aderdg_pde::{maxwell, ExactSolution, MaxwellPlaneWave};
///
/// let wave = MaxwellPlaneWave {
///     direction: [0.0, 0.0, 1.0],
///     polarization: [1.0, 0.0, 0.0],
///     amplitude: 1.0,
///     wavenumber: 1.0,
///     epsilon: 1.0,
///     mu: 1.0,
/// };
/// let mut q = [0.0; 6];
/// wave.evaluate([0.0, 0.0, 0.25], 0.0, &mut q); // crest of sin(2πz)
/// assert!((q[maxwell::EX] - 1.0).abs() < 1e-12);
/// assert!((q[maxwell::HY] - 1.0).abs() < 1e-12); // H = n × p at unit impedance
/// ```
#[derive(Debug, Clone)]
pub struct MaxwellPlaneWave {
    /// Unit propagation direction.
    pub direction: [f64; 3],
    /// Unit polarization of E (must be ⟂ direction).
    pub polarization: [f64; 3],
    /// Amplitude.
    pub amplitude: f64,
    /// Spatial frequency.
    pub wavenumber: f64,
    /// Permittivity.
    pub epsilon: f64,
    /// Permeability.
    pub mu: f64,
}

impl ExactSolution for MaxwellPlaneWave {
    fn evaluate(&self, x: [f64; 3], t: f64, q: &mut [f64]) {
        let n = self.direction;
        let p = self.polarization;
        let c = 1.0 / (self.epsilon * self.mu).sqrt();
        let phase = 2.0
            * std::f64::consts::PI
            * self.wavenumber
            * (n[0] * x[0] + n[1] * x[1] + n[2] * x[2] - c * t);
        let a = self.amplitude * phase.sin();
        let z = (self.epsilon / self.mu).sqrt();
        let h = [
            (n[1] * p[2] - n[2] * p[1]) * z,
            (n[2] * p[0] - n[0] * p[2]) * z,
            (n[0] * p[1] - n[1] * p[0]) * z,
        ];
        q[EX] = p[0] * a;
        q[EY] = p[1] * a;
        q[EZ] = p[2] * a;
        q[HX] = h[0] * a;
        q[HY] = h[1] * a;
        q[HZ] = h[2] * a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(e: [f64; 3], h: [f64; 3], eps: f64, mu: f64) -> Vec<f64> {
        let mut q = vec![0.0; VARS + PARAMS];
        q[..3].copy_from_slice(&e);
        q[3..6].copy_from_slice(&h);
        Maxwell::set_params(&mut q, eps, mu);
        q
    }

    #[test]
    fn flux_is_curl_structured() {
        let pde = Maxwell;
        let q = state([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], 2.0, 0.5);
        let mut f = vec![0.0; VARS + PARAMS];
        pde.flux(0, &q, &mut f);
        assert_eq!(f[EX], 0.0);
        assert_eq!(f[EY], -6.0 / 2.0);
        assert_eq!(f[EZ], 5.0 / 2.0);
        assert_eq!(f[HX], 0.0);
        assert_eq!(f[HY], 3.0 / 0.5);
        assert_eq!(f[HZ], -2.0 / 0.5);
    }

    #[test]
    fn vectorized_matches_pointwise() {
        let pde = Maxwell;
        let stride = 8;
        let len = 5;
        let m = pde.num_quantities();
        let mut q = vec![0.0; m * stride];
        for i in 0..len {
            for s in 0..VARS {
                q[s * stride + i] = (s as f64 + 1.0) * (i as f64 - 2.0) * 0.1;
            }
            q[VARS * stride + i] = 1.0 + 0.1 * i as f64;
            q[(VARS + 1) * stride + i] = 2.0 - 0.1 * i as f64;
        }
        for d in 0..3 {
            let mut fv = vec![f64::NAN; m * stride];
            pde.flux_vect(d, &q, &mut fv, len, stride);
            for i in 0..len {
                let qi: Vec<f64> = (0..m).map(|s| q[s * stride + i]).collect();
                let mut fi = vec![0.0; m];
                pde.flux(d, &qi, &mut fi);
                for s in 0..m {
                    assert!(
                        (fv[s * stride + i] - fi[s]).abs() < 1e-14,
                        "d={d} s={s} i={i}"
                    );
                }
            }
            for s in 0..m {
                for i in len..stride {
                    assert_eq!(fv[s * stride + i], 0.0);
                }
            }
        }
    }

    #[test]
    fn plane_wave_satisfies_maxwell() {
        // FD residual of Q_t = Σ_d ∂_d F_d(Q).
        let pde = Maxwell;
        let w = MaxwellPlaneWave {
            direction: [0.6, 0.8, 0.0],
            polarization: [0.0, 0.0, 1.0],
            amplitude: 1.0,
            wavenumber: 1.0,
            epsilon: 1.5,
            mu: 0.8,
        };
        let m = VARS + PARAMS;
        let eval = |x: [f64; 3], t: f64| -> Vec<f64> {
            let mut q = vec![0.0; m];
            w.evaluate(x, t, &mut q);
            Maxwell::set_params(&mut q, w.epsilon, w.mu);
            q
        };
        let h = 1e-6;
        let x = [0.2, 0.7, 0.4];
        let t = 0.3;
        let qp = eval(x, t + h);
        let qm = eval(x, t - h);
        let mut div = [0.0; VARS];
        for d in 0..3 {
            let mut xp = x;
            xp[d] += h;
            let mut xm = x;
            xm[d] -= h;
            let mut fp = vec![0.0; m];
            let mut fm = vec![0.0; m];
            pde.flux(d, &eval(xp, t), &mut fp);
            pde.flux(d, &eval(xm, t), &mut fm);
            for s in 0..VARS {
                div[s] += (fp[s] - fm[s]) / (2.0 * h);
            }
        }
        for s in 0..VARS {
            let qt = (qp[s] - qm[s]) / (2.0 * h);
            assert!(
                (qt - div[s]).abs() < 2e-3 * (1.0 + qt.abs()),
                "s={s}: {qt} vs {}",
                div[s]
            );
        }
    }

    #[test]
    fn light_speed_and_pec_ghost() {
        let pde = Maxwell;
        let q = state([1.0, 2.0, 3.0], [0.0; 3], 4.0, 1.0);
        assert!((pde.max_wavespeed(0, &q) - 0.5).abs() < 1e-14);
        let mut ghost = vec![0.0; VARS + PARAMS];
        pde.reflective_ghost(0, 1.0, &q, &mut ghost);
        assert_eq!(ghost[EX], 1.0); // normal E kept
        assert_eq!(ghost[EY], -2.0);
        assert_eq!(ghost[EZ], -3.0);
    }
}
