//! Linear elastodynamics in first-order velocity–stress form on (possibly)
//! curvilinear meshes — the paper's benchmark workload (Sec. VI).
//!
//! Evolved quantities (9): particle velocity `v = (vx, vy, vz)` and the
//! symmetric stress tensor `(σxx, σyy, σzz, σxy, σxz, σyz)`. Parameters
//! (12): the material triple `(ρ, cp, cs)` and the nine entries of the
//! curvilinear metric `J` stored at each node — `m = 21` stored quantities,
//! matching the paper's setup exactly.
//!
//! The flux in logical direction `d` is the metric-weighted combination of
//! the Cartesian fluxes, `F_d = Σ_j J[d][j] F̂_j`; on a Cartesian mesh
//! (`J = I`) this is the textbook elastic wave equation, which the
//! plane-wave convergence tests verify.

use crate::traits::{ExactSolution, LinearPde};

/// Indices of the velocity components.
pub const VX: usize = 0;
/// y-velocity.
pub const VY: usize = 1;
/// z-velocity.
pub const VZ: usize = 2;
/// Normal stresses.
pub const SXX: usize = 3;
/// σyy.
pub const SYY: usize = 4;
/// σzz.
pub const SZZ: usize = 5;
/// Shear stresses.
pub const SXY: usize = 6;
/// σxz.
pub const SXZ: usize = 7;
/// σyz.
pub const SYZ: usize = 8;
/// Number of evolved quantities.
pub const VARS: usize = 9;
/// Parameters: ρ, cp, cs + 9 metric entries.
pub const PARAMS: usize = 12;
/// Offset of the density parameter.
pub const P_RHO: usize = VARS;
/// Offset of the P-wave speed parameter.
pub const P_CP: usize = VARS + 1;
/// Offset of the S-wave speed parameter.
pub const P_CS: usize = VARS + 2;
/// Offset of the 3×3 metric block (row-major).
pub const P_JAC: usize = VARS + 3;

/// Homogeneous isotropic material description.
///
/// ```
/// use aderdg_pde::Material;
///
/// let granite = Material { rho: 2.7, cp: 6.0, cs: 3.0 };
/// assert!((granite.mu() - 2.7 * 9.0).abs() < 1e-12);     // μ = ρ cs²
/// assert!((granite.lambda() - 2.7 * 18.0).abs() < 1e-12); // λ = ρ (cp² − 2 cs²)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Density.
    pub rho: f64,
    /// P-wave speed.
    pub cp: f64,
    /// S-wave speed.
    pub cs: f64,
}

impl Material {
    /// Lamé parameter `μ = ρ cs²`.
    pub fn mu(&self) -> f64 {
        self.rho * self.cs * self.cs
    }

    /// Lamé parameter `λ = ρ (cp² − 2 cs²)`.
    pub fn lambda(&self) -> f64 {
        self.rho * (self.cp * self.cp - 2.0 * self.cs * self.cs)
    }
}

/// The elastic wave equation (LOH1-style setups).
///
/// ```
/// use aderdg_pde::{elastic, Elastic, LinearPde, Material};
///
/// let pde = Elastic;
/// assert_eq!(pde.num_quantities(), 21); // 9 evolved + 3 material + 9 metric
/// let mat = Material { rho: 1.0, cp: 1.0, cs: 0.5 };
/// let mut q = vec![0.0; 21];
/// q[elastic::SXX] = 2.0;
/// Elastic::set_params(&mut q, mat, &Elastic::IDENTITY_JAC);
/// let mut f = vec![0.0; 21];
/// pde.flux(0, &q, &mut f); // F_x[vx] = σxx/ρ on a Cartesian mesh
/// assert_eq!(f[elastic::VX], 2.0);
/// assert_eq!(pde.max_wavespeed(0, &q), 1.0); // cp · |J row|
/// ```
#[derive(Debug, Clone, Default)]
pub struct Elastic;

impl Elastic {
    /// Writes the 12 parameter slots of a state vector: material plus the
    /// metric rows (identity for Cartesian meshes).
    pub fn set_params(q: &mut [f64], mat: Material, jac: &[f64; 9]) {
        q[P_RHO] = mat.rho;
        q[P_CP] = mat.cp;
        q[P_CS] = mat.cs;
        q[P_JAC..P_JAC + 9].copy_from_slice(jac);
    }

    /// Identity metric (Cartesian mesh).
    pub const IDENTITY_JAC: [f64; 9] = [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];

    /// Cartesian flux `F̂_j(Q)` into `f[0..VARS]` given Lamé parameters.
    #[inline]
    fn cartesian_flux(j: usize, q: &[f64], inv_rho: f64, lam: f64, mu: f64, f: &mut [f64; VARS]) {
        let lam2mu = lam + 2.0 * mu;
        match j {
            0 => {
                f[VX] = q[SXX] * inv_rho;
                f[VY] = q[SXY] * inv_rho;
                f[VZ] = q[SXZ] * inv_rho;
                f[SXX] = lam2mu * q[VX];
                f[SYY] = lam * q[VX];
                f[SZZ] = lam * q[VX];
                f[SXY] = mu * q[VY];
                f[SXZ] = mu * q[VZ];
                f[SYZ] = 0.0;
            }
            1 => {
                f[VX] = q[SXY] * inv_rho;
                f[VY] = q[SYY] * inv_rho;
                f[VZ] = q[SYZ] * inv_rho;
                f[SXX] = lam * q[VY];
                f[SYY] = lam2mu * q[VY];
                f[SZZ] = lam * q[VY];
                f[SXY] = mu * q[VX];
                f[SXZ] = 0.0;
                f[SYZ] = mu * q[VZ];
            }
            _ => {
                f[VX] = q[SXZ] * inv_rho;
                f[VY] = q[SYZ] * inv_rho;
                f[VZ] = q[SZZ] * inv_rho;
                f[SXX] = lam * q[VZ];
                f[SYY] = lam * q[VZ];
                f[SZZ] = lam2mu * q[VZ];
                f[SXY] = 0.0;
                f[SXZ] = mu * q[VX];
                f[SYZ] = mu * q[VY];
            }
        }
    }
}

impl LinearPde for Elastic {
    fn num_vars(&self) -> usize {
        VARS
    }

    fn num_params(&self) -> usize {
        PARAMS
    }

    fn flux(&self, d: usize, q: &[f64], f: &mut [f64]) {
        let rho = q[P_RHO];
        let inv_rho = 1.0 / rho;
        let mat = Material {
            rho,
            cp: q[P_CP],
            cs: q[P_CS],
        };
        let (lam, mu) = (mat.lambda(), mat.mu());
        f.fill(0.0);
        let mut fj = [0.0f64; VARS];
        for j in 0..3 {
            let w = q[P_JAC + 3 * d + j];
            if w == 0.0 {
                continue;
            }
            Elastic::cartesian_flux(j, q, inv_rho, lam, mu, &mut fj);
            for s in 0..VARS {
                f[s] += w * fj[s];
            }
        }
    }

    fn flux_vect(&self, d: usize, q: &[f64], f: &mut [f64], len: usize, stride: usize) {
        // Fully vectorized lane loop (Fig. 8): per-lane material and metric.
        const MAX_LANES: usize = 64;
        assert!(stride <= MAX_LANES, "x-line too long for the lane buffer");
        // Reciprocal density and Lamé parameters, guarded on the unpadded
        // range (padding lanes have ρ = 0; Sec. V-C).
        let mut inv_rho = [0.0f64; MAX_LANES];
        let mut lam = [0.0f64; MAX_LANES];
        let mut mu = [0.0f64; MAX_LANES];
        let rho = &q[P_RHO * stride..(P_RHO + 1) * stride];
        let cp = &q[P_CP * stride..(P_CP + 1) * stride];
        let cs = &q[P_CS * stride..(P_CS + 1) * stride];
        for i in 0..len {
            inv_rho[i] = 1.0 / rho[i];
            let cs2 = cs[i] * cs[i];
            mu[i] = rho[i] * cs2;
            lam[i] = rho[i] * (cp[i] * cp[i] - 2.0 * cs2);
        }
        f.fill(0.0);
        // Row views of q (immutable) — indices into the SoA block.
        let row = |s: usize| &q[s * stride..(s + 1) * stride];
        let jac_row = |j: usize| &q[(P_JAC + 3 * d + j) * stride..(P_JAC + 3 * d + j + 1) * stride];
        for j in 0..3 {
            let w = jac_row(j);
            // Cartesian flux component j, accumulated with the metric weight.
            // The (dst, src, coef) table mirrors `cartesian_flux`.
            let v_rows: [(usize, usize); 3] = match j {
                0 => [(VX, SXX), (VY, SXY), (VZ, SXZ)],
                1 => [(VX, SXY), (VY, SYY), (VZ, SYZ)],
                _ => [(VX, SXZ), (VY, SYZ), (VZ, SZZ)],
            };
            for (dst, src) in v_rows {
                let srow = row(src);
                let frow = &mut f[dst * stride..(dst + 1) * stride];
                for i in 0..stride {
                    frow[i] += w[i] * srow[i] * inv_rho[i];
                }
            }
            let vrow = row(VX + j);
            // Normal stress rows: coefficient λ, or λ+2μ on the j-th one.
            for (r, srow_idx) in [SXX, SYY, SZZ].iter().enumerate() {
                let frow = &mut f[srow_idx * stride..(srow_idx + 1) * stride];
                if r == j {
                    for i in 0..stride {
                        frow[i] += w[i] * (lam[i] + 2.0 * mu[i]) * vrow[i];
                    }
                } else {
                    for i in 0..stride {
                        frow[i] += w[i] * lam[i] * vrow[i];
                    }
                }
            }
            // Shear rows: σ_ab gets μ v_b from F̂_a and μ v_a from F̂_b.
            let shear: [(usize, usize); 2] = match j {
                0 => [(SXY, VY), (SXZ, VZ)],
                1 => [(SXY, VX), (SYZ, VZ)],
                _ => [(SXZ, VX), (SYZ, VY)],
            };
            for (dst, src) in shear {
                let srow = row(src);
                let frow = &mut f[dst * stride..(dst + 1) * stride];
                for i in 0..stride {
                    frow[i] += w[i] * mu[i] * srow[i];
                }
            }
        }
    }

    fn has_vectorized_user_functions(&self) -> bool {
        true
    }

    fn max_wavespeed(&self, d: usize, q: &[f64]) -> f64 {
        let g = &q[P_JAC + 3 * d..P_JAC + 3 * d + 3];
        let norm = (g[0] * g[0] + g[1] * g[1] + g[2] * g[2]).sqrt();
        q[P_CP] * norm
    }

    /// Free-surface boundary: the traction components `σ·e_d` are negated
    /// in the ghost state (so the Riemann average enforces zero traction),
    /// velocities are copied — the standard mirror condition for LOH1.
    fn reflective_ghost(&self, d: usize, _outward: f64, q: &[f64], ghost: &mut [f64]) {
        ghost.copy_from_slice(q);
        let traction = match d {
            0 => [SXX, SXY, SXZ],
            1 => [SYY, SXY, SYZ],
            _ => [SZZ, SXZ, SYZ],
        };
        for s in traction {
            ghost[s] = -q[s];
        }
    }

    /// Per pointwise flux call in one direction: three Cartesian fluxes
    /// (≈ 16 mul/add each) combined with metric weights (9 × 2).
    fn flux_flops(&self) -> u64 {
        3 * 16 + 9 * 2 + 8
    }
}

/// Exact elastic plane wave in a homogeneous Cartesian medium.
///
/// P-wave: polarization = propagation direction, speed `cp`.
/// S-wave: polarization ⟂ direction, speed `cs`.
///
/// ```
/// use aderdg_pde::{ElasticPlaneWave, Material};
///
/// let mat = Material { rho: 1.0, cp: 2.0, cs: 1.0 };
/// let p_wave = ElasticPlaneWave {
///     direction: [1.0, 0.0, 0.0],
///     polarization: [1.0, 0.0, 0.0],
///     amplitude: 0.1,
///     wavenumber: 1.0,
///     material: mat,
/// };
/// assert!(p_wave.is_p_wave());
/// assert_eq!(p_wave.speed(), 2.0); // P-waves travel at cp
/// let s_wave = ElasticPlaneWave { polarization: [0.0, 1.0, 0.0], ..p_wave };
/// assert_eq!(s_wave.speed(), 1.0); // S-waves at cs
/// ```
#[derive(Debug, Clone)]
pub struct ElasticPlaneWave {
    /// Unit propagation direction `n`.
    pub direction: [f64; 3],
    /// Unit polarization `m` (set equal to `direction` for a P-wave).
    pub polarization: [f64; 3],
    /// Amplitude.
    pub amplitude: f64,
    /// Spatial frequency (integer for unit-cube periodicity).
    pub wavenumber: f64,
    /// Medium.
    pub material: Material,
}

impl ElasticPlaneWave {
    /// True if polarization ∥ direction (P-wave).
    pub fn is_p_wave(&self) -> bool {
        let n = self.direction;
        let m = self.polarization;
        let dot: f64 = n.iter().zip(&m).map(|(a, b)| a * b).sum();
        (dot.abs() - 1.0).abs() < 1e-12
    }

    /// Phase speed of this wave.
    pub fn speed(&self) -> f64 {
        if self.is_p_wave() {
            self.material.cp
        } else {
            self.material.cs
        }
    }
}

impl ExactSolution for ElasticPlaneWave {
    fn evaluate(&self, x: [f64; 3], t: f64, q: &mut [f64]) {
        let n = self.direction;
        let m = self.polarization;
        let c = self.speed();
        let (lam, mu) = (self.material.lambda(), self.material.mu());
        let phase = 2.0
            * std::f64::consts::PI
            * self.wavenumber
            * (n[0] * x[0] + n[1] * x[1] + n[2] * x[2] - c * t);
        let a = self.amplitude * phase.sin();
        q[VX] = m[0] * a;
        q[VY] = m[1] * a;
        q[VZ] = m[2] * a;
        let nm: f64 = n.iter().zip(&m).map(|(a, b)| a * b).sum();
        // σ_ij = -(λ δ_ij (n·m) + μ (n_i m_j + n_j m_i)) a / c.
        let sig = |i: usize, j: usize| -> f64 {
            let delta = if i == j { 1.0 } else { 0.0 };
            -(lam * delta * nm + mu * (n[i] * m[j] + n[j] * m[i])) * a / c
        };
        q[SXX] = sig(0, 0);
        q[SYY] = sig(1, 1);
        q[SZZ] = sig(2, 2);
        q[SXY] = sig(0, 1);
        q[SXZ] = sig(0, 2);
        q[SYZ] = sig(1, 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAT: Material = Material {
        rho: 2.7,
        cp: 6.0,
        cs: 3.343,
    };

    fn cart_state(v: [f64; 3], s: [f64; 6]) -> Vec<f64> {
        let mut q = vec![0.0; VARS + PARAMS];
        q[..3].copy_from_slice(&v);
        q[3..9].copy_from_slice(&s);
        Elastic::set_params(&mut q, MAT, &Elastic::IDENTITY_JAC);
        q
    }

    #[test]
    fn lame_parameters() {
        let m = Material {
            rho: 2.0,
            cp: 3.0,
            cs: 1.0,
        };
        assert!((m.mu() - 2.0).abs() < 1e-14);
        assert!((m.lambda() - 14.0).abs() < 1e-14);
    }

    #[test]
    fn cartesian_flux_x_structure() {
        let pde = Elastic;
        let q = cart_state([1.0, 2.0, 3.0], [10.0, 20.0, 30.0, 40.0, 50.0, 60.0]);
        let mut f = vec![0.0; VARS + PARAMS];
        pde.flux(0, &q, &mut f);
        let (lam, mu) = (MAT.lambda(), MAT.mu());
        assert!((f[VX] - 10.0 / MAT.rho).abs() < 1e-12);
        assert!((f[VY] - 40.0 / MAT.rho).abs() < 1e-12);
        assert!((f[VZ] - 50.0 / MAT.rho).abs() < 1e-12);
        assert!((f[SXX] - (lam + 2.0 * mu)).abs() < 1e-12);
        assert!((f[SYY] - lam).abs() < 1e-12);
        assert!((f[SXY] - 2.0 * mu).abs() < 1e-12);
        assert!((f[SXZ] - 3.0 * mu).abs() < 1e-12);
        assert_eq!(f[SYZ], 0.0);
        // Parameter rows carry no flux.
        assert!(f[VARS..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn metric_combination_is_linear() {
        // With J row d = (0.3, 0.4, 0.5), the flux must equal the weighted
        // sum of the Cartesian fluxes.
        let pde = Elastic;
        let mut q = cart_state([0.2, -0.7, 1.1], [1.0, -2.0, 0.5, 0.3, -0.9, 2.0]);
        let mut fx = vec![0.0; VARS + PARAMS];
        let mut fy = vec![0.0; VARS + PARAMS];
        let mut fz = vec![0.0; VARS + PARAMS];
        pde.flux(0, &q, &mut fx);
        pde.flux(1, &q, &mut fy);
        pde.flux(2, &q, &mut fz);

        let jac = [0.3, 0.4, 0.5, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        Elastic::set_params(&mut q, MAT, &jac);
        let mut f = vec![0.0; VARS + PARAMS];
        pde.flux(0, &q, &mut f);
        for s in 0..VARS {
            let want = 0.3 * fx[s] + 0.4 * fy[s] + 0.5 * fz[s];
            assert!((f[s] - want).abs() < 1e-12, "s={s}");
        }
    }

    #[test]
    fn vectorized_matches_pointwise_with_varying_material() {
        let pde = Elastic;
        let stride = 8;
        let len = 7;
        let m = pde.num_quantities();
        let mut q = vec![0.0; m * stride];
        for i in 0..len {
            for s in 0..VARS {
                q[s * stride + i] = ((s * 7 + i) as f64 * 0.37).sin();
            }
            q[P_RHO * stride + i] = 2.0 + 0.2 * i as f64;
            q[P_CP * stride + i] = 5.0 + 0.1 * i as f64;
            q[P_CS * stride + i] = 3.0 - 0.1 * i as f64;
            // A smoothly varying metric.
            for r in 0..9 {
                let base = if r % 4 == 0 { 1.0 } else { 0.0 };
                q[(P_JAC + r) * stride + i] = base + 0.05 * ((r + i) as f64).cos();
            }
        }
        for d in 0..3 {
            let mut fv = vec![f64::NAN; m * stride];
            pde.flux_vect(d, &q, &mut fv, len, stride);
            for i in 0..len {
                let qi: Vec<f64> = (0..m).map(|s| q[s * stride + i]).collect();
                let mut fi = vec![0.0; m];
                pde.flux(d, &qi, &mut fi);
                for s in 0..m {
                    assert!(
                        (fv[s * stride + i] - fi[s]).abs() < 1e-12,
                        "d={d} s={s} i={i}: {} vs {}",
                        fv[s * stride + i],
                        fi[s]
                    );
                }
            }
            for s in 0..m {
                for i in len..stride {
                    assert_eq!(fv[s * stride + i], 0.0, "padding d={d} s={s} i={i}");
                }
            }
        }
    }

    #[test]
    fn p_wave_satisfies_pde_residual() {
        residual_check(ElasticPlaneWave {
            direction: [0.6, 0.0, 0.8],
            polarization: [0.6, 0.0, 0.8],
            amplitude: 1.0,
            wavenumber: 1.0,
            material: MAT,
        });
    }

    #[test]
    fn s_wave_satisfies_pde_residual() {
        residual_check(ElasticPlaneWave {
            direction: [0.6, 0.0, 0.8],
            polarization: [-0.8, 0.0, 0.6],
            amplitude: 0.7,
            wavenumber: 2.0,
            material: MAT,
        });
    }

    fn residual_check(w: ElasticPlaneWave) {
        // Verify Q_t = Σ_d ∂_d F_d(Q) by central differences on a Cartesian
        // identity metric.
        let pde = Elastic;
        let h = 1e-6;
        let x = [0.3, 0.45, 0.62];
        let t = 0.11;
        let m = VARS + PARAMS;
        let eval = |x: [f64; 3], t: f64| -> Vec<f64> {
            let mut q = vec![0.0; m];
            w.evaluate(x, t, &mut q);
            Elastic::set_params(&mut q, w.material, &Elastic::IDENTITY_JAC);
            q
        };
        let qt: Vec<f64> = {
            let qp = eval(x, t + h);
            let qm = eval(x, t - h);
            (0..VARS).map(|s| (qp[s] - qm[s]) / (2.0 * h)).collect()
        };
        let mut div_f = [0.0; VARS];
        for d in 0..3 {
            let mut xp = x;
            xp[d] += h;
            let mut xm = x;
            xm[d] -= h;
            let mut fp = vec![0.0; m];
            let mut fm = vec![0.0; m];
            pde.flux(d, &eval(xp, t), &mut fp);
            pde.flux(d, &eval(xm, t), &mut fm);
            for s in 0..VARS {
                div_f[s] += (fp[s] - fm[s]) / (2.0 * h);
            }
        }
        for s in 0..VARS {
            assert!(
                (qt[s] - div_f[s]).abs() < 2e-3 * (1.0 + qt[s].abs()),
                "s={s}: {} vs {}",
                qt[s],
                div_f[s]
            );
        }
    }

    #[test]
    fn wavespeed_scales_with_metric() {
        let pde = Elastic;
        let mut q = cart_state([0.0; 3], [0.0; 6]);
        assert!((pde.max_wavespeed(0, &q) - MAT.cp).abs() < 1e-13);
        let jac = [2.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        Elastic::set_params(&mut q, MAT, &jac);
        assert!((pde.max_wavespeed(0, &q) - 2.0 * MAT.cp).abs() < 1e-13);
    }
}
