//! Property-based tests: quadrature exactness and differentiation-matrix
//! exactness on random polynomials.

use aderdg_quadrature::{nodes_weights_01, Basis1d, QuadratureRule};
use proptest::prelude::*;

/// Evaluates a polynomial given by `coeffs` (ascending degree) at `x`.
fn poly(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// Derivative of the polynomial at `x`.
fn dpoly(coeffs: &[f64], x: f64) -> f64 {
    coeffs
        .iter()
        .enumerate()
        .skip(1)
        .rev()
        .fold(0.0, |acc, (k, &c)| acc * x + k as f64 * c)
}

/// Exact integral over [0, 1].
fn ipoly(coeffs: &[f64]) -> f64 {
    coeffs
        .iter()
        .enumerate()
        .map(|(k, &c)| c / (k as f64 + 1.0))
        .sum()
}

proptest! {
    #[test]
    fn gauss_legendre_integrates_random_polys_exactly(
        n in 1usize..10,
        coeffs in prop::collection::vec(-3.0f64..3.0, 1..=19),
    ) {
        // Truncate to the exactness degree 2n - 1.
        let deg_max = 2 * n - 1;
        let coeffs = &coeffs[..coeffs.len().min(deg_max + 1)];
        let (x, w) = nodes_weights_01(QuadratureRule::GaussLegendre, n);
        let q: f64 = x.iter().zip(&w).map(|(&xi, &wi)| wi * poly(coeffs, xi)).sum();
        let exact = ipoly(coeffs);
        prop_assert!((q - exact).abs() < 1e-10 * (1.0 + exact.abs()),
            "n={} q={} exact={}", n, q, exact);
    }

    #[test]
    fn gauss_lobatto_integrates_random_polys_exactly(
        n in 2usize..10,
        coeffs in prop::collection::vec(-3.0f64..3.0, 1..=15),
    ) {
        let deg_max = 2 * n - 3;
        let coeffs = &coeffs[..coeffs.len().min(deg_max + 1)];
        let (x, w) = nodes_weights_01(QuadratureRule::GaussLobatto, n);
        let q: f64 = x.iter().zip(&w).map(|(&xi, &wi)| wi * poly(coeffs, xi)).sum();
        let exact = ipoly(coeffs);
        prop_assert!((q - exact).abs() < 1e-10 * (1.0 + exact.abs()));
    }

    #[test]
    fn diff_matrix_differentiates_random_polys(
        n in 2usize..10,
        coeffs in prop::collection::vec(-2.0f64..2.0, 1..=9),
    ) {
        let coeffs = &coeffs[..coeffs.len().min(n)]; // degree < n
        let b = Basis1d::new(QuadratureRule::GaussLegendre, n);
        let f: Vec<f64> = b.nodes.iter().map(|&x| poly(coeffs, x)).collect();
        for k in 0..n {
            let dfk: f64 = (0..n).map(|l| b.diff[k * n + l] * f[l]).sum();
            let exact = dpoly(coeffs, b.nodes[k]);
            prop_assert!((dfk - exact).abs() < 1e-8 * (1.0 + exact.abs()),
                "n={} k={}: {} vs {}", n, k, dfk, exact);
        }
    }

    #[test]
    fn interpolation_reproduces_random_polys(
        n in 1usize..10,
        coeffs in prop::collection::vec(-2.0f64..2.0, 1..=9),
        x in 0.0f64..1.0,
    ) {
        let coeffs = &coeffs[..coeffs.len().min(n)];
        let b = Basis1d::new(QuadratureRule::GaussLegendre, n);
        let f: Vec<f64> = b.nodes.iter().map(|&t| poly(coeffs, t)).collect();
        let p = b.interpolate(&f, x);
        let exact = poly(coeffs, x);
        prop_assert!((p - exact).abs() < 1e-9 * (1.0 + exact.abs()));
    }

    #[test]
    fn face_projection_consistent_with_interpolation(
        n in 2usize..9,
        coeffs in prop::collection::vec(-2.0f64..2.0, 1..=8),
    ) {
        let coeffs = &coeffs[..coeffs.len().min(n)];
        let b = Basis1d::new(QuadratureRule::GaussLegendre, n);
        let f: Vec<f64> = b.nodes.iter().map(|&t| poly(coeffs, t)).collect();
        let left: f64 = b.phi_left.iter().zip(&f).map(|(p, v)| p * v).sum();
        let right: f64 = b.phi_right.iter().zip(&f).map(|(p, v)| p * v).sum();
        prop_assert!((left - poly(coeffs, 0.0)).abs() < 1e-9);
        prop_assert!((right - poly(coeffs, 1.0)).abs() < 1e-9);
    }
}
