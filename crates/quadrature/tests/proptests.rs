//! Property-style tests: quadrature exactness and differentiation-matrix
//! exactness on random polynomials, driven by deterministic seeded sweeps
//! (hermetic build — no external property-testing framework).

use aderdg_quadrature::{nodes_weights_01, Basis1d, QuadratureRule};
use aderdg_tensor::Lcg;

/// Evaluates a polynomial given by `coeffs` (ascending degree) at `x`.
fn poly(coeffs: &[f64], x: f64) -> f64 {
    coeffs.iter().rev().fold(0.0, |acc, &c| acc * x + c)
}

/// Derivative of the polynomial at `x`.
fn dpoly(coeffs: &[f64], x: f64) -> f64 {
    coeffs
        .iter()
        .enumerate()
        .skip(1)
        .rev()
        .fold(0.0, |acc, (k, &c)| acc * x + k as f64 * c)
}

/// Exact integral over [0, 1].
fn ipoly(coeffs: &[f64]) -> f64 {
    coeffs
        .iter()
        .enumerate()
        .map(|(k, &c)| c / (k as f64 + 1.0))
        .sum()
}

#[test]
fn gauss_legendre_integrates_random_polys_exactly() {
    for n in 1usize..10 {
        for seed in 0..8 {
            // Degree up to the exactness limit 2n - 1.
            let deg_max = 2 * n - 1;
            let mut rng = Lcg::new(n as u64 * 100 + seed);
            let coeffs = rng.vec(deg_max + 1, -3.0, 3.0);
            let (x, w) = nodes_weights_01(QuadratureRule::GaussLegendre, n);
            let q: f64 = x
                .iter()
                .zip(&w)
                .map(|(&xi, &wi)| wi * poly(&coeffs, xi))
                .sum();
            let exact = ipoly(&coeffs);
            assert!(
                (q - exact).abs() < 1e-10 * (1.0 + exact.abs()),
                "n={n} q={q} exact={exact}"
            );
        }
    }
}

#[test]
fn gauss_lobatto_integrates_random_polys_exactly() {
    for n in 2usize..10 {
        for seed in 0..8 {
            let deg_max = 2 * n - 3;
            let mut rng = Lcg::new(n as u64 * 100 + seed + 0xB0BA);
            let coeffs = rng.vec(deg_max + 1, -3.0, 3.0);
            let (x, w) = nodes_weights_01(QuadratureRule::GaussLobatto, n);
            let q: f64 = x
                .iter()
                .zip(&w)
                .map(|(&xi, &wi)| wi * poly(&coeffs, xi))
                .sum();
            let exact = ipoly(&coeffs);
            assert!((q - exact).abs() < 1e-10 * (1.0 + exact.abs()));
        }
    }
}

#[test]
fn diff_matrix_differentiates_random_polys() {
    for n in 2usize..10 {
        for seed in 0..8 {
            let mut rng = Lcg::new(n as u64 * 37 + seed);
            let coeffs = rng.vec(n.min(9), -2.0, 2.0); // degree < n
            let b = Basis1d::new(QuadratureRule::GaussLegendre, n);
            let f: Vec<f64> = b.nodes.iter().map(|&x| poly(&coeffs, x)).collect();
            for k in 0..n {
                let dfk: f64 = (0..n).map(|l| b.diff[k * n + l] * f[l]).sum();
                let exact = dpoly(&coeffs, b.nodes[k]);
                assert!(
                    (dfk - exact).abs() < 1e-8 * (1.0 + exact.abs()),
                    "n={n} k={k}: {dfk} vs {exact}"
                );
            }
        }
    }
}

#[test]
fn interpolation_reproduces_random_polys() {
    for n in 1usize..10 {
        for seed in 0..8 {
            let mut rng = Lcg::new(n as u64 * 53 + seed);
            let coeffs = rng.vec(n.min(9), -2.0, 2.0);
            let x = rng.f64(0.0, 1.0);
            let b = Basis1d::new(QuadratureRule::GaussLegendre, n);
            let f: Vec<f64> = b.nodes.iter().map(|&t| poly(&coeffs, t)).collect();
            let p = b.interpolate(&f, x);
            let exact = poly(&coeffs, x);
            assert!((p - exact).abs() < 1e-9 * (1.0 + exact.abs()));
        }
    }
}

#[test]
fn face_projection_consistent_with_interpolation() {
    for n in 2usize..9 {
        for seed in 0..8 {
            let mut rng = Lcg::new(n as u64 * 71 + seed);
            let coeffs = rng.vec(n.min(8), -2.0, 2.0);
            let b = Basis1d::new(QuadratureRule::GaussLegendre, n);
            let f: Vec<f64> = b.nodes.iter().map(|&t| poly(&coeffs, t)).collect();
            let left: f64 = b.phi_left.iter().zip(&f).map(|(p, v)| p * v).sum();
            let right: f64 = b.phi_right.iter().zip(&f).map(|(p, v)| p * v).sum();
            assert!((left - poly(&coeffs, 0.0)).abs() < 1e-9);
            assert!((right - poly(&coeffs, 1.0)).abs() < 1e-9);
        }
    }
}
