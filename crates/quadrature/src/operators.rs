//! Precomputed per-order operator sets.
//!
//! The paper's Kernel Generator hard-codes all operator matrices (derivative
//! operator, quadrature weights and their inverses, face-evaluation vectors,
//! transposed/padded combinations) into the generated kernels (Sec. III-C).
//! [`Basis1d`] plays that role here: it is computed once per `(rule, n)` and
//! shared by every kernel plan.

use crate::lagrange::{barycentric_weights, basis_at, basis_deriv_at, diff_matrix};
use crate::legendre::{nodes_weights_01, QuadratureRule};

/// All 1-D operators of the nodal DG basis for a given rule and node count.
///
/// Matrices are dense row-major `n × n`; everything lives on the reference
/// interval `[0, 1]`.
#[derive(Debug, Clone)]
pub struct Basis1d {
    /// Quadrature/interpolation rule.
    pub rule: QuadratureRule,
    /// Number of nodes (= order `N` of the scheme).
    pub n: usize,
    /// Interpolation nodes on `[0, 1]`.
    pub nodes: Vec<f64>,
    /// Quadrature weights (diagonal of the 1-D mass matrix).
    pub weights: Vec<f64>,
    /// Reciprocal quadrature weights (the paper precomputes these to avoid
    /// divisions in the corrector).
    pub inv_weights: Vec<f64>,
    /// Barycentric interpolation weights.
    pub bary: Vec<f64>,
    /// Nodal differentiation matrix `D[k][l] = φ_l'(x_k)`.
    pub diff: Vec<f64>,
    /// Transposed differentiation matrix `Dᵀ` (precomputed for the AoSoA
    /// x-derivative, `Cᵀ = Bᵀ Aᵀ`, Sec. V-B).
    pub diff_t: Vec<f64>,
    /// Weak-form stiffness matrix `K[k][l] = ∫ φ_k' φ_l dx`.
    pub stiff: Vec<f64>,
    /// Basis values at the left face, `φ_k(0)`.
    pub phi_left: Vec<f64>,
    /// Basis values at the right face, `φ_k(1)`.
    pub phi_right: Vec<f64>,
}

impl Basis1d {
    /// Builds the operator set for `rule` with `n` nodes.
    pub fn new(rule: QuadratureRule, n: usize) -> Self {
        assert!(n >= 1, "basis needs at least one node");
        assert!(
            !(rule == QuadratureRule::GaussLobatto && n < 2),
            "Gauss-Lobatto needs at least two nodes"
        );
        let (nodes, weights) = nodes_weights_01(rule, n);
        let bary = barycentric_weights(&nodes);
        let diff = diff_matrix(&nodes);
        let diff_t = aderdg_tensor::transpose_matrix(&diff, n, n);
        // K[k][l] = ∫ φ_k' φ_l dx: integrand has degree ≤ 2n − 2, exact for
        // Gauss-Legendre (2n − 1); for Gauss-Lobatto (2n − 3) we evaluate it
        // from the derivative matrix at the quadrature points, which matches
        // the collocation operators actually used by GLL-DG codes.
        // With quadrature: K[k][l] = Σ_q w_q φ_k'(x_q) φ_l(x_q) = w_l D[l][k].
        let mut stiff = vec![0.0; n * n];
        for k in 0..n {
            for l in 0..n {
                stiff[k * n + l] = weights[l] * diff[l * n + k];
            }
        }
        let phi_left = basis_at(&nodes, &bary, 0.0);
        let phi_right = basis_at(&nodes, &bary, 1.0);
        let inv_weights = weights.iter().map(|&w| 1.0 / w).collect();
        Self {
            rule,
            n,
            nodes,
            weights,
            inv_weights,
            bary,
            diff,
            diff_t,
            stiff,
            phi_left,
            phi_right,
        }
    }

    /// Evaluates all basis functions at `x` ∈ `[0, 1]`.
    pub fn basis_at(&self, x: f64) -> Vec<f64> {
        basis_at(&self.nodes, &self.bary, x)
    }

    /// Evaluates all basis derivatives at `x` ∈ `[0, 1]`.
    pub fn basis_deriv_at(&self, x: f64) -> Vec<f64> {
        basis_deriv_at(&self.nodes, x)
    }

    /// Interpolates nodal values `f` at `x`.
    pub fn interpolate(&self, f: &[f64], x: f64) -> f64 {
        crate::lagrange::interpolate(&self.nodes, &self.bary, f, x)
    }

    /// The differentiation matrix transposed and zero-padded to `ld`
    /// columns per row (row-major `n × ld`), ready to serve as the `B`
    /// operand of the AoSoA x-derivative GEMM.
    pub fn diff_t_padded(&self, ld: usize) -> Vec<f64> {
        aderdg_tensor::transpose_matrix_padded(&self.diff, self.n, self.n, ld)
    }

    /// Source-projection coefficients `P_k(x0)` for a point source at
    /// `x0` ∈ `[0, 1]` (1-D factor): projecting `δ(x − x0)` onto the nodal
    /// basis and applying the inverse mass matrix gives `φ_k(x0) / w_k`.
    pub fn point_source_coeffs(&self, x0: f64) -> Vec<f64> {
        self.basis_at(x0)
            .iter()
            .zip(&self.inv_weights)
            .map(|(phi, iw)| phi * iw)
            .collect()
    }
}

/// Cauchy-Kowalewsky / Taylor time-integration coefficients
/// `c_o = Δtᵒ⁺¹ / (o + 1)!` for `o = 0..order` (paper eq. 4), computed with
/// the stable recurrence `c_{o+1} = c_o · Δt / (o + 2)`.
pub fn taylor_coefficients(dt: f64, order: usize) -> Vec<f64> {
    let mut c = Vec::with_capacity(order);
    let mut cur = dt;
    for o in 0..order {
        c.push(cur);
        cur *= dt / (o as f64 + 2.0);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stiffness_integration_by_parts_identity() {
        // ∫ φ_k' φ_l + ∫ φ_k φ_l' = [φ_k φ_l]_0^1
        //  => K + Kᵀ = φ(1)φ(1)ᵀ − φ(0)φ(0)ᵀ  (exact for Gauss-Legendre).
        for n in 2..=9 {
            let b = Basis1d::new(QuadratureRule::GaussLegendre, n);
            for k in 0..n {
                for l in 0..n {
                    let lhs = b.stiff[k * n + l] + b.stiff[l * n + k];
                    let rhs = b.phi_right[k] * b.phi_right[l] - b.phi_left[k] * b.phi_left[l];
                    assert!(
                        (lhs - rhs).abs() < 1e-10,
                        "n={n} k={k} l={l}: {lhs} vs {rhs}"
                    );
                }
            }
        }
    }

    #[test]
    fn face_values_interpolate_boundary() {
        for rule in [QuadratureRule::GaussLegendre, QuadratureRule::GaussLobatto] {
            let b = Basis1d::new(rule, 6);
            let f: Vec<f64> = b.nodes.iter().map(|&x| 2.0 * x.powi(3) - x).collect();
            let left: f64 = b.phi_left.iter().zip(&f).map(|(p, v)| p * v).sum();
            let right: f64 = b.phi_right.iter().zip(&f).map(|(p, v)| p * v).sum();
            assert!(left.abs() < 1e-12, "{rule:?} left={left}");
            assert!((right - 1.0).abs() < 1e-12, "{rule:?} right={right}");
        }
    }

    #[test]
    fn gll_face_values_are_unit_vectors() {
        let b = Basis1d::new(QuadratureRule::GaussLobatto, 5);
        assert!((b.phi_left[0] - 1.0).abs() < 1e-14);
        assert!(b.phi_left[1..].iter().all(|v| v.abs() < 1e-13));
        assert!((b.phi_right[4] - 1.0).abs() < 1e-14);
        assert!(b.phi_right[..4].iter().all(|v| v.abs() < 1e-13));
    }

    #[test]
    fn diff_t_is_transpose() {
        let b = Basis1d::new(QuadratureRule::GaussLegendre, 7);
        for k in 0..7 {
            for l in 0..7 {
                assert_eq!(b.diff[k * 7 + l], b.diff_t[l * 7 + k]);
            }
        }
        let p = b.diff_t_padded(8);
        assert_eq!(p.len(), 7 * 8);
        for k in 0..7 {
            for l in 0..7 {
                assert_eq!(p[k * 8 + l], b.diff_t[k * 7 + l]);
            }
            assert_eq!(p[k * 8 + 7], 0.0);
        }
    }

    #[test]
    fn taylor_coefficients_match_factorials() {
        let dt = 0.3;
        let c = taylor_coefficients(dt, 6);
        let fact = |k: usize| (1..=k).product::<usize>() as f64;
        for (o, &co) in c.iter().enumerate() {
            let exact = dt.powi(o as i32 + 1) / fact(o + 1);
            assert!((co - exact).abs() < 1e-15 * (1.0 + exact.abs()), "o={o}");
        }
    }

    #[test]
    fn point_source_coeffs_reproduce_delta_moment() {
        // For any degree-<n polynomial p: Σ_k w_k p(x_k) P_k(x0) = p(x0),
        // i.e. the projection of δ tested against p returns p(x0).
        let b = Basis1d::new(QuadratureRule::GaussLegendre, 6);
        let x0 = 0.37;
        let coeffs = b.point_source_coeffs(x0);
        let p = |x: f64| 4.0 * x.powi(5) - 2.0 * x.powi(2) + 1.0;
        let lhs: f64 = (0..6)
            .map(|k| b.weights[k] * p(b.nodes[k]) * coeffs[k])
            .sum();
        assert!((lhs - p(x0)).abs() < 1e-11);
    }

    #[test]
    fn interpolation_at_interior_point() {
        let b = Basis1d::new(QuadratureRule::GaussLegendre, 4);
        let f: Vec<f64> = b.nodes.iter().map(|&x| x * x).collect();
        assert!((b.interpolate(&f, 0.5) - 0.25).abs() < 1e-13);
        let d = b.basis_deriv_at(0.5);
        let df: f64 = d.iter().zip(&f).map(|(a, b)| a * b).sum();
        assert!((df - 1.0).abs() < 1e-12);
    }
}
