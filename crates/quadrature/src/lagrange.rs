//! Lagrange interpolation on arbitrary node sets (barycentric form).
//!
//! The nodal DG basis is the set of Lagrange polynomials `φ_k` over the 1-D
//! quadrature nodes; 3-D basis functions are tensor products
//! `Φ_k = φ_{k1} φ_{k2} φ_{k3}` (paper Sec. II-A).

/// Barycentric weights `w_k = 1 / Π_{j≠k} (x_k − x_j)` for a node set.
pub fn barycentric_weights(nodes: &[f64]) -> Vec<f64> {
    let n = nodes.len();
    let mut w = vec![1.0; n];
    for k in 0..n {
        for j in 0..n {
            if j != k {
                w[k] /= nodes[k] - nodes[j];
            }
        }
    }
    w
}

/// Evaluates all `n` Lagrange basis polynomials at `x`.
///
/// Exact at the nodes (returns a Kronecker delta row) and stable elsewhere
/// via the barycentric second form.
pub fn basis_at(nodes: &[f64], bary: &[f64], x: f64) -> Vec<f64> {
    let n = nodes.len();
    let mut out = vec![0.0; n];
    // At (or numerically on top of) a node, the basis is a delta.
    for k in 0..n {
        if (x - nodes[k]).abs() < 1e-14 {
            out[k] = 1.0;
            return out;
        }
    }
    let mut denom = 0.0;
    for k in 0..n {
        let t = bary[k] / (x - nodes[k]);
        out[k] = t;
        denom += t;
    }
    for v in out.iter_mut() {
        *v /= denom;
    }
    out
}

/// Evaluates the derivatives `φ_k'(x)` of all basis polynomials at an
/// arbitrary `x` (product-rule form, `O(n^2)`).
pub fn basis_deriv_at(nodes: &[f64], x: f64) -> Vec<f64> {
    let n = nodes.len();
    let mut out = vec![0.0; n];
    for k in 0..n {
        // φ_k(x) = Π_{j≠k} (x − x_j)/(x_k − x_j)
        // φ_k'(x) = Σ_{i≠k} (1/(x_k − x_i)) Π_{j≠k,i} (x − x_j)/(x_k − x_j)
        let mut acc = 0.0;
        for i in 0..n {
            if i == k {
                continue;
            }
            let mut term = 1.0 / (nodes[k] - nodes[i]);
            for j in 0..n {
                if j != k && j != i {
                    term *= (x - nodes[j]) / (nodes[k] - nodes[j]);
                }
            }
            acc += term;
        }
        out[k] = acc;
    }
    out
}

/// Nodal differentiation matrix `D[k][l] = φ_l'(x_k)` (row-major `n × n`):
/// applying `D` to nodal values yields the derivative of the interpolant at
/// the nodes. This is the paper's discrete derivative operator `D`
/// (Sec. II-A), before scaling by the inverse element size.
pub fn diff_matrix(nodes: &[f64]) -> Vec<f64> {
    let n = nodes.len();
    let bary = barycentric_weights(nodes);
    let mut d = vec![0.0; n * n];
    for k in 0..n {
        let mut diag = 0.0;
        for l in 0..n {
            if l != k {
                let v = (bary[l] / bary[k]) / (nodes[k] - nodes[l]);
                d[k * n + l] = v;
                diag -= v;
            }
        }
        d[k * n + k] = diag;
    }
    d
}

/// Interpolates nodal values `f` at point `x`.
pub fn interpolate(nodes: &[f64], bary: &[f64], f: &[f64], x: f64) -> f64 {
    basis_at(nodes, bary, x)
        .iter()
        .zip(f)
        .map(|(phi, v)| phi * v)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legendre::{nodes_weights_01, QuadratureRule};

    #[test]
    fn basis_is_kronecker_at_nodes() {
        let (nodes, _) = nodes_weights_01(QuadratureRule::GaussLegendre, 6);
        let bary = barycentric_weights(&nodes);
        for (k, &xk) in nodes.iter().enumerate() {
            let b = basis_at(&nodes, &bary, xk);
            for (l, &v) in b.iter().enumerate() {
                let expect = if l == k { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn partition_of_unity() {
        let (nodes, _) = nodes_weights_01(QuadratureRule::GaussLobatto, 7);
        let bary = barycentric_weights(&nodes);
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let s: f64 = basis_at(&nodes, &bary, x).iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "x={x} sum={s}");
        }
    }

    #[test]
    fn interpolation_exact_for_low_degree() {
        let (nodes, _) = nodes_weights_01(QuadratureRule::GaussLegendre, 5);
        let bary = barycentric_weights(&nodes);
        let f: Vec<f64> = nodes.iter().map(|&x| 3.0 * x.powi(4) - x + 0.5).collect();
        for i in 0..=10 {
            let x = i as f64 / 10.0;
            let p = interpolate(&nodes, &bary, &f, x);
            let exact = 3.0 * x.powi(4) - x + 0.5;
            assert!((p - exact).abs() < 1e-11, "x={x}");
        }
    }

    #[test]
    fn diff_matrix_exact_on_polynomials() {
        for n in 2..=10 {
            let (nodes, _) = nodes_weights_01(QuadratureRule::GaussLegendre, n);
            let d = diff_matrix(&nodes);
            for deg in 0..n {
                let f: Vec<f64> = nodes.iter().map(|&x| x.powi(deg as i32)).collect();
                for k in 0..n {
                    let dfk: f64 = (0..n).map(|l| d[k * n + l] * f[l]).sum();
                    let exact = if deg == 0 {
                        0.0
                    } else {
                        deg as f64 * nodes[k].powi(deg as i32 - 1)
                    };
                    assert!(
                        (dfk - exact).abs() < 1e-9 * (1.0 + exact.abs()),
                        "n={n} deg={deg} k={k}: {dfk} vs {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn diff_matrix_rows_sum_to_zero() {
        // Derivative of the constant function is zero.
        let (nodes, _) = nodes_weights_01(QuadratureRule::GaussLobatto, 8);
        let d = diff_matrix(&nodes);
        for k in 0..8 {
            let s: f64 = d[k * 8..(k + 1) * 8].iter().sum();
            assert!(s.abs() < 1e-11);
        }
    }

    #[test]
    fn deriv_at_matches_diff_matrix_at_nodes() {
        let (nodes, _) = nodes_weights_01(QuadratureRule::GaussLegendre, 6);
        let d = diff_matrix(&nodes);
        for (k, &xk) in nodes.iter().enumerate() {
            let row = basis_deriv_at(&nodes, xk);
            for l in 0..6 {
                assert!(
                    (row[l] - d[k * 6 + l]).abs() < 1e-9,
                    "k={k} l={l}: {} vs {}",
                    row[l],
                    d[k * 6 + l]
                );
            }
        }
    }
}
