//! # aderdg-quadrature
//!
//! Nodal DG basis substrate: Gauss-Legendre and Gauss-Lobatto quadrature,
//! barycentric Lagrange interpolation, and the precomputed per-order
//! operator sets (differentiation matrix, mass/stiffness operators,
//! face-evaluation vectors, point-source projection, Cauchy-Kowalewsky
//! time-integration coefficients) that the paper's Kernel Generator bakes
//! into its generated kernels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lagrange;
pub mod legendre;
pub mod operators;

pub use lagrange::{barycentric_weights, basis_at, basis_deriv_at, diff_matrix, interpolate};
pub use legendre::{
    gauss_legendre_m11, gauss_lobatto_m11, legendre, nodes_weights_01, QuadratureRule,
};
pub use operators::{taylor_coefficients, Basis1d};
