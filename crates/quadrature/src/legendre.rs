//! Legendre polynomials and Gaussian quadrature rules.
//!
//! The DG scheme uses a nodal Lagrange basis on either Gauss-Legendre or
//! Gauss-Lobatto interpolation points (paper Sec. II-A). Nodes and weights
//! are computed on the reference interval `[0, 1]` (the unit cube is the
//! reference element).

/// Which family of interpolation/quadrature points the basis uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuadratureRule {
    /// Gauss-Legendre: interior points, exact for degree `2n - 1`.
    GaussLegendre,
    /// Gauss-Lobatto(-Legendre): includes endpoints, exact for degree
    /// `2n - 3`.
    GaussLobatto,
}

/// Evaluates the Legendre polynomial `P_n` and its derivative at `x`
/// (on `[-1, 1]`), via the three-term recurrence.
pub fn legendre(n: usize, x: f64) -> (f64, f64) {
    if n == 0 {
        return (1.0, 0.0);
    }
    let mut p_prev = 1.0; // P_0
    let mut p = x; // P_1
    for k in 2..=n {
        let kf = k as f64;
        let p_next = ((2.0 * kf - 1.0) * x * p - (kf - 1.0) * p_prev) / kf;
        p_prev = p;
        p = p_next;
    }
    // P_n'(x) = n (x P_n - P_{n-1}) / (x^2 - 1); use the recurrence-safe form.
    let dp = if (x * x - 1.0).abs() < 1e-300 {
        // Endpoint derivative: P_n'(±1) = ±^{n+1} n(n+1)/2.
        let sign = if x > 0.0 {
            1.0
        } else {
            (-1.0f64).powi(n as i32 + 1)
        };
        sign * (n * (n + 1)) as f64 / 2.0
    } else {
        (n as f64) * (x * p - p_prev) / (x * x - 1.0)
    };
    (p, dp)
}

/// Gauss-Legendre nodes and weights on `[-1, 1]`, by Newton iteration from
/// the Chebyshev initial guess. `n >= 1`.
pub fn gauss_legendre_m11(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 1, "need at least one quadrature point");
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    for i in 0..n.div_ceil(2) {
        // Chebyshev-like initial guess for the i-th root (descending).
        let mut x = (std::f64::consts::PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
        for _ in 0..100 {
            let (p, dp) = legendre(n, x);
            let dx = p / dp;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        let (_, dp) = legendre(n, x);
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        nodes[n - 1 - i] = x;
        nodes[i] = -x;
        weights[i] = w;
        weights[n - 1 - i] = w;
    }
    if n % 2 == 1 {
        nodes[n / 2] = 0.0;
        let (_, dp) = legendre(n, 0.0);
        weights[n / 2] = 2.0 / (dp * dp);
    }
    (nodes, weights)
}

/// Gauss-Lobatto nodes and weights on `[-1, 1]`: endpoints plus the roots
/// of `P'_{n-1}`. `n >= 2`.
pub fn gauss_lobatto_m11(n: usize) -> (Vec<f64>, Vec<f64>) {
    assert!(n >= 2, "Gauss-Lobatto needs at least two points");
    let mut nodes = vec![0.0; n];
    let mut weights = vec![0.0; n];
    nodes[0] = -1.0;
    nodes[n - 1] = 1.0;
    let nn = (n * (n - 1)) as f64;
    let (p_end, _) = legendre(n - 1, 1.0);
    weights[0] = 2.0 / (nn * p_end * p_end);
    weights[n - 1] = weights[0];
    // Interior nodes: roots of P'_{n-1}. Newton on dp with second derivative
    // from the Legendre ODE: (1-x^2) P'' = 2x P' - n(n+1) P.
    let m = n - 1;
    for i in 1..=n.saturating_sub(2) {
        // Initial guess: cosine-spaced interior points.
        let mut x = ((i as f64) * std::f64::consts::PI / (m as f64)).cos();
        for _ in 0..200 {
            let (p, dp) = legendre(m, x);
            let d2p = (2.0 * x * dp - (m * (m + 1)) as f64 * p) / (1.0 - x * x);
            let dx = dp / d2p;
            x -= dx;
            if dx.abs() < 1e-15 {
                break;
            }
        }
        let (p, _) = legendre(m, x);
        nodes[n - 1 - i] = x;
        weights[n - 1 - i] = 2.0 / (nn * p * p);
    }
    // Enforce symmetry exactly.
    for i in 0..n / 2 {
        let x = 0.5 * (nodes[n - 1 - i] - nodes[i]);
        nodes[n - 1 - i] = x;
        nodes[i] = -x;
        let w = 0.5 * (weights[i] + weights[n - 1 - i]);
        weights[i] = w;
        weights[n - 1 - i] = w;
    }
    if n % 2 == 1 {
        nodes[n / 2] = 0.0;
    }
    (nodes, weights)
}

/// Nodes and weights for `rule` with `n` points, mapped to `[0, 1]`.
pub fn nodes_weights_01(rule: QuadratureRule, n: usize) -> (Vec<f64>, Vec<f64>) {
    let (x, w) = match rule {
        QuadratureRule::GaussLegendre => gauss_legendre_m11(n),
        QuadratureRule::GaussLobatto => gauss_lobatto_m11(n),
    };
    (
        x.iter().map(|&t| 0.5 * (t + 1.0)).collect(),
        w.iter().map(|&t| 0.5 * t).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn integrate(nodes: &[f64], weights: &[f64], f: impl Fn(f64) -> f64) -> f64 {
        nodes.iter().zip(weights).map(|(&x, &w)| w * f(x)).sum()
    }

    #[test]
    fn legendre_values() {
        // P_2(x) = (3x^2 - 1)/2, P_2'(x) = 3x.
        let (p, dp) = legendre(2, 0.4);
        assert!((p - (3.0 * 0.16 - 1.0) / 2.0).abs() < 1e-15);
        assert!((dp - 1.2).abs() < 1e-12);
        // Endpoint derivative P_3'(1) = 3*4/2 = 6.
        let (_, dp1) = legendre(3, 1.0);
        assert!((dp1 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn gauss_legendre_known_values() {
        let (x, w) = gauss_legendre_m11(2);
        let r = 1.0 / 3.0f64.sqrt();
        assert!((x[0] + r).abs() < 1e-14 && (x[1] - r).abs() < 1e-14);
        assert!((w[0] - 1.0).abs() < 1e-14 && (w[1] - 1.0).abs() < 1e-14);

        let (x3, w3) = gauss_legendre_m11(3);
        assert!((x3[1]).abs() < 1e-14);
        assert!((x3[2] - (0.6f64).sqrt()).abs() < 1e-14);
        assert!((w3[1] - 8.0 / 9.0).abs() < 1e-14);
        assert!((w3[0] - 5.0 / 9.0).abs() < 1e-14);
    }

    #[test]
    fn gauss_lobatto_known_values() {
        // n=3: nodes -1, 0, 1; weights 1/3, 4/3, 1/3.
        let (x, w) = gauss_lobatto_m11(3);
        assert!((x[0] + 1.0).abs() < 1e-14 && x[1].abs() < 1e-14 && (x[2] - 1.0).abs() < 1e-14);
        assert!((w[0] - 1.0 / 3.0).abs() < 1e-14);
        assert!((w[1] - 4.0 / 3.0).abs() < 1e-14);
        // n=4: interior ±1/sqrt(5), weights 1/6, 5/6.
        let (x4, w4) = gauss_lobatto_m11(4);
        assert!((x4[1] + (0.2f64).sqrt()).abs() < 1e-13);
        assert!((w4[0] - 1.0 / 6.0).abs() < 1e-13);
        assert!((w4[1] - 5.0 / 6.0).abs() < 1e-13);
    }

    #[test]
    fn gl_exact_for_degree_2n_minus_1() {
        for n in 1..=12 {
            let (x, w) = nodes_weights_01(QuadratureRule::GaussLegendre, n);
            for deg in 0..=(2 * n - 1) {
                let exact = 1.0 / (deg as f64 + 1.0);
                let q = integrate(&x, &w, |t| t.powi(deg as i32));
                assert!((q - exact).abs() < 1e-12, "n={n} deg={deg}: {q} vs {exact}");
            }
        }
    }

    #[test]
    fn gll_exact_for_degree_2n_minus_3() {
        for n in 2..=12 {
            let (x, w) = nodes_weights_01(QuadratureRule::GaussLobatto, n);
            for deg in 0..=(2 * n - 3) {
                let exact = 1.0 / (deg as f64 + 1.0);
                let q = integrate(&x, &w, |t| t.powi(deg as i32));
                assert!((q - exact).abs() < 1e-11, "n={n} deg={deg}: {q} vs {exact}");
            }
        }
    }

    #[test]
    fn weights_positive_and_sum_to_one_on_unit_interval() {
        for n in 2..=14 {
            for rule in [QuadratureRule::GaussLegendre, QuadratureRule::GaussLobatto] {
                let (x, w) = nodes_weights_01(rule, n);
                assert!(w.iter().all(|&wi| wi > 0.0));
                let sum: f64 = w.iter().sum();
                assert!((sum - 1.0).abs() < 1e-13, "{rule:?} n={n} sum={sum}");
                assert!(x.windows(2).all(|p| p[0] < p[1]), "nodes sorted");
                assert!(x.iter().all(|&xi| (-1e-14..=1.0 + 1e-14).contains(&xi)));
            }
        }
    }
}
