//! Property-style equivalence suite for the packed register-tiled
//! microkernel backends (deterministic seeded sweeps — hermetic build, no
//! external property-testing framework).
//!
//! Every registered backend — packed and autovec, SIMD and forced-scalar —
//! must agree with the autovec baseline within `1e-13` relative, on a
//! shape matrix built around the microkernel tile sizes (`MR/NR ∈ {4, 8,
//! 16}`: each dimension at 1, tile−1, tile, tile+1, odd tails) and the
//! paper's problem shapes (`m = 21` elastic quantities, order 2–5 node
//! counts), across strided, fused and shared-operand batches, with and
//! without plan-cached packed panels, including `α/β ≠ 1`.

use aderdg_gemm::{backends, GemmBackend, GemmBatch, GemmSpec, PackedOperands};
use aderdg_tensor::Lcg;

/// Tolerance of the suite: packed kernels may fuse multiply-add (one
/// rounding where the baseline takes two), so equivalence is relative
/// `1e-13`, not bitwise.
const TOL: f64 = 1e-13;

fn assert_close(got: &[f64], want: &[f64], ctx: &dyn std::fmt::Display) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= TOL * (1.0 + w.abs()),
            "{ctx} idx={i}: {g} vs {w} (|Δ|={:.3e})",
            (g - w).abs()
        );
    }
}

/// Reference result on the always-supported autovec baseline backend.
fn baseline() -> &'static dyn GemmBackend {
    aderdg_gemm::backend_by_name("baseline").unwrap()
}

fn supported_backends() -> Vec<&'static dyn GemmBackend> {
    backends()
        .iter()
        .copied()
        .filter(|b| b.supported())
        .collect()
}

/// The M/N/K axis values the suite sweeps: unit, around every registered
/// tile size (4, 8, 16 → tile−1, tile, tile+1), odd tails, and the paper
/// shapes (m = 21 quantities; order 2–5 ⇒ 3–6 nodes per dimension).
const DIMS: [usize; 12] = [1, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 21];

/// Contraction depths: unit, the order-2..5 node counts (3..=6), a tail
/// beyond the widest tile row, and one deep case.
const KS: [usize; 6] = [1, 3, 5, 6, 9, 13];

#[test]
fn single_call_matrix_matches_baseline() {
    let mut rng = Lcg::new(0x9ACC_ED01);
    for bk in supported_backends() {
        for &m in &DIMS {
            for &n in &DIMS {
                for &k in &KS {
                    // Cycle strides/scales deterministically per shape.
                    let (da, db, dc) = (rng.usize(0, 4), rng.usize(0, 4), rng.usize(0, 4));
                    let (alpha, beta) = match (m + n + k) % 3 {
                        0 => (1.0, 0.0),
                        1 => (1.0, 1.0),
                        _ => (-1.75, 0.5), // the α/β ≠ 1 leg
                    };
                    let spec = GemmSpec::dense(m, n, k)
                        .with_ld(k + da, n + db, n + dc)
                        .with_scale(alpha, beta);
                    let (ra, rb, rc) = spec.required_lens();
                    let a = rng.vec(ra.max(1), -2.0, 2.0);
                    let b = rng.vec(rb.max(1), -2.0, 2.0);
                    let c0 = rng.vec(rc.max(1), -2.0, 2.0);

                    let mut c_ref = c0.clone();
                    baseline().execute(&spec, &a, &b, &mut c_ref);

                    let mut c_got = c0.clone();
                    bk.execute(&spec, &a, &b, &mut c_got);
                    assert_close(&c_got, &c_ref, &format!("{} {spec:?}", bk.name()));

                    // Same call with plan-cached panels on both sides
                    // (a no-op on non-packing backends).
                    let pa = bk.pack_a(&spec, &a);
                    let pb = bk.pack_b(&spec, &b);
                    let mut c_packed = c0.clone();
                    bk.execute_packed(
                        &spec,
                        &a,
                        &b,
                        &mut c_packed,
                        PackedOperands {
                            a: pa.as_ref(),
                            b: pb.as_ref(),
                        },
                    );
                    assert_close(&c_packed, &c_ref, &format!("{} packed {spec:?}", bk.name()));
                }
            }
        }
    }
}

/// Batched execution across stride patterns — shared-A (operator·panels),
/// fused row-stacked shared-B (the AoSoA x-derivative), gapped strides,
/// fully strided — with per-batch panels on the shared operand.
#[test]
fn batched_matrix_matches_baseline() {
    let mut rng = Lcg::new(0x0BA7_C4ED);
    // (m, n, k, count, kind) — kind: 0 shared-A, 1 fused shared-B,
    // 2 gapped shared-A, 3 fully strided.
    let cases = [
        (4, 8, 5, 6, 0),
        (8, 8, 5, 4, 1),
        (5, 16, 6, 3, 1),
        (21, 8, 6, 5, 1), // paper shape: m=21 quantities, order-5 nodes
        (3, 24, 3, 7, 0), // order-2 nodes, wide fused columns
        (6, 40, 6, 4, 2),
        (7, 9, 4, 5, 3),
        (1, 1, 1, 3, 3),
        (9, 17, 13, 2, 0), // odd tails on every axis
    ];
    for bk in supported_backends() {
        for &(m, n, k, count, kind) in &cases {
            for &(alpha, beta) in &[(1.0, 0.0), (-0.5, 1.25)] {
                let spec = GemmSpec::dense(m, n, k).with_scale(alpha, beta);
                let batch = match kind {
                    0 => GemmBatch::shared_a(count, k * n, m * n),
                    1 => GemmBatch::shared_b(count, m * k, m * n),
                    2 => GemmBatch::shared_a(count, k * n + 5, m * n + 3),
                    _ => GemmBatch::new(count, m * k + 2, k * n + 1, m * n + 4),
                };
                let (ra, rb, rc) = batch.required_lens(&spec);
                let a = rng.vec(ra.max(1), -2.0, 2.0);
                let b = rng.vec(rb.max(1), -2.0, 2.0);
                let c0 = rng.vec(rc.max(1), -2.0, 2.0);

                let mut c_ref = c0.clone();
                baseline().run_batched(&spec, &batch, &a, &b, &mut c_ref);

                let mut c_got = c0.clone();
                bk.run_batched(&spec, &batch, &a, &b, &mut c_got);
                let ctx = format!("{} batch kind {kind} {spec:?}", bk.name());
                assert_close(&c_got, &c_ref, &ctx);

                // Panels on the shared operand (what the plan caches).
                let pa = (batch.stride_a == 0)
                    .then(|| bk.pack_a(&spec, &a))
                    .flatten();
                let pb = (batch.stride_b == 0)
                    .then(|| bk.pack_b(&spec, &b))
                    .flatten();
                let mut c_packed = c0.clone();
                bk.run_batched_packed(
                    &spec,
                    &batch,
                    &a,
                    &b,
                    &mut c_packed,
                    PackedOperands {
                        a: pa.as_ref(),
                        b: pb.as_ref(),
                    },
                );
                assert_close(&c_packed, &c_ref, &format!("{ctx} packed"));
            }
        }
    }
}

/// The plan-level path: a `Gemm` with cached operator panels must match
/// the same plan without them, on the spec shapes `StpPlan` produces
/// (order 2–5 node counts × acoustic m=6 and elastic m=21).
#[test]
fn plan_cached_panels_match_uncached_on_paper_shapes() {
    use aderdg_gemm::Gemm;
    let mut rng = Lcg::new(0x09A9_E125);
    for bk in supported_backends() {
        for n_nodes in 3..=6 {
            for m_q in [6, 21] {
                let n_pad = 8;
                // AoSoA d = 0 shape: C(m × n_pad) = A · Dᵀ, fused rows.
                let spec = GemmSpec {
                    m: m_q,
                    n: n_pad,
                    k: n_nodes,
                    lda: n_pad,
                    ldb: n_pad,
                    ldc: n_pad,
                    alpha: 2.5,
                    beta: 0.0,
                };
                let cells = 4 * n_nodes * n_nodes;
                let stride = m_q * n_pad;
                let batch = GemmBatch::shared_b(cells, stride, stride);
                let (ra, rb, rc) = batch.required_lens(&spec);
                let a = rng.vec(ra, -1.0, 1.0);
                let b = rng.vec(rb, -1.0, 1.0);

                let plain = Gemm::with_backend(spec, bk);
                let cached = Gemm::with_backend(spec, bk).with_packed_b(&b);

                let mut c1 = vec![0.0; rc];
                plain.execute_batched(&batch, &a, &b, &mut c1);
                let mut c2 = vec![0.0; rc];
                cached.execute_batched(&batch, &a, &b, &mut c2);
                let mut c_ref = vec![0.0; rc];
                baseline().run_batched(&spec, &batch, &a, &b, &mut c_ref);

                let ctx = format!("{} n={n_nodes} m={m_q} fused", bk.name());
                assert_close(&c1, &c_ref, &ctx);
                assert_close(&c2, &c_ref, &format!("{ctx} cached"));

                // AoSoA d = 2 shape: C = D · B(block), D shared.
                let spec =
                    GemmSpec::dense(n_nodes, n_nodes * m_q * n_pad, n_nodes).with_scale(1.0, 1.0);
                let (_, rb, rc) = spec.required_lens();
                let batch = GemmBatch::shared_a(3, rb, rc);
                let (la, lb, lc) = batch.required_lens(&spec);
                let a = rng.vec(la, -1.0, 1.0);
                let b = rng.vec(lb, -1.0, 1.0);
                let c0 = rng.vec(lc, -1.0, 1.0);

                let cached = Gemm::with_backend(spec, bk).with_packed_a(&a);
                let mut c1 = c0.clone();
                cached.execute_batched(&batch, &a, &b, &mut c1);
                let mut c_ref = c0.clone();
                baseline().run_batched(&spec, &batch, &a, &b, &mut c_ref);
                assert_close(
                    &c1,
                    &c_ref,
                    &format!("{} n={n_nodes} m={m_q} shared-A cached", bk.name()),
                );
            }
        }
    }
}

/// The exact-length slicing of the batched drivers must reject strides
/// that run past the logical operand instead of silently reading on.
#[test]
#[should_panic(expected = "too short")]
fn oversized_stride_fails_loudly() {
    let spec = GemmSpec::dense(2, 2, 2);
    let batch = GemmBatch::new(3, 64, 0, 4);
    let a = vec![0.0; 16]; // item 2 starts at 128 — far out of bounds
    let b = vec![0.0; 4];
    let mut c = vec![0.0; 12];
    baseline().run_batched(&spec, &batch, &a, &b, &mut c);
}
