//! Property-based equivalence of the tiled/planned kernels vs the naive
//! reference, across random shapes, strides, scales and ISA caps.

use aderdg_gemm::{gemm_naive, Gemm, GemmSpec, Isa};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn run_case(spec: GemmSpec, isa: Isa, seed: u64) -> Result<(), TestCaseError> {
    let (ra, rb, rc) = spec.required_lens();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let a: Vec<f64> = (0..ra.max(1)).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let b: Vec<f64> = (0..rb.max(1)).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let c0: Vec<f64> = (0..rc.max(1)).map(|_| rng.gen_range(-2.0..2.0)).collect();

    let mut c_ref = c0.clone();
    gemm_naive(&spec, &a, &b, &mut c_ref);

    let mut c_got = c0;
    Gemm::with_isa(spec, isa).execute(&a, &b, &mut c_got);

    for (i, (g, w)) in c_got.iter().zip(&c_ref).enumerate() {
        prop_assert!(
            (g - w).abs() <= 1e-10 * (1.0 + w.abs()),
            "spec={:?} isa={:?} idx={}: {} vs {}",
            spec,
            isa,
            i,
            g,
            w
        );
    }
    Ok(())
}

fn arb_isa() -> impl Strategy<Value = Isa> {
    prop_oneof![Just(Isa::Baseline), Just(Isa::Avx2), Just(Isa::Avx512)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn planned_matches_naive(
        m in 1usize..24,
        n in 1usize..40,
        k in 1usize..16,
        da in 0usize..6,
        db in 0usize..6,
        dc in 0usize..6,
        alpha in -2.0f64..2.0,
        beta_sel in 0usize..4,
        isa in arb_isa(),
        seed in any::<u64>(),
    ) {
        let beta = [0.0, 1.0, -1.0, 0.5][beta_sel];
        let spec = GemmSpec::dense(m, n, k)
            .with_ld(k + da, n + db, n + dc)
            .with_scale(alpha, beta);
        run_case(spec, isa, seed)?;
    }

    #[test]
    fn gemm_is_linear_in_a(
        m in 1usize..8,
        n in 1usize..20,
        k in 1usize..8,
        s in -3.0f64..3.0,
        seed in any::<u64>(),
    ) {
        // (s·A)·B == s·(A·B) — linearity the CK predictor relies on.
        let spec = GemmSpec::dense(m, n, k);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let sa: Vec<f64> = a.iter().map(|&x| s * x).collect();

        let plan = Gemm::new(spec);
        let mut c1 = vec![0.0; m * n];
        plan.execute(&sa, &b, &mut c1);
        let mut c2 = vec![0.0; m * n];
        plan.execute(&a, &b, &mut c2);

        for (x, y) in c1.iter().zip(&c2) {
            prop_assert!((x - s * y).abs() < 1e-9 * (1.0 + (s * y).abs()));
        }
    }

    #[test]
    fn accumulation_equals_two_step(
        m in 1usize..8,
        n in 1usize..20,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        // C = A·B1 then C += A·B2  ==  C = A·(B1 + B2).
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b1: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b2: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let bsum: Vec<f64> = b1.iter().zip(&b2).map(|(x, y)| x + y).collect();

        let overwrite = Gemm::new(GemmSpec::dense(m, n, k));
        let acc = Gemm::new(GemmSpec::dense(m, n, k).accumulate());

        let mut c = vec![0.0; m * n];
        overwrite.execute(&a, &b1, &mut c);
        acc.execute(&a, &b2, &mut c);

        let mut c_ref = vec![0.0; m * n];
        overwrite.execute(&a, &bsum, &mut c_ref);

        for (x, y) in c.iter().zip(&c_ref) {
            prop_assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()));
        }
    }
}
