//! Property-style equivalence of the tiled/planned kernels vs the naive
//! reference, across random shapes, strides, scales and ISA caps —
//! deterministic seeded sweeps (hermetic build — no external
//! property-testing framework).

use aderdg_gemm::{gemm_naive, select_backend, Gemm, GemmSpec, Isa};
use aderdg_tensor::Lcg;

const ISAS: [Isa; 3] = [Isa::Baseline, Isa::Avx2, Isa::Avx512];

fn run_case(spec: GemmSpec, isa: Isa, rng: &mut Lcg) {
    let (ra, rb, rc) = spec.required_lens();
    let a = rng.vec(ra.max(1), -2.0, 2.0);
    let b = rng.vec(rb.max(1), -2.0, 2.0);
    let c0 = rng.vec(rc.max(1), -2.0, 2.0);

    let mut c_ref = c0.clone();
    gemm_naive(&spec, &a, &b, &mut c_ref);

    let mut c_got = c0;
    Gemm::with_isa(spec, isa).execute(&a, &b, &mut c_got);

    for (i, (g, w)) in c_got.iter().zip(&c_ref).enumerate() {
        assert!(
            (g - w).abs() <= 1e-10 * (1.0 + w.abs()),
            "spec={spec:?} isa={isa:?} idx={i}: {g} vs {w}"
        );
    }
}

#[test]
fn planned_matches_naive() {
    // 128 random cases per ISA cap, mirroring the former proptest config.
    for isa in ISAS {
        let mut rng = Lcg::new(0xA11CE ^ isa.width_doubles() as u64);
        for _ in 0..128 {
            let m = rng.usize(1, 24);
            let n = rng.usize(1, 40);
            let k = rng.usize(1, 16);
            let (da, db, dc) = (rng.usize(0, 6), rng.usize(0, 6), rng.usize(0, 6));
            let alpha = rng.f64(-2.0, 2.0);
            let beta = [0.0, 1.0, -1.0, 0.5][rng.usize(0, 4)];
            let spec = GemmSpec::dense(m, n, k)
                .with_ld(k + da, n + db, n + dc)
                .with_scale(alpha, beta);
            run_case(spec, isa, &mut rng);
        }
    }
}

#[test]
fn every_supported_backend_matches_naive() {
    // The registry-style sweep: whatever `select_backend` yields per cap
    // must agree with the reference on the same inputs.
    for isa in ISAS {
        let backend = select_backend(isa);
        let mut rng = Lcg::new(0xBACC ^ isa.width_doubles() as u64);
        for _ in 0..32 {
            let m = rng.usize(1, 12);
            let n = rng.usize(1, 33);
            let k = rng.usize(1, 12);
            let spec = GemmSpec::dense(m, n, k);
            let a = rng.vec(m * k, -2.0, 2.0);
            let b = rng.vec(k * n, -2.0, 2.0);
            let mut c_ref = vec![0.0; m * n];
            gemm_naive(&spec, &a, &b, &mut c_ref);
            let mut c_got = vec![0.0; m * n];
            backend.execute(&spec, &a, &b, &mut c_got);
            for (g, w) in c_got.iter().zip(&c_ref) {
                assert!(
                    (g - w).abs() <= 1e-10 * (1.0 + w.abs()),
                    "backend={}",
                    backend.name()
                );
            }
        }
    }
}

#[test]
fn gemm_is_linear_in_a() {
    // (s·A)·B == s·(A·B) — linearity the CK predictor relies on.
    let mut rng = Lcg::new(42);
    for _ in 0..64 {
        let m = rng.usize(1, 8);
        let n = rng.usize(1, 20);
        let k = rng.usize(1, 8);
        let s = rng.f64(-3.0, 3.0);
        let spec = GemmSpec::dense(m, n, k);
        let a = rng.vec(m * k, -2.0, 2.0);
        let b = rng.vec(k * n, -2.0, 2.0);
        let sa: Vec<f64> = a.iter().map(|&x| s * x).collect();

        let plan = Gemm::new(spec);
        let mut c1 = vec![0.0; m * n];
        plan.execute(&sa, &b, &mut c1);
        let mut c2 = vec![0.0; m * n];
        plan.execute(&a, &b, &mut c2);

        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - s * y).abs() < 1e-9 * (1.0 + (s * y).abs()));
        }
    }
}

#[test]
fn accumulation_equals_two_step() {
    // C = A·B1 then C += A·B2  ==  C = A·(B1 + B2).
    let mut rng = Lcg::new(77);
    for _ in 0..64 {
        let m = rng.usize(1, 8);
        let n = rng.usize(1, 20);
        let k = rng.usize(1, 8);
        let a = rng.vec(m * k, -2.0, 2.0);
        let b1 = rng.vec(k * n, -2.0, 2.0);
        let b2 = rng.vec(k * n, -2.0, 2.0);
        let bsum: Vec<f64> = b1.iter().zip(&b2).map(|(x, y)| x + y).collect();

        let overwrite = Gemm::new(GemmSpec::dense(m, n, k));
        let acc = Gemm::new(GemmSpec::dense(m, n, k).accumulate());

        let mut c = vec![0.0; m * n];
        overwrite.execute(&a, &b1, &mut c);
        acc.execute(&a, &b2, &mut c);

        let mut c_ref = vec![0.0; m * n];
        overwrite.execute(&a, &bsum, &mut c_ref);

        for (x, y) in c.iter().zip(&c_ref) {
            assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()));
        }
    }
}
