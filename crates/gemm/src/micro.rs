//! Register-tiled packed GEMM microkernels (the LIBXSMM-style kernel
//! layer, paper Sec. II-D).
//!
//! The autovectorized kernels in [`crate::kernels`] multiply straight out
//! of the operand buffers. This module adds the classic high-performance
//! alternative: an MR×NR **microkernel** that walks *packed panels* —
//! operands re-laid-out so the inner loop reads both matrices with unit
//! stride and zero edge handling:
//!
//! * `A` is packed into row panels of `MR` rows: panel `p` stores
//!   `A[p·MR + r][l]` at `[l·MR + r]` (column-major within the panel), so
//!   one scalar broadcast per row feeds the FMA chain.
//! * `B` is packed into column panels of `NR` columns: panel `p` stores
//!   `B[l][p·NR + t]` at `[l·NR + t]`, one contiguous vector row per `l`.
//!
//! Partial edge panels are packed **zero-padded** to full tile size, so
//! the inner loop never branches on tail lanes — the microkernel computes
//! full tiles unconditionally and only the *store* distinguishes
//! `used_rows × used_cols` from the full tile.
//!
//! The inner body is written once, generically over the portable SIMD
//! layer ([`crate::simd`]) with the tile shape as const generics, and
//! instantiated per ISA through `#[target_feature]` wrappers — the same
//! monomorphization pattern the autovec kernels use, but with the
//! vector shape pinned instead of left to the autovectorizer.
//!
//! The [`Microkernel`] trait packages one instantiation (tile dims,
//! packing, driver) behind a dyn-safe interface; the packed
//! [`GemmBackend`](crate::backend::GemmBackend)s own one microkernel each
//! and thread plan-cached panels through [`PackedOperands`]. The trait
//! granularity is one *whole GEMM*, not one tile: the hot shapes run
//! hundreds of sub-microsecond tiles per call, so per-tile virtual
//! dispatch would cost a measurable fraction of the kernel itself.

use crate::simd::{FmaF64x4, FmaF64x8, PortableF64x4, SimdF64};
use crate::spec::{GemmBatch, GemmSpec};

/// Largest `MR` any registered microkernel uses (bounds stack scratch).
pub const MR_CAP: usize = 8;
/// Largest `NR` any registered microkernel uses (bounds stack scratch).
pub const NR_CAP: usize = 16;
/// Largest `k` whose partial-tile packing fits in stack scratch; deeper
/// contractions (never produced by the DG plans, which contract over at
/// most `order + 1 ≤ 12` nodes) fall back to a heap buffer.
const K_STACK: usize = 32;

/// Which operand a [`PackedPanels`] buffer was packed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanelSide {
    /// Left operand: row panels of `MR` rows.
    A,
    /// Right operand: column panels of `NR` columns.
    B,
}

/// An operand repacked into zero-padded microkernel panels.
///
/// Produced by [`Microkernel::pack_a_block`] / [`Microkernel::pack_b_block`]
/// (or the free functions [`pack_a_panels`] / [`pack_b_panels`]); cached
/// per plan for operands that are reused across many calls — the DG
/// operator matrices, which every cell block in every step multiplies by.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedPanels {
    data: Vec<f64>,
    tile: usize,
    k: usize,
    len: usize,
    side: PanelSide,
}

impl PackedPanels {
    /// Which operand side these panels serve.
    pub fn side(&self) -> PanelSide {
        self.side
    }

    /// Panel tile size (`MR` for A-side, `NR` for B-side).
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Contraction depth the panels were packed for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Logical extent covered (`m` for A-side, `n` for B-side).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the packed extent is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of panels.
    pub fn panels(&self) -> usize {
        self.len.div_ceil(self.tile)
    }

    /// One zero-padded panel: `tile · k` doubles.
    pub fn panel(&self, i: usize) -> &[f64] {
        let pl = self.tile * self.k;
        &self.data[i * pl..(i + 1) * pl]
    }

    /// Whether these panels fit a kernel expecting the given geometry.
    pub fn matches(&self, side: PanelSide, tile: usize, k: usize, len: usize) -> bool {
        self.side == side && self.tile == tile && self.k == k && self.len == len
    }
}

/// Packs the left operand of `spec` into zero-padded `mr`-row panels.
pub fn pack_a_panels(spec: &GemmSpec, a: &[f64], mr: usize) -> PackedPanels {
    assert!(mr >= 1, "mr must be positive");
    let (ra, _, _) = spec.required_lens();
    assert!(a.len() >= ra, "A too short to pack: {} < {ra}", a.len());
    let panels = spec.m.div_ceil(mr);
    let mut data = vec![0.0; panels * mr * spec.k];
    for p in 0..panels {
        let i0 = p * mr;
        let rows = mr.min(spec.m - i0);
        let dst = &mut data[p * mr * spec.k..][..mr * spec.k];
        for r in 0..rows {
            for l in 0..spec.k {
                dst[l * mr + r] = a[(i0 + r) * spec.lda + l];
            }
        }
    }
    PackedPanels {
        data,
        tile: mr,
        k: spec.k,
        len: spec.m,
        side: PanelSide::A,
    }
}

/// Packs the right operand of `spec` into zero-padded `nr`-column panels.
pub fn pack_b_panels(spec: &GemmSpec, b: &[f64], nr: usize) -> PackedPanels {
    assert!(nr >= 1, "nr must be positive");
    let (_, rb, _) = spec.required_lens();
    assert!(b.len() >= rb, "B too short to pack: {} < {rb}", b.len());
    let panels = spec.n.div_ceil(nr);
    let mut data = vec![0.0; panels * nr * spec.k];
    for p in 0..panels {
        let j0 = p * nr;
        let cols = nr.min(spec.n - j0);
        let dst = &mut data[p * nr * spec.k..][..nr * spec.k];
        for l in 0..spec.k {
            for t in 0..cols {
                dst[l * nr + t] = b[l * spec.ldb + j0 + t];
            }
        }
    }
    PackedPanels {
        data,
        tile: nr,
        k: spec.k,
        len: spec.n,
        side: PanelSide::B,
    }
}

/// Optional pre-packed panels threaded alongside the raw operands.
///
/// The raw slices stay authoritative — a kernel uses a panel only when it
/// matches its own tile geometry, so callers can hand the same
/// `PackedOperands` to any backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct PackedOperands<'p> {
    /// Panels packed from the left operand ([`PanelSide::A`]).
    pub a: Option<&'p PackedPanels>,
    /// Panels packed from the right operand ([`PanelSide::B`]).
    pub b: Option<&'p PackedPanels>,
}

impl<'p> PackedOperands<'p> {
    /// No pre-packed operands.
    pub fn none() -> Self {
        Self::default()
    }
}

/// One register-tiled microkernel instantiation: tile geometry, panel
/// packing, and the tiled whole-GEMM driver.
pub trait Microkernel: Send + Sync + std::fmt::Debug {
    /// Short identifier (e.g. `avx512_8x8`).
    fn name(&self) -> &'static str;

    /// Register tile height (rows of `C` held in accumulators).
    fn mr(&self) -> usize;

    /// Register tile width in doubles.
    fn nr(&self) -> usize;

    /// Runtime probe: can the host execute this kernel?
    fn supported(&self) -> bool;

    /// Packs the left operand into this kernel's row-panel layout.
    fn pack_a_block(&self, spec: &GemmSpec, a: &[f64]) -> PackedPanels {
        pack_a_panels(spec, a, self.mr())
    }

    /// Packs the right operand into this kernel's column-panel layout.
    fn pack_b_block(&self, spec: &GemmSpec, b: &[f64]) -> PackedPanels {
        pack_b_panels(spec, b, self.nr())
    }

    /// Runs `C ← α·A·B + β·C` per `spec`, reading packed panels where
    /// `packed` provides them (a mismatched panel is a panic, not a wrong
    /// answer) and packing partial edge tiles on the fly otherwise.
    ///
    /// # Safety
    /// The host must support this kernel ([`supported`](Self::supported)).
    unsafe fn kernel(
        &self,
        spec: &GemmSpec,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        packed: PackedOperands<'_>,
    );
}

/// Validates operands and panels before a kernel run (shared by every
/// [`Microkernel`] impl).
fn check_kernel_args(
    micro: &dyn Microkernel,
    spec: &GemmSpec,
    a: &[f64],
    b: &[f64],
    c: &[f64],
    packed: PackedOperands<'_>,
) {
    spec.check(a, b, c);
    if let Some(p) = packed.a {
        assert!(
            p.matches(PanelSide::A, micro.mr(), spec.k, spec.m),
            "packed A panels (tile {} k {} len {}) do not fit {} on {:?}",
            p.tile(),
            p.k(),
            p.len(),
            micro.name(),
            spec
        );
    }
    if let Some(p) = packed.b {
        assert!(
            p.matches(PanelSide::B, micro.nr(), spec.k, spec.n),
            "packed B panels (tile {} k {} len {}) do not fit {} on {:?}",
            p.tile(),
            p.k(),
            p.len(),
            micro.name(),
            spec
        );
    }
}

/// Accumulates one full `MR × (NV·LANES)` tile over `k` terms.
///
/// `A` is addressed as `a[l·a_stride_l + r·a_stride_r]` — `(MR, 1)` for a
/// packed panel, `(1, lda)` for an unpacked full-height row panel — and
/// `B` as `b[l·b_stride_l + t]` (`nr` packed, `ldb` unpacked).
///
/// # Safety
/// Both pointers must be valid for every index the strides generate over
/// `l < k`, `r < MR`, `t < NV·LANES`.
#[inline(always)]
unsafe fn tile_acc<S: SimdF64, const MR: usize, const NV: usize>(
    k: usize,
    a: *const f64,
    a_stride_l: usize,
    a_stride_r: usize,
    b: *const f64,
    b_stride_l: usize,
) -> [[S; NV]; MR] {
    let mut acc = [[S::zero(); NV]; MR];
    for l in 0..k {
        let mut bv = [S::zero(); NV];
        for (v, bvv) in bv.iter_mut().enumerate() {
            // SAFETY: caller guarantees the index is in bounds.
            *bvv = unsafe { S::load(b.add(l * b_stride_l + v * S::LANES)) };
        }
        for r in 0..MR {
            // SAFETY: caller guarantees the index is in bounds.
            let av = S::splat(unsafe { *a.add(l * a_stride_l + r * a_stride_r) });
            for v in 0..NV {
                acc[r][v] = acc[r][v].fma(av, bv[v]);
            }
        }
    }
    acc
}

/// Scales and stores one full tile: `C ← α·acc + β·C` (with `β = 0`
/// never reading `C`, so garbage/NaN contents are overwritten).
///
/// # Safety
/// `c` must be valid for the full `MR × NV·LANES` tile at row stride `ldc`.
#[inline(always)]
unsafe fn store_tile<S: SimdF64, const MR: usize, const NV: usize>(
    acc: &[[S; NV]; MR],
    c: *mut f64,
    ldc: usize,
    alpha: f64,
    beta: f64,
) {
    let va = S::splat(alpha);
    let vb = S::splat(beta);
    for (r, row) in acc.iter().enumerate() {
        for (v, &av) in row.iter().enumerate() {
            // SAFETY: caller guarantees the tile is in bounds.
            unsafe {
                let p = c.add(r * ldc + v * S::LANES);
                let mut x = av.mul(va);
                if beta != 0.0 {
                    x = x.add(S::load(p).mul(vb));
                }
                x.store(p);
            }
        }
    }
}

/// Stores the `used_rows × used_cols` corner of a tile (edge tiles whose
/// remaining lanes are padding computed over packed zeros).
///
/// # Safety
/// `c` must be valid for `used_rows` rows of `used_cols` doubles at row
/// stride `ldc`.
#[inline(always)]
unsafe fn store_tile_partial<S: SimdF64, const MR: usize, const NV: usize>(
    acc: &[[S; NV]; MR],
    c: *mut f64,
    ldc: usize,
    used_rows: usize,
    used_cols: usize,
    alpha: f64,
    beta: f64,
) {
    let nr = NV * S::LANES;
    let mut tmp = [0.0f64; MR_CAP * NR_CAP];
    for (r, row) in acc.iter().enumerate() {
        for (v, &av) in row.iter().enumerate() {
            // SAFETY: `MR·NR ≤ MR_CAP·NR_CAP` by the registration caps.
            unsafe { av.store(tmp.as_mut_ptr().add(r * nr + v * S::LANES)) };
        }
    }
    for r in 0..used_rows {
        for j in 0..used_cols {
            // SAFETY: caller guarantees the corner is in bounds.
            unsafe {
                let p = c.add(r * ldc + j);
                let x = alpha * tmp[r * nr + j];
                *p = if beta == 0.0 { x } else { x + beta * *p };
            }
        }
    }
}

/// Packs a partial (`rows < mr`) row panel into zero-padded scratch.
#[inline(always)]
fn pack_partial_a(dst: &mut [f64], a: &[f64], lda: usize, i0: usize, rows: usize, mr: usize) {
    let k = dst.len() / mr;
    dst.fill(0.0);
    for r in 0..rows {
        for l in 0..k {
            dst[l * mr + r] = a[(i0 + r) * lda + l];
        }
    }
}

/// Packs a partial (`cols < nr`) column panel into zero-padded scratch.
#[inline(always)]
fn pack_partial_b(dst: &mut [f64], b: &[f64], ldb: usize, j0: usize, cols: usize, nr: usize) {
    let k = dst.len() / nr;
    dst.fill(0.0);
    for l in 0..k {
        for t in 0..cols {
            dst[l * nr + t] = b[l * ldb + j0 + t];
        }
    }
}

/// The shared tiled driver: loops row panels × column tiles, sourcing each
/// side from plan-cached panels, the raw buffer (full tiles), or on-the-fly
/// zero-padded scratch (edge tiles). `#[inline(always)]` so each
/// `target_feature` wrapper monomorphizes its own full-width copy.
///
/// # Safety
/// Operands must satisfy `spec.check`, and provided panels must match the
/// `(MR, NV·LANES, k, extent)` geometry — both enforced by
/// [`check_kernel_args`] in every public caller.
#[inline(always)]
unsafe fn gemm_tiled<S: SimdF64, const MR: usize, const NV: usize>(
    spec: &GemmSpec,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    packed: PackedOperands<'_>,
) {
    let &GemmSpec {
        m,
        n,
        k,
        lda,
        ldb,
        ldc,
        alpha,
        beta,
    } = spec;
    let nr = NV * S::LANES;
    debug_assert!(MR <= MR_CAP && nr <= NR_CAP);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // Pure β pass; keep the β = 0 "never read C" contract.
        for i in 0..m {
            for j in 0..n {
                let cj = &mut c[i * ldc + j];
                *cj = if beta == 0.0 { 0.0 } else { beta * *cj };
            }
        }
        return;
    }

    // Scratch for zero-padded edge panels. The DG contraction depths all
    // fit the stack buffers; anything deeper packs into a heap buffer.
    let mut astack = [0.0f64; MR_CAP * K_STACK];
    let mut bstack = [0.0f64; K_STACK * NR_CAP];
    let (mut aheap, mut bheap) = if k > K_STACK {
        (vec![0.0f64; MR * k], vec![0.0f64; k * nr])
    } else {
        (Vec::new(), Vec::new())
    };
    let use_heap = k > K_STACK;

    for ip in 0..m.div_ceil(MR) {
        let i0 = ip * MR;
        let rows = MR.min(m - i0);
        let (ap, a_l, a_r) = if let Some(p) = packed.a {
            (p.panel(ip).as_ptr(), MR, 1)
        } else if rows == MR {
            (a[i0 * lda..].as_ptr(), 1, lda)
        } else {
            let buf: &mut [f64] = if use_heap {
                &mut aheap
            } else {
                &mut astack[..MR * k]
            };
            pack_partial_a(buf, a, lda, i0, rows, MR);
            (buf.as_ptr(), MR, 1)
        };
        for jp in 0..n.div_ceil(nr) {
            let j0 = jp * nr;
            let cols = nr.min(n - j0);
            let (bp, b_l) = if let Some(p) = packed.b {
                (p.panel(jp).as_ptr(), nr)
            } else if cols == nr {
                (b[j0..].as_ptr(), ldb)
            } else {
                let buf: &mut [f64] = if use_heap {
                    &mut bheap
                } else {
                    &mut bstack[..k * nr]
                };
                pack_partial_b(buf, b, ldb, j0, cols, nr);
                (buf.as_ptr(), nr)
            };
            // SAFETY: packed panels are zero-padded to full tiles; the
            // unpacked paths are taken only for full tiles, where
            // `spec.check` bounds every generated index.
            let acc = unsafe { tile_acc::<S, MR, NV>(k, ap, a_l, a_r, bp, b_l) };
            let cp = c[i0 * ldc + j0..].as_mut_ptr();
            // SAFETY: `rows × cols` starting at `(i0, j0)` is in bounds.
            unsafe {
                if rows == MR && cols == nr {
                    store_tile::<S, MR, NV>(&acc, cp, ldc, alpha, beta);
                } else {
                    store_tile_partial::<S, MR, NV>(&acc, cp, ldc, rows, cols, alpha, beta);
                }
            }
        }
    }
}

/// [`gemm_tiled`] with the contraction depth fixed at compile time — the
/// "generated kernel" trick shared with the autovec path: the `k` loop is
/// fully unrolled for the depths the DG derivative GEMMs actually use.
///
/// # Safety
/// Same contract as [`gemm_tiled`].
#[inline(always)]
unsafe fn gemm_tiled_k<S: SimdF64, const MR: usize, const NV: usize, const K: usize>(
    spec: &GemmSpec,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    packed: PackedOperands<'_>,
) {
    debug_assert_eq!(spec.k, K);
    let fixed = GemmSpec { k: K, ..*spec };
    // SAFETY: forwarded contract; `fixed` describes the same problem.
    unsafe { gemm_tiled::<S, MR, NV>(&fixed, a, b, c, packed) }
}

/// Dispatches to a compile-time-`K` instantiation for common DG depths.
///
/// # Safety
/// Same contract as [`gemm_tiled`].
#[inline(always)]
unsafe fn gemm_tiled_dispatch<S: SimdF64, const MR: usize, const NV: usize>(
    spec: &GemmSpec,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    packed: PackedOperands<'_>,
) {
    // SAFETY: forwarded contract (see `gemm_tiled`).
    unsafe {
        match spec.k {
            2 => gemm_tiled_k::<S, MR, NV, 2>(spec, a, b, c, packed),
            3 => gemm_tiled_k::<S, MR, NV, 3>(spec, a, b, c, packed),
            4 => gemm_tiled_k::<S, MR, NV, 4>(spec, a, b, c, packed),
            5 => gemm_tiled_k::<S, MR, NV, 5>(spec, a, b, c, packed),
            6 => gemm_tiled_k::<S, MR, NV, 6>(spec, a, b, c, packed),
            7 => gemm_tiled_k::<S, MR, NV, 7>(spec, a, b, c, packed),
            8 => gemm_tiled_k::<S, MR, NV, 8>(spec, a, b, c, packed),
            9 => gemm_tiled_k::<S, MR, NV, 9>(spec, a, b, c, packed),
            10 => gemm_tiled_k::<S, MR, NV, 10>(spec, a, b, c, packed),
            11 => gemm_tiled_k::<S, MR, NV, 11>(spec, a, b, c, packed),
            12 => gemm_tiled_k::<S, MR, NV, 12>(spec, a, b, c, packed),
            _ => gemm_tiled::<S, MR, NV>(spec, a, b, c, packed),
        }
    }
}

/// Portable microkernel: 4×8 tiles over [`PortableF64x4`] (always
/// supported; unfused multiply-add, so no libm `fma` on any host).
#[derive(Debug, Clone, Copy)]
pub struct PortableMicrokernel;

impl Microkernel for PortableMicrokernel {
    fn name(&self) -> &'static str {
        "portable_4x8"
    }

    fn mr(&self) -> usize {
        4
    }

    fn nr(&self) -> usize {
        8
    }

    fn supported(&self) -> bool {
        true
    }

    // SAFETY: contract documented on `Microkernel::kernel` — the caller
    // checked `supported()`; the body validates operand shapes itself.
    unsafe fn kernel(
        &self,
        spec: &GemmSpec,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        packed: PackedOperands<'_>,
    ) {
        check_kernel_args(self, spec, a, b, c, packed);
        // SAFETY: operands and panels validated; no ISA requirement.
        unsafe { gemm_tiled_dispatch::<PortableF64x4, 4, 2>(spec, a, b, c, packed) }
    }
}

/// AVX2+FMA microkernel: 4×8 tiles, two `ymm` accumulator columns.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct Avx2Microkernel;

#[cfg(target_arch = "x86_64")]
/// # Safety
/// Same contract as [`gemm_tiled`], plus the CPU must support
/// AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
unsafe fn kernel_avx2(
    spec: &GemmSpec,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    packed: PackedOperands<'_>,
) {
    // SAFETY: forwarded contract (see `gemm_tiled`).
    unsafe { gemm_tiled_dispatch::<FmaF64x4, 4, 2>(spec, a, b, c, packed) }
}

#[cfg(target_arch = "x86_64")]
impl Microkernel for Avx2Microkernel {
    fn name(&self) -> &'static str {
        "avx2_4x8"
    }

    fn mr(&self) -> usize {
        4
    }

    fn nr(&self) -> usize {
        8
    }

    fn supported(&self) -> bool {
        // Miri interprets portable Rust only — never report an ISA path.
        !cfg!(miri)
            && std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
    }

    // SAFETY: contract documented on `Microkernel::kernel` — the caller
    // checked `supported()`; the body validates operand shapes itself.
    unsafe fn kernel(
        &self,
        spec: &GemmSpec,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        packed: PackedOperands<'_>,
    ) {
        check_kernel_args(self, spec, a, b, c, packed);
        // SAFETY: caller guarantees AVX2+FMA (trait contract).
        unsafe { kernel_avx2(spec, a, b, c, packed) }
    }
}

/// AVX-512 microkernel for narrow outputs: 8×8 tiles, one `zmm`
/// accumulator column — exact fit for the zero-padded `n_pad = 8` AoSoA
/// layout the fused `d = 0` derivative GEMM produces.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct Avx512Microkernel;

#[cfg(target_arch = "x86_64")]
/// # Safety
/// Same contract as [`gemm_tiled`], plus the CPU must support
/// AVX-512F, AVX-512VL and FMA.
#[target_feature(enable = "avx512f,avx512vl,fma")]
unsafe fn kernel_avx512(
    spec: &GemmSpec,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    packed: PackedOperands<'_>,
) {
    // SAFETY: forwarded contract (see `gemm_tiled`).
    unsafe { gemm_tiled_dispatch::<FmaF64x8, 8, 1>(spec, a, b, c, packed) }
}

#[cfg(target_arch = "x86_64")]
fn avx512_supported() -> bool {
    // Miri interprets portable Rust only — never report an ISA path.
    !cfg!(miri)
        && std::arch::is_x86_feature_detected!("avx512f")
        && std::arch::is_x86_feature_detected!("avx512vl")
        && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(target_arch = "x86_64")]
impl Microkernel for Avx512Microkernel {
    fn name(&self) -> &'static str {
        "avx512_8x8"
    }

    fn mr(&self) -> usize {
        8
    }

    fn nr(&self) -> usize {
        8
    }

    fn supported(&self) -> bool {
        avx512_supported()
    }

    // SAFETY: contract documented on `Microkernel::kernel` — the caller
    // checked `supported()`; the body validates operand shapes itself.
    unsafe fn kernel(
        &self,
        spec: &GemmSpec,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        packed: PackedOperands<'_>,
    ) {
        check_kernel_args(self, spec, a, b, c, packed);
        // SAFETY: caller guarantees AVX-512F/VL+FMA (trait contract).
        unsafe { kernel_avx512(spec, a, b, c, packed) }
    }
}

/// AVX-512 microkernel for wide outputs: 4×16 tiles, two `zmm`
/// accumulator columns — fewer broadcast loads per FMA than the 8×8
/// kernel, preferred when `n` is a multiple of 16 (the fused `d ≥ 1`
/// derivative GEMMs at even node counts).
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct Avx512WideMicrokernel;

#[cfg(target_arch = "x86_64")]
/// # Safety
/// Same contract as [`gemm_tiled`], plus the CPU must support
/// AVX-512F, AVX-512VL and FMA.
#[target_feature(enable = "avx512f,avx512vl,fma")]
unsafe fn kernel_avx512_wide(
    spec: &GemmSpec,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    packed: PackedOperands<'_>,
) {
    // SAFETY: forwarded contract (see `gemm_tiled`).
    unsafe { gemm_tiled_dispatch::<FmaF64x8, 4, 2>(spec, a, b, c, packed) }
}

#[cfg(target_arch = "x86_64")]
impl Microkernel for Avx512WideMicrokernel {
    fn name(&self) -> &'static str {
        "avx512_4x16"
    }

    fn mr(&self) -> usize {
        4
    }

    fn nr(&self) -> usize {
        16
    }

    fn supported(&self) -> bool {
        avx512_supported()
    }

    // SAFETY: contract documented on `Microkernel::kernel` — the caller
    // checked `supported()`; the body validates operand shapes itself.
    unsafe fn kernel(
        &self,
        spec: &GemmSpec,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        packed: PackedOperands<'_>,
    ) {
        check_kernel_args(self, spec, a, b, c, packed);
        // SAFETY: caller guarantees AVX-512F/VL+FMA (trait contract).
        unsafe { kernel_avx512_wide(spec, a, b, c, packed) }
    }
}

/// Shared batched driver for the packed backends: fuses row-stacked
/// shared-`B` batches into one tall kernel call (plan-cached `B` panels
/// survive fusion because only `m` changes), and otherwise loops items
/// with exact-length sub-slices so an out-of-bounds stride fails loudly.
/// Per-item panels apply only to operands the batch actually shares
/// (stride 0).
///
/// # Safety
/// The host must support `micro`.
pub(crate) unsafe fn run_batched_micro(
    micro: &dyn Microkernel,
    spec: &GemmSpec,
    batch: &GemmBatch,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    packed: PackedOperands<'_>,
) {
    batch.check(spec, a, b, c);
    if let Some(fused) = batch.fuse_rows(spec) {
        // A-side panels describe the per-item `m`, not the fused tall
        // matrix; only shared-B panels carry over.
        let fused_packed = PackedOperands {
            a: None,
            b: packed.b,
        };
        // SAFETY: forwarded support contract.
        unsafe { micro.kernel(&fused, a, b, c, fused_packed) };
        return;
    }
    let (ra, rb, rc) = spec.required_lens();
    for i in 0..batch.count {
        let (ao, bo, co) = (i * batch.stride_a, i * batch.stride_b, i * batch.stride_c);
        let item = PackedOperands {
            a: if batch.stride_a == 0 { packed.a } else { None },
            b: if batch.stride_b == 0 { packed.b } else { None },
        };
        // SAFETY: forwarded support contract; `batch.check` bounded every
        // sub-slice.
        unsafe {
            micro.kernel(
                spec,
                &a[ao..ao + ra],
                &b[bo..bo + rb],
                &mut c[co..co + rc],
                item,
            )
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::gemm_naive;

    fn rand_vec(len: usize, seed: u64) -> Vec<f64> {
        aderdg_tensor::Lcg::new(seed).vec(len.max(1), -1.0, 1.0)
    }

    fn check_micro(micro: &dyn Microkernel, spec: GemmSpec, seed: u64, pack: (bool, bool)) {
        if !micro.supported() {
            return;
        }
        let (ra, rb, rc) = spec.required_lens();
        let a = rand_vec(ra, seed);
        let b = rand_vec(rb, seed ^ 0xB0B);
        let c0 = rand_vec(rc, seed ^ 0xC0C);

        let mut c_ref = c0.clone();
        gemm_naive(&spec, &a, &b, &mut c_ref);

        let pa = pack.0.then(|| micro.pack_a_block(&spec, &a));
        let pb = pack.1.then(|| micro.pack_b_block(&spec, &b));
        let mut c_got = c0.clone();
        // SAFETY: `supported` checked above.
        unsafe {
            micro.kernel(
                &spec,
                &a,
                &b,
                &mut c_got,
                PackedOperands {
                    a: pa.as_ref(),
                    b: pb.as_ref(),
                },
            )
        };
        for (i, (g, w)) in c_got.iter().zip(&c_ref).enumerate() {
            assert!(
                (g - w).abs() <= 1e-13 * (1.0 + w.abs()),
                "{} spec={spec:?} pack={pack:?} idx={i}: {g} vs {w}",
                micro.name()
            );
        }
    }

    fn all_kernels() -> Vec<&'static dyn Microkernel> {
        // Under Miri only the portable kernel is interpretable; the ISA
        // kernels' `supported()` is hard-false there anyway.
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            vec![
                &PortableMicrokernel,
                &Avx2Microkernel,
                &Avx512Microkernel,
                &Avx512WideMicrokernel,
            ]
        }
        #[cfg(any(not(target_arch = "x86_64"), miri))]
        {
            vec![&PortableMicrokernel]
        }
    }

    #[test]
    fn packing_layout_is_panelwise_column_major() {
        // 3×2 A with lda 3, packed at mr = 2: two panels, second zero-padded.
        let spec = GemmSpec::dense(3, 1, 2).with_ld(3, 1, 1);
        let a = [1.0, 2.0, 99.0, 3.0, 4.0, 99.0, 5.0, 6.0, 99.0];
        let p = pack_a_panels(&spec, &a, 2);
        assert_eq!(p.panels(), 2);
        assert_eq!(p.panel(0), &[1.0, 3.0, 2.0, 4.0]);
        assert_eq!(p.panel(1), &[5.0, 0.0, 6.0, 0.0]);

        // 2×3 B with ldb 4, packed at nr = 2.
        let spec = GemmSpec::dense(1, 3, 2).with_ld(2, 4, 3);
        let b = [1.0, 2.0, 3.0, 99.0, 4.0, 5.0, 6.0, 99.0];
        let p = pack_b_panels(&spec, &b, 2);
        assert_eq!(p.panels(), 2);
        assert_eq!(p.panel(0), &[1.0, 2.0, 4.0, 5.0]);
        assert_eq!(p.panel(1), &[3.0, 0.0, 6.0, 0.0]);
    }

    #[test]
    fn every_kernel_matches_naive_with_and_without_panels() {
        // Miri interprets every FLOP; keep its shape set small.
        let shapes: &[(usize, usize, usize)] = if cfg!(miri) {
            &[(1, 1, 1), (4, 8, 5), (9, 7, 3)]
        } else {
            &[
                (1, 1, 1),
                (4, 8, 5),
                (8, 8, 5),
                (9, 7, 3),
                (17, 23, 6),
                (5, 16, 11),
                (21, 40, 13),
            ]
        };
        for micro in all_kernels() {
            for (i, &(m, n, k)) in shapes.iter().enumerate() {
                for &pack in &[(false, false), (true, false), (false, true), (true, true)] {
                    let spec = GemmSpec::dense(m, n, k).with_scale(1.25, -0.5);
                    check_micro(micro, spec, 40 + i as u64, pack);
                }
            }
        }
    }

    #[test]
    fn kernel_handles_strided_operands() {
        for micro in all_kernels() {
            let spec = GemmSpec::dense(6, 10, 4).with_ld(7, 13, 11);
            check_micro(micro, spec, 77, (true, true));
            check_micro(micro, spec, 78, (false, false));
        }
    }

    #[test]
    fn zero_depth_is_a_pure_beta_pass() {
        let spec = GemmSpec::dense(3, 4, 0).with_scale(2.0, 0.5);
        let mut c = vec![2.0; 12];
        // SAFETY: portable kernel has no ISA requirement.
        unsafe {
            PortableMicrokernel.kernel(&spec, &[], &[], &mut c, PackedOperands::none());
        }
        assert!(c.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn beta_zero_never_reads_c() {
        let spec = GemmSpec::dense(5, 9, 3);
        let a = vec![1.0; 15];
        let b = vec![1.0; 27];
        for micro in all_kernels() {
            if !micro.supported() {
                continue;
            }
            let mut c = vec![f64::NAN; 45];
            // SAFETY: `supported` checked above.
            unsafe { micro.kernel(&spec, &a, &b, &mut c, PackedOperands::none()) };
            assert!(c.iter().all(|&x| x == 3.0), "{}", micro.name());
        }
    }

    #[test]
    #[should_panic(expected = "packed A panels")]
    fn mismatched_panels_panic() {
        let spec = GemmSpec::dense(4, 8, 3);
        let a = vec![0.0; 12];
        let b = vec![0.0; 24];
        let mut c = vec![0.0; 32];
        let wrong = pack_a_panels(&GemmSpec::dense(5, 8, 3), &[0.0; 15], 4);
        // SAFETY: portable kernel has no ISA requirement.
        unsafe {
            PortableMicrokernel.kernel(
                &spec,
                &a,
                &b,
                &mut c,
                PackedOperands {
                    a: Some(&wrong),
                    b: None,
                },
            )
        };
    }

    #[test]
    fn deep_contraction_uses_heap_scratch() {
        // k beyond K_STACK exercises the heap fallback for edge packing.
        let spec = GemmSpec::dense(5, 7, K_STACK + 3);
        for micro in all_kernels() {
            check_micro(micro, spec, 91, (false, false));
        }
    }
}
