//! Small-GEMM compute kernels (the LIBXSMM substitute).
//!
//! One generic implementation, register-tiled so LLVM's auto-vectorizer
//! produces packed FMA sequences, is instantiated three times:
//!
//! * a baseline build (whatever the compile target allows),
//! * an AVX2+FMA build (`#[target_feature]`, paper's "Haswell" variant),
//! * an AVX-512 build (paper's "Skylake" variant),
//!
//! selected once at plan time via runtime feature detection — the same
//! role LIBXSMM's runtime code generation plays for the paper.

use crate::spec::{GemmBatch, GemmSpec};

/// Register micro-tile height (rows of C held in accumulators).
const MR: usize = 4;
/// Register micro-tile width in doubles (two AVX-512 / four AVX2 registers).
const NR: usize = 16;

/// Reference triple-loop implementation. Used as the correctness oracle in
/// tests and as the "generic kernel without LIBXSMM" fallback of the
/// paper's `matmul` template macro.
pub fn gemm_naive(spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
    spec.check(a, b, c);
    for i in 0..spec.m {
        for j in 0..spec.n {
            let mut acc = 0.0;
            for l in 0..spec.k {
                acc += a[i * spec.lda + l] * b[l * spec.ldb + j];
            }
            let cj = &mut c[i * spec.ldc + j];
            *cj = spec.alpha * acc + spec.beta * *cj;
        }
    }
}

/// The shared register-tiled body. `#[inline(always)]` so each
/// `target_feature` wrapper gets its own fully-specialized copy.
#[inline(always)]
fn gemm_body(spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
    let &GemmSpec {
        m,
        n,
        k,
        lda,
        ldb,
        ldc,
        alpha,
        beta,
    } = spec;

    // Full MR x NR register tiles.
    let mut i = 0;
    while i + MR <= m {
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [[0.0f64; NR]; MR];
            for l in 0..k {
                let brow = &b[l * ldb + j..l * ldb + j + NR];
                for r in 0..MR {
                    let av = alpha * a[(i + r) * lda + l];
                    for t in 0..NR {
                        acc[r][t] += av * brow[t];
                    }
                }
            }
            for r in 0..MR {
                let crow = &mut c[(i + r) * ldc + j..(i + r) * ldc + j + NR];
                if beta == 0.0 {
                    crow.copy_from_slice(&acc[r]);
                } else {
                    for t in 0..NR {
                        crow[t] = acc[r][t] + beta * crow[t];
                    }
                }
            }
            j += NR;
        }
        // Right edge: MR rows, narrow columns.
        if j < n {
            edge_tile::<MR>(spec, a, b, c, i, j, n - j);
        }
        i += MR;
    }
    // Bottom edge: remaining rows, full width sweep.
    while i < m {
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [0.0f64; NR];
            let arow = &a[i * lda..i * lda + k];
            for (l, &al) in arow.iter().enumerate() {
                let av = alpha * al;
                let brow = &b[l * ldb + j..l * ldb + j + NR];
                for t in 0..NR {
                    acc[t] += av * brow[t];
                }
            }
            let crow = &mut c[i * ldc + j..i * ldc + j + NR];
            if beta == 0.0 {
                crow.copy_from_slice(&acc);
            } else {
                for t in 0..NR {
                    crow[t] = acc[t] + beta * crow[t];
                }
            }
            j += NR;
        }
        if j < n {
            edge_tile::<1>(spec, a, b, c, i, j, n - j);
        }
        i += 1;
    }
}

/// Scalar-ish edge handling for the last `< NR` columns of `rows` rows
/// starting at `(i0, j0)`. Small by construction; correctness over speed.
#[inline(always)]
fn edge_tile<const ROWS: usize>(
    spec: &GemmSpec,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    i0: usize,
    j0: usize,
    ncols: usize,
) {
    let &GemmSpec {
        k,
        lda,
        ldb,
        ldc,
        alpha,
        beta,
        ..
    } = spec;
    for r in 0..ROWS {
        let i = i0 + r;
        for j in j0..j0 + ncols {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a[i * lda + l] * b[l * ldb + j];
            }
            let cj = &mut c[i * ldc + j];
            *cj = alpha * acc + beta * *cj;
        }
    }
}

/// The tiled body with the contraction depth `K` fixed at compile time —
/// the "generated kernel" path: like the paper's Kernel Generator (and
/// LIBXSMM's runtime code generation), the loop over `k` is fully unrolled
/// for the small depths the DG derivative GEMMs actually use.
#[inline(always)]
fn gemm_body_const_k<const K: usize>(spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
    debug_assert_eq!(spec.k, K);
    let fixed = GemmSpec { k: K, ..*spec };
    gemm_body(&fixed, a, b, c);
}

/// Dispatches to a compile-time-`K` instantiation when the depth is one of
/// the common DG orders, else to the dynamic body.
#[inline(always)]
fn gemm_body_dispatch(spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
    match spec.k {
        2 => gemm_body_const_k::<2>(spec, a, b, c),
        3 => gemm_body_const_k::<3>(spec, a, b, c),
        4 => gemm_body_const_k::<4>(spec, a, b, c),
        5 => gemm_body_const_k::<5>(spec, a, b, c),
        6 => gemm_body_const_k::<6>(spec, a, b, c),
        7 => gemm_body_const_k::<7>(spec, a, b, c),
        8 => gemm_body_const_k::<8>(spec, a, b, c),
        9 => gemm_body_const_k::<9>(spec, a, b, c),
        10 => gemm_body_const_k::<10>(spec, a, b, c),
        11 => gemm_body_const_k::<11>(spec, a, b, c),
        12 => gemm_body_const_k::<12>(spec, a, b, c),
        _ => gemm_body(spec, a, b, c),
    }
}

/// Baseline build of the tiled kernel (no extra target features).
pub fn gemm_autovec(spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
    spec.check(a, b, c);
    gemm_body_dispatch(spec, a, b, c);
}

/// AVX2+FMA build (paper's "Haswell / AVX2" configuration).
///
/// # Safety
/// The caller must ensure the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub unsafe fn gemm_avx2(spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
    spec.check(a, b, c);
    gemm_body_dispatch(spec, a, b, c);
}

/// AVX-512 build (paper's "Skylake / AVX-512" configuration).
///
/// # Safety
/// The caller must ensure the CPU supports AVX-512F/VL and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,fma")]
pub unsafe fn gemm_avx512(spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
    spec.check(a, b, c);
    gemm_body_dispatch(spec, a, b, c);
}

/// The shared batched body: one spec, `batch.count` strided operand
/// triples. Row-stacked shared-`B` batches collapse into a single tall
/// multiplication ([`GemmBatch::fuse_rows`]); everything else runs a
/// strided loop over the pre-dispatched body with the bounds checks
/// hoisted out of the loop.
#[inline(always)]
fn gemm_batched_body(spec: &GemmSpec, batch: &GemmBatch, a: &[f64], b: &[f64], c: &mut [f64]) {
    if let Some(fused) = batch.fuse_rows(spec) {
        gemm_body_dispatch(&fused, a, b, c);
        return;
    }
    for i in 0..batch.count {
        gemm_body_dispatch(
            spec,
            &a[i * batch.stride_a..],
            &b[i * batch.stride_b..],
            &mut c[i * batch.stride_c..],
        );
    }
}

/// Baseline build of the batched kernel (no extra target features).
pub fn gemm_autovec_batched(
    spec: &GemmSpec,
    batch: &GemmBatch,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
) {
    batch.check(spec, a, b, c);
    gemm_batched_body(spec, batch, a, b, c);
}

/// AVX2+FMA build of the batched kernel.
///
/// # Safety
/// The caller must ensure the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
pub unsafe fn gemm_avx2_batched(
    spec: &GemmSpec,
    batch: &GemmBatch,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
) {
    batch.check(spec, a, b, c);
    gemm_batched_body(spec, batch, a, b, c);
}

/// AVX-512 build of the batched kernel.
///
/// # Safety
/// The caller must ensure the CPU supports AVX-512F/VL and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,fma")]
pub unsafe fn gemm_avx512_batched(
    spec: &GemmSpec,
    batch: &GemmBatch,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
) {
    batch.check(spec, a, b, c);
    gemm_batched_body(spec, batch, a, b, c);
}

/// Instruction-set level a plan may execute with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Isa {
    /// No explicit feature request; whatever the baseline target has.
    Baseline,
    /// 256-bit AVX2 + FMA.
    Avx2,
    /// 512-bit AVX-512F/VL + FMA.
    Avx512,
}

impl Isa {
    /// Best ISA the host supports.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vl")
            {
                return Isa::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return Isa::Avx2;
            }
        }
        Isa::Baseline
    }

    /// Clamp to at most `other` (used to emulate the paper's "AVX2 build on
    /// an AVX-512 machine" comparison, Fig. 4).
    pub fn min(self, other: Isa) -> Isa {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// SIMD register width in doubles this ISA packs.
    pub fn width_doubles(self) -> usize {
        match self {
            Isa::Baseline => 2,
            Isa::Avx2 => 4,
            Isa::Avx512 => 8,
        }
    }
}

/// A planned GEMM: spec plus the backend chosen for the host at plan time.
///
/// This is the analogue of a generated-and-dispatched LIBXSMM kernel: all
/// size/stride and ISA decisions happen once, through
/// [`select_backend`](crate::backend::select_backend); `execute` is the
/// hot call.
#[derive(Debug, Clone)]
pub struct Gemm {
    spec: GemmSpec,
    backend: &'static dyn crate::backend::GemmBackend,
    packed_a: Option<std::sync::Arc<crate::micro::PackedPanels>>,
    packed_b: Option<std::sync::Arc<crate::micro::PackedPanels>>,
}

impl Gemm {
    /// Plans `spec` with the best backend the host supports.
    pub fn new(spec: GemmSpec) -> Self {
        Self::with_isa(spec, Isa::detect())
    }

    /// Plans `spec` with an explicit ISA cap (the cap is intersected with
    /// what the host actually supports).
    pub fn with_isa(spec: GemmSpec, isa: Isa) -> Self {
        Self::with_backend(spec, crate::backend::select_backend(isa))
    }

    /// Plans `spec` on an explicit backend (the caller vouches the host
    /// supports it).
    pub fn with_backend(spec: GemmSpec, backend: &'static dyn crate::backend::GemmBackend) -> Self {
        Self {
            spec,
            backend,
            packed_a: None,
            packed_b: None,
        }
    }

    /// Caches the left operand in the backend's packed-panel layout (a
    /// no-op on backends that do not pack). Every later `execute*` call
    /// **must** pass the same logical `A` it would pass without caching —
    /// the raw slice stays the source of truth for non-packing backends
    /// and for batch items the cache does not cover.
    ///
    /// This is the plan-time amortization step of the paper's kernel
    /// story: the DG operator matrices are multiplied by every cell block
    /// of every step, so their panels are packed once per plan.
    pub fn with_packed_a(mut self, a: &[f64]) -> Self {
        self.packed_a = self.backend.pack_a(&self.spec, a).map(std::sync::Arc::new);
        self
    }

    /// Caches the right operand in the backend's packed-panel layout (see
    /// [`with_packed_a`](Self::with_packed_a)).
    pub fn with_packed_b(mut self, b: &[f64]) -> Self {
        self.packed_b = self.backend.pack_b(&self.spec, b).map(std::sync::Arc::new);
        self
    }

    /// The plan-cached packed operands, if any.
    fn packed(&self) -> crate::micro::PackedOperands<'_> {
        crate::micro::PackedOperands {
            a: self.packed_a.as_deref(),
            b: self.packed_b.as_deref(),
        }
    }

    /// Debug guard: cached panels must describe the operands actually
    /// passed (spot-checks the first packed element).
    #[cfg(debug_assertions)]
    fn debug_check_packed(&self, a: &[f64], b: &[f64]) {
        if self.spec.k == 0 {
            return;
        }
        if let Some(p) = &self.packed_a {
            if self.spec.m > 0 {
                debug_assert_eq!(
                    p.panel(0)[0],
                    a[0],
                    "packed A panels out of sync with the raw operand"
                );
            }
        }
        if let Some(p) = &self.packed_b {
            if self.spec.n > 0 {
                debug_assert_eq!(
                    p.panel(0)[0],
                    b[0],
                    "packed B panels out of sync with the raw operand"
                );
            }
        }
    }

    /// The descriptor this plan executes.
    pub fn spec(&self) -> &GemmSpec {
        &self.spec
    }

    /// The backend the plan dispatches to.
    pub fn backend(&self) -> &'static dyn crate::backend::GemmBackend {
        self.backend
    }

    /// The ISA level the plan dispatches to.
    pub fn isa(&self) -> Isa {
        self.backend.isa()
    }

    /// Runs the planned multiplication on whole buffers, reading
    /// plan-cached packed panels where present.
    #[inline]
    pub fn execute(&self, a: &[f64], b: &[f64], c: &mut [f64]) {
        #[cfg(debug_assertions)]
        self.debug_check_packed(a, b);
        self.backend
            .execute_packed(&self.spec, a, b, c, self.packed());
    }

    /// Runs the planned multiplication on tensor slices given by offsets —
    /// the Loop-over-GEMM entry point (offset + slice-stride addressing of
    /// paper Fig. 3; the strides live in the spec).
    #[inline]
    pub fn execute_offset(
        &self,
        a: &[f64],
        ao: usize,
        b: &[f64],
        bo: usize,
        c: &mut [f64],
        co: usize,
    ) {
        self.execute(&a[ao..], &b[bo..], &mut c[co..]);
    }

    /// Runs the planned multiplication over a strided batch of operand
    /// triples — the cell-block entry point. One call amortizes the
    /// shared operand (batch stride `0`) across the whole batch instead
    /// of reloading it per cell.
    #[inline]
    pub fn execute_batched(&self, batch: &GemmBatch, a: &[f64], b: &[f64], c: &mut [f64]) {
        #[cfg(debug_assertions)]
        self.debug_check_packed(a, b);
        self.backend
            .run_batched_packed(&self.spec, batch, a, b, c, self.packed());
    }

    /// Useful flops per execution.
    pub fn flops(&self) -> u64 {
        self.spec.flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_vec(len: usize, seed: u64) -> Vec<f64> {
        aderdg_tensor::Lcg::new(seed).vec(len, -1.0, 1.0)
    }

    fn check_against_naive(spec: GemmSpec, seed: u64) {
        let (ra, rb, rc) = spec.required_lens();
        let a = rand_vec(ra.max(1), seed);
        let b = rand_vec(rb.max(1), seed ^ 0xABCD);
        let c0 = rand_vec(rc.max(1), seed ^ 0x1234);

        let mut c_ref = c0.clone();
        gemm_naive(&spec, &a, &b, &mut c_ref);

        let mut c_tiled = c0.clone();
        gemm_autovec(&spec, &a, &b, &mut c_tiled);
        assert_close(&c_tiled, &c_ref, &spec);

        let mut c_plan = c0.clone();
        Gemm::new(spec).execute(&a, &b, &mut c_plan);
        assert_close(&c_plan, &c_ref, &spec);
    }

    fn assert_close(got: &[f64], want: &[f64], spec: &GemmSpec) {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g - w).abs() < 1e-11 * (1.0 + w.abs()),
                "spec={spec:?} idx={i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn matches_naive_across_shapes() {
        let shapes = [
            (1, 1, 1),
            (4, 16, 4),
            (5, 17, 3),
            (8, 24, 8),
            (3, 5, 7),
            (6, 48, 6),
            (11, 33, 9),
            (16, 16, 16),
            (2, 130, 4),
        ];
        for (i, &(m, n, k)) in shapes.iter().enumerate() {
            check_against_naive(GemmSpec::dense(m, n, k), 7 + i as u64);
        }
    }

    #[test]
    fn matches_naive_with_strides_and_scales() {
        let mut seed = 100;
        for &(m, n, k) in &[(4, 16, 4), (5, 9, 6), (7, 21, 7)] {
            for &(da, db, dc) in &[(0, 0, 0), (3, 1, 5), (1, 7, 2)] {
                for &(alpha, beta) in &[(1.0, 0.0), (1.0, 1.0), (-0.5, 0.25), (2.0, -1.0)] {
                    let spec = GemmSpec::dense(m, n, k)
                        .with_ld(k + da, n + db, n + dc)
                        .with_scale(alpha, beta);
                    check_against_naive(spec, seed);
                    seed += 1;
                }
            }
        }
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let spec = GemmSpec::dense(4, 16, 2);
        let a = vec![1.0; 8];
        let b = vec![1.0; 32];
        let mut c = vec![f64::NAN; 64];
        gemm_autovec(&spec, &a, &b, &mut c);
        assert!(c.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn padded_b_columns_produce_zero_c_columns() {
        // B has n = 8 columns of which the last 3 are zero padding; with
        // beta = 0 the corresponding C columns must come out exactly zero
        // (the "padding flops for free" invariant of Sec. III-A).
        let spec = GemmSpec::dense(4, 8, 4);
        let a = rand_vec(16, 5);
        let mut b = rand_vec(32, 6);
        for row in 0..4 {
            for j in 5..8 {
                b[row * 8 + j] = 0.0;
            }
        }
        let mut c = vec![1.0; 32];
        gemm_autovec(&spec, &a, &b, &mut c);
        for row in 0..4 {
            for j in 5..8 {
                assert_eq!(c[row * 8 + j], 0.0);
            }
        }
    }

    #[test]
    fn isa_ordering_and_clamp() {
        assert!(Isa::Baseline < Isa::Avx2 && Isa::Avx2 < Isa::Avx512);
        assert_eq!(Isa::Avx512.min(Isa::Avx2), Isa::Avx2);
        assert_eq!(Isa::Baseline.min(Isa::Avx512), Isa::Baseline);
        assert_eq!(Isa::Avx512.width_doubles(), 8);
        let host = Isa::detect();
        let plan = Gemm::with_isa(GemmSpec::dense(2, 2, 2), Isa::Avx512);
        assert!(plan.isa() <= host.min(Isa::Avx512).max(host));
    }

    /// Batched execution must equal the per-item loop for every stride
    /// pattern (shared A, shared B, fully strided, fused rows).
    #[test]
    fn batched_matches_per_item_loop() {
        let cases = [
            // (m, n, k, batch, stride_a, stride_b, stride_c)
            (5, 8, 5, 4, 0, 5 * 8, 5 * 8), // shared A (operator · panels)
            (3, 8, 5, 6, 3 * 5, 0, 3 * 8), // shared B, row-stacked (fusable)
            (4, 16, 4, 3, 4 * 4, 4 * 16, 4 * 16), // fully strided
            (5, 17, 6, 2, 40, 110, 90),    // padded gaps between items
            (2, 8, 2, 1, 0, 0, 16),        // single-item batch
        ];
        for (ci, &(m, n, k, count, sa, sb, sc)) in cases.iter().enumerate() {
            let spec = GemmSpec::dense(m, n, k);
            let batch = GemmBatch::new(count, sa, sb, sc);
            let (ra, rb, rc) = batch.required_lens(&spec);
            let a = rand_vec(ra.max(1), 900 + ci as u64);
            let b = rand_vec(rb.max(1), 1900 + ci as u64);
            let c0 = rand_vec(rc.max(1), 2900 + ci as u64);

            let mut c_ref = c0.clone();
            for i in 0..count {
                gemm_naive(&spec, &a[i * sa..], &b[i * sb..], &mut c_ref[i * sc..]);
            }

            let mut c_auto = c0.clone();
            gemm_autovec_batched(&spec, &batch, &a, &b, &mut c_auto);
            assert_close(&c_auto, &c_ref, &spec);

            let mut c_plan = c0.clone();
            Gemm::new(spec).execute_batched(&batch, &a, &b, &mut c_plan);
            assert_close(&c_plan, &c_ref, &spec);
        }
    }

    #[test]
    fn fuse_rows_detects_row_stacked_shared_b() {
        let spec = GemmSpec::dense(3, 8, 5);
        let fused = GemmBatch::shared_b(4, 3 * 5, 3 * 8)
            .fuse_rows(&spec)
            .unwrap();
        assert_eq!(fused.m, 12);
        assert_eq!((fused.n, fused.k), (8, 5));
        // Shared-A and gapped batches must not fuse.
        assert!(GemmBatch::shared_a(4, 40, 24).fuse_rows(&spec).is_none());
        assert!(GemmBatch::shared_b(4, 16, 24).fuse_rows(&spec).is_none());
    }

    #[test]
    #[should_panic(expected = "batched C too short")]
    fn batched_check_rejects_short_c() {
        let spec = GemmSpec::dense(2, 2, 2);
        let batch = GemmBatch::new(3, 0, 0, 4);
        gemm_autovec_batched(&spec, &batch, &[0.0; 4], &[0.0; 4], &mut [0.0; 8]);
    }

    #[test]
    fn execute_offset_addresses_slices() {
        // Multiply the lower-right 2x2 block of a 4x4 tensor by identity.
        let spec = GemmSpec::dense(2, 2, 2).with_ld(2, 4, 4);
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        let t: Vec<f64> = (0..16).map(|x| x as f64).collect();
        let mut out = vec![0.0; 16];
        // B slice = rows 2..4, cols 2..4 of t => offset 2*4+2 = 10.
        Gemm::new(spec).execute_offset(&eye, 0, &t, 10, &mut out, 10);
        assert_eq!(out[10], 10.0);
        assert_eq!(out[11], 11.0);
        assert_eq!(out[14], 14.0);
        assert_eq!(out[15], 15.0);
        assert_eq!(out[0], 0.0);
    }
}
