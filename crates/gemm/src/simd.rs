//! Portable SIMD abstraction for the packed microkernels.
//!
//! One trait, [`SimdF64`], models "a register of `LANES` doubles" with the
//! five operations the microkernel inner loop needs (splat, load, store,
//! multiply, fused multiply-add). It is implemented by a single generic
//! wrapper type, [`F64s`], parameterized on lane count and on whether the
//! target ISA fuses multiply-add:
//!
//! * [`F64s<4, false>`](F64s) — the scalar/portable fallback. `fma` is an
//!   unfused multiply-then-add, so it never emits a libm `fma` call on
//!   hosts without hardware FMA.
//! * [`F64s<4, true>`](F64s) — one AVX2 `ymm` register. `fma` lowers to
//!   `vfmadd` when instantiated inside an `avx2,fma` target-feature
//!   wrapper.
//! * [`F64s<8, true>`](F64s) — one AVX-512 `zmm` register (same mechanism
//!   with `avx512f`).
//!
//! The wrapper is a plain `[f64; N]` array rather than an architecture
//! intrinsic type: LLVM maps fixed-size array arithmetic inside a
//! `#[target_feature]` function onto full-width vector registers, which
//! keeps this module architecture-independent (and keeps the crate's
//! minimum supported Rust version where it is) while the monomorphized
//! kernels still compile to packed FMA sequences. The pattern matches the
//! existing autovectorized kernels in [`crate::kernels`]; the trait only
//! pins down the register shape so the microkernel can be written once.

/// A register of [`LANES`](SimdF64::LANES) doubles.
///
/// All operations are safe except the raw-pointer loads/stores; ISA
/// availability is the *enclosing* `#[target_feature]` wrapper's job, not
/// the vector type's (the portable instantiation has no requirement at
/// all).
pub trait SimdF64: Copy + Send + Sync + 'static {
    /// Number of doubles per register.
    const LANES: usize;

    /// All lanes zero.
    fn zero() -> Self;

    /// All lanes `x`.
    fn splat(x: f64) -> Self;

    /// Loads `LANES` consecutive doubles from `p` (unaligned).
    ///
    /// # Safety
    /// `p` must be valid for `LANES` reads of `f64`.
    unsafe fn load(p: *const f64) -> Self;

    /// Stores the register to `LANES` consecutive doubles at `p`
    /// (unaligned).
    ///
    /// # Safety
    /// `p` must be valid for `LANES` writes of `f64`.
    unsafe fn store(self, p: *mut f64);

    /// `self + a·b`, fused into hardware FMA when the instantiation says
    /// the ISA provides it (single rounding), plain multiply-then-add
    /// otherwise (two roundings). The two variants agree well within the
    /// `1e-13` equivalence budget of the DG kernels.
    fn fma(self, a: Self, b: Self) -> Self;

    /// Lanewise product.
    fn mul(self, o: Self) -> Self;

    /// Lanewise sum.
    fn add(self, o: Self) -> Self;
}

/// The one wrapper type: `L` doubles, `FMA` telling whether `fma` may use
/// `f64::mul_add` (true only when every instantiation site guarantees
/// hardware FMA — otherwise LLVM would emit a libm call per lane).
#[derive(Debug, Clone, Copy)]
#[repr(transparent)]
pub struct F64s<const L: usize, const FMA: bool>(pub [f64; L]);

impl<const L: usize, const FMA: bool> SimdF64 for F64s<L, FMA> {
    const LANES: usize = L;

    #[inline(always)]
    fn zero() -> Self {
        Self([0.0; L])
    }

    #[inline(always)]
    fn splat(x: f64) -> Self {
        Self([x; L])
    }

    // SAFETY: contract documented on `SimdF64::load`.
    #[inline(always)]
    unsafe fn load(p: *const f64) -> Self {
        // SAFETY: caller guarantees `p` is valid for `L` reads; `[f64; L]`
        // has the same layout as `L` consecutive doubles and
        // `read_unaligned` drops the alignment requirement.
        Self(unsafe { p.cast::<[f64; L]>().read_unaligned() })
    }

    // SAFETY: contract documented on `SimdF64::store`.
    #[inline(always)]
    unsafe fn store(self, p: *mut f64) {
        // SAFETY: caller guarantees `p` is valid for `L` writes.
        unsafe { p.cast::<[f64; L]>().write_unaligned(self.0) }
    }

    #[inline(always)]
    fn fma(self, a: Self, b: Self) -> Self {
        let mut r = self.0;
        if FMA {
            for i in 0..L {
                r[i] = a.0[i].mul_add(b.0[i], r[i]);
            }
        } else {
            for i in 0..L {
                r[i] += a.0[i] * b.0[i];
            }
        }
        Self(r)
    }

    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        let mut r = self.0;
        for i in 0..L {
            r[i] *= o.0[i];
        }
        Self(r)
    }

    #[inline(always)]
    fn add(self, o: Self) -> Self {
        let mut r = self.0;
        for i in 0..L {
            r[i] += o.0[i];
        }
        Self(r)
    }
}

/// Portable 4-lane vector (no FMA contraction; safe on every host).
pub type PortableF64x4 = F64s<4, false>;

/// 4-lane vector for AVX2+FMA instantiations.
pub type FmaF64x4 = F64s<4, true>;

/// 8-lane vector for AVX-512 instantiations.
pub type FmaF64x8 = F64s<8, true>;

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<S: SimdF64>() {
        let src: Vec<f64> = (0..S::LANES).map(|i| i as f64 + 0.5).collect();
        let mut dst = vec![0.0; S::LANES];
        // SAFETY: both slices hold exactly `LANES` doubles.
        unsafe {
            let v = S::load(src.as_ptr());
            v.store(dst.as_mut_ptr());
        }
        assert_eq!(src, dst);
    }

    #[test]
    fn load_store_roundtrip_all_widths() {
        roundtrip::<PortableF64x4>();
        roundtrip::<FmaF64x4>();
        roundtrip::<FmaF64x8>();
    }

    #[test]
    fn fma_mul_add_agree_with_scalar() {
        let a = PortableF64x4::splat(3.0);
        let b = PortableF64x4::splat(0.5);
        let acc = PortableF64x4::splat(1.0);
        let r = acc.fma(a, b);
        assert_eq!(r.0, [2.5; 4]);
        assert_eq!(a.mul(b).0, [1.5; 4]);
        assert_eq!(a.add(b).0, [3.5; 4]);
        assert_eq!(PortableF64x4::zero().0, [0.0; 4]);
    }

    #[test]
    fn fused_variant_matches_unfused_closely() {
        // Same inputs through both rounding modes: identical here because
        // the products are exact; the general bound is ~1 ulp per step.
        let x = FmaF64x4::splat(1.25);
        let y = FmaF64x4::splat(2.0);
        let r = FmaF64x4::splat(0.5).fma(x, y);
        assert_eq!(r.0, [3.0; 4]);
    }
}
