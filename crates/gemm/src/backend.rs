//! Open-ended GEMM backends — the runtime-dispatch half of the LIBXSMM
//! substitute (paper Sec. II-D).
//!
//! A backend is one compiled instantiation of the register-tiled kernel
//! body (baseline, AVX2+FMA, AVX-512). Like LIBXSMM's generated kernels,
//! the choice happens **once at plan time**: [`select_backend`] walks the
//! registered backends best-first and returns the first whose
//! [`supported`](GemmBackend::supported) probe passes on the host. The hot
//! call ([`Gemm::execute`](crate::Gemm::execute)) is a single virtual call
//! into pre-monomorphized code.
//!
//! Adding an architecture-specific micro-kernel is one new impl plus one
//! entry in [`backends`] — no enum, no match.

use crate::kernels::{gemm_autovec, gemm_autovec_batched, Isa};
use crate::micro::{
    run_batched_micro, Microkernel, PackedOperands, PackedPanels, PortableMicrokernel,
};
#[cfg(target_arch = "x86_64")]
use crate::micro::{Avx2Microkernel, Avx512Microkernel, Avx512WideMicrokernel};
use crate::spec::{GemmBatch, GemmSpec};

/// Environment variable that forces backend selection by
/// [`name`](GemmBackend::name) (e.g. `ADERDG_GEMM_BACKEND=baseline`),
/// overriding both the ISA cap and the widest-first walk in
/// [`select_backend`] and short-circuiting the probe tuner. Unknown or
/// host-unsupported names are ignored with a one-time warning.
pub const BACKEND_ENV: &str = "ADERDG_GEMM_BACKEND";

/// One compiled GEMM implementation selectable at plan time.
pub trait GemmBackend: Send + Sync + std::fmt::Debug {
    /// Short identifier (e.g. `avx512`).
    fn name(&self) -> &'static str;

    /// The ISA level this backend packs for.
    fn isa(&self) -> Isa;

    /// Runtime probe: can the host execute this backend?
    fn supported(&self) -> bool;

    /// Runs `C ← α·A·B + β·C` per `spec`.
    fn execute(&self, spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]);

    /// Runs `spec` over a strided batch of operand triples (operand `i`
    /// starts at `i * batch.stride_{a,b,c}`; a stride of `0` shares the
    /// operand across the batch).
    ///
    /// The default is a correct strided loop over
    /// [`execute`](GemmBackend::execute), so every backend supports
    /// batching out of the box. The built-in backends override it with a blocked
    /// implementation that hoists the bounds checks out of the loop and
    /// collapses row-stacked shared-`B` batches into one tall GEMM
    /// ([`GemmBatch::fuse_rows`]) — the cell-block execution path where
    /// one operator load serves a whole block of cells.
    fn run_batched(&self, spec: &GemmSpec, batch: &GemmBatch, a: &[f64], b: &[f64], c: &mut [f64]) {
        batch.check(spec, a, b, c);
        // Exact-length sub-slices: an out-of-bounds stride panics here
        // instead of silently reading whatever follows the logical operand.
        let (ra, rb, rc) = spec.required_lens();
        for i in 0..batch.count {
            let (ao, bo, co) = (i * batch.stride_a, i * batch.stride_b, i * batch.stride_c);
            self.execute(spec, &a[ao..ao + ra], &b[bo..bo + rb], &mut c[co..co + rc]);
        }
    }

    /// Packs the left operand for reuse across calls, if this backend runs
    /// a packing microkernel (`None` means "packing buys nothing here" —
    /// the autovec backends multiply straight from the raw buffers).
    fn pack_a(&self, _spec: &GemmSpec, _a: &[f64]) -> Option<PackedPanels> {
        None
    }

    /// Packs the right operand for reuse across calls (see
    /// [`pack_a`](GemmBackend::pack_a)).
    fn pack_b(&self, _spec: &GemmSpec, _b: &[f64]) -> Option<PackedPanels> {
        None
    }

    /// [`execute`](GemmBackend::execute) with optional plan-cached panels
    /// (packed by **this** backend's [`pack_a`](GemmBackend::pack_a) /
    /// [`pack_b`](GemmBackend::pack_b) from the same logical operands as
    /// the raw slices). Backends without packing ignore the panels.
    fn execute_packed(
        &self,
        spec: &GemmSpec,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        _packed: PackedOperands<'_>,
    ) {
        self.execute(spec, a, b, c);
    }

    /// [`run_batched`](GemmBackend::run_batched) with optional plan-cached
    /// panels; panels apply to operands the batch shares (stride `0`) and
    /// to the shared-`B` side of fused row-stacked batches.
    fn run_batched_packed(
        &self,
        spec: &GemmSpec,
        batch: &GemmBatch,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        _packed: PackedOperands<'_>,
    ) {
        self.run_batched(spec, batch, a, b, c);
    }
}

/// Baseline build: whatever the compile target allows (always supported).
#[derive(Debug, Clone, Copy)]
pub struct BaselineBackend;

impl GemmBackend for BaselineBackend {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn isa(&self) -> Isa {
        Isa::Baseline
    }

    fn supported(&self) -> bool {
        true
    }

    fn execute(&self, spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
        gemm_autovec(spec, a, b, c);
    }

    fn run_batched(&self, spec: &GemmSpec, batch: &GemmBatch, a: &[f64], b: &[f64], c: &mut [f64]) {
        gemm_autovec_batched(spec, batch, a, b, c);
    }
}

/// AVX2+FMA build (paper's "Haswell" configuration).
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct Avx2Backend;

#[cfg(target_arch = "x86_64")]
impl GemmBackend for Avx2Backend {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn isa(&self) -> Isa {
        Isa::Avx2
    }

    fn supported(&self) -> bool {
        // Miri interprets portable Rust only — never report an ISA path.
        !cfg!(miri)
            && std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
    }

    fn execute(&self, spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
        // SAFETY: `supported` gated the selection of this backend.
        unsafe { crate::kernels::gemm_avx2(spec, a, b, c) }
    }

    fn run_batched(&self, spec: &GemmSpec, batch: &GemmBatch, a: &[f64], b: &[f64], c: &mut [f64]) {
        // SAFETY: `supported` gated the selection of this backend.
        unsafe { crate::kernels::gemm_avx2_batched(spec, batch, a, b, c) }
    }
}

/// AVX-512 build (paper's "Skylake" configuration).
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct Avx512Backend;

#[cfg(target_arch = "x86_64")]
impl GemmBackend for Avx512Backend {
    fn name(&self) -> &'static str {
        "avx512"
    }

    fn isa(&self) -> Isa {
        Isa::Avx512
    }

    fn supported(&self) -> bool {
        // Miri interprets portable Rust only — never report an ISA path.
        !cfg!(miri)
            && std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
    }

    fn execute(&self, spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
        // SAFETY: `supported` gated the selection of this backend.
        unsafe { crate::kernels::gemm_avx512(spec, a, b, c) }
    }

    fn run_batched(&self, spec: &GemmSpec, batch: &GemmBatch, a: &[f64], b: &[f64], c: &mut [f64]) {
        // SAFETY: `supported` gated the selection of this backend.
        unsafe { crate::kernels::gemm_avx512_batched(spec, batch, a, b, c) }
    }
}

/// Shared body of the packed backends: picks the microkernel for the
/// output shape, validates, and dispatches single calls.
///
/// # Safety
/// The host must support `micro`.
unsafe fn execute_micro(
    micro: &dyn Microkernel,
    spec: &GemmSpec,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    packed: PackedOperands<'_>,
) {
    // SAFETY: forwarded support contract; the kernel validates operands
    // and panel geometry itself.
    unsafe { micro.kernel(spec, a, b, c, packed) }
}

/// Portable packed-microkernel backend: same register-tiled packed driver
/// as the SIMD backends, instantiated on the scalar-fallback vector type —
/// always supported, and the forced-scalar leg of the equivalence suite.
#[derive(Debug, Clone, Copy)]
pub struct PackedBaselineBackend;

impl PackedBaselineBackend {
    fn micro(&self) -> &'static dyn Microkernel {
        &PortableMicrokernel
    }
}

impl GemmBackend for PackedBaselineBackend {
    fn name(&self) -> &'static str {
        "packed_baseline"
    }

    fn isa(&self) -> Isa {
        Isa::Baseline
    }

    fn supported(&self) -> bool {
        true
    }

    fn execute(&self, spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
        self.execute_packed(spec, a, b, c, PackedOperands::none());
    }

    fn run_batched(&self, spec: &GemmSpec, batch: &GemmBatch, a: &[f64], b: &[f64], c: &mut [f64]) {
        self.run_batched_packed(spec, batch, a, b, c, PackedOperands::none());
    }

    fn pack_a(&self, spec: &GemmSpec, a: &[f64]) -> Option<PackedPanels> {
        Some(self.micro().pack_a_block(spec, a))
    }

    fn pack_b(&self, spec: &GemmSpec, b: &[f64]) -> Option<PackedPanels> {
        Some(self.micro().pack_b_block(spec, b))
    }

    fn execute_packed(
        &self,
        spec: &GemmSpec,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        packed: PackedOperands<'_>,
    ) {
        // SAFETY: the portable microkernel has no ISA requirement.
        unsafe { execute_micro(self.micro(), spec, a, b, c, packed) }
    }

    fn run_batched_packed(
        &self,
        spec: &GemmSpec,
        batch: &GemmBatch,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        packed: PackedOperands<'_>,
    ) {
        // SAFETY: the portable microkernel has no ISA requirement.
        unsafe { run_batched_micro(self.micro(), spec, batch, a, b, c, packed) }
    }
}

/// AVX2+FMA packed-microkernel backend (4×8 tiles of `ymm` FMAs).
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct PackedAvx2Backend;

#[cfg(target_arch = "x86_64")]
impl PackedAvx2Backend {
    fn micro(&self) -> &'static dyn Microkernel {
        &Avx2Microkernel
    }
}

#[cfg(target_arch = "x86_64")]
impl GemmBackend for PackedAvx2Backend {
    fn name(&self) -> &'static str {
        "packed_avx2"
    }

    fn isa(&self) -> Isa {
        Isa::Avx2
    }

    fn supported(&self) -> bool {
        self.micro().supported()
    }

    fn execute(&self, spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
        self.execute_packed(spec, a, b, c, PackedOperands::none());
    }

    fn run_batched(&self, spec: &GemmSpec, batch: &GemmBatch, a: &[f64], b: &[f64], c: &mut [f64]) {
        self.run_batched_packed(spec, batch, a, b, c, PackedOperands::none());
    }

    fn pack_a(&self, spec: &GemmSpec, a: &[f64]) -> Option<PackedPanels> {
        Some(self.micro().pack_a_block(spec, a))
    }

    fn pack_b(&self, spec: &GemmSpec, b: &[f64]) -> Option<PackedPanels> {
        Some(self.micro().pack_b_block(spec, b))
    }

    fn execute_packed(
        &self,
        spec: &GemmSpec,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        packed: PackedOperands<'_>,
    ) {
        // SAFETY: `supported` gated the selection of this backend.
        unsafe { execute_micro(self.micro(), spec, a, b, c, packed) }
    }

    fn run_batched_packed(
        &self,
        spec: &GemmSpec,
        batch: &GemmBatch,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        packed: PackedOperands<'_>,
    ) {
        // SAFETY: `supported` gated the selection of this backend.
        unsafe { run_batched_micro(self.micro(), spec, batch, a, b, c, packed) }
    }
}

/// AVX-512 packed-microkernel backend. Shape-specialized like a LIBXSMM
/// dispatch table: 8×8 tiles (one `zmm` column) for narrow outputs — the
/// `n_pad = 8` AoSoA shape of the fused `d = 0` derivative — and 4×16
/// tiles when `n` is a multiple of 16. The choice depends only on
/// `spec.n`, so plan-cached panels stay valid across row fusion.
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct PackedAvx512Backend;

#[cfg(target_arch = "x86_64")]
impl PackedAvx512Backend {
    fn micro(&self, spec: &GemmSpec) -> &'static dyn Microkernel {
        if spec.n >= 16 && spec.n % 16 == 0 {
            &Avx512WideMicrokernel
        } else {
            &Avx512Microkernel
        }
    }
}

#[cfg(target_arch = "x86_64")]
impl GemmBackend for PackedAvx512Backend {
    fn name(&self) -> &'static str {
        "packed_avx512"
    }

    fn isa(&self) -> Isa {
        Isa::Avx512
    }

    fn supported(&self) -> bool {
        Avx512Microkernel.supported()
    }

    fn execute(&self, spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
        self.execute_packed(spec, a, b, c, PackedOperands::none());
    }

    fn run_batched(&self, spec: &GemmSpec, batch: &GemmBatch, a: &[f64], b: &[f64], c: &mut [f64]) {
        self.run_batched_packed(spec, batch, a, b, c, PackedOperands::none());
    }

    fn pack_a(&self, spec: &GemmSpec, a: &[f64]) -> Option<PackedPanels> {
        Some(self.micro(spec).pack_a_block(spec, a))
    }

    fn pack_b(&self, spec: &GemmSpec, b: &[f64]) -> Option<PackedPanels> {
        Some(self.micro(spec).pack_b_block(spec, b))
    }

    fn execute_packed(
        &self,
        spec: &GemmSpec,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        packed: PackedOperands<'_>,
    ) {
        // SAFETY: `supported` gated the selection of this backend.
        unsafe { execute_micro(self.micro(spec), spec, a, b, c, packed) }
    }

    fn run_batched_packed(
        &self,
        spec: &GemmSpec,
        batch: &GemmBatch,
        a: &[f64],
        b: &[f64],
        c: &mut [f64],
        packed: PackedOperands<'_>,
    ) {
        // SAFETY: `supported` gated the selection of this backend.
        unsafe { run_batched_micro(self.micro(spec), spec, batch, a, b, c, packed) }
    }
}

/// All backends, widest (most preferred) first; at each ISA level the
/// packed-microkernel backend precedes the autovec one.
pub fn backends() -> &'static [&'static dyn GemmBackend] {
    #[cfg(target_arch = "x86_64")]
    {
        &[
            &PackedAvx512Backend,
            &Avx512Backend,
            &PackedAvx2Backend,
            &Avx2Backend,
            &PackedBaselineBackend,
            &BaselineBackend,
        ]
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        &[&PackedBaselineBackend, &BaselineBackend]
    }
}

/// Resolves [`BACKEND_ENV`] to a forced backend, warning once (and
/// returning `None`) for unknown or host-unsupported names.
fn env_backend() -> Option<&'static dyn GemmBackend> {
    let name = std::env::var(BACKEND_ENV).ok()?;
    if name.is_empty() {
        return None;
    }
    let forced = forced_backend(&name);
    if forced.is_none() {
        static WARNED: std::sync::OnceLock<()> = std::sync::OnceLock::new();
        WARNED.get_or_init(|| {
            eprintln!("warning: {BACKEND_ENV}={name} names no host-supported backend; ignored");
        });
    }
    forced
}

/// The selection a [`BACKEND_ENV`] value of `name` would force, if any.
fn forced_backend(name: &str) -> Option<&'static dyn GemmBackend> {
    backend_by_name(name).filter(|b| b.supported())
}

/// Picks the widest host-supported backend at or below the `cap` ISA —
/// the plan-time selection step (the cap emulates the paper's
/// "AVX2 build on an AVX-512 machine" comparison, Fig. 4).
///
/// Setting [`BACKEND_ENV`] forces the named backend regardless of `cap` —
/// the escape hatch CI uses to exercise the scalar paths on SIMD hosts.
pub fn select_backend(cap: Isa) -> &'static dyn GemmBackend {
    if let Some(b) = env_backend() {
        return b;
    }
    backends()
        .iter()
        .copied()
        .find(|b| b.isa() <= cap && b.supported())
        .unwrap_or(&BaselineBackend)
}

/// Resolves a backend by its [`name`](GemmBackend::name).
pub fn backend_by_name(name: &str) -> Option<&'static dyn GemmBackend> {
    backends().iter().copied().find(|b| b.name() == name)
}

/// Times every host-supported backend at or below `cap` on `spec` and
/// returns `(backend, median seconds per call)` sorted fastest-first.
///
/// This is the measured replacement for [`select_backend`]'s widest-first
/// pick, used when the caller opts into probe-based tuning
/// (`tuning = probe` in `aderdg-core`): on a host where the widest ISA
/// downclocks or the problem shape favours a narrower kernel, the probe
/// ranks what actually runs fastest *for this spec*. Operands are seeded,
/// so repeated calls time identical work. Never empty: the baseline
/// backend is always supported.
pub fn rank_backends(
    spec: &GemmSpec,
    cap: Isa,
    reps: usize,
) -> Vec<(&'static dyn GemmBackend, f64)> {
    let (la, lb, lc) = spec.required_lens();
    rank_with(cap, reps, la, lb, lc, |bk, a, b, c| {
        bk.execute(spec, a, b, c)
    })
}

/// Like [`rank_backends`], but times [`GemmBackend::run_batched`] over
/// `batch` — the right probe for kernels that dispatch the batched path
/// (the cell-block pipeline), where backends differ by their blocked
/// `run_batched` overrides (row fusion, hoisted bounds checks), not by
/// the single-call body.
pub fn rank_backends_batched(
    spec: &GemmSpec,
    batch: &GemmBatch,
    cap: Isa,
    reps: usize,
) -> Vec<(&'static dyn GemmBackend, f64)> {
    let (la, lb, lc) = batch.required_lens(spec);
    rank_with(cap, reps, la, lb, lc, |bk, a, b, c| {
        bk.run_batched(spec, batch, a, b, c)
    })
}

/// Shared probe body: seeded operands, median of `reps` samples of an
/// inner loop per backend, sorted fastest-first.
fn rank_with(
    cap: Isa,
    reps: usize,
    la: usize,
    lb: usize,
    lc: usize,
    run: impl Fn(&'static dyn GemmBackend, &[f64], &[f64], &mut [f64]),
) -> Vec<(&'static dyn GemmBackend, f64)> {
    let mut rng = aderdg_tensor::Lcg::new(0x5EED_BACC);
    let a = rng.vec(la, -1.0, 1.0);
    let b = rng.vec(lb, -1.0, 1.0);
    let mut c = vec![0.0; lc];
    // Enough inner iterations per sample to rise above timer granularity
    // on the small GEMMs a plan dispatches.
    let inner = 32;
    let mut ranked: Vec<(&'static dyn GemmBackend, f64)> = backends()
        .iter()
        .copied()
        .filter(|bk| bk.isa() <= cap && bk.supported())
        .map(|bk| {
            run(bk, &a, &b, &mut c); // warm-up
            let mut times = Vec::with_capacity(reps.max(1));
            for _ in 0..reps.max(1) {
                let t0 = std::time::Instant::now();
                for _ in 0..inner {
                    run(bk, &a, &b, &mut c);
                }
                times.push(t0.elapsed().as_secs_f64() / inner as f64);
            }
            times.sort_by(f64::total_cmp);
            (bk, times[times.len() / 2])
        })
        .collect();
    ranked.sort_by(|x, y| x.1.total_cmp(&y.1));
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Skip host-default selection asserts when the run forces a backend
    /// through the environment (the CI forced-backend legs).
    fn env_forced() -> bool {
        std::env::var(BACKEND_ENV).is_ok()
    }

    #[test]
    fn baseline_is_always_supported_and_last_resort() {
        assert!(BaselineBackend.supported());
        assert!(PackedBaselineBackend.supported());
        if env_forced() {
            return;
        }
        // Baseline cap prefers the packed portable microkernel; the plain
        // autovec baseline stays registered as the final fallback.
        assert_eq!(select_backend(Isa::Baseline).name(), "packed_baseline");
        assert_eq!(backends().last().unwrap().name(), "baseline");
    }

    #[test]
    fn selection_respects_cap_and_host() {
        if env_forced() {
            return;
        }
        for cap in [Isa::Baseline, Isa::Avx2, Isa::Avx512] {
            let b = select_backend(cap);
            assert!(b.isa() <= cap, "cap {cap:?} gave {}", b.name());
            assert!(b.supported());
        }
        // The uncapped selection must match plain feature detection.
        assert_eq!(select_backend(Isa::Avx512).isa(), Isa::detect());
    }

    #[test]
    fn forced_backend_resolves_supported_names_only() {
        assert_eq!(forced_backend("baseline").unwrap().name(), "baseline");
        assert_eq!(
            forced_backend("packed_baseline").unwrap().name(),
            "packed_baseline"
        );
        assert!(forced_backend("turbo").is_none());
        for b in backends() {
            // Every host-supported backend is forceable by its own name.
            if b.supported() {
                assert_eq!(forced_backend(b.name()).unwrap().name(), b.name());
            }
        }
    }

    #[test]
    fn backends_are_ordered_widest_first() {
        let list = backends();
        for pair in list.windows(2) {
            assert!(pair[0].isa() >= pair[1].isa());
        }
        assert_eq!(list.last().unwrap().name(), "baseline");
    }

    #[test]
    fn backend_by_name_round_trips() {
        for b in backends() {
            assert_eq!(backend_by_name(b.name()).unwrap().name(), b.name());
        }
        assert!(backend_by_name("turbo").is_none());
    }

    #[test]
    fn rank_backends_lists_supported_candidates_fastest_first() {
        let spec = GemmSpec::dense(6, 24, 6);
        let ranked = rank_backends(&spec, Isa::Avx512, 2);
        assert!(!ranked.is_empty(), "baseline is always supported");
        for pair in ranked.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "ranking must be sorted by time");
        }
        for (b, secs) in &ranked {
            assert!(b.supported());
            assert!(secs.is_finite() && *secs >= 0.0);
        }
        // Capping at baseline leaves exactly the two always-supported
        // scalar-path backends.
        let capped = rank_backends(&spec, Isa::Baseline, 1);
        assert_eq!(capped.len(), 2);
        let mut names: Vec<_> = capped.iter().map(|(b, _)| b.name()).collect();
        names.sort_unstable();
        assert_eq!(names, ["baseline", "packed_baseline"]);
    }

    #[test]
    fn rank_backends_batched_times_the_batched_path() {
        let spec = GemmSpec::dense(4, 12, 4);
        let batch = GemmBatch::shared_a(4, 12 * 4, 12 * 4);
        let ranked = rank_backends_batched(&spec, &batch, Isa::Avx512, 2);
        assert!(!ranked.is_empty());
        for pair in ranked.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn backend_executes_like_autovec() {
        let spec = GemmSpec::dense(3, 5, 4);
        let a: Vec<f64> = (0..12).map(|x| x as f64 * 0.25).collect();
        let b: Vec<f64> = (0..20).map(|x| 1.0 - x as f64 * 0.1).collect();
        let mut c1 = vec![0.0; 15];
        let mut c2 = vec![0.0; 15];
        gemm_autovec(&spec, &a, &b, &mut c1);
        select_backend(Isa::Avx512).execute(&spec, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn packed_backends_accept_plan_cached_panels() {
        let spec = GemmSpec::dense(7, 11, 5).with_scale(1.5, 0.25);
        let (ra, rb, rc) = spec.required_lens();
        let mut rng = aderdg_tensor::Lcg::new(42);
        let a = rng.vec(ra, -1.0, 1.0);
        let b = rng.vec(rb, -1.0, 1.0);
        let c0 = rng.vec(rc, -1.0, 1.0);

        let mut c_ref = c0.clone();
        crate::kernels::gemm_naive(&spec, &a, &b, &mut c_ref);

        for bk in backends() {
            if !bk.supported() {
                continue;
            }
            let pa = bk.pack_a(&spec, &a);
            let pb = bk.pack_b(&spec, &b);
            assert_eq!(
                pa.is_some(),
                bk.name().starts_with("packed_"),
                "{}",
                bk.name()
            );
            let mut c = c0.clone();
            bk.execute_packed(
                &spec,
                &a,
                &b,
                &mut c,
                PackedOperands {
                    a: pa.as_ref(),
                    b: pb.as_ref(),
                },
            );
            for (x, y) in c.iter().zip(&c_ref) {
                assert!((x - y).abs() < 1e-12, "{}", bk.name());
            }
        }
    }
}
