//! Open-ended GEMM backends — the runtime-dispatch half of the LIBXSMM
//! substitute (paper Sec. II-D).
//!
//! A backend is one compiled instantiation of the register-tiled kernel
//! body (baseline, AVX2+FMA, AVX-512). Like LIBXSMM's generated kernels,
//! the choice happens **once at plan time**: [`select_backend`] walks the
//! registered backends best-first and returns the first whose
//! [`supported`](GemmBackend::supported) probe passes on the host. The hot
//! call ([`Gemm::execute`](crate::Gemm::execute)) is a single virtual call
//! into pre-monomorphized code.
//!
//! Adding an architecture-specific micro-kernel is one new impl plus one
//! entry in [`backends`] — no enum, no match.

use crate::kernels::{gemm_autovec, gemm_autovec_batched, Isa};
use crate::spec::{GemmBatch, GemmSpec};

/// One compiled GEMM implementation selectable at plan time.
pub trait GemmBackend: Send + Sync + std::fmt::Debug {
    /// Short identifier (e.g. `avx512`).
    fn name(&self) -> &'static str;

    /// The ISA level this backend packs for.
    fn isa(&self) -> Isa;

    /// Runtime probe: can the host execute this backend?
    fn supported(&self) -> bool;

    /// Runs `C ← α·A·B + β·C` per `spec`.
    fn execute(&self, spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]);

    /// Runs `spec` over a strided batch of operand triples (operand `i`
    /// starts at `i * batch.stride_{a,b,c}`; a stride of `0` shares the
    /// operand across the batch).
    ///
    /// The default is a correct strided loop over
    /// [`execute`](GemmBackend::execute), so every backend supports
    /// batching out of the box. The built-in backends override it with a blocked
    /// implementation that hoists the bounds checks out of the loop and
    /// collapses row-stacked shared-`B` batches into one tall GEMM
    /// ([`GemmBatch::fuse_rows`]) — the cell-block execution path where
    /// one operator load serves a whole block of cells.
    fn run_batched(&self, spec: &GemmSpec, batch: &GemmBatch, a: &[f64], b: &[f64], c: &mut [f64]) {
        for i in 0..batch.count {
            self.execute(
                spec,
                &a[i * batch.stride_a..],
                &b[i * batch.stride_b..],
                &mut c[i * batch.stride_c..],
            );
        }
    }
}

/// Baseline build: whatever the compile target allows (always supported).
#[derive(Debug, Clone, Copy)]
pub struct BaselineBackend;

impl GemmBackend for BaselineBackend {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn isa(&self) -> Isa {
        Isa::Baseline
    }

    fn supported(&self) -> bool {
        true
    }

    fn execute(&self, spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
        gemm_autovec(spec, a, b, c);
    }

    fn run_batched(&self, spec: &GemmSpec, batch: &GemmBatch, a: &[f64], b: &[f64], c: &mut [f64]) {
        gemm_autovec_batched(spec, batch, a, b, c);
    }
}

/// AVX2+FMA build (paper's "Haswell" configuration).
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct Avx2Backend;

#[cfg(target_arch = "x86_64")]
impl GemmBackend for Avx2Backend {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn isa(&self) -> Isa {
        Isa::Avx2
    }

    fn supported(&self) -> bool {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }

    fn execute(&self, spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
        // SAFETY: `supported` gated the selection of this backend.
        unsafe { crate::kernels::gemm_avx2(spec, a, b, c) }
    }

    fn run_batched(&self, spec: &GemmSpec, batch: &GemmBatch, a: &[f64], b: &[f64], c: &mut [f64]) {
        // SAFETY: `supported` gated the selection of this backend.
        unsafe { crate::kernels::gemm_avx2_batched(spec, batch, a, b, c) }
    }
}

/// AVX-512 build (paper's "Skylake" configuration).
#[cfg(target_arch = "x86_64")]
#[derive(Debug, Clone, Copy)]
pub struct Avx512Backend;

#[cfg(target_arch = "x86_64")]
impl GemmBackend for Avx512Backend {
    fn name(&self) -> &'static str {
        "avx512"
    }

    fn isa(&self) -> Isa {
        Isa::Avx512
    }

    fn supported(&self) -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
    }

    fn execute(&self, spec: &GemmSpec, a: &[f64], b: &[f64], c: &mut [f64]) {
        // SAFETY: `supported` gated the selection of this backend.
        unsafe { crate::kernels::gemm_avx512(spec, a, b, c) }
    }

    fn run_batched(&self, spec: &GemmSpec, batch: &GemmBatch, a: &[f64], b: &[f64], c: &mut [f64]) {
        // SAFETY: `supported` gated the selection of this backend.
        unsafe { crate::kernels::gemm_avx512_batched(spec, batch, a, b, c) }
    }
}

/// All backends, widest (most preferred) first.
pub fn backends() -> &'static [&'static dyn GemmBackend] {
    #[cfg(target_arch = "x86_64")]
    {
        &[&Avx512Backend, &Avx2Backend, &BaselineBackend]
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        &[&BaselineBackend]
    }
}

/// Picks the widest host-supported backend at or below the `cap` ISA —
/// the plan-time selection step (the cap emulates the paper's
/// "AVX2 build on an AVX-512 machine" comparison, Fig. 4).
pub fn select_backend(cap: Isa) -> &'static dyn GemmBackend {
    backends()
        .iter()
        .copied()
        .find(|b| b.isa() <= cap && b.supported())
        .unwrap_or(&BaselineBackend)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_always_supported_and_last_resort() {
        assert!(BaselineBackend.supported());
        assert_eq!(select_backend(Isa::Baseline).name(), "baseline");
    }

    #[test]
    fn selection_respects_cap_and_host() {
        for cap in [Isa::Baseline, Isa::Avx2, Isa::Avx512] {
            let b = select_backend(cap);
            assert!(b.isa() <= cap, "cap {cap:?} gave {}", b.name());
            assert!(b.supported());
        }
        // The uncapped selection must match plain feature detection.
        assert_eq!(select_backend(Isa::Avx512).isa(), Isa::detect());
    }

    #[test]
    fn backends_are_ordered_widest_first() {
        let list = backends();
        for pair in list.windows(2) {
            assert!(pair[0].isa() >= pair[1].isa());
        }
        assert_eq!(list.last().unwrap().name(), "baseline");
    }

    #[test]
    fn backend_executes_like_autovec() {
        let spec = GemmSpec::dense(3, 5, 4);
        let a: Vec<f64> = (0..12).map(|x| x as f64 * 0.25).collect();
        let b: Vec<f64> = (0..20).map(|x| 1.0 - x as f64 * 0.1).collect();
        let mut c1 = vec![0.0; 15];
        let mut c2 = vec![0.0; 15];
        gemm_autovec(&spec, &a, &b, &mut c1);
        select_backend(Isa::Avx512).execute(&spec, &a, &b, &mut c2);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
