//! GEMM problem descriptors.
//!
//! A [`GemmSpec`] describes one small dense matrix multiplication
//! `C ← α·A·B + β·C` in row-major storage with explicit leading dimensions
//! (row strides). The leading dimensions are how tensor matrix slices are
//! addressed without copies: a slice along a slow tensor dimension simply
//! sets `ld` to the slice stride (paper Fig. 3), and zero-padded layouts set
//! `ld` to the padded extent.

/// Descriptor of `C (m×n) ← alpha · A (m×k) · B (k×n) + beta · C`,
/// row-major with explicit row strides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GemmSpec {
    /// Rows of `A` and `C`.
    pub m: usize,
    /// Columns of `B` and `C`.
    pub n: usize,
    /// Columns of `A` / rows of `B`.
    pub k: usize,
    /// Row stride of `A` (≥ k).
    pub lda: usize,
    /// Row stride of `B` (≥ n).
    pub ldb: usize,
    /// Row stride of `C` (≥ n).
    pub ldc: usize,
    /// Scale on the product.
    pub alpha: f64,
    /// Scale on the existing `C` contents (0.0 = overwrite, 1.0 = accumulate).
    pub beta: f64,
}

impl GemmSpec {
    /// Dense spec with tight leading dimensions, `alpha = 1`, `beta = 0`.
    pub fn dense(m: usize, n: usize, k: usize) -> Self {
        Self {
            m,
            n,
            k,
            lda: k,
            ldb: n,
            ldc: n,
            alpha: 1.0,
            beta: 0.0,
        }
    }

    /// Sets the leading dimensions (builder style).
    pub fn with_ld(mut self, lda: usize, ldb: usize, ldc: usize) -> Self {
        self.lda = lda;
        self.ldb = ldb;
        self.ldc = ldc;
        self
    }

    /// Sets `alpha` and `beta` (builder style).
    pub fn with_scale(mut self, alpha: f64, beta: f64) -> Self {
        self.alpha = alpha;
        self.beta = beta;
        self
    }

    /// Accumulating variant (`beta = 1`).
    pub fn accumulate(mut self) -> Self {
        self.beta = 1.0;
        self
    }

    /// Validates the spec against buffer lengths; returns the minimum
    /// required lengths `(a, b, c)`.
    pub fn required_lens(&self) -> (usize, usize, usize) {
        let need = |rows: usize, ld: usize, cols: usize| {
            if rows == 0 || cols == 0 {
                0
            } else {
                (rows - 1) * ld + cols
            }
        };
        (
            need(self.m, self.lda, self.k),
            need(self.k, self.ldb, self.n),
            need(self.m, self.ldc, self.n),
        )
    }

    /// Asserts buffers are large enough and strides are consistent.
    pub fn check(&self, a: &[f64], b: &[f64], c: &[f64]) {
        assert!(self.lda >= self.k || self.m <= 1, "lda < k");
        assert!(self.ldb >= self.n || self.k <= 1, "ldb < n");
        assert!(self.ldc >= self.n || self.m <= 1, "ldc < n");
        let (ra, rb, rc) = self.required_lens();
        assert!(a.len() >= ra, "A too short: {} < {ra}", a.len());
        assert!(b.len() >= rb, "B too short: {} < {rb}", b.len());
        assert!(c.len() >= rc, "C too short: {} < {rc}", c.len());
    }

    /// Useful floating-point operations (multiply + add counted separately),
    /// excluding the `beta` pass: `2·m·n·k`.
    #[inline]
    pub fn flops(&self) -> u64 {
        2 * (self.m as u64) * (self.n as u64) * (self.k as u64)
    }
}

/// Strided batch descriptor for
/// [`run_batched`](crate::backend::GemmBackend::run_batched): `count`
/// multiplications sharing one [`GemmSpec`], with operand `i` starting at
/// `i * stride_{a,b,c}` of the respective buffer.
///
/// A stride of `0` means the operand is **shared** across the batch —
/// the cell-block case of the paper's narrative, where one tiny operator
/// matrix (the 1-D differentiation matrix `D`) serves the stacked DOFs
/// of many cells and is loaded once instead of once per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmBatch {
    /// Number of multiplications in the batch.
    pub count: usize,
    /// Doubles between consecutive `A` operands (`0` = shared `A`).
    pub stride_a: usize,
    /// Doubles between consecutive `B` operands (`0` = shared `B`).
    pub stride_b: usize,
    /// Doubles between consecutive `C` operands.
    pub stride_c: usize,
}

impl GemmBatch {
    /// General strided batch.
    pub fn new(count: usize, stride_a: usize, stride_b: usize, stride_c: usize) -> Self {
        Self {
            count,
            stride_a,
            stride_b,
            stride_c,
        }
    }

    /// Batch sharing the `A` operand (e.g. `C_i ← D · B_i`: one operator,
    /// many data panels).
    pub fn shared_a(count: usize, stride_b: usize, stride_c: usize) -> Self {
        Self::new(count, 0, stride_b, stride_c)
    }

    /// Batch sharing the `B` operand (e.g. `C_i ← A_i · Dᵀ`).
    pub fn shared_b(count: usize, stride_a: usize, stride_c: usize) -> Self {
        Self::new(count, stride_a, 0, stride_c)
    }

    /// Minimum buffer lengths `(a, b, c)` the whole batch addresses.
    pub fn required_lens(&self, spec: &GemmSpec) -> (usize, usize, usize) {
        let (ra, rb, rc) = spec.required_lens();
        if self.count == 0 {
            return (0, 0, 0);
        }
        let last = self.count - 1;
        (
            last * self.stride_a + ra,
            last * self.stride_b + rb,
            last * self.stride_c + rc,
        )
    }

    /// Asserts that every batch item stays in bounds and that strided
    /// `C` operands do not alias each other.
    pub fn check(&self, spec: &GemmSpec, a: &[f64], b: &[f64], c: &[f64]) {
        assert!(
            self.count <= 1 || self.stride_c >= spec.required_lens().2,
            "C batch stride {} overlaps items (need >= {})",
            self.stride_c,
            spec.required_lens().2
        );
        let (ra, rb, rc) = self.required_lens(spec);
        assert!(a.len() >= ra, "batched A too short: {} < {ra}", a.len());
        assert!(b.len() >= rb, "batched B too short: {} < {rb}", b.len());
        assert!(c.len() >= rc, "batched C too short: {} < {rc}", c.len());
    }

    /// If the batch is a row-stacked shared-`B` batch (each `A_i` / `C_i`
    /// directly below its predecessor), the whole batch is equivalent to
    /// **one** tall multiplication with `count·m` rows — the genuinely
    /// blocked execution path: a single kernel invocation amortizes the
    /// shared operand over the entire cell block and register tiles run
    /// across cell boundaries.
    pub fn fuse_rows(&self, spec: &GemmSpec) -> Option<GemmSpec> {
        (self.count > 0
            && self.stride_b == 0
            && self.stride_a == spec.m * spec.lda
            && self.stride_c == spec.m * spec.ldc)
            .then(|| GemmSpec {
                m: spec.m * self.count,
                ..*spec
            })
    }

    /// Useful flops of the whole batch.
    pub fn flops(&self, spec: &GemmSpec) -> u64 {
        self.count as u64 * spec.flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_defaults() {
        let s = GemmSpec::dense(3, 4, 5);
        assert_eq!((s.lda, s.ldb, s.ldc), (5, 4, 4));
        assert_eq!((s.alpha, s.beta), (1.0, 0.0));
        assert_eq!(s.flops(), 120);
    }

    #[test]
    fn required_lens_account_for_strides() {
        let s = GemmSpec::dense(3, 4, 2).with_ld(10, 20, 30);
        let (ra, rb, rc) = s.required_lens();
        assert_eq!(ra, 2 * 10 + 2);
        assert_eq!(rb, 20 + 4);
        assert_eq!(rc, 2 * 30 + 4);
    }

    #[test]
    #[should_panic(expected = "A too short")]
    fn check_rejects_short_a() {
        let s = GemmSpec::dense(2, 2, 2);
        s.check(&[0.0; 3], &[0.0; 4], &[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "lda < k")]
    fn check_rejects_bad_stride() {
        let s = GemmSpec::dense(2, 2, 4).with_ld(2, 2, 2);
        s.check(&[0.0; 16], &[0.0; 16], &[0.0; 16]);
    }
}
