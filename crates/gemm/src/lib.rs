//! # aderdg-gemm
//!
//! The LIBXSMM substitute: planned small dense matrix multiplications
//! `C ← α·A·B + β·C`, row-major with explicit leading dimensions, so that
//! tensor matrix slices (offset + slice stride, paper Fig. 3) can be
//! multiplied in place without copies.
//!
//! Plans pick an instruction-set path (baseline / AVX2 / AVX-512) once at
//! construction via runtime feature detection — the same role LIBXSMM's
//! runtime code generation plays in the paper — and the register-tiled
//! kernel body is compiled once per ISA via `#[target_feature]`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod backend;
pub mod kernels;
pub mod micro;
pub mod simd;
pub mod spec;

pub use backend::{
    backend_by_name, backends, rank_backends, rank_backends_batched, select_backend, GemmBackend,
    BACKEND_ENV,
};
pub use kernels::{gemm_autovec, gemm_autovec_batched, gemm_naive, Gemm, Isa};
pub use micro::{
    pack_a_panels, pack_b_panels, Microkernel, PackedOperands, PackedPanels, PanelSide,
};
pub use simd::{F64s, SimdF64};
pub use spec::{GemmBatch, GemmSpec};
