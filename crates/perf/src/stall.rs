//! Machine model: pipeline-slot memory-stall estimation.
//!
//! Converts cache-simulator miss counts into the "percentage of pipeline
//! slots affected by memory stalls" metric of the paper's Figs. 4, 6 and 10
//! (originally a VTune top-down metric). The model charges each miss a
//! level-dependent latency, discounted by a memory-level-parallelism factor
//! (out-of-order cores overlap several outstanding misses), and compares
//! against the compute cycles implied by the kernel's flop count.

use crate::cachesim::CacheStats;
use crate::flops::PackCounts;

/// Core execution and memory-latency parameters.
#[derive(Debug, Clone, Copy)]
pub struct MachineModel {
    /// Peak double-precision flops per cycle per core
    /// (Skylake SP: 2 FMA units × 8 lanes × 2 flops = 32).
    pub flops_per_cycle: f64,
    /// Effective sustained fraction of peak for in-cache kernel code
    /// (accounts for non-FMA instructions, loop overhead).
    pub compute_efficiency: f64,
    /// Cycles to serve an L1 miss from L2.
    pub l2_latency: f64,
    /// Cycles to serve an L2 miss from L3.
    pub l3_latency: f64,
    /// Cycles to serve an L3 miss from DRAM.
    pub dram_latency: f64,
    /// Average overlap of outstanding misses (miss-level parallelism).
    pub mlp: f64,
}

impl MachineModel {
    /// Parameters for the paper's Intel Xeon Platinum 8174 (Skylake SP) at
    /// the AVX-512 base frequency. The L2 latency is the architectural
    /// value; L3/DRAM are *effective* latencies under hardware prefetching
    /// of the kernels' streaming sweeps, and `mlp` is the average overlap
    /// of outstanding misses — both calibrated so the kernel variants land
    /// in the paper's observed 25–50 % stall band with the right ordering
    /// (LoG plateau ≥ 41 %, SplitCK steadily decreasing).
    pub fn skylake_sp() -> Self {
        Self {
            flops_per_cycle: 32.0,
            compute_efficiency: 0.45,
            l2_latency: 14.0,
            l3_latency: 30.0,
            dram_latency: 80.0,
            mlp: 12.0,
        }
    }

    /// Compute cycles a kernel with `useful_flops` flops needs when it
    /// never stalls.
    pub fn compute_cycles(&self, useful_flops: u64) -> f64 {
        useful_flops as f64 / (self.flops_per_cycle * self.compute_efficiency)
    }

    /// Effective stall cycles implied by a miss profile.
    pub fn stall_cycles(&self, stats: &CacheStats) -> f64 {
        // L1 misses that were served by L2 = l2.hits, and so on down.
        let from_l2 = stats.l2.hits as f64 * self.l2_latency;
        let from_l3 = stats.l3.hits as f64 * self.l3_latency;
        let from_dram = stats.dram as f64 * self.dram_latency;
        (from_l2 + from_l3 + from_dram) / self.mlp
    }

    /// Fraction of pipeline slots lost to memory stalls:
    /// `stall / (stall + compute)`. This is the y-axis of the lower panels
    /// of Figs. 4, 6 and 10.
    pub fn stall_fraction(&self, stats: &CacheStats, useful_flops: u64) -> f64 {
        let stall = self.stall_cycles(stats);
        let compute = self.compute_cycles(useful_flops);
        if stall + compute == 0.0 {
            0.0
        } else {
            stall / (stall + compute)
        }
    }

    /// Compute cycles implied by a *classified* flop mix: a scalar flop
    /// occupies a whole issue slot, a `w`-wide pack amortizes one slot
    /// over `w` flops (two FP pipes, `compute_efficiency` sustained).
    pub fn compute_cycles_mix(&self, mix: &PackCounts) -> f64 {
        let issue = 2.0 * self.compute_efficiency; // FP ops per cycle
        let slots = mix.scalar as f64
            + mix.p128 as f64 / 2.0
            + mix.p256 as f64 / 4.0
            + mix.p512 as f64 / 8.0;
        // Each op slot carries up to 2 flops (FMA).
        slots / (issue * 2.0)
    }

    /// Mix-aware stall fraction: the cross-variant comparison of the
    /// paper's figures requires the compute denominator to reflect how the
    /// variant executes its flops (a scalar kernel hides its misses behind
    /// many more compute cycles than a packed one).
    pub fn stall_fraction_mix(&self, stats: &CacheStats, mix: &PackCounts) -> f64 {
        let stall = self.stall_cycles(stats);
        let compute = self.compute_cycles_mix(mix);
        if stall + compute == 0.0 {
            0.0
        } else {
            stall / (stall + compute)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cachesim::LevelStats;

    fn stats(l2_hits: u64, l3_hits: u64, dram: u64) -> CacheStats {
        CacheStats {
            l1: LevelStats {
                hits: 0,
                misses: l2_hits + l3_hits + dram,
            },
            l2: LevelStats {
                hits: l2_hits,
                misses: l3_hits + dram,
            },
            l3: LevelStats {
                hits: l3_hits,
                misses: dram,
            },
            dram,
        }
    }

    #[test]
    fn no_misses_no_stalls() {
        let m = MachineModel::skylake_sp();
        let s = CacheStats::default();
        assert_eq!(m.stall_fraction(&s, 1_000_000), 0.0);
    }

    #[test]
    fn stall_fraction_monotone_in_misses() {
        let m = MachineModel::skylake_sp();
        let f1 = m.stall_fraction(&stats(100, 0, 0), 100_000);
        let f2 = m.stall_fraction(&stats(1000, 0, 0), 100_000);
        let f3 = m.stall_fraction(&stats(1000, 500, 0), 100_000);
        let f4 = m.stall_fraction(&stats(1000, 500, 500), 100_000);
        assert!(f1 < f2 && f2 < f3 && f3 < f4);
        assert!(f4 < 1.0 && f1 > 0.0);
    }

    #[test]
    fn dram_costlier_than_l2() {
        let m = MachineModel::skylake_sp();
        let a = m.stall_fraction(&stats(100, 0, 0), 10_000);
        let b = m.stall_fraction(&stats(0, 0, 100), 10_000);
        assert!(b > a);
    }

    #[test]
    fn more_flops_dilute_stalls() {
        // Higher arithmetic intensity at constant traffic → lower stall
        // share (the paper's expectation for increasing order).
        let m = MachineModel::skylake_sp();
        let f_small = m.stall_fraction(&stats(1000, 100, 10), 100_000);
        let f_large = m.stall_fraction(&stats(1000, 100, 10), 10_000_000);
        assert!(f_large < f_small);
    }

    #[test]
    fn compute_cycles_scale() {
        let m = MachineModel::skylake_sp();
        let want = 32_000.0 / (m.flops_per_cycle * m.compute_efficiency);
        assert!((m.compute_cycles(32_000) - want).abs() < 1e-9);
    }

    #[test]
    fn mix_aware_compute_cycles_favor_packed_code() {
        let m = MachineModel::skylake_sp();
        let scalar_mix = PackCounts {
            scalar: 10_000,
            ..Default::default()
        };
        let packed_mix = PackCounts {
            p512: 10_000,
            ..Default::default()
        };
        let cs = m.compute_cycles_mix(&scalar_mix);
        let cp = m.compute_cycles_mix(&packed_mix);
        assert!((cs / cp - 8.0).abs() < 1e-9, "scalar/packed = {}", cs / cp);
    }

    #[test]
    fn mix_aware_stalls_higher_for_fast_code() {
        // Same miss profile: the packed (faster) kernel shows the larger
        // stall share — the paper's observation on the AoSoA variant.
        let m = MachineModel::skylake_sp();
        let s = stats(1000, 100, 100);
        let scalar_mix = PackCounts {
            scalar: 1_000_000,
            ..Default::default()
        };
        let packed_mix = PackCounts {
            p512: 1_000_000,
            ..Default::default()
        };
        assert!(m.stall_fraction_mix(&s, &packed_mix) > m.stall_fraction_mix(&s, &scalar_mix));
    }
}
