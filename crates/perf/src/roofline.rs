//! Peak-performance calibration and "available performance" reporting.
//!
//! The paper normalizes kernel GFlop/s by the hardware peak of the
//! SuperMUC-NG Skylake core (60.8 DP GFlop/s at the AVX-512 base
//! frequency). We do not know the host's frequency or FMA port count, so
//! the denominator is *measured*: a register-resident multiply-add
//! microkernel that the auto-vectorizer turns into packed FMAs gives the
//! achievable per-core peak. Ratios against this calibrated peak preserve
//! the figures' shape.

use std::time::Instant;

/// Number of independent accumulator chains (enough to hide FMA latency
/// on any recent core: 8 chains × 8 lanes = 64 doubles in flight).
const CHAINS: usize = 64;

/// The measurement body. `#[inline(always)]` so each `target_feature`
/// wrapper below compiles its own fully-vectorized copy — without an FMA
/// feature in scope, `mul_add` lowers to a libm call and the "peak" would
/// be off by orders of magnitude.
#[inline(always)]
fn fma_burn_body(iters: u64) -> f64 {
    let mut acc = [1.0f64; CHAINS];
    let a = std::hint::black_box(1.000000321f64);
    let b = std::hint::black_box(0.999999523f64);
    for _ in 0..iters {
        for x in acc.iter_mut() {
            *x = x.mul_add(a, b);
        }
    }
    acc.iter().sum()
}

/// Baseline build of the measurement loop.
#[inline(never)]
fn fma_burn_baseline(iters: u64) -> f64 {
    fma_burn_body(iters)
}

/// AVX2+FMA build.
///
/// # Safety
/// Caller must ensure AVX2 and FMA are supported.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn fma_burn_avx2(iters: u64) -> f64 {
    fma_burn_body(iters)
}

/// AVX-512 build.
///
/// # Safety
/// Caller must ensure AVX-512F and FMA are supported.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
unsafe fn fma_burn_avx512(iters: u64) -> f64 {
    fma_burn_body(iters)
}

/// Runs `iters` rounds of 64 independent multiply-adds at the widest FMA
/// width the host supports; returns the accumulated sum (so the optimizer
/// cannot discard the loop).
pub fn fma_burn(iters: u64) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f") {
            // SAFETY: feature checked above.
            return unsafe { fma_burn_avx512(iters) };
        }
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: feature checked above.
            return unsafe { fma_burn_avx2(iters) };
        }
    }
    fma_burn_baseline(iters)
}

/// Measures the host's achievable double-precision peak in GFlop/s by
/// timing [`fma_burn`] for at least `min_millis` milliseconds.
///
/// Call from a release build; a debug build under-reports drastically.
pub fn measure_peak_gflops(min_millis: u64) -> f64 {
    // Warm up (frequency scaling, page faults).
    std::hint::black_box(fma_burn(100_000));
    let mut iters: u64 = 1_000_000;
    loop {
        let t0 = Instant::now();
        std::hint::black_box(fma_burn(iters));
        let dt = t0.elapsed();
        if dt.as_millis() as u64 >= min_millis {
            let flops = iters as f64 * CHAINS as f64 * 2.0;
            return flops / dt.as_secs_f64() / 1e9;
        }
        iters *= 4;
    }
}

/// A timed kernel measurement normalized against a calibrated peak.
#[derive(Debug, Clone, Copy)]
pub struct PerfMeasurement {
    /// Useful flops executed.
    pub flops: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Calibrated peak GFlop/s of the host.
    pub peak_gflops: f64,
}

impl PerfMeasurement {
    /// Achieved GFlop/s.
    pub fn gflops(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.flops as f64 / self.seconds / 1e9
        }
    }

    /// Fraction of the available performance reached — the y-axis of the
    /// upper panels of Figs. 4, 6 and 10.
    pub fn available_fraction(&self) -> f64 {
        if self.peak_gflops == 0.0 {
            0.0
        } else {
            self.gflops() / self.peak_gflops
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma_burn_returns_finite() {
        let v = fma_burn(1000);
        assert!(v.is_finite());
        assert!(v != 0.0);
    }

    #[test]
    fn measurement_arithmetic() {
        let m = PerfMeasurement {
            flops: 2_000_000_000,
            seconds: 1.0,
            peak_gflops: 20.0,
        };
        assert!((m.gflops() - 2.0).abs() < 1e-12);
        assert!((m.available_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_guards() {
        let m = PerfMeasurement {
            flops: 100,
            seconds: 0.0,
            peak_gflops: 0.0,
        };
        assert_eq!(m.gflops(), 0.0);
        assert_eq!(m.available_fraction(), 0.0);
    }

    #[test]
    #[ignore = "timing-sensitive; run explicitly with --ignored"]
    fn peak_measurement_is_positive() {
        let p = measure_peak_gflops(50);
        assert!(p > 0.1, "peak={p}");
    }
}
