//! # aderdg-perf
//!
//! The measurement substrate substituting for Intel VTune and the
//! SuperMUC-NG hardware counters used in the paper's evaluation:
//!
//! * [`flops`] — analytic flop counts classified by SIMD pack width
//!   (reproduces the instruction-mix measurement of Fig. 9),
//! * [`cachesim`] — set-associative LRU cache hierarchy at line
//!   granularity (Skylake SP geometry),
//! * [`trace`] — memory-access trace plumbing the kernels replay their
//!   sweep order through,
//! * [`stall`] — pipeline-slot memory-stall model (lower panels of
//!   Figs. 4, 6, 10),
//! * [`footprint`] — the `O(N^{d+1} m d)` vs `O(N^d m)` temporary-storage
//!   analysis of Sec. IV-A,
//! * [`roofline`] — measured-peak calibration for the "% of available
//!   performance" metric (upper panels of Figs. 4, 6, 10),
//! * [`tuner`] — autotuning substrate: scaled cache simulation, the
//!   block-pipeline cost model and the micro-probe timer behind the
//!   plan-time tuner in `aderdg-core`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cachesim;
pub mod flops;
pub mod footprint;
#[allow(unsafe_code)] // target_feature dispatch of the peak calibrator
pub mod roofline;
pub mod stall;
pub mod trace;
pub mod tuner;

pub use cachesim::{CacheConfig, CacheSim, CacheStats, LevelStats, LINE_BYTES};
pub use flops::{classify_loop, classify_padded_loop, PackCounts};
pub use roofline::{fma_burn, measure_peak_gflops, PerfMeasurement};
pub use stall::MachineModel;
pub use trace::{Arena, CountingSink, RecordingSink, TraceSink};
pub use tuner::{best_candidate, probe_median_secs, BlockCostModel, Candidate, ScaledCacheSim};
