//! Memory-access traces.
//!
//! Kernel variants replay their array-sweep order through a [`TraceSink`];
//! feeding the sink into a [`crate::cachesim::CacheSim`] yields
//! the miss profile behind the paper's memory-stall figures. Traces use
//! synthetic addresses handed out by an [`Arena`], so no real data is
//! touched — only the *pattern* matters.

use crate::cachesim::CacheSim;

/// Consumer of a memory-access stream.
pub trait TraceSink {
    /// A load of `bytes` bytes starting at `addr`.
    fn read(&mut self, addr: usize, bytes: usize);
    /// A store of `bytes` bytes starting at `addr`.
    fn write(&mut self, addr: usize, bytes: usize);
    /// A read-modify-write (accumulation) of `bytes` bytes at `addr`.
    fn update(&mut self, addr: usize, bytes: usize) {
        self.read(addr, bytes);
        self.write(addr, bytes);
    }
}

impl TraceSink for CacheSim {
    fn read(&mut self, addr: usize, bytes: usize) {
        self.touch(addr, bytes);
    }
    fn write(&mut self, addr: usize, bytes: usize) {
        self.touch(addr, bytes);
    }
    fn update(&mut self, addr: usize, bytes: usize) {
        // A line is fetched once; the write hits the just-fetched line.
        self.touch(addr, bytes);
    }
}

/// Counts accesses and bytes without simulating a cache (used to validate
/// trace generators against analytic traffic formulas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of read events.
    pub reads: u64,
    /// Number of write events.
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
}

impl TraceSink for CountingSink {
    fn read(&mut self, _addr: usize, bytes: usize) {
        self.reads += 1;
        self.read_bytes += bytes as u64;
    }
    fn write(&mut self, _addr: usize, bytes: usize) {
        self.writes += 1;
        self.write_bytes += bytes as u64;
    }
}

/// Records every event (tests only; traces can be long).
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// `(is_write, addr, bytes)` triples in program order.
    pub events: Vec<(bool, usize, usize)>,
}

impl TraceSink for RecordingSink {
    fn read(&mut self, addr: usize, bytes: usize) {
        self.events.push((false, addr, bytes));
    }
    fn write(&mut self, addr: usize, bytes: usize) {
        self.events.push((true, addr, bytes));
    }
}

/// Bump allocator for synthetic trace addresses: every allocation is
/// 64-byte aligned, mirroring [`AlignedVec`](aderdg_tensor::AlignedVec).
#[derive(Debug, Clone)]
pub struct Arena {
    next: usize,
}

impl Arena {
    /// Starts handing out addresses at a page-aligned, non-zero base.
    pub fn new() -> Self {
        Self { next: 1 << 20 }
    }

    /// Reserves `doubles * 8` bytes, 64-byte aligned; returns the address.
    pub fn alloc_doubles(&mut self, doubles: usize) -> usize {
        let addr = self.next;
        let bytes = doubles * 8;
        self.next += bytes.div_ceil(64) * 64;
        addr
    }

    /// Total bytes reserved so far (the variant's temporary footprint).
    pub fn reserved_bytes(&self) -> usize {
        self.next - (1 << 20)
    }
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cachesim::{CacheConfig, CacheSim};

    #[test]
    fn counting_sink_totals() {
        let mut s = CountingSink::default();
        s.read(0, 64);
        s.write(64, 32);
        s.update(128, 8);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 2);
        assert_eq!(s.read_bytes, 72);
        assert_eq!(s.write_bytes, 40);
    }

    #[test]
    fn arena_is_aligned_and_disjoint() {
        let mut a = Arena::new();
        let p1 = a.alloc_doubles(10); // 80 bytes -> 128 reserved
        let p2 = a.alloc_doubles(1);
        assert_eq!(p1 % 64, 0);
        assert_eq!(p2 % 64, 0);
        assert!(p2 >= p1 + 80);
        assert_eq!(a.reserved_bytes(), 128 + 64);
    }

    #[test]
    fn cache_sim_as_sink() {
        let mut sim = CacheSim::new(
            CacheConfig {
                capacity: 512,
                ways: 2,
            },
            CacheConfig {
                capacity: 1024,
                ways: 4,
            },
            None,
        );
        let sink: &mut dyn TraceSink = &mut sim;
        sink.read(0, 64);
        sink.update(0, 8);
        let stats = sim.stats();
        assert_eq!(stats.l1.misses, 1);
        assert_eq!(stats.l1.hits, 1);
    }

    #[test]
    fn recording_sink_preserves_order() {
        let mut s = RecordingSink::default();
        s.read(10, 8);
        s.write(20, 8);
        assert_eq!(s.events, vec![(false, 10, 8), (true, 20, 8)]);
    }
}
