//! Autotuning substrate: scaled cache simulation, a block-pipeline cost
//! model, and a micro-probe timer.
//!
//! The paper's central claim (Sec. IV) is that kernel performance is
//! governed by whether the predictor's temporaries stay cache-resident.
//! This module turns that claim into a *decision procedure*: candidate
//! configurations (predictor block sizes, GEMM backends) are costed by
//! replaying their memory-access pattern through the LRU hierarchy of
//! [`crate::cachesim`] and charging misses via [`MachineModel`], optionally
//! refined by short in-process timing probes. The plan-level tuner in
//! `aderdg-core` drives these pieces; everything here is plan-agnostic.

use crate::cachesim::{CacheConfig, CacheSim, CacheStats, LINE_BYTES};
use crate::stall::MachineModel;
use crate::trace::TraceSink;
use std::time::Instant;

/// A cache hierarchy simulated at reduced granularity: one simulated line
/// stands for `scale` real lines, and every capacity is divided by
/// `scale`.
///
/// Replaying a kernel's full access stream line-by-line is too slow to run
/// at plan time (the tuner evaluates several block-size candidates per
/// engine construction, in debug builds too). Scaling preserves exactly
/// the effect under study — whether a working set of hundreds of KiB
/// survives in a ~1 MiB L2 between sweeps — because the tuned buffers are
/// orders of magnitude larger than even the scaled line, while cutting
/// simulation cost by `scale`. Reported [`stats`](ScaledCacheSim::stats)
/// are scaled back up so they remain directly comparable with (and
/// chargeable by) [`MachineModel`].
#[derive(Debug, Clone)]
pub struct ScaledCacheSim {
    sim: CacheSim,
    scale: usize,
}

impl ScaledCacheSim {
    /// Builds a scaled hierarchy; `scale = 1` is an unscaled [`CacheSim`].
    ///
    /// Capacities are divided by `scale` (floored at one set per level) so
    /// a buffer of `W` bytes occupies the same *fraction* of each level as
    /// in the real hierarchy.
    pub fn new(l1: CacheConfig, l2: CacheConfig, l3: Option<CacheConfig>, scale: usize) -> Self {
        assert!(scale >= 1, "scale must be at least 1");
        let shrink = |c: CacheConfig| CacheConfig {
            capacity: (c.capacity / scale).max(LINE_BYTES * c.ways),
            ways: c.ways,
        };
        Self {
            sim: CacheSim::new(shrink(l1), shrink(l2), l3.map(shrink)),
            scale,
        }
    }

    /// The paper's Skylake SP hierarchy at reduced granularity.
    pub fn skylake_sp(scale: usize) -> Self {
        Self::new(
            CacheConfig {
                capacity: 32 * 1024,
                ways: 8,
            },
            CacheConfig {
                capacity: 1024 * 1024,
                ways: 16,
            },
            Some(CacheConfig {
                capacity: 1408 * 1024,
                ways: 11,
            }),
            scale,
        )
    }

    /// The granularity factor.
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// Statistics scaled back to real-line counts (each simulated access
    /// stands for `scale` real-line accesses).
    pub fn stats(&self) -> CacheStats {
        let s = self.scale as u64;
        let up = |l: crate::cachesim::LevelStats| crate::cachesim::LevelStats {
            hits: l.hits * s,
            misses: l.misses * s,
        };
        let raw = self.sim.stats();
        CacheStats {
            l1: up(raw.l1),
            l2: up(raw.l2),
            l3: up(raw.l3),
            dram: raw.dram * s,
        }
    }

    /// Clears counters but keeps cache contents (steady-state measurement
    /// after a warm-up replay).
    pub fn reset_stats(&mut self) {
        self.sim.reset_stats();
    }
}

impl TraceSink for ScaledCacheSim {
    fn read(&mut self, addr: usize, bytes: usize) {
        self.sim
            .touch(addr / self.scale, (bytes / self.scale).max(1));
    }

    fn write(&mut self, addr: usize, bytes: usize) {
        self.sim
            .touch(addr / self.scale, (bytes / self.scale).max(1));
    }

    fn update(&mut self, addr: usize, bytes: usize) {
        // One fetch serves the read-modify-write.
        self.sim
            .touch(addr / self.scale, (bytes / self.scale).max(1));
    }
}

/// Cost model of the engine's batched block pipeline.
///
/// Predicted per-cell cost of running blocks of `B` cells combines two
/// opposing terms the block-size choice trades off:
///
/// * **memory stalls** from the replayed miss profile ([`MachineModel`]) —
///   grows once `B ×` (per-cell temporaries) outgrows L2,
/// * **per-block dispatch overhead** (scratch setup, staging, one operator
///   load and loop prologue per stage sweep instead of per cell) —
///   amortized over the `B` cells of the block, so it *shrinks* with `B`.
///
/// The overhead constants are calibrated against `block_sweep`
/// measurements (see the `block_sweep --compare` mode in `aderdg-bench`):
/// they reproduce the measured single-digit-percent penalty of `B = 1`
/// relative to the plateau on the blocked kernels.
#[derive(Debug, Clone, Copy)]
pub struct BlockCostModel {
    /// Miss-latency and issue-width parameters.
    pub machine: MachineModel,
    /// Fixed cycles per block invocation (virtual dispatch, staging-buffer
    /// bookkeeping, scratch reset).
    pub block_overhead_cycles: f64,
    /// Cycles per stage sweep per block (operator load, loop prologue,
    /// bounds-check hoisting — the costs a bigger block amortizes).
    pub stage_overhead_cycles: f64,
}

impl BlockCostModel {
    /// Calibrated defaults for the paper's Skylake SP machine model.
    pub fn skylake_sp() -> Self {
        Self {
            machine: MachineModel::skylake_sp(),
            block_overhead_cycles: 2_000.0,
            stage_overhead_cycles: 400.0,
        }
    }

    /// Predicted block-size-dependent cycles per cell: stall cycles of the
    /// replayed miss profile plus amortized per-block overhead, divided
    /// over the `cells` cells the replay covered.
    ///
    /// The (block-size-independent) compute cycles are deliberately
    /// excluded — candidates are compared, not absolute-timed.
    pub fn cycles_per_cell(
        &self,
        stats: &CacheStats,
        cells: usize,
        blocks: usize,
        stages_per_block: usize,
    ) -> f64 {
        assert!(cells > 0, "cost model needs at least one replayed cell");
        let stall = self.machine.stall_cycles(stats);
        let overhead = blocks as f64
            * (self.block_overhead_cycles + self.stage_overhead_cycles * stages_per_block as f64);
        (stall + overhead) / cells as f64
    }
}

/// One costed tuning candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The candidate's value (block size, backend index, …).
    pub value: usize,
    /// Modelled or measured cost — lower is better.
    pub cost: f64,
}

/// The value of the cheapest candidate (first wins ties), or `None` for an
/// empty slate.
pub fn best_candidate(candidates: &[Candidate]) -> Option<usize> {
    candidates
        .iter()
        .min_by(|a, b| a.cost.total_cmp(&b.cost))
        .map(|c| c.value)
}

/// Times `f` and returns the median seconds of `reps` runs after one
/// warm-up call — the micro-probe primitive behind `tuning = probe`
/// (block-size refinement and GEMM-backend ranking).
pub fn probe_median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    let reps = reps.max(1);
    f(); // warm-up: allocation, page faults, branch training
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_sim_preserves_capacity_effects() {
        // A working set larger than L2 thrashes in both the unscaled and
        // the scaled hierarchy; one that fits stays resident in both.
        for scale in [1usize, 8, 16] {
            let mut sim = ScaledCacheSim::skylake_sp(scale);
            // 4 MiB working set > 1 MiB L2: streaming sweeps never settle.
            let big = 4 * 1024 * 1024;
            for _ in 0..2 {
                sim.read(0, big);
            }
            let s = sim.stats();
            assert!(
                s.dram as f64 > 0.9 * s.l1.accesses() as f64,
                "scale {scale}: big set should stream from DRAM: {s:?}"
            );

            let mut sim = ScaledCacheSim::skylake_sp(scale);
            // 256 KiB working set fits L2: the second sweep hits.
            let small = 256 * 1024;
            sim.read(1 << 24, small);
            sim.reset_stats();
            sim.read(1 << 24, small);
            let s = sim.stats();
            assert_eq!(
                s.dram, 0,
                "scale {scale}: resident set must not reach DRAM: {s:?}"
            );
        }
    }

    #[test]
    fn scaled_stats_are_comparable_across_scales() {
        // The same sweep reports (approximately) the same real-line miss
        // count regardless of granularity.
        let bytes = 2 * 1024 * 1024;
        let count = |scale: usize| {
            let mut sim = ScaledCacheSim::skylake_sp(scale);
            sim.read(0, bytes);
            sim.stats().l1.misses
        };
        let exact = count(1);
        let scaled = count(16);
        let ratio = scaled as f64 / exact as f64;
        assert!(
            (0.95..=1.05).contains(&ratio),
            "scaled {scaled} vs exact {exact}"
        );
    }

    #[test]
    fn cost_model_trades_overhead_against_misses() {
        let model = BlockCostModel::skylake_sp();
        let clean = CacheStats::default();
        // Same cells, more blocks (smaller B): pure overhead rises.
        let small_b = model.cycles_per_cell(&clean, 16, 16, 10);
        let big_b = model.cycles_per_cell(&clean, 16, 1, 10);
        assert!(small_b > big_b);
        // Misses raise the cost at fixed blocking.
        let missy = CacheStats {
            dram: 10_000,
            ..CacheStats::default()
        };
        assert!(model.cycles_per_cell(&missy, 16, 1, 10) > big_b);
    }

    #[test]
    fn best_candidate_is_argmin_first_wins_ties() {
        assert_eq!(best_candidate(&[]), None);
        let c = [
            Candidate {
                value: 1,
                cost: 5.0,
            },
            Candidate {
                value: 4,
                cost: 2.0,
            },
            Candidate {
                value: 8,
                cost: 2.0,
            },
        ];
        assert_eq!(best_candidate(&c), Some(4));
    }

    #[test]
    fn probe_median_is_positive_and_finite() {
        let mut x = 0u64;
        let t = probe_median_secs(3, || {
            for i in 0..1000u64 {
                x = x.wrapping_add(i * i);
            }
        });
        assert!(t.is_finite() && t >= 0.0);
        assert!(x > 0);
    }
}
