//! Set-associative LRU cache simulator.
//!
//! Substitute for VTune's memory-stall measurements (paper Figs. 4, 6, 10):
//! kernel variants replay their memory-access pattern at cache-line
//! granularity through a two/three-level LRU hierarchy configured like the
//! paper's Intel Xeon Platinum 8174 (Skylake SP: 32 KiB L1d / 8-way,
//! 1 MiB L2 / 16-way per core). The mechanism under study — LoG temporaries
//! overflowing the 1 MiB L2 from order 6 while SplitCK stays resident — is
//! a pure working-set/replacement effect that this model captures.

/// Cache line size in bytes (Skylake, and our alignment unit).
pub const LINE_BYTES: usize = 64;

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity / (LINE_BYTES * self.ways)
    }
}

/// Hit/miss counters for one level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Accesses that hit in this level.
    pub hits: u64,
    /// Accesses that missed and were forwarded down.
    pub misses: u64,
}

impl LevelStats {
    /// Total accesses seen by this level.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio (0 if never accessed).
    pub fn miss_ratio(&self) -> f64 {
        let a = self.accesses();
        if a == 0 {
            0.0
        } else {
            self.misses as f64 / a as f64
        }
    }
}

/// One set-associative LRU cache level.
#[derive(Debug, Clone)]
struct Level {
    sets: usize,
    ways: usize,
    /// `tags[set * ways + way]`; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags` (higher = more recent).
    stamps: Vec<u64>,
    clock: u64,
    stats: LevelStats,
}

impl Level {
    fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets().max(1);
        let ways = cfg.ways.max(1);
        Self {
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            clock: 0,
            stats: LevelStats::default(),
        }
    }

    /// Accesses `line` (line index, not byte address); returns true on hit.
    fn access(&mut self, line: u64) -> bool {
        self.clock += 1;
        let set = (line as usize) % self.sets;
        let base = set * self.ways;
        let slots = base..base + self.ways;
        // Hit?
        for i in slots.clone() {
            if self.tags[i] == line {
                self.stamps[i] = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }
        // Miss: fill the LRU way.
        self.stats.misses += 1;
        let mut victim = base;
        for i in slots {
            if self.tags[i] == u64::MAX {
                victim = i;
                break;
            }
            if self.stamps[i] < self.stamps[victim] {
                victim = i;
            }
        }
        self.tags[victim] = line;
        self.stamps[victim] = self.clock;
        false
    }
}

/// Aggregate hit/miss statistics of a simulated hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// L1 data cache.
    pub l1: LevelStats,
    /// L2 (the 1 MiB per-core cache at the centre of the paper's analysis).
    pub l2: LevelStats,
    /// L3 (shared; modelled per-core slice as a last level before DRAM).
    pub l3: LevelStats,
    /// Accesses that missed every level (DRAM).
    pub dram: u64,
}

/// A multi-level cache hierarchy with LRU replacement.
#[derive(Debug, Clone)]
pub struct CacheSim {
    l1: Level,
    l2: Level,
    l3: Option<Level>,
}

impl CacheSim {
    /// Builds a hierarchy; `l3 = None` models only the per-core caches.
    pub fn new(l1: CacheConfig, l2: CacheConfig, l3: Option<CacheConfig>) -> Self {
        Self {
            l1: Level::new(l1),
            l2: Level::new(l2),
            l3: l3.map(Level::new),
        }
    }

    /// The paper's Skylake SP core: 32 KiB / 8-way L1d, 1 MiB / 16-way L2,
    /// and a 1.375 MiB / 11-way L3 slice.
    pub fn skylake_sp() -> Self {
        Self::new(
            CacheConfig {
                capacity: 32 * 1024,
                ways: 8,
            },
            CacheConfig {
                capacity: 1024 * 1024,
                ways: 16,
            },
            Some(CacheConfig {
                capacity: 1408 * 1024,
                ways: 11,
            }),
        )
    }

    /// Touches every cache line in `[addr, addr + bytes)`.
    pub fn touch(&mut self, addr: usize, bytes: usize) {
        if bytes == 0 {
            return;
        }
        let first = addr / LINE_BYTES;
        let last = (addr + bytes - 1) / LINE_BYTES;
        for line in first..=last {
            self.access_line(line as u64);
        }
    }

    /// Accesses a single cache line by index.
    pub fn access_line(&mut self, line: u64) {
        if self.l1.access(line) {
            return;
        }
        if self.l2.access(line) {
            return;
        }
        if let Some(l3) = &mut self.l3 {
            if l3.access(line) {}
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        let l3 = self.l3.as_ref().map(|l| l.stats).unwrap_or_default();
        let dram = match &self.l3 {
            Some(l) => l.stats.misses,
            None => self.l2.stats.misses,
        };
        CacheStats {
            l1: self.l1.stats,
            l2: self.l2.stats,
            l3,
            dram,
        }
    }

    /// Clears counters but keeps cache contents (to measure steady state
    /// after a warm-up pass).
    pub fn reset_stats(&mut self) {
        self.l1.stats = LevelStats::default();
        self.l2.stats = LevelStats::default();
        if let Some(l3) = &mut self.l3 {
            l3.stats = LevelStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheSim {
        // L1: 4 sets x 2 ways x 64B = 512 B; L2: 16 lines = 1 KiB.
        CacheSim::new(
            CacheConfig {
                capacity: 512,
                ways: 2,
            },
            CacheConfig {
                capacity: 1024,
                ways: 4,
            },
            None,
        )
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        c.touch(0, 8);
        c.touch(0, 8);
        c.touch(8, 8); // same line
        let s = c.stats();
        assert_eq!(s.l1.misses, 1);
        assert_eq!(s.l1.hits, 2);
        assert_eq!(s.l2.misses, 1);
    }

    #[test]
    fn touch_spans_lines() {
        let mut c = tiny();
        c.touch(0, 129); // lines 0, 1, 2
        assert_eq!(c.stats().l1.accesses(), 3);
    }

    #[test]
    fn working_set_larger_than_l1_spills_to_l2() {
        let mut c = tiny();
        // 16 lines > 8-line L1, fits 16-line L2. Two sweeps:
        for _ in 0..2 {
            for i in 0..16 {
                c.access_line(i);
            }
        }
        let s = c.stats();
        // First sweep: 16 L1 misses -> L2 misses. Second sweep: L1 misses
        // again (capacity), but L2 hits.
        assert_eq!(s.l1.misses, 32);
        assert_eq!(s.l2.misses, 16);
        assert_eq!(s.l2.hits, 16);
    }

    #[test]
    fn working_set_larger_than_l2_thrashes() {
        let mut c = tiny();
        // 32 lines > 16-line L2: streaming sweeps always miss everywhere.
        for _ in 0..3 {
            for i in 0..32 {
                c.access_line(i);
            }
        }
        let s = c.stats();
        assert_eq!(s.l2.hits, 0);
        assert_eq!(s.dram, 96);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Direct test on one set: L1 has 4 sets, so lines 0, 4, 8 map to
        // set 0 with 2 ways.
        let mut c = tiny();
        c.access_line(0);
        c.access_line(4);
        c.access_line(0); // refresh 0 -> LRU is 4
        c.access_line(8); // evicts 4
        c.access_line(0); // still hit
        c.access_line(4); // miss
        let s = c.stats();
        assert_eq!(s.l1.hits, 2);
        assert_eq!(s.l1.misses, 4);
    }

    #[test]
    fn skylake_config_geometry() {
        let cfg = CacheConfig {
            capacity: 1024 * 1024,
            ways: 16,
        };
        assert_eq!(cfg.sets(), 1024);
        let _ = CacheSim::skylake_sp();
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny();
        c.access_line(3);
        c.reset_stats();
        c.access_line(3);
        let s = c.stats();
        assert_eq!(s.l1.hits, 1);
        assert_eq!(s.l1.misses, 0);
    }
}
