//! Floating-point operation counting and SIMD pack classification.
//!
//! Reproduces the measurement behind the paper's Fig. 9: the distribution
//! of FLOPs over the packing width used to execute them (scalar, 128-, 256-
//! or 512-bit). The original uses VTune hardware counters; here each kernel
//! reports its counts analytically from its own loop structure — the pack
//! width of a vectorized loop is known exactly from the plan, remainder
//! iterations are scalar, and pointwise user functions are scalar.

use aderdg_tensor::SimdWidth;

/// FLOP counts split by the SIMD pack width that executed them.
///
/// Counts are *flops*, not instructions: one 512-bit FMA on 8 doubles
/// contributes 16 to [`PackCounts::p512`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackCounts {
    /// Flops executed by scalar instructions.
    pub scalar: u64,
    /// Flops executed in 128-bit packs (2 doubles).
    pub p128: u64,
    /// Flops executed in 256-bit packs (4 doubles).
    pub p256: u64,
    /// Flops executed in 512-bit packs (8 doubles).
    pub p512: u64,
}

impl PackCounts {
    /// All-zero counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total flops.
    pub fn total(&self) -> u64 {
        self.scalar + self.p128 + self.p256 + self.p512
    }

    /// Adds `flops` to the bucket for `width`.
    pub fn add(&mut self, width: Option<SimdWidth>, flops: u64) {
        match width {
            None => self.scalar += flops,
            Some(SimdWidth::W2) => self.p128 += flops,
            Some(SimdWidth::W4) => self.p256 += flops,
            Some(SimdWidth::W8) => self.p512 += flops,
        }
    }

    /// Element-wise sum.
    pub fn merge(&self, other: &PackCounts) -> PackCounts {
        PackCounts {
            scalar: self.scalar + other.scalar,
            p128: self.p128 + other.p128,
            p256: self.p256 + other.p256,
            p512: self.p512 + other.p512,
        }
    }

    /// Scales every bucket (e.g. per-cell counts × number of cells).
    pub fn scale(&self, factor: u64) -> PackCounts {
        PackCounts {
            scalar: self.scalar * factor,
            p128: self.p128 * factor,
            p256: self.p256 * factor,
            p512: self.p512 * factor,
        }
    }

    /// Fractions `[scalar, 128, 256, 512]` of the total (zeros if empty).
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total();
        if t == 0 {
            return [0.0; 4];
        }
        let t = t as f64;
        [
            self.scalar as f64 / t,
            self.p128 as f64 / t,
            self.p256 as f64 / t,
            self.p512 as f64 / t,
        ]
    }

    /// Fraction of flops executed by scalar instructions — the headline
    /// number of the paper's Sec. VI-A (≈10 % for LoG/SplitCK, 2–4 % for
    /// AoSoA SplitCK).
    pub fn scalar_fraction(&self) -> f64 {
        self.fractions()[0]
    }
}

/// Classifies a vectorizable loop: `trip` iterations, `flops_per_iter`
/// flops each, vectorized at `max_width` with compiler-style cascading
/// remainders (512 → 256 → 128 → scalar, mirroring the auto-vectorizer
/// behaviour the paper observes in Fig. 9).
pub fn classify_loop(trip: usize, flops_per_iter: u64, max_width: SimdWidth) -> PackCounts {
    let mut counts = PackCounts::new();
    let mut rem = trip;
    for w in SimdWidth::ALL_DESC {
        if w.doubles() > max_width.doubles() {
            continue;
        }
        let lanes = w.doubles();
        let packs = rem / lanes;
        counts.add(Some(w), (packs * lanes) as u64 * flops_per_iter);
        rem %= lanes;
    }
    counts.add(None, rem as u64 * flops_per_iter);
    counts
}

/// Classifies a loop whose trip count is already padded to a multiple of
/// the vector width — every flop (including the padding flops the paper
/// says "come for free") lands in the `max_width` bucket.
pub fn classify_padded_loop(
    padded_trip: usize,
    flops_per_iter: u64,
    max_width: SimdWidth,
) -> PackCounts {
    debug_assert_eq!(padded_trip % max_width.doubles(), 0);
    let mut counts = PackCounts::new();
    counts.add(Some(max_width), padded_trip as u64 * flops_per_iter);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cascade_classification() {
        // 21 iterations at AVX-512: 2×8 in 512-bit, 1×4 in 256-bit,
        // 0 in 128-bit, 1 scalar.
        let c = classify_loop(21, 2, SimdWidth::W8);
        assert_eq!(c.p512, 32);
        assert_eq!(c.p256, 8);
        assert_eq!(c.p128, 0);
        assert_eq!(c.scalar, 2);
        assert_eq!(c.total(), 42);
    }

    #[test]
    fn avx2_cap_never_uses_512() {
        let c = classify_loop(21, 1, SimdWidth::W4);
        assert_eq!(c.p512, 0);
        assert_eq!(c.p256, 20);
        assert_eq!(c.p128, 0);
        assert_eq!(c.scalar, 1);
    }

    #[test]
    fn padded_loop_fully_packed() {
        let c = classify_padded_loop(24, 3, SimdWidth::W8);
        assert_eq!(c.p512, 72);
        assert_eq!(c.total(), 72);
        assert_eq!(c.scalar_fraction(), 0.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let c = classify_loop(37, 5, SimdWidth::W8);
        let f = c.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_and_scale() {
        let a = classify_loop(8, 1, SimdWidth::W8);
        let b = classify_loop(3, 1, SimdWidth::W8);
        let m = a.merge(&b);
        assert_eq!(m.total(), 11);
        assert_eq!(m.scale(4).total(), 44);
    }

    #[test]
    fn empty_counts() {
        let c = PackCounts::new();
        assert_eq!(c.total(), 0);
        assert_eq!(c.fractions(), [0.0; 4]);
    }
}
