//! Memory-footprint formulas for the STP kernel variants (paper Sec. IV-A).
//!
//! The paper's analysis: the generic/LoG algorithm keeps the whole
//! space-time predictor and its per-order fluctuations, `O(N^{d+1} m d)`
//! doubles of temporaries; for a 3-D medium-sized problem (`m = 25`) this
//! exceeds the 1 MiB L2 as soon as `N = 6`. SplitCK's on-the-fly time
//! integration and per-dimension tensor reuse cut this to `O(N^d m)`.

/// Spatial dimension of the solver (the paper's benchmarks are 3-D).
pub const DIM: usize = 3;

/// Temporaries of the generic / LoG Cauchy-Kowalewsky algorithm (Fig. 1),
/// in doubles (unpadded `m`; the analytic formula of Sec. IV-A):
/// `p[(N+1)·N³·m] + dF[N·d·N³·m]` plus the order-independent
/// `qavg[N³·m] + favg[d·N³·m]`.
pub fn generic_temporaries_doubles(n: usize, m: usize) -> usize {
    let vol = n * n * n * m;
    let p = (n + 1) * vol;
    let d_f = n * DIM * vol;
    let qavg = vol;
    let favg = DIM * vol;
    p + d_f + qavg + favg
}

/// Temporaries of the SplitCK algorithm (Fig. 5), in doubles: one tensor
/// each for `p`, `ptemp`, `flux`, `gradQ` (the non-conservative update
/// accumulates directly into `ptemp`), plus the output accumulators
/// `qavg` and `favg[d]`.
pub fn splitck_temporaries_doubles(n: usize, m: usize) -> usize {
    let vol = n * n * n * m;
    4 * vol + vol + DIM * vol
}

/// Working set of the SplitCK *time loop* in doubles: the buffers touched
/// every Cauchy-Kowalewsky iteration (`p`, `ptemp`, `flux`, `gradQ`,
/// `qavg`); `favg` is only written in the post-loop flux recomputation.
/// This is the quantity that must stay L2-resident for the paper's
/// steadily-decreasing stall curve.
pub fn splitck_timeloop_working_set_doubles(n: usize, m: usize) -> usize {
    5 * n * n * n * m
}

/// Bytes versions of the formulas.
pub fn generic_temporaries_bytes(n: usize, m: usize) -> usize {
    generic_temporaries_doubles(n, m) * 8
}

/// See [`splitck_temporaries_doubles`].
pub fn splitck_temporaries_bytes(n: usize, m: usize) -> usize {
    splitck_temporaries_doubles(n, m) * 8
}

/// Smallest order whose generic-variant temporaries exceed `capacity`
/// bytes (the paper's "1 MB limit will be exceeded as soon as N = 6" for
/// `m = 25`). Returns `None` if no order up to 32 overflows.
pub fn l2_overflow_order(m: usize, capacity_bytes: usize) -> Option<usize> {
    (1..=32).find(|&n| generic_temporaries_bytes(n, m) > capacity_bytes)
}

/// Footprint-reduction factor of SplitCK over generic at a given order —
/// the paper quotes "a full time dimension" (factor `N + 1`) "plus a
/// factor 3" (dimension reuse).
pub fn splitck_reduction_factor(n: usize, m: usize) -> f64 {
    generic_temporaries_doubles(n, m) as f64 / splitck_temporaries_doubles(n, m) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_claim_m25_overflows_l2_at_order_6() {
        // Sec. IV-A: m = 25, d = 3, 1 MiB L2 → overflow at N = 6.
        assert_eq!(l2_overflow_order(25, 1024 * 1024), Some(6));
    }

    #[test]
    fn benchmark_m21_also_overflows_at_6() {
        // The evaluation uses m = 21; the crossover stays at order 6.
        assert_eq!(l2_overflow_order(21, 1024 * 1024), Some(6));
    }

    #[test]
    fn splitck_fits_l2_through_order_10() {
        // The time-loop working set of SplitCK stays L2-resident across the
        // paper's measured range (at order 11 it reaches the capacity edge,
        // consistent with its stalls still decreasing but non-zero).
        for n in 4..=10 {
            let ws = splitck_timeloop_working_set_doubles(n, 21) * 8;
            assert!(ws < 1024 * 1024, "order {n}: {ws} bytes");
        }
    }

    #[test]
    fn splitck_much_smaller_than_generic_at_order_11() {
        let r = splitck_reduction_factor(11, 21);
        assert!(r > 5.0, "reduction factor {r}");
    }

    #[test]
    fn asymptotic_scaling() {
        // Generic grows ~N^4, SplitCK ~N^3: doubling N multiplies the ratio
        // generic/splitck by ~2.
        let r6 = splitck_reduction_factor(6, 21);
        let r12 = splitck_reduction_factor(12, 21);
        assert!(r12 / r6 > 1.8 && r12 / r6 < 2.2, "r6={r6} r12={r12}");
    }

    #[test]
    fn reduction_factor_exceeds_time_dimension() {
        // At order 8 the reduction should be at least (N+1)·d / 9 ≈ several x.
        let r = splitck_reduction_factor(8, 21);
        assert!(r > 3.0, "r={r}");
    }

    #[test]
    fn formulas_monotone() {
        for n in 2..12 {
            assert!(generic_temporaries_doubles(n + 1, 21) > generic_temporaries_doubles(n, 21));
            assert!(splitck_temporaries_doubles(n + 1, 21) > splitck_temporaries_doubles(n, 21));
        }
    }
}
