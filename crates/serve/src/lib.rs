//! # aderdg-serve
//!
//! A checkpoint/restart simulation service over the scenario registry:
//! the engine as a long-lived server rather than a one-shot binary.
//! Clients submit any registered scenario with any solver knob, poll
//! status, fetch the series / receiver output, pause a running job to a
//! checkpoint and resume it later — N concurrent jobs multiplex over the
//! one process-wide worker pool via [`JobQueue`].
//!
//! ## Protocol
//!
//! Plain lines over TCP (`std::net` only — no external dependencies),
//! one command per line, whitespace-separated:
//!
//! ```text
//! SUBMIT <scenario> [key=value]…   -> OK id=<n>
//! RESUME <path> [key=value]…       -> OK id=<n>   (checkpoint file on the server)
//! STATUS <id>                      -> OK id=… status=… steps=… t=…
//! WAIT <id>                        -> like STATUS, after the job settles
//! PAUSE <id> | CANCEL <id>         -> OK
//! LIST | SUMMARY <id> | SERIES <id> | RECEIVERS <id> | HELP
//!                                  -> OK, then payload lines, then `.`
//! PING                             -> OK pong
//! SHUTDOWN                         -> OK shutting down (server exits)
//! ```
//!
//! Single-line replies are `OK …` or `ERR <message>`. Multi-line replies
//! send an `OK` line, the payload, then a lone `.` (payload lines that
//! start with `.` are dot-stuffed, SMTP-style). `SUBMIT` accepts every
//! [`RunRequest::set`] key plus `pause_at_step=<n>` (arm a deterministic
//! pause) — combine with `save_checkpoint=<path>` for pause-to-checkpoint,
//! then `RESUME <path>` to pick the run back up, bit-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aderdg_core::checkpoint::Checkpoint;
use aderdg_core::jobs::{Job, JobQueue};
use aderdg_core::report;
use aderdg_core::scenario::{RunControl, RunRequest, RunSummary, ScenarioRegistry};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// What a command evaluates to, before wire encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Single-line success; rendered `OK <text>` (or bare `OK`).
    Ok(String),
    /// Single-line failure; rendered `ERR <text>`.
    Err(String),
    /// Multi-line success; rendered as an `OK` line, the payload, `.`.
    Data(Vec<String>),
    /// `SHUTDOWN`: acknowledge and stop the server.
    Shutdown,
}

const HELP: &[&str] = &[
    "SUBMIT <scenario> [key=value]...   queue a run; keys are the RunRequest::set",
    "                                   knobs plus pause_at_step=<n>",
    "RESUME <path> [key=value]...       queue a run resumed from a checkpoint file",
    "STATUS <id>                        one-line job status with live progress",
    "WAIT <id>                          STATUS after the job settles",
    "PAUSE <id>                         pause at the next step boundary",
    "CANCEL <id>                        cancel at the next step boundary",
    "LIST                               one line per submitted job",
    "SUMMARY <id>                       the human-readable run report",
    "SERIES <id>                        the time-series as CSV",
    "RECEIVERS <id>                     receiver seismograms as CSV",
    "PING | HELP | SHUTDOWN",
];

/// Applies one `key=value` token of `SUBMIT`/`RESUME` to the request.
fn apply_token(req: &mut RunRequest, control: &Arc<RunControl>, token: &str) -> Result<(), Reply> {
    let Some((key, value)) = token.split_once('=') else {
        return Err(Reply::Err(format!(
            "malformed argument `{token}` (expected key=value)"
        )));
    };
    if key == "pause_at_step" {
        let step = value
            .parse::<usize>()
            .map_err(|_| Reply::Err(format!("invalid pause_at_step `{value}`")))?;
        control.pause_at_step(step);
        return Ok(());
    }
    match req.set(key, value) {
        Ok(true) => Ok(()),
        Ok(false) => Err(Reply::Err(format!("unknown key `{key}`"))),
        Err(e) => Err(Reply::Err(format!(
            "invalid value `{value}` for {key} (expected {})",
            e.expected
        ))),
    }
}

fn status_line(job: &Job) -> String {
    // Live progress while running; the settled summary afterwards (the
    // control's last observation lags the final step).
    let (steps, t) = match job.summary() {
        Some(s) => (s.steps, s.t_end),
        None => job.control().progress(),
    };
    let mut line = format!(
        "id={} scenario={} status={} steps={steps} t={t}",
        job.id(),
        job.scenario_name(),
        job.status().as_str()
    );
    if let Some(e) = job.error() {
        line.push_str(&format!(" error={e:?}"));
    }
    line
}

fn with_job(queue: &JobQueue, id_token: Option<&str>, f: impl FnOnce(Arc<Job>) -> Reply) -> Reply {
    let Some(token) = id_token else {
        return Reply::Err("missing job id".into());
    };
    let Ok(id) = token.parse::<u64>() else {
        return Reply::Err(format!("invalid job id `{token}`"));
    };
    match queue.job(id) {
        Some(job) => f(job),
        None => Reply::Err(format!("no such job {id}")),
    }
}

/// Runs `f` against a settled job's summary, or explains why there is
/// none yet.
fn with_summary(job: &Job, f: impl FnOnce(&RunSummary) -> Reply) -> Reply {
    match job.summary() {
        Some(summary) => f(&summary),
        None => Reply::Err(format!(
            "job {} has no summary (status {})",
            job.id(),
            job.status().as_str()
        )),
    }
}

fn csv_lines(f: impl FnOnce(&mut dyn Write) -> io::Result<()>) -> Reply {
    let mut buf = Vec::new();
    match f(&mut buf) {
        Ok(()) => Reply::Data(
            String::from_utf8_lossy(&buf)
                .lines()
                .map(String::from)
                .collect(),
        ),
        Err(e) => Reply::Err(format!("cannot render: {e}")),
    }
}

fn submit(queue: &JobQueue, scenario: &str, req: RunRequest) -> Reply {
    match queue.submit(scenario, req) {
        Ok(job) => Reply::Ok(format!("id={}", job.id())),
        Err(e) => Reply::Err(e.message),
    }
}

/// Evaluates one protocol line. Pure with respect to the connection —
/// this is the unit-testable core of the server.
pub fn handle_line(queue: &JobQueue, line: &str) -> Reply {
    let mut tokens = line.split_whitespace();
    let Some(command) = tokens.next() else {
        return Reply::Err("empty command (try HELP)".into());
    };
    match command.to_ascii_uppercase().as_str() {
        "PING" => Reply::Ok("pong".into()),
        "HELP" => Reply::Data(HELP.iter().map(|s| s.to_string()).collect()),
        "SHUTDOWN" => Reply::Shutdown,
        "SUBMIT" => {
            let Some(scenario) = tokens.next() else {
                return Reply::Err(format!(
                    "SUBMIT requires a scenario (registered: {})",
                    ScenarioRegistry::global().names().join(", ")
                ));
            };
            let control = Arc::new(RunControl::new());
            let mut req = RunRequest {
                control: Some(Arc::clone(&control)),
                ..RunRequest::default()
            };
            for token in tokens {
                if let Err(reply) = apply_token(&mut req, &control, token) {
                    return reply;
                }
            }
            submit(queue, scenario, req)
        }
        "RESUME" => {
            let Some(path) = tokens.next() else {
                return Reply::Err("RESUME requires a checkpoint path".into());
            };
            let ck = match Checkpoint::load(Path::new(path)) {
                Ok(ck) => ck,
                Err(e) => return Reply::Err(e.to_string()),
            };
            let mut req = match ck.to_request() {
                Ok(req) => req,
                Err(e) => return Reply::Err(e.message),
            };
            let control = Arc::new(RunControl::new());
            req.control = Some(Arc::clone(&control));
            for token in tokens {
                if let Err(reply) = apply_token(&mut req, &control, token) {
                    return reply;
                }
            }
            let scenario = ck.scenario.clone();
            req.resume = Some(Arc::new(ck));
            submit(queue, &scenario, req)
        }
        "STATUS" => with_job(queue, tokens.next(), |job| Reply::Ok(status_line(&job))),
        "WAIT" => with_job(queue, tokens.next(), |job| {
            job.wait();
            Reply::Ok(status_line(&job))
        }),
        "PAUSE" => with_job(queue, tokens.next(), |job| {
            queue.pause(job.id());
            Reply::Ok(String::new())
        }),
        "CANCEL" => with_job(queue, tokens.next(), |job| {
            // Through the queue, not the raw control: a still-queued job
            // settles immediately instead of waiting for a runner.
            queue.cancel(job.id());
            Reply::Ok(String::new())
        }),
        "LIST" => Reply::Data(queue.jobs().iter().map(|j| status_line(j)).collect()),
        "SUMMARY" => with_job(queue, tokens.next(), |job| {
            with_summary(&job, |s| {
                Reply::Data(
                    report::render_summary(s)
                        .lines()
                        .map(String::from)
                        .collect(),
                )
            })
        }),
        "SERIES" => with_job(queue, tokens.next(), |job| {
            with_summary(&job, |s| csv_lines(|w| report::write_series_csv(s, w)))
        }),
        "RECEIVERS" => with_job(queue, tokens.next(), |job| {
            with_summary(&job, |s| csv_lines(|w| report::write_receivers_csv(s, w)))
        }),
        other => Reply::Err(format!("unknown command `{other}` (try HELP)")),
    }
}

/// Writes a [`Reply`] in wire format.
pub fn write_reply(out: &mut dyn Write, reply: &Reply) -> io::Result<()> {
    match reply {
        Reply::Ok(text) if text.is_empty() => writeln!(out, "OK"),
        Reply::Ok(text) => writeln!(out, "OK {text}"),
        Reply::Err(text) => writeln!(out, "ERR {}", text.replace('\n', " ")),
        Reply::Data(lines) => {
            writeln!(out, "OK")?;
            for line in lines {
                if line.starts_with('.') {
                    writeln!(out, ".{line}")?;
                } else {
                    writeln!(out, "{line}")?;
                }
            }
            writeln!(out, ".")
        }
        Reply::Shutdown => writeln!(out, "OK shutting down"),
    }
}

struct Shared {
    queue: Arc<JobQueue>,
    stop: AtomicBool,
    addr: SocketAddr,
}

/// The TCP server: an accept loop plus one handler thread per
/// connection, all sharing one [`JobQueue`].
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections.
    pub fn start(addr: &str, queue: Arc<JobQueue>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            queue,
            stop: AtomicBool::new(false),
            addr: listener.local_addr()?,
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("aderdg-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(Server {
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Blocks until the server shuts down (`SHUTDOWN` command or
    /// [`Server::stop`] from another thread).
    pub fn wait(&mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting connections and returns once the accept loop has
    /// exited. In-flight connections see the stop flag at their next
    /// command. Idempotent.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Poke the accept loop out of its blocking accept().
        let _ = TcpStream::connect(self.shared.addr);
        self.wait();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let _ = std::thread::Builder::new()
            .name("aderdg-serve-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &shared);
            });
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    let mut out = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if shared.stop.load(Ordering::Relaxed) {
            write_reply(&mut out, &Reply::Err("server is shutting down".into()))?;
            break;
        }
        let reply = handle_line(&shared.queue, &line);
        write_reply(&mut out, &reply)?;
        out.flush()?;
        if reply == Reply::Shutdown {
            shared.stop.store(true, Ordering::Relaxed);
            // Poke the accept loop so it observes the flag.
            let _ = TcpStream::connect(shared.addr);
            break;
        }
    }
    Ok(())
}

/// A minimal client for the line protocol — used by the `--smoke`
/// self-test and the integration tests, and usable from other tools.
pub struct Client {
    out: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let out = TcpStream::connect(addr)?;
        let reader = BufReader::new(out.try_clone()?);
        Ok(Client { out, reader })
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Sends a single-line command; returns the `OK` payload or the
    /// `ERR` message as the error variant.
    pub fn cmd(&mut self, line: &str) -> io::Result<Result<String, String>> {
        writeln!(self.out, "{line}")?;
        let status = self.read_line()?;
        Ok(parse_status(&status))
    }

    /// Sends a multi-line command (`LIST`, `SUMMARY`, `SERIES`,
    /// `RECEIVERS`, `HELP`); returns the payload lines.
    pub fn cmd_data(&mut self, line: &str) -> io::Result<Result<Vec<String>, String>> {
        writeln!(self.out, "{line}")?;
        let status = self.read_line()?;
        if let Err(e) = parse_status(&status) {
            return Ok(Err(e));
        }
        let mut lines = Vec::new();
        loop {
            let line = self.read_line()?;
            if line == "." {
                break;
            }
            lines.push(line.strip_prefix('.').map(String::from).unwrap_or(line));
        }
        Ok(Ok(lines))
    }
}

fn parse_status(line: &str) -> Result<String, String> {
    if let Some(rest) = line.strip_prefix("OK") {
        Ok(rest.trim_start().to_string())
    } else if let Some(rest) = line.strip_prefix("ERR") {
        Err(rest.trim_start().to_string())
    } else {
        Err(format!("malformed reply `{line}`"))
    }
}

/// Pulls `key=value` out of a status/submit reply.
fn field<'a>(reply: &'a str, key: &str) -> Option<&'a str> {
    reply
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
}

/// The `--smoke` self-test, also exercised by CI: starts a server on an
/// ephemeral port, drives ≥ 8 concurrent jobs over the one shared pool,
/// then proves pause-to-checkpoint + resume reproduces an uninterrupted
/// run's series exactly. Returns an error message on any mismatch.
pub fn smoke(log: &mut dyn Write) -> Result<(), String> {
    let fail = |what: &str, e: String| format!("{what}: {e}");
    let queue = Arc::new(JobQueue::new(8));
    let mut server = Server::start("127.0.0.1:0", Arc::clone(&queue))
        .map_err(|e| fail("bind", e.to_string()))?;
    let addr = server.addr();
    let _ = writeln!(log, "serve smoke: listening on {addr}");
    let io_err = |e: io::Error| e.to_string();
    let result = (|| -> Result<(), String> {
        let mut client = Client::connect(addr).map_err(io_err)?;
        let pong = client
            .cmd("PING")
            .map_err(io_err)?
            .map_err(|e| fail("PING", e))?;
        if pong != "pong" {
            return Err(format!("PING answered `{pong}`"));
        }

        // 8 concurrent jobs across scenarios, all over the one pool.
        let scenarios = ScenarioRegistry::global().names();
        let mut ids = Vec::new();
        for i in 0..8 {
            let scenario = scenarios[i % scenarios.len()];
            let reply = client
                .cmd(&format!("SUBMIT {scenario} smoke=true"))
                .map_err(io_err)?
                .map_err(|e| fail("SUBMIT", e))?;
            let id = field(&reply, "id")
                .ok_or_else(|| format!("SUBMIT reply `{reply}` has no id"))?
                .to_string();
            ids.push((scenario, id));
        }
        for (scenario, id) in &ids {
            let reply = client
                .cmd(&format!("WAIT {id}"))
                .map_err(io_err)?
                .map_err(|e| fail("WAIT", e))?;
            if field(&reply, "status") != Some("done") {
                return Err(format!("job {id} ({scenario}) did not finish: {reply}"));
            }
        }
        let _ = writeln!(log, "serve smoke: {} concurrent jobs done", ids.len());

        // Pause-to-checkpoint, resume, and compare against an
        // uninterrupted run of the same configuration.
        let dir = std::env::temp_dir();
        let ck = dir.join(format!("aderdg-serve-smoke-{}.ckpt", std::process::id()));
        let ck_str = ck.display();
        let submit = |client: &mut Client, cmd: &str| -> Result<String, String> {
            let reply = client
                .cmd(cmd)
                .map_err(io_err)?
                .map_err(|e| fail("SUBMIT", e))?;
            Ok(field(&reply, "id")
                .ok_or_else(|| format!("reply `{reply}` has no id"))?
                .to_string())
        };
        let wait_status = |client: &mut Client, id: &str| -> Result<String, String> {
            let reply = client
                .cmd(&format!("WAIT {id}"))
                .map_err(io_err)?
                .map_err(|e| fail("WAIT", e))?;
            Ok(field(&reply, "status").unwrap_or("?").to_string())
        };
        let paused = submit(
            &mut client,
            &format!(
                "SUBMIT acoustic_wave smoke=true tuning=static pause_at_step=1 \
                 save_checkpoint={ck_str}"
            ),
        )?;
        if wait_status(&mut client, &paused)? != "paused" {
            return Err(format!("job {paused} did not pause at step 1"));
        }
        let resumed = submit(&mut client, &format!("RESUME {ck_str}"))?;
        if wait_status(&mut client, &resumed)? != "done" {
            return Err(format!("resumed job {resumed} did not finish"));
        }
        let full = submit(&mut client, "SUBMIT acoustic_wave smoke=true tuning=static")?;
        if wait_status(&mut client, &full)? != "done" {
            return Err(format!("reference job {full} did not finish"));
        }
        let series = |client: &mut Client, id: &str| -> Result<Vec<String>, String> {
            client
                .cmd_data(&format!("SERIES {id}"))
                .map_err(io_err)?
                .map_err(|e| fail("SERIES", e))
        };
        let resumed_series = series(&mut client, &resumed)?;
        let full_series = series(&mut client, &full)?;
        // The checkpoint carries the pre-pause series and the resumed
        // half re-derives the same dt sequence, so the whole series must
        // match the uninterrupted run bit-for-bit (the CSV renders f64
        // round-trip exactly).
        if resumed_series != full_series {
            return Err(format!(
                "resumed series differs from the uninterrupted run: \
                 {resumed_series:?} vs {full_series:?}"
            ));
        }
        let _ = writeln!(log, "serve smoke: pause/checkpoint/resume series matches");
        let _ = std::fs::remove_file(&ck);

        // The same pause/resume round trip under clustered local time
        // stepping, on the dt-heterogeneous scenario: the checkpoint must
        // carry the per-cluster clocks so the resumed macro cycle replays
        // bit-for-bit (see docs/LTS.md).
        let ck_lts = dir.join(format!(
            "aderdg-serve-smoke-lts-{}.ckpt",
            std::process::id()
        ));
        let ck_lts_str = ck_lts.display();
        let paused = submit(
            &mut client,
            &format!(
                "SUBMIT acoustic_layered smoke=true tuning=static stepping=lts \
                 pause_at_step=1 save_checkpoint={ck_lts_str}"
            ),
        )?;
        if wait_status(&mut client, &paused)? != "paused" {
            return Err(format!("LTS job {paused} did not pause at step 1"));
        }
        let resumed = submit(&mut client, &format!("RESUME {ck_lts_str}"))?;
        if wait_status(&mut client, &resumed)? != "done" {
            return Err(format!("resumed LTS job {resumed} did not finish"));
        }
        let full = submit(
            &mut client,
            "SUBMIT acoustic_layered smoke=true tuning=static stepping=lts",
        )?;
        if wait_status(&mut client, &full)? != "done" {
            return Err(format!("reference LTS job {full} did not finish"));
        }
        let resumed_series = series(&mut client, &resumed)?;
        let full_series = series(&mut client, &full)?;
        if resumed_series != full_series {
            return Err(format!(
                "resumed LTS series differs from the uninterrupted run: \
                 {resumed_series:?} vs {full_series:?}"
            ));
        }
        let _ = writeln!(
            log,
            "serve smoke: LTS pause/checkpoint/resume series matches"
        );
        let _ = std::fs::remove_file(&ck_lts);

        let reply = client.cmd("SHUTDOWN").map_err(io_err)?;
        if reply != Ok("shutting down".to_string()) {
            return Err(format!("SHUTDOWN answered {reply:?}"));
        }
        Ok(())
    })();
    server.stop();
    queue.shutdown();
    result
}

/// Parsed `aderdg-serve` command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeCommand {
    /// `--help`.
    Help,
    /// `--smoke`: run the self-test and exit.
    Smoke,
    /// Serve on the given address with the given job-runner count.
    Serve {
        /// Bind address (default `127.0.0.1:4971`; port 0 for ephemeral).
        addr: String,
        /// Concurrent job runners (default 4).
        jobs: usize,
    },
}

/// The usage text (`--help`).
pub const USAGE: &str = "\
aderdg-serve — checkpoint/restart simulation service over the scenario registry

USAGE:
  aderdg-serve [--addr <host:port>] [--jobs <n>]   serve (default 127.0.0.1:4971, 4 jobs)
  aderdg-serve --smoke                             run the self-test and exit
  aderdg-serve --help

Connect with any line-oriented TCP client and type HELP for the protocol.
";

/// Parses the `aderdg-serve` command line (without the program name).
pub fn parse_serve_args(args: &[String]) -> Result<ServeCommand, String> {
    let mut addr = "127.0.0.1:4971".to_string();
    let mut jobs = 4usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(ServeCommand::Help),
            "--smoke" => return Ok(ServeCommand::Smoke),
            "--addr" => {
                addr = it
                    .next()
                    .cloned()
                    .ok_or_else(|| "--addr requires a value".to_string())?;
            }
            "--jobs" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--jobs requires a value".to_string())?;
                jobs = match value.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        return Err(format!(
                            "invalid value `{value}` for --jobs (expected a positive integer)"
                        ))
                    }
                };
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(ServeCommand::Serve { addr, jobs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_line_basics() {
        let queue = JobQueue::new(1);
        assert_eq!(handle_line(&queue, "PING"), Reply::Ok("pong".into()));
        assert_eq!(handle_line(&queue, "SHUTDOWN"), Reply::Shutdown);
        assert!(matches!(handle_line(&queue, ""), Reply::Err(_)));
        assert!(matches!(handle_line(&queue, "FROB 1"), Reply::Err(_)));
        assert!(matches!(handle_line(&queue, "STATUS"), Reply::Err(_)));
        assert!(matches!(handle_line(&queue, "STATUS x"), Reply::Err(_)));
        assert!(matches!(handle_line(&queue, "STATUS 42"), Reply::Err(_)));
        assert!(matches!(handle_line(&queue, "HELP"), Reply::Data(_)));
    }

    #[test]
    fn submit_validates_scenario_and_knobs() {
        let queue = JobQueue::new(1);
        match handle_line(&queue, "SUBMIT nope smoke=true") {
            Reply::Err(e) => assert!(e.contains("unknown scenario"), "{e}"),
            other => panic!("expected ERR, got {other:?}"),
        }
        match handle_line(&queue, "SUBMIT acoustic_wave frobnicate=1") {
            Reply::Err(e) => assert!(e.contains("unknown key"), "{e}"),
            other => panic!("expected ERR, got {other:?}"),
        }
        match handle_line(&queue, "SUBMIT acoustic_wave order=banana") {
            Reply::Err(e) => assert!(e.contains("invalid value"), "{e}"),
            other => panic!("expected ERR, got {other:?}"),
        }
        match handle_line(&queue, "SUBMIT acoustic_wave smoke") {
            Reply::Err(e) => assert!(e.contains("key=value"), "{e}"),
            other => panic!("expected ERR, got {other:?}"),
        }
    }

    #[test]
    fn submit_wait_and_fetch_round_trip() {
        let queue = JobQueue::new(2);
        let reply = handle_line(&queue, "SUBMIT acoustic_wave smoke=true");
        let Reply::Ok(ok) = reply else {
            panic!("submit failed: {reply:?}");
        };
        let id: u64 = field(&ok, "id").unwrap().parse().unwrap();
        let Reply::Ok(status) = handle_line(&queue, &format!("WAIT {id}")) else {
            panic!("WAIT failed");
        };
        assert!(status.contains("status=done"), "{status}");
        let Reply::Data(series) = handle_line(&queue, &format!("SERIES {id}")) else {
            panic!("SERIES failed");
        };
        assert_eq!(series[0], "t,steps,l2_norm,l2_error");
        assert!(series.len() > 1);
        let Reply::Data(list) = handle_line(&queue, "LIST") else {
            panic!("LIST failed");
        };
        assert_eq!(list.len(), 1);
        let Reply::Data(summary) = handle_line(&queue, &format!("SUMMARY {id}")) else {
            panic!("SUMMARY failed");
        };
        assert!(
            summary[0].starts_with("scenario acoustic_wave"),
            "{summary:?}"
        );
    }

    #[test]
    fn reply_wire_format_dot_stuffs() {
        let mut buf = Vec::new();
        write_reply(&mut buf, &Reply::Data(vec![".hidden".into(), "x".into()])).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "OK\n..hidden\nx\n.\n");
        let mut buf = Vec::new();
        write_reply(&mut buf, &Reply::Err("multi\nline".into())).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "ERR multi line\n");
    }

    #[test]
    fn serve_args_parse() {
        let a = |s: &[&str]| parse_serve_args(&s.iter().map(|x| x.to_string()).collect::<Vec<_>>());
        assert_eq!(a(&["--help"]), Ok(ServeCommand::Help));
        assert_eq!(a(&["--smoke"]), Ok(ServeCommand::Smoke));
        assert_eq!(
            a(&[]),
            Ok(ServeCommand::Serve {
                addr: "127.0.0.1:4971".into(),
                jobs: 4
            })
        );
        assert_eq!(
            a(&["--addr", "0.0.0.0:0", "--jobs", "2"]),
            Ok(ServeCommand::Serve {
                addr: "0.0.0.0:0".into(),
                jobs: 2
            })
        );
        assert!(a(&["--jobs", "0"]).is_err());
        assert!(a(&["--frob"]).is_err());
    }
}
