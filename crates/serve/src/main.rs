//! `aderdg-serve` entry point: parse, dispatch, serve. All the logic
//! lives in the library so it stays unit testable.

use aderdg_serve::{parse_serve_args, smoke, ServeCommand, Server, USAGE};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_serve_args(&args) {
        Ok(command) => command,
        Err(e) => {
            eprintln!("aderdg-serve: {e}");
            std::process::exit(2);
        }
    };
    match command {
        ServeCommand::Help => print!("{USAGE}"),
        ServeCommand::Smoke => {
            let mut log = std::io::stdout();
            if let Err(e) = smoke(&mut log) {
                eprintln!("aderdg-serve: smoke test failed: {e}");
                std::process::exit(1);
            }
            println!("aderdg-serve: smoke test passed");
        }
        ServeCommand::Serve { addr, jobs } => {
            let queue = Arc::new(aderdg_core::jobs::JobQueue::new(jobs));
            let mut server = match Server::start(&addr, Arc::clone(&queue)) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("aderdg-serve: cannot bind {addr}: {e}");
                    std::process::exit(1);
                }
            };
            println!(
                "aderdg-serve: listening on {} with {jobs} job runner(s) — \
                 connect and type HELP",
                server.addr()
            );
            server.wait();
            queue.shutdown();
        }
    }
}
