//! End-to-end tests of the aderdg-serve TCP server: the full `--smoke`
//! self-test (≥ 8 concurrent jobs + pause/checkpoint/resume equality)
//! plus targeted protocol checks over a real socket.

use aderdg_core::jobs::JobQueue;
use aderdg_serve::{smoke, Client, Server};
use std::sync::Arc;

#[test]
fn smoke_self_test_passes() {
    let mut log = Vec::new();
    if let Err(e) = smoke(&mut log) {
        panic!(
            "serve smoke failed: {e}\nlog:\n{}",
            String::from_utf8_lossy(&log)
        );
    }
    let log = String::from_utf8_lossy(&log);
    assert!(log.contains("concurrent jobs done"), "{log}");
    assert!(log.contains("series matches"), "{log}");
}

#[test]
fn protocol_over_a_real_socket() {
    let queue = Arc::new(JobQueue::new(2));
    let mut server = Server::start("127.0.0.1:0", Arc::clone(&queue)).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    assert_eq!(client.cmd("PING").unwrap(), Ok("pong".into()));
    let help = client.cmd_data("HELP").unwrap().expect("HELP payload");
    assert!(help.iter().any(|l| l.contains("SUBMIT")), "{help:?}");

    // Errors come back as ERR lines, not dropped connections.
    let err = client.cmd("SUBMIT nope").unwrap().unwrap_err();
    assert!(err.contains("unknown scenario"), "{err}");
    let err = client.cmd_data("SERIES 99").unwrap().unwrap_err();
    assert!(err.contains("no such job"), "{err}");

    // A second client sees the same queue.
    let reply = client
        .cmd("SUBMIT acoustic_wave smoke=true")
        .unwrap()
        .expect("submit");
    let id = reply.strip_prefix("id=").expect("id=<n>").to_string();
    let mut other = Client::connect(server.addr()).expect("second connect");
    let status = other.cmd(&format!("WAIT {id}")).unwrap().expect("wait");
    assert!(status.contains("status=done"), "{status}");
    let list = other.cmd_data("LIST").unwrap().expect("list");
    assert_eq!(list.len(), 1, "{list:?}");
    let summary = other.cmd_data(&format!("SUMMARY {id}")).unwrap().unwrap();
    assert!(
        summary[0].starts_with("scenario acoustic_wave"),
        "{summary:?}"
    );

    server.stop();
    queue.shutdown();
}

#[test]
fn cancel_over_the_wire() {
    let queue = Arc::new(JobQueue::new(1));
    let mut server = Server::start("127.0.0.1:0", Arc::clone(&queue)).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Occupy the single runner with a long run, cancel a queued job
    // before it ever starts, then cancel the blocker mid-run.
    let first = client
        .cmd("SUBMIT acoustic_wave cells=4 t_end=1000 tuning=static")
        .unwrap()
        .expect("submit");
    let second = client
        .cmd("SUBMIT acoustic_wave smoke=true")
        .unwrap()
        .expect("submit");
    let second_id = second.strip_prefix("id=").unwrap().to_string();
    client
        .cmd(&format!("CANCEL {second_id}"))
        .unwrap()
        .expect("cancel queued");
    let status = client
        .cmd(&format!("WAIT {second_id}"))
        .unwrap()
        .expect("wait queued victim");
    assert!(status.contains("status=cancelled"), "{status}");
    let first_id = first.strip_prefix("id=").unwrap().to_string();
    client
        .cmd(&format!("CANCEL {first_id}"))
        .unwrap()
        .expect("cancel running");
    let status = client
        .cmd(&format!("WAIT {first_id}"))
        .unwrap()
        .expect("wait blocker");
    assert!(status.contains("status=cancelled"), "{status}");

    server.stop();
    queue.shutdown();
}
