//! Curvilinear coordinate transforms.
//!
//! The paper's seismic benchmark uses boundary-fitted curvilinear meshes;
//! the transform and its Jacobian are stored at every node as nine extra
//! quantities (Sec. VI). A [`CurvilinearMap`] deforms the structured
//! reference geometry; the per-node inverse Jacobian rows are what the
//! elastic flux combines the Cartesian fluxes with.

/// A smooth invertible deformation of physical space.
pub trait CurvilinearMap: Send + Sync {
    /// Maps an undeformed point to its deformed position.
    fn map(&self, x: [f64; 3]) -> [f64; 3];

    /// Jacobian `∂(mapped)/∂x` at `x`, row-major. Default: central
    /// finite differences of [`CurvilinearMap::map`].
    fn jacobian(&self, x: [f64; 3]) -> [f64; 9] {
        let h = 1e-6;
        let mut j = [0.0; 9];
        for d in 0..3 {
            let mut xp = x;
            xp[d] += h;
            let mut xm = x;
            xm[d] -= h;
            let fp = self.map(xp);
            let fm = self.map(xm);
            for r in 0..3 {
                j[r * 3 + d] = (fp[r] - fm[r]) / (2.0 * h);
            }
        }
        j
    }

    /// Inverse-Jacobian rows at `x` — the metric terms stored per node.
    fn metric(&self, x: [f64; 3]) -> [f64; 9] {
        invert3(&self.jacobian(x))
    }
}

/// Inverts a row-major 3×3 matrix. Panics on a (near-)singular matrix,
/// which would mean a tangled mesh.
pub fn invert3(a: &[f64; 9]) -> [f64; 9] {
    let det = a[0] * (a[4] * a[8] - a[5] * a[7]) - a[1] * (a[3] * a[8] - a[5] * a[6])
        + a[2] * (a[3] * a[7] - a[4] * a[6]);
    assert!(det.abs() > 1e-12, "singular mesh Jacobian (det = {det})");
    let inv_det = 1.0 / det;
    [
        (a[4] * a[8] - a[5] * a[7]) * inv_det,
        (a[2] * a[7] - a[1] * a[8]) * inv_det,
        (a[1] * a[5] - a[2] * a[4]) * inv_det,
        (a[5] * a[6] - a[3] * a[8]) * inv_det,
        (a[0] * a[8] - a[2] * a[6]) * inv_det,
        (a[2] * a[3] - a[0] * a[5]) * inv_det,
        (a[3] * a[7] - a[4] * a[6]) * inv_det,
        (a[1] * a[6] - a[0] * a[7]) * inv_det,
        (a[0] * a[4] - a[1] * a[3]) * inv_det,
    ]
}

/// The identity transform (Cartesian mesh).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityMap;

impl CurvilinearMap for IdentityMap {
    fn map(&self, x: [f64; 3]) -> [f64; 3] {
        x
    }
    fn jacobian(&self, _x: [f64; 3]) -> [f64; 9] {
        [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]
    }
    fn metric(&self, _x: [f64; 3]) -> [f64; 9] {
        [1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]
    }
}

/// Smooth sinusoidal deformation of the unit cube — a generic curvilinear
/// test geometry with analytic Jacobian:
/// `x' = x + a sin(2πx) sin(2πy) sin(2πz)` (per component, scaled).
#[derive(Debug, Clone, Copy)]
pub struct SineDeformation {
    /// Deformation amplitude; must satisfy `|a| < 1/(2π·3)` for
    /// invertibility on the unit cube.
    pub amplitude: f64,
}

impl CurvilinearMap for SineDeformation {
    fn map(&self, x: [f64; 3]) -> [f64; 3] {
        let tau = 2.0 * std::f64::consts::PI;
        let s = self.amplitude * (tau * x[0]).sin() * (tau * x[1]).sin() * (tau * x[2]).sin();
        [x[0] + s, x[1] + s, x[2] + s]
    }

    fn jacobian(&self, x: [f64; 3]) -> [f64; 9] {
        let tau = 2.0 * std::f64::consts::PI;
        let (s0, c0) = (tau * x[0]).sin_cos();
        let (s1, c1) = (tau * x[1]).sin_cos();
        let (s2, c2) = (tau * x[2]).sin_cos();
        let g = [
            self.amplitude * tau * c0 * s1 * s2,
            self.amplitude * tau * s0 * c1 * s2,
            self.amplitude * tau * s0 * s1 * c2,
        ];
        let mut j = [0.0; 9];
        for r in 0..3 {
            for c in 0..3 {
                j[r * 3 + c] = g[c] + if r == c { 1.0 } else { 0.0 };
            }
        }
        j
    }
}

/// Vertical stretch that keeps a material-interface depth on a mesh plane —
/// the "curvilinear mesh fitted to the material parameter interface" of the
/// paper's LOH1 setup. Maps the plane `z = plane_z` to `z = interface_z`
/// with piecewise-linear stretching of `[0, plane_z]` and `[plane_z, 1]`
/// blended smoothly in x/y by `bump`.
#[derive(Debug, Clone, Copy)]
pub struct InterfaceFittedMap {
    /// Mesh-plane height in undeformed coordinates (a cell boundary).
    pub plane_z: f64,
    /// Physical interface depth the plane is pulled to.
    pub interface_z: f64,
    /// Lateral modulation amplitude (0 = flat interface).
    pub bump: f64,
}

impl InterfaceFittedMap {
    fn target_z(&self, x: f64, y: f64) -> f64 {
        let tau = 2.0 * std::f64::consts::PI;
        self.interface_z + self.bump * (tau * x).sin() * (tau * y).sin()
    }
}

impl CurvilinearMap for InterfaceFittedMap {
    fn map(&self, x: [f64; 3]) -> [f64; 3] {
        let zt = self.target_z(x[0], x[1]);
        let z = if x[2] <= self.plane_z {
            x[2] / self.plane_z * zt
        } else {
            zt + (x[2] - self.plane_z) / (1.0 - self.plane_z) * (1.0 - zt)
        };
        [x[0], x[1], z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invert3_roundtrip() {
        let a = [2.0, 1.0, 0.0, 0.5, 3.0, 0.2, 0.0, -1.0, 1.5];
        let inv = invert3(&a);
        // a * inv = I
        for r in 0..3 {
            for c in 0..3 {
                let mut acc = 0.0;
                for l in 0..3 {
                    acc += a[r * 3 + l] * inv[l * 3 + c];
                }
                let want = if r == c { 1.0 } else { 0.0 };
                assert!((acc - want).abs() < 1e-12, "({r},{c})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn invert3_rejects_singular() {
        let _ = invert3(&[1.0, 2.0, 3.0, 2.0, 4.0, 6.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn identity_map_trivial() {
        let m = IdentityMap;
        assert_eq!(m.map([0.1, 0.2, 0.3]), [0.1, 0.2, 0.3]);
        assert_eq!(m.metric([0.5; 3])[0], 1.0);
    }

    #[test]
    fn sine_deformation_analytic_jacobian_matches_fd() {
        let m = SineDeformation { amplitude: 0.03 };
        let x = [0.23, 0.61, 0.47];
        let ja = m.jacobian(x);
        // Re-derive by finite differences through the default trait impl.
        struct Fd(SineDeformation);
        impl CurvilinearMap for Fd {
            fn map(&self, x: [f64; 3]) -> [f64; 3] {
                self.0.map(x)
            }
        }
        let jf = Fd(m).jacobian(x);
        for i in 0..9 {
            assert!(
                (ja[i] - jf[i]).abs() < 1e-8,
                "i={i}: {} vs {}",
                ja[i],
                jf[i]
            );
        }
    }

    #[test]
    fn sine_metric_is_inverse_of_jacobian() {
        let m = SineDeformation { amplitude: 0.02 };
        let x = [0.4, 0.15, 0.77];
        let j = m.jacobian(x);
        let g = m.metric(x);
        for r in 0..3 {
            for c in 0..3 {
                let mut acc = 0.0;
                for l in 0..3 {
                    acc += g[r * 3 + l] * j[l * 3 + c];
                }
                let want = if r == c { 1.0 } else { 0.0 };
                assert!((acc - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn interface_map_pins_interface() {
        let m = InterfaceFittedMap {
            plane_z: 0.5,
            interface_z: 0.3,
            bump: 0.0,
        };
        // The mesh plane z=0.5 maps to the interface depth 0.3.
        assert!((m.map([0.2, 0.8, 0.5])[2] - 0.3).abs() < 1e-14);
        // Domain boundaries stay fixed.
        assert_eq!(m.map([0.2, 0.8, 0.0])[2], 0.0);
        assert!((m.map([0.2, 0.8, 1.0])[2] - 1.0).abs() < 1e-14);
        // Monotone in z.
        let mut prev = -1.0;
        for i in 0..=10 {
            let z = m.map([0.5, 0.5, i as f64 / 10.0])[2];
            assert!(z > prev);
            prev = z;
        }
    }

    #[test]
    fn interface_map_with_bump_is_invertible() {
        let m = InterfaceFittedMap {
            plane_z: 0.5,
            interface_z: 0.4,
            bump: 0.05,
        };
        // Jacobian determinant positive on a sample grid.
        for i in 1..5 {
            for j in 1..5 {
                for k in 1..5 {
                    let x = [i as f64 / 5.0, j as f64 / 5.0, k as f64 / 5.0];
                    let jac = m.jacobian(x);
                    let det = jac[0] * (jac[4] * jac[8] - jac[5] * jac[7])
                        - jac[1] * (jac[3] * jac[8] - jac[5] * jac[6])
                        + jac[2] * (jac[3] * jac[7] - jac[4] * jac[6]);
                    assert!(det > 0.1, "det={det} at {x:?}");
                }
            }
        }
    }
}
