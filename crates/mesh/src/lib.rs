//! # aderdg-mesh
//!
//! Mesh substrate: structured hexahedral box meshes with periodic /
//! outflow / reflective boundaries and face connectivity, plus curvilinear
//! coordinate transforms (identity, smooth sine deformation, and the
//! interface-fitted vertical stretch used for LOH1-style layered media)
//! whose per-node inverse-Jacobian rows become the metric parameters of
//! the elastic wave equation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curvilinear;
pub mod lts;
pub mod shard;
pub mod structured;

pub use curvilinear::{invert3, CurvilinearMap, IdentityMap, InterfaceFittedMap, SineDeformation};
pub use lts::{assign_levels, LtsGraph, LtsTask, MAX_LTS_LEVEL};
pub use shard::{FaceTopo, ShardPlan};
pub use structured::{BoundaryKind, Face, Neighbor, StructuredMesh};
