//! Shard partitioning and the canonical once-per-face enumeration.
//!
//! The corrector needs exactly one Riemann solve per face per time step
//! (paper eq. 5). A cell-centric corrector visits every interior face
//! twice — once from each adjacent cell — doubling the flux work. This
//! module gives a face its own identity: [`ShardPlan`] enumerates every
//! distinct face of a [`StructuredMesh`] exactly once (an interior face is
//! the *lower* cell's upper side; periodic wraps count as interior), and
//! partitions the cells into **shards** — contiguous flat-index ranges —
//! with each face owned by exactly one shard.
//!
//! On top of the ownership map the plan precomputes the dependency sets a
//! pipelined engine step needs:
//!
//! * [`flux_deps`](ShardPlan::flux_deps) — which shards' *predictors* must
//!   have run before a shard's owned faces can be flux-resolved (the owner
//!   itself plus every shard holding a cell across one of its faces);
//! * [`apply_deps`](ShardPlan::apply_deps) — which shards' *face sweeps*
//!   must have run before a shard's cells can apply their six face
//!   corrections (the owners of all faces its cells touch).
//!
//! Both sets are sorted and deduplicated, so a scheduler can turn them
//! directly into ready-counter edges. Face ids owned by one shard are
//! contiguous ([`owned_faces`](ShardPlan::owned_faces)), which lets the
//! engine back each shard's fluxes with one dense buffer slice.

use crate::structured::{BoundaryKind, Face, Neighbor, StructuredMesh};
use std::ops::Range;

/// Topology of one canonical mesh face.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaceTopo {
    /// Interior (or periodic-wrapped) face of normal dimension `dim`:
    /// `lower`'s upper side touches `upper`'s lower side. On a periodic
    /// dimension of extent 1, `lower == upper` (the cell couples to
    /// itself through one face serving both of its slots).
    Interior {
        /// Normal dimension.
        dim: usize,
        /// Cell whose upper face (side 1) this is.
        lower: usize,
        /// Cell whose lower face (side 0) this is.
        upper: usize,
    },
    /// Domain-boundary face of `cell`.
    Boundary {
        /// Normal dimension.
        dim: usize,
        /// The cell the face belongs to.
        cell: usize,
        /// 0 = the cell's lower face, 1 = its upper face.
        side: usize,
        /// Boundary behaviour.
        kind: BoundaryKind,
    },
}

/// Sentinel for a not-yet-assigned face slot during construction.
const UNSET: usize = usize::MAX;

/// A shard partition of a structured mesh with a canonical face index.
///
/// Shards are contiguous cell ranges of (at most) `shard_size` cells;
/// the last shard may be shorter. Every distinct face of the mesh gets
/// one id; ids are grouped so each shard's owned faces are contiguous.
///
/// [`ShardPlan::with_levels`] additionally makes the partition
/// **cluster-aware** for local time stepping: shards are cut at every
/// level change (so a shard is level-uniform,
/// [`shard_level`](ShardPlan::shard_level)), and every face carries a
/// [`cadence`](ShardPlan::face_cadence) — the finer adjacent cell's
/// level, i.e. how often the face must be re-solved.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shard_size: usize,
    num_cells: usize,
    num_shards: usize,
    /// Shard boundaries: shard `s` holds cells
    /// `shard_starts[s]..shard_starts[s + 1]`.
    shard_starts: Vec<usize>,
    /// Per-shard cluster level (all zero for [`ShardPlan::new`]).
    shard_level: Vec<u8>,
    /// Per-face update cadence: `min` of the adjacent cells' levels
    /// (the cell's own level for a boundary face).
    face_cadence: Vec<u8>,
    /// Distinct cluster levels present (`max level + 1`; `1` for a
    /// single-cluster plan).
    num_levels: usize,
    /// Canonical faces, ordered by owner shard (then by owner cell, then
    /// by the cell's slot order).
    faces: Vec<FaceTopo>,
    /// `(cell, slot 0..6)` → canonical face id, slot order as
    /// [`Face::ALL`].
    cell_faces: Vec<[usize; 6]>,
    /// Owned-face ranges: shard `s` owns ids
    /// `face_start[s]..face_start[s + 1]`.
    face_start: Vec<usize>,
    /// Sorted, deduplicated predictor dependencies of each shard's face
    /// sweep (always contains the shard itself).
    flux_deps: Vec<Vec<usize>>,
    /// Sorted, deduplicated face-sweep dependencies of each shard's
    /// correction application (always contains the shard itself).
    apply_deps: Vec<Vec<usize>>,
    interior_faces: usize,
    boundary_faces: usize,
}

impl ShardPlan {
    /// Partitions `mesh` into shards of `shard_size` contiguous cells and
    /// builds the canonical face index.
    ///
    /// # Panics
    /// If `shard_size` is zero.
    pub fn new(mesh: &StructuredMesh, shard_size: usize) -> Self {
        Self::build(mesh, shard_size, None)
    }

    /// Like [`ShardPlan::new`], but cluster-aware: `levels[c]` is cell
    /// `c`'s local-time-stepping level, shard boundaries are cut at
    /// every level change **in addition to** the `shard_size` grid (so
    /// every shard is level-uniform), and each face records its update
    /// cadence. With all levels zero the partition is identical to
    /// [`ShardPlan::new`]'s.
    ///
    /// # Panics
    /// If `shard_size` is zero or `levels` is not one entry per cell.
    pub fn with_levels(mesh: &StructuredMesh, shard_size: usize, levels: &[u8]) -> Self {
        assert_eq!(
            levels.len(),
            mesh.num_cells(),
            "one cluster level per mesh cell"
        );
        Self::build(mesh, shard_size, Some(levels))
    }

    fn build(mesh: &StructuredMesh, shard_size: usize, levels: Option<&[u8]>) -> Self {
        assert!(shard_size >= 1, "shard size must be at least 1");
        let num_cells = mesh.num_cells();
        let level_of = |cell: usize| levels.map_or(0, |l| l[cell]);

        // Shard boundaries: every `shard_size` cells, restarting the
        // count at each cluster-level change so shards never span
        // levels. Without levels this reduces to multiples of
        // `shard_size` — the exact partition `new` always produced.
        let mut shard_starts = Vec::new();
        let mut run = 0usize;
        for c in 0..num_cells {
            if c == 0 || run == shard_size || level_of(c) != level_of(c - 1) {
                shard_starts.push(c);
                run = 0;
            }
            run += 1;
        }
        shard_starts.push(num_cells);
        let num_shards = shard_starts.len() - 1;
        let shard_level: Vec<u8> = (0..num_shards).map(|s| level_of(shard_starts[s])).collect();
        let num_levels = shard_level.iter().max().map_or(1, |&l| l as usize + 1);
        let shard_of =
            |cell: usize| shard_starts.partition_point(|&start| start <= cell).max(1) - 1;

        let mut faces = Vec::with_capacity(3 * num_cells);
        let mut cell_faces = vec![[UNSET; 6]; num_cells];
        let mut face_start = Vec::with_capacity(num_shards + 1);
        let mut interior_faces = 0;
        let mut boundary_faces = 0;

        // One pass in cell order. A face is created at its owner cell's
        // visit: interior faces at their lower cell (slot side 1),
        // boundary faces at their only cell. Cells ascend, so the ids of
        // one shard's owned faces come out contiguous.
        let mut next_shard = 0;
        for c in 0..num_cells {
            if shard_starts[next_shard] == c {
                face_start.push(faces.len());
                next_shard += 1;
            }
            for face in Face::ALL {
                let slot = face.index();
                match mesh.neighbor(c, face) {
                    Neighbor::Cell(nb) => {
                        if face.side == 1 {
                            let id = faces.len();
                            faces.push(FaceTopo::Interior {
                                dim: face.dim,
                                lower: c,
                                upper: nb,
                            });
                            interior_faces += 1;
                            cell_faces[c][slot] = id;
                            // The same face is the neighbour's lower slot.
                            // On a periodic dimension of extent 1 the
                            // neighbour is `c` itself and this fills the
                            // cell's own slot 2·dim.
                            cell_faces[nb][face.opposite().index()] = id;
                        }
                        // side 0 interior slots are filled by the lower
                        // cell's visit (above).
                    }
                    Neighbor::Boundary(kind) => {
                        let id = faces.len();
                        faces.push(FaceTopo::Boundary {
                            dim: face.dim,
                            cell: c,
                            side: face.side,
                            kind,
                        });
                        boundary_faces += 1;
                        cell_faces[c][slot] = id;
                    }
                }
            }
        }
        face_start.push(faces.len());
        debug_assert_eq!(face_start.len(), num_shards + 1);
        debug_assert!(
            cell_faces.iter().all(|f| f.iter().all(|&id| id != UNSET)),
            "every cell slot must map to a canonical face"
        );

        // Dependency sets from the ownership map.
        let mut flux_deps: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
        let mut apply_deps: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
        for s in 0..num_shards {
            let deps = &mut flux_deps[s];
            for id in face_start[s]..face_start[s + 1] {
                match faces[id] {
                    FaceTopo::Interior { lower, upper, .. } => {
                        deps.push(shard_of(lower));
                        deps.push(shard_of(upper));
                    }
                    FaceTopo::Boundary { cell, .. } => deps.push(shard_of(cell)),
                }
            }
            deps.sort_unstable();
            deps.dedup();
        }
        for (c, slots) in cell_faces.iter().enumerate() {
            let s = shard_of(c);
            for &id in slots {
                // Owner shard of a face id via its contiguous range.
                let owner = face_start.partition_point(|&start| start <= id) - 1;
                apply_deps[s].push(owner);
            }
        }
        for deps in &mut apply_deps {
            deps.sort_unstable();
            deps.dedup();
        }

        // A face's update cadence is the finer adjacent cell's level:
        // it must be re-solved whenever either side starts a sub-step.
        let face_cadence: Vec<u8> = faces
            .iter()
            .map(|f| match *f {
                FaceTopo::Interior { lower, upper, .. } => level_of(lower).min(level_of(upper)),
                FaceTopo::Boundary { cell, .. } => level_of(cell),
            })
            .collect();

        Self {
            shard_size,
            num_cells,
            num_shards,
            shard_starts,
            shard_level,
            face_cadence,
            num_levels,
            faces,
            cell_faces,
            face_start,
            flux_deps,
            apply_deps,
            interior_faces,
            boundary_faces,
        }
    }

    /// Nominal cells per shard: no shard exceeds this, but level changes
    /// (cluster-aware plans) and the mesh end may cut shards shorter.
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of cells of the underlying mesh.
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// The contiguous cell range of shard `s`.
    pub fn shard_range(&self, s: usize) -> Range<usize> {
        self.shard_starts[s]..self.shard_starts[s + 1]
    }

    /// The shard containing `cell`.
    pub fn shard_of(&self, cell: usize) -> usize {
        debug_assert!(cell < self.num_cells);
        self.shard_starts.partition_point(|&start| start <= cell) - 1
    }

    /// The cluster level of shard `s`'s cells (always `0` for plans
    /// built by [`ShardPlan::new`]).
    pub fn shard_level(&self, s: usize) -> u8 {
        self.shard_level[s]
    }

    /// Face `id`'s update cadence: the finer adjacent cell's level.
    /// The face is re-solved at every base sub-step divisible by
    /// `2^cadence`.
    pub fn face_cadence(&self, id: usize) -> u8 {
        self.face_cadence[id]
    }

    /// Distinct cluster levels present: `max shard level + 1` (`1` for
    /// a single-cluster plan).
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Total number of canonical faces (interior + boundary).
    pub fn num_faces(&self) -> usize {
        self.faces.len()
    }

    /// Number of distinct interior faces (periodic wraps included).
    pub fn num_interior_faces(&self) -> usize {
        self.interior_faces
    }

    /// Number of domain-boundary faces.
    pub fn num_boundary_faces(&self) -> usize {
        self.boundary_faces
    }

    /// Topology of face `id`.
    pub fn face(&self, id: usize) -> FaceTopo {
        self.faces[id]
    }

    /// The canonical face ids of a cell's six slots, in [`Face::ALL`]
    /// order.
    pub fn cell_faces(&self, cell: usize) -> &[usize; 6] {
        &self.cell_faces[cell]
    }

    /// The contiguous face-id range owned by shard `s`.
    pub fn owned_faces(&self, s: usize) -> Range<usize> {
        self.face_start[s]..self.face_start[s + 1]
    }

    /// The shard owning face `id`.
    pub fn face_owner(&self, id: usize) -> usize {
        debug_assert!(id < self.faces.len());
        self.face_start.partition_point(|&start| start <= id) - 1
    }

    /// Shards whose predictors gate shard `s`'s face sweep (sorted,
    /// deduplicated, contains `s`).
    pub fn flux_deps(&self, s: usize) -> &[usize] {
        &self.flux_deps[s]
    }

    /// Shards whose face sweeps gate shard `s`'s correction application
    /// (sorted, deduplicated, contains `s`).
    pub fn apply_deps(&self, s: usize) -> &[usize] {
        &self.apply_deps[s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_cube_counts_one_face_per_interior_pair() {
        let mesh = StructuredMesh::unit_cube(3);
        let plan = ShardPlan::new(&mesh, 4);
        // Fully periodic: 3 faces per cell, no boundary.
        assert_eq!(plan.num_interior_faces(), 3 * 27);
        assert_eq!(plan.num_boundary_faces(), 0);
        assert_eq!(plan.num_faces(), 81);
        assert_eq!(plan.num_shards(), 7);
        assert_eq!(plan.shard_range(6), 24..27);
    }

    #[test]
    fn mixed_boundary_counts() {
        let mesh = StructuredMesh::new(
            [3, 2, 2],
            [0.0; 3],
            [1.0; 3],
            [
                BoundaryKind::Outflow,
                BoundaryKind::Reflective,
                BoundaryKind::Periodic,
            ],
        );
        let plan = ShardPlan::new(&mesh, 5);
        // x: 2 interior planes of 4 faces; y: 1 plane of 6; z: 2 periodic
        // planes of 6.
        assert_eq!(plan.num_interior_faces(), 2 * 4 + 6 + 2 * 6);
        // x: 2 boundary planes of 4; y: 2 of 6; z: none.
        assert_eq!(plan.num_boundary_faces(), 2 * 4 + 2 * 6);
        assert_eq!(
            plan.num_faces(),
            plan.num_interior_faces() + plan.num_boundary_faces()
        );
    }

    #[test]
    fn slots_agree_across_interior_faces() {
        let mesh = StructuredMesh::new(
            [3, 3, 2],
            [0.0; 3],
            [1.0; 3],
            [
                BoundaryKind::Periodic,
                BoundaryKind::Outflow,
                BoundaryKind::Reflective,
            ],
        );
        let plan = ShardPlan::new(&mesh, 4);
        for c in 0..mesh.num_cells() {
            for face in Face::ALL {
                let id = plan.cell_faces(c)[face.index()];
                match (mesh.neighbor(c, face), plan.face(id)) {
                    (Neighbor::Cell(nb), FaceTopo::Interior { dim, lower, upper }) => {
                        assert_eq!(dim, face.dim);
                        // Same id from both sides.
                        assert_eq!(plan.cell_faces(nb)[face.opposite().index()], id);
                        if face.side == 1 {
                            assert_eq!((lower, upper), (c, nb));
                        } else {
                            assert_eq!((lower, upper), (nb, c));
                        }
                    }
                    (
                        Neighbor::Boundary(bk),
                        FaceTopo::Boundary {
                            dim,
                            cell,
                            side,
                            kind,
                        },
                    ) => {
                        assert_eq!((dim, cell, side), (face.dim, c, face.side));
                        assert_eq!(kind, bk);
                    }
                    (nb, topo) => panic!("slot/face mismatch: {nb:?} vs {topo:?}"),
                }
            }
        }
    }

    #[test]
    fn extent_one_periodic_dimension_self_couples_through_one_face() {
        let mesh = StructuredMesh::new([1, 1, 2], [0.0; 3], [1.0; 3], [BoundaryKind::Periodic; 3]);
        let plan = ShardPlan::new(&mesh, 1);
        // Per cell: one self-face in x, one in y; z has two cells, two
        // periodic planes → 2 faces shared between them.
        assert_eq!(plan.num_interior_faces(), 2 * 2 + 2);
        for c in 0..2 {
            let slots = plan.cell_faces(c);
            // Lower and upper slot of a self-coupled dimension are the
            // same canonical face.
            assert_eq!(slots[0], slots[1]);
            assert_eq!(slots[2], slots[3]);
            assert_ne!(slots[4], slots[5]);
        }
    }

    #[test]
    fn ownership_is_contiguous_and_deps_contain_self() {
        let mesh = StructuredMesh::unit_cube(4);
        let plan = ShardPlan::new(&mesh, 7);
        let mut seen = 0;
        for s in 0..plan.num_shards() {
            let owned = plan.owned_faces(s);
            assert_eq!(owned.start, seen, "owned ranges must tile the ids");
            seen = owned.end;
            for id in owned {
                assert_eq!(plan.face_owner(id), s);
                // The owner is the lower/only cell's shard.
                let owner_cell = match plan.face(id) {
                    FaceTopo::Interior { lower, .. } => lower,
                    FaceTopo::Boundary { cell, .. } => cell,
                };
                assert_eq!(plan.shard_of(owner_cell), s);
            }
            assert!(plan.flux_deps(s).contains(&s));
            assert!(plan.apply_deps(s).contains(&s));
            assert!(plan.flux_deps(s).windows(2).all(|w| w[0] < w[1]));
            assert!(plan.apply_deps(s).windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(seen, plan.num_faces());
    }

    #[test]
    fn apply_deps_cover_every_touched_face_owner() {
        let mesh = StructuredMesh::new(
            [4, 2, 3],
            [0.0; 3],
            [1.0; 3],
            [
                BoundaryKind::Outflow,
                BoundaryKind::Periodic,
                BoundaryKind::Reflective,
            ],
        );
        let plan = ShardPlan::new(&mesh, 3);
        for s in 0..plan.num_shards() {
            for c in plan.shard_range(s) {
                for &id in plan.cell_faces(c) {
                    assert!(
                        plan.apply_deps(s).contains(&plan.face_owner(id)),
                        "shard {s} cell {c} face {id} owner missing"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "shard size must be at least 1")]
    fn zero_shard_size_panics() {
        ShardPlan::new(&StructuredMesh::unit_cube(2), 0);
    }
}
