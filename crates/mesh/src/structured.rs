//! Structured hexahedral meshes.
//!
//! The paper's measurements run on regular tree-structured Cartesian meshes
//! (Peano); all kernel work is element-local, so a structured box mesh with
//! face connectivity reproduces the measured code paths. Cells are unit-cube
//! reference elements mapped to physical space; curvilinear deformation is
//! layered on top via [`crate::curvilinear`].

/// Behaviour of a domain boundary face.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryKind {
    /// Wrap-around (used by all convergence tests).
    Periodic,
    /// Zero-gradient outflow (first-order absorbing).
    Outflow,
    /// Reflective wall (velocity components flip — interpretation is up to
    /// the Riemann solver).
    Reflective,
}

/// One of the six faces of a hexahedral cell: dimension `d` ∈ {0,1,2} and
/// side (0 = left/lower, 1 = right/upper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Face {
    /// Normal dimension.
    pub dim: usize,
    /// 0 = lower face, 1 = upper face.
    pub side: usize,
}

impl Face {
    /// All six faces in the order (−x, +x, −y, +y, −z, +z).
    pub const ALL: [Face; 6] = [
        Face { dim: 0, side: 0 },
        Face { dim: 0, side: 1 },
        Face { dim: 1, side: 0 },
        Face { dim: 1, side: 1 },
        Face { dim: 2, side: 0 },
        Face { dim: 2, side: 1 },
    ];

    /// Flat index 0..6.
    pub fn index(&self) -> usize {
        2 * self.dim + self.side
    }

    /// The matching face on the neighbouring cell.
    pub fn opposite(&self) -> Face {
        Face {
            dim: self.dim,
            side: 1 - self.side,
        }
    }
}

/// What lies across a cell face.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Neighbor {
    /// Interior (or periodic-wrapped) neighbour cell.
    Cell(usize),
    /// Domain boundary of the given kind.
    Boundary(BoundaryKind),
}

/// A structured box mesh of `dims[0] × dims[1] × dims[2]` hexahedral cells.
#[derive(Debug, Clone)]
pub struct StructuredMesh {
    /// Cells per dimension.
    pub dims: [usize; 3],
    /// Physical coordinates of the domain's lower corner.
    pub origin: [f64; 3],
    /// Physical edge lengths of the domain.
    pub extent: [f64; 3],
    /// Boundary behaviour per dimension (applies to both sides).
    pub boundary: [BoundaryKind; 3],
}

impl StructuredMesh {
    /// Uniform periodic mesh on the unit cube.
    pub fn unit_cube(cells_per_dim: usize) -> Self {
        Self {
            dims: [cells_per_dim; 3],
            origin: [0.0; 3],
            extent: [1.0; 3],
            boundary: [BoundaryKind::Periodic; 3],
        }
    }

    /// General box mesh.
    pub fn new(
        dims: [usize; 3],
        origin: [f64; 3],
        extent: [f64; 3],
        boundary: [BoundaryKind; 3],
    ) -> Self {
        assert!(dims.iter().all(|&d| d >= 1), "at least one cell per dim");
        assert!(extent.iter().all(|&e| e > 0.0), "positive extent");
        Self {
            dims,
            origin,
            extent,
            boundary,
        }
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Cell edge lengths.
    pub fn cell_size(&self) -> [f64; 3] {
        [
            self.extent[0] / self.dims[0] as f64,
            self.extent[1] / self.dims[1] as f64,
            self.extent[2] / self.dims[2] as f64,
        ]
    }

    /// Flat index of cell `(i, j, k)` (x fastest).
    pub fn cell_index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.dims[0] && j < self.dims[1] && k < self.dims[2]);
        (k * self.dims[1] + j) * self.dims[0] + i
    }

    /// Integer coordinates of a flat cell index.
    pub fn cell_coords(&self, idx: usize) -> [usize; 3] {
        debug_assert!(idx < self.num_cells());
        let i = idx % self.dims[0];
        let j = (idx / self.dims[0]) % self.dims[1];
        let k = idx / (self.dims[0] * self.dims[1]);
        [i, j, k]
    }

    /// Physical coordinates of the lower corner of a cell.
    pub fn cell_origin(&self, idx: usize) -> [f64; 3] {
        let c = self.cell_coords(idx);
        let h = self.cell_size();
        [
            self.origin[0] + c[0] as f64 * h[0],
            self.origin[1] + c[1] as f64 * h[1],
            self.origin[2] + c[2] as f64 * h[2],
        ]
    }

    /// Physical position of reference coordinate `xi` ∈ \[0,1\]³ inside a cell
    /// (before any curvilinear deformation).
    pub fn cell_point(&self, idx: usize, xi: [f64; 3]) -> [f64; 3] {
        let o = self.cell_origin(idx);
        let h = self.cell_size();
        [
            o[0] + xi[0] * h[0],
            o[1] + xi[1] * h[1],
            o[2] + xi[2] * h[2],
        ]
    }

    /// The physical centre of a cell.
    pub fn cell_center(&self, idx: usize) -> [f64; 3] {
        self.cell_point(idx, [0.5; 3])
    }

    /// What lies across `face` of cell `idx`.
    pub fn neighbor(&self, idx: usize, face: Face) -> Neighbor {
        let mut c = self.cell_coords(idx);
        let d = face.dim;
        let n = self.dims[d];
        if face.side == 0 {
            if c[d] == 0 {
                match self.boundary[d] {
                    BoundaryKind::Periodic => c[d] = n - 1,
                    kind => return Neighbor::Boundary(kind),
                }
            } else {
                c[d] -= 1;
            }
        } else if c[d] + 1 == n {
            match self.boundary[d] {
                BoundaryKind::Periodic => c[d] = 0,
                kind => return Neighbor::Boundary(kind),
            }
        } else {
            c[d] += 1;
        }
        Neighbor::Cell(self.cell_index(c[0], c[1], c[2]))
    }

    /// The cell containing physical point `x` (clamped to the domain).
    pub fn locate(&self, x: [f64; 3]) -> usize {
        let h = self.cell_size();
        let mut c = [0usize; 3];
        for d in 0..3 {
            let rel = (x[d] - self.origin[d]) / h[d];
            c[d] = (rel.floor().max(0.0) as usize).min(self.dims[d] - 1);
        }
        self.cell_index(c[0], c[1], c[2])
    }

    /// Reference coordinates of physical point `x` within its cell.
    pub fn to_reference(&self, cell: usize, x: [f64; 3]) -> [f64; 3] {
        let o = self.cell_origin(cell);
        let h = self.cell_size();
        [
            (x[0] - o[0]) / h[0],
            (x[1] - o[1]) / h[1],
            (x[2] - o[2]) / h[2],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let m = StructuredMesh::unit_cube(4);
        assert_eq!(m.num_cells(), 64);
        for idx in 0..m.num_cells() {
            let c = m.cell_coords(idx);
            assert_eq!(m.cell_index(c[0], c[1], c[2]), idx);
        }
    }

    #[test]
    fn geometry() {
        let m = StructuredMesh::new(
            [2, 4, 8],
            [1.0, 0.0, -1.0],
            [2.0, 4.0, 8.0],
            [BoundaryKind::Periodic; 3],
        );
        assert_eq!(m.cell_size(), [1.0; 3]);
        let idx = m.cell_index(1, 2, 3);
        assert_eq!(m.cell_origin(idx), [2.0, 2.0, 2.0]);
        assert_eq!(m.cell_center(idx), [2.5, 2.5, 2.5]);
        assert_eq!(m.cell_point(idx, [0.0, 1.0, 0.5]), [2.0, 3.0, 2.5]);
    }

    #[test]
    fn periodic_neighbors_wrap() {
        let m = StructuredMesh::unit_cube(3);
        let idx = m.cell_index(0, 1, 2);
        assert_eq!(
            m.neighbor(idx, Face { dim: 0, side: 0 }),
            Neighbor::Cell(m.cell_index(2, 1, 2))
        );
        assert_eq!(
            m.neighbor(idx, Face { dim: 2, side: 1 }),
            Neighbor::Cell(m.cell_index(0, 1, 0))
        );
        assert_eq!(
            m.neighbor(idx, Face { dim: 1, side: 1 }),
            Neighbor::Cell(m.cell_index(0, 2, 2))
        );
    }

    #[test]
    fn boundary_faces_report_kind() {
        let m = StructuredMesh::new(
            [2, 2, 2],
            [0.0; 3],
            [1.0; 3],
            [
                BoundaryKind::Outflow,
                BoundaryKind::Reflective,
                BoundaryKind::Periodic,
            ],
        );
        let idx = m.cell_index(0, 0, 0);
        assert_eq!(
            m.neighbor(idx, Face { dim: 0, side: 0 }),
            Neighbor::Boundary(BoundaryKind::Outflow)
        );
        assert_eq!(
            m.neighbor(idx, Face { dim: 1, side: 0 }),
            Neighbor::Boundary(BoundaryKind::Reflective)
        );
        assert_eq!(
            m.neighbor(idx, Face { dim: 2, side: 0 }),
            Neighbor::Cell(m.cell_index(0, 0, 1))
        );
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let m = StructuredMesh::unit_cube(3);
        for idx in 0..m.num_cells() {
            for face in Face::ALL {
                if let Neighbor::Cell(other) = m.neighbor(idx, face) {
                    assert_eq!(
                        m.neighbor(other, face.opposite()),
                        Neighbor::Cell(idx),
                        "idx={idx} face={face:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn locate_and_reference_coords() {
        let m = StructuredMesh::unit_cube(4);
        let x = [0.30, 0.60, 0.95];
        let cell = m.locate(x);
        assert_eq!(m.cell_coords(cell), [1, 2, 3]);
        let xi = m.to_reference(cell, x);
        assert!((xi[0] - 0.2).abs() < 1e-12);
        assert!((xi[1] - 0.4).abs() < 1e-12);
        assert!((xi[2] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn face_index_and_opposite() {
        for (i, f) in Face::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
            assert_eq!(f.opposite().opposite(), *f);
        }
    }
}
