//! Clustered local time stepping (LTS): the dt-cluster assigner and the
//! macro-cycle task graph over a level-aware [`ShardPlan`].
//!
//! Every cell gets a **cluster level** `L`: it advances with time steps
//! of `2^L` times the global stable dt (the minimum over all cells), so
//! a mesh whose stiffest cells are confined to one thin layer no longer
//! throttles everything else. Two rules shape the assignment
//! ([`assign_levels`]):
//!
//! * **power-of-two buckets** — a cell's level is the largest `L` with
//!   `dt_min · 2^L ≤ dt_cell` (capped at [`MAX_LTS_LEVEL`]), so cluster
//!   steps nest exactly inside each other;
//! * **2:1 gradation** — neighbouring cells differ by at most one level,
//!   so a face couples at most two sub-steps against one, and the coarse
//!   side's predictor needs exactly one extra half-window evaluation.
//!
//! [`LtsGraph`] unrolls one **macro cycle** (one coarsest-cluster step of
//! `2^Lmax` base *slots*) into a static task graph over the shards of a
//! level-aware [`ShardPlan`] (shards are level-uniform —
//! [`ShardPlan::with_levels`] cuts them at level changes). Per shard `s`
//! at level `L`:
//!
//! * `Predict(s, k)` — the space-time predictor over the shard's cells
//!   for its `k`-th sub-window (`k < 2^(Lmax−L)`), starting at slot
//!   `k·2^L`;
//! * `Flux(s, i)` — the once-per-face Riemann sweep over the shard's
//!   owned faces at slot `i·2^fc(s)` where `fc(s)` is the shard's
//!   **sweep cadence** (the minimum cadence over its owned faces; a
//!   face's cadence is the finer adjacent cell's level). A face of
//!   cadence `c` is re-solved at every slot divisible by `2^c`;
//! * `Apply(s, k)` — volume + six face corrections closing sub-window
//!   `k`.
//!
//! The dependency edges make every buffer's writer precede all its
//! readers *through the graph* (no lock is ever contended): a sweep
//! waits for the predictors of every shard adjacent to an active face,
//! an apply waits for its own predictor and the last sweep touching each
//! of its cells' faces inside the sub-window, and the next predictor of
//! a shard waits for its previous apply. Sweeps of one shard are chained
//! so the per-face flux accumulator (coarse side of a level-mismatched
//! face) sees its two sub-window contributions in order.

use crate::shard::{FaceTopo, ShardPlan};
use crate::structured::{Face, Neighbor, StructuredMesh};

/// Deepest cluster level the assigner hands out. Level `L` cells step at
/// `2^L` times the global stable dt, so 6 levels already cover a 64:1
/// per-cell dt contrast; beyond that the macro cycle's slot count (and
/// task-graph size) doubles per level for ever-rarer cells.
pub const MAX_LTS_LEVEL: u8 = 6;

/// Buckets cells into power-of-two dt-clusters.
///
/// `cell_dt[c]` is cell `c`'s own stable time step (its CFL bound). The
/// returned level vector satisfies, with `dt_min = min(cell_dt)`:
///
/// * **total & deterministic** — one level per cell, a pure function of
///   the inputs (exact f64 comparisons, no logarithms);
/// * **bucketed** — `dt_min · 2^level[c] ≤ cell_dt[c]` (doubling an f64
///   only touches the exponent, so the ladder is exact), with
///   `level[c] ≤ max_level`;
/// * **maximal up to gradation** — `level[c]` is the largest value
///   allowed by the bucket rule and the constraint that face-adjacent
///   cells differ by at most one level (the relaxation below converges
///   to the unique greatest such assignment).
///
/// Degenerate inputs (empty mesh, a non-finite or non-positive
/// `dt_min`) collapse to a single level-0 cluster; the engine surfaces
/// the degenerate dt itself.
///
/// # Panics
/// If `cell_dt.len()` differs from the mesh's cell count.
pub fn assign_levels(mesh: &StructuredMesh, cell_dt: &[f64], max_level: u8) -> Vec<u8> {
    assert_eq!(
        cell_dt.len(),
        mesh.num_cells(),
        "one stable dt per mesh cell"
    );
    let dt_min = cell_dt.iter().copied().fold(f64::INFINITY, f64::min);
    if !(dt_min.is_finite() && dt_min > 0.0) {
        return vec![0; cell_dt.len()];
    }
    let mut levels: Vec<u8> = cell_dt
        .iter()
        .map(|&dt_c| {
            // Largest L with dt_min·2^L ≤ dt_c: climb the exact
            // power-of-two ladder (cells with an unbounded dt, e.g. a
            // zero local wavespeed, saturate at max_level).
            let mut level = 0u8;
            let mut window = dt_min;
            while level < max_level && window * 2.0 <= dt_c {
                window *= 2.0;
                level += 1;
            }
            level
        })
        .collect();
    // 2:1 gradation: cap every cell at min(neighbour levels) + 1 until
    // nothing changes. Each pass only lowers levels, every cap is a
    // monotone function of the neighbour levels, and the result is
    // bounded below by 0 — so the relaxation reaches the unique
    // greatest fixpoint regardless of visit order (determinism does not
    // depend on the sweep direction).
    loop {
        let mut changed = false;
        for c in 0..cell_dt.len() {
            for face in Face::ALL {
                if let Neighbor::Cell(nb) = mesh.neighbor(c, face) {
                    let cap = levels[nb] + 1;
                    if levels[c] > cap {
                        levels[c] = cap;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    levels
}

/// One task of the LTS macro cycle (see the module docs for the slot
/// arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LtsTask {
    /// Space-time predictor of `shard` over its `step`-th sub-window.
    Predict {
        /// Shard index.
        shard: usize,
        /// Sub-window index, `0..2^(Lmax − level)`.
        step: usize,
    },
    /// Once-per-face flux sweep `sweep` over `shard`'s owned faces (the
    /// sweep covers slot `sweep · 2^sweep_cadence(shard)`; only owned
    /// faces whose cadence divides the slot are re-solved).
    Flux {
        /// Shard index.
        shard: usize,
        /// Sweep index, `0..2^(Lmax − sweep_cadence)`.
        sweep: usize,
    },
    /// Volume + face-correction application closing `shard`'s `step`-th
    /// sub-window.
    Apply {
        /// Shard index.
        shard: usize,
        /// Sub-window index, `0..2^(Lmax − level)`.
        step: usize,
    },
}

/// The static task graph of one LTS macro cycle over a level-aware
/// [`ShardPlan`]. With a single cluster (`num_levels() == 1`) it
/// degenerates to exactly one predict/flux/apply task per shard — the
/// same schedule as the global-dt sharded pipeline.
#[derive(Debug, Clone)]
pub struct LtsGraph {
    /// Base sub-steps (`2^Lmax`) per macro cycle.
    num_slots: usize,
    /// Task descriptors, indexed by task id.
    tasks: Vec<LtsTask>,
    /// Unmet-dependency counts per task (ready for
    /// `par::run_graph_init`-style schedulers).
    indegree: Vec<usize>,
    /// `dependents[t]` = tasks unblocked when `t` finishes.
    dependents: Vec<Vec<usize>>,
    /// Per-shard sweep cadence: min cadence over the shard's owned
    /// faces.
    sweep_cadence: Vec<u8>,
}

impl LtsGraph {
    /// Unrolls the macro cycle of `plan` into tasks and dependency
    /// edges. Deterministic: a pure function of the plan.
    pub fn build(plan: &ShardPlan) -> Self {
        let ns = plan.num_shards();
        let lmax = plan.num_levels() - 1;
        let num_slots = 1usize << lmax;

        let sweep_cadence: Vec<u8> = (0..ns)
            .map(|s| {
                plan.owned_faces(s)
                    .map(|id| plan.face_cadence(id))
                    .min()
                    // Every cell owns its three upper-side slots, so a
                    // shard always owns faces; the fallback is for the
                    // impossible empty case only.
                    .unwrap_or_else(|| plan.shard_level(s))
            })
            .collect();

        // Task-id layout: per shard, its predict steps, then its flux
        // sweeps, then its apply steps, shards in order.
        let mut p_base = vec![0usize; ns];
        let mut f_base = vec![0usize; ns];
        let mut a_base = vec![0usize; ns];
        let mut tasks = Vec::new();
        for s in 0..ns {
            let steps = 1usize << (lmax - plan.shard_level(s) as usize);
            let sweeps = 1usize << (lmax - sweep_cadence[s] as usize);
            p_base[s] = tasks.len();
            tasks.extend((0..steps).map(|step| LtsTask::Predict { shard: s, step }));
            f_base[s] = tasks.len();
            tasks.extend((0..sweeps).map(|sweep| LtsTask::Flux { shard: s, sweep }));
            a_base[s] = tasks.len();
            tasks.extend((0..steps).map(|step| LtsTask::Apply { shard: s, step }));
        }

        let n = tasks.len();
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n];
        for s in 0..ns {
            let level = plan.shard_level(s) as usize;
            let steps = 1usize << (lmax - level);
            let fc = sweep_cadence[s] as usize;
            let sweeps = 1usize << (lmax - fc);

            // A shard's own tasks are totally ordered through
            // P(k) → … → A(k) → P(k+1), which is what lets the engine
            // back each shard with plain (uncontended) buffers.
            for k in 1..steps {
                deps[p_base[s] + k].push(a_base[s] + (k - 1));
            }

            for i in 0..sweeps {
                let t = f_base[s] + i;
                if i > 0 {
                    // Sweep chain: orders the flux accumulator's
                    // overwrite-then-add pairs on mismatched faces.
                    deps[t].push(f_base[s] + (i - 1));
                }
                let slot = i << fc;
                for id in plan.owned_faces(s) {
                    let c = plan.face_cadence(id) as usize;
                    if slot & ((1usize << c) - 1) != 0 {
                        continue; // face not re-solved at this slot
                    }
                    // The sweep reads the adjacent cells' predictor
                    // traces for the sub-window containing `slot`.
                    let mut dep_on = |cell: usize| {
                        let cs = plan.shard_of(cell);
                        let window = slot >> plan.shard_level(cs) as usize;
                        deps[t].push(p_base[cs] + window);
                    };
                    match plan.face(id) {
                        FaceTopo::Interior { lower, upper, .. } => {
                            dep_on(lower);
                            dep_on(upper);
                        }
                        FaceTopo::Boundary { cell, .. } => dep_on(cell),
                    }
                }
            }

            for k in 0..steps {
                let t = a_base[s] + k;
                // The apply reads its own predictor's volume outputs …
                deps[t].push(p_base[s] + k);
                // … and, per touched face, the last sweep of the
                // owning shard that re-solved the face inside this
                // sub-window (slots [k·2^L, (k+1)·2^L)).
                for cell in plan.shard_range(s) {
                    for &id in plan.cell_faces(cell) {
                        let owner = plan.face_owner(id);
                        let c = plan.face_cadence(id) as usize;
                        let slot_last = ((k + 1) << level) - (1usize << c);
                        let sweep = slot_last >> sweep_cadence[owner] as usize;
                        deps[t].push(f_base[owner] + sweep);
                    }
                }
            }
        }

        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (t, ds) in deps.iter_mut().enumerate() {
            ds.sort_unstable();
            ds.dedup();
            for &d in ds.iter() {
                dependents[d].push(t);
                indegree[t] += 1;
            }
        }

        Self {
            num_slots,
            tasks,
            indegree,
            dependents,
            sweep_cadence,
        }
    }

    /// Base sub-steps per macro cycle (`2^Lmax`); the macro step length
    /// divided by this is the finest cluster's dt.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Total number of tasks in the macro cycle.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Descriptor of task `id`.
    pub fn task(&self, id: usize) -> LtsTask {
        self.tasks[id]
    }

    /// Unmet-dependency counts, indexed by task id.
    pub fn indegree(&self) -> &[usize] {
        &self.indegree
    }

    /// Dependency edges: `dependents()[t]` lists the tasks unblocked by
    /// `t` finishing.
    pub fn dependents(&self) -> &[Vec<usize>] {
        &self.dependents
    }

    /// Shard `s`'s sweep cadence: the minimum cadence over its owned
    /// faces. Sweep `i` of the shard covers slot `i · 2^cadence`.
    pub fn sweep_cadence(&self, s: usize) -> u8 {
        self.sweep_cadence[s]
    }

    /// The base slot covered by sweep `i` of shard `s`.
    pub fn sweep_slot(&self, s: usize, i: usize) -> usize {
        i << self.sweep_cadence[s] as usize
    }
}
