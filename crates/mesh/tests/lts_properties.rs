//! Seeded property tests for the LTS cluster assigner and macro task
//! graph (same style as the pool torture battery: random inputs from a
//! fixed-seed LCG, invariants checked exhaustively).
//!
//! Invariants pinned here:
//!
//! * buckets are powers of two of the global dt (`dt_min · 2^L ≤ dt_c`)
//!   and maximal up to the gradation constraint;
//! * face-adjacent cells differ by at most one level;
//! * the assignment is deterministic and total;
//! * the macro graph is acyclic and, executed in topological order,
//!   re-solves every face **exactly once** per due slot (exactly-once
//!   stamps) and steps every shard's predict/apply pair exactly once
//!   per sub-window.

use aderdg_mesh::{
    assign_levels, BoundaryKind, Face, LtsGraph, LtsTask, Neighbor, ShardPlan, StructuredMesh,
    MAX_LTS_LEVEL,
};
use aderdg_tensor::Lcg;
use std::collections::HashSet;

/// A random mesh (varied dims and boundary mix) plus a random per-cell
/// stable-dt field spanning several powers of two.
fn random_case(seed: u64) -> (StructuredMesh, Vec<f64>) {
    let mut rng = Lcg::new(seed);
    let dims = [rng.usize(1, 5), rng.usize(1, 5), rng.usize(1, 4)];
    let kinds = [
        BoundaryKind::Periodic,
        BoundaryKind::Outflow,
        BoundaryKind::Reflective,
    ];
    let boundary = [
        kinds[rng.usize(0, 3)],
        kinds[rng.usize(0, 3)],
        kinds[rng.usize(0, 3)],
    ];
    let mesh = StructuredMesh::new(dims, [0.0; 3], [1.0; 3], boundary);
    let cell_dt = (0..mesh.num_cells())
        .map(|_| rng.f64(1.0, 300.0) * 1e-4)
        .collect();
    (mesh, cell_dt)
}

#[test]
fn levels_are_power_of_two_buckets_total_and_deterministic() {
    for seed in [1u64, 7, 42, 1234, 98765] {
        let (mesh, cell_dt) = random_case(seed);
        let levels = assign_levels(&mesh, &cell_dt, MAX_LTS_LEVEL);
        assert_eq!(levels.len(), mesh.num_cells(), "total assignment");
        // Deterministic: a second run is identical.
        assert_eq!(levels, assign_levels(&mesh, &cell_dt, MAX_LTS_LEVEL));

        let dt_min = cell_dt.iter().copied().fold(f64::INFINITY, f64::min);
        for (c, &l) in levels.iter().enumerate() {
            assert!(l <= MAX_LTS_LEVEL);
            // Bucket rule: the cluster step never exceeds the cell's
            // own stable dt (power-of-two scaling is exact in f64).
            let window = dt_min * (1u64 << l) as f64;
            assert!(
                window <= cell_dt[c],
                "seed {seed} cell {c}: dt_min·2^{l} = {window} > {}",
                cell_dt[c]
            );
        }
        // The stiffest cell anchors level 0.
        assert!(levels.contains(&0));
    }
}

#[test]
fn neighbouring_cells_differ_by_at_most_one_level_and_levels_are_maximal() {
    for seed in [3u64, 11, 77, 4242] {
        let (mesh, cell_dt) = random_case(seed);
        let levels = assign_levels(&mesh, &cell_dt, MAX_LTS_LEVEL);
        let dt_min = cell_dt.iter().copied().fold(f64::INFINITY, f64::min);
        for c in 0..mesh.num_cells() {
            let mut min_nb = u8::MAX;
            for face in Face::ALL {
                if let Neighbor::Cell(nb) = mesh.neighbor(c, face) {
                    let d = levels[c].abs_diff(levels[nb]);
                    assert!(d <= 1, "seed {seed}: cells {c}/{nb} differ by {d} levels");
                    min_nb = min_nb.min(levels[nb]);
                }
            }
            // Maximality: a cell sits below its bucket level only when a
            // neighbour pins it (gradation), never gratuitously.
            let l = levels[c];
            let bucket_allows_more =
                l < MAX_LTS_LEVEL && dt_min * (1u64 << (l + 1)) as f64 <= cell_dt[c];
            if bucket_allows_more {
                assert!(
                    min_nb != u8::MAX && l == min_nb + 1,
                    "seed {seed} cell {c}: level {l} not maximal and not neighbour-pinned"
                );
            }
        }
    }
}

#[test]
fn degenerate_dt_fields_collapse_to_one_cluster() {
    let mesh = StructuredMesh::unit_cube(2);
    let cells = mesh.num_cells();
    // A non-positive dt anywhere poisons dt_min → single cluster (the
    // engine surfaces the degenerate dt itself); a NaN loses against
    // any finite dt in the min and its cell conservatively stays at
    // level 0.
    for bad in [f64::NAN, 0.0, -1.0] {
        let mut dt = vec![1.0; cells];
        dt[3] = bad;
        assert_eq!(assign_levels(&mesh, &dt, MAX_LTS_LEVEL), vec![0u8; cells]);
    }
    // An unbounded cell dt (zero local wavespeed) saturates at the cap
    // and is then pulled down to one level above its neighbours.
    let mut dt = vec![1.0; cells];
    dt[3] = f64::INFINITY;
    let levels = assign_levels(&mesh, &dt, MAX_LTS_LEVEL);
    for (c, &l) in levels.iter().enumerate() {
        assert_eq!(l, u8::from(c == 3));
    }
    // Uniform dt is one cluster too.
    assert_eq!(
        assign_levels(&mesh, &vec![0.25; cells], MAX_LTS_LEVEL),
        vec![0u8; cells]
    );
}

/// Executes the graph in Kahn (topological) order, checking acyclicity,
/// and returns the visit order.
fn kahn_order(graph: &LtsGraph) -> Vec<usize> {
    let mut indegree = graph.indegree().to_vec();
    let mut ready: Vec<usize> = (0..graph.num_tasks())
        .filter(|&t| indegree[t] == 0)
        .collect();
    let mut order = Vec::with_capacity(graph.num_tasks());
    while let Some(t) = ready.pop() {
        order.push(t);
        for &d in &graph.dependents()[t] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                ready.push(d);
            }
        }
    }
    assert_eq!(
        order.len(),
        graph.num_tasks(),
        "macro task graph must be acyclic"
    );
    order
}

/// A level-aware plan from a random case, exercising varied shard sizes.
fn random_plan(seed: u64) -> ShardPlan {
    let mut rng = Lcg::new(seed);
    let (mesh, cell_dt) = random_case(seed);
    let levels = assign_levels(&mesh, &cell_dt, MAX_LTS_LEVEL);
    let shard_size = rng.usize(1, mesh.num_cells() + 1);
    ShardPlan::with_levels(&mesh, shard_size, &levels)
}

#[test]
fn level_aware_plans_are_level_uniform_and_tile_the_mesh() {
    for seed in [2u64, 13, 99, 7777] {
        let plan = random_plan(seed);
        let mut next = 0;
        for s in 0..plan.num_shards() {
            let range = plan.shard_range(s);
            assert_eq!(range.start, next, "shard ranges must tile the cells");
            assert!(!range.is_empty());
            assert!(range.len() <= plan.shard_size());
            next = range.end;
            for c in range {
                assert_eq!(plan.shard_of(c), s);
            }
        }
        assert_eq!(next, plan.num_cells());
    }
}

#[test]
fn macro_graph_stamps_every_face_exactly_once_per_due_slot() {
    for seed in [5u64, 21, 303, 55555] {
        let plan = random_plan(seed);
        let graph = LtsGraph::build(&plan);
        let slots = graph.num_slots();
        let order = kahn_order(&graph);

        // Replay the schedule, stamping (face, slot) per re-solve and
        // (shard, step) per predict/apply — the exactly-once ledger.
        let mut face_stamps: HashSet<(usize, usize)> = HashSet::new();
        let mut predict_stamps: HashSet<(usize, usize)> = HashSet::new();
        let mut apply_stamps: HashSet<(usize, usize)> = HashSet::new();
        for &t in &order {
            match graph.task(t) {
                LtsTask::Predict { shard, step } => {
                    assert!(predict_stamps.insert((shard, step)), "duplicate predict");
                }
                LtsTask::Apply { shard, step } => {
                    // The matching predictor ran first (graph edge).
                    assert!(predict_stamps.contains(&(shard, step)));
                    assert!(apply_stamps.insert((shard, step)), "duplicate apply");
                }
                LtsTask::Flux { shard, sweep } => {
                    let slot = graph.sweep_slot(shard, sweep);
                    for id in plan.owned_faces(shard) {
                        let c = plan.face_cadence(id) as usize;
                        if slot % (1 << c) != 0 {
                            continue;
                        }
                        assert!(
                            face_stamps.insert((id, slot)),
                            "seed {seed}: face {id} re-solved twice at slot {slot}"
                        );
                    }
                }
            }
        }

        // Coverage: every face carries exactly its due slots, no more.
        let mut expected_faces = 0;
        for id in 0..plan.num_faces() {
            let c = plan.face_cadence(id) as usize;
            for slot in (0..slots).step_by(1 << c) {
                assert!(
                    face_stamps.contains(&(id, slot)),
                    "seed {seed}: face {id} missing its slot-{slot} re-solve"
                );
                expected_faces += 1;
            }
        }
        assert_eq!(face_stamps.len(), expected_faces, "no stray face solves");

        // Every shard stepped each of its sub-windows exactly once.
        let mut expected_steps = 0;
        for s in 0..plan.num_shards() {
            let steps = slots >> plan.shard_level(s);
            for k in 0..steps {
                assert!(predict_stamps.contains(&(s, k)));
                assert!(apply_stamps.contains(&(s, k)));
            }
            expected_steps += steps;
        }
        assert_eq!(predict_stamps.len(), expected_steps);
        assert_eq!(apply_stamps.len(), expected_steps);
    }
}

#[test]
fn single_cluster_graph_degenerates_to_one_task_triple_per_shard() {
    let mesh = StructuredMesh::unit_cube(3);
    let levels = vec![0u8; mesh.num_cells()];
    let flat = ShardPlan::with_levels(&mesh, 4, &levels);
    let plain = ShardPlan::new(&mesh, 4);
    // The degenerate level-aware partition matches the plain one.
    assert_eq!(flat.num_shards(), plain.num_shards());
    for s in 0..flat.num_shards() {
        assert_eq!(flat.shard_range(s), plain.shard_range(s));
        assert_eq!(flat.owned_faces(s), plain.owned_faces(s));
        assert_eq!(flat.shard_level(s), 0);
    }
    assert_eq!(flat.num_levels(), 1);

    let graph = LtsGraph::build(&flat);
    assert_eq!(graph.num_slots(), 1);
    assert_eq!(graph.num_tasks(), 3 * flat.num_shards());
    kahn_order(&graph);
}
