//! The kernel registry — open-ended dispatch for Space-Time Predictor
//! implementations.
//!
//! The paper's Toolkit resolves the `kernel = …` line of the specification
//! file to a generated kernel (Sec. II-C/D). [`KernelRegistry`] is that
//! resolution step made extensible: kernels are registered by name, the
//! engine and [`SolverSpec`](crate::spec::SolverSpec) resolve them through
//! [`KernelRegistry::global`], and the equivalence tests and figure
//! harnesses enumerate whatever is registered. A new variant is one new
//! module implementing [`StpKernel`] plus one
//! [`register`](KernelRegistry::register) call — no
//! enum, no match arms, no test edits. Kernels opt into the engine's
//! batched cell-block pipeline by overriding
//! [`run_block`](crate::kernels::StpKernel::run_block).

use crate::kernels::{aosoa, generic, log, onthefly, splitck, StpKernel};
use std::sync::{OnceLock, RwLock};

/// A named collection of [`StpKernel`] implementations.
///
/// Thread-safe: registration and resolution may happen concurrently (the
/// engine resolves once at construction, never in the hot loop).
pub struct KernelRegistry {
    kernels: RwLock<Vec<&'static dyn StpKernel>>,
}

impl KernelRegistry {
    /// Creates an empty registry (tests, custom kernel sets).
    pub fn new() -> Self {
        Self {
            kernels: RwLock::new(Vec::new()),
        }
    }

    /// The process-wide registry, seeded with the paper's four variants
    /// plus the rejected on-the-fly-transpose design (Sec. V-A), which
    /// rides along so the ablation harness and the equivalence matrix
    /// exercise it like any other kernel.
    pub fn global() -> &'static KernelRegistry {
        static GLOBAL: OnceLock<KernelRegistry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let registry = KernelRegistry::new();
            registry.register(&generic::GenericKernel);
            registry.register(&log::LogKernel);
            registry.register(&splitck::SplitCkKernel);
            registry.register(&aosoa::AosoaKernel);
            registry.register(&onthefly::OnTheFlyKernel);
            registry
        })
    }

    /// Registers a kernel.
    ///
    /// # Panics
    /// If a kernel with the same name is already registered — names are
    /// the resolution key, so a collision is a programming error.
    pub fn register(&self, kernel: &'static dyn StpKernel) {
        // PANIC-OK: registry poisoning means a register/resolve call
        // panicked; no sane recovery exists (×4 in this impl).
        let mut kernels = self.kernels.write().expect("kernel registry poisoned");
        assert!(
            !kernels.iter().any(|k| k.name() == kernel.name()),
            "kernel `{}` registered twice",
            kernel.name()
        );
        kernels.push(kernel);
    }

    /// Resolves a kernel by its registry key (the specification-file
    /// name, e.g. `splitck`).
    pub fn resolve(&self, name: &str) -> Option<&'static dyn StpKernel> {
        self.kernels
            .read()
            // PANIC-OK: poisoned registry (see `register`).
            .expect("kernel registry poisoned")
            .iter()
            .copied()
            .find(|k| k.name() == name)
    }

    /// Every registered kernel, in registration order.
    pub fn kernels(&self) -> Vec<&'static dyn StpKernel> {
        self.kernels
            .read()
            // PANIC-OK: poisoned registry (see `register`).
            .expect("kernel registry poisoned")
            .clone()
    }

    /// Registry keys of every registered kernel, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.kernels
            .read()
            // PANIC-OK: poisoned registry (see `register`).
            .expect("kernel registry poisoned")
            .iter()
            .map(|k| k.name())
            .collect()
    }
}

impl Default for KernelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for KernelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KernelRegistry")
            .field("kernels", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_has_paper_variants_and_onthefly() {
        let names = KernelRegistry::global().names();
        for expected in ["generic", "log", "splitck", "aosoa_splitck", "onthefly"] {
            assert!(
                names.contains(&expected),
                "missing `{expected}` in {names:?}"
            );
        }
    }

    #[test]
    fn resolve_finds_registered_and_rejects_unknown() {
        let registry = KernelRegistry::global();
        assert_eq!(registry.resolve("splitck").unwrap().name(), "splitck");
        assert!(registry.resolve("turbo").is_none());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let registry = KernelRegistry::new();
        registry.register(&generic::GenericKernel);
        registry.register(&generic::GenericKernel);
    }

    #[test]
    fn custom_registry_is_independent() {
        let registry = KernelRegistry::new();
        assert!(registry.kernels().is_empty());
        registry.register(&splitck::SplitCkKernel);
        assert_eq!(registry.names(), vec!["splitck"]);
    }
}
