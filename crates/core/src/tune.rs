//! Plan-time autotuning: model-driven selection of the predictor block
//! size and the GEMM backend.
//!
//! The paper's Sec. IV ties kernel performance to whether the predictor's
//! temporaries stay cache-resident. The engine's original block-size pick
//! ([`auto_block_size`]) encoded that insight as a hard-coded budget
//! (largest `B ≤ 16` with `B · footprint ≤ 512 KiB`). This module replaces
//! the magic constant with a measurement-driven decision:
//!
//! 1. **footprint** — the kernel's block scratch defines the candidate
//!    working sets,
//! 2. **cachesim** — each candidate block size replays the kernel's block
//!    access pattern ([`trace_block_batch`]) through a scaled Skylake-SP
//!    LRU hierarchy ([`ScaledCacheSim`]); misses are charged by the
//!    machine model and per-block overheads amortize with `B`
//!    ([`BlockCostModel`]),
//! 3. **probe** (opt-in) — the top model candidates are re-ranked by
//!    actually timing [`StpKernel::run_block`] on synthetic cells, and the
//!    GEMM backend is picked by measured ranking
//!    ([`aderdg_gemm::rank_backends`]) instead of widest-first,
//! 4. **plan** — the winning block size and backend are recorded in a
//!    [`TuneReport`] the engine exposes and the bench binaries print.
//!
//! The three [`TuningMode`]s trade fidelity against hermeticity: `static`
//! reproduces the original heuristic exactly (bit-stable CI), `model`
//! (the default) is deterministic simulation, `probe` times real code and
//! is as machine-dependent as the hardware it runs on.

use crate::block::{BlockInputs, CellBlock};
use crate::engine::auto_block_size;
use crate::kernels::{StpKernel, StpOutputs};
use crate::plan::{KernelVariant, StpPlan};
use crate::traces::trace_block_batch;
use aderdg_gemm::Isa;
use aderdg_pde::LinearPde;
use aderdg_perf::tuner::{
    best_candidate, probe_median_secs, BlockCostModel, Candidate, ScaledCacheSim,
};
use aderdg_quadrature::QuadratureRule;
use aderdg_tensor::SimdWidth;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// How the engine picks its predictor block size and GEMM backend at
/// construction time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TuningMode {
    /// The original footprint heuristic ([`auto_block_size`]) and the
    /// widest-supported GEMM backend. Fully hermetic: no simulation, no
    /// timing — byte-for-byte the pre-tuner behaviour, kept for CI and
    /// reproducible baselines.
    Static,
    /// Cache-simulation ranking (the default): candidate block sizes are
    /// replayed through the scaled Skylake-SP hierarchy and the cheapest
    /// predicted candidate wins. Deterministic for a fixed plan — no
    /// wall-clock input enters the decision.
    #[default]
    Model,
    /// Model ranking refined by in-process micro-probes: the top model
    /// candidates are timed with real `run_block` calls on synthetic
    /// cells, and GEMM backends are ranked by measured speed. Fastest in
    /// practice, but machine- and load-dependent.
    Probe,
}

impl TuningMode {
    /// Parses the specification-file value (`static` | `model` | `probe`).
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "static" => Some(TuningMode::Static),
            "model" => Some(TuningMode::Model),
            "probe" => Some(TuningMode::Probe),
            _ => None,
        }
    }

    /// The specification-file spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            TuningMode::Static => "static",
            TuningMode::Model => "model",
            TuningMode::Probe => "probe",
        }
    }
}

impl fmt::Display for TuningMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One evaluated block-size candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockCandidate {
    /// Cells per predictor block.
    pub block_size: usize,
    /// Modelled block-size-dependent cycles per cell (memory stalls of
    /// the replayed miss profile plus amortized per-block overhead; the
    /// block-size-independent compute cycles are excluded).
    pub predicted_cycles_per_cell: f64,
    /// L2 miss ratio of the replayed steady state — the cache-residency
    /// signal of the paper's analysis.
    pub l2_miss_ratio: f64,
    /// Measured microseconds per cell from the `probe` refinement, if this
    /// candidate was probed.
    pub probed_us_per_cell: Option<f64>,
}

/// One GEMM backend candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendCandidate {
    /// Backend name (`baseline` | `avx2` | `avx512`).
    pub name: &'static str,
    /// Whether the host passes the backend's runtime probe.
    pub supported: bool,
    /// Measured microseconds per GEMM call (probe mode only).
    pub probed_us: Option<f64>,
}

/// What the tuner decided and why — exposed via
/// [`Engine::tune_report`](crate::Engine::tune_report) and printed by the
/// bench binaries.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// The mode that produced this report.
    pub mode: TuningMode,
    /// Registry key of the tuned kernel.
    pub kernel: &'static str,
    /// The chosen predictor block size.
    pub block_size: usize,
    /// What the static footprint heuristic would have picked (always
    /// computed, for comparison).
    pub static_block_size: usize,
    /// Evaluated block-size candidates (empty when the choice was an
    /// explicit override, `static` mode, or a kernel without a block
    /// access model).
    pub block_candidates: Vec<BlockCandidate>,
    /// Name of the chosen GEMM backend.
    pub backend: &'static str,
    /// Considered GEMM backends (probe times filled in `probe` mode).
    pub backend_candidates: Vec<BackendCandidate>,
}

impl fmt::Display for TuneReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tune[{} mode={}]: block_size={} (static heuristic {}), gemm={}",
            self.kernel, self.mode, self.block_size, self.static_block_size, self.backend
        )?;
        if !self.block_candidates.is_empty() {
            writeln!(
                f,
                "  {:>4} {:>16} {:>10} {:>14}",
                "B", "pred cyc/cell", "L2 miss%", "probe µs/cell"
            )?;
            for c in &self.block_candidates {
                let probe = c
                    .probed_us_per_cell
                    .map(|t| format!("{t:.2}"))
                    .unwrap_or_else(|| "-".into());
                let mark = if c.block_size == self.block_size {
                    "*"
                } else {
                    " "
                };
                writeln!(
                    f,
                    "  {:>3}{mark} {:>16.1} {:>9.1}% {:>14}",
                    c.block_size,
                    c.predicted_cycles_per_cell,
                    c.l2_miss_ratio * 100.0,
                    probe
                )?;
            }
        }
        Ok(())
    }
}

/// Block sizes the tuner evaluates (all `≤` the engine's block-size cap).
pub const BLOCK_CANDIDATES: [usize; 5] = [1, 2, 4, 8, 16];

/// Cache-simulation granularity: one simulated line stands for 16 real
/// lines (1 KiB), keeping the plan-time replay cheap while the tuned
/// buffers (tens of KiB to MiB) still resolve sharply.
const SIM_SCALE: usize = 16;

/// Blocks replayed for the steady-state measurement (after one warm-up
/// block).
const SIM_BLOCKS: usize = 2;

/// How many of the best model candidates the probe refinement re-times.
const PROBE_TOP: usize = 3;

/// Timed repetitions per probe (median taken).
const PROBE_REPS: usize = 3;

/// The paper variant whose *blocked* access pattern models this kernel,
/// if it has one. Kernels running the per-cell `run_block` fallback have
/// no block-size-dependent access pattern, so the model has nothing to
/// rank and the tuner keeps the static heuristic for them.
fn variant_with_block_model(kernel_name: &str) -> Option<KernelVariant> {
    match kernel_name {
        "generic" => Some(KernelVariant::Generic),
        "aosoa_splitck" => Some(KernelVariant::AoSoASplitCk),
        _ => None,
    }
}

/// Costs every [`BLOCK_CANDIDATES`] entry for `kernel_name` under `plan`
/// by cache-simulated replay, or `None` if the kernel has no block access
/// model. Deterministic: repeated calls yield identical candidates.
pub fn model_block_candidates(
    plan: &StpPlan,
    kernel_name: &str,
    has_ncp: bool,
) -> Option<Vec<BlockCandidate>> {
    let variant = variant_with_block_model(kernel_name)?;
    let model = BlockCostModel::skylake_sp();
    Some(
        BLOCK_CANDIDATES
            .iter()
            .map(|&bs| {
                let mut sim = ScaledCacheSim::skylake_sp(SIM_SCALE);
                // Warm-up block: compulsory misses of the reused scratch.
                trace_block_batch(plan, variant, has_ncp, bs, 1, &mut sim);
                sim.reset_stats();
                let stages = trace_block_batch(plan, variant, has_ncp, bs, SIM_BLOCKS, &mut sim)
                    // PANIC-OK: internal invariant — the caller already
                    // checked this variant has a trace model.
                    .expect("variant has a block model");
                let stats = sim.stats();
                BlockCandidate {
                    block_size: bs,
                    predicted_cycles_per_cell: model.cycles_per_cell(
                        &stats,
                        bs * SIM_BLOCKS,
                        SIM_BLOCKS,
                        stages,
                    ),
                    l2_miss_ratio: stats.l2.miss_ratio(),
                    probed_us_per_cell: None,
                }
            })
            .collect(),
    )
}

/// The model's pick from a candidate slate: the block size with the
/// lowest predicted cost (first wins ties). This is the *single* place
/// the selection rule lives — the engine (`model` mode) and the
/// `block_sweep` compare harness both route through it, so the bench
/// always validates exactly the pick the engine acts on.
///
/// # Panics
/// If `candidates` is empty.
pub fn best_predicted_block_size(candidates: &[BlockCandidate]) -> usize {
    best_candidate(
        &candidates
            .iter()
            .map(|c| Candidate {
                value: c.block_size,
                cost: c.predicted_cycles_per_cell,
            })
            .collect::<Vec<_>>(),
    )
    // PANIC-OK: documented contract (`# Panics` above).
    .expect("candidate slate is never empty")
}

/// Everything the replay depends on — the memo key for
/// [`model_block_candidates`] results (engines are constructed far more
/// often than distinct plans appear, especially in tests).
type ModelKey = (&'static str, usize, usize, SimdWidth, QuadratureRule, bool);

fn cached_model_candidates(
    plan: &StpPlan,
    kernel: &'static dyn StpKernel,
    has_ncp: bool,
) -> Option<Vec<BlockCandidate>> {
    static MEMO: OnceLock<Mutex<HashMap<ModelKey, Option<Vec<BlockCandidate>>>>> = OnceLock::new();
    let key: ModelKey = (
        kernel.name(),
        plan.n(),
        plan.m(),
        plan.cfg.width,
        plan.cfg.rule,
        has_ncp,
    );
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    // PANIC-OK: memo poisoning means a model run panicked; cascade.
    if let Some(hit) = memo.lock().expect("tuner memo poisoned").get(&key) {
        return hit.clone();
    }
    let computed = model_block_candidates(plan, kernel.name(), has_ncp);
    memo.lock()
        // PANIC-OK: memo poisoning means a model run panicked; cascade.
        .expect("tuner memo poisoned")
        .insert(key, computed.clone());
    computed
}

/// Times one `run_block` invocation at block size `bs` on seeded synthetic
/// cells; returns median seconds per call.
fn probe_run_block(
    plan: &StpPlan,
    kernel: &'static dyn StpKernel,
    pde: &dyn LinearPde,
    bs: usize,
) -> f64 {
    let mut scratch = kernel.make_block_scratch(plan, bs);
    let mut block = CellBlock::new(plan, bs);
    let mut rng = aderdg_tensor::Lcg::new(0xB10C + bs as u64);
    for _ in 0..bs {
        // Positive O(1) values for every stored quantity (including
        // material parameters) keep the user functions away from
        // denormals and divisions by ~0, which would distort timing.
        block.push(&rng.vec(plan.aos.len(), 0.5, 1.5));
    }
    let mut outs: Vec<StpOutputs> = (0..bs).map(|_| StpOutputs::new(plan)).collect();
    let sources = vec![None; bs];
    probe_median_secs(PROBE_REPS, || {
        let inputs = BlockInputs::new(&block, 1e-3, &sources);
        kernel.run_block(plan, pde, scratch.as_mut(), &inputs, &mut outs);
    })
}

/// Probe refinement: re-times the `PROBE_TOP` cheapest model candidates
/// with real `run_block` calls and returns the measured winner.
fn probe_block_size(
    plan: &StpPlan,
    kernel: &'static dyn StpKernel,
    pde: &dyn LinearPde,
    candidates: &mut [BlockCandidate],
) -> usize {
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        candidates[a]
            .predicted_cycles_per_cell
            .total_cmp(&candidates[b].predicted_cycles_per_cell)
    });
    let mut best = (candidates[order[0]].block_size, f64::INFINITY);
    for &i in order.iter().take(PROBE_TOP) {
        let bs = candidates[i].block_size;
        let secs = probe_run_block(plan, kernel, pde, bs);
        let us_per_cell = secs * 1e6 / bs as f64;
        candidates[i].probed_us_per_cell = Some(us_per_cell);
        if us_per_cell < best.1 {
            best = (bs, us_per_cell);
        }
    }
    best.0
}

/// The ISA cap implied by a plan's SIMD width (the paper's
/// narrower-build comparisons cap the GEMM backend the same way).
fn isa_cap(plan: &StpPlan) -> Isa {
    match plan.cfg.width {
        SimdWidth::W2 => Isa::Baseline,
        SimdWidth::W4 => Isa::Avx2,
        SimdWidth::W8 => Isa::Avx512,
    }
}

/// Selects the GEMM backend: widest-supported in `static`/`model` modes
/// (the existing plan-time pick), measured ranking over the plan's fused
/// z-derivative GEMM — its largest shape — in `probe` mode. The probe
/// spec follows the layout the kernel actually dispatches: hybrid-layout
/// kernels (`aosoa_splitck`, `onthefly`) execute the AoSoA plans, every
/// other kernel the AoS ones — ranking the wrong shape could crown a
/// backend the plan never benefits from.
fn tune_backend(
    plan: &StpPlan,
    kernel_name: &str,
    mode: TuningMode,
) -> (&'static str, Vec<BackendCandidate>) {
    let cap = isa_cap(plan);
    match mode {
        TuningMode::Static | TuningMode::Model => {
            let chosen = plan.gemm_backend().name();
            let candidates = aderdg_gemm::backends()
                .iter()
                .filter(|b| b.isa() <= cap)
                .map(|b| BackendCandidate {
                    name: b.name(),
                    supported: b.supported(),
                    probed_us: None,
                })
                .collect();
            (chosen, candidates)
        }
        TuningMode::Probe => {
            // An explicit environment override (ADERDG_GEMM_BACKEND)
            // outranks the probe — the forced-backend CI legs must not be
            // un-forced by a measurement.
            if let Some(forced) = std::env::var(aderdg_gemm::BACKEND_ENV)
                .ok()
                .and_then(|name| aderdg_gemm::backend_by_name(&name))
                .filter(|b| b.supported())
            {
                let candidates = vec![BackendCandidate {
                    name: forced.name(),
                    supported: true,
                    probed_us: None,
                }];
                return (forced.name(), candidates);
            }
            // Hybrid-layout kernels dispatch the *batched* AoSoA path
            // (one `run_batched` per derivative sweep of the block —
            // backends differ there by their blocked overrides, not the
            // single-call body); everything else executes per-batch AoS
            // GEMMs. Probe the path that actually runs.
            let ranked = match kernel_name {
                "aosoa_splitck" | "onthefly" => {
                    let spec = *plan.gemm_aosoa[2].spec();
                    let stride = plan.aosoa.len();
                    let batch = aderdg_gemm::GemmBatch::shared_a(4, stride, stride);
                    aderdg_gemm::rank_backends_batched(&spec, &batch, cap, PROBE_REPS)
                }
                _ => {
                    let spec = *plan.gemm_aos[2].spec();
                    aderdg_gemm::rank_backends(&spec, cap, PROBE_REPS)
                }
            };
            let chosen = ranked
                .first()
                .map(|(b, _)| b.name())
                .unwrap_or_else(|| plan.gemm_backend().name());
            let candidates = ranked
                .iter()
                .map(|&(b, secs)| BackendCandidate {
                    name: b.name(),
                    supported: true,
                    probed_us: Some(secs * 1e6),
                })
                .collect();
            (chosen, candidates)
        }
    }
}

/// Runs the tuner against a caller-fixed plan.
///
/// `block_override` is the engine config's explicit `block_size`: when
/// set, block-size tuning is skipped entirely (the report records the
/// override) and only the backend choice follows `mode`.
///
/// The reported backend is a *recommendation* — this function never
/// rebuilds the plan, so in `probe` mode the block-size timings reflect
/// the plan's current backend. [`tune_plan`] (what the engine uses)
/// resolves the backend first and block-tunes the plan that will
/// actually run.
pub fn tune(
    plan: &StpPlan,
    kernel: &'static dyn StpKernel,
    pde: &dyn LinearPde,
    mode: TuningMode,
    block_override: Option<usize>,
) -> TuneReport {
    let (backend, backend_candidates) = tune_backend(plan, kernel.name(), mode);
    let (block_size, static_block_size, block_candidates) =
        tune_block(plan, kernel, pde, mode, block_override);
    TuneReport {
        mode,
        kernel: kernel.name(),
        block_size,
        static_block_size,
        block_candidates,
        backend,
        backend_candidates,
    }
}

/// The block-size half of the tuner: `(pick, static pick, candidates)`.
fn tune_block(
    plan: &StpPlan,
    kernel: &'static dyn StpKernel,
    pde: &dyn LinearPde,
    mode: TuningMode,
    block_override: Option<usize>,
) -> (usize, usize, Vec<BlockCandidate>) {
    let static_block_size = auto_block_size(kernel.footprint_bytes(plan));
    let has_ncp = pde.has_ncp();
    let mut block_candidates = Vec::new();
    let block_size = if let Some(b) = block_override {
        b
    } else {
        match mode {
            TuningMode::Static => static_block_size,
            TuningMode::Model | TuningMode::Probe => {
                match cached_model_candidates(plan, kernel, has_ncp) {
                    // No block access model: the per-cell fallback makes
                    // every block size equivalent — keep the heuristic.
                    None => static_block_size,
                    Some(mut cands) => {
                        let pick = if mode == TuningMode::Probe {
                            probe_block_size(plan, kernel, pde, &mut cands)
                        } else {
                            best_predicted_block_size(&cands)
                        };
                        block_candidates = cands;
                        pick
                    }
                }
            }
        }
    };
    (block_size, static_block_size, block_candidates)
}

/// Builds and tunes the plan for one engine construction.
///
/// Decision order matters in `probe` mode: the GEMM backend is ranked
/// *first* and the plan rebuilt on the winner, so the subsequent
/// block-size probes time `run_block` on exactly the (backend, plan)
/// pair the engine will step with — a block size probed against a
/// backend the engine does not run could sit off the measured plateau.
/// In `static`/`model` mode the backend is the plan's own widest-first
/// pick, so no rebuild happens and the result equals [`tune`] on a
/// freshly built plan.
pub fn tune_plan(
    cfg: crate::plan::StpConfig,
    dx: [f64; 3],
    kernel: &'static dyn StpKernel,
    pde: &dyn LinearPde,
    mode: TuningMode,
    block_override: Option<usize>,
) -> (StpPlan, TuneReport) {
    let plan = StpPlan::new(cfg, dx);
    let (backend, backend_candidates) = tune_backend(&plan, kernel.name(), mode);
    let plan = if backend == plan.gemm_backend().name() {
        plan
    } else {
        let chosen = aderdg_gemm::backend_by_name(backend)
            // PANIC-OK: internal invariant — the ranking chose from the
            // registered-backend list.
            .expect("backend ranking only returns registered backends");
        StpPlan::with_gemm_backend(cfg, dx, chosen)
    };
    let (block_size, static_block_size, block_candidates) =
        tune_block(&plan, kernel, pde, mode, block_override);
    let report = TuneReport {
        mode,
        kernel: kernel.name(),
        block_size,
        static_block_size,
        block_candidates,
        backend,
        backend_candidates,
    };
    (plan, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::StpConfig;
    use crate::registry::KernelRegistry;
    use aderdg_pde::{Acoustic, Elastic};

    fn plan(n: usize, m: usize) -> StpPlan {
        StpPlan::new(StpConfig::new(n, m), [0.25; 3])
    }

    #[test]
    fn tuning_mode_parses_and_displays() {
        for (s, mode) in [
            ("static", TuningMode::Static),
            ("model", TuningMode::Model),
            ("probe", TuningMode::Probe),
        ] {
            assert_eq!(TuningMode::parse(s), Some(mode));
            assert_eq!(mode.to_string(), s);
        }
        assert_eq!(TuningMode::parse("magic"), None);
        assert_eq!(TuningMode::default(), TuningMode::Model);
    }

    #[test]
    fn model_candidates_cover_the_slate_and_are_deterministic() {
        let p = plan(5, 9);
        let a = model_block_candidates(&p, "aosoa_splitck", false).unwrap();
        let b = model_block_candidates(&p, "aosoa_splitck", false).unwrap();
        assert_eq!(a, b, "model mode must be deterministic");
        assert_eq!(
            a.iter().map(|c| c.block_size).collect::<Vec<_>>(),
            BLOCK_CANDIDATES.to_vec()
        );
        for c in &a {
            assert!(c.predicted_cycles_per_cell.is_finite());
            assert!((0.0..=1.0).contains(&c.l2_miss_ratio));
        }
    }

    #[test]
    fn per_cell_fallback_kernels_have_no_model() {
        let p = plan(4, 5);
        for name in ["splitck", "log", "onthefly", "no_such_kernel"] {
            assert!(model_block_candidates(&p, name, false).is_none());
        }
    }

    #[test]
    fn static_mode_reproduces_the_footprint_heuristic() {
        let p = plan(4, 5);
        for kernel in KernelRegistry::global().kernels() {
            let report = tune(&p, kernel, &Acoustic, TuningMode::Static, None);
            assert_eq!(
                report.block_size,
                auto_block_size(kernel.footprint_bytes(&p)),
                "kernel {}",
                kernel.name()
            );
            assert!(report.block_candidates.is_empty());
        }
    }

    #[test]
    fn override_skips_block_tuning() {
        let p = plan(4, 5);
        let kernel = KernelRegistry::global().resolve("generic").unwrap();
        let report = tune(&p, kernel, &Acoustic, TuningMode::Model, Some(7));
        assert_eq!(report.block_size, 7);
        assert!(report.block_candidates.is_empty());
    }

    #[test]
    fn model_mode_picks_within_the_cap_for_blocked_kernels() {
        let p = plan(6, 21);
        for name in ["generic", "aosoa_splitck"] {
            let kernel = KernelRegistry::global().resolve(name).unwrap();
            let report = tune(&p, kernel, &Elastic, TuningMode::Model, None);
            assert!(
                (1..=crate::engine::BLOCK_SIZE_CAP).contains(&report.block_size),
                "{name}: {}",
                report.block_size
            );
            assert_eq!(report.block_candidates.len(), BLOCK_CANDIDATES.len());
            assert_eq!(report.backend, p.gemm_backend().name());
        }
    }

    #[test]
    fn probe_mode_times_top_candidates_and_backends() {
        use aderdg_pde::LinearPde as _;
        let p = plan(3, Acoustic.num_quantities());
        let kernel = KernelRegistry::global().resolve("aosoa_splitck").unwrap();
        let report = tune(&p, kernel, &Acoustic, TuningMode::Probe, None);
        let probed = report
            .block_candidates
            .iter()
            .filter(|c| c.probed_us_per_cell.is_some())
            .count();
        assert_eq!(probed, PROBE_TOP.min(report.block_candidates.len()));
        assert!(!report.backend_candidates.is_empty());
        if std::env::var(aderdg_gemm::BACKEND_ENV).is_ok_and(|v| !v.is_empty()) {
            // Forced-backend CI legs: the probe is short-circuited to the
            // forced selection, so there is exactly one unprobed candidate.
            assert_eq!(report.backend_candidates.len(), 1);
        } else {
            assert!(report
                .backend_candidates
                .iter()
                .all(|b| b.probed_us.is_some()));
        }
        // The chosen backend is the fastest-ranked one.
        assert_eq!(report.backend, report.backend_candidates[0].name);
    }

    #[test]
    fn report_displays_choice_and_candidates() {
        let p = plan(4, 5);
        let kernel = KernelRegistry::global().resolve("generic").unwrap();
        let report = tune(&p, kernel, &Acoustic, TuningMode::Model, None);
        let text = report.to_string();
        assert!(text.contains("tune[generic mode=model]"));
        assert!(text.contains("static heuristic"));
        assert!(text.contains('*'), "the chosen candidate is marked");
    }
}
