//! A job queue over the [`ScenarioRegistry`] — N concurrent engine runs
//! multiplexed over the one shared worker pool.
//!
//! This is the "simulation as a service" half of the ExaHyPE-engine
//! story: the paper's kernels live inside a long-lived system serving
//! many configurations, not a one-shot binary. A [`JobQueue`] owns a
//! small set of job-runner threads; each pops a submitted `(scenario,
//! RunRequest)` pair and drives it to completion. The engines inside the
//! jobs all share the process-wide persistent thread pool
//! ([`crate::par`]) — parallel calls from concurrent jobs interleave at
//! batch granularity, so an 8-job queue needs 8 runner threads but only
//! one set of pool workers.
//!
//! Jobs are cooperative: every job carries a [`RunControl`] so it can be
//! paused to a checkpoint or cancelled at a step boundary, and a
//! panicking job (a kernel assertion, say) is caught and marked
//! [`JobStatus::Failed`] without taking the runner thread — or the
//! process — down with it. `aderdg-serve` exposes this queue over a
//! socket; `aderdg-run --sweep` drives it directly.

use crate::scenario::{
    RunControl, RunRequest, RunSummary, Scenario, ScenarioError, ScenarioRegistry,
};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Where a submitted job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Waiting for a runner thread.
    Queued,
    /// A runner thread is stepping it.
    Running,
    /// Completed successfully ([`Job::summary`] is available).
    Done,
    /// Stopped at a step boundary on a pause request; resumable from
    /// its checkpoint ([`Job::summary`] covers the completed part).
    Paused,
    /// Failed ([`Job::error`] has the message).
    Failed,
    /// Cancelled before completion.
    Cancelled,
}

impl JobStatus {
    /// True once the job will make no further progress (everything but
    /// `Queued`/`Running`).
    pub fn is_settled(self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }

    /// Lower-case protocol spelling (`queued`, `running`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Paused => "paused",
            JobStatus::Failed => "failed",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

/// The mutable half of a job, updated by the runner thread.
struct JobState {
    status: JobStatus,
    summary: Option<RunSummary>,
    error: Option<String>,
}

/// One submitted run: scenario, request, control handle and outcome.
pub struct Job {
    id: u64,
    scenario: &'static dyn Scenario,
    request: RunRequest,
    control: Arc<RunControl>,
    state: Mutex<JobState>,
    settled: Condvar,
}

/// Locks ignoring poisoning: job state is plain data, and a runner that
/// panicked between updates must not wedge every status query.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Job {
    /// The queue-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The scenario registry key this job runs.
    pub fn scenario_name(&self) -> &'static str {
        self.scenario.info().name
    }

    /// The request the job was submitted with.
    pub fn request(&self) -> &RunRequest {
        &self.request
    }

    /// The job's pause/cancel/progress handle.
    pub fn control(&self) -> &Arc<RunControl> {
        &self.control
    }

    /// The job's current status.
    pub fn status(&self) -> JobStatus {
        lock(&self.state).status
    }

    /// The run summary, once `Done` or `Paused`.
    pub fn summary(&self) -> Option<RunSummary> {
        lock(&self.state).summary.clone()
    }

    /// The failure message, once `Failed` or `Cancelled`.
    pub fn error(&self) -> Option<String> {
        lock(&self.state).error.clone()
    }

    /// Blocks until the job settles (done, paused, failed or cancelled)
    /// and returns the final status.
    pub fn wait(&self) -> JobStatus {
        let mut state = lock(&self.state);
        while !state.status.is_settled() {
            state = self
                .settled
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state.status
    }

    fn settle(&self, status: JobStatus, summary: Option<RunSummary>, error: Option<String>) {
        let mut state = lock(&self.state);
        state.status = status;
        state.summary = summary;
        state.error = error;
        drop(state);
        self.settled.notify_all();
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("scenario", &self.scenario_name())
            .field("status", &self.status())
            .finish()
    }
}

/// What the runner threads share with the queue handle.
struct Shared {
    pending: Mutex<VecDeque<Arc<Job>>>,
    available: Condvar,
    jobs: Mutex<Vec<Arc<Job>>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

/// A fixed-size pool of job-runner threads over the global
/// [`ScenarioRegistry`]. See the [module docs](self).
pub struct JobQueue {
    shared: Arc<Shared>,
    runners: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("jobs", &lock(&self.shared.jobs).len())
            .field("pending", &lock(&self.shared.pending).len())
            .finish_non_exhaustive()
    }
}

impl JobQueue {
    /// Starts a queue with `runners` job-runner threads (at least 1).
    /// Runners bound how many engines step *concurrently*; every engine
    /// still multiplexes over the one process-wide worker pool.
    pub fn new(runners: usize) -> Self {
        let shared = Arc::new(Shared {
            pending: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            jobs: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..runners.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("aderdg-job-{i}"))
                    .spawn(move || run_jobs(&shared))
                    // PANIC-OK: thread spawn fails only on OS resource
                    // exhaustion; a queue with no runners is unusable.
                    .expect("spawn job runner")
            })
            .collect();
        Self {
            shared,
            runners: Mutex::new(handles),
        }
    }

    /// Submits a scenario run. The scenario name is validated against
    /// the registry up front; the run itself starts when a runner
    /// thread frees up. If the request carries a [`RunControl`] it is
    /// kept (so a caller can arm `pause_at_step` before submitting);
    /// otherwise one is attached.
    pub fn submit(
        &self,
        scenario: &str,
        mut request: RunRequest,
    ) -> Result<Arc<Job>, ScenarioError> {
        // ORDERING: Relaxed — an advisory early-out; the authoritative
        // shutdown handshake happens under the `pending` mutex below.
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return Err(ScenarioError::new("job queue is shut down"));
        }
        let scenario = ScenarioRegistry::global()
            .resolve(scenario)
            .ok_or_else(|| {
                ScenarioError::new(format!(
                    "unknown scenario `{scenario}` (registered: {})",
                    ScenarioRegistry::global().names().join(", ")
                ))
            })?;
        let control = request
            .control
            .get_or_insert_with(|| Arc::new(RunControl::new()))
            .clone();
        let job = Arc::new(Job {
            // ORDERING: Relaxed — a unique-id counter; nothing else is
            // published through it.
            id: self.shared.next_id.fetch_add(1, Ordering::Relaxed),
            scenario,
            request,
            control,
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                summary: None,
                error: None,
            }),
            settled: Condvar::new(),
        });
        lock(&self.shared.jobs).push(Arc::clone(&job));
        lock(&self.shared.pending).push_back(Arc::clone(&job));
        self.shared.available.notify_one();
        Ok(job)
    }

    /// Looks a job up by id.
    pub fn job(&self, id: u64) -> Option<Arc<Job>> {
        lock(&self.shared.jobs).iter().find(|j| j.id == id).cloned()
    }

    /// Every submitted job, in submission order.
    pub fn jobs(&self) -> Vec<Arc<Job>> {
        lock(&self.shared.jobs).clone()
    }

    /// Requests a pause on a job (no-op if already settled). Returns
    /// false for an unknown id.
    pub fn pause(&self, id: u64) -> bool {
        match self.job(id) {
            Some(job) => {
                job.control.request_pause();
                true
            }
            None => false,
        }
    }

    /// Requests a cancel on a job (no-op if already settled). A job
    /// still waiting in the queue is settled as cancelled immediately —
    /// it never occupies a runner. Returns false for an unknown id.
    pub fn cancel(&self, id: u64) -> bool {
        let Some(job) = self.job(id) else {
            return false;
        };
        job.control.request_cancel();
        let removed = {
            let mut pending = lock(&self.shared.pending);
            let before = pending.len();
            pending.retain(|j| j.id != id);
            before != pending.len()
        };
        if removed {
            job.settle(
                JobStatus::Cancelled,
                None,
                Some("cancelled before starting".into()),
            );
        }
        true
    }

    /// Shuts the queue down: still-queued jobs are marked cancelled,
    /// running jobs get a cancel request and are joined. Idempotent.
    pub fn shutdown(&self) {
        // ORDERING: Relaxed — runners re-check the flag while holding the
        // `pending` mutex, whose lock/unlock provides the synchronization.
        self.shared.shutdown.store(true, Ordering::Relaxed);
        for job in self.jobs() {
            if !job.status().is_settled() {
                job.control.request_cancel();
            }
        }
        self.shared.available.notify_all();
        let handles: Vec<_> = lock(&self.runners).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for JobQueue {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A runner thread's main loop: pop, run, settle — a panicking job is
/// caught and recorded, never fatal to the runner.
fn run_jobs(shared: &Shared) {
    loop {
        let job = {
            let mut pending = lock(&shared.pending);
            loop {
                if let Some(job) = pending.pop_front() {
                    break job;
                }
                // ORDERING: Relaxed — read under the `pending` mutex; the
                // mutex orders it against the store in `shutdown`.
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                pending = shared
                    .available
                    .wait(pending)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // ORDERING: Relaxed — a missed in-flight shutdown only means this
        // job runs one more time; `shutdown()` joins the runner either way.
        if shared.shutdown.load(Ordering::Relaxed) || job.control.cancel_requested() {
            job.settle(
                JobStatus::Cancelled,
                None,
                Some("cancelled before starting".into()),
            );
            continue;
        }
        {
            let mut state = lock(&job.state);
            state.status = JobStatus::Running;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| job.scenario.run(&job.request)));
        match outcome {
            Ok(Ok(summary)) => {
                let status = if summary.paused {
                    JobStatus::Paused
                } else {
                    JobStatus::Done
                };
                job.settle(status, Some(summary), None);
            }
            Ok(Err(e)) => {
                let status = if job.control.cancel_requested() {
                    JobStatus::Cancelled
                } else {
                    JobStatus::Failed
                };
                job.settle(status, None, Some(e.message));
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("opaque panic payload");
                job.settle(
                    JobStatus::Failed,
                    None,
                    Some(format!("job panicked: {msg}")),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_jobs_complete_and_report() {
        let queue = JobQueue::new(2);
        let a = queue.submit("acoustic_wave", RunRequest::smoke()).unwrap();
        let b = queue.submit("advection_wave", RunRequest::smoke()).unwrap();
        assert_eq!(a.wait(), JobStatus::Done);
        assert_eq!(b.wait(), JobStatus::Done);
        let summary = a.summary().expect("done job has a summary");
        assert!(summary.steps > 0);
        assert!(a.error().is_none());
        assert_eq!(queue.jobs().len(), 2);
        assert_eq!(queue.job(a.id()).unwrap().id(), a.id());
        assert!(queue.job(999).is_none());
    }

    #[test]
    fn unknown_scenario_is_rejected_at_submit() {
        let queue = JobQueue::new(1);
        let e = queue.submit("nope", RunRequest::smoke()).unwrap_err();
        assert!(e.message.contains("unknown scenario"), "{e}");
    }

    #[test]
    fn pause_at_step_settles_paused_with_partial_summary() {
        let queue = JobQueue::new(1);
        let control = Arc::new(RunControl::new());
        control.pause_at_step(1);
        let req = RunRequest {
            control: Some(control),
            ..RunRequest::smoke()
        };
        let job = queue.submit("acoustic_wave", req).unwrap();
        assert_eq!(job.wait(), JobStatus::Paused);
        let summary = job.summary().expect("paused job has a partial summary");
        assert!(summary.paused);
        assert_eq!(summary.steps, 1);
    }

    #[test]
    fn cancel_before_start_and_shutdown_settle_everything() {
        let queue = JobQueue::new(1);
        // Arm a pause so the first job holds the runner only briefly;
        // cancel the second before it ever starts.
        let blocker = queue.submit("acoustic_wave", RunRequest::smoke()).unwrap();
        let victim = queue.submit("acoustic_wave", RunRequest::smoke()).unwrap();
        assert!(queue.cancel(victim.id()));
        assert!(!queue.cancel(12345));
        blocker.wait();
        let status = victim.wait();
        assert_eq!(status, JobStatus::Cancelled);
        queue.shutdown();
        assert!(queue.submit("acoustic_wave", RunRequest::smoke()).is_err());
    }
}
