//! Persistent work-stealing worker pool — the engine room behind
//! [`crate::par`].
//!
//! One long-lived pool of parked worker threads serves every parallel
//! call in the process, so an `Engine::step` no longer pays
//! `std::thread::scope` spawn/join. Work distribution is classic
//! work stealing: each worker owns a deque (LIFO push/pop at the back
//! for locality, FIFO steal from the front), batch seed tasks enter a
//! shared FIFO injector, and tasks spawned *by* tasks (the task-graph
//! scheduler's newly-ready dependents) go to the spawning worker's own
//! deque. Idle workers park on a condvar and burn no CPU; an epoch
//! counter bumped on every push closes the check-then-park race.
//!
//! The module is crate-private on purpose: the public, documented
//! surface (`for_each_mut_init`, `map_max`, `run_graph_init`,
//! `set_num_threads`, pool-mode knobs) lives in [`crate::par`], which
//! owns the determinism contract. Nothing here decides *combine
//! order* — reductions stay worker-independent because the `par`
//! wrappers slot partial results by chunk index and fold them on the
//! submitting thread.
//!
//! # Safety architecture
//!
//! Batches carry a type-erased pointer to the submitting call's task
//! closure (`Batch::run`), which borrows the caller's stack. The pointer
//! is only ever dereferenced between a task's *pop* (which is counted in
//! `spawned` before it is enqueued) and its *finished* increment, and
//! `Pool::run_batch` blocks the submitter until `finished == spawned`
//! with no further spawns possible — so the borrow outlives every
//! dereference. Queued entries are tagged with the batch generation;
//! an entry of generation `g` can only be popped while batch `g` is
//! still installed (its submitter cannot have returned), so a worker
//! whose cached batch is stale re-reads the installed batch and never
//! runs a task against the wrong closure.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// One queued unit of work: the generation of the batch it belongs to
/// plus the caller-defined task index.
type Entry = (u64, usize);

/// The type-erased task closure: `(ctx, task index)`.
type RunFn<'a> = &'a (dyn Fn(&TaskCtx<'_>, usize) + Sync);

/// Locks a mutex, shrugging off poisoning: no pool lock is ever held
/// across user code (task panics are caught around the closure call
/// alone), so a poisoned pool mutex can only mean a panic in pool
/// bookkeeping itself — and even then the data is a queue of plain
/// indices, safe to keep using. This keeps one panicked batch from
/// poisoning the pool for the next call.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Bookkeeping of one submitted batch of tasks.
pub(crate) struct Batch {
    /// Type-erased pointer to the submitting call's task closure. Borrows
    /// the submitter's stack; see the module-level safety argument.
    run: *const (dyn Fn(&TaskCtx<'_>, usize) + Sync),
    /// Generation stamp distinguishing this batch's queue entries.
    gen: u64,
    /// Total number of tasks the batch will ever run (known up front;
    /// not all are seeded — graph batches spawn the rest from tasks).
    total: usize,
    /// Spawn/finish accounting, guarded by one mutex with `done` signaled
    /// on completion.
    sync: Mutex<BatchSync>,
    /// Signaled when the batch completes (or aborts and drains).
    done: Condvar,
    /// Set on the first task panic: subsequently popped tasks are skipped
    /// (counted as finished, never run) so the batch drains instead of
    /// deadlocking, and no new tasks are spawned.
    aborted: AtomicBool,
    /// First panic payload, re-raised on the submitting thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `run` is the only non-Send/Sync field; the module-level
// argument shows it is only dereferenced while the submitter keeps the
// referent alive, and the referent itself is `Sync` (shared calls from
// several workers are allowed by its bound).
unsafe impl Send for Batch {}
// SAFETY: same argument as `Send` above — `run` is only ever called
// through a shared reference and its referent is `Sync`.
unsafe impl Sync for Batch {}

struct BatchSync {
    /// Tasks enqueued so far (seeds + task-spawned dependents).
    spawned: usize,
    /// Tasks that ran (or were skipped after an abort).
    finished: usize,
}

impl Batch {
    fn is_done(&self, s: &BatchSync) -> bool {
        // A valid (pre-validated acyclic) batch spawns all `total` tasks
        // before the last one finishes; an aborted batch stops spawning,
        // so it is done when everything spawned has drained.
        // ORDERING: Acquire pairs with the Release store in `run_one`, so
        // a waiter that sees the abort also sees the panic payload write
        // that preceded it.
        s.finished == s.spawned && (s.spawned == self.total || self.aborted.load(Ordering::Acquire))
    }
}

/// Handle passed to every task invocation: identifies the executing
/// worker (for per-worker state slots) and lets graph tasks enqueue
/// newly-ready dependents onto the local deque.
pub(crate) struct TaskCtx<'p> {
    shared: &'p Shared,
    batch: &'p Arc<Batch>,
    worker: usize,
}

impl TaskCtx<'_> {
    /// Index of the worker running this task (`0..workers()`), stable for
    /// the lifetime of the pool — the key into per-worker state slots.
    pub(crate) fn worker(&self) -> usize {
        self.worker
    }

    /// Enqueues one more task of the current batch onto this worker's own
    /// deque (LIFO end — it will typically run next, right here, while
    /// its inputs are hot; idle workers steal it from the FIFO end).
    pub(crate) fn spawn(&self, task: usize) {
        // ORDERING: Acquire pairs with the abort's Release store; a stale
        // `false` is benign (the spawned task is skipped when popped).
        if self.batch.aborted.load(Ordering::Acquire) {
            // The batch is draining; nothing new may enter it.
            return;
        }
        lock(&self.batch.sync).spawned += 1;
        lock(&self.shared.queues[self.worker]).push_back((self.batch.gen, task));
        self.shared.bump_and_wake();
    }
}

/// What a worker found when it went looking for work.
enum Work {
    Task(Entry),
    Shutdown,
}

/// State shared between the workers and the submitting thread.
struct Shared {
    /// Per-worker deques: owner pops the back (LIFO), thieves and the
    /// owner-when-empty pop other queues' front (FIFO).
    queues: Vec<Mutex<VecDeque<Entry>>>,
    /// Shared FIFO for batch seed tasks.
    injector: Mutex<VecDeque<Entry>>,
    /// Park/wake coordination and the currently installed batch.
    park: Mutex<Park>,
    /// Workers wait here when there is no work.
    work_cv: Condvar,
}

struct Park {
    /// Bumped on every push and on shutdown; closes the scan-then-park
    /// race (a worker only parks if the epoch is unchanged since its
    /// last empty scan).
    epoch: u64,
    /// Number of workers currently parked (wakes are skipped otherwise).
    sleepers: usize,
    /// Tells workers to exit (pool resize or drop).
    shutdown: bool,
    /// The batch whose entries currently populate the queues. At most
    /// one batch is active at a time (the submitter holds the global
    /// pool registry lock for the duration of `run_batch`).
    batch: Option<Arc<Batch>>,
}

impl Shared {
    /// Pops the next entry: own deque back → injector front → steal the
    /// front of the other deques (round-robin from our right neighbour).
    fn try_pop(&self, worker: usize) -> Option<Entry> {
        if let Some(e) = lock(&self.queues[worker]).pop_back() {
            return Some(e);
        }
        if let Some(e) = lock(&self.injector).pop_front() {
            return Some(e);
        }
        let n = self.queues.len();
        for off in 1..n {
            if let Some(e) = lock(&self.queues[(worker + off) % n]).pop_front() {
                return Some(e);
            }
        }
        None
    }

    /// Announces new work: bumps the epoch and wakes parked workers.
    fn bump_and_wake(&self) {
        let mut p = lock(&self.park);
        p.epoch += 1;
        let any_sleeping = p.sleepers > 0;
        drop(p);
        if any_sleeping {
            self.work_cv.notify_all();
        }
    }

    /// Blocks until there is an entry to run or the pool shuts down.
    fn find_work(&self, worker: usize) -> Work {
        loop {
            let epoch = {
                let p = lock(&self.park);
                if p.shutdown {
                    return Work::Shutdown;
                }
                p.epoch
            };
            if let Some(e) = self.try_pop(worker) {
                return Work::Task(e);
            }
            let mut p = lock(&self.park);
            if p.shutdown {
                return Work::Shutdown;
            }
            if p.epoch == epoch {
                // Nothing appeared since our empty scan: park. A push
                // between the scan and this lock bumped the epoch, so we
                // rescan instead of sleeping through it.
                p.sleepers += 1;
                let mut waited = self.work_cv.wait(p).unwrap_or_else(PoisonError::into_inner);
                waited.sleepers -= 1;
            }
        }
    }

    /// The batch a just-popped entry belongs to. The entry's generation
    /// proves its submitter is still parked in `run_batch`, so the
    /// installed batch *is* that generation's batch.
    fn batch_for(&self, entry_gen: u64, cached: &mut Option<Arc<Batch>>) -> Arc<Batch> {
        if let Some(b) = cached {
            if b.gen == entry_gen {
                return Arc::clone(b);
            }
        }
        let b = lock(&self.park)
            .batch
            .clone()
            // PANIC-OK: internal invariant — a queue entry can only exist
            // while its submitter is parked with the batch installed.
            .expect("a queued task implies an installed batch");
        assert_eq!(
            b.gen, entry_gen,
            "queue entry from a batch that is no longer installed"
        );
        *cached = Some(Arc::clone(&b));
        b
    }
}

/// Runs one popped task and does its finish accounting.
fn run_one(shared: &Shared, worker: usize, batch: &Arc<Batch>, task: usize) {
    // ORDERING: Acquire pairs with the Release store below so a skipped
    // task never runs concurrently with the panic payload being recorded.
    if !batch.aborted.load(Ordering::Acquire) {
        let ctx = TaskCtx {
            shared,
            batch,
            worker,
        };
        // SAFETY: see the module-level argument — the submitter cannot
        // return from `run_batch` before this task's finished increment
        // below, so the closure behind `run` is alive.
        let run = unsafe { &*batch.run };
        let _flag = crate::par::enter_task();
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run(&ctx, task))) {
            let mut slot = lock(&batch.panic);
            if slot.is_none() {
                *slot = Some(payload);
            }
            drop(slot);
            // ORDERING: Release publishes the payload write above to any
            // thread whose Acquire load observes the abort flag.
            batch.aborted.store(true, Ordering::Release);
        }
    }
    let mut s = lock(&batch.sync);
    s.finished += 1;
    let done = batch.is_done(&s);
    drop(s);
    if done {
        batch.done.notify_all();
    }
}

fn worker_main(shared: Arc<Shared>, worker: usize, pin: bool) {
    if pin {
        pin_to_core(worker);
    }
    // The most recent batch this worker ran a task of. Caching it skips
    // one park-lock per task in the common case; correctness never
    // depends on it (generation-checked in `batch_for`).
    let mut cached: Option<Arc<Batch>> = None;
    loop {
        match shared.find_work(worker) {
            Work::Shutdown => return,
            Work::Task((gen, task)) => {
                let batch = shared.batch_for(gen, &mut cached);
                run_one(&shared, worker, &batch, task);
            }
        }
    }
}

/// Pins the calling thread to core `worker mod available_parallelism`
/// (Linux only; a no-op elsewhere). Best-effort: failure is ignored —
/// pinning is a performance knob, not a correctness one.
fn pin_to_core(worker: usize) {
    #[cfg(target_os = "linux")]
    {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let cpu = worker % cpus;
        // A 1024-bit cpu_set_t, the glibc default width.
        let mut mask = [0u64; 16];
        mask[cpu / 64] |= 1u64 << (cpu % 64);
        extern "C" {
            fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
        }
        // SAFETY: plain syscall wrapper; the mask outlives the call.
        unsafe {
            sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr());
        }
    }
    #[cfg(not(target_os = "linux"))]
    let _ = worker;
}

/// A running pool: `size` parked-or-working OS threads.
pub(crate) struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Worker count the pool was built with (rebuilt when the configured
    /// thread count changes).
    pub(crate) size: usize,
    /// Generation stamp for the next batch.
    next_gen: u64,
}

impl Pool {
    /// Spawns `size` parked workers (optionally pinned round-robin).
    pub(crate) fn new(size: usize, pin: bool) -> Self {
        let shared = Arc::new(Shared {
            queues: (0..size).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            park: Mutex::new(Park {
                epoch: 0,
                sleepers: 0,
                shutdown: false,
                batch: None,
            }),
            work_cv: Condvar::new(),
        });
        let handles = (0..size)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("aderdg-worker-{w}"))
                    .spawn(move || worker_main(shared, w, pin))
                    // PANIC-OK: thread spawn fails only on OS resource
                    // exhaustion; a half-built pool is unusable anyway.
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            size,
            next_gen: 1,
        }
    }

    /// Runs a batch of `total` tasks to completion: `seeds` are enqueued
    /// on the shared injector immediately, the rest must be spawned from
    /// inside tasks via [`TaskCtx::spawn`]. Blocks until every spawned
    /// task has finished. Returns the first task panic payload (the
    /// caller re-raises it *after* releasing the pool registry lock, so
    /// a panicking batch cannot poison the pool for the next call).
    pub(crate) fn run_batch(
        &mut self,
        total: usize,
        seeds: impl Iterator<Item = usize>,
        run: RunFn<'_>,
    ) -> Option<Box<dyn Any + Send>> {
        debug_assert!(total > 0, "empty batches are handled by the caller");
        let gen = self.next_gen;
        self.next_gen += 1;
        // SAFETY: lifetime erasure only — `run_batch` does not return
        // until no worker can dereference the pointer again (module-level
        // argument), so the shortened borrow is never outlived.
        let run_erased: *const (dyn Fn(&TaskCtx<'_>, usize) + Sync) =
            unsafe { std::mem::transmute::<RunFn<'_>, RunFn<'static>>(run) };
        let batch = Arc::new(Batch {
            run: run_erased,
            gen,
            total,
            sync: Mutex::new(BatchSync {
                spawned: 0,
                finished: 0,
            }),
            done: Condvar::new(),
            aborted: AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        let seeds: Vec<Entry> = seeds.map(|t| (gen, t)).collect();
        lock(&self.shared.park).batch = Some(Arc::clone(&batch));
        // Account the seeds as spawned *before* they become poppable: a
        // fast worker may run one (and spawn dependents, incrementing
        // `spawned`) the instant it lands in the injector.
        lock(&batch.sync).spawned = seeds.len();
        lock(&self.shared.injector).extend(seeds);
        self.shared.bump_and_wake();

        let mut s = lock(&batch.sync);
        while !batch.is_done(&s) {
            s = batch.done.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        drop(s);
        lock(&self.shared.park).batch = None;
        let payload = lock(&batch.panic).take();
        payload
    }

    /// Stops and joins every worker. Only called while the pool is idle
    /// (the caller holds the registry lock, so no batch can be active).
    pub(crate) fn shutdown(mut self) {
        {
            let mut p = lock(&self.shared.park);
            p.shutdown = true;
            p.epoch += 1;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}
