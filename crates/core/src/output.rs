//! Solution output — the engine's "plotter" component (the paper's
//! architecture diagram lists plotters for various file formats as part of
//! the ExaHyPE core; Fig. 2).
//!
//! Writes nodal snapshots as legacy-VTK structured grids (readable by
//! ParaView/VisIt) or as flat CSV, and receiver seismograms as CSV (see
//! [`Engine::write_receiver_csv`](crate::engine::Engine::write_receiver_csv)).

use crate::engine::Engine;
use aderdg_pde::LinearPde;
use std::io::{self, Write};
use std::path::Path;

/// Writes a file atomically: the content goes to a `<name>.tmp` sibling
/// first and is renamed over `path` only after a successful flush — a
/// failure mid-write can never leave a truncated file where a previous
/// good one (a checkpoint, say) used to be. The sibling lives in the
/// same directory so the rename stays within one filesystem.
pub fn write_atomic(
    path: &Path,
    f: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> io::Result<()> {
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        let mut file = io::BufWriter::new(std::fs::File::create(&tmp)?);
        f(&mut file)?;
        file.flush()?;
        file.into_inner().map_err(|e| e.into_error())?.sync_all()
    })();
    match result {
        Ok(()) => std::fs::rename(&tmp, path),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Writes the full nodal solution as a legacy-VTK structured grid:
/// one point per quadrature node, `var_names.len()` scalar fields (the
/// first evolved quantities).
pub fn write_vtk<P: LinearPde>(
    engine: &Engine<P>,
    var_names: &[&str],
    out: &mut dyn Write,
) -> io::Result<()> {
    let n = engine.plan.n();
    let m_pad = engine.plan.aos.m_pad();
    let vars = engine.pde.num_vars();
    assert!(
        var_names.len() <= vars,
        "more names than evolved quantities"
    );
    let dims = engine.mesh.dims;
    let nodes = &engine.plan.basis.nodes;
    let (px, py, pz) = (dims[0] * n, dims[1] * n, dims[2] * n);
    let total = px * py * pz;

    writeln!(out, "# vtk DataFile Version 3.0")?;
    writeln!(out, "aderdg snapshot t={}", engine.time)?;
    writeln!(out, "ASCII")?;
    writeln!(out, "DATASET STRUCTURED_GRID")?;
    writeln!(out, "DIMENSIONS {px} {py} {pz}")?;
    writeln!(out, "POINTS {total} double")?;
    // Point order: x fastest, then y, then z (VTK convention).
    for gk in 0..pz {
        for gj in 0..py {
            for gi in 0..px {
                let (ci, ki) = (gi / n, gi % n);
                let (cj, kj) = (gj / n, gj % n);
                let (ck, kk) = (gk / n, gk % n);
                let cell = engine.mesh.cell_index(ci, cj, ck);
                let x = engine
                    .mesh
                    .cell_point(cell, [nodes[ki], nodes[kj], nodes[kk]]);
                writeln!(out, "{} {} {}", x[0], x[1], x[2])?;
            }
        }
    }
    writeln!(out, "POINT_DATA {total}")?;
    for (s, name) in var_names.iter().enumerate() {
        writeln!(out, "SCALARS {name} double 1")?;
        writeln!(out, "LOOKUP_TABLE default")?;
        for gk in 0..pz {
            for gj in 0..py {
                for gi in 0..px {
                    let (ci, ki) = (gi / n, gi % n);
                    let (cj, kj) = (gj / n, gj % n);
                    let (ck, kk) = (gk / n, gk % n);
                    let cell = engine.mesh.cell_index(ci, cj, ck);
                    let node = (kk * n + kj) * n + ki;
                    let v = engine.cell_state(cell)[node * m_pad + s];
                    writeln!(out, "{v}")?;
                }
            }
        }
    }
    Ok(())
}

/// Writes the nodal solution as CSV: `x,y,z,q0,q1,...` (evolved
/// quantities only), one row per quadrature node.
pub fn write_csv<P: LinearPde>(engine: &Engine<P>, out: &mut dyn Write) -> io::Result<()> {
    let n = engine.plan.n();
    let m_pad = engine.plan.aos.m_pad();
    let vars = engine.pde.num_vars();
    let nodes = &engine.plan.basis.nodes;
    write!(out, "x,y,z")?;
    for s in 0..vars {
        write!(out, ",q{s}")?;
    }
    writeln!(out)?;
    for cell in 0..engine.mesh.num_cells() {
        let q = engine.cell_state(cell);
        for k3 in 0..n {
            for k2 in 0..n {
                for k1 in 0..n {
                    let x = engine
                        .mesh
                        .cell_point(cell, [nodes[k1], nodes[k2], nodes[k3]]);
                    write!(out, "{},{},{}", x[0], x[1], x[2])?;
                    let node = (k3 * n + k2) * n + k1;
                    for s in 0..vars {
                        write!(out, ",{}", q[node * m_pad + s])?;
                    }
                    writeln!(out)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use aderdg_mesh::StructuredMesh;
    use aderdg_pde::{Acoustic, AcousticPlaneWave, ExactSolution};

    fn small_engine() -> Engine<Acoustic> {
        let wave = AcousticPlaneWave {
            direction: [1.0, 0.0, 0.0],
            amplitude: 1.0,
            wavenumber: 1.0,
            rho: 1.0,
            bulk: 1.0,
        };
        let mesh = StructuredMesh::unit_cube(2);
        let mut engine = Engine::new(mesh, Acoustic, EngineConfig::new(3));
        engine.set_initial(|x, q| {
            wave.evaluate(x, 0.0, q);
            Acoustic::set_params(q, 1.0, 1.0);
        });
        engine
    }

    #[test]
    fn vtk_snapshot_is_well_formed() {
        let engine = small_engine();
        let mut buf = Vec::new();
        write_vtk(&engine, &["p", "u"], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let total = (2 * 3usize).pow(3);
        assert!(text.starts_with("# vtk DataFile Version 3.0"));
        assert!(text.contains(&format!("DIMENSIONS {0} {0} {0}", 6)));
        assert!(text.contains(&format!("POINTS {total} double")));
        assert!(text.contains("SCALARS p double 1"));
        assert!(text.contains("SCALARS u double 1"));
        // Point count: header lines + coordinates + 2 × scalars.
        let n_coord_lines = text
            .lines()
            .filter(|l| {
                l.split_whitespace().count() == 3
                    && l.chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '0')
            })
            .count();
        assert!(n_coord_lines >= total);
    }

    #[test]
    fn csv_snapshot_has_all_nodes() {
        let engine = small_engine();
        let mut buf = Vec::new();
        write_csv(&engine, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "x,y,z,q0,q1,q2,q3");
        assert_eq!(lines.len() - 1, 8 * 27);
        // A data row parses to numbers.
        let fields: Vec<f64> = lines[1].split(',').map(|t| t.parse().unwrap()).collect();
        assert_eq!(fields.len(), 7);
    }

    #[test]
    fn write_atomic_failure_preserves_the_old_file() {
        let path = std::env::temp_dir().join(format!("aderdg_atomic_{}.csv", std::process::id()));
        let tmp = path.with_file_name(format!(
            "{}.tmp",
            path.file_name().unwrap().to_string_lossy()
        ));
        std::fs::write(&path, "old good content").unwrap();

        // A failing writer leaves the original untouched and no sibling.
        let err = write_atomic(&path, |w| {
            w.write_all(b"partial")?;
            Err(io::Error::other("disk full"))
        });
        assert!(err.is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "old good content");
        assert!(!tmp.exists(), "failed write left {} behind", tmp.display());

        // A successful writer replaces the content and the sibling is gone.
        write_atomic(&path, |w| w.write_all(b"new content")).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "new content");
        assert!(!tmp.exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[should_panic(expected = "more names")]
    fn vtk_rejects_too_many_names() {
        let engine = small_engine();
        let mut buf = Vec::new();
        let _ = write_vtk(&engine, &["a", "b", "c", "d", "e"], &mut buf);
    }
}
