//! # aderdg-core
//!
//! The paper's primary contribution: a linear ADER-DG engine whose
//! Space-Time Predictor exists in four variants of increasing optimization
//! (generic scalar, Loop-over-GEMM, dimension-split Cauchy-Kowalewsky, and
//! AoSoA SplitCK with vectorized user functions), plus the surrounding
//! scheme — face projection, Rusanov Riemann solver, corrector step, CFL
//! time stepping and a persistent work-stealing worker pool ([`par`])
//! driving the cell loops and the sharded task graph.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod block;
pub mod checkpoint;
pub mod corrector;
pub mod engine;
pub mod faceproj;
pub mod jobs;
pub mod kernels;
pub mod mix;
pub mod output;
pub mod par;
pub mod plan;
mod pool;
pub mod registry;
pub mod report;
pub mod riemann;
pub mod scenario;
pub mod scenarios;
pub mod spec;
pub mod traces;
pub mod tune;

pub use block::{BlockInputs, CellBlock};
pub use checkpoint::{Checkpoint, CheckpointError, EngineState};
pub use engine::{
    auto_block_size, auto_shard_size, DegenerateDt, Engine, EngineConfig, PipelineMode, Receiver,
    SteppingMode,
};
pub use jobs::{Job, JobQueue, JobStatus};
pub use kernels::{StpInputs, StpKernel, StpOutputs, StpScratch};
pub use plan::{CellSource, KernelVariant, StpConfig, StpPlan};
pub use registry::KernelRegistry;
pub use riemann::{boundary_face, rusanov_face, BoundaryScratch};
pub use scenario::{
    RunControl, RunRequest, RunSummary, Scenario, ScenarioError, ScenarioInfo, ScenarioRegistry,
};
pub use spec::{SolverSpec, SpecError};
pub use tune::{BackendCandidate, BlockCandidate, TuneReport, TuningMode};
