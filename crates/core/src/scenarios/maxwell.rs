//! Maxwell scenario: an electromagnetic plane wave propagated through a
//! periodic vacuum-like cavity.

use crate::scenario::{
    drive, RunRequest, RunSummary, Scenario, ScenarioError, ScenarioInfo, ScenarioParts,
};
use aderdg_mesh::{BoundaryKind, StructuredMesh};
use aderdg_pde::{ExactSolution, Maxwell, MaxwellPlaneWave};

/// `maxwell_cavity` — a transverse electromagnetic plane wave propagated
/// for a full period on the periodic unit cube; energy must not grow and
/// the field is checked against the exact solution.
#[derive(Debug, Clone, Copy)]
pub struct MaxwellCavity;

impl Scenario for MaxwellCavity {
    fn info(&self) -> ScenarioInfo {
        ScenarioInfo {
            name: "maxwell_cavity",
            title: "periodic electromagnetic plane wave, one full period, vs exact",
            system: "maxwell",
            order: 5,
            cells: [3, 3, 3],
            t_end: 1.0,
            kernel: "aosoa_splitck",
            has_exact: true,
            smoke_cells: [2, 2, 2],
        }
    }

    fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError> {
        let wave = MaxwellPlaneWave {
            direction: [0.0, 0.0, 1.0],
            polarization: [1.0, 0.0, 0.0],
            amplitude: 1.0,
            wavenumber: 1.0,
            epsilon: 1.0,
            mu: 1.0,
        };
        drive(
            &self.info(),
            req,
            |dims| StructuredMesh::new(dims, [0.0; 3], [1.0; 3], [BoundaryKind::Periodic; 3]),
            Maxwell,
            ScenarioParts::new(|x, q: &mut [f64], _mesh: &StructuredMesh| {
                wave.evaluate(x, 0.0, q);
                Maxwell::set_params(q, wave.epsilon, wave.mu);
            })
            .with_exact(&wave),
        )
    }
}
