//! Acoustic scenarios: plane-wave convergence, a reflecting Gaussian
//! pulse, and a layered medium with a 10:1 wave-speed contrast (the
//! dt-heterogeneous workload local time stepping is built for).

use crate::scenario::{
    drive, RunRequest, RunSummary, Scenario, ScenarioError, ScenarioInfo, ScenarioParts,
};
use aderdg_mesh::{BoundaryKind, StructuredMesh};
use aderdg_pde::{Acoustic, AcousticPlaneWave};

/// `acoustic_wave` — a right-going acoustic plane wave on the periodic
/// unit cube, checked against the exact solution (the quickstart
/// workload).
#[derive(Debug, Clone, Copy)]
pub struct AcousticWave;

fn plane_wave() -> AcousticPlaneWave {
    AcousticPlaneWave {
        direction: [1.0, 0.0, 0.0],
        amplitude: 1.0,
        wavenumber: 1.0,
        rho: 1.0,
        bulk: 1.0,
    }
}

impl Scenario for AcousticWave {
    fn info(&self) -> ScenarioInfo {
        ScenarioInfo {
            name: "acoustic_wave",
            title: "periodic acoustic plane wave vs exact solution",
            system: "acoustic",
            order: 5,
            cells: [3, 3, 3],
            t_end: 0.4,
            kernel: "splitck",
            has_exact: true,
            smoke_cells: [2, 2, 2],
        }
    }

    fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError> {
        let wave = plane_wave();
        drive(
            &self.info(),
            req,
            |dims| StructuredMesh::new(dims, [0.0; 3], [1.0; 3], [BoundaryKind::Periodic; 3]),
            Acoustic,
            ScenarioParts::new(|x, q: &mut [f64], _mesh: &StructuredMesh| {
                use aderdg_pde::ExactSolution;
                wave.evaluate(x, 0.0, q);
                Acoustic::set_params(q, wave.rho, wave.bulk);
            })
            .with_exact(&wave),
        )
    }
}

/// `acoustic_pulse` — a Gaussian pressure pulse in a rigid-walled box:
/// the pulse reflects off all six walls while the total pressure integral
/// stays conserved to round-off (the wall flux of `p` vanishes for the
/// rigid-wall ghost state).
#[derive(Debug, Clone, Copy)]
pub struct AcousticPulse;

/// `acoustic_layered` — a Gaussian pressure pulse in a rigid-walled box
/// with a stiff layer: cells with `x < 0.25` carry `bulk = 100` (sound
/// speed 10), the rest `bulk = 1` (sound speed 1). The stiff minority
/// pins the global CFL dt to a tenth of what the bulk of the domain
/// could take — under `stepping = lts` the slow cells cluster at coarser
/// dt levels and skip most sub-steps, which is where clustered local
/// time stepping wins (see `docs/LTS.md` and the `step_scaling` bench).
#[derive(Debug, Clone, Copy)]
pub struct AcousticLayered;

/// The stiff/slow interface position (a cell boundary for the default
/// and smoke grids, so every cell's material is uniform).
const LAYER_X: f64 = 0.25;

impl Scenario for AcousticLayered {
    fn info(&self) -> ScenarioInfo {
        ScenarioInfo {
            name: "acoustic_layered",
            title: "pressure pulse over a stiff layer (10:1 wave-speed contrast)",
            system: "acoustic",
            order: 4,
            cells: [8, 2, 2],
            t_end: 0.3,
            kernel: "splitck",
            has_exact: false,
            smoke_cells: [4, 2, 2],
        }
    }

    fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError> {
        drive(
            &self.info(),
            req,
            |dims| StructuredMesh::new(dims, [0.0; 3], [1.0; 3], [BoundaryKind::Reflective; 3]),
            Acoustic,
            ScenarioParts::new(|x, q: &mut [f64], _mesh: &StructuredMesh| {
                q.fill(0.0);
                let r2: f64 = x.iter().map(|&c| (c - 0.6) * (c - 0.6)).sum();
                q[aderdg_pde::acoustic::P] = (-r2 / (2.0 * 0.1 * 0.1)).exp();
                let bulk = if x[0] < LAYER_X { 100.0 } else { 1.0 };
                Acoustic::set_params(q, 1.0, bulk);
            }),
        )
    }
}

impl Scenario for AcousticPulse {
    fn info(&self) -> ScenarioInfo {
        ScenarioInfo {
            name: "acoustic_pulse",
            title: "Gaussian pressure pulse in a rigid-walled box",
            system: "acoustic",
            order: 4,
            cells: [4, 4, 4],
            t_end: 0.6,
            kernel: "splitck",
            has_exact: false,
            smoke_cells: [2, 2, 2],
        }
    }

    fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError> {
        drive(
            &self.info(),
            req,
            |dims| StructuredMesh::new(dims, [0.0; 3], [1.0; 3], [BoundaryKind::Reflective; 3]),
            Acoustic,
            ScenarioParts::new(|x, q: &mut [f64], _mesh: &StructuredMesh| {
                q.fill(0.0);
                let r2: f64 = x.iter().map(|&c| (c - 0.5) * (c - 0.5)).sum();
                q[aderdg_pde::acoustic::P] = (-r2 / (2.0 * 0.1 * 0.1)).exp();
                Acoustic::set_params(q, 1.0, 1.0);
            }),
        )
    }
}
