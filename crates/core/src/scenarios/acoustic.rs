//! Acoustic scenarios: plane-wave convergence and a reflecting Gaussian
//! pulse.

use crate::scenario::{
    drive, RunRequest, RunSummary, Scenario, ScenarioError, ScenarioInfo, ScenarioParts,
};
use aderdg_mesh::{BoundaryKind, StructuredMesh};
use aderdg_pde::{Acoustic, AcousticPlaneWave};

/// `acoustic_wave` — a right-going acoustic plane wave on the periodic
/// unit cube, checked against the exact solution (the quickstart
/// workload).
#[derive(Debug, Clone, Copy)]
pub struct AcousticWave;

fn plane_wave() -> AcousticPlaneWave {
    AcousticPlaneWave {
        direction: [1.0, 0.0, 0.0],
        amplitude: 1.0,
        wavenumber: 1.0,
        rho: 1.0,
        bulk: 1.0,
    }
}

impl Scenario for AcousticWave {
    fn info(&self) -> ScenarioInfo {
        ScenarioInfo {
            name: "acoustic_wave",
            title: "periodic acoustic plane wave vs exact solution",
            system: "acoustic",
            order: 5,
            cells: [3, 3, 3],
            t_end: 0.4,
            kernel: "splitck",
            has_exact: true,
            smoke_cells: [2, 2, 2],
        }
    }

    fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError> {
        let wave = plane_wave();
        drive(
            &self.info(),
            req,
            |dims| StructuredMesh::new(dims, [0.0; 3], [1.0; 3], [BoundaryKind::Periodic; 3]),
            Acoustic,
            ScenarioParts::new(|x, q: &mut [f64], _mesh: &StructuredMesh| {
                use aderdg_pde::ExactSolution;
                wave.evaluate(x, 0.0, q);
                Acoustic::set_params(q, wave.rho, wave.bulk);
            })
            .with_exact(&wave),
        )
    }
}

/// `acoustic_pulse` — a Gaussian pressure pulse in a rigid-walled box:
/// the pulse reflects off all six walls while the total pressure integral
/// stays conserved to round-off (the wall flux of `p` vanishes for the
/// rigid-wall ghost state).
#[derive(Debug, Clone, Copy)]
pub struct AcousticPulse;

impl Scenario for AcousticPulse {
    fn info(&self) -> ScenarioInfo {
        ScenarioInfo {
            name: "acoustic_pulse",
            title: "Gaussian pressure pulse in a rigid-walled box",
            system: "acoustic",
            order: 4,
            cells: [4, 4, 4],
            t_end: 0.6,
            kernel: "splitck",
            has_exact: false,
            smoke_cells: [2, 2, 2],
        }
    }

    fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError> {
        drive(
            &self.info(),
            req,
            |dims| StructuredMesh::new(dims, [0.0; 3], [1.0; 3], [BoundaryKind::Reflective; 3]),
            Acoustic,
            ScenarioParts::new(|x, q: &mut [f64], _mesh: &StructuredMesh| {
                q.fill(0.0);
                let r2: f64 = x.iter().map(|&c| (c - 0.5) * (c - 0.5)).sum();
                q[aderdg_pde::acoustic::P] = (-r2 / (2.0 * 0.1 * 0.1)).exp();
                Acoustic::set_params(q, 1.0, 1.0);
            }),
        )
    }
}
