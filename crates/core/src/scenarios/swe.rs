//! Shallow-water scenarios: the lake-at-rest well-balancedness check and
//! a walled dam break.

use crate::scenario::{
    drive, RunRequest, RunSummary, Scenario, ScenarioError, ScenarioInfo, ScenarioParts,
};
use aderdg_mesh::{BoundaryKind, StructuredMesh};
use aderdg_pde::{ExactSolution, LinearizedSwe};

/// Gravity used by both SWE scenarios.
const GRAVITY: f64 = 9.81;

/// Variable bathymetry of the lake-at-rest scenario: a smooth sea-mount
/// profile, `H(x, y) = 1 − 0.4 sin(πx) sin(πy)`.
fn depth(x: [f64; 3]) -> f64 {
    let pi = std::f64::consts::PI;
    1.0 - 0.4 * (pi * x[0]).sin() * (pi * x[1]).sin()
}

/// The rest state (all evolved quantities zero) as an exact solution.
struct Rest;

impl ExactSolution for Rest {
    fn evaluate(&self, _x: [f64; 3], _t: f64, q: &mut [f64]) {
        q.fill(0.0);
    }
}

/// `swe_lake_at_rest` — the linearized shallow-water system over strongly
/// variable bathymetry, initialized at rest in a walled basin. A
/// well-balanced scheme keeps the lake exactly at rest: the reported
/// `l2_error` (departure from rest) must stay at round-off even though
/// the depth parameter varies by 40 % across the domain.
#[derive(Debug, Clone, Copy)]
pub struct SweLakeAtRest;

impl Scenario for SweLakeAtRest {
    fn info(&self) -> ScenarioInfo {
        ScenarioInfo {
            name: "swe_lake_at_rest",
            title: "lake at rest over variable bathymetry (well-balancedness)",
            system: "swe",
            order: 4,
            cells: [4, 4, 4],
            t_end: 0.5,
            kernel: "splitck",
            has_exact: true,
            smoke_cells: [2, 2, 2],
        }
    }

    fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError> {
        drive(
            &self.info(),
            req,
            |dims| StructuredMesh::new(dims, [0.0; 3], [1.0; 3], [BoundaryKind::Reflective; 3]),
            LinearizedSwe,
            ScenarioParts::new(|x, q: &mut [f64], _mesh: &StructuredMesh| {
                q.fill(0.0);
                LinearizedSwe::set_params(q, depth(x), GRAVITY);
            })
            .with_exact(&Rest),
        )
    }
}

/// `swe_dam_break` — a smoothed elevation step released in a walled
/// channel over a flat bottom: gravity waves bounce between the
/// reflective ends while the total water volume `∫η` stays conserved to
/// round-off (the wall flux of `η` vanishes for the wall ghost state).
#[derive(Debug, Clone, Copy)]
pub struct SweDamBreak;

impl Scenario for SweDamBreak {
    fn info(&self) -> ScenarioInfo {
        ScenarioInfo {
            name: "swe_dam_break",
            title: "smoothed dam break in a walled channel (mass conservation)",
            system: "swe",
            order: 3,
            cells: [8, 2, 2],
            t_end: 0.3,
            kernel: "splitck",
            has_exact: false,
            smoke_cells: [4, 2, 2],
        }
    }

    fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError> {
        drive(
            &self.info(),
            req,
            |dims| {
                StructuredMesh::new(
                    dims,
                    [0.0; 3],
                    [1.0; 3],
                    [
                        BoundaryKind::Reflective, // channel ends
                        BoundaryKind::Periodic,
                        BoundaryKind::Periodic,
                    ],
                )
            },
            LinearizedSwe,
            ScenarioParts::new(|x, q: &mut [f64], _mesh: &StructuredMesh| {
                q.fill(0.0);
                // Water held high on the left half, released at t = 0;
                // tanh-smoothed so the projection is resolved.
                q[aderdg_pde::swe::ETA] = 0.5 * (1.0 - ((x[0] - 0.5) / 0.05).tanh());
                LinearizedSwe::set_params(q, 1.0, GRAVITY);
            }),
        )
    }
}
