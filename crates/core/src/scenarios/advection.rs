//! Advection scenarios: the multi-component convergence wave and a
//! variable-coefficient solid-body rotation.

use crate::scenario::{
    drive, RunRequest, RunSummary, Scenario, ScenarioError, ScenarioInfo, ScenarioParts,
};
use aderdg_mesh::{BoundaryKind, StructuredMesh};
use aderdg_pde::{
    AdvectedSine, AdvectionSystem, ExactSolution, RotatingAdvection, RotatingGaussian,
};

/// `advection_wave` — three phase-shifted sine components advected
/// diagonally across the periodic unit cube; the workload behind the
/// design-order convergence study (run it at several `--order`/`--cells`
/// combinations and compare `l2_error`).
#[derive(Debug, Clone, Copy)]
pub struct AdvectionWave;

/// Advection velocity shared by the PDE and the exact solution.
const VELOCITY: [f64; 3] = [0.7, 0.4, 0.2];

impl Scenario for AdvectionWave {
    fn info(&self) -> ScenarioInfo {
        ScenarioInfo {
            name: "advection_wave",
            title: "periodic multi-component advected sine (convergence workload)",
            system: "advection",
            order: 4,
            cells: [4, 4, 4],
            t_end: 0.1,
            kernel: "splitck",
            has_exact: true,
            smoke_cells: [2, 2, 2],
        }
    }

    fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError> {
        let exact = AdvectedSine {
            n_vars: 3,
            velocity: VELOCITY,
            wave: [1.0, 0.0, 0.0],
        };
        drive(
            &self.info(),
            req,
            |dims| StructuredMesh::new(dims, [0.0; 3], [1.0; 3], [BoundaryKind::Periodic; 3]),
            AdvectionSystem::new(3, VELOCITY),
            ScenarioParts::new(|x, q: &mut [f64], _mesh: &StructuredMesh| {
                exact.evaluate(x, 0.0, q);
            })
            .with_exact(&exact),
        )
    }
}

/// `advection_rotation` — a Gaussian patch carried a quarter turn around
/// the domain centre by the divergence-free velocity field
/// `v = ω ẑ × (x − c)`; the gallery's variable-coefficient workload
/// (velocity stored per node as parameters), checked against the exact
/// rigidly-rotated solution.
#[derive(Debug, Clone, Copy)]
pub struct AdvectionRotation;

/// Angular velocity: a quarter turn over the default `t_end = 1`.
const OMEGA: f64 = std::f64::consts::FRAC_PI_2;
/// Rotation centre.
const CENTER: [f64; 3] = [0.5, 0.5, 0.5];

impl Scenario for AdvectionRotation {
    fn info(&self) -> ScenarioInfo {
        ScenarioInfo {
            name: "advection_rotation",
            title: "Gaussian patch on a solid-body rotation (variable coefficients)",
            system: "advection",
            order: 4,
            cells: [4, 4, 4],
            t_end: 1.0,
            kernel: "splitck",
            has_exact: true,
            smoke_cells: [2, 2, 2],
        }
    }

    fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError> {
        let pde = RotatingAdvection {
            omega: OMEGA,
            center: CENTER,
        };
        let exact = RotatingGaussian {
            omega: OMEGA,
            center: CENTER,
            start: [0.7, 0.5, 0.5],
            sigma: 0.1,
            amplitude: 1.0,
        };
        drive(
            &self.info(),
            req,
            |dims| StructuredMesh::new(dims, [0.0; 3], [1.0; 3], [BoundaryKind::Outflow; 3]),
            pde,
            ScenarioParts::new(|x, q: &mut [f64], _mesh: &StructuredMesh| {
                exact.evaluate(x, 0.0, q);
                RotatingAdvection::set_params(q, OMEGA, CENTER, x);
            })
            .with_exact(&exact),
        )
    }
}
