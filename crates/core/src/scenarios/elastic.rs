//! Elastic scenarios: plane-wave convergence, the LOH.1-style layered
//! half-space benchmark (paper Sec. VI), and the `step_scaling`-sized
//! stress workload.

use crate::scenario::{
    drive, RunRequest, RunSummary, Scenario, ScenarioError, ScenarioInfo, ScenarioParts,
};
use aderdg_mesh::{BoundaryKind, CurvilinearMap, InterfaceFittedMap, StructuredMesh};
use aderdg_pde::{
    elastic, Elastic, ElasticPlaneWave, ExactSolution, Material, PointSource, SourceTimeFunction,
};

/// `elastic_wave` — a P-wave on the periodic unit cube with the full
/// `m = 21` stored quantities (identity metric), checked against the
/// exact plane-wave solution.
#[derive(Debug, Clone, Copy)]
pub struct ElasticWave;

impl Scenario for ElasticWave {
    fn info(&self) -> ScenarioInfo {
        ScenarioInfo {
            name: "elastic_wave",
            title: "periodic elastic P-wave, m = 21 quantities, vs exact solution",
            system: "elastic",
            order: 4,
            cells: [3, 3, 3],
            t_end: 0.3,
            kernel: "splitck",
            has_exact: true,
            smoke_cells: [2, 2, 2],
        }
    }

    fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError> {
        let mat = Material {
            rho: 1.0,
            cp: 1.0,
            cs: 0.6,
        };
        let wave = ElasticPlaneWave {
            direction: [1.0, 0.0, 0.0],
            polarization: [1.0, 0.0, 0.0],
            amplitude: 0.1,
            wavenumber: 1.0,
            material: mat,
        };
        drive(
            &self.info(),
            req,
            |dims| StructuredMesh::new(dims, [0.0; 3], [1.0; 3], [BoundaryKind::Periodic; 3]),
            Elastic,
            ScenarioParts::new(|x, q: &mut [f64], _mesh: &StructuredMesh| {
                wave.evaluate(x, 0.0, q);
                Elastic::set_params(q, mat, &Elastic::IDENTITY_JAC);
            })
            .with_exact(&wave),
        )
    }
}

/// `loh1` — Layer Over Halfspace (paper Sec. VI): a low-velocity elastic
/// layer over a stiffer half-space on an interface-fitted curvilinear
/// mesh, a buried Ricker-wavelet point source, a free surface on top and
/// surface receivers recording seismograms.
#[derive(Debug, Clone, Copy)]
pub struct Loh1;

/// LOH1 soft-layer material (scaled units).
const LAYER: Material = Material {
    rho: 1.0,
    cp: 1.0,
    cs: 0.58,
};
/// LOH1 half-space material (scaled units).
const HALFSPACE: Material = Material {
    rho: 1.3,
    cp: 1.6,
    cs: 0.92,
};

/// The interface-fitted vertical stretch: the mesh plane `z = 0.75` is
/// pulled to the material interface at depth `z = 0.7`, with a small
/// lateral bump. `z = 0.75` is a cell boundary of every mesh whose
/// z-dimension is a multiple of 4 (the default 4³ grid and the
/// `[2, 2, 4]` smoke grid), so no cell straddles the interface.
const MAP: InterfaceFittedMap = InterfaceFittedMap {
    plane_z: 0.75,
    interface_z: 0.7,
    bump: 0.02,
};

/// Surface-receiver offsets from the epicentre along the 45° azimuth.
pub const LOH1_OFFSETS: [f64; 3] = [0.1, 0.2, 0.35];

impl Scenario for Loh1 {
    fn info(&self) -> ScenarioInfo {
        ScenarioInfo {
            name: "loh1",
            title: "LOH.1-style layered elastic half-space with buried point source",
            system: "elastic",
            order: 4,
            cells: [4, 4, 4],
            t_end: 2.2,
            kernel: "aosoa_splitck",
            has_exact: false,
            smoke_cells: [2, 2, 4],
        }
    }

    fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError> {
        // The interface-fitted map pulls the mesh plane z = 0.75 to the
        // material interface; the per-cell material assignment below is
        // only exact when that plane is a cell boundary. Reject a
        // `--cells` override that would let a cell straddle the
        // interface (silently mis-located seismogram arrivals otherwise).
        let dims = crate::scenario::resolve(&self.info(), req)?.dims;
        if dims[2] % 4 != 0 {
            return Err(ScenarioError::new(format!(
                "loh1 needs a z-dimension that is a multiple of 4 (got {}), so the mesh plane \
                 z = 0.75 fitted to the material interface is a cell boundary",
                dims[2]
            )));
        }
        // Buried double-couple-like source: moment rate on σxy below the
        // interface, Ricker wavelet with its dominant frequency resolved
        // by the default mesh (≥ ~4 cells/wavelength in the slow layer).
        let mut amplitude = vec![0.0; elastic::VARS];
        amplitude[elastic::SXY] = 1.0;
        let source = PointSource {
            position: [0.5, 0.5, 0.55],
            amplitude,
            stf: SourceTimeFunction::Ricker {
                t0: 0.6,
                frequency: 1.8,
            },
        };
        // Surface receivers at increasing offset along the 45° azimuth
        // (maximum P radiation of an σxy double-couple; the coordinate
        // axes are its nodal planes).
        let receivers: Vec<[f64; 3]> = LOH1_OFFSETS
            .iter()
            .map(|&dx| {
                let h = dx / std::f64::consts::SQRT_2;
                [0.5 + h, 0.5 + h, 0.97]
            })
            .collect();
        drive(
            &self.info(),
            req,
            |dims| {
                StructuredMesh::new(
                    dims,
                    [0.0; 3],
                    [1.0; 3],
                    [
                        BoundaryKind::Outflow,
                        BoundaryKind::Outflow,
                        BoundaryKind::Reflective, // free surface (elastic ghost)
                    ],
                )
            },
            Elastic,
            ScenarioParts::new(|x, q: &mut [f64], mesh: &StructuredMesh| {
                // Quiescent medium; material constant per cell (the map
                // fits the interface to a cell boundary), metric varying
                // smoothly per node.
                q.fill(0.0);
                let cell_center = mesh.cell_center(mesh.locate(x));
                let mat = if MAP.map(cell_center)[2] > 0.7 {
                    LAYER
                } else {
                    HALFSPACE
                };
                let metric = MAP.metric(x);
                Elastic::set_params(q, mat, &metric);
            })
            .with_sources(vec![source])
            .with_receivers(receivers),
        )
    }
}

/// `elastic_stress` — the stress workload, sized like the `step_scaling`
/// bench default (order 5, 6³ cells) but on the paper's 21-quantity
/// elastic system with the AoSoA SplitCK kernel: a short high-load run
/// whose `cell_updates_per_second` is the headline number.
#[derive(Debug, Clone, Copy)]
pub struct ElasticStress;

impl Scenario for ElasticStress {
    fn info(&self) -> ScenarioInfo {
        ScenarioInfo {
            name: "elastic_stress",
            title: "step_scaling-sized stress run: order 5, 6^3 cells, m = 21",
            system: "elastic",
            order: 5,
            cells: [6, 6, 6],
            t_end: 0.005,
            kernel: "aosoa_splitck",
            has_exact: true,
            smoke_cells: [2, 2, 2],
        }
    }

    fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError> {
        let mat = Material {
            rho: 2.7,
            cp: 6.0,
            cs: 3.46,
        };
        let wave = ElasticPlaneWave {
            direction: [0.0, 1.0, 0.0],
            polarization: [0.0, 1.0, 0.0],
            amplitude: 0.1,
            wavenumber: 1.0,
            material: mat,
        };
        drive(
            &self.info(),
            req,
            |dims| StructuredMesh::new(dims, [0.0; 3], [1.0; 3], [BoundaryKind::Periodic; 3]),
            Elastic,
            ScenarioParts::new(|x, q: &mut [f64], _mesh: &StructuredMesh| {
                wave.evaluate(x, 0.0, q);
                Elastic::set_params(q, mat, &Elastic::IDENTITY_JAC);
            })
            .with_exact(&wave),
        )
    }
}
