//! The built-in scenario gallery — eleven registry-resolved workloads
//! spanning all five PDE systems (acoustics, advection, elasticity,
//! Maxwell, shallow water).
//!
//! Every scenario here is documented in `docs/SCENARIOS.md` with its
//! reproduction command and expected norms; the CLI smoke gate
//! (`aderdg-run --smoke-all`) fails if a registered scenario is missing
//! from that gallery, so registration and documentation cannot drift
//! apart. Adding a scenario is one `impl Scenario`, one
//! [`register`](crate::scenario::ScenarioRegistry::register) call below,
//! and one gallery section.

mod acoustic;
mod advection;
mod elastic;
mod maxwell;
mod swe;

pub use acoustic::{AcousticLayered, AcousticPulse, AcousticWave};
pub use advection::{AdvectionRotation, AdvectionWave};
pub use elastic::{ElasticStress, ElasticWave, Loh1, LOH1_OFFSETS};
pub use maxwell::MaxwellCavity;
pub use swe::{SweDamBreak, SweLakeAtRest};

use crate::scenario::ScenarioRegistry;

/// Registers the built-in gallery into a registry (called once by
/// [`ScenarioRegistry::global`]).
pub fn register_builtin(registry: &ScenarioRegistry) {
    registry.register(&AcousticWave);
    registry.register(&AcousticPulse);
    registry.register(&AcousticLayered);
    registry.register(&AdvectionWave);
    registry.register(&AdvectionRotation);
    registry.register(&ElasticWave);
    registry.register(&Loh1);
    registry.register(&ElasticStress);
    registry.register(&MaxwellCavity);
    registry.register(&SweLakeAtRest);
    registry.register(&SweDamBreak);
}

#[cfg(test)]
mod tests {
    use crate::scenario::{RunRequest, ScenarioRegistry};
    use std::collections::BTreeSet;

    #[test]
    fn gallery_has_at_least_eight_scenarios_covering_all_five_systems() {
        let registry = ScenarioRegistry::global();
        let scenarios = registry.scenarios();
        assert!(scenarios.len() >= 8, "only {} scenarios", scenarios.len());
        let systems: BTreeSet<&str> = scenarios.iter().map(|s| s.info().system).collect();
        for system in ["acoustic", "advection", "elastic", "maxwell", "swe"] {
            assert!(systems.contains(system), "no scenario covers `{system}`");
        }
    }

    #[test]
    fn gallery_defaults_are_resolvable() {
        for scenario in ScenarioRegistry::global().scenarios() {
            let info = scenario.info();
            crate::scenario::resolve(&info, &RunRequest::new())
                .unwrap_or_else(|e| panic!("scenario `{}` has invalid defaults: {e}", info.name));
            assert!(info.t_end > 0.0);
            assert!(info.cells.iter().all(|&c| c >= 1));
            assert!(info.smoke_cells.iter().all(|&c| c >= 1));
            // Smoke grids must actually be small — the CI gate runs every
            // scenario through them.
            assert!(
                info.smoke_cells.iter().product::<usize>() <= 16,
                "scenario `{}` smoke grid too large",
                info.name
            );
        }
    }
}
