//! Projection of volume tensors onto element faces.
//!
//! Contracts the node index normal to a face with the boundary-evaluation
//! vector `φ(0)` or `φ(1)`. The paper notes this is a single small
//! matrix-matrix product with no further optimization head-room
//! (Sec. II-B); we implement it once, shared by every kernel variant.
//!
//! Face-node ordering: x-faces use `(k3, k2)`, y-faces `(k3, k1)`,
//! z-faces `(k2, k1)` — adjacent cells therefore index their shared face
//! identically.

use crate::plan::StpPlan;

/// Projects the padded AoS volume tensor `vol` onto the face of normal
/// dimension `d` and `side` (0 = lower, 1 = upper), writing the padded
/// face tensor `out`.
pub fn project_to_face(plan: &StpPlan, vol: &[f64], d: usize, side: usize, out: &mut [f64]) {
    let n = plan.n();
    let m = plan.m();
    let m_pad = plan.aos.m_pad();
    let mf_pad = plan.face.m_pad();
    let phi = if side == 0 {
        &plan.basis.phi_left
    } else {
        &plan.basis.phi_right
    };
    debug_assert!(vol.len() >= plan.aos.len());
    debug_assert!(out.len() >= plan.face.len());
    out[..plan.face.len()].fill(0.0);
    match d {
        0 => {
            // Contract k1; face nodes (k3, k2).
            for k3 in 0..n {
                for k2 in 0..n {
                    let fo = (k3 * n + k2) * mf_pad;
                    let base = (k3 * n + k2) * n * m_pad;
                    for (k1, &w) in phi.iter().enumerate() {
                        let vo = base + k1 * m_pad;
                        for s in 0..m {
                            out[fo + s] += w * vol[vo + s];
                        }
                    }
                }
            }
        }
        1 => {
            // Contract k2; face nodes (k3, k1).
            for k3 in 0..n {
                for (k2, &w) in phi.iter().enumerate() {
                    let base = (k3 * n + k2) * n * m_pad;
                    for k1 in 0..n {
                        let fo = (k3 * n + k1) * mf_pad;
                        let vo = base + k1 * m_pad;
                        for s in 0..m {
                            out[fo + s] += w * vol[vo + s];
                        }
                    }
                }
            }
        }
        _ => {
            // Contract k3; face nodes (k2, k1).
            for (k3, &w) in phi.iter().enumerate() {
                for k2 in 0..n {
                    let base = (k3 * n + k2) * n * m_pad;
                    for k1 in 0..n {
                        let fo = (k2 * n + k1) * mf_pad;
                        let vo = base + k1 * m_pad;
                        for s in 0..m {
                            out[fo + s] += w * vol[vo + s];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{StpConfig, StpPlan};

    fn plan(n: usize, m: usize) -> StpPlan {
        StpPlan::new(StpConfig::new(n, m), [1.0; 3])
    }

    /// Fills a volume tensor with a separable polynomial field so the face
    /// values are known analytically.
    fn poly_volume(plan: &StpPlan, f: impl Fn(f64, f64, f64, usize) -> f64) -> Vec<f64> {
        let n = plan.n();
        let m = plan.m();
        let m_pad = plan.aos.m_pad();
        let x = &plan.basis.nodes;
        let mut v = vec![0.0; plan.aos.len()];
        for k3 in 0..n {
            for k2 in 0..n {
                for k1 in 0..n {
                    for s in 0..m {
                        v[((k3 * n + k2) * n + k1) * m_pad + s] = f(x[k1], x[k2], x[k3], s);
                    }
                }
            }
        }
        v
    }

    #[test]
    fn projects_polynomial_boundary_values_exactly() {
        let p = plan(5, 3);
        // q(x, y, z; s) = (x² + s)(1 + y)(2 − z) — degree < n per dim.
        let field = |x: f64, y: f64, z: f64, s: usize| (x * x + s as f64) * (1.0 + y) * (2.0 - z);
        let vol = poly_volume(&p, field);
        let mf_pad = p.face.m_pad();
        let nodes = p.basis.nodes.clone();
        let mut out = vec![0.0; p.face.len()];

        // x-lower face: x = 0, face nodes (k3, k2).
        project_to_face(&p, &vol, 0, 0, &mut out);
        for k3 in 0..5 {
            for k2 in 0..5 {
                for s in 0..3 {
                    let want = field(0.0, nodes[k2], nodes[k3], s);
                    let got = out[(k3 * 5 + k2) * mf_pad + s];
                    assert!((got - want).abs() < 1e-11, "x0 {k3},{k2},{s}");
                }
            }
        }
        // y-upper face: y = 1, face nodes (k3, k1).
        project_to_face(&p, &vol, 1, 1, &mut out);
        for k3 in 0..5 {
            for k1 in 0..5 {
                for s in 0..3 {
                    let want = field(nodes[k1], 1.0, nodes[k3], s);
                    let got = out[(k3 * 5 + k1) * mf_pad + s];
                    assert!((got - want).abs() < 1e-11, "y1 {k3},{k1},{s}");
                }
            }
        }
        // z-lower face: z = 0, face nodes (k2, k1).
        project_to_face(&p, &vol, 2, 0, &mut out);
        for k2 in 0..5 {
            for k1 in 0..5 {
                for s in 0..3 {
                    let want = field(nodes[k1], nodes[k2], 0.0, s);
                    let got = out[(k2 * 5 + k1) * mf_pad + s];
                    assert!((got - want).abs() < 1e-11, "z0 {k2},{k1},{s}");
                }
            }
        }
    }

    #[test]
    fn constant_field_projects_to_constant() {
        let p = plan(4, 2);
        let vol = poly_volume(&p, |_, _, _, s| 3.0 + s as f64);
        let mut out = vec![0.0; p.face.len()];
        for d in 0..3 {
            for side in 0..2 {
                project_to_face(&p, &vol, d, side, &mut out);
                for node in 0..16 {
                    for s in 0..2 {
                        let got = out[node * p.face.m_pad() + s];
                        assert!((got - (3.0 + s as f64)).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn padding_lanes_stay_zero() {
        let p = plan(3, 3);
        let vol = poly_volume(&p, |x, _, _, _| x);
        let mut out = vec![f64::NAN; p.face.len()];
        project_to_face(&p, &vol, 0, 1, &mut out);
        for node in 0..9 {
            for s in 3..p.face.m_pad() {
                assert_eq!(out[node * p.face.m_pad() + s], 0.0);
            }
        }
    }
}
