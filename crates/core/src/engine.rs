//! The ADER-DG engine: mesh-level orchestration of predictor, Riemann
//! solve and corrector (the Rust counterpart of the paper's TBB task
//! parallelism within one MPI rank).
//!
//! Two step pipelines exist, selected by [`EngineConfig::pipeline`]:
//!
//! * [`PipelineMode::Sharded`] (default) — the mesh is partitioned into
//!   contiguous cell shards ([`aderdg_mesh::ShardPlan`]); each interior
//!   face's Rusanov flux is solved **exactly once** (eq. 5) into a
//!   face-indexed buffer, and per-shard predictor → face-sweep → apply
//!   tasks run on a dependency scheduler ([`par::run_graph_init`]) with
//!   no global predictor→corrector barrier: a shard's face sweep starts
//!   as soon as its own and its neighbouring shards' predictors finish.
//! * [`PipelineMode::Barrier`] — the seed cell-centric loop (every
//!   interior face solved twice, global barrier between predictor and
//!   corrector), kept as the hermetic baseline the sharded path is
//!   pinned against.

use crate::block::{BlockInputs, CellBlock};
use crate::corrector::{apply_face, apply_volume, CorrectorScratch};
use crate::kernels::{StpInputs, StpKernel, StpOutputs, StpScratch};
use crate::par;
use crate::plan::{CellSource, KernelVariant, StpConfig, StpPlan};
use crate::registry::KernelRegistry;
use crate::riemann::{boundary_face, rusanov_face, BoundaryScratch};
use crate::tune::{tune_plan, TuneReport, TuningMode};
use aderdg_mesh::{
    assign_levels, Face, FaceTopo, LtsGraph, LtsTask, Neighbor, ShardPlan, StructuredMesh,
    MAX_LTS_LEVEL,
};
use aderdg_pde::{LinearPde, PointSource};
use aderdg_tensor::AlignedVec;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock, RwLock};

/// Which step pipeline the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineMode {
    /// Seed cell-centric loop: every interior face's Riemann problem is
    /// solved twice (once per adjacent cell) and a global barrier
    /// separates predictor and corrector. Hermetic baseline.
    Barrier,
    /// Face-centric shard pipeline: one Riemann solve per face into a
    /// face-indexed buffer; per-shard predictor/face-sweep/apply tasks
    /// chained by a dependency scheduler, no global barrier. Results are
    /// pinned to the barrier path by `tests/pipeline_equivalence.rs` and
    /// stay bit-identical across worker-thread counts.
    Sharded,
}

impl PipelineMode {
    /// Parses a specification-file / environment value
    /// (`barrier` | `sharded`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "barrier" => Some(Self::Barrier),
            "sharded" => Some(Self::Sharded),
            _ => None,
        }
    }

    /// The process default: `ADERDG_PIPELINE` if set (the CI matrix
    /// forces both paths through it), else [`PipelineMode::Sharded`].
    ///
    /// # Panics
    /// If `ADERDG_PIPELINE` is set to an unknown value — configuration
    /// typos should fail loudly, not silently fall back.
    pub fn default_from_env() -> Self {
        match std::env::var("ADERDG_PIPELINE") {
            Ok(v) => Self::parse(&v)
                // PANIC-OK: configuration typos fail loudly by policy
                // (see doc comment above).
                .unwrap_or_else(|| panic!("unknown ADERDG_PIPELINE `{v}` (barrier|sharded)")),
            Err(_) => Self::Sharded,
        }
    }

    /// The specification-file spelling (inverse of [`PipelineMode::parse`]).
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Barrier => "barrier",
            Self::Sharded => "sharded",
        }
    }
}

/// Which time-stepping strategy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteppingMode {
    /// Every cell advances at the one global CFL-stable dt. The
    /// default: simplest, and the reference the LTS path is pinned
    /// against.
    Global,
    /// Clustered local time stepping: cells are bucketed into
    /// power-of-two dt-clusters ([`aderdg_mesh::assign_levels`]) and
    /// one [`Engine::step`] advances a whole **macro cycle** on the
    /// shard task graph — coarse clusters take fewer, longer sub-steps.
    /// `max_dt` returns the macro step (`2^Lmax` × the global stable
    /// dt), so drive loops are unchanged. See `docs/LTS.md`.
    Lts,
}

impl SteppingMode {
    /// Parses a specification-file / environment value
    /// (`global` | `lts`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "global" => Some(Self::Global),
            "lts" => Some(Self::Lts),
            _ => None,
        }
    }

    /// The process default: `ADERDG_STEPPING` if set (the CI matrix
    /// forces the LTS path through it), else [`SteppingMode::Global`].
    ///
    /// # Panics
    /// If `ADERDG_STEPPING` is set to an unknown value — configuration
    /// typos should fail loudly, not silently fall back.
    pub fn default_from_env() -> Self {
        match std::env::var("ADERDG_STEPPING") {
            Ok(v) => Self::parse(&v)
                // PANIC-OK: configuration typos fail loudly by policy
                // (see doc comment above).
                .unwrap_or_else(|| panic!("unknown ADERDG_STEPPING `{v}` (global|lts)")),
            Err(_) => Self::Global,
        }
    }

    /// The specification-file spelling (inverse of
    /// [`SteppingMode::parse`]).
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Global => "global",
            Self::Lts => "lts",
        }
    }
}

/// A degenerate CFL step: [`Engine::max_dt`] came back zero, negative or
/// non-finite (an infinite wavespeed, a NaN in the state). Returned by
/// [`Engine::advance_until`]; [`Engine::run_until`] panics with the same
/// message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegenerateDt {
    /// The offending time step.
    pub dt: f64,
}

impl std::fmt::Display for DegenerateDt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "degenerate time step {}", self.dt)
    }
}

impl std::error::Error for DegenerateDt {}

/// Engine-level configuration.
///
/// Every knob has a sensible default from [`EngineConfig::new`]; the
/// builder methods override them individually. When to change what:
///
/// * **`order`** — accuracy vs cost. Each increment multiplies the
///   per-cell work roughly by `(N+1)⁴/N⁴` but raises the convergence
///   rate; the paper evaluates orders 2–12. Raise it (and coarsen the
///   mesh) for smooth solutions; lower it for discontinuous data.
/// * **`kernel`** — which Space-Time Predictor variant runs; resolved
///   from the [`KernelRegistry`]. `splitck` (the default) is the best
///   all-round cache-aware variant; `aosoa_splitck` wins once the
///   vectorized user functions dominate (high order, many quantities);
///   `generic` is the readable reference, useful for debugging.
/// * **`cfl`** — time-step safety factor (≤ 0.45 empirically for the
///   3-D scheme). Lower it only if a run blows up (strongly varying
///   material parameters); raising it risks instability.
/// * **`width`** — SIMD padding/dispatch width. Leave at `None` (host
///   width) except to reproduce the paper's narrower-build comparisons
///   (e.g. AVX2 padding on an AVX-512 machine, Fig. 4).
/// * **`rule`** — quadrature rule. Gauss-Legendre (default) is the
///   paper's choice; Gauss-Lobatto includes the element boundary in the
///   node set, trading a slightly worse conditioning for cheaper face
///   coupling in schemes that exploit it.
/// * **`block_size`** — cells per predictor block. `None` (default)
///   leaves the choice to the tuner (see `tuning`): big blocks amortize
///   operator loads (the win of the batched pipeline), but a block that
///   outgrows L2 pays more in re-fetched state than it saves. Set it
///   explicitly to `1` to force the per-cell path or when benchmarking
///   the sweet spot with the `block_sweep` bench binary.
/// * **`tuning`** — how the block size and GEMM backend are picked when
///   not overridden. `model` (default) replays the kernel's block access
///   pattern through a cache simulator and takes the cheapest predicted
///   candidate — deterministic, no timing involved. `static` reproduces
///   the original [`auto_block_size`] footprint heuristic and the
///   widest-supported backend (hermetic CI baseline). `probe`
///   additionally times real `run_block` calls and ranks GEMM backends
///   by measured speed — fastest, but machine-dependent. The decision is
///   recorded in [`Engine::tune_report`].
/// * **`pipeline`** — `sharded` (default; overridable process-wide via
///   `ADERDG_PIPELINE`) runs the once-per-face shard pipeline: half the
///   interior Riemann solves and no predictor→corrector barrier. Switch
///   to `barrier` to reproduce the seed cell-centric loop (hermetic
///   baselines, A/B timing via the `step_scaling` bench).
/// * **`shard_size`** — cells per shard of the sharded pipeline. `None`
///   (default) targets enough shards for pipelining while keeping shard
///   boundaries aligned to predictor blocks ([`auto_shard_size`]).
///   Smaller shards expose more overlap, larger shards amortize more
///   scheduling; the pick never changes results.
#[derive(Clone, Copy)]
pub struct EngineConfig {
    /// STP kernel to run, resolved from the [`KernelRegistry`].
    pub kernel: &'static dyn StpKernel,
    /// Scheme order (nodes per dimension).
    pub order: usize,
    /// CFL safety factor (≤ 1).
    pub cfl: f64,
    /// SIMD width for padding/dispatch (`None` = host width).
    pub width: Option<aderdg_tensor::SimdWidth>,
    /// Quadrature/interpolation rule.
    pub rule: aderdg_quadrature::QuadratureRule,
    /// Cells per predictor block (`None` = let the tuner decide, see
    /// [`TuningMode`]).
    pub block_size: Option<usize>,
    /// Plan-time tuning strategy for the block size and GEMM backend.
    pub tuning: TuningMode,
    /// Step pipeline (see [`PipelineMode`]).
    pub pipeline: PipelineMode,
    /// Cells per shard of the sharded pipeline (`None` = automatic, see
    /// [`auto_shard_size`]). Ignored on the barrier path.
    pub shard_size: Option<usize>,
    /// Time-stepping strategy (see [`SteppingMode`]). Under
    /// [`SteppingMode::Lts`] the engine always runs the LTS shard graph
    /// and `pipeline` is ignored.
    pub stepping: SteppingMode,
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("kernel", &self.kernel.name())
            .field("order", &self.order)
            .field("cfl", &self.cfl)
            .field("width", &self.width)
            .field("rule", &self.rule)
            .field("block_size", &self.block_size)
            .field("tuning", &self.tuning)
            .field("pipeline", &self.pipeline)
            .field("shard_size", &self.shard_size)
            .field("stepping", &self.stepping)
            .finish()
    }
}

impl EngineConfig {
    /// Default configuration: SplitCK at the given order, CFL factor 0.4.
    ///
    /// The CFL factor multiplies the estimate
    /// `1/((2N−1)·Σ_d s_d/Δx_d)`; empirically the 3-D ADER-DG scheme with
    /// Rusanov fluxes is stable up to ≈ 0.45 of it (consistent with the
    /// ~0.33–0.45 stability factors reported for ADER-DG in the
    /// literature), so 0.4 leaves a safety margin.
    pub fn new(order: usize) -> Self {
        Self {
            kernel: KernelVariant::SplitCk.kernel(),
            order,
            cfl: 0.4,
            width: None,
            rule: aderdg_quadrature::QuadratureRule::GaussLegendre,
            block_size: None,
            tuning: TuningMode::default(),
            pipeline: PipelineMode::default_from_env(),
            shard_size: None,
            stepping: SteppingMode::default_from_env(),
        }
    }

    /// Selects a kernel by registry object (builder style).
    pub fn with_kernel(mut self, kernel: &'static dyn StpKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Selects a kernel by registry key (builder style).
    ///
    /// # Panics
    /// If no kernel of that name is registered; use
    /// [`KernelRegistry::resolve`] directly for fallible lookup.
    pub fn with_kernel_name(mut self, name: &str) -> Self {
        self.kernel = KernelRegistry::global()
            .resolve(name)
            // PANIC-OK: documented contract (`# Panics` above); fallible
            // lookup is `KernelRegistry::resolve`.
            .unwrap_or_else(|| panic!("no registered kernel named `{name}`"));
        self
    }

    /// Selects one of the paper's four variants (builder style).
    pub fn with_variant(mut self, variant: KernelVariant) -> Self {
        self.kernel = variant.kernel();
        self
    }

    /// Selects the quadrature rule (builder style).
    pub fn with_rule(mut self, rule: aderdg_quadrature::QuadratureRule) -> Self {
        self.rule = rule;
        self
    }

    /// Selects the SIMD width (builder style).
    pub fn with_width(mut self, width: aderdg_tensor::SimdWidth) -> Self {
        self.width = Some(width);
        self
    }

    /// Fixes the predictor block size (builder style); `1` forces the
    /// per-cell path.
    ///
    /// # Panics
    /// If `block_size` is zero.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        assert!(block_size >= 1, "block size must be at least 1");
        self.block_size = Some(block_size);
        self
    }

    /// Selects the plan-time tuning strategy (builder style).
    pub fn with_tuning(mut self, tuning: TuningMode) -> Self {
        self.tuning = tuning;
        self
    }

    /// Selects the step pipeline (builder style).
    pub fn with_pipeline(mut self, pipeline: PipelineMode) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Fixes the shard size of the sharded pipeline (builder style).
    ///
    /// # Panics
    /// If `shard_size` is zero.
    pub fn with_shard_size(mut self, shard_size: usize) -> Self {
        assert!(shard_size >= 1, "shard size must be at least 1");
        self.shard_size = Some(shard_size);
        self
    }

    /// Selects the time-stepping strategy (builder style).
    pub fn with_stepping(mut self, stepping: SteppingMode) -> Self {
        self.stepping = stepping;
        self
    }
}

/// Cache budget the *static* block-size heuristic targets: half of a
/// typical 1 MiB per-core L2, leaving the other half for the cell states
/// and predictor outputs streaming through the block.
pub const BLOCK_L2_BUDGET_BYTES: usize = 512 * 1024;

/// Largest block any tuning mode picks: past this, the amortization of
/// the operator loads has long saturated and bigger blocks only reduce
/// the parallel grain count.
pub const BLOCK_SIZE_CAP: usize = 16;

/// The *static* block-size heuristic (`tuning = static`): the largest
/// `B ≤ 16` whose block working set `B · footprint` fits a 512 KiB L2
/// budget, and at least `1`, from the kernel's per-cell scratch footprint
/// ([`StpKernel::footprint_bytes`]). Low-footprint kernels (SplitCK at
/// moderate order) get wide blocks; the generic kernel's `O(N⁴m)`
/// temporaries quickly force `B = 1`.
///
/// The default `model` tuning mode replaces this constant-budget guess
/// with a cache-simulated ranking (see [`crate::tune`]); the heuristic
/// remains both the hermetic fallback and the answer for kernels whose
/// `run_block` is the per-cell fallback.
pub fn auto_block_size(footprint_bytes: usize) -> usize {
    (BLOCK_L2_BUDGET_BYTES / footprint_bytes.max(1)).clamp(1, BLOCK_SIZE_CAP)
}

/// Shard count the automatic shard size aims for: three tasks per shard
/// gives ~144 schedulable tasks — enough slack to keep 16 workers busy
/// through the dependency waves without shrinking shards into scheduling
/// noise.
pub const SHARD_COUNT_TARGET: usize = 48;

/// The automatic shard size of the sharded pipeline: cells per shard
/// targeting [`SHARD_COUNT_TARGET`] shards, rounded **up** to a multiple
/// of the predictor block size so shard boundaries never split a cell
/// block (the block partition — and therefore every batched kernel's
/// floating-point result — stays identical to the barrier path's).
///
/// Deliberately independent of the worker-thread count: the shard
/// partition must never leak into results, and
/// `tests/determinism.rs` pins step output bit-identical across 1/4/16
/// threads.
pub fn auto_shard_size(cells: usize, block_size: usize) -> usize {
    let target = cells.div_ceil(SHARD_COUNT_TARGET).max(1);
    target.div_ceil(block_size.max(1)) * block_size.max(1)
}

/// A point probe recording the evolved quantities over time.
#[derive(Debug, Clone)]
pub struct Receiver {
    /// Physical probe position.
    pub position: [f64; 3],
    cell: usize,
    /// Per-dimension basis values at the probe's reference coordinates.
    phi: [Vec<f64>; 3],
    /// Recorded `(time, values)` samples.
    pub records: Vec<(f64, Vec<f64>)>,
}

/// The time-stepping engine over a structured mesh.
pub struct Engine<P: LinearPde> {
    /// The mesh.
    pub mesh: StructuredMesh,
    /// The PDE system.
    pub pde: P,
    /// The kernel plan (shared by all cells — uniform mesh).
    pub plan: StpPlan,
    /// Engine configuration.
    pub config: EngineConfig,
    /// Per-cell DOFs, padded AoS.
    state: Vec<AlignedVec>,
    /// Per-cell predictor outputs of the current step.
    outputs: Vec<StpOutputs>,
    /// Registered point sources by containing cell.
    sources: Vec<(usize, PointSource)>,
    /// Per-cell source projections: spatial `node_coeffs` computed once at
    /// registration; only the time-dependent `derivs` are refreshed each
    /// step.
    cell_sources: BTreeMap<usize, CellSource>,
    /// Registered receiver probes.
    pub receivers: Vec<Receiver>,
    /// Resolved predictor block size (config override or tuner pick).
    block_size: usize,
    /// Shard pipeline state (`None` on the barrier path).
    shards: Option<ShardState>,
    /// What the plan-time tuner decided (block size, GEMM backend) and
    /// the candidates it weighed.
    tune: TuneReport,
    /// Simulated time.
    pub time: f64,
    /// Steps taken.
    pub steps: usize,
    /// LTS metadata (cluster-aware shard plan, macro task graph, base
    /// dt), built lazily from the current state's per-cell stable-dt
    /// field at the first [`Engine::max_dt`] or step under
    /// [`SteppingMode::Lts`], and invalidated whenever the state is
    /// replaced wholesale.
    lts: OnceLock<LtsMeta>,
    /// LTS runtime buffers (face-flux storage, sub-window accumulators,
    /// halo half-window outputs), allocated at the first LTS step.
    lts_bufs: Option<LtsBufs>,
    /// Per-cluster `(time, sub_steps)` clocks, indexed by cluster level.
    /// Empty until the first LTS step; serialized through checkpoints so
    /// a resumed run continues them exactly.
    lts_clocks: Vec<(f64, u64)>,
}

impl<P: LinearPde> std::fmt::Debug for Engine<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("dims", &self.mesh.dims)
            .field("order", &self.config.order)
            .field("kernel", &self.config.kernel.name())
            .field("pipeline", &self.config.pipeline)
            .field("block_size", &self.block_size)
            .field("time", &self.time)
            .field("steps", &self.steps)
            .finish_non_exhaustive()
    }
}

/// Shard-pipeline state: the partition/face index plus the face-indexed
/// flux storage and the (static) task dependency graph.
struct ShardState {
    /// Shard partition and canonical face enumeration.
    plan: ShardPlan,
    /// Per-shard storage for the owned faces' resolved fluxes `F*`
    /// (`owned_faces × plan.face.len()` doubles each). Locks are only
    /// ever taken uncontended — the task graph orders the one writer
    /// (the shard's face sweep) before all readers (the apply tasks).
    f_star: Vec<RwLock<Vec<f64>>>,
    /// Unmet-dependency counts of the step's task graph (task ids:
    /// `Predict(s) = s`, `Flux(s) = ns + s`, `Apply(s) = 2·ns + s`).
    /// The graph depends only on the shard plan, so it is built once.
    indegree: Vec<usize>,
    /// Edges of the task graph: `dependents[t]` are unblocked by `t`.
    dependents: Vec<Vec<usize>>,
}

impl ShardState {
    /// Builds the pipeline state (flux storage + task graph) for a shard
    /// plan.
    fn new(splan: ShardPlan, face_len: usize) -> Self {
        let ns = splan.num_shards();
        let f_star = (0..ns)
            .map(|s| RwLock::new(vec![0.0; splan.owned_faces(s).len() * face_len]))
            .collect();
        let mut indegree = vec![0usize; 3 * ns];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); 3 * ns];
        for s in 0..ns {
            for &d in splan.flux_deps(s) {
                dependents[d].push(ns + s);
                indegree[ns + s] += 1;
            }
            for &d in splan.apply_deps(s) {
                dependents[ns + d].push(2 * ns + s);
                indegree[2 * ns + s] += 1;
            }
        }
        Self {
            plan: splan,
            f_star,
            indegree,
            dependents,
        }
    }
}

/// Per-worker scratch of the sharded step (one per scheduler worker,
/// reused across that worker's tasks).
struct ShardScratch<'a> {
    stp: Box<dyn StpScratch>,
    block: CellBlock,
    sources: Vec<Option<&'a CellSource>>,
    corr: CorrectorScratch,
    boundary: BoundaryScratch,
}

/// Clustered-LTS metadata: the level-aware shard partition, the macro
/// task graph over it, and the level-0 (finest) sub-step length. Derived
/// deterministically from the state the engine held when it was built.
struct LtsMeta {
    /// Level-aware shard partition (shards are level-uniform).
    plan: ShardPlan,
    /// The macro-cycle task graph (one predict/apply pair per shard per
    /// sub-window, one flux sweep per shard per owned-face slot).
    graph: LtsGraph,
    /// Stable dt of the finest cluster — the global CFL dt. `max_dt`
    /// reports `dt_base · num_slots` so drive loops step whole macro
    /// cycles.
    dt_base: f64,
}

/// LTS runtime buffers (separate from [`LtsMeta`] so the metadata can be
/// built from `&self` in `max_dt` while the buffers are installed later
/// under `&mut self`).
struct LtsBufs {
    /// Per-shard F* of the *current* sub-window per owned face,
    /// overwritten at each re-solve (same layout as the sharded
    /// pipeline's storage).
    f_star: Vec<RwLock<Vec<f64>>>,
    /// Per-shard F* accumulated over a coarse window for cadence-
    /// mismatched faces: the sub-window-0 solve overwrites, the
    /// sub-window-1 solve adds, and the coarse cell applies the sum —
    /// so the face flux telescopes exactly against the fine cell's two
    /// separate applications. Empty vectors when the run has one level.
    f_star_acc: Vec<RwLock<Vec<f64>>>,
    /// Per-shard half-window predictor outputs for cells that border a
    /// finer face (the sub-window differencing source).
    halo: Vec<RwLock<HaloShard>>,
}

/// Half-window predictor outputs of one shard's cells that border a
/// finer-cadence face.
struct HaloShard {
    /// Shard-local indices of those cells, ascending.
    cells: Vec<usize>,
    /// Half-dt outputs, parallel to `cells`, rewritten by each of the
    /// shard's predict tasks.
    half: Vec<StpOutputs>,
}

/// Splits a flat per-cell buffer into per-shard mutable slices matching
/// `splan.shard_range` (LTS shards are contiguous but not uniform —
/// shard boundaries also break at cluster-level changes, so a plain
/// `chunks_mut` does not apply).
fn shard_slices<'a, T>(splan: &ShardPlan, mut buf: &'a mut [T]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(splan.num_shards());
    for s in 0..splan.num_shards() {
        let (head, tail) = buf.split_at_mut(splan.shard_range(s).len());
        out.push(head);
        buf = tail;
    }
    debug_assert!(buf.is_empty(), "shard ranges must tile the buffer");
    out
}

/// Composes one sub-window face trace of a coarse cell by differencing
/// its full- and half-window predictor runs: the CK Taylor coefficients
/// depend only on `q0`, so the half-dt run's time-integrated trace *is*
/// the first half-window's exactly, and `full − half` the second's,
/// elementwise (trace tensors are time-integrals, hence additive over
/// sub-windows). With ≤ 1-level gradation one halving always suffices.
fn sub_window_trace(
    qtmp: &mut [f64],
    ftmp: &mut [f64],
    full: &StpOutputs,
    half: &StpOutputs,
    fi: usize,
    sub: usize,
) {
    if sub == 0 {
        qtmp.copy_from_slice(&half.qface[fi]);
        ftmp.copy_from_slice(&half.fface[fi]);
    } else {
        let (qf, ff) = (&full.qface[fi], &full.fface[fi]);
        let (qh, fh) = (&half.qface[fi], &half.fface[fi]);
        for i in 0..qtmp.len() {
            qtmp[i] = qf[i] - qh[i];
            ftmp[i] = ff[i] - fh[i];
        }
    }
}

/// Per-worker scratch of the LTS step: the sharded step's set plus a
/// per-cell scratch for halo half-window runs (block scratch may be a
/// different concrete type) and one face-trace temp pair for sub-window
/// differencing (at most one side of a face is ever coarse).
struct LtsScratch<'a> {
    stp: Box<dyn StpScratch>,
    cell: Box<dyn StpScratch>,
    block: CellBlock,
    sources: Vec<Option<&'a CellSource>>,
    corr: CorrectorScratch,
    boundary: BoundaryScratch,
    qtmp: Vec<f64>,
    ftmp: Vec<f64>,
}

/// Looks up a shard's lock guard in a small sorted `(shard, guard)` list
/// (the per-task dependency guards).
fn dep_guard<T>(guards: &[(usize, T)], shard: usize) -> &T {
    let i = guards
        .binary_search_by_key(&shard, |g| g.0)
        // PANIC-OK: internal invariant — the static task graph listed
        // every shard this task may read.
        .expect("shard not in the task's dependency set");
    &guards[i].1
}

impl<P: LinearPde> Engine<P> {
    /// Builds an engine; the plan is derived from the mesh spacing and the
    /// PDE's quantity count.
    pub fn new(mesh: StructuredMesh, pde: P, config: EngineConfig) -> Self {
        let mut cfg = StpConfig::new(config.order, pde.num_quantities());
        if let Some(w) = config.width {
            cfg = cfg.with_width(w);
        }
        cfg.rule = config.rule;
        // Plan-time tuning: pick the GEMM backend and block size (unless
        // overridden) per the configured strategy — the plan comes back
        // already built on the chosen backend, and the report is kept
        // for introspection.
        let (plan, tune_report) = tune_plan(
            cfg,
            mesh.cell_size(),
            config.kernel,
            &pde,
            config.tuning,
            config.block_size,
        );
        let cells = mesh.num_cells();
        let state = (0..cells)
            .map(|_| AlignedVec::zeroed(plan.aos.len()))
            .collect();
        let outputs = (0..cells).map(|_| StpOutputs::new(&plan)).collect();
        let block_size = tune_report.block_size;
        assert!(block_size >= 1, "block size must be at least 1");
        let shards = match config.pipeline {
            PipelineMode::Barrier => None,
            PipelineMode::Sharded => {
                let shard_size = config
                    .shard_size
                    .unwrap_or_else(|| auto_shard_size(cells, block_size));
                Some(ShardState::new(
                    ShardPlan::new(&mesh, shard_size),
                    plan.face.len(),
                ))
            }
        };
        Self {
            mesh,
            pde,
            plan,
            config,
            state,
            outputs,
            sources: Vec::new(),
            cell_sources: BTreeMap::new(),
            receivers: Vec::new(),
            block_size,
            shards,
            tune: tune_report,
            time: 0.0,
            steps: 0,
            lts: OnceLock::new(),
            lts_bufs: None,
            lts_clocks: Vec::new(),
        }
    }

    /// The resolved predictor block size this engine steps with (the
    /// config's override, or the tuner's pick — see
    /// [`Engine::tune_report`]).
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The plan-time tuning decision: chosen block size and GEMM backend,
    /// the static-heuristic baseline, and every candidate the tuner
    /// weighed (with predicted costs, and probe timings in `probe` mode).
    pub fn tune_report(&self) -> &TuneReport {
        &self.tune
    }

    /// The shard partition and canonical face index of the sharded
    /// pipeline (`None` on the barrier path).
    pub fn shard_plan(&self) -> Option<&ShardPlan> {
        self.shards.as_ref().map(|s| &s.plan)
    }

    /// Initializes every node from a closure over physical coordinates.
    /// The closure must fill all `m` stored quantities (including
    /// parameters).
    pub fn set_initial(&mut self, f: impl Fn([f64; 3], &mut [f64]) + Sync) {
        let n = self.plan.n();
        let m = self.plan.m();
        let m_pad = self.plan.aos.m_pad();
        let nodes = self.plan.basis.nodes.clone();
        let mesh = &self.mesh;
        par::for_each_mut(&mut self.state, |c, q| {
            for k3 in 0..n {
                for k2 in 0..n {
                    for k1 in 0..n {
                        let x = mesh.cell_point(c, [nodes[k1], nodes[k2], nodes[k3]]);
                        let node = (k3 * n + k2) * n + k1;
                        f(x, &mut q[node * m_pad..node * m_pad + m]);
                    }
                }
            }
        });
        // New initial data → new per-cell dt field → new clustering.
        self.lts = OnceLock::new();
        self.lts_bufs = None;
        self.lts_clocks.clear();
    }

    /// Registers a point source (projected onto its containing cell).
    ///
    /// # Panics
    /// If another source already lives in the same cell: the predictor
    /// takes one rank-1 `CellSource` per cell, so two co-located sources
    /// cannot be superposed — rejecting loudly beats silently dropping
    /// one of them.
    pub fn add_point_source(&mut self, source: PointSource) {
        let cell = self.mesh.locate(source.position);
        assert!(
            !self.cell_sources.contains_key(&cell),
            "cell {cell} already has a point source; multiple sources per \
             cell are not supported (refine the mesh to separate them)"
        );
        let xi = self.mesh.to_reference(cell, source.position);
        // The spatial projection is time-independent: compute it once here
        // and only refresh the amplitude derivatives per step.
        let projected = CellSource::project(&self.plan, xi, self.mesh.cell_size(), Vec::new());
        self.cell_sources.insert(cell, projected);
        self.sources.push((cell, source));
    }

    /// Refreshes the time-dependent part of every registered source's
    /// projection (`derivs` at `t_n`); the spatial `node_coeffs` were
    /// computed at registration and are never rebuilt.
    fn refresh_source_derivs(&mut self) {
        let n_order = self.plan.n();
        let time = self.time;
        for (cell, src) in &self.sources {
            let cs = self
                .cell_sources
                .get_mut(cell)
                // PANIC-OK: internal invariant — `add_source` inserts
                // the projection when it registers the source.
                .expect("every registered source has a projection");
            cs.derivs = src.amplitude_derivatives(time, n_order);
        }
    }

    /// Adds a receiver probe at a physical position.
    pub fn add_receiver(&mut self, position: [f64; 3]) -> usize {
        let cell = self.mesh.locate(position);
        let xi = self.mesh.to_reference(cell, position);
        let phi = [
            self.plan.basis.basis_at(xi[0]),
            self.plan.basis.basis_at(xi[1]),
            self.plan.basis.basis_at(xi[2]),
        ];
        self.receivers.push(Receiver {
            position,
            cell,
            phi,
            records: Vec::new(),
        });
        self.receivers.len() - 1
    }

    /// One cell's CFL rate `max_nodes Σ_d s_d / Δx_d` — the wave-speed
    /// contributions of the three dimensions add up.
    fn cell_rate(&self, q: &[f64]) -> f64 {
        let n = self.plan.n();
        let m = self.plan.m();
        let m_pad = self.plan.aos.m_pad();
        let dx = self.mesh.cell_size();
        let mut rate: f64 = 0.0;
        for k in 0..n * n * n {
            let mut r = 0.0;
            for d in 0..3 {
                r += self.pde.max_wavespeed(d, &q[k * m_pad..k * m_pad + m]) / dx[d];
            }
            rate = rate.max(r);
        }
        rate
    }

    /// Stable dt for a CFL rate: `cfl / ((2N − 1) · rate)` (infinite for
    /// a quiescent rate — callers surface that as [`DegenerateDt`]).
    fn rate_to_dt(&self, rate: f64) -> f64 {
        if rate == 0.0 {
            f64::INFINITY
        } else {
            self.config.cfl / ((2.0 * self.plan.n() as f64 - 1.0) * rate)
        }
    }

    /// The global CFL-stable dt over all cells.
    fn base_dt(&self) -> f64 {
        self.rate_to_dt(par::map_max(&self.state, 0.0, |q| self.cell_rate(q)))
    }

    /// Maximum stable time step from the multi-dimensional CFL condition
    /// `Δt ≤ cfl / ((2N − 1) · max_cells Σ_d s_d / Δx_d)`.
    ///
    /// Under [`SteppingMode::Lts`] this is the **macro** step
    /// `dt_base · 2^Lmax` (every [`Engine::step`] then runs one whole
    /// macro cycle), so CFL-driven loops like [`Engine::advance_until`]
    /// work unchanged. With a single cluster `Lmax = 0` and the value is
    /// bit-identical to the global-stepping dt.
    pub fn max_dt(&self) -> f64 {
        match self.config.stepping {
            SteppingMode::Global => self.base_dt(),
            SteppingMode::Lts => {
                let meta = self.lts_meta();
                meta.dt_base * meta.graph.num_slots() as f64
            }
        }
    }

    /// The LTS metadata, built from the *current* state on first use and
    /// cached until the state is replaced wholesale ([`Engine::set_initial`],
    /// [`Engine::restore_state`], [`Engine::cell_state_mut`]).
    fn lts_meta(&self) -> &LtsMeta {
        self.lts.get_or_init(|| self.build_lts_meta())
    }

    fn build_lts_meta(&self) -> LtsMeta {
        let cell_dt: Vec<f64> = self
            .state
            .iter()
            .map(|q| self.rate_to_dt(self.cell_rate(q)))
            .collect();
        // Bitwise equal to `base_dt`: f64 division by a positive value
        // is monotone, so the min over per-cell dt is the dt of the max
        // per-cell rate.
        let dt_base = cell_dt.iter().copied().fold(f64::INFINITY, f64::min);
        let levels = assign_levels(&self.mesh, &cell_dt, MAX_LTS_LEVEL);
        let shard_size = self
            .config
            .shard_size
            .unwrap_or_else(|| auto_shard_size(self.mesh.num_cells(), self.block_size));
        let plan = ShardPlan::with_levels(&self.mesh, shard_size, &levels);
        let graph = LtsGraph::build(&plan);
        LtsMeta {
            plan,
            graph,
            dt_base,
        }
    }

    /// Per-cluster `(time, sub_steps)` clocks of the LTS path, indexed
    /// by cluster level. Empty until the first LTS step; serialized
    /// through checkpoints so a resumed run continues them exactly.
    pub fn lts_clocks(&self) -> &[(f64, u64)] {
        &self.lts_clocks
    }

    /// The level-aware shard partition the LTS path steps with (cluster
    /// levels per shard, per-face cadences). Builds the metadata from
    /// the current state on first use.
    pub fn lts_plan(&self) -> &ShardPlan {
        &self.lts_meta().plan
    }

    /// Advances one time step of length `dt` (one whole macro cycle
    /// under [`SteppingMode::Lts`], which ignores the pipeline setting
    /// and always runs the LTS shard graph).
    pub fn step(&mut self, dt: f64) {
        // Source amplitude derivatives are refreshed once per (macro)
        // step at `t_n` — exact for the degenerate single-cluster case;
        // for time-dependent sources under real sub-cycling this is the
        // documented approximation (see docs/LTS.md).
        self.refresh_source_derivs();
        match (self.config.stepping, self.config.pipeline) {
            (SteppingMode::Lts, _) => {
                self.prepare_lts();
                self.step_lts(dt);
            }
            (SteppingMode::Global, PipelineMode::Barrier) => self.step_barrier(dt),
            (SteppingMode::Global, PipelineMode::Sharded) => self.step_sharded(dt),
        }
        self.time += dt;
        self.steps += 1;
        self.record_receivers();
    }

    /// The seed cell-centric step: block predictor over all cells, a
    /// global barrier, then a per-cell corrector that re-solves every
    /// interior face from both adjacent cells (`6 · cells` Riemann solves
    /// per step).
    fn step_barrier(&mut self, dt: f64) {
        let plan = &self.plan;
        let pde = &self.pde;
        let kernel = self.config.kernel;
        let cell_sources = &self.cell_sources;

        // 1. Predictor over cell blocks (element-local, embarrassingly
        //    parallel — the paper's dominant kernel). Contiguous cells
        //    are staged into a per-thread CellBlock and fed through the
        //    kernel's block entry point, so one operator load serves the
        //    whole block; kernels without a real block implementation
        //    fall back to their per-cell path inside `run_block`.
        let state = &self.state;
        let bsize = self.block_size;
        let mut blocks: Vec<&mut [StpOutputs]> = self.outputs.chunks_mut(bsize).collect();
        par::for_each_mut_init(
            &mut blocks,
            || {
                (
                    kernel.make_block_scratch(plan, bsize),
                    CellBlock::new(plan, bsize),
                    Vec::with_capacity(bsize),
                )
            },
            |(scratch, block, sources), bi, outs| {
                let base = bi * bsize;
                block.clear();
                for i in 0..outs.len() {
                    block.push(&state[base + i]);
                }
                sources.clear();
                sources.extend((0..outs.len()).map(|i| cell_sources.get(&(base + i))));
                kernel.run_block(
                    plan,
                    pde,
                    scratch.as_mut(),
                    &BlockInputs::new(block, dt, sources),
                    outs,
                );
            },
        );

        // 2. Corrector: volume + Riemann face corrections.
        let outputs = &self.outputs;
        let mesh = &self.mesh;
        par::for_each_mut_init(
            &mut self.state,
            || {
                (
                    CorrectorScratch::new(plan),
                    BoundaryScratch::new(plan),
                    vec![0.0f64; plan.face.len()],
                )
            },
            |(corr, bscratch, f_star), c, q| {
                let out = &outputs[c];
                apply_volume(plan, pde, corr, out, q);
                for face in Face::ALL {
                    let d = face.dim;
                    let side = face.side;
                    let fi = face.index();
                    match mesh.neighbor(c, face) {
                        Neighbor::Cell(nb) => {
                            let nb_out = &outputs[nb];
                            let of = face.opposite().index();
                            if side == 0 {
                                // Neighbour is the left state.
                                rusanov_face(
                                    plan,
                                    pde,
                                    d,
                                    &nb_out.qface[of],
                                    &nb_out.fface[of],
                                    &out.qface[fi],
                                    &out.fface[fi],
                                    f_star,
                                );
                            } else {
                                rusanov_face(
                                    plan,
                                    pde,
                                    d,
                                    &out.qface[fi],
                                    &out.fface[fi],
                                    &nb_out.qface[of],
                                    &nb_out.fface[of],
                                    f_star,
                                );
                            }
                        }
                        Neighbor::Boundary(kind) => {
                            boundary_face(
                                plan,
                                pde,
                                d,
                                side,
                                kind,
                                &out.qface[fi],
                                &out.fface[fi],
                                bscratch,
                                f_star,
                            );
                        }
                    }
                    apply_face(plan, d, side, f_star, &out.fface[fi], q);
                }
            },
        );
    }

    /// The face-centric shard pipeline. Three tasks per shard — predictor,
    /// once-per-face flux sweep over the shard's *owned* faces, and
    /// volume + face application — run on the persistent work-stealing
    /// pool's graph executor ([`par::run_graph_init`]): a shard's sweep
    /// starts as soon as its own and its face-neighbours' predictors are
    /// done, with no global barrier, and each finished task pushes the
    /// dependents it unlocks onto the finishing worker's own deque.
    ///
    /// Determinism: every face flux is computed exactly once (by one
    /// task, from fixed predictor outputs) into the face-indexed buffer,
    /// and each cell applies volume + its six faces in the same fixed
    /// order as the barrier path — so results are independent of the
    /// schedule and bit-identical across worker-thread counts. All locks
    /// below are taken uncontended; the task-graph edges (with `AcqRel`
    /// ready-counters) order the single writer of each buffer before its
    /// readers.
    fn step_sharded(&mut self, dt: f64) {
        let plan = &self.plan;
        let pde = &self.pde;
        let kernel = self.config.kernel;
        let bsize = self.block_size;
        let cell_sources = &self.cell_sources;
        // PANIC-OK: internal invariant — `step` dispatches here only in
        // sharded mode, which builds the state at construction.
        let shard_state = self.shards.as_ref().expect("sharded pipeline state");
        let splan = &shard_state.plan;
        let ns = splan.num_shards();
        let shard_size = splan.shard_size();
        let face_len = plan.face.len();

        // Per-shard views over the flat engine buffers. The chunking
        // matches `ShardPlan::shard_range` exactly.
        let out_shards: Vec<RwLock<&mut [StpOutputs]>> = self
            .outputs
            .chunks_mut(shard_size)
            .map(RwLock::new)
            .collect();
        let state_shards: Vec<Mutex<&mut [AlignedVec]>> =
            self.state.chunks_mut(shard_size).map(Mutex::new).collect();
        let f_star = &shard_state.f_star;

        // Task ids: Predict(s) = s, Flux(s) = ns + s, Apply(s) = 2·ns + s;
        // the graph is static and precomputed in ShardState::new.
        par::run_graph_init(
            &shard_state.indegree,
            &shard_state.dependents,
            || ShardScratch {
                stp: kernel.make_block_scratch(plan, bsize),
                block: CellBlock::new(plan, bsize),
                sources: Vec::with_capacity(bsize),
                corr: CorrectorScratch::new(plan),
                boundary: BoundaryScratch::new(plan),
            },
            |ws, task| {
                let (kind, s) = (task / ns, task % ns);
                let range = splan.shard_range(s);
                match kind {
                    // Predictor over the shard's cells, in predictor
                    // blocks exactly like the barrier path.
                    0 => {
                        // PANIC-OK: lock poisoning means a sibling task
                        // panicked; cascading into the batch abort is
                        // correct (×7 in this function).
                        let state = state_shards[s].lock().unwrap();
                        let mut outs = out_shards[s].write().unwrap();
                        for (bi, chunk) in outs.chunks_mut(bsize).enumerate() {
                            let local = bi * bsize;
                            ws.block.clear();
                            for i in 0..chunk.len() {
                                ws.block.push(&state[local + i]);
                            }
                            ws.sources.clear();
                            ws.sources.extend(
                                (0..chunk.len())
                                    .map(|i| cell_sources.get(&(range.start + local + i))),
                            );
                            kernel.run_block(
                                plan,
                                pde,
                                ws.stp.as_mut(),
                                &BlockInputs::new(&ws.block, dt, &ws.sources),
                                chunk,
                            );
                        }
                    }
                    // Once-per-face flux sweep over the shard's owned
                    // faces, into the shard's dense F* segment.
                    1 => {
                        let guards: Vec<_> = splan
                            .flux_deps(s)
                            .iter()
                            // PANIC-OK: poisoning cascades (see above).
                            .map(|&t| (t, out_shards[t].read().unwrap()))
                            .collect();
                        let out_of = |cell: usize| {
                            let t = splan.shard_of(cell);
                            &dep_guard(&guards, t)[cell - splan.shard_range(t).start]
                        };
                        // PANIC-OK: poisoning cascades (see above).
                        let mut fs = f_star[s].write().unwrap();
                        for (i, id) in splan.owned_faces(s).enumerate() {
                            let dst = &mut fs[i * face_len..(i + 1) * face_len];
                            match splan.face(id) {
                                FaceTopo::Interior { dim, lower, upper } => {
                                    let lo = out_of(lower);
                                    let up = out_of(upper);
                                    // Lower cell's upper trace is the left
                                    // state — same convention as the
                                    // barrier path, so F* is bit-identical.
                                    rusanov_face(
                                        plan,
                                        pde,
                                        dim,
                                        &lo.qface[2 * dim + 1],
                                        &lo.fface[2 * dim + 1],
                                        &up.qface[2 * dim],
                                        &up.fface[2 * dim],
                                        dst,
                                    );
                                }
                                FaceTopo::Boundary {
                                    dim,
                                    cell,
                                    side,
                                    kind,
                                } => {
                                    let out = out_of(cell);
                                    let fi = 2 * dim + side;
                                    boundary_face(
                                        plan,
                                        pde,
                                        dim,
                                        side,
                                        kind,
                                        &out.qface[fi],
                                        &out.fface[fi],
                                        &mut ws.boundary,
                                        dst,
                                    );
                                }
                            }
                        }
                    }
                    // Volume + six face corrections per cell, reading F*
                    // from the owning shards' segments.
                    _ => {
                        // PANIC-OK: poisoning cascades (see above).
                        let outs = out_shards[s].read().unwrap();
                        let fguards: Vec<_> = splan
                            .apply_deps(s)
                            .iter()
                            // PANIC-OK: poisoning cascades (see above).
                            .map(|&t| (t, f_star[t].read().unwrap()))
                            .collect();
                        // PANIC-OK: poisoning cascades (see above).
                        let mut state = state_shards[s].lock().unwrap();
                        for (i, q) in state.iter_mut().enumerate() {
                            let c = range.start + i;
                            let out = &outs[i];
                            apply_volume(plan, pde, &mut ws.corr, out, q);
                            for face in Face::ALL {
                                let id = splan.cell_faces(c)[face.index()];
                                let owner = splan.face_owner(id);
                                let seg = dep_guard(&fguards, owner);
                                let local = id - splan.owned_faces(owner).start;
                                let fstar = &seg[local * face_len..(local + 1) * face_len];
                                apply_face(
                                    plan,
                                    face.dim,
                                    face.side,
                                    fstar,
                                    &out.fface[face.index()],
                                    q,
                                );
                            }
                        }
                    }
                }
            },
        );
    }

    /// Ensures the LTS metadata, runtime buffers and per-cluster clocks
    /// exist for the current state.
    fn prepare_lts(&mut self) {
        self.lts_meta();
        // PANIC-OK: internal invariant — just built above.
        let meta = self.lts.get().expect("LTS metadata built");
        let num_levels = meta.plan.num_levels();
        if self.lts_clocks.len() != num_levels {
            self.lts_clocks = vec![(self.time, 0); num_levels];
        }
        if self.lts_bufs.is_some() {
            return;
        }
        let plan = &self.plan;
        let splan = &meta.plan;
        let face_len = plan.face.len();
        let ns = splan.num_shards();
        let multi = num_levels > 1;
        let f_star = (0..ns)
            .map(|s| RwLock::new(vec![0.0; splan.owned_faces(s).len() * face_len]))
            .collect();
        // The accumulator and halo buffers only exist when clusters
        // actually differ — the degenerate single-cluster path allocates
        // nothing beyond the sharded pipeline's storage.
        let f_star_acc = (0..ns)
            .map(|s| {
                let len = if multi {
                    splan.owned_faces(s).len() * face_len
                } else {
                    0
                };
                RwLock::new(vec![0.0; len])
            })
            .collect();
        let halo = (0..ns)
            .map(|s| {
                let level = splan.shard_level(s);
                let range = splan.shard_range(s);
                let mut cells = Vec::new();
                if multi && level > 0 {
                    for c in range.clone() {
                        let finer = splan
                            .cell_faces(c)
                            .iter()
                            .any(|&id| splan.face_cadence(id) < level);
                        if finer {
                            cells.push(c - range.start);
                        }
                    }
                }
                let half = cells.iter().map(|_| StpOutputs::new(plan)).collect();
                RwLock::new(HaloShard { cells, half })
            })
            .collect();
        self.lts_bufs = Some(LtsBufs {
            f_star,
            f_star_acc,
            halo,
        });
    }

    /// One **macro cycle** of clustered local time stepping: `2^Lmax`
    /// level-0 sub-windows, scheduled as the sub-window-resolved
    /// predict / flux-sweep / apply task graph ([`LtsGraph`]) on the
    /// persistent pool. `dt` is the macro step; a level-`L` cluster
    /// takes `2^(Lmax−L)` sub-steps of `dt · 2^L / 2^Lmax` each (exact
    /// f64 scalings, so a clipped macro step scales all clusters alike).
    ///
    /// Cadence-mismatched faces (a cadence-`c` face under a level-`c+1`
    /// cell) are re-solved per fine sub-window with the coarse side's
    /// trace composed by [`sub_window_trace`]; the two fine `F*` are
    /// accumulated and applied once by the coarse cell, so the face flux
    /// telescopes exactly and conservation holds to round-off.
    ///
    /// Determinism: every face flux is computed exactly once per due
    /// slot by one task from fixed predictor outputs, and every
    /// application runs in a fixed order — results are bit-identical
    /// across thread counts and pool modes. With a single cluster the
    /// graph degenerates to one predict/flux/apply per shard at the full
    /// dt and the computation is bitwise the sharded step's.
    ///
    /// ORDERING: most locks below are uncontended — every pair of
    /// conflicting accesses to `out`, `state` and `halo` is ordered by
    /// the task graph (a shard's tasks form a chain `P(k) → … → A(k) →
    /// P(k+1)`, and every cross-shard read has graph edges placing it
    /// after the writer and before the next one). `f_star` and
    /// `f_star_acc` *are* contended (a sweep may rewrite segments of
    /// faces unrelated to a concurrently-running apply task holding the
    /// same lock — the data stays disjoint, the lock is shared), so all
    /// tasks acquire them along one global hierarchy: `f_star[i]` before
    /// every `f_star_acc[j]`, each tier in ascending shard order. Flux
    /// takes `f_star[s]` then `f_star_acc[s]`; Apply takes all its
    /// `f_star` read guards ascending, then all `f_star_acc` read guards
    /// ascending — strictly increasing ranks, hence no deadlock.
    fn step_lts(&mut self, dt: f64) {
        let plan = &self.plan;
        let pde = &self.pde;
        let kernel = self.config.kernel;
        let bsize = self.block_size;
        let cell_sources = &self.cell_sources;
        // PANIC-OK: internal invariant — `step` runs `prepare_lts`
        // first (×2).
        let meta = self.lts.get().expect("LTS metadata prepared");
        let bufs = self.lts_bufs.as_ref().expect("LTS buffers prepared");
        let splan = &meta.plan;
        let graph = &meta.graph;
        let num_slots = graph.num_slots();
        // Exact: `num_slots` is a power of two.
        let dt_base = dt / num_slots as f64;
        let face_len = plan.face.len();
        let multi = splan.num_levels() > 1;

        let out_shards: Vec<RwLock<&mut [StpOutputs]>> = shard_slices(splan, &mut self.outputs)
            .into_iter()
            .map(RwLock::new)
            .collect();
        let state_shards: Vec<Mutex<&mut [AlignedVec]>> = shard_slices(splan, &mut self.state)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let f_star = &bufs.f_star;
        let f_star_acc = &bufs.f_star_acc;
        let halo_shards = &bufs.halo;

        par::run_graph_init(
            graph.indegree(),
            graph.dependents(),
            || LtsScratch {
                stp: kernel.make_block_scratch(plan, bsize),
                cell: kernel.make_scratch(plan),
                block: CellBlock::new(plan, bsize),
                sources: Vec::with_capacity(bsize),
                corr: CorrectorScratch::new(plan),
                boundary: BoundaryScratch::new(plan),
                qtmp: vec![0.0; face_len],
                ftmp: vec![0.0; face_len],
            },
            |ws, task| match graph.task(task) {
                // Predictor over the shard's cells at the cluster's own
                // sub-step, in predictor blocks exactly like the sharded
                // path, plus half-window runs for halo cells.
                LtsTask::Predict { shard: s, .. } => {
                    let level = splan.shard_level(s);
                    let dt_s = dt_base * (1u64 << level) as f64;
                    let range = splan.shard_range(s);
                    // PANIC-OK: lock poisoning means a sibling task
                    // panicked; cascading into the batch abort is
                    // correct (likewise for every lock below).
                    let state = state_shards[s].lock().unwrap();
                    // PANIC-OK: poisoning cascades (see above).
                    let mut outs = out_shards[s].write().unwrap();
                    for (bi, chunk) in outs.chunks_mut(bsize).enumerate() {
                        let local = bi * bsize;
                        ws.block.clear();
                        for i in 0..chunk.len() {
                            ws.block.push(&state[local + i]);
                        }
                        ws.sources.clear();
                        ws.sources.extend(
                            (0..chunk.len()).map(|i| cell_sources.get(&(range.start + local + i))),
                        );
                        kernel.run_block(
                            plan,
                            pde,
                            ws.stp.as_mut(),
                            &BlockInputs::new(&ws.block, dt_s, &ws.sources),
                            chunk,
                        );
                    }
                    // PANIC-OK: poisoning cascades (see above).
                    let mut halo = halo_shards[s].write().unwrap();
                    let HaloShard { cells, half } = &mut *halo;
                    for (hi, &local) in cells.iter().enumerate() {
                        kernel.run(
                            plan,
                            pde,
                            ws.cell.as_mut(),
                            &StpInputs {
                                q0: &state[local][..],
                                dt: 0.5 * dt_s,
                                source: cell_sources.get(&(range.start + local)),
                            },
                            &mut half[hi],
                        );
                    }
                }
                // Flux sweep over the shard's owned faces *due at this
                // sweep's slot*, into the shard's dense F* segment (and
                // the coarse-window accumulator for mismatched faces).
                LtsTask::Flux { shard: s, sweep } => {
                    let slot = graph.sweep_slot(s, sweep);
                    // Shards whose predictors feed this sweep's active
                    // faces (the graph listed exactly these).
                    let mut deps: Vec<usize> = Vec::new();
                    let mut any_mismatch = false;
                    for id in splan.owned_faces(s) {
                        let c = splan.face_cadence(id) as usize;
                        if slot & ((1usize << c) - 1) != 0 {
                            continue;
                        }
                        match splan.face(id) {
                            FaceTopo::Interior { lower, upper, .. } => {
                                let (ls, us) = (splan.shard_of(lower), splan.shard_of(upper));
                                deps.push(ls);
                                deps.push(us);
                                any_mismatch |= (splan.shard_level(ls) as usize) > c
                                    || (splan.shard_level(us) as usize) > c;
                            }
                            FaceTopo::Boundary { cell, .. } => deps.push(splan.shard_of(cell)),
                        }
                    }
                    deps.sort_unstable();
                    deps.dedup();
                    let guards: Vec<_> = deps
                        .iter()
                        // PANIC-OK: poisoning cascades (see above).
                        .map(|&t| (t, out_shards[t].read().unwrap()))
                        .collect();
                    let hguards: Vec<_> = deps
                        .iter()
                        // PANIC-OK: poisoning cascades (see above).
                        .map(|&t| (t, halo_shards[t].read().unwrap()))
                        .collect();
                    // Lock hierarchy: own f_star, then own f_star_acc
                    // (see the ORDERING note in the doc comment).
                    // PANIC-OK: poisoning cascades (see above).
                    let mut fs = f_star[s].write().unwrap();
                    let mut acc = if any_mismatch {
                        // PANIC-OK: poisoning cascades (see above).
                        Some(f_star_acc[s].write().unwrap())
                    } else {
                        None
                    };
                    for (i, id) in splan.owned_faces(s).enumerate() {
                        let c = splan.face_cadence(id) as usize;
                        if slot & ((1usize << c) - 1) != 0 {
                            continue;
                        }
                        let sub = (slot >> c) & 1;
                        let dst = &mut fs[i * face_len..(i + 1) * face_len];
                        let mut mismatched = false;
                        match splan.face(id) {
                            FaceTopo::Interior { dim, lower, upper } => {
                                let (ls, us) = (splan.shard_of(lower), splan.shard_of(upper));
                                let lo =
                                    &dep_guard(&guards, ls)[lower - splan.shard_range(ls).start];
                                let up =
                                    &dep_guard(&guards, us)[upper - splan.shard_range(us).start];
                                let lo_mis = (splan.shard_level(ls) as usize) > c;
                                let up_mis = (splan.shard_level(us) as usize) > c;
                                // Lower cell's upper trace is the left
                                // state — same convention as the sharded
                                // path, so F* is bit-identical in the
                                // degenerate case. The face cadence is
                                // the *min* adjacent level, so at most
                                // one side is coarse.
                                let fl = 2 * dim + 1;
                                let fu = 2 * dim;
                                if lo_mis {
                                    let h = dep_guard(&hguards, ls);
                                    let hi = h
                                        .cells
                                        .binary_search(&(lower - splan.shard_range(ls).start))
                                        // PANIC-OK: internal invariant —
                                        // prepare_lts registered a halo
                                        // slot for every coarse cell
                                        // bordering a finer face.
                                        .expect("halo slot for coarse cell");
                                    sub_window_trace(
                                        &mut ws.qtmp,
                                        &mut ws.ftmp,
                                        lo,
                                        &h.half[hi],
                                        fl,
                                        sub,
                                    );
                                } else if up_mis {
                                    let h = dep_guard(&hguards, us);
                                    let hi = h
                                        .cells
                                        .binary_search(&(upper - splan.shard_range(us).start))
                                        // PANIC-OK: see the halo-slot
                                        // invariant above.
                                        .expect("halo slot for coarse cell");
                                    sub_window_trace(
                                        &mut ws.qtmp,
                                        &mut ws.ftmp,
                                        up,
                                        &h.half[hi],
                                        fu,
                                        sub,
                                    );
                                }
                                let (ql, flx): (&[f64], &[f64]) = if lo_mis {
                                    (&ws.qtmp, &ws.ftmp)
                                } else {
                                    (&lo.qface[fl], &lo.fface[fl])
                                };
                                let (qr, frx): (&[f64], &[f64]) = if up_mis {
                                    (&ws.qtmp, &ws.ftmp)
                                } else {
                                    (&up.qface[fu], &up.fface[fu])
                                };
                                rusanov_face(plan, pde, dim, ql, flx, qr, frx, dst);
                                mismatched = lo_mis || up_mis;
                            }
                            FaceTopo::Boundary {
                                dim,
                                cell,
                                side,
                                kind,
                            } => {
                                let t = splan.shard_of(cell);
                                let out = &dep_guard(&guards, t)[cell - splan.shard_range(t).start];
                                let fi = 2 * dim + side;
                                boundary_face(
                                    plan,
                                    pde,
                                    dim,
                                    side,
                                    kind,
                                    &out.qface[fi],
                                    &out.fface[fi],
                                    &mut ws.boundary,
                                    dst,
                                );
                            }
                        }
                        if mismatched {
                            // PANIC-OK: internal invariant — a
                            // mismatched active face set `any_mismatch`.
                            let acc = acc.as_mut().expect("accumulator acquired");
                            let a = &mut acc[i * face_len..(i + 1) * face_len];
                            if sub == 0 {
                                a.copy_from_slice(dst);
                            } else {
                                for (av, dv) in a.iter_mut().zip(dst.iter()) {
                                    *av += dv;
                                }
                            }
                        }
                    }
                }
                // Volume + six face corrections per cell at the
                // cluster's sub-step, reading F* from the owning shards'
                // segments — the accumulated coarse-window flux for
                // faces finer than this cluster's window.
                LtsTask::Apply { shard: s, .. } => {
                    let level = splan.shard_level(s);
                    let range = splan.shard_range(s);
                    // PANIC-OK: poisoning cascades (see above).
                    let outs = out_shards[s].read().unwrap();
                    let mut owners: Vec<usize> = Vec::new();
                    for c in range.clone() {
                        for &id in splan.cell_faces(c) {
                            owners.push(splan.face_owner(id));
                        }
                    }
                    owners.sort_unstable();
                    owners.dedup();
                    // Lock hierarchy: every f_star guard (ascending),
                    // then every f_star_acc guard (ascending) — see the
                    // ORDERING note in the doc comment.
                    let fguards: Vec<_> = owners
                        .iter()
                        // PANIC-OK: poisoning cascades (see above).
                        .map(|&t| (t, f_star[t].read().unwrap()))
                        .collect();
                    let aguards: Vec<_> = if multi {
                        owners
                            .iter()
                            // PANIC-OK: poisoning cascades (see above).
                            .map(|&t| (t, f_star_acc[t].read().unwrap()))
                            .collect()
                    } else {
                        Vec::new()
                    };
                    // PANIC-OK: poisoning cascades (see above).
                    let mut state = state_shards[s].lock().unwrap();
                    for (i, q) in state.iter_mut().enumerate() {
                        let c = range.start + i;
                        let out = &outs[i];
                        apply_volume(plan, pde, &mut ws.corr, out, q);
                        for face in Face::ALL {
                            let id = splan.cell_faces(c)[face.index()];
                            let owner = splan.face_owner(id);
                            let local = id - splan.owned_faces(owner).start;
                            let seg: &[f64] = if splan.face_cadence(id) < level {
                                &dep_guard(&aguards, owner)[..]
                            } else {
                                &dep_guard(&fguards, owner)[..]
                            };
                            let fstar = &seg[local * face_len..(local + 1) * face_len];
                            apply_face(
                                plan,
                                face.dim,
                                face.side,
                                fstar,
                                &out.fface[face.index()],
                                q,
                            );
                        }
                    }
                }
            },
        );

        // Advance the per-cluster clocks: a level-L cluster took
        // `2^(Lmax−L)` sub-steps and all clusters meet at `t + dt`.
        let t_end = self.time + dt;
        for (level, clock) in self.lts_clocks.iter_mut().enumerate() {
            clock.0 = t_end;
            clock.1 += (num_slots >> level) as u64;
        }
    }

    /// Runs with CFL-limited steps until `t_end` (last step clipped).
    ///
    /// Termination is judged with a tolerance *relative* to `t_end` (one
    /// part in 10¹²): the seed's absolute `t_end - 1e-14` cutoff
    /// underflows for large targets (`1e3 - 1e-14 == 1e3` in f64), which
    /// let the loop chase sub-resolution remainders with degenerate
    /// clipped steps. Once within tolerance the clock snaps to `t_end`;
    /// a clipped step too small to advance `time` at all clamps instead
    /// of asserting.
    pub fn run_until(&mut self, t_end: f64) {
        self.advance_until(t_end, |_| true)
            // PANIC-OK: the unchecked variant's documented contract; the
            // fallible form is `advance_until`.
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Checked [`Engine::run_until`]: advances with CFL-limited steps
    /// toward `t_end`, consulting `keep_going` before every dt
    /// computation.
    ///
    /// Returns `Ok(true)` when the target is reached (or the remaining
    /// gap fell below f64 resolution — same clamp as `run_until`),
    /// `Ok(false)` when `keep_going` stopped the run early (the engine
    /// is left at a step boundary, ready to be checkpointed), and
    /// [`DegenerateDt`] when `max_dt` comes back zero, negative or
    /// non-finite — a long-lived service fails the one job instead of
    /// panicking the process.
    ///
    /// The control check never perturbs the step sequence: `dt` is
    /// always `max_dt().min(t_end - time)` against the *real* target, so
    /// a paused-and-resumed run replays the exact dt sequence of an
    /// uninterrupted one (see `crates/core/tests/checkpoint.rs`).
    pub fn advance_until(
        &mut self,
        t_end: f64,
        mut keep_going: impl FnMut(&Self) -> bool,
    ) -> Result<bool, DegenerateDt> {
        let tol = t_end.abs() * 1e-12;
        while self.time < t_end - tol {
            if !keep_going(self) {
                return Ok(false);
            }
            let dt = self.max_dt().min(t_end - self.time);
            if !(dt.is_finite() && dt > 0.0) {
                return Err(DegenerateDt { dt });
            }
            if self.time + dt == self.time {
                // dt is below f64 resolution at this magnitude; one more
                // step could never advance the clock.
                break;
            }
            self.step(dt);
        }
        if (self.time - t_end).abs() <= tol {
            self.time = t_end;
        }
        Ok(true)
    }

    /// Serializes this engine's full mutable state — DOFs, clock, step
    /// count and receiver records — into a [`crate::checkpoint::EngineState`]
    /// (the configuration travels separately as resolved knobs; see
    /// [`crate::checkpoint`]).
    pub fn save_state(&self) -> crate::checkpoint::EngineState {
        let state_len = self.plan.aos.len();
        let mut state = Vec::with_capacity(self.state.len() * state_len);
        for q in &self.state {
            state.extend_from_slice(q);
        }
        crate::checkpoint::EngineState {
            dims: self.mesh.dims,
            order: self.config.order,
            state_len,
            time: self.time,
            steps: self.steps,
            state,
            receivers: self
                .receivers
                .iter()
                .map(|r| crate::checkpoint::ReceiverState {
                    position: r.position,
                    records: r.records.clone(),
                })
                .collect(),
            lts_clocks: self.lts_clocks.clone(),
        }
    }

    /// Restores a saved [`crate::checkpoint::EngineState`] into this engine,
    /// which must have been built with the same mesh dimensions, order
    /// and padded state layout (resolved-knob replay guarantees that;
    /// see [`crate::checkpoint`]) and have the same receivers
    /// registered. DOFs are copied bit-exactly, padding included, so
    /// subsequent steps are bit-identical to the uninterrupted run.
    pub fn restore_state(
        &mut self,
        s: &crate::checkpoint::EngineState,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        use crate::checkpoint::CheckpointError;
        if s.dims != self.mesh.dims {
            return Err(CheckpointError::new(format!(
                "mesh mismatch: checkpoint has {:?} cells, engine has {:?}",
                s.dims, self.mesh.dims
            )));
        }
        if s.order != self.config.order {
            return Err(CheckpointError::new(format!(
                "order mismatch: checkpoint has {}, engine has {}",
                s.order, self.config.order
            )));
        }
        if s.state_len != self.plan.aos.len() {
            return Err(CheckpointError::new(format!(
                "state layout mismatch: checkpoint has {} doubles/cell, engine has {} \
                 (different SIMD padding?)",
                s.state_len,
                self.plan.aos.len()
            )));
        }
        if s.state.len() != self.state.len() * s.state_len {
            return Err(CheckpointError::new(format!(
                "state size mismatch: checkpoint has {} doubles, engine needs {}",
                s.state.len(),
                self.state.len() * s.state_len
            )));
        }
        if s.receivers.len() != self.receivers.len() {
            return Err(CheckpointError::new(format!(
                "receiver count mismatch: checkpoint has {}, engine has {}",
                s.receivers.len(),
                self.receivers.len()
            )));
        }
        for (r, rs) in self.receivers.iter().zip(&s.receivers) {
            if r.position != rs.position {
                return Err(CheckpointError::new(format!(
                    "receiver position mismatch: checkpoint has {:?}, engine has {:?}",
                    rs.position, r.position
                )));
            }
        }
        for (q, chunk) in self.state.iter_mut().zip(s.state.chunks_exact(s.state_len)) {
            q.copy_from_slice(chunk);
        }
        for (r, rs) in self.receivers.iter_mut().zip(&s.receivers) {
            r.records = rs.records.clone();
        }
        self.time = s.time;
        self.steps = s.steps;
        // Rebuild the clustering from the restored state (deterministic,
        // so a resumed LTS run reproduces the saved run's meta exactly);
        // the per-cluster clocks continue from the checkpoint.
        self.lts = OnceLock::new();
        self.lts_bufs = None;
        self.lts_clocks = s.lts_clocks.clone();
        Ok(())
    }

    /// Nodal L2 error of the evolved quantities against an exact solution.
    pub fn l2_error(&self, exact: &dyn aderdg_pde::ExactSolution) -> f64 {
        let n = self.plan.n();
        let m_pad = self.plan.aos.m_pad();
        let vars = self.pde.num_vars();
        let nodes = &self.plan.basis.nodes;
        let w = &self.plan.basis.weights;
        let dx = self.mesh.cell_size();
        let cell_vol = dx[0] * dx[1] * dx[2];
        let mut err2 = 0.0;
        let mut qe = vec![0.0; vars];
        for c in 0..self.mesh.num_cells() {
            let q = &self.state[c];
            for k3 in 0..n {
                for k2 in 0..n {
                    for k1 in 0..n {
                        let x = self.mesh.cell_point(c, [nodes[k1], nodes[k2], nodes[k3]]);
                        exact.evaluate(x, self.time, &mut qe);
                        let node = (k3 * n + k2) * n + k1;
                        let wk = w[k1] * w[k2] * w[k3] * cell_vol;
                        for s in 0..vars {
                            let e = q[node * m_pad + s] - qe[s];
                            err2 += wk * e * e;
                        }
                    }
                }
            }
        }
        err2.sqrt()
    }

    /// Interpolates the evolved quantities at a physical point.
    pub fn sample(&self, x: [f64; 3]) -> Vec<f64> {
        let cell = self.mesh.locate(x);
        let xi = self.mesh.to_reference(cell, x);
        let phi = [
            self.plan.basis.basis_at(xi[0]),
            self.plan.basis.basis_at(xi[1]),
            self.plan.basis.basis_at(xi[2]),
        ];
        self.sample_cell(cell, &phi)
    }

    fn sample_cell(&self, cell: usize, phi: &[Vec<f64>; 3]) -> Vec<f64> {
        let n = self.plan.n();
        let m_pad = self.plan.aos.m_pad();
        let vars = self.pde.num_vars();
        let q = &self.state[cell];
        let mut out = vec![0.0; vars];
        for k3 in 0..n {
            for k2 in 0..n {
                for k1 in 0..n {
                    let wgt = phi[0][k1] * phi[1][k2] * phi[2][k3];
                    if wgt == 0.0 {
                        continue;
                    }
                    let node = (k3 * n + k2) * n + k1;
                    for s in 0..vars {
                        out[s] += wgt * q[node * m_pad + s];
                    }
                }
            }
        }
        out
    }

    fn record_receivers(&mut self) {
        if self.receivers.is_empty() {
            return;
        }
        let samples: Vec<(usize, Vec<f64>)> = self
            .receivers
            .iter()
            .enumerate()
            .map(|(i, r)| (i, self.sample_cell(r.cell, &r.phi)))
            .collect();
        for (i, v) in samples {
            let t = self.time;
            self.receivers[i].records.push((t, v));
        }
    }

    /// Quadrature-weighted mesh integral of every evolved quantity —
    /// the discrete conserved quantities. With periodic boundaries each
    /// entry is conserved to round-off by the once-per-face flux
    /// telescoping; with walls, exactly the rows whose wall flux vanishes
    /// (e.g. pressure at a rigid acoustic wall) stay constant
    /// (`tests/boundary_matrix.rs`).
    pub fn integrals(&self) -> Vec<f64> {
        let n = self.plan.n();
        let m_pad = self.plan.aos.m_pad();
        let vars = self.pde.num_vars();
        let w = &self.plan.basis.weights;
        let dx = self.mesh.cell_size();
        let cell_vol = dx[0] * dx[1] * dx[2];
        let mut acc = vec![0.0; vars];
        for c in 0..self.mesh.num_cells() {
            let q = &self.state[c];
            for k3 in 0..n {
                for k2 in 0..n {
                    for k1 in 0..n {
                        let node = (k3 * n + k2) * n + k1;
                        let wk = w[k1] * w[k2] * w[k3] * cell_vol;
                        for (s, a) in acc.iter_mut().enumerate() {
                            *a += wk * q[node * m_pad + s];
                        }
                    }
                }
            }
        }
        acc
    }

    /// Quadrature-weighted L2 norm of the evolved quantities — a discrete
    /// energy proxy for stability monitoring.
    pub fn l2_norm(&self) -> f64 {
        let n = self.plan.n();
        let m_pad = self.plan.aos.m_pad();
        let vars = self.pde.num_vars();
        let w = &self.plan.basis.weights;
        let dx = self.mesh.cell_size();
        let cell_vol = dx[0] * dx[1] * dx[2];
        let mut acc = 0.0;
        for c in 0..self.mesh.num_cells() {
            let q = &self.state[c];
            for k3 in 0..n {
                for k2 in 0..n {
                    for k1 in 0..n {
                        let node = (k3 * n + k2) * n + k1;
                        let wk = w[k1] * w[k2] * w[k3] * cell_vol;
                        for s in 0..vars {
                            let v = q[node * m_pad + s];
                            acc += wk * v * v;
                        }
                    }
                }
            }
        }
        acc.sqrt()
    }

    /// Writes one receiver's records as CSV (`t, q0, q1, ...`).
    pub fn write_receiver_csv(
        &self,
        receiver: usize,
        out: &mut dyn std::io::Write,
    ) -> std::io::Result<()> {
        let rec = &self.receivers[receiver];
        write!(out, "t")?;
        for s in 0..self.pde.num_vars() {
            write!(out, ",q{s}")?;
        }
        writeln!(out)?;
        for (t, v) in &rec.records {
            write!(out, "{t}")?;
            for x in v {
                write!(out, ",{x}")?;
            }
            writeln!(out)?;
        }
        Ok(())
    }

    /// Direct read access to a cell's padded AoS state.
    pub fn cell_state(&self, cell: usize) -> &[f64] {
        &self.state[cell]
    }

    /// Mutable access to a cell's state (tests, custom initial data).
    /// Invalidates the cached LTS clustering — state pokes can change
    /// the per-cell dt field it was derived from.
    pub fn cell_state_mut(&mut self, cell: usize) -> &mut [f64] {
        self.lts = OnceLock::new();
        self.lts_bufs = None;
        &mut self.state[cell]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_block_size_scales_inversely_with_footprint() {
        // Tiny footprint saturates at the cap; huge footprint degrades
        // to the per-cell path; a 64 KiB footprint fits 8 blocks into
        // the 512 KiB budget.
        assert_eq!(auto_block_size(1), 16);
        assert_eq!(auto_block_size(64 * 1024), 8);
        assert_eq!(auto_block_size(10 << 20), 1);
        assert_eq!(auto_block_size(0), 16);
    }

    #[test]
    fn engine_resolves_block_size_from_config_or_tuner() {
        use aderdg_mesh::StructuredMesh;
        use aderdg_pde::Acoustic;
        let cfg = EngineConfig::new(3).with_block_size(5);
        let engine = Engine::new(StructuredMesh::unit_cube(2), Acoustic, cfg);
        assert_eq!(engine.block_size(), 5);
        assert_eq!(engine.tune_report().block_size, 5);

        // The default kernel (SplitCK) runs the per-cell fallback under
        // the block pipeline, so model tuning keeps the heuristic answer.
        let cfg = EngineConfig::new(3);
        let engine = Engine::new(StructuredMesh::unit_cube(2), Acoustic, cfg);
        let expected = auto_block_size(cfg.kernel.footprint_bytes(&engine.plan));
        assert_eq!(engine.block_size(), expected);
        assert_eq!(engine.tune_report().mode, TuningMode::Model);

        // A blocked kernel under model tuning picks from the candidate
        // slate, within the cap.
        let cfg = EngineConfig::new(3).with_kernel_name("aosoa_splitck");
        let engine = Engine::new(StructuredMesh::unit_cube(2), Acoustic, cfg);
        assert!((1..=BLOCK_SIZE_CAP).contains(&engine.block_size()));
        assert!(!engine.tune_report().block_candidates.is_empty());
    }

    #[test]
    fn static_tuning_preserves_the_heuristic_for_blocked_kernels() {
        use aderdg_mesh::StructuredMesh;
        use aderdg_pde::Acoustic;
        let cfg = EngineConfig::new(3)
            .with_kernel_name("generic")
            .with_tuning(TuningMode::Static);
        let engine = Engine::new(StructuredMesh::unit_cube(2), Acoustic, cfg);
        let expected = auto_block_size(cfg.kernel.footprint_bytes(&engine.plan));
        assert_eq!(engine.block_size(), expected);
        assert!(engine.tune_report().block_candidates.is_empty());
    }
}
