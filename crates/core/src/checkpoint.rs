//! Checkpoint/restart — full engine-state serialization.
//!
//! The paper's kernels live inside the ExaHyPE *engine*, a long-lived
//! system whose runs survive node failures and queue-time limits; this
//! module gives the reproduction the same property. A [`Checkpoint`]
//! captures everything needed to resume a scenario run bit-identically:
//! the scenario's registry key, the fully **resolved** solver knobs
//! (order, kernel, cfl, rule, pipeline, the tuner's block-size pick, …),
//! the run's series so far, and the raw engine state — mesh dimensions,
//! the padded per-cell DOF array, `time`, `steps` and every receiver's
//! records.
//!
//! # Codec
//!
//! The format is a dependency-free little-endian binary codec:
//!
//! ```text
//! magic  b"ADERDGCKPT1\n"
//! u8     smoke flag
//! str    scenario registry key          (str = u64 length + UTF-8 bytes)
//! u64    #knobs, then (str key, str value) pairs
//! u64    #initial integrals, then f64 each
//! u64    #series points, then (f64 t, u64 steps, f64 l2_norm,
//!                              u8 has_error, [f64 l2_error]) each
//! u64×3  mesh dims   u64 order   u64 state_len (padded doubles/cell)
//! f64    time        u64 steps
//! u64    #cells, then #cells · state_len f64 DOFs
//! u64    #receivers, then (f64×3 position, u64 #records,
//!                          (f64 t, u64 #values, f64 values…)…) each
//! u64    #LTS cluster clocks, then (f64 time, u64 sub_steps) each
//!        (0 for global-stepping runs)
//! u64    FNV-1a 64 hash of every preceding byte
//! ```
//!
//! Every array length is validated against the bytes actually remaining
//! before anything is allocated, so a corrupt length field reports
//! "truncated checkpoint" instead of attempting a huge allocation, and
//! the trailing checksum catches silent mid-file corruption.
//!
//! Bit-identical resume holds for the deterministic tuning modes
//! (`static`, `model`): the saved knobs pin the resolved configuration
//! (including the block size), and the engine's determinism contract
//! pins step results across thread counts, pool modes and pipelines.
//! `probe` tuning re-times GEMM backends at restore, so the backend pick
//! — and with it the last bits — may differ across machines.

use crate::scenario::SeriesPoint;
use std::fmt;
use std::path::Path;

/// Magic bytes every checkpoint starts with (format version 1).
pub const MAGIC: &[u8; 12] = b"ADERDGCKPT1\n";

/// Longest accepted string field (scenario names and knob keys/values
/// are all short; anything bigger is a corrupt length).
const MAX_STR: u64 = 4096;

/// A checkpoint failure: unreadable file, bad magic, truncated or
/// corrupt payload, or a restore into a mismatching engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError {
    /// Human-readable message.
    pub message: String,
}

impl CheckpointError {
    /// New error from anything displayable.
    pub fn new(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint error: {}", self.message)
    }
}

impl std::error::Error for CheckpointError {}

/// One receiver probe's saved state: identity (position) plus every
/// recorded sample.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceiverState {
    /// Physical probe position (matched against the rebuilt engine's
    /// receivers at restore).
    pub position: [f64; 3],
    /// Recorded `(time, values)` samples.
    pub records: Vec<(f64, Vec<f64>)>,
}

/// The raw engine state a checkpoint carries: everything
/// [`Engine::restore_state`](crate::engine::Engine::restore_state) needs
/// to make a freshly built engine bit-identical to the saved one.
#[derive(Clone, PartialEq)]
pub struct EngineState {
    /// Mesh dimensions (cells per axis) — restore validation.
    pub dims: [usize; 3],
    /// Scheme order — restore validation.
    pub order: usize,
    /// Padded doubles per cell (`plan.aos.len()`) — restore validation;
    /// also pins the SIMD padding the state was saved with.
    pub state_len: usize,
    /// Simulated time.
    pub time: f64,
    /// Steps taken.
    pub steps: usize,
    /// All per-cell DOFs, concatenated in cell order (`#cells ·
    /// state_len` doubles, padding included for bit-exactness).
    pub state: Vec<f64>,
    /// Every receiver's position and records.
    pub receivers: Vec<ReceiverState>,
    /// Per-cluster `(time, sub_steps)` clocks of the LTS path, indexed
    /// by cluster level (empty for global-stepping runs — see
    /// [`Engine::lts_clocks`](crate::engine::Engine::lts_clocks)).
    pub lts_clocks: Vec<(f64, u64)>,
}

impl fmt::Debug for EngineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineState")
            .field("dims", &self.dims)
            .field("order", &self.order)
            .field("state_len", &self.state_len)
            .field("time", &self.time)
            .field("steps", &self.steps)
            .field("state", &format_args!("[{} doubles]", self.state.len()))
            .field("receivers", &self.receivers.len())
            .field("lts_clocks", &self.lts_clocks)
            .finish()
    }
}

/// A full saved run: scenario identity, resolved knobs, series so far
/// and the raw engine state.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Scenario registry key the run came from (resume validates it).
    pub scenario: String,
    /// Whether the run was in smoke mode (fixed steps, smoke grid).
    pub smoke: bool,
    /// Fully resolved solver/run knobs as `RunRequest::set` key/value
    /// pairs — replaying them rebuilds the exact engine configuration,
    /// including the tuner's block-size pick.
    pub knobs: Vec<(String, String)>,
    /// Mesh integrals at `t = 0` (conservation baselines carried across
    /// the resume).
    pub integrals_initial: Vec<f64>,
    /// Series points recorded before the save.
    pub series: Vec<SeriesPoint>,
    /// The raw engine state.
    pub engine: EngineState,
}

impl Checkpoint {
    /// Serializes the checkpoint into its binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.engine.state.len() * 8);
        buf.extend_from_slice(MAGIC);
        buf.push(u8::from(self.smoke));
        put_str(&mut buf, &self.scenario);
        put_u64(&mut buf, self.knobs.len() as u64);
        for (k, v) in &self.knobs {
            put_str(&mut buf, k);
            put_str(&mut buf, v);
        }
        put_u64(&mut buf, self.integrals_initial.len() as u64);
        for &x in &self.integrals_initial {
            put_f64(&mut buf, x);
        }
        put_u64(&mut buf, self.series.len() as u64);
        for p in &self.series {
            put_f64(&mut buf, p.t);
            put_u64(&mut buf, p.steps as u64);
            put_f64(&mut buf, p.l2_norm);
            buf.push(u8::from(p.l2_error.is_some()));
            if let Some(e) = p.l2_error {
                put_f64(&mut buf, e);
            }
        }
        let e = &self.engine;
        for d in e.dims {
            put_u64(&mut buf, d as u64);
        }
        put_u64(&mut buf, e.order as u64);
        put_u64(&mut buf, e.state_len as u64);
        put_f64(&mut buf, e.time);
        put_u64(&mut buf, e.steps as u64);
        let cells = e.state.len().checked_div(e.state_len).unwrap_or(0);
        put_u64(&mut buf, cells as u64);
        for &x in &e.state {
            put_f64(&mut buf, x);
        }
        put_u64(&mut buf, e.receivers.len() as u64);
        for r in &e.receivers {
            for p in r.position {
                put_f64(&mut buf, p);
            }
            put_u64(&mut buf, r.records.len() as u64);
            for (t, vals) in &r.records {
                put_f64(&mut buf, *t);
                put_u64(&mut buf, vals.len() as u64);
                for &v in vals {
                    put_f64(&mut buf, v);
                }
            }
        }
        put_u64(&mut buf, e.lts_clocks.len() as u64);
        for &(t, subs) in &e.lts_clocks {
            put_f64(&mut buf, t);
            put_u64(&mut buf, subs);
        }
        let hash = fnv1a(&buf);
        put_u64(&mut buf, hash);
        buf
    }

    /// Parses a checkpoint from its binary format, validating magic,
    /// lengths and the trailing checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::new("not an aderdg checkpoint (bad magic)"));
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        // PANIC-OK: internal invariant — `split_at` just made `tail`
        // exactly 8 bytes (the length was validated above).
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a(payload) != stored {
            return Err(CheckpointError::new(
                "checksum mismatch (corrupt checkpoint)",
            ));
        }
        let mut r = Reader {
            bytes: &payload[MAGIC.len()..],
        };
        let smoke = r.u8()? != 0;
        let scenario = r.str()?;
        let nknobs = r.len(16)?;
        let mut knobs = Vec::with_capacity(nknobs);
        for _ in 0..nknobs {
            let k = r.str()?;
            let v = r.str()?;
            knobs.push((k, v));
        }
        let nint = r.len(8)?;
        let integrals_initial = (0..nint).map(|_| r.f64()).collect::<Result<_, _>>()?;
        let nseries = r.len(18)?;
        let mut series = Vec::with_capacity(nseries);
        for _ in 0..nseries {
            let t = r.f64()?;
            let steps = r.u64()? as usize;
            let l2_norm = r.f64()?;
            let l2_error = if r.u8()? != 0 { Some(r.f64()?) } else { None };
            series.push(SeriesPoint {
                t,
                steps,
                l2_norm,
                l2_error,
            });
        }
        let dims = [r.u64()? as usize, r.u64()? as usize, r.u64()? as usize];
        let order = r.u64()? as usize;
        let state_len = r.u64()? as usize;
        let time = r.f64()?;
        let steps = r.u64()? as usize;
        let cells = r.len(state_len.max(1).saturating_mul(8))?;
        let total = cells
            .checked_mul(state_len)
            .ok_or_else(|| CheckpointError::new("truncated checkpoint"))?;
        let state = (0..total).map(|_| r.f64()).collect::<Result<_, _>>()?;
        let nrec = r.len(32)?;
        let mut receivers = Vec::with_capacity(nrec);
        for _ in 0..nrec {
            let position = [r.f64()?, r.f64()?, r.f64()?];
            let nrecords = r.len(16)?;
            let mut records = Vec::with_capacity(nrecords);
            for _ in 0..nrecords {
                let t = r.f64()?;
                let nvals = r.len(8)?;
                let vals = (0..nvals).map(|_| r.f64()).collect::<Result<_, _>>()?;
                records.push((t, vals));
            }
            receivers.push(ReceiverState { position, records });
        }
        let nclocks = r.len(16)?;
        let mut lts_clocks = Vec::with_capacity(nclocks);
        for _ in 0..nclocks {
            let t = r.f64()?;
            let subs = r.u64()?;
            lts_clocks.push((t, subs));
        }
        if !r.bytes.is_empty() {
            return Err(CheckpointError::new(format!(
                "{} trailing bytes after the checkpoint payload",
                r.bytes.len()
            )));
        }
        Ok(Self {
            scenario,
            smoke,
            knobs,
            integrals_initial,
            series,
            engine: EngineState {
                dims,
                order,
                state_len,
                time,
                steps,
                state,
                receivers,
                lts_clocks,
            },
        })
    }

    /// Saves the checkpoint to a file, atomically: the bytes go to a
    /// `<name>.tmp` sibling and are renamed over `path` only on success,
    /// so a failed save never clobbers the previous good checkpoint.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let bytes = self.to_bytes();
        crate::output::write_atomic(path, |w| w.write_all(&bytes))
            .map_err(|e| CheckpointError::new(format!("cannot write {}: {e}", path.display())))
    }

    /// Rebuilds the [`RunRequest`](crate::scenario::RunRequest) this
    /// checkpoint's run resolved to, by replaying the saved knobs
    /// through [`RunRequest::set`](crate::scenario::RunRequest::set).
    /// The caller attaches the checkpoint itself as `request.resume`
    /// (and may overlay further overrides — e.g. a larger `t_end` to
    /// extend a completed run).
    pub fn to_request(
        &self,
    ) -> Result<crate::scenario::RunRequest, crate::scenario::ScenarioError> {
        use crate::scenario::ScenarioError;
        let mut req = crate::scenario::RunRequest::new();
        req.smoke = self.smoke;
        for (key, value) in &self.knobs {
            match req.set(key, value) {
                Ok(true) => {}
                Ok(false) => {
                    return Err(ScenarioError::new(format!(
                        "checkpoint knob `{key}` is not a known run key \
                         (checkpoint from a newer format?)"
                    )))
                }
                Err(e) => {
                    return Err(ScenarioError::new(format!(
                        "checkpoint knob `{key} = {value}` is invalid (expected {})",
                        e.expected
                    )))
                }
            }
        }
        Ok(req)
    }

    /// Loads a checkpoint from a file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)
            .map_err(|e| CheckpointError::new(format!("cannot read {}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }
}

/// A bounds-checked little-endian reader over the payload bytes.
struct Reader<'a> {
    bytes: &'a [u8],
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        if self.bytes.len() < n {
            return Err(CheckpointError::new("truncated checkpoint"));
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            // PANIC-OK: internal invariant — `take(8)` returned exactly
            // 8 bytes or already errored.
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an array length and validates it against the bytes actually
    /// remaining (each element needs at least `min_elem_bytes`), so a
    /// corrupt length can never trigger a huge allocation.
    fn len(&mut self, min_elem_bytes: usize) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        let fits = (self.bytes.len() / min_elem_bytes.max(1)) as u64;
        if n > fits {
            return Err(CheckpointError::new("truncated checkpoint"));
        }
        Ok(n as usize)
    }

    fn str(&mut self) -> Result<String, CheckpointError> {
        let n = self.u64()?;
        if n > MAX_STR {
            return Err(CheckpointError::new(format!(
                "string field of {n} bytes exceeds the {MAX_STR}-byte cap (corrupt checkpoint)"
            )));
        }
        let raw = self.take(n as usize)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| CheckpointError::new("non-UTF-8 string field (corrupt checkpoint)"))
    }
}

fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, x: f64) {
    put_u64(buf, x.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// FNV-1a 64-bit hash — the codec's corruption check (not cryptographic).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            scenario: "acoustic_wave".into(),
            smoke: false,
            knobs: vec![
                ("order".into(), "3".into()),
                ("kernel".into(), "splitck".into()),
            ],
            integrals_initial: vec![1.0, -0.5],
            series: vec![
                SeriesPoint {
                    t: 0.0,
                    steps: 0,
                    l2_norm: 1.25,
                    l2_error: None,
                },
                SeriesPoint {
                    t: 0.1,
                    steps: 7,
                    l2_norm: 1.25000001,
                    l2_error: Some(3.5e-9),
                },
            ],
            engine: EngineState {
                dims: [2, 2, 2],
                order: 3,
                state_len: 6,
                time: 0.1,
                steps: 7,
                state: (0..48).map(|i| i as f64 * 0.125).collect(),
                receivers: vec![ReceiverState {
                    position: [0.5, 0.5, 0.5],
                    records: vec![(0.05, vec![1.0, 2.0]), (0.1, vec![3.0, 4.0])],
                }],
                lts_clocks: vec![(0.1, 4), (0.1, 2), (0.1, 1)],
            },
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let ck = sample();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        let e = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(e.message.contains("bad magic"), "{e}");
        let e = Checkpoint::from_bytes(b"short").unwrap_err();
        assert!(e.message.contains("bad magic"), "{e}");
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let bytes = sample().to_bytes();
        // Chopping anywhere inside the payload must fail cleanly (either
        // the checksum is gone or a length overruns) — never panic.
        for cut in [
            MAGIC.len(),
            MAGIC.len() + 3,
            bytes.len() / 2,
            bytes.len() - 9,
            bytes.len() - 1,
        ] {
            assert!(
                Checkpoint::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_flipped_payload_bytes() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let e = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(e.message.contains("checksum"), "{e}");
    }

    #[test]
    fn rejects_oversized_length_fields_without_allocating() {
        let ck = sample();
        let mut bytes = ck.to_bytes();
        // The cell count sits 8 bytes before the DOF array; overwrite it
        // with an absurd value and fix the checksum so the length check
        // itself (not the checksum) must catch it.
        let state_bytes = ck.engine.state.len() * 8;
        let recv_bytes: usize = 8 + ck
            .engine
            .receivers
            .iter()
            .map(|r| {
                24 + 8
                    + r.records
                        .iter()
                        .map(|(_, v)| 16 + v.len() * 8)
                        .sum::<usize>()
            })
            .sum::<usize>();
        let clock_bytes = 8 + ck.engine.lts_clocks.len() * 16;
        let cells_at = bytes.len() - 8 - clock_bytes - recv_bytes - state_bytes - 8;
        bytes[cells_at..cells_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let hash = fnv1a(&bytes[..bytes.len() - 8]);
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&hash.to_le_bytes());
        let e = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(e.message.contains("truncated"), "{e}");
    }

    #[test]
    fn save_and_load_round_trip() {
        let path = std::env::temp_dir().join(format!("aderdg_ckpt_{}.bin", std::process::id()));
        let ck = sample();
        ck.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(back, ck);
        let _ = std::fs::remove_file(&path);
    }
}
