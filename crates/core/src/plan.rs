//! Kernel plans — the code-generation stage.
//!
//! The paper's Kernel Generator renders Jinja2 templates with every size,
//! stride, padding and operator matrix hard-coded per application and
//! architecture (Sec. II-D). [`StpPlan`] is the Rust equivalent: built once
//! per `(order, quantities, SIMD width, mesh spacing)`, it holds the padded
//! layouts, the scaled derivative operators, and the pre-dispatched GEMM
//! plans every kernel variant executes against. Kernels themselves contain
//! no size logic.

use aderdg_gemm::{Gemm, GemmSpec, Isa};
use aderdg_quadrature::{taylor_coefficients, Basis1d, QuadratureRule};
use aderdg_tensor::{DofLayout, FaceLayout, SimdWidth};

/// The four measured Space-Time Predictor variants of the paper.
///
/// This enum is *not* a dispatch mechanism — execution goes through
/// [`StpKernel`](crate::kernels::StpKernel) objects resolved from the
/// [`KernelRegistry`](crate::registry::KernelRegistry). It remains as the
/// key of the analytic models (instruction mix, memory traces) and the
/// figure harnesses, which reproduce exactly the paper's four bars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// Scalar reference implementation (Fig. 1).
    Generic,
    /// Loop-over-GEMM on the padded AoS layout (Sec. III).
    LoG,
    /// Dimension-split, footprint-minimized Cauchy-Kowalewsky (Fig. 5).
    SplitCk,
    /// SplitCK on the hybrid AoSoA layout with vectorized user functions
    /// (Sec. V).
    AoSoASplitCk,
}

impl KernelVariant {
    /// All variants in the paper's presentation order.
    pub const ALL: [KernelVariant; 4] = [
        KernelVariant::Generic,
        KernelVariant::LoG,
        KernelVariant::SplitCk,
        KernelVariant::AoSoASplitCk,
    ];

    /// Display name used by the figure harnesses.
    pub fn name(&self) -> &'static str {
        match self {
            KernelVariant::Generic => "generic",
            KernelVariant::LoG => "LoG",
            KernelVariant::SplitCk => "SplitCK",
            KernelVariant::AoSoASplitCk => "AoSoA SplitCK",
        }
    }

    /// Registry key of the corresponding kernel (the specification-file
    /// name).
    pub fn key(&self) -> &'static str {
        match self {
            KernelVariant::Generic => "generic",
            KernelVariant::LoG => "log",
            KernelVariant::SplitCk => "splitck",
            KernelVariant::AoSoASplitCk => "aosoa_splitck",
        }
    }

    /// The registered kernel implementing this variant.
    pub fn kernel(&self) -> &'static dyn crate::kernels::StpKernel {
        crate::registry::KernelRegistry::global()
            .resolve(self.key())
            // PANIC-OK: internal invariant — the registry registers all
            // four builtin variants at startup.
            .expect("builtin kernel variants are always registered")
    }
}

/// Problem-size configuration of an STP kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StpConfig {
    /// Quadrature nodes per dimension (= order `N` of the scheme).
    pub order: usize,
    /// Stored quantities per node (`m`).
    pub quantities: usize,
    /// SIMD width padding / dispatch target.
    pub width: SimdWidth,
    /// Interpolation rule.
    pub rule: QuadratureRule,
}

impl StpConfig {
    /// Gauss-Legendre configuration at the host's widest SIMD width.
    pub fn new(order: usize, quantities: usize) -> Self {
        Self {
            order,
            quantities,
            width: SimdWidth::host(),
            rule: QuadratureRule::GaussLegendre,
        }
    }

    /// Overrides the SIMD width (e.g. the paper's AVX2-on-Skylake runs).
    pub fn with_width(mut self, width: SimdWidth) -> Self {
        self.width = width;
        self
    }
}

/// Everything a kernel invocation needs, precomputed.
#[derive(Debug, Clone)]
pub struct StpPlan {
    /// Size configuration.
    pub cfg: StpConfig,
    /// 1-D basis operators.
    pub basis: Basis1d,
    /// Padded AoS layout of the volume tensors.
    pub aos: DofLayout,
    /// AoSoA layout of the volume tensors (Sec. V variant).
    pub aosoa: DofLayout,
    /// Face-tensor layout.
    pub face: FaceLayout,
    /// Reciprocal cell edge lengths the derivative operators are scaled by.
    pub inv_dx: [f64; 3],
    /// `Dᵀ` zero-padded to `n_pad` columns (AoSoA x-derivative operand).
    pub diff_t_padded: Vec<f64>,
    /// GEMM plans for the AoS (LoG) derivatives, per dimension, overwrite
    /// (`beta = 0`) flavour.
    pub gemm_aos: [Gemm; 3],
    /// Accumulating (`beta = 1`) flavour of [`StpPlan::gemm_aos`].
    pub gemm_aos_acc: [Gemm; 3],
    /// GEMM plans for the AoSoA derivatives, overwrite flavour.
    pub gemm_aosoa: [Gemm; 3],
    /// Accumulating flavour of [`StpPlan::gemm_aosoa`].
    pub gemm_aosoa_acc: [Gemm; 3],
}

impl StpPlan {
    /// Builds a plan for cells of edge length `dx` (per dimension), using
    /// the best ISA the host supports (capped by `cfg.width`).
    pub fn new(cfg: StpConfig, dx: [f64; 3]) -> Self {
        let isa = match cfg.width {
            SimdWidth::W2 => Isa::Baseline,
            SimdWidth::W4 => Isa::Avx2,
            SimdWidth::W8 => Isa::Avx512,
        };
        Self::with_isa(cfg, dx, isa)
    }

    /// Builds a plan with an explicit GEMM ISA cap.
    pub fn with_isa(cfg: StpConfig, dx: [f64; 3], isa: Isa) -> Self {
        Self::build(cfg, dx, &|spec| Gemm::with_isa(spec, isa))
    }

    /// Builds a plan whose GEMMs all dispatch to an explicit backend —
    /// the probe-tuned selection path (`tuning = probe`), where the
    /// engine replaces the widest-first pick with the backend that
    /// measured fastest on this plan's shapes.
    pub fn with_gemm_backend(
        cfg: StpConfig,
        dx: [f64; 3],
        backend: &'static dyn aderdg_gemm::GemmBackend,
    ) -> Self {
        Self::build(cfg, dx, &|spec| Gemm::with_backend(spec, backend))
    }

    /// The GEMM backend this plan's kernels dispatch to (uniform across
    /// all of the plan's GEMMs by construction).
    pub fn gemm_backend(&self) -> &'static dyn aderdg_gemm::GemmBackend {
        self.gemm_aos[0].backend()
    }

    fn build(cfg: StpConfig, dx: [f64; 3], plan_gemm: &dyn Fn(GemmSpec) -> Gemm) -> Self {
        let n = cfg.order;
        let m = cfg.quantities;
        assert!(n >= 2, "ADER-DG needs at least two nodes per dimension");
        assert!(m >= 1, "at least one quantity");
        let basis = Basis1d::new(cfg.rule, n);
        let aos = DofLayout::aos(n, m, cfg.width);
        let aosoa = DofLayout::aosoa(n, m, cfg.width);
        let face = FaceLayout::new(n, m, cfg.width);
        let inv_dx = [1.0 / dx[0], 1.0 / dx[1], 1.0 / dx[2]];
        let diff_t_padded = basis.diff_t_padded(aosoa.n_pad());

        let m_pad = aos.m_pad();
        let n_pad = aosoa.n_pad();

        // AoS derivative GEMMs: C = D · (tensor slice), unit stride over
        // the padded quantity dimension; y and z fuse the faster dims.
        let spec_aos = |d: usize| -> GemmSpec {
            let cols = match d {
                0 => m_pad,         // x: slice per (k3, k2)
                1 => n * m_pad,     // y: fused (k1, s) per k3
                _ => n * n * m_pad, // z: fused (k2, k1, s), one GEMM
            };
            GemmSpec {
                m: n,
                n: cols,
                k: n,
                lda: n,
                ldb: cols,
                ldc: cols,
                alpha: inv_dx[d],
                beta: 0.0,
            }
        };
        // AoSoA derivative GEMMs: x uses the transposed form
        // C(m × n_pad) = A(block) · Dᵀ (Sec. V-B case 1); y and z fuse
        // (s, k1) resp. (k2, s, k1) (case 2, Fig. 7).
        let spec_aosoa = |d: usize| -> GemmSpec {
            match d {
                0 => GemmSpec {
                    m,
                    n: n_pad,
                    k: n,
                    lda: n_pad,
                    ldb: n_pad,
                    ldc: n_pad,
                    alpha: inv_dx[0],
                    beta: 0.0,
                },
                1 => GemmSpec {
                    m: n,
                    n: m * n_pad,
                    k: n,
                    lda: n,
                    ldb: m * n_pad,
                    ldc: m * n_pad,
                    alpha: inv_dx[1],
                    beta: 0.0,
                },
                _ => GemmSpec {
                    m: n,
                    n: n * m * n_pad,
                    k: n,
                    lda: n,
                    ldb: n * m * n_pad,
                    ldc: n * m * n_pad,
                    alpha: inv_dx[2],
                    beta: 0.0,
                },
            }
        };
        let acc = |spec: GemmSpec| plan_gemm(spec.accumulate());

        // The operator operands are fixed for the plan's lifetime: every
        // AoS derivative multiplies `D` on the left, the AoSoA x-sweep
        // multiplies `Dᵀ` (padded) on the right, and the fused AoSoA
        // sweeps multiply `D` on the left. Pack them into microkernel
        // panels once here — on packing backends the per-step kernels then
        // walk cached panels, amortizing the packing cost over every cell
        // block of every step (no-op on the autovec backends).
        let pack_aos = |g: Gemm| g.with_packed_a(&basis.diff);
        let pack_aosoa = |d: usize, g: Gemm| {
            if d == 0 {
                g.with_packed_b(&diff_t_padded)
            } else {
                g.with_packed_a(&basis.diff)
            }
        };

        Self {
            cfg,
            gemm_aos: [
                pack_aos(plan_gemm(spec_aos(0))),
                pack_aos(plan_gemm(spec_aos(1))),
                pack_aos(plan_gemm(spec_aos(2))),
            ],
            gemm_aos_acc: [
                pack_aos(acc(spec_aos(0))),
                pack_aos(acc(spec_aos(1))),
                pack_aos(acc(spec_aos(2))),
            ],
            gemm_aosoa: [
                pack_aosoa(0, plan_gemm(spec_aosoa(0))),
                pack_aosoa(1, plan_gemm(spec_aosoa(1))),
                pack_aosoa(2, plan_gemm(spec_aosoa(2))),
            ],
            gemm_aosoa_acc: [
                pack_aosoa(0, acc(spec_aosoa(0))),
                pack_aosoa(1, acc(spec_aosoa(1))),
                pack_aosoa(2, acc(spec_aosoa(2))),
            ],
            basis,
            aos,
            aosoa,
            face,
            inv_dx,
            diff_t_padded,
        }
    }

    /// Order (nodes per dimension).
    #[inline]
    pub fn n(&self) -> usize {
        self.cfg.order
    }

    /// Stored quantities.
    #[inline]
    pub fn m(&self) -> usize {
        self.cfg.quantities
    }

    /// Taylor coefficients `Δtᵒ⁺¹/(o+1)!` for `o = 0..=N` (eq. 4).
    pub fn taylor(&self, dt: f64) -> Vec<f64> {
        taylor_coefficients(dt, self.n() + 1)
    }

    /// Batch descriptors for the AoS derivative along `d`:
    /// `(batch_count, batch_stride)` — GEMM `i` operates at offset
    /// `i * batch_stride` of both source and destination.
    pub fn aos_batches(&self, d: usize) -> (usize, usize) {
        let n = self.n();
        let m_pad = self.aos.m_pad();
        match d {
            0 => (n * n, n * m_pad),
            1 => (n, n * n * m_pad),
            _ => (1, 0),
        }
    }

    /// Batch descriptors for the AoSoA derivative along `d`.
    pub fn aosoa_batches(&self, d: usize) -> (usize, usize) {
        let n = self.n();
        let m = self.m();
        let n_pad = self.aosoa.n_pad();
        match d {
            0 => (n * n, m * n_pad),
            1 => (n, n * m * n_pad),
            _ => (1, 0),
        }
    }
}

/// Point-source data projected onto one cell: per-node spatial projection
/// coefficients (tensor product of 1-D `φ_k(ξ0)/w_k`, divided by the cell
/// volume) and the per-order time derivatives of the amplitude at `t_n`.
#[derive(Debug, Clone)]
pub struct CellSource {
    /// `n³` nodal coefficients (unpadded node-major order `k3, k2, k1`).
    pub node_coeffs: Vec<f64>,
    /// `derivs[o][s]`: o-th time derivative of the source amplitude for
    /// quantity `s` at `t_n`, `o = 0..=N`.
    pub derivs: Vec<Vec<f64>>,
}

impl CellSource {
    /// Projects a delta at reference position `xi` within a cell of edge
    /// lengths `dx`, using the plan's basis:
    /// `c_k = Π_d φ_{k_d}(ξ_d) / (w_{k_d} dx_d)`.
    pub fn project(plan: &StpPlan, xi: [f64; 3], dx: [f64; 3], derivs: Vec<Vec<f64>>) -> Self {
        let n = plan.n();
        let per_dim: Vec<Vec<f64>> = (0..3)
            .map(|d| {
                plan.basis
                    .point_source_coeffs(xi[d])
                    .iter()
                    .map(|c| c / dx[d])
                    .collect()
            })
            .collect();
        let mut node_coeffs = Vec::with_capacity(n * n * n);
        for k3 in 0..n {
            for k2 in 0..n {
                for k1 in 0..n {
                    node_coeffs.push(per_dim[2][k3] * per_dim[1][k2] * per_dim[0][k1]);
                }
            }
        }
        Self {
            node_coeffs,
            derivs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(n: usize, m: usize) -> StpPlan {
        StpPlan::new(StpConfig::new(n, m), [1.0; 3])
    }

    #[test]
    fn variant_names() {
        assert_eq!(KernelVariant::ALL.len(), 4);
        assert_eq!(KernelVariant::LoG.name(), "LoG");
    }

    #[test]
    fn gemm_specs_cover_whole_tensor() {
        let p = plan(5, 9);
        // Summed over batches, every derivative sweep touches all n³ nodes.
        for d in 0..3 {
            let (count, stride) = p.aos_batches(d);
            let spec = p.gemm_aos[d].spec();
            assert_eq!(spec.m * spec.n * count, 5 * 5 * 5 * p.aos.m_pad());
            if count > 1 {
                assert_eq!(stride * count, p.aos.len());
            }
            let (count_h, stride_h) = p.aosoa_batches(d);
            let spec_h = p.gemm_aosoa[d].spec();
            let total_h = match d {
                0 => spec_h.m * spec_h.n * count_h,
                _ => spec_h.m * spec_h.n * count_h,
            };
            assert_eq!(total_h, 5 * 5 * 9 * p.aosoa.n_pad());
            if count_h > 1 {
                assert_eq!(stride_h * count_h, p.aosoa.len());
            }
        }
    }

    #[test]
    fn derivative_scaling_enters_alpha() {
        let p = StpPlan::new(StpConfig::new(4, 3), [0.5, 0.25, 2.0]);
        assert_eq!(p.gemm_aos[0].spec().alpha, 2.0);
        assert_eq!(p.gemm_aos[1].spec().alpha, 4.0);
        assert_eq!(p.gemm_aos[2].spec().alpha, 0.5);
        assert_eq!(p.gemm_aosoa[1].spec().alpha, 4.0);
    }

    #[test]
    fn taylor_length() {
        let p = plan(4, 2);
        assert_eq!(p.taylor(0.1).len(), 5);
    }

    #[test]
    fn source_projection_normalization() {
        // Integrating the projected delta against the constant-1 function
        // over the physical cell must give 1:
        // Σ_k (w_k dx³-weight) c_k = 1.
        let p = plan(5, 1);
        let dx = [0.5, 0.25, 1.0];
        let src = CellSource::project(&p, [0.3, 0.7, 0.5], dx, vec![]);
        let n = p.n();
        let w = &p.basis.weights;
        let mut total = 0.0;
        let mut idx = 0;
        for k3 in 0..n {
            for k2 in 0..n {
                for k1 in 0..n {
                    let wk = w[k3] * w[k2] * w[k1] * dx[0] * dx[1] * dx[2];
                    total += wk * src.node_coeffs[idx];
                    idx += 1;
                }
            }
        }
        assert!((total - 1.0).abs() < 1e-10, "total={total}");
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_order_one() {
        let _ = plan(1, 1);
    }
}
