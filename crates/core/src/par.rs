//! Minimal structured data parallelism for the engine's cell loops.
//!
//! The paper parallelizes within one MPI rank with TBB tasks; this module
//! plays that role with `std::thread::scope` and static chunking, which is
//! a good fit because every cell of a uniform mesh costs the same. It has
//! no external dependencies, so the workspace builds in hermetic
//! environments.
//!
//! Thread count: `ADERDG_THREADS` if set, else the machine's available
//! parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Cached worker-thread count (0 = not yet resolved).
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads the cell loops use.
pub fn num_threads() -> usize {
    let cached = NUM_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("ADERDG_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    NUM_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Overrides the worker-thread count for subsequent cell loops.
///
/// Intended for tests and benches that compare runs at several thread
/// counts within one process (e.g. the thread-count determinism matrix);
/// production runs set `ADERDG_THREADS` instead, which is read once on
/// first use. The override is global and takes effect immediately.
///
/// # Panics
/// If `n` is zero.
pub fn set_num_threads(n: usize) {
    assert!(n >= 1, "thread count must be at least 1");
    NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Applies `f(state, index, item)` to every item of `items` in parallel,
/// with one `init()`-produced state per worker thread (the scratch-reuse
/// pattern of the predictor loop).
pub fn for_each_mut_init<T, S>(
    items: &mut [T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &mut T) + Sync,
) where
    T: Send,
{
    let len = items.len();
    let threads = num_threads().min(len.max(1));
    if threads <= 1 {
        let mut state = init();
        for (i, item) in items.iter_mut().enumerate() {
            f(&mut state, i, item);
        }
        return;
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, part) in items.chunks_mut(chunk).enumerate() {
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut state = init();
                let base = ci * chunk;
                for (j, item) in part.iter_mut().enumerate() {
                    f(&mut state, base + j, item);
                }
            });
        }
    });
}

/// Applies `f(index, item)` to every item in parallel.
pub fn for_each_mut<T: Send>(items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
    for_each_mut_init(items, || (), |(), i, item| f(i, item));
}

/// Parallel `max` of `f` over `items`; returns `identity` for an empty
/// slice.
///
/// NaN behaviour follows [`f64::max`]: a NaN value loses against any
/// non-NaN operand, so NaN items are effectively ignored and `identity`
/// is returned when *every* mapped value is NaN (and `identity` itself is
/// not). The result is independent of the chunking — `max` is associative
/// and commutative over the non-NaN values — which is what keeps
/// [`crate::Engine::max_dt`] bit-identical across thread counts.
pub fn map_max<T: Sync>(items: &[T], identity: f64, f: impl Fn(&T) -> f64 + Sync) -> f64 {
    let len = items.len();
    let threads = num_threads().min(len.max(1));
    if threads <= 1 {
        return items.iter().map(&f).fold(identity, f64::max);
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                let f = &f;
                scope.spawn(move || part.iter().map(f).fold(identity, f64::max))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .fold(identity, f64::max)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_covers_all_indices_once() {
        let mut v = vec![0usize; 1000];
        for_each_mut(&mut v, |i, x| *x = i + 1);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i + 1);
        }
    }

    #[test]
    fn init_state_is_per_thread_and_reused() {
        // The state counts invocations; totals across threads must cover
        // every item exactly once.
        use std::sync::atomic::AtomicUsize;
        let total = AtomicUsize::new(0);
        let mut v = vec![0u8; 517];
        for_each_mut_init(
            &mut v,
            || 0usize,
            |count, _, _| {
                *count += 1;
                total.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(total.load(Ordering::Relaxed), 517);
    }

    #[test]
    fn map_max_matches_sequential() {
        let v: Vec<f64> = (0..777).map(|i| ((i * 37) % 101) as f64).collect();
        let want = v.iter().cloned().fold(0.0, f64::max);
        assert_eq!(map_max(&v, 0.0, |&x| x), want);
        assert_eq!(map_max::<f64>(&[], -1.0, |&x| x), -1.0);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    /// The thread-count override is process-global: tests that flip it
    /// must hold this lock so the save/restore pairs cannot interleave
    /// (which would leak the override into unrelated tests).
    static THREAD_KNOB: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn for_each_handles_empty_and_tiny_slices() {
        // Empty slice: no work, no panic, init never observed.
        let mut empty: Vec<usize> = Vec::new();
        for_each_mut(&mut empty, |_, _| unreachable!("no items to visit"));

        // Single item.
        let mut one = vec![0usize];
        for_each_mut(&mut one, |i, x| *x = i + 42);
        assert_eq!(one, vec![42]);

        // Fewer items than workers: every index still visited exactly
        // once (the chunking clamps to the item count).
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(16);
        let mut few = vec![0usize; 3];
        for_each_mut_init(
            &mut few,
            || (),
            |(), i, x| {
                *x += i + 1;
            },
        );
        assert_eq!(few, vec![1, 2, 3]);
        set_num_threads(before);
    }

    #[test]
    fn map_max_edge_cases_empty_single_and_len_below_threads() {
        assert_eq!(map_max::<f64>(&[], 7.5, |&x| x), 7.5);
        assert_eq!(map_max(&[3.0f64], 0.0, |&x| x), 3.0);
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(16);
        let v = [2.0f64, 9.0, 4.0];
        assert_eq!(map_max(&v, 0.0, |&x| x), 9.0);
        set_num_threads(before);
    }

    #[test]
    fn map_max_ignores_nan_items() {
        // f64::max drops NaN against any non-NaN operand...
        let v = [1.0f64, f64::NAN, 5.0, f64::NAN];
        assert_eq!(map_max(&v, 0.0, |&x| x), 5.0);
        // ...so an all-NaN slice falls back to the identity.
        let all_nan = [f64::NAN, f64::NAN];
        assert_eq!(map_max(&all_nan, -1.0, |&x| x), -1.0);
    }
}
