//! Minimal structured data parallelism for the engine's cell loops.
//!
//! The paper parallelizes within one MPI rank with TBB tasks; this module
//! plays that role with `std::thread::scope` and static chunking, which is
//! a good fit because every cell of a uniform mesh costs the same. It has
//! no external dependencies, so the workspace builds in hermetic
//! environments.
//!
//! Thread count: `ADERDG_THREADS` if set, else the machine's available
//! parallelism.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Cached worker-thread count (0 = not yet resolved).
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads the cell loops use.
pub fn num_threads() -> usize {
    let cached = NUM_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("ADERDG_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    NUM_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Overrides the worker-thread count for subsequent cell loops.
///
/// Intended for tests and benches that compare runs at several thread
/// counts within one process (e.g. the thread-count determinism matrix);
/// production runs set `ADERDG_THREADS` instead, which is read once on
/// first use. The override is global and takes effect immediately.
///
/// # Panics
/// If `n` is zero.
pub fn set_num_threads(n: usize) {
    assert!(n >= 1, "thread count must be at least 1");
    NUM_THREADS.store(n, Ordering::Relaxed);
}

/// Applies `f(state, index, item)` to every item of `items` in parallel,
/// with one `init()`-produced state per worker thread (the scratch-reuse
/// pattern of the predictor loop).
pub fn for_each_mut_init<T, S>(
    items: &mut [T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &mut T) + Sync,
) where
    T: Send,
{
    let len = items.len();
    let threads = num_threads().min(len.max(1));
    if threads <= 1 {
        let mut state = init();
        for (i, item) in items.iter_mut().enumerate() {
            f(&mut state, i, item);
        }
        return;
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, part) in items.chunks_mut(chunk).enumerate() {
            let init = &init;
            let f = &f;
            scope.spawn(move || {
                let mut state = init();
                let base = ci * chunk;
                for (j, item) in part.iter_mut().enumerate() {
                    f(&mut state, base + j, item);
                }
            });
        }
    });
}

/// Applies `f(index, item)` to every item in parallel.
pub fn for_each_mut<T: Send>(items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
    for_each_mut_init(items, || (), |(), i, item| f(i, item));
}

/// Parallel `max` of `f` over `items`; returns `identity` for an empty
/// slice.
///
/// NaN behaviour follows [`f64::max`]: a NaN value loses against any
/// non-NaN operand, so NaN items are effectively ignored and `identity`
/// is returned when *every* mapped value is NaN (and `identity` itself is
/// not). The result is independent of the chunking — `max` is associative
/// and commutative over the non-NaN values — which is what keeps
/// [`crate::Engine::max_dt`] bit-identical across thread counts.
pub fn map_max<T: Sync>(items: &[T], identity: f64, f: impl Fn(&T) -> f64 + Sync) -> f64 {
    let len = items.len();
    let threads = num_threads().min(len.max(1));
    if threads <= 1 {
        return items.iter().map(&f).fold(identity, f64::max);
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                let f = &f;
                scope.spawn(move || part.iter().map(f).fold(identity, f64::max))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .fold(identity, f64::max)
    })
}

/// Shared scheduler bookkeeping of [`run_graph_init`].
struct GraphState {
    /// Tasks whose dependencies are all met, awaiting a worker.
    ready: VecDeque<usize>,
    /// Tasks finished so far.
    done: usize,
    /// Tasks currently executing on some worker.
    in_flight: usize,
    /// Set when a task panicked or a cycle was detected: all workers must
    /// drain and exit so the panic can propagate through the scope join.
    aborted: bool,
}

/// Runs a task dependency graph to completion on the worker-thread pool,
/// with one `init()`-produced scratch state per worker (the lightweight
/// shard scheduler of the pipelined engine step).
///
/// Tasks are identified by index `0..indegree.len()`. `indegree[t]` is the
/// number of direct dependencies of task `t`; `dependents[t]` lists the
/// tasks unblocked by `t`'s completion (each entry accounts for exactly
/// one unit of that task's indegree). A task becomes *ready* once its
/// per-task atomic counter — initialized from `indegree` — reaches zero;
/// ready tasks are handed to idle workers immediately, so independent
/// subgraphs overlap with no global barrier between graph "phases".
///
/// Memory ordering: the counter decrements are `AcqRel`, so everything a
/// dependency task wrote happens-before its dependents run — callers can
/// hand tasks plain (uncontended) locks over shared buffers and rely on
/// the graph edges for exclusivity.
///
/// The single-worker path (and `indegree.len() == 1`) executes tasks in
/// deterministic Kahn order; with more workers the execution *order* is
/// schedule-dependent, so determinism of the results is the caller's
/// contract (each datum written by exactly one task, reads ordered by
/// edges).
///
/// # Panics
/// If `dependents.len() != indegree.len()`, if an edge points out of
/// range, or if the graph contains a cycle (some tasks can never become
/// ready).
pub fn run_graph_init<S>(
    indegree: &[usize],
    dependents: &[Vec<usize>],
    init: impl Fn() -> S + Sync,
    run: impl Fn(&mut S, usize) + Sync,
) {
    let n = indegree.len();
    assert_eq!(dependents.len(), n, "one dependents list per task");
    assert!(
        dependents.iter().flatten().all(|&d| d < n),
        "dependent edge out of range"
    );
    if n == 0 {
        return;
    }
    let threads = num_threads().min(n);
    let seeds = || (0..n).filter(|&t| indegree[t] == 0);

    if threads <= 1 {
        // Deterministic sequential Kahn order.
        let mut counters: Vec<usize> = indegree.to_vec();
        let mut queue: VecDeque<usize> = seeds().collect();
        let mut state = init();
        let mut done = 0;
        while let Some(t) = queue.pop_front() {
            run(&mut state, t);
            done += 1;
            for &d in &dependents[t] {
                counters[d] -= 1;
                if counters[d] == 0 {
                    queue.push_back(d);
                }
            }
        }
        assert_eq!(done, n, "task graph has a cycle ({} tasks stuck)", n - done);
        return;
    }

    let counters: Vec<AtomicUsize> = indegree.iter().map(|&d| AtomicUsize::new(d)).collect();
    let sched = Mutex::new(GraphState {
        ready: seeds().collect(),
        done: 0,
        in_flight: 0,
        aborted: false,
    });
    let cv = Condvar::new();

    /// Unblocks waiting workers if a task panics (flags the graph aborted
    /// so nobody waits forever; the panic itself propagates through the
    /// scope join).
    struct PanicGuard<'a> {
        sched: &'a Mutex<GraphState>,
        cv: &'a Condvar,
        armed: bool,
    }
    impl Drop for PanicGuard<'_> {
        fn drop(&mut self) {
            if self.armed {
                if let Ok(mut s) = self.sched.lock() {
                    s.aborted = true;
                }
                self.cv.notify_all();
            }
        }
    }

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let sched = &sched;
            let cv = &cv;
            let counters = &counters;
            let init = &init;
            let run = &run;
            scope.spawn(move || {
                let mut state = init();
                loop {
                    // Claim the next ready task (or exit when all done /
                    // the graph aborted).
                    let task = {
                        let mut s = sched.lock().unwrap();
                        loop {
                            if s.done == n || s.aborted {
                                return;
                            }
                            if let Some(t) = s.ready.pop_front() {
                                s.in_flight += 1;
                                break t;
                            }
                            if s.in_flight == 0 {
                                // Nothing running, nothing ready, not
                                // done: a cycle. Wake the other waiters
                                // so they exit before we panic (a panic
                                // under the lock alone would strand them
                                // in `cv.wait` forever).
                                let stuck = n - s.done;
                                s.aborted = true;
                                drop(s);
                                cv.notify_all();
                                panic!("task graph has a cycle ({stuck} tasks stuck)");
                            }
                            s = cv.wait(s).unwrap();
                        }
                    };
                    let mut guard = PanicGuard {
                        sched,
                        cv,
                        armed: true,
                    };
                    run(&mut state, task);
                    guard.armed = false;
                    drop(guard);
                    // Release our writes to dependents; collect the newly
                    // ready tasks outside the lock.
                    let mut newly: Vec<usize> = Vec::new();
                    for &d in &dependents[task] {
                        if counters[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                            newly.push(d);
                        }
                    }
                    let mut s = sched.lock().unwrap();
                    s.in_flight -= 1;
                    s.done += 1;
                    s.ready.extend(newly);
                    let wake = s.done == n || !s.ready.is_empty();
                    drop(s);
                    if wake {
                        cv.notify_all();
                    }
                }
            });
        }
    });
    // A panicked worker propagated through the scope join above; getting
    // here with unfinished tasks can only mean a logic error.
    let s = sched.into_inner().unwrap();
    debug_assert_eq!(s.done, n, "scheduler exited with unfinished tasks");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_each_covers_all_indices_once() {
        let mut v = vec![0usize; 1000];
        for_each_mut(&mut v, |i, x| *x = i + 1);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i + 1);
        }
    }

    #[test]
    fn init_state_is_per_thread_and_reused() {
        // The state counts invocations; totals across threads must cover
        // every item exactly once.
        use std::sync::atomic::AtomicUsize;
        let total = AtomicUsize::new(0);
        let mut v = vec![0u8; 517];
        for_each_mut_init(
            &mut v,
            || 0usize,
            |count, _, _| {
                *count += 1;
                total.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(total.load(Ordering::Relaxed), 517);
    }

    #[test]
    fn map_max_matches_sequential() {
        let v: Vec<f64> = (0..777).map(|i| ((i * 37) % 101) as f64).collect();
        let want = v.iter().cloned().fold(0.0, f64::max);
        assert_eq!(map_max(&v, 0.0, |&x| x), want);
        assert_eq!(map_max::<f64>(&[], -1.0, |&x| x), -1.0);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    /// The thread-count override is process-global: tests that flip it
    /// must hold this lock so the save/restore pairs cannot interleave
    /// (which would leak the override into unrelated tests).
    static THREAD_KNOB: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn for_each_handles_empty_and_tiny_slices() {
        // Empty slice: no work, no panic, init never observed.
        let mut empty: Vec<usize> = Vec::new();
        for_each_mut(&mut empty, |_, _| unreachable!("no items to visit"));

        // Single item.
        let mut one = vec![0usize];
        for_each_mut(&mut one, |i, x| *x = i + 42);
        assert_eq!(one, vec![42]);

        // Fewer items than workers: every index still visited exactly
        // once (the chunking clamps to the item count).
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(16);
        let mut few = vec![0usize; 3];
        for_each_mut_init(
            &mut few,
            || (),
            |(), i, x| {
                *x += i + 1;
            },
        );
        assert_eq!(few, vec![1, 2, 3]);
        set_num_threads(before);
    }

    #[test]
    fn map_max_edge_cases_empty_single_and_len_below_threads() {
        assert_eq!(map_max::<f64>(&[], 7.5, |&x| x), 7.5);
        assert_eq!(map_max(&[3.0f64], 0.0, |&x| x), 3.0);
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(16);
        let v = [2.0f64, 9.0, 4.0];
        assert_eq!(map_max(&v, 0.0, |&x| x), 9.0);
        set_num_threads(before);
    }

    #[test]
    fn run_graph_respects_dependency_order() {
        // Diamond per layer: 0 -> {1, 2} -> 3, chained 32 times.
        let layers = 32;
        let n = 4 * layers;
        let mut indegree = vec![0usize; n];
        let mut dependents = vec![Vec::new(); n];
        for l in 0..layers {
            let b = 4 * l;
            dependents[b] = vec![b + 1, b + 2];
            indegree[b + 1] = 1;
            indegree[b + 2] = 1;
            dependents[b + 1] = vec![b + 3];
            dependents[b + 2] = vec![b + 3];
            indegree[b + 3] = 2;
            if l + 1 < layers {
                dependents[b + 3].push(b + 4);
                indegree[b + 4] = 1;
            }
        }
        let finished: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let order = AtomicUsize::new(0);
        run_graph_init(
            &indegree,
            &dependents,
            || (),
            |(), t| {
                // Record a completion stamp and check every dependency
                // already finished.
                let deps: Vec<usize> = (0..n).filter(|&d| dependents[d].contains(&t)).collect();
                for d in deps {
                    assert!(
                        finished[d].load(Ordering::Acquire) > 0,
                        "task {t} ran before dependency {d}"
                    );
                }
                finished[t].store(1 + order.fetch_add(1, Ordering::AcqRel), Ordering::Release);
            },
        );
        assert!(finished.iter().all(|f| f.load(Ordering::Acquire) > 0));
    }

    #[test]
    fn run_graph_runs_every_task_once_at_many_threads() {
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(16);
        let n = 300;
        // Independent tasks (no edges): pure fan-out.
        let indegree = vec![0usize; n];
        let dependents = vec![Vec::new(); n];
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        run_graph_init(
            &indegree,
            &dependents,
            || (),
            |(), t| {
                hits[t].fetch_add(1, Ordering::Relaxed);
            },
        );
        set_num_threads(before);
        for (t, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {t}");
        }
    }

    #[test]
    fn run_graph_init_state_is_reused_per_worker() {
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(1);
        // Sequential path: one state visits all tasks in Kahn order.
        let indegree = vec![0, 1, 1];
        let dependents = vec![vec![1], vec![2], vec![]];
        let total = AtomicUsize::new(0);
        run_graph_init(
            &indegree,
            &dependents,
            || 0usize,
            |count, t| {
                assert_eq!(*count, t, "sequential Kahn order");
                *count += 1;
                total.fetch_add(1, Ordering::Relaxed);
            },
        );
        set_num_threads(before);
        assert_eq!(total.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn run_graph_empty_is_a_noop() {
        run_graph_init(&[], &[], || (), |(), _| unreachable!("no tasks"));
    }

    #[test]
    fn run_graph_propagates_task_panics_at_many_threads() {
        // A panicking task must neither hang the scheduler nor strand
        // the surviving workers: the panic propagates out of
        // run_graph_init through the scope join.
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(4);
        let n = 64;
        let indegree = vec![0usize; n];
        let dependents = vec![Vec::new(); n];
        let result = std::panic::catch_unwind(|| {
            run_graph_init(
                &indegree,
                &dependents,
                || (),
                |(), t| {
                    if t == 13 {
                        panic!("boom in task {t}");
                    }
                },
            );
        });
        set_num_threads(before);
        drop(_guard);
        // The scope join re-panics (its own payload); the contract here
        // is propagation without hanging, which reaching this line with
        // an Err proves.
        assert!(result.is_err(), "the task panic must propagate");
    }

    #[test]
    fn run_graph_detects_cycles_at_many_threads_without_hanging() {
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(4);
        // An acyclic prefix (0) feeding a 1 <-> 2 cycle.
        let indegree = vec![0, 2, 1];
        let dependents = vec![vec![1], vec![2], vec![1]];
        let result = std::panic::catch_unwind(|| {
            run_graph_init(&indegree, &dependents, || (), |(), _| {});
        });
        set_num_threads(before);
        drop(_guard);
        // The cycle panic surfaces through the scope join (which wraps
        // the payload); `run_graph_panics_on_cycle` pins the message on
        // the sequential path. Here the contract is detection without
        // deadlock.
        assert!(result.is_err(), "the cycle must be detected");
    }

    #[test]
    #[should_panic(expected = "task graph has a cycle")]
    fn run_graph_panics_on_cycle() {
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(1);
        let indegree = vec![0, 2, 1];
        let dependents = vec![vec![1], vec![2], vec![1]]; // 1 <-> 2 cycle
        let result = std::panic::catch_unwind(|| {
            run_graph_init(&indegree, &dependents, || (), |(), _| {});
        });
        set_num_threads(before);
        // Release the knob lock *before* re-panicking so the expected
        // panic cannot poison it for the other knob-flipping tests.
        drop(_guard);
        std::panic::resume_unwind(result.unwrap_err());
    }

    #[test]
    fn map_max_ignores_nan_items() {
        // f64::max drops NaN against any non-NaN operand...
        let v = [1.0f64, f64::NAN, 5.0, f64::NAN];
        assert_eq!(map_max(&v, 0.0, |&x| x), 5.0);
        // ...so an all-NaN slice falls back to the identity.
        let all_nan = [f64::NAN, f64::NAN];
        assert_eq!(map_max(&all_nan, -1.0, |&x| x), -1.0);
    }
}
