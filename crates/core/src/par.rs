//! Structured data parallelism for the engine's cell loops and the shard
//! task graph.
//!
//! The paper parallelizes within one MPI rank with TBB tasks; this module
//! plays that role with **no external dependencies**, so the workspace
//! builds in hermetic environments. Two executors implement the same
//! public API, selected by `ADERDG_POOL` (or [`set_pool_mode`]):
//!
//! * [`PoolMode::Persistent`] (default) — a long-lived work-stealing
//!   pool (`crate::pool`): lazily-started workers that survive across
//!   `Engine::step` calls, per-worker deques (LIFO local push/pop, FIFO
//!   steal) feeding the task-graph scheduler, a shared FIFO injector for
//!   the chunked cell loops, and condvar park/unpark so an idle engine
//!   burns no CPU. Optional round-robin core pinning via `ADERDG_PIN=1`.
//! * [`PoolMode::Scoped`] — the original per-call `std::thread::scope`
//!   machinery, kept as a fallback for one release while the persistent
//!   pool beds in.
//!
//! # Determinism contract
//!
//! Task *execution* may move freely between workers (work stealing), but
//! every reduction keeps a worker-independent combine order: [`map_max`]
//! folds per-chunk partial maxima **in chunk-index order** on the calling
//! thread, and [`run_graph_init`] guarantees only exactly-once execution
//! ordered by the graph edges — callers own result determinism by writing
//! each datum from exactly one task (see `Engine::step_sharded`). This is
//! what keeps engine steps bit-identical across 1/4/16 threads and across
//! both pool modes (`tests/determinism.rs`).
//!
//! Thread count: `ADERDG_THREADS` if set, else the machine's available
//! parallelism; [`set_num_threads`] overrides at runtime and resizes the
//! persistent pool while it is idle.

use crate::pool;
use std::cell::{Cell, UnsafeCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Cached worker-thread count (0 = not yet resolved).
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Cached pool mode (0 = not yet resolved, 1 = persistent, 2 = scoped).
static POOL_MODE: AtomicU8 = AtomicU8::new(0);

/// The process-wide persistent pool (built lazily on first use, rebuilt
/// on [`set_num_threads`] resizes). Holding this lock for the duration
/// of a batch is what makes resizes safe: [`set_num_threads`] blocks
/// here until the pool is idle.
static POOL: Mutex<Option<pool::Pool>> = Mutex::new(None);

thread_local! {
    /// True while this thread is executing a parallel task (on either
    /// executor, or on the inline sequential path). Nested parallel
    /// calls run inline, and [`set_num_threads`] panics.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard marking the current thread as inside a parallel task.
pub(crate) struct TaskFlag(bool);

impl Drop for TaskFlag {
    fn drop(&mut self) {
        let prev = self.0;
        IN_TASK.with(|c| c.set(prev));
    }
}

/// Flags the current thread as executing a parallel task until the
/// returned guard drops.
pub(crate) fn enter_task() -> TaskFlag {
    TaskFlag(IN_TASK.with(|c| c.replace(true)))
}

fn in_task() -> bool {
    IN_TASK.with(|c| c.get())
}

/// Locks ignoring poisoning: par's own mutexes are never held across
/// user code, and recovering (rather than propagating a `PoisonError`
/// panic) is what keeps one panicked batch from wedging the pool for
/// the next call.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Which executor runs the parallel calls of this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolMode {
    /// Long-lived work-stealing worker pool, reused across calls
    /// (the default).
    Persistent,
    /// Per-call `std::thread::scope` spawn/join — the pre-pool executor,
    /// kept as a fallback (`ADERDG_POOL=scoped`) for one release.
    Scoped,
}

/// The active executor: `ADERDG_POOL` (`persistent` | `scoped`) if set,
/// else [`PoolMode::Persistent`]. Resolved once; [`set_pool_mode`]
/// overrides it at runtime.
///
/// # Panics
/// If `ADERDG_POOL` is set to an unknown value — configuration typos
/// fail loudly, not silently fall back (same policy as
/// `PipelineMode::default_from_env`).
pub fn pool_mode() -> PoolMode {
    // ORDERING: Relaxed — a standalone cached enum; no other memory is
    // published through it, and a racing re-resolve is idempotent.
    match POOL_MODE.load(Ordering::Relaxed) {
        1 => PoolMode::Persistent,
        2 => PoolMode::Scoped,
        _ => {
            let var = std::env::var("ADERDG_POOL");
            let mode = resolve_pool_mode(var.as_deref().ok());
            set_pool_mode(mode);
            mode
        }
    }
}

/// Maps an `ADERDG_POOL` value to a [`PoolMode`]; panics on anything but
/// `persistent`, `scoped` or unset. Pure so the rejection is unit
/// testable despite [`pool_mode`]'s once-only caching.
fn resolve_pool_mode(value: Option<&str>) -> PoolMode {
    match value {
        None | Some("persistent") => PoolMode::Persistent,
        Some("scoped") => PoolMode::Scoped,
        // PANIC-OK: configuration typos fail loudly by policy (see doc
        // comment on `pool_mode`).
        Some(other) => panic!("unknown ADERDG_POOL `{other}` (persistent|scoped)"),
    }
}

/// Overrides the executor for subsequent parallel calls (tests and
/// benches comparing the two modes in one process; production runs set
/// `ADERDG_POOL` instead). Takes effect at the next parallel call —
/// each call reads the mode once on entry.
pub fn set_pool_mode(mode: PoolMode) {
    let v = match mode {
        PoolMode::Persistent => 1,
        PoolMode::Scoped => 2,
    };
    // ORDERING: Relaxed — see the load in `pool_mode`.
    POOL_MODE.store(v, Ordering::Relaxed);
}

/// Whether workers of the persistent pool are pinned to cores
/// (`ADERDG_PIN=1`; read once at first pool construction).
///
/// # Panics
/// If `ADERDG_PIN` is set to anything but `1`, `0` or the empty string —
/// a typo like `ADERDG_PIN=yes` silently running unpinned would defeat
/// the knob's purpose.
fn pin_workers() -> bool {
    let var = std::env::var("ADERDG_PIN");
    resolve_pin(var.as_deref().ok())
}

/// Maps an `ADERDG_PIN` value to the pinning flag; panics on anything
/// but `1`, `0`, empty or unset.
fn resolve_pin(value: Option<&str>) -> bool {
    match value {
        None | Some("") | Some("0") => false,
        Some("1") => true,
        // PANIC-OK: configuration typos fail loudly by policy (see doc
        // comment on `pin_workers`).
        Some(other) => panic!("invalid ADERDG_PIN `{other}` (1 to pin workers, 0 or unset not to)"),
    }
}

/// Number of worker threads the cell loops use.
///
/// # Panics
/// If `ADERDG_THREADS` is set but is not a positive integer — an
/// unparsable thread count used to fall back silently to the machine's
/// full parallelism, which is exactly the wrong surprise on a shared
/// node.
pub fn num_threads() -> usize {
    // ORDERING: Relaxed — a standalone cached count; racing first-use
    // resolutions compute the same value, and the pool itself re-reads
    // this under the registry mutex.
    let cached = NUM_THREADS.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let var = std::env::var("ADERDG_THREADS");
    let n = resolve_num_threads(var.as_deref().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    // ORDERING: Relaxed — see the load above.
    NUM_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Parses an `ADERDG_THREADS` value (`None` = unset, fall back to the
/// machine's available parallelism); panics on a non-integer or zero.
fn resolve_num_threads(value: Option<&str>) -> Option<usize> {
    let s = value?;
    match s.parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        // PANIC-OK: configuration typos fail loudly by policy (see doc
        // comment on `num_threads`).
        _ => panic!("invalid ADERDG_THREADS `{s}` (expected a positive integer)"),
    }
}

/// Overrides the worker-thread count for subsequent parallel calls and
/// resizes the persistent pool.
///
/// Safe while the pool is **idle**: the call blocks until any in-flight
/// batch (a concurrent `Engine::step`, say) completes, then shuts down
/// and joins the old workers; the pool is rebuilt at the new size on the
/// next parallel call. Intended for tests and benches that compare runs
/// at several thread counts within one process; production runs set
/// `ADERDG_THREADS` instead, which is read once on first use.
///
/// # Panics
/// If `n` is zero, or if called from **inside** a parallel task (the
/// pool cannot be resized mid-graph — the old silent-footgun behaviour
/// is now a loud error).
pub fn set_num_threads(n: usize) {
    assert!(n >= 1, "thread count must be at least 1");
    assert!(
        !in_task(),
        "set_num_threads called from inside a parallel task: the worker \
         pool cannot be resized mid-graph; call it only between parallel \
         calls"
    );
    // Blocks until no batch is active, making the resize idle-safe.
    let mut guard = lock(&POOL);
    // ORDERING: Relaxed — written under the registry mutex; parallel
    // calls re-read it after taking the same mutex.
    NUM_THREADS.store(n, Ordering::Relaxed);
    if let Some(p) = guard.take() {
        if p.size == n {
            *guard = Some(p);
        } else {
            p.shutdown();
        }
    }
}

/// Gets (building or resizing if needed) the persistent pool under an
/// already-held registry lock.
fn ensure_pool<'a>(guard: &'a mut MutexGuard<'_, Option<pool::Pool>>) -> &'a mut pool::Pool {
    let n = num_threads();
    let rebuild = match guard.as_ref() {
        Some(p) => p.size != n,
        None => true,
    };
    if rebuild {
        if let Some(old) = guard.take() {
            old.shutdown();
        }
        **guard = Some(pool::Pool::new(n, pin_workers()));
    }
    // PANIC-OK: internal invariant — the branch above just installed it.
    guard.as_mut().expect("pool was just ensured")
}

/// Submits one batch to the persistent pool and re-raises the first task
/// panic (after releasing the registry lock, so a panicking batch never
/// poisons the pool for the next call).
fn run_pool_batch(
    total: usize,
    seeds: impl Iterator<Item = usize>,
    run: &(dyn Fn(&pool::TaskCtx<'_>, usize) + Sync),
) {
    let payload = {
        let mut guard = lock(&POOL);
        ensure_pool(&mut guard).run_batch(total, seeds, run)
    };
    if let Some(p) = payload {
        std::panic::resume_unwind(p);
    }
}

/// A per-worker state slot of [`run_graph_init`]: written only by the
/// worker whose index it is keyed by, read/dropped by the submitter
/// strictly after batch completion.
struct StateSlot<S>(UnsafeCell<Option<S>>);

// SAFETY: each slot is accessed by exactly one worker thread during the
// batch (slots are indexed by the unique worker id), and by the
// submitting thread only after the batch's completion handshake — the
// accesses never overlap. `S: Send` because states are created on
// worker threads and dropped on the submitter.
unsafe impl<S: Send> Sync for StateSlot<S> {}

/// Raw-pointer wrapper that lets chunk tasks reconstruct disjoint
/// `&mut [T]` views of the caller's slice.
struct SlicePtr<T>(*mut T);

impl<T> SlicePtr<T> {
    /// The base pointer (a method so closures capture the whole `Sync`
    /// wrapper, not the raw-pointer field).
    fn get(&self) -> *mut T {
        self.0
    }
}

// SAFETY: the pointer is only turned into disjoint chunk slices, one
// chunk per exactly-once task, while the caller's `&mut [T]` borrow is
// parked in the submitting call.
unsafe impl<T: Send> Sync for SlicePtr<T> {}

/// Applies `f(state, index, item)` to every item of `items` in parallel,
/// with one `init()`-produced state per contiguous chunk (the
/// scratch-reuse pattern of the predictor loop). At most one chunk per
/// worker thread is created, so `init` runs at most `num_threads()`
/// times; chunks may migrate between workers, but each runs exactly
/// once.
pub fn for_each_mut_init<T, S>(
    items: &mut [T],
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &mut T) + Sync,
) where
    T: Send,
{
    let len = items.len();
    let threads = num_threads().min(len.max(1));
    if threads <= 1 || in_task() {
        let _flag = enter_task();
        let mut state = init();
        for (i, item) in items.iter_mut().enumerate() {
            f(&mut state, i, item);
        }
        return;
    }
    match pool_mode() {
        PoolMode::Scoped => for_each_scoped(items, threads, &init, &f),
        PoolMode::Persistent => {
            let chunk = len.div_ceil(threads);
            let n_chunks = len.div_ceil(chunk);
            let base = SlicePtr(items.as_mut_ptr());
            run_pool_batch(n_chunks, 0..n_chunks, &|_ctx, ci| {
                let start = ci * chunk;
                let count = chunk.min(len - start);
                // SAFETY: chunks are disjoint and task `ci` runs exactly
                // once while the caller's mutable borrow is parked in
                // `run_pool_batch`.
                let part = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), count) };
                let mut state = init();
                for (j, item) in part.iter_mut().enumerate() {
                    f(&mut state, start + j, item);
                }
            });
        }
    }
}

/// The scoped-mode executor of [`for_each_mut_init`] (one chunk per
/// freshly spawned thread).
fn for_each_scoped<T: Send, S>(
    items: &mut [T],
    threads: usize,
    init: &(impl Fn() -> S + Sync),
    f: &(impl Fn(&mut S, usize, &mut T) + Sync),
) {
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (ci, part) in items.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                let _flag = enter_task();
                let mut state = init();
                let base = ci * chunk;
                for (j, item) in part.iter_mut().enumerate() {
                    f(&mut state, base + j, item);
                }
            });
        }
    });
}

/// Applies `f(index, item)` to every item in parallel.
pub fn for_each_mut<T: Send>(items: &mut [T], f: impl Fn(usize, &mut T) + Sync) {
    for_each_mut_init(items, || (), |(), i, item| f(i, item));
}

/// Parallel `max` of `f` over `items`; returns `identity` for an empty
/// slice.
///
/// NaN behaviour follows [`f64::max`]: a NaN value loses against any
/// non-NaN operand, so NaN items are effectively ignored and `identity`
/// is returned when *every* mapped value is NaN (and `identity` itself is
/// not). The result is independent of the chunking **and of which worker
/// runs which chunk** — each chunk's partial maximum is slotted by chunk
/// index and the partials are folded in chunk-index order on the calling
/// thread; `max` is associative and commutative over the non-NaN values.
/// This is what keeps [`crate::Engine::max_dt`] bit-identical across
/// thread counts and pool modes.
pub fn map_max<T: Sync>(items: &[T], identity: f64, f: impl Fn(&T) -> f64 + Sync) -> f64 {
    let len = items.len();
    let threads = num_threads().min(len.max(1));
    if threads <= 1 || in_task() {
        let _flag = enter_task();
        return items.iter().map(&f).fold(identity, f64::max);
    }
    let chunk = len.div_ceil(threads);
    match pool_mode() {
        PoolMode::Scoped => std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|part| {
                    let f = &f;
                    scope.spawn(move || {
                        let _flag = enter_task();
                        part.iter().map(f).fold(identity, f64::max)
                    })
                })
                .collect();
            handles
                .into_iter()
                // PANIC-OK: propagating a worker panic to the caller is
                // the contract — same as the pool's re-raise path.
                .map(|h| h.join().expect("parallel worker panicked"))
                .fold(identity, f64::max)
        }),
        PoolMode::Persistent => {
            let n_chunks = len.div_ceil(chunk);
            // One slot per chunk; written exactly once by whichever
            // worker runs the chunk, folded below in chunk order.
            let partials: Vec<AtomicU64> = (0..n_chunks)
                .map(|_| AtomicU64::new(identity.to_bits()))
                .collect();
            run_pool_batch(n_chunks, 0..n_chunks, &|_ctx, ci| {
                let part = &items[ci * chunk..(ci * chunk + chunk).min(len)];
                let m = part.iter().map(&f).fold(identity, f64::max);
                // ORDERING: Release pairs with the Acquire fold below so
                // the submitter reads each slot's final value (the batch
                // join already orders these; the pairing keeps the slot
                // self-contained).
                partials[ci].store(m.to_bits(), Ordering::Release);
            });
            partials
                .iter()
                // ORDERING: Acquire — see the Release store above.
                .map(|b| f64::from_bits(b.load(Ordering::Acquire)))
                .fold(identity, f64::max)
        }
    }
}

/// Tasks that can never become ready from the seeds (0 for a DAG).
fn count_stuck(indegree: &[usize], dependents: &[Vec<usize>]) -> usize {
    let n = indegree.len();
    let mut counters = indegree.to_vec();
    let mut queue: VecDeque<usize> = (0..n).filter(|&t| indegree[t] == 0).collect();
    let mut visited = 0usize;
    while let Some(t) = queue.pop_front() {
        visited += 1;
        for &d in &dependents[t] {
            counters[d] -= 1;
            if counters[d] == 0 {
                queue.push_back(d);
            }
        }
    }
    n - visited
}

/// Shared scheduler bookkeeping of the scoped-mode graph executor.
struct GraphState {
    /// Tasks whose dependencies are all met, awaiting a worker.
    ready: VecDeque<usize>,
    /// Tasks finished so far.
    done: usize,
    /// Tasks currently executing on some worker.
    in_flight: usize,
    /// Set when a task panicked or a cycle was detected: all workers must
    /// drain and exit so the panic can propagate through the scope join.
    aborted: bool,
}

/// Runs a task dependency graph to completion on the worker pool, with
/// one `init()`-produced scratch state per worker (the lightweight shard
/// scheduler of the pipelined engine step).
///
/// Tasks are identified by index `0..indegree.len()`. `indegree[t]` is the
/// number of direct dependencies of task `t`; `dependents[t]` lists the
/// tasks unblocked by `t`'s completion (each entry accounts for exactly
/// one unit of that task's indegree). A task becomes *ready* once its
/// per-task atomic counter — initialized from `indegree` — reaches zero.
/// On the persistent pool a newly-ready task is pushed onto the
/// *completing worker's own deque* (LIFO — it usually runs next, with its
/// inputs still hot) and idle workers steal from the FIFO end, so one
/// slow shard no longer idles the rest of the pool; independent subgraphs
/// overlap with no global barrier between graph "phases".
///
/// Memory ordering: the counter decrements are `AcqRel`, so everything a
/// dependency task wrote happens-before its dependents run — callers can
/// hand tasks plain (uncontended) locks over shared buffers and rely on
/// the graph edges for exclusivity.
///
/// The single-worker path (and `indegree.len() == 1`) executes tasks in
/// deterministic Kahn order; with more workers the execution *order* is
/// schedule-dependent, so determinism of the results is the caller's
/// contract (each datum written by exactly one task, reads ordered by
/// edges). Worker states require `S: Send` because they are created on
/// worker threads and dropped on the calling thread after the batch.
///
/// # Panics
/// If `dependents.len() != indegree.len()`, if an edge points out of
/// range, or if the graph contains a cycle (some tasks can never become
/// ready). A panic *inside* a task propagates to the caller without
/// deadlocking, and without poisoning the persistent pool for the next
/// call.
pub fn run_graph_init<S: Send>(
    indegree: &[usize],
    dependents: &[Vec<usize>],
    init: impl Fn() -> S + Sync,
    run: impl Fn(&mut S, usize) + Sync,
) {
    let n = indegree.len();
    assert_eq!(dependents.len(), n, "one dependents list per task");
    assert!(
        dependents.iter().flatten().all(|&d| d < n),
        "dependent edge out of range"
    );
    if n == 0 {
        return;
    }
    let threads = num_threads().min(n);

    if threads <= 1 || in_task() {
        // Deterministic sequential Kahn order.
        let _flag = enter_task();
        let mut counters: Vec<usize> = indegree.to_vec();
        let mut queue: VecDeque<usize> = (0..n).filter(|&t| indegree[t] == 0).collect();
        let mut state = init();
        let mut done = 0;
        while let Some(t) = queue.pop_front() {
            run(&mut state, t);
            done += 1;
            for &d in &dependents[t] {
                counters[d] -= 1;
                if counters[d] == 0 {
                    queue.push_back(d);
                }
            }
        }
        assert_eq!(done, n, "task graph has a cycle ({} tasks stuck)", n - done);
        return;
    }

    match pool_mode() {
        PoolMode::Scoped => run_graph_scoped(indegree, dependents, threads, &init, &run),
        PoolMode::Persistent => {
            // Validate acyclicity up front (cheap O(V+E) Kahn pass): the
            // work-stealing executor then never needs a distributed
            // "everyone is stuck" detection.
            let stuck = count_stuck(indegree, dependents);
            assert!(stuck == 0, "task graph has a cycle ({stuck} tasks stuck)");
            let counters: Vec<AtomicUsize> =
                indegree.iter().map(|&d| AtomicUsize::new(d)).collect();
            let payload = {
                let mut guard = lock(&POOL);
                let pool = ensure_pool(&mut guard);
                let states: Vec<StateSlot<S>> = (0..pool.size)
                    .map(|_| StateSlot(UnsafeCell::new(None)))
                    .collect();
                let seeds = (0..n).filter(|&t| indegree[t] == 0);
                pool.run_batch(n, seeds, &|ctx, t| {
                    // SAFETY: slot `ctx.worker()` is touched only by this
                    // worker during the batch; the submitter drops the
                    // vec only after completion.
                    let slot = unsafe { &mut *states[ctx.worker()].0.get() };
                    let state = slot.get_or_insert_with(&init);
                    run(state, t);
                    for &d in &dependents[t] {
                        // ORDERING: AcqRel — Release publishes this
                        // task's writes to whichever worker runs `d`;
                        // Acquire makes the last decrementer see every
                        // predecessor's writes before spawning it.
                        if counters[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                            ctx.spawn(d);
                        }
                    }
                })
            };
            if let Some(p) = payload {
                std::panic::resume_unwind(p);
            }
        }
    }
}

/// The scoped-mode graph executor: a central ready queue over freshly
/// spawned scope threads (the pre-pool scheduler, no work stealing).
fn run_graph_scoped<S>(
    indegree: &[usize],
    dependents: &[Vec<usize>],
    threads: usize,
    init: &(impl Fn() -> S + Sync),
    run: &(impl Fn(&mut S, usize) + Sync),
) {
    let n = indegree.len();
    let counters: Vec<AtomicUsize> = indegree.iter().map(|&d| AtomicUsize::new(d)).collect();
    let sched = Mutex::new(GraphState {
        ready: (0..n).filter(|&t| indegree[t] == 0).collect(),
        done: 0,
        in_flight: 0,
        aborted: false,
    });
    let cv = Condvar::new();

    /// Unblocks waiting workers if a task panics (flags the graph aborted
    /// so nobody waits forever; the panic itself propagates through the
    /// scope join).
    struct PanicGuard<'a> {
        sched: &'a Mutex<GraphState>,
        cv: &'a Condvar,
        armed: bool,
    }
    impl Drop for PanicGuard<'_> {
        fn drop(&mut self) {
            if self.armed {
                if let Ok(mut s) = self.sched.lock() {
                    s.aborted = true;
                }
                self.cv.notify_all();
            }
        }
    }

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let sched = &sched;
            let cv = &cv;
            let counters = &counters;
            scope.spawn(move || {
                let _flag = enter_task();
                let mut state = init();
                loop {
                    // Claim the next ready task (or exit when all done /
                    // the graph aborted).
                    let task = {
                        // PANIC-OK: lock poisoning here means a sibling
                        // worker already panicked; cascading is correct
                        // (the scope join re-raises the original).
                        let mut s = sched.lock().unwrap();
                        loop {
                            if s.done == n || s.aborted {
                                return;
                            }
                            if let Some(t) = s.ready.pop_front() {
                                s.in_flight += 1;
                                break t;
                            }
                            if s.in_flight == 0 {
                                // Nothing running, nothing ready, not
                                // done: a cycle. Wake the other waiters
                                // so they exit before we panic (a panic
                                // under the lock alone would strand them
                                // in `cv.wait` forever).
                                let stuck = n - s.done;
                                s.aborted = true;
                                drop(s);
                                cv.notify_all();
                                // PANIC-OK: a cyclic graph is a caller
                                // bug; the panic propagates through the
                                // scope join.
                                panic!("task graph has a cycle ({stuck} tasks stuck)");
                            }
                            // PANIC-OK: poisoning means a sibling already
                            // panicked; cascade into the scope join.
                            s = cv.wait(s).unwrap();
                        }
                    };
                    let mut guard = PanicGuard {
                        sched,
                        cv,
                        armed: true,
                    };
                    run(&mut state, task);
                    guard.armed = false;
                    drop(guard);
                    let mut newly: Vec<usize> = Vec::new();
                    for &d in &dependents[task] {
                        // ORDERING: AcqRel — same pairing as the
                        // pool-mode executor: Release publishes this
                        // task's writes; the last decrementer Acquires
                        // every predecessor's.
                        if counters[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                            newly.push(d);
                        }
                    }
                    // PANIC-OK: poisoning means a sibling already
                    // panicked; cascade into the scope join.
                    let mut s = sched.lock().unwrap();
                    s.in_flight -= 1;
                    s.done += 1;
                    s.ready.extend(newly);
                    let wake = s.done == n || !s.ready.is_empty();
                    drop(s);
                    if wake {
                        cv.notify_all();
                    }
                }
            });
        }
    });
    // A panicked worker propagated through the scope join above; getting
    // here with unfinished tasks can only mean a logic error.
    // PANIC-OK: unreachable when poisoned — a worker panic already
    // propagated through the scope join above.
    let s = sched.into_inner().unwrap();
    debug_assert_eq!(s.done, n, "scheduler exited with unfinished tasks");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The thread-count and pool-mode overrides are process-global: tests
    /// that flip them must hold this lock so the save/restore pairs
    /// cannot interleave (which would leak the override into unrelated
    /// tests).
    static THREAD_KNOB: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Runs `body` under both executors, restoring the ambient mode.
    fn for_both_modes(body: impl Fn(PoolMode)) {
        let before = pool_mode();
        for mode in [PoolMode::Persistent, PoolMode::Scoped] {
            set_pool_mode(mode);
            body(mode);
        }
        set_pool_mode(before);
    }

    #[test]
    fn for_each_covers_all_indices_once() {
        for_both_modes(|_| {
            let mut v = vec![0usize; 1000];
            for_each_mut(&mut v, |i, x| *x = i + 1);
            for (i, &x) in v.iter().enumerate() {
                assert_eq!(x, i + 1);
            }
        });
    }

    #[test]
    fn init_state_is_per_chunk_and_reused() {
        // The state counts invocations; totals across chunks must cover
        // every item exactly once.
        use std::sync::atomic::AtomicUsize;
        for_both_modes(|_| {
            let total = AtomicUsize::new(0);
            let mut v = vec![0u8; 517];
            for_each_mut_init(
                &mut v,
                || 0usize,
                |count, _, _| {
                    *count += 1;
                    total.fetch_add(1, Ordering::Relaxed);
                },
            );
            assert_eq!(total.load(Ordering::Relaxed), 517);
        });
    }

    #[test]
    fn map_max_matches_sequential() {
        for_both_modes(|_| {
            let v: Vec<f64> = (0..777).map(|i| ((i * 37) % 101) as f64).collect();
            let want = v.iter().cloned().fold(0.0, f64::max);
            assert_eq!(map_max(&v, 0.0, |&x| x), want);
            assert_eq!(map_max::<f64>(&[], -1.0, |&x| x), -1.0);
        });
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn env_knobs_accept_documented_values() {
        assert_eq!(resolve_pool_mode(None), PoolMode::Persistent);
        assert_eq!(resolve_pool_mode(Some("persistent")), PoolMode::Persistent);
        assert_eq!(resolve_pool_mode(Some("scoped")), PoolMode::Scoped);

        assert_eq!(resolve_num_threads(None), None);
        assert_eq!(resolve_num_threads(Some("1")), Some(1));
        assert_eq!(resolve_num_threads(Some("16")), Some(16));

        assert!(!resolve_pin(None));
        assert!(!resolve_pin(Some("")));
        assert!(!resolve_pin(Some("0")));
        assert!(resolve_pin(Some("1")));
    }

    #[test]
    #[should_panic(expected = "unknown ADERDG_POOL `scope`")]
    fn pool_mode_typo_fails_loudly() {
        resolve_pool_mode(Some("scope"));
    }

    #[test]
    #[should_panic(expected = "invalid ADERDG_THREADS `four`")]
    fn thread_count_typo_fails_loudly() {
        resolve_num_threads(Some("four"));
    }

    #[test]
    #[should_panic(expected = "invalid ADERDG_THREADS `0`")]
    fn zero_thread_count_fails_loudly() {
        resolve_num_threads(Some("0"));
    }

    #[test]
    #[should_panic(expected = "invalid ADERDG_PIN `yes`")]
    fn pin_typo_fails_loudly() {
        resolve_pin(Some("yes"));
    }

    #[test]
    fn for_each_handles_empty_and_tiny_slices() {
        // Empty slice: no work, no panic, init never observed.
        let mut empty: Vec<usize> = Vec::new();
        for_each_mut(&mut empty, |_, _| unreachable!("no items to visit"));

        // Single item.
        let mut one = vec![0usize];
        for_each_mut(&mut one, |i, x| *x = i + 42);
        assert_eq!(one, vec![42]);

        // Fewer items than workers: every index still visited exactly
        // once (the chunking clamps to the item count).
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(16);
        for_both_modes(|_| {
            let mut few = vec![0usize; 3];
            for_each_mut_init(
                &mut few,
                || (),
                |(), i, x| {
                    *x += i + 1;
                },
            );
            assert_eq!(few, vec![1, 2, 3]);
        });
        set_num_threads(before);
    }

    #[test]
    fn map_max_edge_cases_empty_single_and_len_below_threads() {
        assert_eq!(map_max::<f64>(&[], 7.5, |&x| x), 7.5);
        assert_eq!(map_max(&[3.0f64], 0.0, |&x| x), 3.0);
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(16);
        for_both_modes(|_| {
            let v = [2.0f64, 9.0, 4.0];
            assert_eq!(map_max(&v, 0.0, |&x| x), 9.0);
        });
        set_num_threads(before);
    }

    #[test]
    fn run_graph_respects_dependency_order() {
        // Diamond per layer: 0 -> {1, 2} -> 3, chained 32 times.
        let layers = 32;
        let n = 4 * layers;
        let mut indegree = vec![0usize; n];
        let mut dependents = vec![Vec::new(); n];
        for l in 0..layers {
            let b = 4 * l;
            dependents[b] = vec![b + 1, b + 2];
            indegree[b + 1] = 1;
            indegree[b + 2] = 1;
            dependents[b + 1] = vec![b + 3];
            dependents[b + 2] = vec![b + 3];
            indegree[b + 3] = 2;
            if l + 1 < layers {
                dependents[b + 3].push(b + 4);
                indegree[b + 4] = 1;
            }
        }
        for_both_modes(|_| {
            let finished: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let order = AtomicUsize::new(0);
            run_graph_init(
                &indegree,
                &dependents,
                || (),
                |(), t| {
                    // Record a completion stamp and check every dependency
                    // already finished.
                    let deps: Vec<usize> = (0..n).filter(|&d| dependents[d].contains(&t)).collect();
                    for d in deps {
                        assert!(
                            finished[d].load(Ordering::Acquire) > 0,
                            "task {t} ran before dependency {d}"
                        );
                    }
                    finished[t].store(1 + order.fetch_add(1, Ordering::AcqRel), Ordering::Release);
                },
            );
            assert!(finished.iter().all(|f| f.load(Ordering::Acquire) > 0));
        });
    }

    #[test]
    fn run_graph_runs_every_task_once_at_many_threads() {
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(16);
        for_both_modes(|_| {
            let n = 300;
            // Independent tasks (no edges): pure fan-out.
            let indegree = vec![0usize; n];
            let dependents = vec![Vec::new(); n];
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            run_graph_init(
                &indegree,
                &dependents,
                || (),
                |(), t| {
                    hits[t].fetch_add(1, Ordering::Relaxed);
                },
            );
            for (t, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {t}");
            }
        });
        set_num_threads(before);
    }

    #[test]
    fn run_graph_init_state_is_reused_per_worker() {
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(1);
        // Sequential path: one state visits all tasks in Kahn order.
        let indegree = vec![0, 1, 1];
        let dependents = vec![vec![1], vec![2], vec![]];
        let total = AtomicUsize::new(0);
        run_graph_init(
            &indegree,
            &dependents,
            || 0usize,
            |count, t| {
                assert_eq!(*count, t, "sequential Kahn order");
                *count += 1;
                total.fetch_add(1, Ordering::Relaxed);
            },
        );
        set_num_threads(before);
        assert_eq!(total.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn run_graph_empty_is_a_noop() {
        for_both_modes(|_| {
            run_graph_init(&[], &[], || (), |(), _| unreachable!("no tasks"));
        });
    }

    #[test]
    fn run_graph_propagates_task_panics_at_many_threads() {
        // A panicking task must neither hang the scheduler nor strand
        // the surviving workers: the panic propagates out of
        // run_graph_init on the calling thread, and the pool stays
        // usable for the next call.
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(4);
        for_both_modes(|_| {
            let n = 64;
            let indegree = vec![0usize; n];
            let dependents = vec![Vec::new(); n];
            let result = std::panic::catch_unwind(|| {
                run_graph_init(
                    &indegree,
                    &dependents,
                    || (),
                    |(), t| {
                        if t == 13 {
                            panic!("boom in task {t}");
                        }
                    },
                );
            });
            assert!(result.is_err(), "the task panic must propagate");
            // The pool survives: the next batch runs normally.
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            run_graph_init(
                &indegree,
                &dependents,
                || (),
                |(), t| {
                    hits[t].fetch_add(1, Ordering::Relaxed);
                },
            );
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
        set_num_threads(before);
    }

    #[test]
    fn run_graph_detects_cycles_at_many_threads_without_hanging() {
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(4);
        for_both_modes(|_| {
            // An acyclic prefix (0) feeding a 1 <-> 2 cycle.
            let indegree = vec![0, 2, 1];
            let dependents = vec![vec![1], vec![2], vec![1]];
            let result = std::panic::catch_unwind(|| {
                run_graph_init(&indegree, &dependents, || (), |(), _| {});
            });
            // `run_graph_panics_on_cycle` pins the message on the
            // sequential path. Here the contract is detection without
            // deadlock on both executors.
            assert!(result.is_err(), "the cycle must be detected");
        });
        set_num_threads(before);
    }

    #[test]
    #[should_panic(expected = "task graph has a cycle")]
    fn run_graph_panics_on_cycle() {
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(1);
        let indegree = vec![0, 2, 1];
        let dependents = vec![vec![1], vec![2], vec![1]]; // 1 <-> 2 cycle
        let result = std::panic::catch_unwind(|| {
            run_graph_init(&indegree, &dependents, || (), |(), _| {});
        });
        set_num_threads(before);
        // Release the knob lock *before* re-panicking so the expected
        // panic cannot poison it for the other knob-flipping tests.
        drop(_guard);
        std::panic::resume_unwind(result.unwrap_err());
    }

    #[test]
    fn map_max_ignores_nan_items() {
        for_both_modes(|_| {
            // f64::max drops NaN against any non-NaN operand...
            let v = [1.0f64, f64::NAN, 5.0, f64::NAN];
            assert_eq!(map_max(&v, 0.0, |&x| x), 5.0);
            // ...so an all-NaN slice falls back to the identity.
            let all_nan = [f64::NAN, f64::NAN];
            assert_eq!(map_max(&all_nan, -1.0, |&x| x), -1.0);
        });
    }

    #[test]
    fn nested_parallel_calls_run_inline() {
        let _guard = THREAD_KNOB.lock().unwrap();
        let before = num_threads();
        set_num_threads(4);
        for_both_modes(|_| {
            let mut outer = vec![0usize; 8];
            for_each_mut(&mut outer, |i, x| {
                // A nested call from inside a task must not deadlock on
                // the pool; it runs inline on this worker.
                let mut inner = vec![0usize; 16];
                for_each_mut(&mut inner, |j, y| *y = j + 1);
                *x = i + inner.iter().sum::<usize>();
            });
            for (i, &x) in outer.iter().enumerate() {
                assert_eq!(x, i + 136);
            }
        });
        set_num_threads(before);
    }
}
