//! Analytic SIMD instruction-mix model — the Fig. 9 measurement.
//!
//! The paper measures, with VTune, which fraction of floating-point
//! operations each kernel variant executes at which SIMD packing width.
//! Our kernels know this analytically from their own loop structure:
//!
//! * GEMM sweeps over padded tensors execute entirely at the plan width
//!   (padding included — the "free" flops of Sec. III-A),
//! * pointwise user functions execute scalar (generic, LoG, SplitCK),
//! * vectorized user functions execute at the plan width over padded
//!   x-lines (AoSoA, Fig. 8),
//! * unpadded loops vectorize with cascading remainders (compiler
//!   behaviour, generic variant).

use crate::plan::{KernelVariant, StpPlan};
use aderdg_perf::{classify_loop, classify_padded_loop, PackCounts};

/// Static description of the PDE's user-function cost, decoupled from a
/// live [`LinearPde`](aderdg_pde::LinearPde) instance so the model can be
/// evaluated for arbitrary configurations.
#[derive(Debug, Clone, Copy)]
pub struct UserFunctionCost {
    /// Flops of one pointwise flux evaluation in one direction.
    pub flux_flops: u64,
    /// Flops of one pointwise ncp evaluation (0 = no ncp term).
    pub ncp_flops: u64,
    /// Whether vectorized overrides exist (Fig. 8) for the AoSoA variant.
    pub vectorized: bool,
}

impl UserFunctionCost {
    /// Cost model of the paper's 21-quantity elastic benchmark.
    pub fn elastic() -> Self {
        Self {
            flux_flops: 3 * 16 + 9 * 2 + 8,
            ncp_flops: 0,
            vectorized: true,
        }
    }
}

/// Classified flop counts of one STP kernel invocation of `variant`.
pub fn stp_pack_counts(
    plan: &StpPlan,
    variant: KernelVariant,
    cost: UserFunctionCost,
) -> PackCounts {
    let n = plan.n() as u64;
    let m = plan.m() as u64;
    let m_pad = plan.aos.m_pad() as u64;
    let n_pad = plan.aosoa.n_pad() as u64;
    let vol = n * n * n;
    let w = plan.cfg.width;
    let has_ncp = cost.ncp_flops > 0;

    let mut counts = PackCounts::new();
    let scalar = |c: &mut PackCounts, flops: u64| c.add(None, flops);
    let packed = |c: &mut PackCounts, flops: u64| c.add(Some(w), flops);

    // --- user functions -------------------------------------------------
    // 3(N+1) flux sweeps (N iterations × 3 dims + time-averaged flux).
    let flux_sweeps = 3 * (n + 1);
    let ncp_sweeps = 3 * n;
    match variant {
        KernelVariant::AoSoASplitCk if cost.vectorized => {
            // Vectorized over padded x-lines: n_pad lanes per line of n.
            let lanes = vol / n * n_pad;
            packed(&mut counts, flux_sweeps * lanes * cost.flux_flops);
            if has_ncp {
                packed(&mut counts, ncp_sweeps * lanes * cost.ncp_flops);
            }
        }
        _ => {
            scalar(&mut counts, flux_sweeps * vol * cost.flux_flops);
            if has_ncp {
                scalar(&mut counts, ncp_sweeps * vol * cost.ncp_flops);
            }
        }
    }

    // --- tensor derivatives ----------------------------------------------
    // Per sweep: every output entry needs n multiply-adds. Sweeps: 3 per
    // iteration for the flux derivative, 3 more for gradQ with ncp.
    let deriv_sweeps = if has_ncp { 6 * n } else { 3 * n };
    match variant {
        KernelVariant::Generic => {
            // Strided gather contraction: scalar.
            scalar(&mut counts, deriv_sweeps * vol * m * 2 * n);
        }
        KernelVariant::LoG | KernelVariant::SplitCk => {
            packed(&mut counts, deriv_sweeps * vol * m_pad * 2 * n);
        }
        KernelVariant::AoSoASplitCk => {
            packed(&mut counts, deriv_sweeps * (vol / n) * m * n_pad * 2 * n);
        }
    }

    // --- Taylor-term summation and time averaging -------------------------
    // p_next = Σ_d dF (3 adds/entry per iteration) in generic/LoG;
    // SplitCK accumulates through GEMM beta=1 (already counted).
    // qavg/favg accumulation: 2 flops per entry per order (mul + add).
    match variant {
        KernelVariant::Generic => {
            // Unpadded, unaligned loops: the compiler vectorizes with
            // cascading remainders (what Fig. 9 shows as the generic
            // variant's small packed fraction).
            let accum_iters = n * 3 * vol; // p_next summation entries
            let tavg_iters = (n + 1) * 4 * vol; // qavg + 3 favg entries
            let c = classify_loop(m as usize, 1, w);
            counts = counts.merge(&c.scale(accum_iters));
            let c2 = classify_loop(m as usize, 2, w);
            counts = counts.merge(&c2.scale(tavg_iters));
        }
        KernelVariant::LoG => {
            let accum = n * 3 * vol * m_pad; // p_next adds
            let tavg = (n + 1) * 4 * vol * m_pad * 2;
            counts = counts.merge(&classify_padded_loop((accum + tavg) as usize, 1, w));
        }
        KernelVariant::SplitCk => {
            // On-the-fly qavg accumulation: (N+1) passes, 2 flops/entry.
            let tavg = (n + 1) * vol * m_pad * 2;
            counts = counts.merge(&classify_padded_loop(tavg as usize, 1, w));
        }
        KernelVariant::AoSoASplitCk => {
            let tavg = (n + 1) * (vol / n) * m * n_pad * 2;
            counts = counts.merge(&classify_padded_loop(tavg as usize, 1, w));
        }
    }

    // --- face projections --------------------------------------------------
    // 6 faces × 2 tensors, n³·m(, padded) entries contracted over n.
    let face_flops_unpadded = 6 * 2 * vol * m * 2;
    match variant {
        KernelVariant::Generic => scalar(&mut counts, face_flops_unpadded),
        _ => {
            // Unit-stride over the padded quantity dimension.
            packed(&mut counts, 6 * 2 * vol * m_pad * 2);
        }
    }

    counts
}

/// Classified flop counts of the per-cell *corrector + Riemann* work that
/// accompanies every predictor invocation. The paper's Fig. 9 measures the
/// full application: these engine parts stay (partially) scalar even in
/// the AoSoA configuration and are the source of its residual 2–4 %
/// scalar share.
pub fn corrector_pack_counts(
    plan: &StpPlan,
    variant: KernelVariant,
    cost: UserFunctionCost,
) -> PackCounts {
    let n = plan.n() as u64;
    let m = plan.m() as u64;
    let m_pad = plan.aos.m_pad() as u64;
    let vol = n * n * n;
    let w = plan.cfg.width;
    let mut counts = PackCounts::new();

    // Volume term: 3 derivative sweeps over favg (+3 over qavg with ncp).
    let vol_sweeps = if cost.ncp_flops > 0 { 6 } else { 3 };
    match variant {
        KernelVariant::Generic => counts.add(None, vol_sweeps * vol * m * 2 * n),
        _ => counts.add(Some(w), vol_sweeps * vol * m_pad * 2 * n),
    }
    // Riemann solves: 6 faces × n² nodes, pointwise (scalar in all
    // variants — one wavespeed max + the flux average per variable).
    counts.add(None, 6 * n * n * (m * 4));
    // Face corrections: 6 faces × n³ entries × 3 flops, short unit-stride
    // inner loops over m — partially vectorized by the compiler.
    let face_iters = 6 * n * n * n * 3;
    counts = counts.merge(&classify_loop(m as usize, 1, w).scale(face_iters));
    counts
}

/// Whole-application mix for one cell-step: predictor + corrector/Riemann.
/// This is what the paper's VTune measurement of Fig. 9 sees.
pub fn full_step_pack_counts(
    plan: &StpPlan,
    variant: KernelVariant,
    cost: UserFunctionCost,
) -> PackCounts {
    stp_pack_counts(plan, variant, cost).merge(&corrector_pack_counts(plan, variant, cost))
}

/// Useful (unpadded, algorithmic) flops of one invocation — the numerator
/// of the "% of available performance" metric. Identical across variants
/// by construction: padding and layout must not change the numerics.
pub fn stp_useful_flops(plan: &StpPlan, cost: UserFunctionCost) -> u64 {
    let n = plan.n() as u64;
    let m = plan.m() as u64;
    let vol = n * n * n;
    let has_ncp = cost.ncp_flops > 0;
    let mut flops = 0;
    flops += 3 * (n + 1) * vol * cost.flux_flops;
    if has_ncp {
        flops += 3 * n * vol * cost.ncp_flops;
    }
    let deriv_sweeps = if has_ncp { 6 * n } else { 3 * n };
    flops += deriv_sweeps * vol * m * 2 * n;
    flops += n * 3 * vol * m; // Taylor-term summation
    flops += (n + 1) * 4 * vol * m * 2; // time averaging
    flops += 6 * 2 * vol * m * 2; // face projections
    flops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::StpConfig;
    use aderdg_tensor::SimdWidth;

    fn plan(n: usize) -> StpPlan {
        StpPlan::new(StpConfig::new(n, 21).with_width(SimdWidth::W8), [1.0; 3])
    }

    #[test]
    fn generic_is_mostly_scalar() {
        let c = stp_pack_counts(
            &plan(6),
            KernelVariant::Generic,
            UserFunctionCost::elastic(),
        );
        assert!(
            c.scalar_fraction() > 0.6,
            "generic scalar fraction {}",
            c.scalar_fraction()
        );
    }

    #[test]
    fn log_and_splitck_scalar_share_near_ten_percent() {
        // Paper Sec. VI-A: "still close to 10 % of the FLOPs, mostly coming
        // from the user functions, are performed using scalar instructions".
        for v in [KernelVariant::LoG, KernelVariant::SplitCk] {
            for n in [6, 8, 10] {
                let c = stp_pack_counts(&plan(n), v, UserFunctionCost::elastic());
                let s = c.scalar_fraction();
                assert!(s > 0.02 && s < 0.25, "{v:?} n={n}: scalar {s}");
            }
        }
    }

    #[test]
    fn aosoa_scalar_share_under_five_percent() {
        // Paper: "down to 2-4 %, close to full vectorization".
        for n in [6, 8, 10, 11] {
            let c = stp_pack_counts(
                &plan(n),
                KernelVariant::AoSoASplitCk,
                UserFunctionCost::elastic(),
            );
            let s = c.scalar_fraction();
            assert!(s < 0.05, "n={n}: scalar {s}");
        }
    }

    #[test]
    fn full_step_aosoa_scalar_share_in_paper_band() {
        // Whole application (predictor + corrector + Riemann): the AoSoA
        // configuration retains a small scalar residual (paper: 2–4 %; our
        // engine's scalar share shrinks faster with order because the
        // predictor flops grow ~N⁵ against the corrector's ~N⁴).
        for n in [6, 8, 11] {
            let c = full_step_pack_counts(
                &plan(n),
                KernelVariant::AoSoASplitCk,
                UserFunctionCost::elastic(),
            );
            let s = c.scalar_fraction();
            assert!((0.001..0.05).contains(&s), "n={n}: scalar {s}");
        }
    }

    #[test]
    fn corrector_counts_positive_and_variant_sensitive() {
        let p = plan(6);
        let cost = UserFunctionCost::elastic();
        let gen = corrector_pack_counts(&p, KernelVariant::Generic, cost);
        let opt = corrector_pack_counts(&p, KernelVariant::SplitCk, cost);
        assert!(gen.total() > 0 && opt.total() > 0);
        assert!(gen.scalar_fraction() > opt.scalar_fraction());
    }

    #[test]
    fn avx2_width_shifts_mix_to_256() {
        let p = StpPlan::new(StpConfig::new(8, 21).with_width(SimdWidth::W4), [1.0; 3]);
        let c = stp_pack_counts(&p, KernelVariant::SplitCk, UserFunctionCost::elastic());
        let f = c.fractions();
        assert_eq!(f[3], 0.0, "no 512-bit packs on an AVX2 plan");
        assert!(f[2] > 0.7, "256-bit share {}", f[2]);
    }

    #[test]
    fn useful_flops_grow_with_order() {
        let cost = UserFunctionCost::elastic();
        let f6 = stp_useful_flops(&plan(6), cost);
        let f11 = stp_useful_flops(&plan(11), cost);
        // Leading term 6 N⁵ m (+ user functions): strictly increasing and
        // superlinear.
        assert!(f11 > f6 * 10);
    }

    #[test]
    fn useful_flops_variant_independent_by_construction() {
        // The function takes no variant argument — document that it is the
        // common numerator for all four variants at a given configuration.
        let cost = UserFunctionCost::elastic();
        let f = stp_useful_flops(&plan(7), cost);
        assert!(f > 0);
    }
}
