//! The scenario subsystem — named, registry-resolved workloads.
//!
//! The paper's evaluation is a fixed set of benchmark setups (plane-wave
//! convergence, the LOH.1 layered half-space, …); until now each one
//! lived as a hand-rolled `examples/*.rs` file, so running a new setup
//! meant writing Rust. A [`Scenario`] packages everything that defines a
//! workload — the PDE system and its material parameters, the initial
//! condition, the boundary configuration, default mesh/order/`t_end`,
//! optional exact solution, point sources and receiver probes — behind a
//! type-erased `run` entry point, and the [`ScenarioRegistry`] mirrors
//! [`KernelRegistry`]: scenarios are
//! registered by name and resolved by the `aderdg-run` CLI, the examples
//! and the tests alike.
//!
//! The engine-construction boilerplate lives in exactly one place — the
//! [`drive`] helper — so a scenario implementation only declares physics:
//!
//! ```
//! use aderdg_core::scenario::{RunRequest, ScenarioRegistry};
//!
//! // Resolve a registered scenario and run it on a tiny smoke grid.
//! let scenario = ScenarioRegistry::global().resolve("acoustic_wave").unwrap();
//! let summary = scenario.run(&RunRequest::smoke()).unwrap();
//! assert!(summary.steps > 0);
//! assert!(summary.l2_error.is_some()); // this scenario has an exact solution
//! ```

use crate::checkpoint::Checkpoint;
use crate::engine::{Engine, EngineConfig, PipelineMode, SteppingMode};
use crate::registry::KernelRegistry;
use crate::spec::SolverSpec;
use crate::tune::TuningMode;
use aderdg_mesh::StructuredMesh;
use aderdg_pde::{ExactSolution, LinearPde, PointSource};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
// DETERMINISM-OK: wall-clock feeds only the reported `wall_seconds`
// metadata, never the numerics or the dt sequence.
use std::time::Instant;

/// Static description of a registered scenario: identity, physics label,
/// and the defaults a [`RunRequest`] overrides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioInfo {
    /// Registry key (`aderdg-run --scenario <name>`).
    pub name: &'static str,
    /// One-line human description.
    pub title: &'static str,
    /// PDE system family: `acoustic`, `advection`, `elastic`, `maxwell`
    /// or `swe`.
    pub system: &'static str,
    /// Default scheme order.
    pub order: usize,
    /// Default mesh dimensions (cells per axis).
    pub cells: [usize; 3],
    /// Default simulated end time.
    pub t_end: f64,
    /// Default kernel registry key.
    pub kernel: &'static str,
    /// True if the scenario provides an exact solution (error norms are
    /// reported).
    pub has_exact: bool,
    /// Mesh dimensions of the `--smoke` configuration (tiny, CI-sized).
    pub smoke_cells: [usize; 3],
}

/// A scenario run failure (unknown kernel, invalid override, IO error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// Human-readable message.
    pub message: String,
}

impl ScenarioError {
    /// New error from anything displayable.
    pub fn new(message: impl fmt::Display) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario error: {}", self.message)
    }
}

impl std::error::Error for ScenarioError {}

/// Per-run overrides of a scenario's defaults. Every field defaults to
/// `None` (= keep the scenario's or the solver's default), so the CLI and
/// the examples only set what the user asked for.
#[derive(Debug, Clone, Default)]
pub struct RunRequest {
    /// Scheme order override.
    pub order: Option<usize>,
    /// Kernel registry key override.
    pub kernel: Option<String>,
    /// CFL factor override.
    pub cfl: Option<f64>,
    /// SIMD width override.
    pub width: Option<aderdg_tensor::SimdWidth>,
    /// Quadrature rule override.
    pub rule: Option<aderdg_quadrature::QuadratureRule>,
    /// Predictor block size override (`Some(None)` = force `auto`).
    pub block_size: Option<Option<usize>>,
    /// Tuning-mode override.
    pub tuning: Option<TuningMode>,
    /// Pipeline override.
    pub pipeline: Option<PipelineMode>,
    /// Shard size override (`Some(None)` = force `auto`).
    pub shard_size: Option<Option<usize>>,
    /// Time-stepping strategy override (`global` | `lts`).
    pub stepping: Option<SteppingMode>,
    /// Uniform cells-per-axis override (scales all three mesh axes).
    pub cells: Option<usize>,
    /// End-time override.
    pub t_end: Option<f64>,
    /// Smoke mode: tiny grid ([`ScenarioInfo::smoke_cells`]), order
    /// clamped to ≤ 3, and a fixed handful of steps instead of `t_end`.
    pub smoke: bool,
    /// Write a nodal CSV snapshot of the final state here (via
    /// [`crate::output::write_csv`]).
    pub snapshot: Option<std::path::PathBuf>,
    /// Save a [`Checkpoint`] of the engine state here when the run
    /// completes or pauses (written atomically; a completed-run
    /// checkpoint can be resumed with a larger `t_end` to extend it).
    pub save_checkpoint: Option<PathBuf>,
    /// Resume from this checkpoint instead of the initial condition.
    /// Build the rest of the request from
    /// [`Checkpoint::to_request`] so the engine configuration matches
    /// the saved state.
    pub resume: Option<Arc<Checkpoint>>,
    /// Cooperative pause/cancel control, polled between steps (shared
    /// with a job queue, server connection or signal handler).
    pub control: Option<Arc<RunControl>>,
}

/// Why [`RunRequest::set`] rejected a value: what the key expects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetValueError {
    /// Human-readable expectation, e.g. `an integer 2..=15`.
    pub expected: &'static str,
}

/// Number of CFL steps a `--smoke` run takes (instead of targeting
/// `t_end`).
pub const SMOKE_STEPS: usize = 2;

impl RunRequest {
    /// A request that keeps every scenario default.
    pub fn new() -> Self {
        Self::default()
    }

    /// A smoke request: tiny grid, [`SMOKE_STEPS`] steps.
    pub fn smoke() -> Self {
        Self {
            smoke: true,
            ..Self::default()
        }
    }

    /// Applies one `key = value` knob by name — the single shared parser
    /// behind CLI flags, config-file entries, `aderdg-serve` `SUBMIT`
    /// commands and checkpoint-knob replay. Returns `Ok(false)` for an
    /// unknown key (the caller owns that error's wording) and
    /// [`SetValueError`] for a bad value.
    pub fn set(&mut self, key: &str, value: &str) -> Result<bool, SetValueError> {
        fn parse<T: std::str::FromStr>(
            value: &str,
            expected: &'static str,
        ) -> Result<T, SetValueError> {
            value.parse().map_err(|_| SetValueError { expected })
        }
        let bad = |expected: &'static str| SetValueError { expected };
        match key {
            "order" => self.order = Some(parse(value, "an integer 2..=15")?),
            "kernel" => self.kernel = Some(value.to_string()),
            "cfl" => self.cfl = Some(parse(value, "a number in (0, 0.45]")?),
            "width" => {
                self.width =
                    Some(crate::spec::parse_width(value).ok_or(bad("sse|avx2|avx512|host"))?)
            }
            "rule" => {
                self.rule = Some(
                    crate::spec::parse_rule(value).ok_or(bad("gauss_legendre|gauss_lobatto"))?,
                )
            }
            "block_size" => {
                self.block_size = Some(
                    crate::spec::parse_auto_size(value).ok_or(bad("auto or an integer >= 1"))?,
                )
            }
            "tuning" => {
                self.tuning = Some(TuningMode::parse(value).ok_or(bad("static|model|probe"))?)
            }
            "pipeline" => {
                self.pipeline = Some(PipelineMode::parse(value).ok_or(bad("barrier|sharded"))?)
            }
            "shard_size" => {
                self.shard_size = Some(
                    crate::spec::parse_auto_size(value).ok_or(bad("auto or an integer >= 1"))?,
                )
            }
            "stepping" => {
                self.stepping = Some(SteppingMode::parse(value).ok_or(bad("global|lts"))?)
            }
            "cells" => self.cells = Some(parse(value, "an integer >= 1")?),
            "t_end" => self.t_end = Some(parse(value, "a positive number")?),
            "smoke" => {
                self.smoke = match value {
                    "true" => true,
                    "false" => false,
                    _ => return Err(bad("true|false")),
                }
            }
            "snapshot" => self.snapshot = Some(PathBuf::from(value)),
            "save_checkpoint" => self.save_checkpoint = Some(PathBuf::from(value)),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Copies every solver knob of a parsed [`SolverSpec`] into explicit
    /// overrides — the spec-file route into a scenario ("any scenario ×
    /// any `SolverSpec` knob").
    pub fn with_spec(mut self, spec: &SolverSpec) -> Self {
        self.order = Some(spec.order);
        self.kernel = Some(spec.kernel.name().to_string());
        self.cfl = Some(spec.cfl);
        self.width = Some(spec.width);
        self.rule = Some(spec.rule);
        self.block_size = Some(spec.block_size);
        self.tuning = Some(spec.tuning);
        self.pipeline = Some(spec.pipeline);
        self.shard_size = Some(spec.shard_size);
        self.stepping = Some(spec.stepping);
        self
    }
}

/// Cooperative control of an in-flight scenario run: [`drive`] polls it
/// at every step boundary, so a pause or cancel takes effect without
/// interrupting a step — the engine is always left in a
/// checkpointable state. The other `Arc` holder is typically a job
/// queue ([`crate::jobs`]), a server connection or a signal handler.
///
/// The driver also publishes live step/time progress here, so a service
/// can report status without touching the engine from another thread.
#[derive(Debug)]
pub struct RunControl {
    pause: AtomicBool,
    cancel: AtomicBool,
    /// Pause once `engine.steps` reaches this (`usize::MAX` = never) — a
    /// deterministic pause trigger for tests and scripted
    /// checkpointing.
    pause_at_step: AtomicUsize,
    steps: AtomicUsize,
    time_bits: AtomicU64,
}

impl RunControl {
    /// A control with nothing requested.
    pub fn new() -> Self {
        Self {
            pause: AtomicBool::new(false),
            cancel: AtomicBool::new(false),
            pause_at_step: AtomicUsize::new(usize::MAX),
            steps: AtomicUsize::new(0),
            time_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Asks the run to stop at the next step boundary and return a
    /// paused [`RunSummary`] (checkpointable via
    /// [`RunRequest::save_checkpoint`]).
    pub fn request_pause(&self) {
        self.pause.store(true, Ordering::Relaxed);
    }

    /// Asks the run to stop at the next step boundary and fail with a
    /// "run cancelled" [`ScenarioError`].
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Arms an automatic pause once the engine's step count reaches
    /// `step` — deterministic, unlike a racing [`request_pause`].
    ///
    /// [`request_pause`]: RunControl::request_pause
    pub fn pause_at_step(&self, step: usize) {
        self.pause_at_step.store(step, Ordering::Relaxed);
    }

    /// Whether a pause has been requested (flag or armed step trigger).
    pub fn pause_requested(&self) -> bool {
        self.pause.load(Ordering::Relaxed)
            || self.pause_at_step.load(Ordering::Relaxed) != usize::MAX
    }

    /// Whether a cancel has been requested.
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// The driver's last published `(steps, time)` progress.
    pub fn progress(&self) -> (usize, f64) {
        (
            self.steps.load(Ordering::Relaxed),
            f64::from_bits(self.time_bits.load(Ordering::Relaxed)),
        )
    }

    fn note_progress(&self, steps: usize, time: f64) {
        self.steps.store(steps, Ordering::Relaxed);
        self.time_bits.store(time.to_bits(), Ordering::Relaxed);
    }

    fn should_stop(&self, steps: usize) -> bool {
        self.cancel.load(Ordering::Relaxed)
            || self.pause.load(Ordering::Relaxed)
            || steps >= self.pause_at_step.load(Ordering::Relaxed)
    }
}

impl Default for RunControl {
    fn default() -> Self {
        Self::new()
    }
}

/// A `(time, value)` series point recorded at a run checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Simulated time of the checkpoint.
    pub t: f64,
    /// Steps taken so far.
    pub steps: usize,
    /// Quadrature-weighted L2 norm of the evolved quantities (discrete
    /// energy proxy).
    pub l2_norm: f64,
    /// L2 error against the exact solution, where one exists.
    pub l2_error: Option<f64>,
}

/// A receiver probe's recorded seismogram, carried out of the type-erased
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceiverTrace {
    /// Probe position.
    pub position: [f64; 3],
    /// `(time, evolved quantities)` samples, one per step.
    pub records: Vec<(f64, Vec<f64>)>,
}

/// What a scenario run produced — everything the CLI prints and the
/// examples assert on.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Scenario registry key.
    pub scenario: &'static str,
    /// PDE system family.
    pub system: &'static str,
    /// Scheme order the run used.
    pub order: usize,
    /// Mesh dimensions the run used.
    pub cells: [usize; 3],
    /// Total cell count.
    pub num_cells: usize,
    /// Kernel registry key the run used.
    pub kernel: &'static str,
    /// Step pipeline the run used.
    pub pipeline: PipelineMode,
    /// Time-stepping strategy the run used.
    pub stepping: SteppingMode,
    /// Resolved predictor block size (tuner pick or override).
    pub block_size: usize,
    /// Chosen GEMM backend (from the tune report).
    pub backend: &'static str,
    /// One-line tune-report summary (mode, block size vs static
    /// heuristic, backend).
    pub tune: String,
    /// Steps taken.
    pub steps: usize,
    /// Simulated end time actually reached.
    pub t_end: f64,
    /// True if the run stopped early on a [`RunControl`] pause request
    /// (the state was checkpointable at that boundary; `t_end` is where
    /// it paused, not the target).
    pub paused: bool,
    /// Wall-clock seconds spent stepping (excludes setup and the
    /// per-checkpoint norm/error diagnostics).
    pub wall_seconds: f64,
    /// Throughput: cell updates per second.
    pub cell_updates_per_second: f64,
    /// Final L2 norm of the evolved quantities.
    pub l2_norm: f64,
    /// Final L2 error against the exact solution, where one exists.
    pub l2_error: Option<f64>,
    /// Mesh integrals of every evolved quantity at `t = 0` (conservation
    /// baselines).
    pub integrals_initial: Vec<f64>,
    /// Mesh integrals of every evolved quantity at the end of the run.
    pub integrals_final: Vec<f64>,
    /// Checkpoint series (always includes `t = 0` and the final time).
    pub series: Vec<SeriesPoint>,
    /// Recorded receiver probes (empty for most scenarios).
    pub receivers: Vec<ReceiverTrace>,
}

/// A named, runnable workload. Implementations declare their physics in
/// [`Scenario::run`] by building a [`ScenarioParts`] and handing it to
/// [`drive`]; everything else (engine construction, tuning, stepping,
/// norms, snapshots) is shared.
///
/// Registering a new scenario is one `impl Scenario` plus one
/// [`ScenarioRegistry::register`] call — the CLI (`aderdg-run --list`),
/// the smoke tests and the docs gate pick it up automatically.
///
/// ```
/// use aderdg_core::scenario::{
///     drive, RunRequest, RunSummary, Scenario, ScenarioError, ScenarioInfo, ScenarioParts,
/// };
/// use aderdg_mesh::StructuredMesh;
/// use aderdg_pde::{AdvectedSine, AdvectionSystem, ExactSolution};
///
/// struct Tiny;
/// impl Scenario for Tiny {
///     fn info(&self) -> ScenarioInfo {
///         ScenarioInfo {
///             name: "tiny",
///             title: "one advected sine",
///             system: "advection",
///             order: 3,
///             cells: [2, 2, 2],
///             t_end: 0.05,
///             kernel: "splitck",
///             has_exact: true,
///             smoke_cells: [2, 2, 2],
///         }
///     }
///     fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError> {
///         let exact = AdvectedSine { n_vars: 1, velocity: [1.0, 0.0, 0.0], wave: [1.0, 0.0, 0.0] };
///         drive(
///             &self.info(),
///             req,
///             |dims| StructuredMesh::unit_cube(dims[0]),
///             AdvectionSystem::new(1, [1.0, 0.0, 0.0]),
///             ScenarioParts::new(|x, q, _m| exact.evaluate(x, 0.0, q)).with_exact(&exact),
///         )
///     }
/// }
///
/// let summary = Tiny.run(&RunRequest::smoke()).unwrap();
/// assert_eq!(summary.scenario, "tiny");
/// ```
pub trait Scenario: Send + Sync {
    /// The scenario's static description.
    fn info(&self) -> ScenarioInfo;

    /// Builds the engine from the merged defaults + overrides, runs to
    /// the end time (or [`SMOKE_STEPS`] steps in smoke mode) and reports.
    fn run(&self, req: &RunRequest) -> Result<RunSummary, ScenarioError>;
}

/// A named collection of [`Scenario`] implementations, mirroring
/// [`KernelRegistry`].
pub struct ScenarioRegistry {
    scenarios: RwLock<Vec<&'static dyn Scenario>>,
}

impl ScenarioRegistry {
    /// Creates an empty registry (tests, custom scenario sets).
    pub fn new() -> Self {
        Self {
            scenarios: RwLock::new(Vec::new()),
        }
    }

    /// The process-wide registry, seeded with the built-in gallery
    /// (see [`crate::scenarios`]).
    pub fn global() -> &'static ScenarioRegistry {
        static GLOBAL: OnceLock<ScenarioRegistry> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let registry = ScenarioRegistry::new();
            crate::scenarios::register_builtin(&registry);
            registry
        })
    }

    /// Registers a scenario.
    ///
    /// # Panics
    /// If a scenario with the same name is already registered — names are
    /// the resolution key, so a collision is a programming error.
    pub fn register(&self, scenario: &'static dyn Scenario) {
        // PANIC-OK: registry poisoning means a register/resolve call
        // panicked; no sane recovery exists (×4 in this impl).
        let mut scenarios = self.scenarios.write().expect("scenario registry poisoned");
        assert!(
            !scenarios
                .iter()
                .any(|s| s.info().name == scenario.info().name),
            "scenario `{}` registered twice",
            scenario.info().name
        );
        scenarios.push(scenario);
    }

    /// Resolves a scenario by its registry key.
    pub fn resolve(&self, name: &str) -> Option<&'static dyn Scenario> {
        self.scenarios
            .read()
            // PANIC-OK: poisoned registry (see `register`).
            .expect("scenario registry poisoned")
            .iter()
            .copied()
            .find(|s| s.info().name == name)
    }

    /// Every registered scenario, in registration order.
    pub fn scenarios(&self) -> Vec<&'static dyn Scenario> {
        self.scenarios
            .read()
            // PANIC-OK: poisoned registry (see `register`).
            .expect("scenario registry poisoned")
            .clone()
    }

    /// Registry keys of every registered scenario, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.scenarios
            .read()
            // PANIC-OK: poisoned registry (see `register`).
            .expect("scenario registry poisoned")
            .iter()
            .map(|s| s.info().name)
            .collect()
    }
}

impl Default for ScenarioRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScenarioRegistry")
            .field("scenarios", &self.names())
            .finish()
    }
}

/// The merged outcome of scenario defaults + [`RunRequest`] overrides.
#[derive(Debug, Clone)]
pub struct Resolved {
    /// Ready-to-use engine configuration.
    pub config: EngineConfig,
    /// Mesh dimensions.
    pub dims: [usize; 3],
    /// Target end time (ignored in smoke mode).
    pub t_end: f64,
    /// `Some(steps)` when the run is step-bounded (smoke mode).
    pub fixed_steps: Option<usize>,
}

/// Merges a scenario's defaults with a request's overrides into an
/// [`EngineConfig`] + mesh dimensions, validating the overrides the same
/// way [`SolverSpec`] validates a spec file.
pub fn resolve(info: &ScenarioInfo, req: &RunRequest) -> Result<Resolved, ScenarioError> {
    let mut order = req.order.unwrap_or(info.order);
    let kernel_name: &str = req.kernel.as_deref().unwrap_or(info.kernel);
    let kernel = KernelRegistry::global()
        .resolve(kernel_name)
        .ok_or_else(|| {
            ScenarioError::new(format!(
                "unknown kernel `{kernel_name}` ({})",
                KernelRegistry::global().names().join("|")
            ))
        })?;
    if !(2..=15).contains(&order) {
        return Err(ScenarioError::new(format!("order {order} outside 2..=15")));
    }
    let cfl = req.cfl.unwrap_or(0.4);
    if !(cfl > 0.0 && cfl <= 0.45) {
        return Err(ScenarioError::new(format!(
            "cfl {cfl} outside (0, 0.45] (empirical 3-D stability limit)"
        )));
    }
    let mut dims = info.cells;
    if let Some(c) = req.cells {
        if c == 0 {
            return Err(ScenarioError::new("cells must be at least 1"));
        }
        dims = [c; 3];
    }
    let mut fixed_steps = None;
    if req.smoke {
        // Tiny and fast, whatever the defaults say: CI runs every
        // registered scenario through this path on both pipelines.
        // Explicit run-shape overrides would be silently discarded here,
        // so they are conflicts, not no-ops.
        if req.cells.is_some() {
            return Err(ScenarioError::new(
                "--cells conflicts with --smoke (smoke runs on the scenario's fixed smoke grid)",
            ));
        }
        if req.t_end.is_some() {
            return Err(ScenarioError::new(
                "--t-end conflicts with --smoke (smoke runs a fixed number of steps)",
            ));
        }
        if req.order.is_some_and(|o| o > 3) {
            return Err(ScenarioError::new(format!(
                "--order {order} conflicts with --smoke (smoke clamps the order to <= 3)"
            )));
        }
        order = order.min(3);
        dims = info.smoke_cells;
        fixed_steps = Some(SMOKE_STEPS);
    }
    let mut config = EngineConfig::new(order).with_kernel(kernel);
    config.cfl = cfl;
    if let Some(w) = req.width {
        config.width = Some(w);
    }
    if let Some(r) = req.rule {
        config.rule = r;
    }
    if let Some(b) = req.block_size {
        if b == Some(0) {
            return Err(ScenarioError::new(
                "block_size must be at least 1 (or auto)",
            ));
        }
        config.block_size = b;
    }
    if let Some(t) = req.tuning {
        config.tuning = t;
    }
    if let Some(p) = req.pipeline {
        config.pipeline = p;
    }
    if let Some(s) = req.shard_size {
        if s == Some(0) {
            return Err(ScenarioError::new(
                "shard_size must be at least 1 (or auto)",
            ));
        }
        config.shard_size = s;
    }
    if let Some(s) = req.stepping {
        config.stepping = s;
    }
    let t_end = req.t_end.unwrap_or(info.t_end);
    if !t_end.is_finite() || t_end <= 0.0 {
        return Err(ScenarioError::new(format!(
            "t_end {t_end} must be positive"
        )));
    }
    Ok(Resolved {
        config,
        dims,
        t_end,
        fixed_steps,
    })
}

/// The physics of a scenario, handed to [`drive`]: initial condition,
/// optional exact solution, point sources and receiver probes.
///
/// The initial-condition closure receives the node position, the `m`
/// stored quantities to fill (evolved + parameters) and the mesh — so
/// material assignment can depend on cell geometry (e.g. the LOH.1
/// layering).
pub struct ScenarioParts<'a, F>
where
    F: Fn([f64; 3], &mut [f64], &StructuredMesh) + Sync,
{
    /// Fills all stored quantities of a node.
    pub init: F,
    /// Exact solution for error norms, if one exists.
    pub exact: Option<&'a dyn ExactSolution>,
    /// Point sources to register.
    pub sources: Vec<PointSource>,
    /// Receiver probe positions.
    pub receivers: Vec<[f64; 3]>,
}

impl<F> std::fmt::Debug for ScenarioParts<'_, F>
where
    F: Fn([f64; 3], &mut [f64], &StructuredMesh) + Sync,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioParts")
            .field("has_exact", &self.exact.is_some())
            .field("sources", &self.sources.len())
            .field("receivers", &self.receivers)
            .finish_non_exhaustive()
    }
}

impl<'a, F> ScenarioParts<'a, F>
where
    F: Fn([f64; 3], &mut [f64], &StructuredMesh) + Sync,
{
    /// Parts with just an initial condition.
    pub fn new(init: F) -> Self {
        Self {
            init,
            exact: None,
            sources: Vec::new(),
            receivers: Vec::new(),
        }
    }

    /// Attaches an exact solution (builder style).
    pub fn with_exact(mut self, exact: &'a dyn ExactSolution) -> Self {
        self.exact = Some(exact);
        self
    }

    /// Attaches point sources (builder style).
    pub fn with_sources(mut self, sources: Vec<PointSource>) -> Self {
        self.sources = sources;
        self
    }

    /// Attaches receiver probes (builder style).
    pub fn with_receivers(mut self, receivers: Vec<[f64; 3]>) -> Self {
        self.receivers = receivers;
        self
    }
}

/// Number of checkpoints (beyond `t = 0`) recorded in
/// [`RunSummary::series`] for a time-bounded run.
pub const SERIES_CHECKPOINTS: usize = 4;

/// The one engine-construction path every scenario (and, through the
/// registry, every example) goes through: builds the mesh via `mesh_of`
/// from the resolved dimensions, constructs the engine, applies the
/// initial condition, registers sources and receivers, steps to the end
/// time (recording checkpoints) and assembles the [`RunSummary`].
pub fn drive<P, F, M>(
    info: &ScenarioInfo,
    req: &RunRequest,
    mesh_of: M,
    pde: P,
    parts: ScenarioParts<'_, F>,
) -> Result<RunSummary, ScenarioError>
where
    P: LinearPde,
    F: Fn([f64; 3], &mut [f64], &StructuredMesh) + Sync,
    M: FnOnce([usize; 3]) -> StructuredMesh,
{
    let r = resolve(info, req)?;
    let mesh = mesh_of(r.dims);
    let dims = mesh.dims;
    let num_cells = mesh.num_cells();
    let mesh_for_init = mesh.clone();
    let mut engine = Engine::new(mesh, pde, r.config);
    let init = &parts.init;
    engine.set_initial(|x, q| init(x, q, &mesh_for_init));
    for source in parts.sources {
        engine.add_point_source(source);
    }
    for &position in &parts.receivers {
        engine.add_receiver(position);
    }

    let l2_error_of = |e: &Engine<P>| parts.exact.map(|ex| e.l2_error(ex));
    // Resume: restore the saved DOFs/clock/records into the freshly
    // built engine and carry the checkpoint's series and conservation
    // baselines forward; otherwise record the t = 0 point.
    let (integrals_initial, mut series) = match &req.resume {
        Some(ck) => {
            if ck.scenario != info.name {
                return Err(ScenarioError::new(format!(
                    "checkpoint is for scenario `{}`, not `{}`",
                    ck.scenario, info.name
                )));
            }
            engine
                .restore_state(&ck.engine)
                .map_err(ScenarioError::new)?;
            (ck.integrals_initial.clone(), ck.series.clone())
        }
        None => {
            let integrals = engine.integrals();
            let series = vec![SeriesPoint {
                t: engine.time,
                steps: 0,
                l2_norm: engine.l2_norm(),
                l2_error: l2_error_of(&engine),
            }];
            (integrals, series)
        }
    };
    let steps_before = engine.steps;

    let ctl = req.control.as_deref();
    let keep_going = |e: &Engine<P>| match ctl {
        None => true,
        Some(c) => {
            c.note_progress(e.steps, e.time);
            !c.should_stop(e.steps)
        }
    };

    // Wall time accumulates around the stepping only: the per-checkpoint
    // norm/error evaluations are diagnostics, and including them would
    // deflate `cell_updates_per_second` — the throughput number kernels
    // and pipelines are compared by.
    let mut wall_seconds = 0.0;
    let mut paused = false;
    match r.fixed_steps {
        Some(steps) => {
            // `while` (not `for`): a resumed run continues from the
            // restored step count.
            while engine.steps < steps {
                if !keep_going(&engine) {
                    paused = true;
                    break;
                }
                let dt = engine.max_dt();
                if !(dt.is_finite() && dt > 0.0) {
                    return Err(ScenarioError::new(format!("degenerate time step {dt}")));
                }
                // DETERMINISM-OK: timing is reporting-only metadata.
                let wall = Instant::now();
                engine.step(dt);
                wall_seconds += wall.elapsed().as_secs_f64();
                series.push(SeriesPoint {
                    t: engine.time,
                    steps: engine.steps,
                    l2_norm: engine.l2_norm(),
                    l2_error: l2_error_of(&engine),
                });
            }
        }
        None => {
            for k in 1..=SERIES_CHECKPOINTS {
                let target = r.t_end * k as f64 / SERIES_CHECKPOINTS as f64;
                if engine.time >= target - target.abs() * 1e-12 {
                    // A resumed run is already past this checkpoint; its
                    // series point came with the checkpoint.
                    continue;
                }
                // DETERMINISM-OK: timing is reporting-only metadata.
                let wall = Instant::now();
                // The control check lives inside the step loop against
                // the *real* target, so the dt sequence — and with it
                // every bit of the state — matches an uninterrupted run.
                let reached = engine
                    .advance_until(target, &keep_going)
                    .map_err(ScenarioError::new)?;
                wall_seconds += wall.elapsed().as_secs_f64();
                if !reached {
                    paused = true;
                    break;
                }
                series.push(SeriesPoint {
                    t: engine.time,
                    steps: engine.steps,
                    l2_norm: engine.l2_norm(),
                    l2_error: l2_error_of(&engine),
                });
            }
        }
    }
    if paused {
        if let Some(c) = ctl {
            if c.cancel_requested() {
                return Err(ScenarioError::new("run cancelled"));
            }
        }
    }

    if let Some(path) = &req.snapshot {
        crate::output::write_atomic(path, |f| crate::output::write_csv(&engine, f))
            .map_err(|e| ScenarioError::new(format!("cannot write {}: {e}", path.display())))?;
    }
    if let Some(path) = &req.save_checkpoint {
        let ck = Checkpoint {
            scenario: info.name.to_string(),
            smoke: req.smoke,
            knobs: checkpoint_knobs(&engine, &r, req),
            integrals_initial: integrals_initial.clone(),
            series: series.clone(),
            engine: engine.save_state(),
        };
        ck.save(path).map_err(ScenarioError::new)?;
    }

    let steps_run = engine.steps - steps_before;
    let tune = engine.tune_report();
    // PANIC-OK: internal invariant — the series is seeded with the t=0
    // point before the step loop.
    let last = series.last().expect("series has the initial point");
    Ok(RunSummary {
        scenario: info.name,
        system: info.system,
        order: engine.config.order,
        cells: dims,
        num_cells,
        kernel: engine.config.kernel.name(),
        pipeline: engine.config.pipeline,
        stepping: engine.config.stepping,
        block_size: engine.block_size(),
        backend: tune.backend,
        tune: format!(
            "mode={:?} block_size={} (static {}) gemm={}",
            tune.mode, tune.block_size, tune.static_block_size, tune.backend
        ),
        steps: engine.steps,
        t_end: engine.time,
        paused,
        wall_seconds,
        cell_updates_per_second: if wall_seconds > 0.0 {
            (num_cells * steps_run) as f64 / wall_seconds
        } else {
            0.0
        },
        l2_norm: last.l2_norm,
        l2_error: last.l2_error,
        integrals_initial,
        integrals_final: engine.integrals(),
        series,
        receivers: engine
            .receivers
            .iter()
            .map(|r| ReceiverTrace {
                position: r.position,
                records: r.records.clone(),
            })
            .collect(),
    })
}

/// The fully resolved knob set a checkpoint stores: replayed through
/// [`RunRequest::set`], these rebuild the exact engine configuration —
/// the tuner's block-size pick is pinned as an explicit integer, the
/// pipeline is pinned against `ADERDG_PIPELINE` drift between save and
/// resume, and the SIMD width is pinned so the padded state layout
/// survives a move to a different host.
fn checkpoint_knobs<P: LinearPde>(
    engine: &Engine<P>,
    r: &Resolved,
    req: &RunRequest,
) -> Vec<(String, String)> {
    let c = &engine.config;
    let width = c.width.unwrap_or(aderdg_tensor::SimdWidth::host());
    let mut knobs: Vec<(String, String)> = vec![
        ("order".into(), c.order.to_string()),
        ("kernel".into(), c.kernel.name().to_string()),
        ("cfl".into(), c.cfl.to_string()),
        ("width".into(), crate::spec::width_name(width).into()),
        ("rule".into(), crate::spec::rule_name(c.rule).into()),
        ("block_size".into(), engine.block_size().to_string()),
        ("tuning".into(), c.tuning.as_str().into()),
        ("pipeline".into(), c.pipeline.as_str().into()),
        // Pinned against `ADERDG_STEPPING` drift between save and
        // resume, like the pipeline.
        ("stepping".into(), c.stepping.as_str().into()),
    ];
    if let Some(s) = c.shard_size {
        knobs.push(("shard_size".into(), s.to_string()));
    }
    if let Some(cells) = req.cells {
        knobs.push(("cells".into(), cells.to_string()));
    }
    if !req.smoke {
        // Smoke runs are step-bounded; `t_end` would conflict at resume.
        knobs.push(("t_end".into(), r.t_end.to_string()));
    }
    knobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> ScenarioInfo {
        ScenarioInfo {
            name: "t",
            title: "t",
            system: "acoustic",
            order: 4,
            cells: [3, 3, 3],
            t_end: 0.5,
            kernel: "splitck",
            has_exact: false,
            smoke_cells: [2, 2, 2],
        }
    }

    #[test]
    fn resolve_merges_defaults_and_overrides() {
        let r = resolve(&info(), &RunRequest::new()).unwrap();
        assert_eq!(r.config.order, 4);
        assert_eq!(r.config.kernel.name(), "splitck");
        assert_eq!(r.dims, [3, 3, 3]);
        assert_eq!(r.t_end, 0.5);
        assert!(r.fixed_steps.is_none());

        let req = RunRequest {
            order: Some(6),
            kernel: Some("generic".into()),
            cells: Some(5),
            t_end: Some(0.1),
            ..RunRequest::new()
        };
        let r = resolve(&info(), &req).unwrap();
        assert_eq!(r.config.order, 6);
        assert_eq!(r.config.kernel.name(), "generic");
        assert_eq!(r.dims, [5, 5, 5]);
        assert_eq!(r.t_end, 0.1);
    }

    #[test]
    fn resolve_smoke_uses_the_smoke_grid_and_clamps_order() {
        let r = resolve(&info(), &RunRequest::smoke()).unwrap();
        assert_eq!(r.config.order, 3); // default order 4 clamped
        assert_eq!(r.dims, [2, 2, 2]);
        assert_eq!(r.fixed_steps, Some(SMOKE_STEPS));
        // An explicit low order is honored.
        let req = RunRequest {
            order: Some(2),
            ..RunRequest::smoke()
        };
        assert_eq!(resolve(&info(), &req).unwrap().config.order, 2);
    }

    #[test]
    fn resolve_smoke_rejects_conflicting_run_shape_overrides() {
        for (req, needle) in [
            (
                RunRequest {
                    cells: Some(4),
                    ..RunRequest::smoke()
                },
                "--cells conflicts",
            ),
            (
                RunRequest {
                    t_end: Some(0.5),
                    ..RunRequest::smoke()
                },
                "--t-end conflicts",
            ),
            (
                RunRequest {
                    order: Some(5),
                    ..RunRequest::smoke()
                },
                "--order 5 conflicts",
            ),
        ] {
            let e = resolve(&info(), &req).unwrap_err();
            assert!(e.message.contains(needle), "{req:?}: {e}");
        }
    }

    #[test]
    fn resolve_rejects_invalid_overrides() {
        for req in [
            RunRequest {
                kernel: Some("turbo".into()),
                ..RunRequest::new()
            },
            RunRequest {
                order: Some(1),
                ..RunRequest::new()
            },
            RunRequest {
                cfl: Some(0.9),
                ..RunRequest::new()
            },
            RunRequest {
                cells: Some(0),
                ..RunRequest::new()
            },
            RunRequest {
                t_end: Some(-1.0),
                ..RunRequest::new()
            },
            RunRequest {
                block_size: Some(Some(0)),
                ..RunRequest::new()
            },
            RunRequest {
                shard_size: Some(Some(0)),
                ..RunRequest::new()
            },
        ] {
            assert!(resolve(&info(), &req).is_err(), "{req:?}");
        }
    }

    #[test]
    fn with_spec_copies_every_solver_knob() {
        let spec =
            SolverSpec::parse("order = 6\nkernel = aosoa_splitck\ncfl = 0.3\nblock_size = 4\n")
                .unwrap();
        let req = RunRequest::new().with_spec(&spec);
        let r = resolve(&info(), &req).unwrap();
        assert_eq!(r.config.order, 6);
        assert_eq!(r.config.kernel.name(), "aosoa_splitck");
        assert_eq!(r.config.cfl, 0.3);
        assert_eq!(r.config.block_size, Some(4));
    }

    #[test]
    fn registry_register_resolve_names() {
        struct S;
        impl Scenario for S {
            fn info(&self) -> ScenarioInfo {
                super::tests::info()
            }
            fn run(&self, _req: &RunRequest) -> Result<RunSummary, ScenarioError> {
                Err(ScenarioError::new("unimplemented"))
            }
        }
        static SCEN: S = S;
        let registry = ScenarioRegistry::new();
        assert!(registry.scenarios().is_empty());
        registry.register(&SCEN);
        assert_eq!(registry.names(), vec!["t"]);
        assert!(registry.resolve("t").is_some());
        assert!(registry.resolve("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_scenario_registration_panics() {
        struct S;
        impl Scenario for S {
            fn info(&self) -> ScenarioInfo {
                super::tests::info()
            }
            fn run(&self, _req: &RunRequest) -> Result<RunSummary, ScenarioError> {
                Err(ScenarioError::new("unimplemented"))
            }
        }
        static SCEN: S = S;
        let registry = ScenarioRegistry::new();
        registry.register(&SCEN);
        registry.register(&SCEN);
    }
}
