//! Memory-access trace generators — the cache-simulator inputs behind the
//! memory-stall panels of Figs. 4, 6 and 10.
//!
//! Each generator replays the array-sweep order of its kernel variant at
//! buffer granularity: one event per full pass over a tensor, which the
//! cache simulator expands to per-line accesses. The model assumes perfect
//! register blocking inside a GEMM micro-tile (a tensor is streamed once
//! per sweep); what remains — and what the paper's analysis is about — is
//! whether the *variant's working set* survives in L2 between sweeps and
//! across Cauchy-Kowalewsky iterations.
//!
//! Production behaviour is modelled by [`trace_batch`]: scratch buffers are
//! reused across cells (same addresses), per-cell inputs/outputs stream.

use crate::plan::{KernelVariant, StpPlan};
use aderdg_perf::{Arena, TraceSink};

/// Addresses of one cell's input/output region.
#[derive(Debug, Clone, Copy)]
struct CellIo {
    q0: usize,
    qavg: usize,
    favg: [usize; 3],
    /// Bytes of one volume tensor.
    vol_bytes: usize,
    /// Bytes of all 12 face tensors (treated as one block).
    face_bytes: usize,
    faces: usize,
}

fn alloc_cell_io(arena: &mut Arena, plan: &StpPlan) -> CellIo {
    let vol = plan.aos.len();
    let face = plan.face.len();
    CellIo {
        q0: arena.alloc_doubles(vol),
        qavg: arena.alloc_doubles(vol),
        favg: [
            arena.alloc_doubles(vol),
            arena.alloc_doubles(vol),
            arena.alloc_doubles(vol),
        ],
        vol_bytes: vol * 8,
        face_bytes: face * 12 * 8,
        faces: arena.alloc_doubles(face * 12),
    }
}

/// Scratch addresses of the generic / LoG variants (per-order tensors).
struct BigScratch {
    p: Vec<usize>,
    flux: Vec<[usize; 3]>,
    d_f: Vec<[usize; 3]>,
    grad_q: Vec<[usize; 3]>,
    vol_bytes: usize,
}

impl BigScratch {
    fn alloc(arena: &mut Arena, plan: &StpPlan, padded: bool, ncp: bool) -> Self {
        let n = plan.n();
        let vol = if padded {
            plan.aos.len()
        } else {
            n * n * n * plan.m()
        };
        let mut tens = || arena.alloc_doubles(vol);
        let p = (0..=n).map(|_| tens()).collect();
        let flux = (0..=n).map(|_| [tens(), tens(), tens()]).collect();
        let d_f = (0..n).map(|_| [tens(), tens(), tens()]).collect();
        let grad_q = if ncp {
            (0..n).map(|_| [tens(), tens(), tens()]).collect()
        } else {
            Vec::new()
        };
        Self {
            p,
            flux,
            d_f,
            grad_q,
            vol_bytes: vol * 8,
        }
    }
}

/// Emits one generic/LoG predictor invocation.
fn trace_big(plan: &StpPlan, s: &BigScratch, io: &CellIo, ncp: bool, sink: &mut dyn TraceSink) {
    let n = plan.n();
    let vb = s.vol_bytes;
    // p[0] ← q0.
    sink.read(io.q0, io.vol_bytes);
    sink.write(s.p[0], vb);
    for o in 0..n {
        for d in 0..3 {
            // flux eval: read p[o], write flux[o][d].
            sink.read(s.p[o], vb);
            sink.write(s.flux[o][d], vb);
        }
        for d in 0..3 {
            // derivative: read flux, write dF.
            sink.read(s.flux[o][d], vb);
            sink.write(s.d_f[o][d], vb);
        }
        if ncp {
            for d in 0..3 {
                sink.read(s.p[o], vb);
                sink.write(s.grad_q[o][d], vb);
                sink.read(s.p[o], vb);
                sink.read(s.grad_q[o][d], vb);
                sink.update(s.d_f[o][d], vb);
            }
        }
        // p[o+1] = Σ_d dF[o][d].
        for d in 0..3 {
            sink.read(s.d_f[o][d], vb);
        }
        sink.write(s.p[o + 1], vb);
    }
    // Final flux slot.
    for d in 0..3 {
        sink.read(s.p[n], vb);
        sink.write(s.flux[n][d], vb);
    }
    // Time averaging: all per-order tensors are re-read — the sweep that
    // punishes the O(N^{d+1}) footprint.
    for o in 0..=n {
        sink.read(s.p[o], vb);
        sink.update(io.qavg, io.vol_bytes);
        for d in 0..3 {
            sink.read(s.flux[o][d], vb);
            sink.update(io.favg[d], io.vol_bytes);
        }
    }
    // Face projections.
    sink.read(io.qavg, io.vol_bytes);
    for d in 0..3 {
        sink.read(io.favg[d], io.vol_bytes);
    }
    sink.write(io.faces, io.face_bytes);
}

/// Scratch addresses of the SplitCK / AoSoA variants.
struct SmallScratch {
    p: usize,
    ptemp: usize,
    flux: usize,
    grad_q: usize,
    vol_bytes: usize,
}

impl SmallScratch {
    fn alloc(arena: &mut Arena, plan: &StpPlan, hybrid: bool) -> Self {
        let vol = if hybrid {
            plan.aosoa.len()
        } else {
            plan.aos.len()
        };
        Self {
            p: arena.alloc_doubles(vol),
            ptemp: arena.alloc_doubles(vol),
            flux: arena.alloc_doubles(vol),
            grad_q: arena.alloc_doubles(vol),
            vol_bytes: vol * 8,
        }
    }
}

/// Emits one SplitCK (or, with `hybrid`, AoSoA SplitCK) invocation.
fn trace_small(
    plan: &StpPlan,
    s: &SmallScratch,
    io: &CellIo,
    ncp: bool,
    hybrid: bool,
    sink: &mut dyn TraceSink,
) {
    let n = plan.n();
    let vb = s.vol_bytes;
    // Entry: p ← q0 (AoSoA: transpose — same traffic, read + write).
    sink.read(io.q0, io.vol_bytes);
    sink.write(s.p, vb);
    // qavg ← c0 p.
    sink.read(s.p, vb);
    sink.write(io.qavg, io.vol_bytes);
    for _o in 0..n {
        sink.write(s.ptemp, vb);
        for _d in 0..3 {
            sink.read(s.p, vb);
            sink.write(s.flux, vb);
            sink.read(s.flux, vb);
            sink.update(s.ptemp, vb);
            if ncp {
                sink.read(s.p, vb);
                sink.write(s.grad_q, vb);
                sink.read(s.p, vb);
                sink.read(s.grad_q, vb);
                sink.update(s.ptemp, vb);
            }
        }
        // swap is free; qavg accumulation reads the new p.
        sink.read(s.ptemp, vb);
        sink.update(io.qavg, io.vol_bytes);
    }
    // favg recomputation from qavg.
    for d in 0..3 {
        sink.read(io.qavg, io.vol_bytes);
        sink.write(s.flux, vb);
        sink.read(s.flux, vb);
        sink.write(io.favg[d], io.vol_bytes);
    }
    if hybrid {
        // Exit transposes of qavg (favg transposes are folded into the
        // favg writes above — same byte counts).
        sink.read(io.qavg, io.vol_bytes);
        sink.write(io.qavg, io.vol_bytes);
    }
    // Face projections.
    sink.read(io.qavg, io.vol_bytes);
    for d in 0..3 {
        sink.read(io.favg[d], io.vol_bytes);
    }
    sink.write(io.faces, io.face_bytes);
}

/// Replays `cells` consecutive predictor invocations of `variant`:
/// scratch reused, per-cell I/O streaming — the production access pattern
/// the paper's VTune measurements observe.
pub fn trace_batch(
    plan: &StpPlan,
    variant: KernelVariant,
    has_ncp: bool,
    cells: usize,
    sink: &mut dyn TraceSink,
) {
    let mut arena = Arena::new();
    match variant {
        KernelVariant::Generic => {
            let s = BigScratch::alloc(&mut arena, plan, false, has_ncp);
            let ios: Vec<CellIo> = (0..cells)
                .map(|_| alloc_cell_io(&mut arena, plan))
                .collect();
            for io in &ios {
                trace_big(plan, &s, io, has_ncp, sink);
            }
        }
        KernelVariant::LoG => {
            let s = BigScratch::alloc(&mut arena, plan, true, has_ncp);
            let ios: Vec<CellIo> = (0..cells)
                .map(|_| alloc_cell_io(&mut arena, plan))
                .collect();
            for io in &ios {
                trace_big(plan, &s, io, has_ncp, sink);
            }
        }
        KernelVariant::SplitCk => {
            let s = SmallScratch::alloc(&mut arena, plan, false);
            let ios: Vec<CellIo> = (0..cells)
                .map(|_| alloc_cell_io(&mut arena, plan))
                .collect();
            for io in &ios {
                trace_small(plan, &s, io, has_ncp, false, sink);
            }
        }
        KernelVariant::AoSoASplitCk => {
            let s = SmallScratch::alloc(&mut arena, plan, true);
            let ios: Vec<CellIo> = (0..cells)
                .map(|_| alloc_cell_io(&mut arena, plan))
                .collect();
            for io in &ios {
                trace_small(plan, &s, io, has_ncp, true, sink);
            }
        }
    }
}

/// Scratch addresses of one *blocked* kernel invocation: every tensor of
/// the per-cell variant stacked over the `B` cells of a block, plus the
/// differentiation-operator matrix that the stage-major sweeps load once
/// per stage instead of once per cell.
struct BlockScratch {
    op: usize,
    op_bytes: usize,
    /// Per-order stacked tensors (`p[o]`), generic only; AoSoA reuses
    /// [`BlockScratch::small`].
    p: Vec<usize>,
    flux: Vec<[usize; 3]>,
    d_f: Vec<[usize; 3]>,
    grad_q: Vec<[usize; 3]>,
    /// SplitCK-style rotating tensors (`p`, `ptemp`, `flux`, `gradQ`,
    /// `qavg_h`), AoSoA only.
    small: Vec<usize>,
    /// Bytes of one stacked tensor (`B ×` per-cell volume).
    vol_bytes: usize,
}

/// Replays `blocks` invocations of the engine's batched block pipeline at
/// block size `block_size`: per-cell inputs/outputs stream, the kernel's
/// block scratch is reused across blocks, and every stage sweeps the whole
/// staged block before the next stage starts (the stage-major loop
/// structure of the blocked kernels). Returns the number of stage sweeps
/// per block — the grain over which a block amortizes its per-stage
/// overhead (operator load, loop prologue) — or `None` for variants whose
/// `run_block` is the per-cell fallback: their access pattern does not
/// depend on the block size, so there is nothing for a model to rank.
///
/// This is the replay the model-driven tuner
/// ([`crate::tune`]) feeds through the scaled cache hierarchy: growing
/// `block_size` multiplies every temporary by `B` (the L2-residency cost),
/// while the per-block overheads shrink as `1/B` (the amortization gain).
pub fn trace_block_batch(
    plan: &StpPlan,
    variant: KernelVariant,
    has_ncp: bool,
    block_size: usize,
    blocks: usize,
    sink: &mut dyn TraceSink,
) -> Option<usize> {
    assert!(block_size >= 1, "block size must be at least 1");
    assert!(blocks >= 1, "need at least one block to replay");
    let n = plan.n();
    let mut arena = Arena::new();
    let scratch = match variant {
        KernelVariant::Generic => {
            // Unpadded stacked tensors, as in `GenericBlockScratch`.
            let bvol = block_size * n * n * n * plan.m();
            let mut tens = || arena.alloc_doubles(bvol);
            BlockScratch {
                op: 0,
                op_bytes: n * n * 8,
                p: (0..=n).map(|_| tens()).collect(),
                flux: (0..=n).map(|_| [tens(), tens(), tens()]).collect(),
                d_f: (0..n).map(|_| [tens(), tens(), tens()]).collect(),
                grad_q: if has_ncp {
                    (0..n).map(|_| [tens(), tens(), tens()]).collect()
                } else {
                    Vec::new()
                },
                small: Vec::new(),
                vol_bytes: bvol * 8,
            }
        }
        KernelVariant::AoSoASplitCk => {
            // Stacked hybrid-layout tensors, as in `AosoaBlockScratch`.
            let bvol = block_size * plan.aosoa.len();
            let small = (0..5).map(|_| arena.alloc_doubles(bvol)).collect();
            BlockScratch {
                op: 0,
                op_bytes: n * n * 8,
                p: Vec::new(),
                flux: Vec::new(),
                d_f: Vec::new(),
                grad_q: Vec::new(),
                small,
                vol_bytes: bvol * 8,
            }
        }
        // LoG, SplitCK and any externally registered kernel run the
        // per-cell fallback under the block pipeline.
        _ => return None,
    };
    let mut scratch = scratch;
    scratch.op = arena.alloc_doubles(n * n);

    let ios: Vec<CellIo> = (0..blocks * block_size)
        .map(|_| alloc_cell_io(&mut arena, plan))
        .collect();

    let mut stages = 0usize;
    for b in 0..blocks {
        let io = &ios[b * block_size..(b + 1) * block_size];
        let counted = match variant {
            KernelVariant::Generic => trace_generic_block(plan, &scratch, io, has_ncp, sink),
            KernelVariant::AoSoASplitCk => trace_aosoa_block(plan, &scratch, io, has_ncp, sink),
            _ => unreachable!("filtered above"),
        };
        if b == 0 {
            stages = counted;
        }
    }
    Some(stages)
}

/// Emits one blocked generic invocation (mirrors `stp_generic_block`);
/// returns the stage-sweep count.
fn trace_generic_block(
    plan: &StpPlan,
    s: &BlockScratch,
    io: &[CellIo],
    ncp: bool,
    sink: &mut dyn TraceSink,
) -> usize {
    let n = plan.n();
    let vb = s.vol_bytes;
    let mut stages = 0usize;

    // Gather: every cell's padded q0 streams in, p[0] is written stacked.
    for c in io {
        sink.read(c.q0, c.vol_bytes);
    }
    sink.write(s.p[0], vb);
    stages += 1;

    for o in 0..n {
        // Flux sweeps (user functions, no operator).
        for d in 0..3 {
            sink.read(s.p[o], vb);
            sink.write(s.flux[o][d], vb);
            stages += 1;
        }
        // Derivative sweeps: the operator loads once per stage, not once
        // per cell — the amortization the block buys.
        for d in 0..3 {
            sink.read(s.op, s.op_bytes);
            sink.read(s.flux[o][d], vb);
            sink.write(s.d_f[o][d], vb);
            stages += 1;
        }
        if ncp {
            for d in 0..3 {
                sink.read(s.op, s.op_bytes);
                sink.read(s.p[o], vb);
                sink.write(s.grad_q[o][d], vb);
                stages += 1;
                sink.read(s.p[o], vb);
                sink.read(s.grad_q[o][d], vb);
                sink.update(s.d_f[o][d], vb);
                stages += 1;
            }
        }
        // p[o+1] ← Σ_d dF[o][d].
        for d in 0..3 {
            sink.read(s.d_f[o][d], vb);
        }
        sink.write(s.p[o + 1], vb);
        stages += 1;
    }
    // Final flux slot.
    for d in 0..3 {
        sink.read(s.p[n], vb);
        sink.write(s.flux[n][d], vb);
        stages += 1;
    }
    // Taylor averaging: every per-order stacked tensor is re-read, the
    // per-cell outputs accumulate.
    for o in 0..=n {
        sink.read(s.p[o], vb);
        for c in io {
            sink.update(c.qavg, c.vol_bytes);
        }
        stages += 1;
        for d in 0..3 {
            sink.read(s.flux[o][d], vb);
            for c in io {
                sink.update(c.favg[d], c.vol_bytes);
            }
            stages += 1;
        }
    }
    // Face projections stream per cell.
    for c in io {
        sink.read(c.qavg, c.vol_bytes);
        for d in 0..3 {
            sink.read(c.favg[d], c.vol_bytes);
        }
        sink.write(c.faces, c.face_bytes);
    }
    stages += 1;
    stages
}

/// Emits one blocked AoSoA SplitCK invocation (mirrors `stp_aosoa_block`);
/// returns the stage-sweep count.
fn trace_aosoa_block(
    plan: &StpPlan,
    s: &BlockScratch,
    io: &[CellIo],
    ncp: bool,
    sink: &mut dyn TraceSink,
) -> usize {
    let n = plan.n();
    let vb = s.vol_bytes;
    let [p, ptemp, flux, grad_q, qavg_h] =
        [s.small[0], s.small[1], s.small[2], s.small[3], s.small[4]];
    let mut stages = 0usize;

    // Entry transpose: per-cell q0 streams in, p is written stacked.
    for c in io {
        sink.read(c.q0, c.vol_bytes);
    }
    sink.write(p, vb);
    stages += 1;
    // qavg_h ← c0 · p.
    sink.read(p, vb);
    sink.write(qavg_h, vb);
    stages += 1;

    for _o in 0..n {
        sink.write(ptemp, vb);
        stages += 1;
        for _d in 0..3 {
            // Vectorized flux sweep.
            sink.read(p, vb);
            sink.write(flux, vb);
            stages += 1;
            // One batched derivative GEMM over the whole block.
            sink.read(s.op, s.op_bytes);
            sink.read(flux, vb);
            sink.update(ptemp, vb);
            stages += 1;
            if ncp {
                sink.read(s.op, s.op_bytes);
                sink.read(p, vb);
                sink.write(grad_q, vb);
                stages += 1;
                sink.read(p, vb);
                sink.read(grad_q, vb);
                sink.update(ptemp, vb);
                stages += 1;
            }
        }
        // swap is free; the Taylor accumulation reads the new p.
        sink.read(ptemp, vb);
        sink.update(qavg_h, vb);
        stages += 1;
    }

    // Exit transpose of q̄ per cell.
    sink.read(qavg_h, vb);
    for c in io {
        sink.write(c.qavg, c.vol_bytes);
    }
    stages += 1;
    // favg recomputation: one block-wide flux sweep per dimension, then a
    // per-cell transpose out.
    for d in 0..3 {
        sink.read(qavg_h, vb);
        sink.write(flux, vb);
        stages += 1;
        sink.read(flux, vb);
        for c in io {
            sink.write(c.favg[d], c.vol_bytes);
        }
        stages += 1;
    }
    // Face projections stream per cell.
    for c in io {
        sink.read(c.qavg, c.vol_bytes);
        for d in 0..3 {
            sink.read(c.favg[d], c.vol_bytes);
        }
        sink.write(c.faces, c.face_bytes);
    }
    stages += 1;
    stages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::StpConfig;
    use aderdg_perf::{CacheSim, CountingSink, MachineModel};

    fn plan(n: usize) -> StpPlan {
        StpPlan::new(StpConfig::new(n, 21), [1.0; 3])
    }

    #[test]
    fn traffic_scales_with_variant_footprint() {
        let p = plan(8);
        let mut big = CountingSink::default();
        trace_batch(&p, KernelVariant::LoG, false, 1, &mut big);
        let mut small = CountingSink::default();
        trace_batch(&p, KernelVariant::SplitCk, false, 1, &mut small);
        // LoG touches each per-order tensor at least twice; its logical
        // traffic exceeds SplitCK's (the decisive difference is cache
        // residency, tested below, not raw traffic).
        let big_bytes = big.read_bytes + big.write_bytes;
        let small_bytes = small.read_bytes + small.write_bytes;
        assert!(
            big_bytes as f64 > small_bytes as f64 * 1.2,
            "LoG {big_bytes} vs SplitCK {small_bytes}"
        );
    }

    #[test]
    fn log_stalls_plateau_splitck_stalls_decrease() {
        // The headline mechanism of the paper (Fig. 6): at high order the
        // LoG working set exceeds 1 MiB L2 and its stall ratio stays high;
        // SplitCK's stays L2-resident and its stall ratio falls.
        let machine = MachineModel::skylake_sp();
        let cost = crate::mix::UserFunctionCost::elastic();
        let stall = |variant, n: usize| -> f64 {
            let p = plan(n);
            let mut sim = CacheSim::skylake_sp();
            // Warm-up cell, then measure steady state over a few cells.
            trace_batch(&p, variant, false, 1, &mut sim);
            sim.reset_stats();
            let cells = 4;
            trace_batch(&p, variant, false, cells, &mut sim);
            let flops = crate::mix::stp_useful_flops(&p, cost) * cells as u64;
            machine.stall_fraction(&sim.stats(), flops)
        };
        let log_6 = stall(KernelVariant::LoG, 6);
        let log_10 = stall(KernelVariant::LoG, 10);
        let split_6 = stall(KernelVariant::SplitCk, 6);
        let split_10 = stall(KernelVariant::SplitCk, 10);
        // SplitCK improves markedly with order; LoG must not.
        assert!(
            split_10 < split_6,
            "SplitCK stalls should fall: {split_6} -> {split_10}"
        );
        assert!(
            log_10 > split_10,
            "at order 10, LoG ({log_10}) must stall more than SplitCK ({split_10})"
        );
        assert!(
            log_6 < log_10 * 2.0 + 0.2,
            "LoG stalls should not collapse with order: {log_6} -> {log_10}"
        );
    }

    #[test]
    fn batch_reuses_scratch_across_cells() {
        // With many cells, SplitCK scratch stays hot: L1+L2 hit ratio for
        // the steady state must be high at moderate order.
        let p = plan(5);
        let mut sim = CacheSim::skylake_sp();
        trace_batch(&p, KernelVariant::SplitCk, false, 1, &mut sim);
        sim.reset_stats();
        trace_batch(&p, KernelVariant::SplitCk, false, 8, &mut sim);
        let stats = sim.stats();
        let total = stats.l1.accesses();
        let dram = stats.dram;
        assert!(
            (dram as f64) < 0.25 * total as f64,
            "dram {dram} of {total} accesses"
        );
    }

    #[test]
    fn block_trace_covers_blocked_variants_only() {
        let p = plan(4);
        let mut sink = CountingSink::default();
        for variant in [KernelVariant::Generic, KernelVariant::AoSoASplitCk] {
            let stages = trace_block_batch(&p, variant, false, 4, 2, &mut sink);
            assert!(stages.unwrap() > 0, "{variant:?} must report stage sweeps");
        }
        for variant in [KernelVariant::LoG, KernelVariant::SplitCk] {
            assert_eq!(trace_block_batch(&p, variant, false, 4, 1, &mut sink), None);
        }
    }

    #[test]
    fn block_trace_traffic_scales_with_block_size() {
        // Doubling the block size roughly doubles a block's logical
        // traffic (stacked tensors, twice the per-cell I/O).
        let p = plan(5);
        let traffic = |bs: usize| {
            let mut c = CountingSink::default();
            trace_block_batch(&p, KernelVariant::AoSoASplitCk, false, bs, 1, &mut c).unwrap();
            c.read_bytes + c.write_bytes
        };
        let t2 = traffic(2);
        let t4 = traffic(4);
        let ratio = t4 as f64 / t2 as f64;
        assert!((1.8..=2.2).contains(&ratio), "t2={t2} t4={t4}");
    }

    #[test]
    fn oversized_blocks_overflow_l2_in_the_replay() {
        // AoSoA at order 6 / m = 21: the per-cell hybrid working set is
        // ~200 KiB, so a couple of cells stay L2-resident while 16 stacked
        // cells thrash — exactly the trade-off the tuner ranks.
        let p = plan(6);
        let dram_per_cell = |bs: usize| {
            let mut sim = CacheSim::skylake_sp();
            trace_block_batch(&p, KernelVariant::AoSoASplitCk, false, bs, 1, &mut sim).unwrap();
            sim.reset_stats();
            trace_block_batch(&p, KernelVariant::AoSoASplitCk, false, bs, 2, &mut sim).unwrap();
            sim.stats().dram as f64 / (2 * bs) as f64
        };
        let small = dram_per_cell(2);
        let big = dram_per_cell(16);
        assert!(
            big > small * 1.5,
            "16-cell blocks should miss far more per cell: {small} vs {big}"
        );
    }

    #[test]
    fn ncp_adds_stage_sweeps() {
        let p = plan(4);
        let mut sink = CountingSink::default();
        let without =
            trace_block_batch(&p, KernelVariant::Generic, false, 2, 1, &mut sink).unwrap();
        let with = trace_block_batch(&p, KernelVariant::Generic, true, 2, 1, &mut sink).unwrap();
        assert!(with > without);
    }
}
