//! Numerical flux (Riemann solver) on element faces.
//!
//! The corrector couples neighbouring elements through a numerical flux
//! `F*` that the paper assumes linear in `Q` and `F` (Sec. II-A). We use
//! the Rusanov (local Lax-Friedrichs) flux, which satisfies that
//! assumption: with the engine's sign convention `Q_t = ∇·F(Q)`,
//!
//! `F* = ½ (F_L + F_R) + ½ s (q_R − q_L)`,  `s = max wave speed`,
//!
//! applied to the *time-integrated* face states and fluxes produced by the
//! predictor, so one Riemann solve per face per time step suffices (eq. 5).

use crate::plan::StpPlan;
use aderdg_mesh::BoundaryKind;
use aderdg_pde::LinearPde;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Debug-build Riemann-solve counter (release builds compile the
/// increment away).
static FLUX_SOLVES: AtomicUsize = AtomicUsize::new(0);

/// True when [`flux_solve_count`] actually counts (debug builds only —
/// release builds skip the atomic increment in the hot face sweep).
pub const fn flux_solve_counting_enabled() -> bool {
    cfg!(debug_assertions)
}

/// Number of [`rusanov_face`] invocations since the last
/// [`reset_flux_solve_count`] (process-global; boundary faces count one
/// solve each, because [`boundary_face`] resolves through
/// [`rusanov_face`]). Always `0` in release builds — check
/// [`flux_solve_counting_enabled`]. This is the measurement behind the
/// once-per-face contract: a cell-centric corrector performs `6 · cells`
/// solves per step, the face-indexed sweep `interior + boundary` faces.
pub fn flux_solve_count() -> usize {
    FLUX_SOLVES.load(Ordering::Relaxed)
}

/// Resets [`flux_solve_count`] to zero.
pub fn reset_flux_solve_count() {
    FLUX_SOLVES.store(0, Ordering::Relaxed);
}

#[inline]
fn count_flux_solve() {
    if flux_solve_counting_enabled() {
        FLUX_SOLVES.fetch_add(1, Ordering::Relaxed);
    }
}

/// Computes the Rusanov flux for one interior face of normal dimension `d`.
///
/// `q_l`, `f_l` belong to the lower cell's upper face; `q_r`, `f_r` to the
/// upper cell's lower face (all padded face tensors). Writes `f_star`.
#[allow(clippy::too_many_arguments)] // mirrors the paper's kernel signature
pub fn rusanov_face(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    d: usize,
    q_l: &[f64],
    f_l: &[f64],
    q_r: &[f64],
    f_r: &[f64],
    f_star: &mut [f64],
) {
    count_flux_solve();
    let n = plan.n();
    let vars = pde.num_vars();
    let mf_pad = plan.face.m_pad();
    f_star[..plan.face.len()].fill(0.0);
    for node in 0..n * n {
        let o = node * mf_pad;
        let s_l = pde.max_wavespeed(d, &q_l[o..o + plan.m()]);
        let s_r = pde.max_wavespeed(d, &q_r[o..o + plan.m()]);
        let s = s_l.max(s_r);
        for v in 0..vars {
            f_star[o + v] = 0.5 * (f_l[o + v] + f_r[o + v]) + 0.5 * s * (q_r[o + v] - q_l[o + v]);
        }
    }
}

/// Scratch for boundary-face ghost states.
#[derive(Debug, Clone)]
pub struct BoundaryScratch {
    /// Ghost `q̄` face tensor.
    pub q_ghost: Vec<f64>,
    /// Ghost flux face tensor.
    pub f_ghost: Vec<f64>,
    /// Pointwise flux evaluation buffer (`m` quantities) — owned here so
    /// the hot corrector loop never allocates per boundary face.
    flux: Vec<f64>,
}

impl BoundaryScratch {
    /// Allocates face-sized ghost buffers.
    pub fn new(plan: &StpPlan) -> Self {
        Self {
            q_ghost: vec![0.0; plan.face.len()],
            f_ghost: vec![0.0; plan.face.len()],
            flux: vec![0.0; plan.m()],
        }
    }
}

/// Computes the Rusanov flux for a domain-boundary face: builds the ghost
/// state from the interior trace according to `kind`, evaluates its flux,
/// and calls the interior Riemann solve with interior/ghost ordered by
/// `side` (0 = the boundary is the cell's lower face).
#[allow(clippy::too_many_arguments)]
pub fn boundary_face(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    d: usize,
    side: usize,
    kind: BoundaryKind,
    q_in: &[f64],
    f_in: &[f64],
    scratch: &mut BoundaryScratch,
    f_star: &mut [f64],
) {
    let n = plan.n();
    let m = plan.m();
    let mf_pad = plan.face.m_pad();
    let outward = if side == 1 { 1.0 } else { -1.0 };
    match kind {
        BoundaryKind::Outflow | BoundaryKind::Periodic => {
            // Absorbing boundary: Riemann solve against a *quiescent
            // exterior* (zero evolved variables, parameters copied). The
            // Rusanov flux then upwinds the outgoing characteristics and
            // damps incoming ones — the naive zero-gradient copy
            // (F* = F_in) leaves incoming characteristics unconstrained
            // and is unstable for wave systems. (Periodic faces are
            // normally resolved to interior neighbours by the mesh; a
            // stray call is treated the same way.)
            let vars = pde.num_vars();
            scratch.q_ghost[..plan.face.len()].copy_from_slice(&q_in[..plan.face.len()]);
            scratch.f_ghost[..plan.face.len()].fill(0.0);
            for node in 0..n * n {
                let o = node * mf_pad;
                scratch.q_ghost[o..o + vars].fill(0.0);
            }
        }
        BoundaryKind::Reflective => {
            for node in 0..n * n {
                let o = node * mf_pad;
                pde.reflective_ghost(d, outward, &q_in[o..o + m], &mut scratch.q_ghost[o..o + m]);
                pde.flux(d, &scratch.q_ghost[o..o + m], &mut scratch.flux);
                scratch.f_ghost[o..o + m].copy_from_slice(&scratch.flux);
            }
        }
    }
    if side == 1 {
        // Boundary is the upper face: interior is the left state.
        rusanov_face(
            plan,
            pde,
            d,
            q_in,
            f_in,
            &scratch.q_ghost,
            &scratch.f_ghost,
            f_star,
        );
    } else {
        rusanov_face(
            plan,
            pde,
            d,
            &scratch.q_ghost,
            &scratch.f_ghost,
            q_in,
            f_in,
            f_star,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::StpConfig;
    use aderdg_pde::AdvectionSystem;

    fn face_state(plan: &StpPlan, val: impl Fn(usize, usize) -> f64) -> Vec<f64> {
        let n = plan.n();
        let mf = plan.face.m_pad();
        let mut q = vec![0.0; plan.face.len()];
        for node in 0..n * n {
            for s in 0..plan.m() {
                q[node * mf + s] = val(node, s);
            }
        }
        q
    }

    #[test]
    fn upwind_recovered_for_scalar_advection() {
        // a > 0: information moves +x; F* must equal F(q_L) = −a q_L.
        let plan = StpPlan::new(StpConfig::new(3, 1), [1.0; 3]);
        let pde = AdvectionSystem::new(1, [2.0, 0.0, 0.0]);
        let q_l = face_state(&plan, |n, _| 1.0 + n as f64);
        let q_r = face_state(&plan, |n, _| -3.0 + 0.5 * n as f64);
        let f_l: Vec<f64> = q_l.iter().map(|&q| -2.0 * q).collect();
        let f_r: Vec<f64> = q_r.iter().map(|&q| -2.0 * q).collect();
        let mut f_star = vec![0.0; plan.face.len()];
        rusanov_face(&plan, &pde, 0, &q_l, &f_l, &q_r, &f_r, &mut f_star);
        let mf = plan.face.m_pad();
        for node in 0..9 {
            assert!(
                (f_star[node * mf] - f_l[node * mf]).abs() < 1e-13,
                "node {node}"
            );
        }
    }

    #[test]
    fn consistency_equal_states_give_physical_flux() {
        let plan = StpPlan::new(StpConfig::new(4, 2), [1.0; 3]);
        let pde = AdvectionSystem::new(2, [0.3, -0.7, 0.1]);
        let q = face_state(&plan, |n, s| (n + s) as f64 * 0.1 - 0.4);
        let f: Vec<f64> = q.iter().map(|&x| 0.7 * x).collect();
        let mut f_star = vec![0.0; plan.face.len()];
        rusanov_face(&plan, &pde, 1, &q, &f, &q, &f, &mut f_star);
        let mf = plan.face.m_pad();
        for node in 0..16 {
            for s in 0..2 {
                assert!((f_star[node * mf + s] - f[node * mf + s]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn outflow_boundary_passes_interior_flux() {
        let plan = StpPlan::new(StpConfig::new(3, 1), [1.0; 3]);
        let pde = AdvectionSystem::new(1, [1.0, 0.0, 0.0]);
        let q = face_state(&plan, |n, _| n as f64);
        let f: Vec<f64> = q.iter().map(|&x| -x).collect();
        let mut scratch = BoundaryScratch::new(&plan);
        let mut f_star = vec![0.0; plan.face.len()];
        boundary_face(
            &plan,
            &pde,
            0,
            1,
            BoundaryKind::Outflow,
            &q,
            &f,
            &mut scratch,
            &mut f_star,
        );
        let mf = plan.face.m_pad();
        for node in 0..9 {
            assert!((f_star[node * mf] - f[node * mf]).abs() < 1e-13);
        }
    }

    #[test]
    fn rusanov_dissipation_sign() {
        // With q_R > q_L and F ≡ 0, F* = ½ s (q_R − q_L) > 0.
        let plan = StpPlan::new(StpConfig::new(3, 1), [1.0; 3]);
        let pde = AdvectionSystem::new(1, [1.0, 0.0, 0.0]);
        let q_l = face_state(&plan, |_, _| 0.0);
        let q_r = face_state(&plan, |_, _| 2.0);
        let zero = vec![0.0; plan.face.len()];
        let mut f_star = vec![0.0; plan.face.len()];
        rusanov_face(&plan, &pde, 0, &q_l, &zero, &q_r, &zero, &mut f_star);
        assert!((f_star[0] - 1.0).abs() < 1e-13);
    }
}
