//! The corrector step (paper eq. 5).
//!
//! Updates the cell state with the time-integrated volume contribution and
//! the face corrections from the numerical fluxes, in the strong
//! DG-with-flux-difference form (algebraically equivalent to eq. 5's weak
//! form for linear problems):
//!
//! `q^{n+1}_k = q^n_k + [Σ_d ∂_d F̄_d + B_d ∂_d q̄]_k`
//! `  + Σ_d 1/(w_{k_d} Δx_d) [φ_{k_d}(1)(F*_+ − F̄(1⁻)) − φ_{k_d}(0)(F*_− − F̄(0⁻))]`
//!
//! where all time integration already happened in the predictor.

use crate::kernels::log::derive_gemm_aos;
use crate::kernels::StpOutputs;
use crate::plan::StpPlan;
use aderdg_pde::LinearPde;
use aderdg_tensor::AlignedVec;

/// Scratch buffers of the corrector (one per worker thread).
#[derive(Debug, Clone)]
pub struct CorrectorScratch {
    /// Derivative of a time-averaged flux tensor.
    dflux: AlignedVec,
    /// Gradient of `q̄` (ncp only).
    grad: AlignedVec,
    /// Pointwise ncp result.
    ncp: Vec<f64>,
}

impl CorrectorScratch {
    /// Allocates corrector scratch for `plan`.
    pub fn new(plan: &StpPlan) -> Self {
        Self {
            dflux: AlignedVec::zeroed(plan.aos.len()),
            grad: AlignedVec::zeroed(plan.aos.len()),
            ncp: vec![0.0; plan.m()],
        }
    }
}

/// Applies the volume contribution: `q += Σ_d ∂_d F̄_d (+ B_d ∂_d q̄)`.
pub fn apply_volume(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    scratch: &mut CorrectorScratch,
    outputs: &StpOutputs,
    q: &mut [f64],
) {
    let m = plan.m();
    let m_pad = plan.aos.m_pad();
    let vol = plan.n().pow(3);
    for d in 0..3 {
        derive_gemm_aos(plan, d, &outputs.favg[d], &mut scratch.dflux, false);
        for (qv, dv) in q.iter_mut().zip(scratch.dflux.iter()) {
            *qv += dv;
        }
        if pde.has_ncp() {
            derive_gemm_aos(plan, d, &outputs.qavg, &mut scratch.grad, false);
            for k in 0..vol {
                pde.ncp(
                    d,
                    &outputs.qavg[k * m_pad..k * m_pad + m],
                    &scratch.grad[k * m_pad..k * m_pad + m],
                    &mut scratch.ncp,
                );
                for s in 0..m {
                    q[k * m_pad + s] += scratch.ncp[s];
                }
            }
        }
    }
}

/// Applies one face correction: face of normal dimension `d`, `side`
/// (0 = lower), given the resolved numerical flux `f_star` and the cell's
/// own face flux trace `f_own`.
pub fn apply_face(
    plan: &StpPlan,
    d: usize,
    side: usize,
    f_star: &[f64],
    f_own: &[f64],
    q: &mut [f64],
) {
    let n = plan.n();
    let m = plan.m();
    let m_pad = plan.aos.m_pad();
    let mf_pad = plan.face.m_pad();
    let phi = if side == 0 {
        &plan.basis.phi_left
    } else {
        &plan.basis.phi_right
    };
    let sign = if side == 1 { 1.0 } else { -1.0 };
    let inv_w = &plan.basis.inv_weights;
    let scale = plan.inv_dx[d];
    // Face node (a, b) couples to the volume line along d at (a, b).
    for a in 0..n {
        for b in 0..n {
            let fo = (a * n + b) * mf_pad;
            for kd in 0..n {
                let c = sign * phi[kd] * inv_w[kd] * scale;
                // Volume node for (a, b, kd) depending on the face dim:
                // x-faces: (k3=a, k2=b, k1=kd); y: (k3=a, k1=b, k2=kd);
                // z: (k2=a, k1=b, k3=kd) — matching faceproj's ordering.
                let node = match d {
                    0 => (a * n + b) * n + kd,
                    1 => (a * n + kd) * n + b,
                    _ => (kd * n + a) * n + b,
                };
                let qo = node * m_pad;
                for s in 0..m {
                    q[qo + s] += c * (f_star[fo + s] - f_own[fo + s]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::StpInputs;
    use crate::plan::{KernelVariant, StpConfig};
    use aderdg_pde::AdvectionSystem;

    /// 1-D sanity: a smooth periodic advection profile updated with exact
    /// (periodic self-) neighbour data must match the exact translation,
    /// with spectrally decreasing error in the order (a systematic scheme
    /// bug would produce an O(dt) error independent of the order).
    #[test]
    fn single_cell_periodic_advection_converges() {
        let e6 = one_step_error(6);
        let e9 = one_step_error(9);
        let e12 = one_step_error(12);
        assert!(e9 < e6 / 20.0, "e6={e6} e9={e9}");
        assert!(e12 < e9 / 20.0, "e9={e9} e12={e12}");
        // n = 12 resolves sin(2πx) to ~1e-7 (spectral interpolation limit).
        assert!(e12 < 1e-6, "e12={e12}");
    }

    fn one_step_error(n: usize) -> f64 {
        let plan = StpPlan::new(StpConfig::new(n, 1), [1.0; 3]);
        let pde = AdvectionSystem::new(1, [1.0, 0.0, 0.0]);
        let m_pad = plan.aos.m_pad();
        let nodes = plan.basis.nodes.clone();
        // q(x) = sin(2πx) on a single periodic unit cell.
        let mut q = vec![0.0; plan.aos.len()];
        for k3 in 0..n {
            for k2 in 0..n {
                for k1 in 0..n {
                    q[((k3 * n + k2) * n + k1) * m_pad] =
                        (2.0 * std::f64::consts::PI * nodes[k1]).sin();
                }
            }
        }
        let dt = 0.01;
        let mut out = StpOutputs::new(&plan);
        let kernel = KernelVariant::SplitCk.kernel();
        let mut scratch = kernel.make_scratch(&plan);
        kernel.run(
            &plan,
            &pde,
            scratch.as_mut(),
            &StpInputs {
                q0: &q,
                dt,
                source: None,
            },
            &mut out,
        );
        // Periodic: the neighbour on either side is the cell itself.
        let mut corr = CorrectorScratch::new(&plan);
        apply_volume(&plan, &pde, &mut corr, &out, &mut q);
        use crate::riemann::rusanov_face;
        let mut f_star = vec![0.0; plan.face.len()];
        // x-lower face: left neighbour's upper face is our own upper face.
        rusanov_face(
            &plan,
            &pde,
            0,
            &out.qface[1],
            &out.fface[1],
            &out.qface[0],
            &out.fface[0],
            &mut f_star,
        );
        apply_face(&plan, 0, 0, &f_star, &out.fface[0], &mut q);
        // x-upper face: right neighbour's lower face is our own lower face.
        rusanov_face(
            &plan,
            &pde,
            0,
            &out.qface[1],
            &out.fface[1],
            &out.qface[0],
            &out.fface[0],
            &mut f_star,
        );
        apply_face(&plan, 0, 1, &f_star, &out.fface[1], &mut q);
        // y/z faces: fluxes are zero for x-advection; F* − F̄ = 0. Skip.
        let mut err: f64 = 0.0;
        for k3 in 0..n {
            for k2 in 0..n {
                for k1 in 0..n {
                    let got = q[((k3 * n + k2) * n + k1) * m_pad];
                    let want = (2.0 * std::f64::consts::PI * (nodes[k1] - dt)).sin();
                    err = err.max((got - want).abs());
                }
            }
        }
        err
    }

    #[test]
    fn zero_flux_difference_is_identity() {
        let plan = StpPlan::new(StpConfig::new(4, 2), [1.0; 3]);
        let f = vec![1.5; plan.face.len()];
        let mut q = vec![0.25; plan.aos.len()];
        let q0 = q.clone();
        for d in 0..3 {
            for side in 0..2 {
                apply_face(&plan, d, side, &f, &f, &mut q);
            }
        }
        assert_eq!(q, q0);
    }
}
