//! Rendering a [`RunSummary`] for humans and CSV consumers — shared by
//! `aderdg-run` and `aderdg-serve` so a job fetched over the wire looks
//! exactly like a local run.

use crate::scenario::RunSummary;
use std::io::Write;

/// Renders the human-readable run report.
pub fn render_summary(s: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "scenario {} [{}]: order {}, {}x{}x{} cells ({}), kernel {}, pipeline {:?}\n",
        s.scenario,
        s.system,
        s.order,
        s.cells[0],
        s.cells[1],
        s.cells[2],
        s.num_cells,
        s.kernel,
        s.pipeline,
    ));
    out.push_str(&format!("tune: {}\n", s.tune));
    out.push_str(&format!(
        "{} steps to t = {:.6} in {:.3} s ({:.0} cell updates/s)\n",
        s.steps, s.t_end, s.wall_seconds, s.cell_updates_per_second
    ));
    if s.paused {
        out.push_str("run paused before reaching its target (resumable from checkpoint)\n");
    }
    out.push_str(&format!(
        "{:>10} {:>8} {:>13} {:>13}\n",
        "t", "steps", "L2 norm", "L2 error"
    ));
    for p in &s.series {
        let err = p
            .l2_error
            .map(|e| format!("{e:>13.4e}"))
            .unwrap_or_else(|| format!("{:>13}", "-"));
        out.push_str(&format!(
            "{:>10.4} {:>8} {:>13.6e} {err}\n",
            p.t, p.steps, p.l2_norm
        ));
    }
    let drift: f64 = s
        .integrals_initial
        .iter()
        .zip(&s.integrals_final)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);
    out.push_str(&format!(
        "conserved-quantity drift: max |Δ∫q| = {drift:.3e} over {} quantities\n",
        s.integrals_final.len()
    ));
    if let Some(err) = s.l2_error {
        out.push_str(&format!("final L2 error vs exact solution: {err:.6e}\n"));
    }
    if !s.receivers.is_empty() {
        out.push_str(&format!(
            "{} receiver(s) recorded {} samples each\n",
            s.receivers.len(),
            s.receivers.first().map_or(0, |r| r.records.len())
        ));
    }
    out
}

/// Writes the checkpoint time series as CSV (`t,steps,l2_norm,l2_error`).
pub fn write_series_csv(s: &RunSummary, out: &mut dyn Write) -> std::io::Result<()> {
    writeln!(out, "t,steps,l2_norm,l2_error")?;
    for p in &s.series {
        match p.l2_error {
            Some(e) => writeln!(out, "{},{},{},{e}", p.t, p.steps, p.l2_norm)?,
            None => writeln!(out, "{},{},{},", p.t, p.steps, p.l2_norm)?,
        }
    }
    Ok(())
}

/// Writes every receiver's seismogram as CSV
/// (`receiver,x,y,z,t,q0,q1,…`).
pub fn write_receivers_csv(s: &RunSummary, out: &mut dyn Write) -> std::io::Result<()> {
    let vars = s
        .receivers
        .iter()
        .flat_map(|r| r.records.first())
        .map(|(_, v)| v.len())
        .next()
        .unwrap_or(0);
    write!(out, "receiver,x,y,z,t")?;
    for v in 0..vars {
        write!(out, ",q{v}")?;
    }
    writeln!(out)?;
    for (i, r) in s.receivers.iter().enumerate() {
        for (t, v) in &r.records {
            write!(
                out,
                "{i},{},{},{},{t}",
                r.position[0], r.position[1], r.position[2]
            )?;
            for x in v {
                write!(out, ",{x}")?;
            }
            writeln!(out)?;
        }
    }
    Ok(())
}
