//! Cell blocks — batched inputs of the Space-Time Predictor.
//!
//! The paper's kernels operate on one element at a time, so every GEMM
//! reloads the same tiny operator matrices per cell. A [`CellBlock`]
//! stacks the padded-AoS DOFs of up to `B` contiguous cells into one
//! aligned buffer so a single operator load (and, through
//! [`GemmBatch`](aderdg_gemm::GemmBatch), a single batched GEMM call)
//! serves the whole block. [`BlockInputs`] bundles a staged block with
//! the step length and the per-cell point sources — the block-level
//! counterpart of [`StpInputs`].
//!
//! Blocks are *staging* buffers, reused across the engine's block loop:
//! the engine keeps per-cell state (the corrector and the Riemann solve
//! are neighbour-coupled and stay cell-granular), gathers each block
//! before the predictor and scatters per-cell predictor outputs after.

use crate::kernels::StpInputs;
use crate::plan::{CellSource, StpPlan};
use aderdg_tensor::AlignedVec;

/// A reusable staging buffer stacking the padded-AoS DOFs of up to
/// `capacity` cells contiguously (cell `i` occupies
/// `[i * cell_len, (i + 1) * cell_len)`).
#[derive(Debug, Clone)]
pub struct CellBlock {
    data: AlignedVec,
    cell_len: usize,
    capacity: usize,
    len: usize,
}

impl CellBlock {
    /// Allocates a zeroed block for up to `capacity` cells of `plan`'s
    /// padded AoS layout.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(plan: &StpPlan, capacity: usize) -> Self {
        assert!(capacity > 0, "CellBlock capacity must be at least 1");
        let cell_len = plan.aos.len();
        Self {
            data: AlignedVec::zeroed(capacity * cell_len),
            cell_len,
            capacity,
            len: 0,
        }
    }

    /// Removes all staged cells (the buffer contents are left as-is; the
    /// next [`push`](CellBlock::push) overwrites them).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Stages one cell's padded-AoS DOFs at the next block slot.
    ///
    /// # Panics
    /// If the block is full or `q0` does not match the plan's AoS length.
    pub fn push(&mut self, q0: &[f64]) {
        assert!(self.len < self.capacity, "CellBlock is full");
        assert_eq!(q0.len(), self.cell_len, "cell DOF length mismatch");
        let at = self.len * self.cell_len;
        self.data[at..at + self.cell_len].copy_from_slice(q0);
        self.len += 1;
    }

    /// Number of cells currently staged.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no cells are staged.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of cells the block can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Doubles per staged cell (the plan's padded AoS length).
    #[inline]
    pub fn cell_len(&self) -> usize {
        self.cell_len
    }

    /// The staged DOFs of cell `i` (block-local index).
    #[inline]
    pub fn cell(&self, i: usize) -> &[f64] {
        assert!(i < self.len, "cell index {i} out of staged range");
        &self.data[i * self.cell_len..(i + 1) * self.cell_len]
    }

    /// The contiguous stacked view over all staged cells
    /// (`len() * cell_len()` doubles).
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data[..self.len * self.cell_len]
    }
}

/// Inputs of one block-level predictor invocation: a staged block, the
/// step length, and one optional point source per staged cell.
#[derive(Debug, Clone, Copy)]
pub struct BlockInputs<'a> {
    /// The staged cell block.
    pub block: &'a CellBlock,
    /// Time-step length (shared by all cells of the block).
    pub dt: f64,
    /// Per-cell point sources, indexed like the block's cells.
    pub sources: &'a [Option<&'a CellSource>],
}

impl<'a> BlockInputs<'a> {
    /// Bundles a staged block with its sources.
    ///
    /// # Panics
    /// If `sources` does not have exactly one entry per staged cell.
    pub fn new(block: &'a CellBlock, dt: f64, sources: &'a [Option<&'a CellSource>]) -> Self {
        assert_eq!(
            sources.len(),
            block.len(),
            "need one source slot per staged cell"
        );
        Self { block, dt, sources }
    }

    /// Number of cells in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.block.len()
    }

    /// True when the block holds no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.block.is_empty()
    }

    /// The per-cell inputs of block-local cell `i` — what the default
    /// per-cell fallback of
    /// [`StpKernel::run_block`](crate::kernels::StpKernel::run_block)
    /// feeds to [`StpKernel::run`](crate::kernels::StpKernel::run).
    #[inline]
    pub fn cell_inputs(&self, i: usize) -> StpInputs<'a> {
        StpInputs {
            q0: self.block.cell(i),
            dt: self.dt,
            source: self.sources[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::StpConfig;

    #[test]
    fn staging_round_trips_cells() {
        let plan = StpPlan::new(StpConfig::new(3, 2), [1.0; 3]);
        let mut block = CellBlock::new(&plan, 3);
        assert!(block.is_empty());
        let cells: Vec<Vec<f64>> = (0..3)
            .map(|c| (0..plan.aos.len()).map(|i| (c * 1000 + i) as f64).collect())
            .collect();
        for cell in &cells {
            block.push(cell);
        }
        assert_eq!(block.len(), 3);
        for (c, cell) in cells.iter().enumerate() {
            assert_eq!(block.cell(c), &cell[..]);
        }
        assert_eq!(block.as_slice().len(), 3 * plan.aos.len());
        block.clear();
        assert!(block.is_empty());
        block.push(&cells[2]);
        assert_eq!(block.cell(0), &cells[2][..]);
    }

    #[test]
    #[should_panic(expected = "CellBlock is full")]
    fn push_beyond_capacity_panics() {
        let plan = StpPlan::new(StpConfig::new(3, 2), [1.0; 3]);
        let mut block = CellBlock::new(&plan, 1);
        let q = vec![0.0; plan.aos.len()];
        block.push(&q);
        block.push(&q);
    }

    #[test]
    #[should_panic(expected = "one source slot per staged cell")]
    fn inputs_reject_source_length_mismatch() {
        let plan = StpPlan::new(StpConfig::new(3, 2), [1.0; 3]);
        let mut block = CellBlock::new(&plan, 2);
        block.push(&vec![0.0; plan.aos.len()]);
        let _ = BlockInputs::new(&block, 0.1, &[]);
    }
}
