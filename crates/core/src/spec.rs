//! Solver specification — the analogue of ExaHyPE's specification file.
//!
//! In the paper, users select the kernel variant, order and architecture
//! in a specification file; the Toolkit validates it and generates glue
//! code (Sec. II-C/D). [`SolverSpec`] plays that role: a tiny `key = value`
//! format (comments with `#`) parsed into a validated configuration the
//! engine consumes. The optimized variants are opt-in, exactly as in the
//! paper.
//!
//! ```text
//! # my_solver.spec
//! order      = 6
//! kernel     = aosoa_splitck
//! width      = avx512
//! rule       = gauss_legendre
//! cfl        = 0.4
//! block_size = auto
//! tuning     = model
//! pipeline   = sharded
//! shard_size = auto
//! ```

use crate::engine::{EngineConfig, PipelineMode, SteppingMode};
use crate::kernels::StpKernel;
use crate::registry::KernelRegistry;
use crate::tune::TuningMode;
use aderdg_quadrature::QuadratureRule;
use aderdg_tensor::SimdWidth;
use std::fmt;

/// A parse/validation error with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number (0 for cross-field validation errors).
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error (line {}): {}", self.line, self.message)
    }
}

impl std::error::Error for SpecError {}

/// Parses a SIMD-width keyword (`sse`/`128`, `avx2`/`256`,
/// `avx512`/`512`, `host`) — shared by the spec-file parser and the
/// `aderdg-run` CLI.
pub fn parse_width(value: &str) -> Option<SimdWidth> {
    match value {
        "sse" | "128" => Some(SimdWidth::W2),
        "avx2" | "256" => Some(SimdWidth::W4),
        "avx512" | "512" => Some(SimdWidth::W8),
        "host" => Some(SimdWidth::host()),
        _ => None,
    }
}

/// The canonical keyword of a SIMD width (inverse of [`parse_width`]'s
/// primary spellings). `host` always resolves to a concrete width at
/// parse time, so checkpoints pin the exact padding they were saved
/// with.
pub fn width_name(width: SimdWidth) -> &'static str {
    match width {
        SimdWidth::W2 => "sse",
        SimdWidth::W4 => "avx2",
        SimdWidth::W8 => "avx512",
    }
}

/// The canonical keyword of a quadrature rule (inverse of
/// [`parse_rule`]).
pub fn rule_name(rule: QuadratureRule) -> &'static str {
    match rule {
        QuadratureRule::GaussLegendre => "gauss_legendre",
        QuadratureRule::GaussLobatto => "gauss_lobatto",
    }
}

/// Parses a quadrature-rule keyword (`gauss_legendre` | `gauss_lobatto`).
pub fn parse_rule(value: &str) -> Option<QuadratureRule> {
    match value {
        "gauss_legendre" => Some(QuadratureRule::GaussLegendre),
        "gauss_lobatto" => Some(QuadratureRule::GaussLobatto),
        _ => None,
    }
}

/// Parses an `auto`-or-positive-integer size value (`block_size`,
/// `shard_size`): `Some(None)` for `auto`, `Some(Some(n))` for `n ≥ 1`,
/// `None` for anything else.
pub fn parse_auto_size(value: &str) -> Option<Option<usize>> {
    if value == "auto" {
        return Some(None);
    }
    value.parse::<usize>().ok().filter(|&b| b >= 1).map(Some)
}

/// A validated solver configuration.
#[derive(Clone)]
pub struct SolverSpec {
    /// Scheme order (nodes per dimension), 2..=15.
    pub order: usize,
    /// STP kernel, resolved from the [`KernelRegistry`] (default:
    /// generic — optimizations are opt-in).
    pub kernel: &'static dyn StpKernel,
    /// SIMD width (default: host).
    pub width: SimdWidth,
    /// Quadrature rule (default: Gauss-Legendre).
    pub rule: QuadratureRule,
    /// CFL factor (default 0.4).
    pub cfl: f64,
    /// Predictor block size (`None` = leave the pick to the tuner, spec
    /// value `auto`).
    pub block_size: Option<usize>,
    /// Plan-time tuning strategy (`static` | `model` | `probe`, default
    /// `model`). `static` reproduces the original footprint heuristic —
    /// the hermetic choice for CI; `probe` times real kernels on the
    /// host.
    pub tuning: TuningMode,
    /// Step pipeline (`barrier` | `sharded`; defaults to the process
    /// default, i.e. `ADERDG_PIPELINE` or `sharded`). `sharded` solves
    /// each interior face's Riemann problem once and pipelines shards
    /// with no global barrier; `barrier` is the seed cell-centric
    /// baseline.
    pub pipeline: PipelineMode,
    /// Cells per shard of the sharded pipeline (`None` = automatic, spec
    /// value `auto`).
    pub shard_size: Option<usize>,
    /// Time-stepping strategy (`global` | `lts`; defaults to the process
    /// default, i.e. `ADERDG_STEPPING` or `global`). `lts` runs
    /// clustered local time stepping — coarse dt-clusters take fewer,
    /// longer sub-steps per macro cycle.
    pub stepping: SteppingMode,
}

impl std::fmt::Debug for SolverSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolverSpec")
            .field("order", &self.order)
            .field("kernel", &self.kernel.name())
            .field("width", &self.width)
            .field("rule", &self.rule)
            .field("cfl", &self.cfl)
            .field("block_size", &self.block_size)
            .field("tuning", &self.tuning)
            .field("pipeline", &self.pipeline)
            .field("shard_size", &self.shard_size)
            .field("stepping", &self.stepping)
            .finish()
    }
}

impl PartialEq for SolverSpec {
    fn eq(&self, other: &Self) -> bool {
        // Kernels compare by registry key (unique by construction);
        // pointer identity of `&dyn` is unreliable across codegen units.
        self.order == other.order
            && self.kernel.name() == other.kernel.name()
            && self.width == other.width
            && self.rule == other.rule
            && self.cfl == other.cfl
            && self.block_size == other.block_size
            && self.tuning == other.tuning
            && self.pipeline == other.pipeline
            && self.shard_size == other.shard_size
            && self.stepping == other.stepping
    }
}

impl Default for SolverSpec {
    fn default() -> Self {
        Self {
            order: 4,
            kernel: KernelRegistry::global()
                .resolve("generic")
                // PANIC-OK: internal invariant — builtins register at
                // startup.
                .expect("builtin kernels are always registered"),
            width: SimdWidth::host(),
            rule: QuadratureRule::GaussLegendre,
            cfl: 0.4,
            block_size: None,
            tuning: TuningMode::default(),
            pipeline: PipelineMode::default_from_env(),
            shard_size: None,
            stepping: SteppingMode::default_from_env(),
        }
    }
}

impl SolverSpec {
    /// Parses the `key = value` format; unknown keys and malformed values
    /// are errors (the Toolkit rejects invalid specification files).
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut spec = SolverSpec::default();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(SpecError {
                    line: line_no,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            let err = |message: String| SpecError {
                line: line_no,
                message,
            };
            match key {
                "order" => {
                    spec.order = value
                        .parse()
                        .map_err(|_| err(format!("invalid order `{value}`")))?;
                }
                "kernel" => {
                    spec.kernel = KernelRegistry::global().resolve(value).ok_or_else(|| {
                        err(format!(
                            "unknown kernel `{value}` ({})",
                            KernelRegistry::global().names().join("|")
                        ))
                    })?;
                }
                "width" => {
                    spec.width = parse_width(value).ok_or_else(|| {
                        err(format!("unknown width `{value}` (sse|avx2|avx512|host)"))
                    })?;
                }
                "rule" => {
                    spec.rule = parse_rule(value).ok_or_else(|| {
                        err(format!(
                            "unknown rule `{value}` (gauss_legendre|gauss_lobatto)"
                        ))
                    })?;
                }
                "cfl" => {
                    spec.cfl = value
                        .parse()
                        .map_err(|_| err(format!("invalid cfl `{value}`")))?;
                }
                "block_size" => {
                    spec.block_size = parse_auto_size(value).ok_or_else(|| {
                        err(format!(
                            "invalid block_size `{value}` (auto or integer >= 1)"
                        ))
                    })?;
                }
                "tuning" => {
                    spec.tuning = TuningMode::parse(value).ok_or_else(|| {
                        err(format!("unknown tuning `{value}` (static|model|probe)"))
                    })?;
                }
                "pipeline" => {
                    spec.pipeline = PipelineMode::parse(value).ok_or_else(|| {
                        err(format!("unknown pipeline `{value}` (barrier|sharded)"))
                    })?;
                }
                "shard_size" => {
                    spec.shard_size = parse_auto_size(value).ok_or_else(|| {
                        err(format!(
                            "invalid shard_size `{value}` (auto or integer >= 1)"
                        ))
                    })?;
                }
                "stepping" => {
                    spec.stepping = SteppingMode::parse(value)
                        .ok_or_else(|| err(format!("unknown stepping `{value}` (global|lts)")))?;
                }
                other => {
                    return Err(err(format!("unknown key `{other}`")));
                }
            }
        }
        spec.validate()?;
        Ok(spec)
    }

    fn validate(&self) -> Result<(), SpecError> {
        let fail = |message: String| SpecError { line: 0, message };
        if !(2..=15).contains(&self.order) {
            return Err(fail(format!("order {} outside 2..=15", self.order)));
        }
        if !(self.cfl > 0.0 && self.cfl <= 0.45) {
            return Err(fail(format!(
                "cfl {} outside (0, 0.45] (empirical 3-D stability limit)",
                self.cfl
            )));
        }
        Ok(())
    }

    /// The engine configuration this spec describes.
    pub fn engine_config(&self) -> EngineConfig {
        let mut cfg = EngineConfig::new(self.order)
            .with_kernel(self.kernel)
            .with_rule(self.rule)
            .with_width(self.width);
        cfg.cfl = self.cfl;
        cfg.block_size = self.block_size;
        cfg.tuning = self.tuning;
        cfg.pipeline = self.pipeline;
        cfg.shard_size = self.shard_size;
        cfg.stepping = self.stepping;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let spec = SolverSpec::parse(
            "# benchmark setup\n\
             order  = 6\n\
             kernel = aosoa_splitck  # the Sec. V variant\n\
             width  = avx512\n\
             rule   = gauss_lobatto\n\
             cfl    = 0.3\n\
             block_size = 8\n",
        )
        .unwrap();
        assert_eq!(spec.order, 6);
        assert_eq!(spec.kernel.name(), "aosoa_splitck");
        assert_eq!(spec.width, SimdWidth::W8);
        assert_eq!(spec.rule, QuadratureRule::GaussLobatto);
        assert_eq!(spec.cfl, 0.3);
        assert_eq!(spec.block_size, Some(8));
        assert_eq!(spec.engine_config().order, 6);
        assert_eq!(spec.engine_config().block_size, Some(8));
    }

    #[test]
    fn tuning_parses_defaults_to_model_and_rejects_unknown() {
        assert_eq!(
            SolverSpec::parse("order = 4\n").unwrap().tuning,
            TuningMode::Model
        );
        for (text, mode) in [
            ("tuning = static\n", TuningMode::Static),
            ("tuning = model\n", TuningMode::Model),
            ("tuning = probe\n", TuningMode::Probe),
        ] {
            let spec = SolverSpec::parse(text).unwrap();
            assert_eq!(spec.tuning, mode);
            assert_eq!(spec.engine_config().tuning, mode);
        }
        let e = SolverSpec::parse("tuning = lucky\n").unwrap_err();
        assert!(e.message.contains("static|model|probe"));
    }

    #[test]
    fn pipeline_parses_and_rejects_unknown() {
        for (text, mode) in [
            ("pipeline = barrier\n", PipelineMode::Barrier),
            ("pipeline = sharded\n", PipelineMode::Sharded),
        ] {
            let spec = SolverSpec::parse(text).unwrap();
            assert_eq!(spec.pipeline, mode);
            assert_eq!(spec.engine_config().pipeline, mode);
        }
        let e = SolverSpec::parse("pipeline = warp\n").unwrap_err();
        assert!(e.message.contains("barrier|sharded"));
    }

    #[test]
    fn stepping_parses_and_rejects_unknown() {
        for (text, mode) in [
            ("stepping = global\n", SteppingMode::Global),
            ("stepping = lts\n", SteppingMode::Lts),
        ] {
            let spec = SolverSpec::parse(text).unwrap();
            assert_eq!(spec.stepping, mode);
            assert_eq!(spec.engine_config().stepping, mode);
        }
        let e = SolverSpec::parse("stepping = warp\n").unwrap_err();
        assert!(e.message.contains("global|lts"));
    }

    #[test]
    fn shard_size_auto_and_rejects_invalid() {
        assert_eq!(
            SolverSpec::parse("shard_size = auto\n").unwrap().shard_size,
            None
        );
        assert_eq!(
            SolverSpec::parse("shard_size = 12\n").unwrap().shard_size,
            Some(12)
        );
        assert_eq!(
            SolverSpec::parse("shard_size = 12\n")
                .unwrap()
                .engine_config()
                .shard_size,
            Some(12)
        );
        assert!(SolverSpec::parse("shard_size = 0\n").is_err());
        assert!(SolverSpec::parse("shard_size = many\n").is_err());
    }

    #[test]
    fn block_size_auto_and_rejects_invalid() {
        assert_eq!(
            SolverSpec::parse("block_size = auto\n").unwrap().block_size,
            None
        );
        assert!(SolverSpec::parse("block_size = 0\n").is_err());
        assert!(SolverSpec::parse("block_size = wide\n").is_err());
    }

    #[test]
    fn defaults_are_generic_and_opt_in() {
        let spec = SolverSpec::parse("order = 5\n").unwrap();
        assert_eq!(spec.kernel.name(), "generic");
        assert_eq!(spec.cfl, 0.4);
    }

    #[test]
    fn rejects_unknown_kernel() {
        let e = SolverSpec::parse("kernel = turbo\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown kernel"));
    }

    #[test]
    fn rejects_unknown_key_and_bad_syntax() {
        assert!(SolverSpec::parse("colour = blue\n").is_err());
        let e = SolverSpec::parse("order 5\n").unwrap_err();
        assert!(e.message.contains("key = value"));
    }

    #[test]
    fn rejects_unstable_cfl_and_bad_order() {
        let e = SolverSpec::parse("cfl = 0.9\n").unwrap_err();
        assert!(e.message.contains("stability"));
        assert!(SolverSpec::parse("order = 1\n").is_err());
        assert!(SolverSpec::parse("order = 99\n").is_err());
    }

    #[test]
    fn display_formats_line() {
        let e = SolverSpec::parse("kernel = x\n").unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }
}
