//! The generic (scalar, unoptimized) Space-Time Predictor — paper Fig. 1.
//!
//! Faithful to the reference implementation: unpadded AoS temporaries, all
//! per-order tensors (`p`, `flux`, `dF`, `gradQ`) kept in memory for the
//! whole kernel (`O(N^{d+1} m d)` footprint, Sec. IV-A), pointwise user
//! functions, plain scalar loops for the tensor contractions — the compiler
//! may auto-vectorize fragments, exactly as the paper observes for the
//! "generic" bars of Fig. 9.

use super::{project_faces, StpInputs, StpOutputs};
use crate::plan::StpPlan;
use aderdg_pde::LinearPde;

/// Temporaries of the generic kernel. One `flux` slot more than time-loop
/// iterations so the time-averaged flux can be accumulated from the stored
/// per-order fluxes (the linearity identity `F(q̄) = Σ_o c_o F(p_o)`).
#[derive(Debug, Clone)]
pub struct GenericScratch {
    /// `p[o]`, `o = 0..=N`: the Taylor terms (time derivatives) of `q`.
    p: Vec<Vec<f64>>,
    /// `flux[o][d]`, `o = 0..=N`: flux of `p[o]` in direction `d`.
    flux: Vec<[Vec<f64>; 3]>,
    /// `dF[o][d]`, `o = 0..N`: flux derivative + ncp contribution.
    d_f: Vec<[Vec<f64>; 3]>,
    /// `gradQ[o][d]`, `o = 0..N`: state gradients (only with ncp terms).
    grad_q: Vec<[Vec<f64>; 3]>,
}

impl GenericScratch {
    /// Allocates all per-order tensors (the point of the generic variant is
    /// that this is large).
    pub fn new(plan: &StpPlan) -> Self {
        let n = plan.n();
        let vol = n * n * n * plan.m();
        let tens = || vec![0.0f64; vol];
        let tri = || [tens(), tens(), tens()];
        Self {
            p: (0..=n).map(|_| tens()).collect(),
            flux: (0..=n).map(|_| tri()).collect(),
            d_f: (0..n).map(|_| tri()).collect(),
            grad_q: (0..n).map(|_| tri()).collect(),
        }
    }

    /// Bytes of temporary storage.
    pub fn footprint_bytes(&self) -> usize {
        let count: usize = self.p.iter().map(Vec::len).sum::<usize>()
            + self
                .flux
                .iter()
                .chain(self.d_f.iter())
                .chain(self.grad_q.iter())
                .map(|t| t[0].len() * 3)
                .sum::<usize>();
        count * 8
    }
}

/// Scalar nodal derivative along `d` of the unpadded AoS tensor `src`,
/// scaled by `inv_dx`: `dst[k][s] = inv_dx · Σ_l D[k_d][l] src[k_d→l][s]`.
pub(crate) fn derive_scalar(
    n: usize,
    m: usize,
    diff: &[f64],
    inv_dx: f64,
    d: usize,
    src: &[f64],
    dst: &mut [f64],
) {
    dst.fill(0.0);
    // Stride of the contracted index in node space.
    let stride = match d {
        0 => m,
        1 => n * m,
        _ => n * n * m,
    };
    // Iterate nodes (k3, k2, k1); for each, contract along d.
    for k3 in 0..n {
        for k2 in 0..n {
            for k1 in 0..n {
                let kd = [k1, k2, k3][d];
                let node = ((k3 * n + k2) * n + k1) * m;
                let line_base = node - kd * stride;
                for l in 0..n {
                    let w = inv_dx * diff[kd * n + l];
                    let so = line_base + l * stride;
                    for s in 0..m {
                        dst[node + s] += w * src[so + s];
                    }
                }
            }
        }
    }
}

/// Runs the generic predictor (Fig. 1).
pub fn stp_generic(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    scratch: &mut GenericScratch,
    inputs: &StpInputs<'_>,
    out: &mut StpOutputs,
) {
    let n = plan.n();
    let m = plan.m();
    let vars = pde.num_vars();
    let m_pad = plan.aos.m_pad();
    let vol = n * n * n;
    let diff = &plan.basis.diff;
    let has_ncp = pde.has_ncp();

    // p[0] ← q0 (strip the padding).
    for k in 0..vol {
        scratch.p[0][k * m..(k + 1) * m].copy_from_slice(&inputs.q0[k * m_pad..k * m_pad + m]);
    }

    // Cauchy-Kowalewsky iteration: p[o+1] = Σ_d (∂_d F_d + B_d ∂_d)(p[o]).
    for o in 0..n {
        let (head, tail) = scratch.p.split_at_mut(o + 1);
        let p_o = &head[o];
        let p_next = &mut tail[0];

        // flux[o][d] ← computeF(p[o]) — pointwise user function (scalar).
        for d in 0..3 {
            let flux = &mut scratch.flux[o][d];
            for k in 0..vol {
                pde.flux(d, &p_o[k * m..(k + 1) * m], &mut flux[k * m..(k + 1) * m]);
            }
        }
        // dF[o][d] ← derive(flux, d).
        for d in 0..3 {
            derive_scalar(
                n,
                m,
                diff,
                plan.inv_dx[d],
                d,
                &scratch.flux[o][d],
                &mut scratch.d_f[o][d],
            );
        }
        // gradQ[o][d] ← derive(p[o], d); dF[o][d] += computeNcp(gradQ).
        if has_ncp {
            for d in 0..3 {
                derive_scalar(
                    n,
                    m,
                    diff,
                    plan.inv_dx[d],
                    d,
                    p_o,
                    &mut scratch.grad_q[o][d],
                );
                let grad = &scratch.grad_q[o][d];
                let d_f = &mut scratch.d_f[o][d];
                let mut ncp = vec![0.0; m];
                for k in 0..vol {
                    pde.ncp(
                        d,
                        &p_o[k * m..(k + 1) * m],
                        &grad[k * m..(k + 1) * m],
                        &mut ncp,
                    );
                    for s in 0..m {
                        d_f[k * m + s] += ncp[s];
                    }
                }
            }
        }
        // p[o+1] ← Σ_d dF[o][d] (+ o-th source time derivative).
        p_next.fill(0.0);
        for d in 0..3 {
            for (pv, dv) in p_next.iter_mut().zip(&scratch.d_f[o][d]) {
                *pv += dv;
            }
        }
        if let Some(src) = inputs.source {
            let amp = &src.derivs[o];
            for k in 0..vol {
                let c = src.node_coeffs[k];
                for (s, &a) in amp.iter().enumerate() {
                    p_next[k * m + s] += c * a;
                }
            }
        }
        // Material parameters are carried along, not evolved: restore them
        // so the user functions of the next iteration see valid media.
        let p0 = &head[0];
        for k in 0..vol {
            p_next[k * m + vars..(k + 1) * m].copy_from_slice(&p0[k * m + vars..(k + 1) * m]);
        }
    }

    // Final flux slot: flux[N][d] = F_d(p[N]) so favg can be summed from
    // the stored per-order fluxes.
    for d in 0..3 {
        let p_last = &scratch.p[n];
        let flux = &mut scratch.flux[n][d];
        for k in 0..vol {
            pde.flux(
                d,
                &p_last[k * m..(k + 1) * m],
                &mut flux[k * m..(k + 1) * m],
            );
        }
    }

    // Time averages: q̄ = Σ_o c_o p[o], F̄_d = Σ_o c_o flux[o][d] (eq. 4).
    let coef = plan.taylor(inputs.dt);
    out.qavg.fill_zero();
    for f in out.favg.iter_mut() {
        f.fill_zero();
    }
    for o in 0..=n {
        let c = coef[o];
        let p_o = &scratch.p[o];
        for k in 0..vol {
            for s in 0..m {
                out.qavg[k * m_pad + s] += c * p_o[k * m + s];
            }
        }
        for d in 0..3 {
            let flux = &scratch.flux[o][d];
            let favg = &mut out.favg[d];
            for k in 0..vol {
                for s in 0..m {
                    favg[k * m_pad + s] += c * flux[k * m + s];
                }
            }
        }
    }
    // Output convention: q̄ carries the *original* parameters (they are
    // data, not time-integrated state) so downstream user-function calls
    // (corrector ncp, Riemann wave speeds) see valid media.
    for k in 0..vol {
        out.qavg[k * m_pad + vars..k * m_pad + m]
            .copy_from_slice(&inputs.q0[k * m_pad + vars..k * m_pad + m]);
    }

    project_faces(plan, out);
}

/// Temporaries of the blocked generic kernel: the same per-order tensor
/// set as [`GenericScratch`], each stacked over the cells of a block.
/// Stacking lets [`stp_generic_block`] sweep each stage (flux, derivative,
/// ncp, Taylor combination) over *all* cells consecutively, so the tiny
/// differentiation operator is loaded once per stage instead of once per
/// cell — the cell-block counterpart of the paper's operator-reuse
/// argument.
#[derive(Debug, Clone)]
pub struct GenericBlockScratch {
    /// Maximum cells per block.
    capacity: usize,
    /// `p[o]`, stacked over cells: cell `c` occupies
    /// `[c · n³m, (c + 1) · n³m)`.
    p: Vec<Vec<f64>>,
    /// `flux[o][d]`, stacked over cells.
    flux: Vec<[Vec<f64>; 3]>,
    /// `dF[o][d]`, stacked over cells.
    d_f: Vec<[Vec<f64>; 3]>,
    /// `gradQ[o][d]`, stacked over cells (only with ncp terms).
    grad_q: Vec<[Vec<f64>; 3]>,
}

impl GenericBlockScratch {
    /// Allocates the stacked per-order tensors for up to `capacity` cells.
    pub fn new(plan: &StpPlan, capacity: usize) -> Self {
        assert!(capacity > 0, "block scratch needs capacity >= 1");
        let n = plan.n();
        let vol = capacity * n * n * n * plan.m();
        let tens = || vec![0.0f64; vol];
        let tri = || [tens(), tens(), tens()];
        Self {
            capacity,
            p: (0..=n).map(|_| tens()).collect(),
            flux: (0..=n).map(|_| tri()).collect(),
            d_f: (0..n).map(|_| tri()).collect(),
            grad_q: (0..n).map(|_| tri()).collect(),
        }
    }

    /// Bytes of temporary storage.
    pub fn footprint_bytes(&self) -> usize {
        let count: usize = self.p.iter().map(Vec::len).sum::<usize>()
            + self
                .flux
                .iter()
                .chain(self.d_f.iter())
                .chain(self.grad_q.iter())
                .map(|t| t[0].len() * 3)
                .sum::<usize>();
        count * 8
    }
}

/// Runs the generic predictor over a staged cell block: identical per-cell
/// arithmetic to [`stp_generic`], but with the loop nest restructured
/// stage-major — each flux sweep, derivative and Taylor combination runs
/// over every cell of the block before the next stage starts, keeping the
/// operator matrix hot across cells.
pub fn stp_generic_block(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    scratch: &mut GenericBlockScratch,
    inputs: &crate::block::BlockInputs<'_>,
    out: &mut [StpOutputs],
) {
    let cells = inputs.len();
    assert_eq!(cells, out.len(), "one output per staged cell");
    assert!(
        cells <= scratch.capacity,
        "block of {cells} cells exceeds scratch capacity {}",
        scratch.capacity
    );
    let n = plan.n();
    let m = plan.m();
    let vars = pde.num_vars();
    let m_pad = plan.aos.m_pad();
    let vol = n * n * n;
    let cvol = vol * m;
    let diff = &plan.basis.diff;
    let has_ncp = pde.has_ncp();

    // p[0] ← q0 for every cell (strip the padding).
    for c in 0..cells {
        let q0 = inputs.block.cell(c);
        let p0 = &mut scratch.p[0][c * cvol..(c + 1) * cvol];
        for k in 0..vol {
            p0[k * m..(k + 1) * m].copy_from_slice(&q0[k * m_pad..k * m_pad + m]);
        }
    }

    // Cauchy-Kowalewsky iteration, stage-major over the block.
    for o in 0..n {
        let (head, tail) = scratch.p.split_at_mut(o + 1);
        let p_o = &head[o];
        let p_next = &mut tail[0];

        // flux[o][d] ← computeF(p[o]), all cells per dimension.
        for d in 0..3 {
            let flux = &mut scratch.flux[o][d];
            for k in 0..cells * vol {
                pde.flux(d, &p_o[k * m..(k + 1) * m], &mut flux[k * m..(k + 1) * m]);
            }
        }
        // dF[o][d] ← derive(flux, d): the operator row sweep runs over
        // all cells back-to-back.
        for d in 0..3 {
            let flux = &scratch.flux[o][d];
            let d_f = &mut scratch.d_f[o][d];
            for c in 0..cells {
                derive_scalar(
                    n,
                    m,
                    diff,
                    plan.inv_dx[d],
                    d,
                    &flux[c * cvol..(c + 1) * cvol],
                    &mut d_f[c * cvol..(c + 1) * cvol],
                );
            }
        }
        if has_ncp {
            for d in 0..3 {
                let grad = &mut scratch.grad_q[o][d];
                for c in 0..cells {
                    derive_scalar(
                        n,
                        m,
                        diff,
                        plan.inv_dx[d],
                        d,
                        &p_o[c * cvol..(c + 1) * cvol],
                        &mut grad[c * cvol..(c + 1) * cvol],
                    );
                }
                let d_f = &mut scratch.d_f[o][d];
                let mut ncp = vec![0.0; m];
                for k in 0..cells * vol {
                    pde.ncp(
                        d,
                        &p_o[k * m..(k + 1) * m],
                        &grad[k * m..(k + 1) * m],
                        &mut ncp,
                    );
                    for s in 0..m {
                        d_f[k * m + s] += ncp[s];
                    }
                }
            }
        }
        // p[o+1] ← Σ_d dF[o][d] (+ per-cell source derivatives).
        p_next[..cells * cvol].fill(0.0);
        for d in 0..3 {
            for (pv, dv) in p_next[..cells * cvol]
                .iter_mut()
                .zip(&scratch.d_f[o][d][..cells * cvol])
            {
                *pv += dv;
            }
        }
        for c in 0..cells {
            if let Some(src) = inputs.sources[c] {
                let amp = &src.derivs[o];
                let p_next = &mut p_next[c * cvol..(c + 1) * cvol];
                for k in 0..vol {
                    let coeff = src.node_coeffs[k];
                    for (s, &a) in amp.iter().enumerate() {
                        p_next[k * m + s] += coeff * a;
                    }
                }
            }
        }
        // Carry the (non-evolved) material parameters along.
        let p0 = &head[0];
        for k in 0..cells * vol {
            p_next[k * m + vars..(k + 1) * m].copy_from_slice(&p0[k * m + vars..(k + 1) * m]);
        }
    }

    // Final flux slot across the block.
    for d in 0..3 {
        let p_last = &scratch.p[n];
        let flux = &mut scratch.flux[n][d];
        for k in 0..cells * vol {
            pde.flux(
                d,
                &p_last[k * m..(k + 1) * m],
                &mut flux[k * m..(k + 1) * m],
            );
        }
    }

    // Time averages per cell (eq. 4), then the parameter restore and the
    // face projections — per-cell outputs, as the corrector consumes them.
    let coef = plan.taylor(inputs.dt);
    for (c, cell_out) in out.iter_mut().enumerate() {
        cell_out.qavg.fill_zero();
        for f in cell_out.favg.iter_mut() {
            f.fill_zero();
        }
        for o in 0..=n {
            let co = coef[o];
            let p_o = &scratch.p[o][c * cvol..(c + 1) * cvol];
            for k in 0..vol {
                for s in 0..m {
                    cell_out.qavg[k * m_pad + s] += co * p_o[k * m + s];
                }
            }
            for d in 0..3 {
                let flux = &scratch.flux[o][d][c * cvol..(c + 1) * cvol];
                let favg = &mut cell_out.favg[d];
                for k in 0..vol {
                    for s in 0..m {
                        favg[k * m_pad + s] += co * flux[k * m + s];
                    }
                }
            }
        }
        let q0 = inputs.block.cell(c);
        for k in 0..vol {
            cell_out.qavg[k * m_pad + vars..k * m_pad + m]
                .copy_from_slice(&q0[k * m_pad + vars..k * m_pad + m]);
        }
        project_faces(plan, cell_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::StpConfig;
    use aderdg_pde::AdvectionSystem;

    #[test]
    fn derive_scalar_differentiates_polynomials() {
        let plan = StpPlan::new(StpConfig::new(5, 2), [1.0; 3]);
        let n = 5;
        let m = 2;
        let x = plan.basis.nodes.clone();
        // q(x,y,z; 0) = x³, q(...; 1) = y² — derivative along x: (3x², 0);
        // along y: (0, 2y).
        let mut src = vec![0.0; n * n * n * m];
        for k3 in 0..n {
            for k2 in 0..n {
                for k1 in 0..n {
                    let node = ((k3 * n + k2) * n + k1) * m;
                    src[node] = x[k1].powi(3);
                    src[node + 1] = x[k2] * x[k2];
                }
            }
        }
        let mut dst = vec![0.0; n * n * n * m];
        derive_scalar(n, m, &plan.basis.diff, 1.0, 0, &src, &mut dst);
        for k3 in 0..n {
            for k2 in 0..n {
                for k1 in 0..n {
                    let node = ((k3 * n + k2) * n + k1) * m;
                    assert!((dst[node] - 3.0 * x[k1] * x[k1]).abs() < 1e-10);
                    assert!(dst[node + 1].abs() < 1e-10);
                }
            }
        }
        derive_scalar(n, m, &plan.basis.diff, 2.0, 1, &src, &mut dst);
        for k3 in 0..n {
            for k2 in 0..n {
                for k1 in 0..n {
                    let node = ((k3 * n + k2) * n + k1) * m;
                    assert!(dst[node].abs() < 1e-9);
                    assert!((dst[node + 1] - 4.0 * x[k2]).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn constant_state_stays_constant_without_source() {
        // For q ≡ const the flux is constant, derivatives vanish, so
        // q̄ = dt·q and all higher Taylor terms are zero.
        let pde = AdvectionSystem::new(3, [1.0, 2.0, 3.0]);
        let plan = StpPlan::new(StpConfig::new(4, 3), [1.0; 3]);
        let mut scratch = GenericScratch::new(&plan);
        let m_pad = plan.aos.m_pad();
        let mut q0 = vec![0.0; plan.aos.len()];
        for k in 0..64 {
            for s in 0..3 {
                q0[k * m_pad + s] = (s + 1) as f64;
            }
        }
        let mut out = StpOutputs::new(&plan);
        let dt = 0.05;
        stp_generic(
            &plan,
            &pde,
            &mut scratch,
            &StpInputs {
                q0: &q0,
                dt,
                source: None,
            },
            &mut out,
        );
        for k in 0..64 {
            for s in 0..3 {
                let want = dt * (s + 1) as f64;
                assert!(
                    (out.qavg[k * m_pad + s] - want).abs() < 1e-13,
                    "k={k} s={s}"
                );
            }
        }
        // favg must equal dt · F(q) = dt · (−a_d q).
        for d in 0..3 {
            let a = [1.0, 2.0, 3.0][d];
            for k in 0..64 {
                for s in 0..3 {
                    let want = -a * dt * (s + 1) as f64;
                    assert!((out.favg[d][k * m_pad + s] - want).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn footprint_scales_like_n4() {
        let p4 = StpPlan::new(StpConfig::new(4, 5), [1.0; 3]);
        let p8 = StpPlan::new(StpConfig::new(8, 5), [1.0; 3]);
        let f4 = GenericScratch::new(&p4).footprint_bytes();
        let f8 = GenericScratch::new(&p8).footprint_bytes();
        let ratio = f8 as f64 / f4 as f64;
        // N⁴ scaling: 8⁴/4⁴ = 16, modulo the O(N³) terms.
        assert!(ratio > 12.0 && ratio < 20.0, "ratio={ratio}");
    }
}

use super::{downcast_scratch, impl_stp_scratch, StpKernel, StpScratch};

impl_stp_scratch!(GenericScratch);
impl_stp_scratch!(GenericBlockScratch);

/// Registry entry for the scalar reference variant (Fig. 1).
#[derive(Debug, Clone, Copy)]
pub struct GenericKernel;

impl StpKernel for GenericKernel {
    fn name(&self) -> &'static str {
        "generic"
    }

    fn make_scratch(&self, plan: &StpPlan) -> Box<dyn StpScratch> {
        Box::new(GenericScratch::new(plan))
    }

    fn run(
        &self,
        plan: &StpPlan,
        pde: &dyn LinearPde,
        scratch: &mut dyn StpScratch,
        inputs: &StpInputs<'_>,
        out: &mut StpOutputs,
    ) {
        stp_generic(plan, pde, downcast_scratch(scratch), inputs, out);
    }

    fn make_block_scratch(&self, plan: &StpPlan, capacity: usize) -> Box<dyn StpScratch> {
        Box::new(GenericBlockScratch::new(plan, capacity))
    }

    fn run_block(
        &self,
        plan: &StpPlan,
        pde: &dyn LinearPde,
        scratch: &mut dyn StpScratch,
        inputs: &crate::block::BlockInputs<'_>,
        out: &mut [StpOutputs],
    ) {
        stp_generic_block(plan, pde, downcast_scratch(scratch), inputs, out);
    }
}
