//! The dimension-split, cache-aware Cauchy-Kowalewsky predictor — paper
//! Fig. 5 / Sec. IV.
//!
//! Reformulation of the LoG algorithm with minimized memory footprint:
//!
//! * dimensions are processed one at a time, reusing the *same* `flux` and
//!   `gradQ` tensors for all three (factor-3 reduction),
//! * the time integration happens on the fly — `qavg` accumulates
//!   `c_o · p[o]` inside the loop instead of storing the whole space-time
//!   predictor (removes the time dimension from the footprint),
//! * the time-averaged flux is *recomputed* after the loop from the
//!   time-averaged state, exploiting linearity (`F(q̄) = Σ c_o F(p_o)`) —
//!   "the equivalent of almost one extra iteration", increasingly
//!   insignificant at high order.
//!
//! Resulting footprint: `O(N^d m)` instead of `O(N^{d+1} m d)`.

use super::{project_faces, StpInputs, StpOutputs};
use crate::kernels::log::{derive_gemm_aos, flux_pointwise_aos};
use crate::plan::StpPlan;
use aderdg_pde::LinearPde;
use aderdg_tensor::AlignedVec;

/// Temporaries of the SplitCK kernel: four volume tensors, period.
#[derive(Debug, Clone)]
pub struct SplitCkScratch {
    /// Current Taylor term `p[o]`.
    p: AlignedVec,
    /// Next Taylor term being accumulated.
    ptemp: AlignedVec,
    /// Flux of the current term in the current direction (reused ×3).
    flux: AlignedVec,
    /// State gradient in the current direction (reused ×3; ncp only).
    grad_q: AlignedVec,
    /// Pointwise ncp result buffer.
    ncp: Vec<f64>,
}

impl SplitCkScratch {
    /// Allocates the four volume tensors.
    pub fn new(plan: &StpPlan) -> Self {
        let vol = plan.aos.len();
        Self {
            p: AlignedVec::zeroed(vol),
            ptemp: AlignedVec::zeroed(vol),
            flux: AlignedVec::zeroed(vol),
            grad_q: AlignedVec::zeroed(vol),
            ncp: vec![0.0; plan.m()],
        }
    }

    /// Bytes of temporary storage — the `O(N^d m)` footprint.
    pub fn footprint_bytes(&self) -> usize {
        (self.p.len() + self.ptemp.len() + self.flux.len() + self.grad_q.len()) * 8
    }
}

/// Runs the SplitCK predictor (Fig. 5).
pub fn stp_splitck(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    scratch: &mut SplitCkScratch,
    inputs: &StpInputs<'_>,
    out: &mut StpOutputs,
) {
    let n = plan.n();
    let m = plan.m();
    let vars = pde.num_vars();
    let m_pad = plan.aos.m_pad();
    let vol = n * n * n;
    let has_ncp = pde.has_ncp();
    let coef = plan.taylor(inputs.dt);

    // p ← q0; qavg ← c_0 · p (on-the-fly time integration).
    scratch
        .p
        .as_mut_slice()
        .copy_from_slice(&inputs.q0[..plan.aos.len()]);
    for (qa, pv) in out.qavg.iter_mut().zip(scratch.p.iter()) {
        *qa = coef[0] * pv;
    }

    for o in 0..n {
        scratch.ptemp.fill_zero();
        // One dimension at a time; flux and gradQ are reused across d.
        for d in 0..3 {
            flux_pointwise_aos(plan, pde, d, &scratch.p, &mut scratch.flux);
            derive_gemm_aos(plan, d, &scratch.flux, &mut scratch.ptemp, true);
            if has_ncp {
                derive_gemm_aos(plan, d, &scratch.p, &mut scratch.grad_q, false);
                for k in 0..vol {
                    pde.ncp(
                        d,
                        &scratch.p[k * m_pad..k * m_pad + m],
                        &scratch.grad_q[k * m_pad..k * m_pad + m],
                        &mut scratch.ncp,
                    );
                    for s in 0..m {
                        scratch.ptemp[k * m_pad + s] += scratch.ncp[s];
                    }
                }
            }
        }
        if let Some(src) = inputs.source {
            let amp = &src.derivs[o];
            for k in 0..vol {
                let c = src.node_coeffs[k];
                for (s, &a) in amp.iter().enumerate() {
                    scratch.ptemp[k * m_pad + s] += c * a;
                }
            }
        }
        // Carry the material parameters along (they are not evolved):
        // `p` still holds the previous term with valid parameters.
        {
            let SplitCkScratch { p, ptemp, .. } = scratch;
            for k in 0..vol {
                ptemp[k * m_pad + vars..k * m_pad + m]
                    .copy_from_slice(&p[k * m_pad + vars..k * m_pad + m]);
            }
        }
        std::mem::swap(&mut scratch.p, &mut scratch.ptemp);
        // qavg += c_{o+1} · p[o+1].
        let c = coef[o + 1];
        for (qa, pv) in out.qavg.iter_mut().zip(scratch.p.iter()) {
            *qa += c * pv;
        }
    }

    // q̄ carries the original parameters — restore them *before* the flux
    // recomputation so the user functions see valid media.
    for k in 0..vol {
        out.qavg[k * m_pad + vars..k * m_pad + m]
            .copy_from_slice(&inputs.q0[k * m_pad + vars..k * m_pad + m]);
    }

    // Recompute the time-averaged flux from the time-averaged state
    // (Fig. 5's post-loop; linearity of F).
    for d in 0..3 {
        flux_pointwise_aos(plan, pde, d, &out.qavg, &mut scratch.flux);
        out.favg[d].as_mut_slice().copy_from_slice(&scratch.flux);
    }

    project_faces(plan, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::generic::{stp_generic, GenericScratch};
    use crate::kernels::log::{stp_log, LogScratch};
    use crate::plan::{CellSource, StpConfig};
    use aderdg_pde::{Acoustic, AdvectionNcpSystem, AdvectionSystem, LinearPde};

    fn random_state(plan: &StpPlan, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let m = plan.m();
        let m_pad = plan.aos.m_pad();
        let mut q = vec![0.0; plan.aos.len()];
        for k in 0..plan.n().pow(3) {
            for s in 0..m {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                q[k * m_pad + s] = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            }
        }
        q
    }

    fn compare_with_generic(
        plan: &StpPlan,
        pde: &dyn LinearPde,
        q0: &[f64],
        source: Option<&CellSource>,
        tol: f64,
    ) {
        let inputs = StpInputs {
            q0,
            dt: 0.015,
            source,
        };
        let mut out_g = StpOutputs::new(plan);
        stp_generic(
            plan,
            pde,
            &mut GenericScratch::new(plan),
            &inputs,
            &mut out_g,
        );
        let mut out_s = StpOutputs::new(plan);
        stp_splitck(
            plan,
            pde,
            &mut SplitCkScratch::new(plan),
            &inputs,
            &mut out_s,
        );
        for (i, (a, b)) in out_s.qavg.iter().zip(out_g.qavg.iter()).enumerate() {
            assert!(
                (a - b).abs() < tol * (1.0 + b.abs()),
                "qavg[{i}]: {a} vs {b}"
            );
        }
        for d in 0..3 {
            for (i, (a, b)) in out_s.favg[d].iter().zip(out_g.favg[d].iter()).enumerate() {
                assert!(
                    (a - b).abs() < tol * (1.0 + b.abs()),
                    "favg{d}[{i}]: {a} vs {b}"
                );
            }
        }
        for f in 0..6 {
            for (a, b) in out_s.qface[f].iter().zip(out_g.qface[f].iter()) {
                assert!((a - b).abs() < tol * (1.0 + b.abs()));
            }
            for (a, b) in out_s.fface[f].iter().zip(out_g.fface[f].iter()) {
                assert!((a - b).abs() < tol * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn splitck_matches_generic_advection() {
        for (n, m) in [(3, 2), (4, 7), (6, 4)] {
            let plan = StpPlan::new(StpConfig::new(n, m), [1.0, 0.5, 2.0]);
            let pde = AdvectionSystem::new(m, [0.9, -0.2, 0.45]);
            let q0 = random_state(&plan, (13 * n + m) as u64);
            compare_with_generic(&plan, &pde, &q0, None, 1e-11);
        }
    }

    #[test]
    fn splitck_matches_generic_ncp() {
        let plan = StpPlan::new(StpConfig::new(5, 2), [1.0; 3]);
        let pde = AdvectionNcpSystem::new(2, [0.3, 0.8, -0.5]);
        let q0 = random_state(&plan, 4242);
        compare_with_generic(&plan, &pde, &q0, None, 1e-11);
    }

    #[test]
    fn splitck_matches_generic_acoustic_with_params() {
        let plan = StpPlan::new(StpConfig::new(4, 6), [1.0; 3]);
        let pde = Acoustic;
        let mut q0 = random_state(&plan, 7);
        // Overwrite parameter slots with physical values.
        let m_pad = plan.aos.m_pad();
        for k in 0..64 {
            q0[k * m_pad + 4] = 1.2 + 0.01 * (k % 5) as f64;
            q0[k * m_pad + 5] = 3.0;
        }
        compare_with_generic(&plan, &pde, &q0, None, 1e-11);
    }

    #[test]
    fn splitck_matches_generic_and_log_with_point_source() {
        let plan = StpPlan::new(StpConfig::new(4, 3), [1.0; 3]);
        let pde = AdvectionSystem::new(3, [0.5, 0.1, -0.3]);
        let q0 = random_state(&plan, 11);
        // Source with nontrivial derivatives in every order slot.
        let derivs: Vec<Vec<f64>> = (0..=4)
            .map(|o| {
                (0..3)
                    .map(|s| 0.3 * (o + 1) as f64 * (s as f64 - 1.0))
                    .collect()
            })
            .collect();
        let src = CellSource::project(&plan, [0.3, 0.6, 0.2], [1.0; 3], derivs);
        compare_with_generic(&plan, &pde, &q0, Some(&src), 1e-11);

        // And LoG with the same source agrees too.
        let inputs = StpInputs {
            q0: &q0,
            dt: 0.015,
            source: Some(&src),
        };
        let mut out_l = StpOutputs::new(&plan);
        stp_log(
            &plan,
            &pde,
            &mut LogScratch::new(&plan),
            &inputs,
            &mut out_l,
        );
        let mut out_s = StpOutputs::new(&plan);
        stp_splitck(
            &plan,
            &pde,
            &mut SplitCkScratch::new(&plan),
            &inputs,
            &mut out_s,
        );
        for (a, b) in out_s.qavg.iter().zip(out_l.qavg.iter()) {
            assert!((a - b).abs() < 1e-11 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn footprint_is_order_of_magnitude_below_generic() {
        let plan = StpPlan::new(StpConfig::new(8, 21), [1.0; 3]);
        let split = SplitCkScratch::new(&plan).footprint_bytes();
        let generic = GenericScratch::new(&plan).footprint_bytes();
        assert!(
            generic as f64 / split as f64 > 5.0,
            "generic={generic} split={split}"
        );
    }
}

use super::{downcast_scratch, impl_stp_scratch, StpKernel, StpScratch};

impl_stp_scratch!(SplitCkScratch);

/// Registry entry for the dimension-split Cauchy-Kowalewsky variant
/// (Fig. 5 / Sec. IV).
#[derive(Debug, Clone, Copy)]
pub struct SplitCkKernel;

impl StpKernel for SplitCkKernel {
    fn name(&self) -> &'static str {
        "splitck"
    }

    fn label(&self) -> &'static str {
        "SplitCK"
    }

    fn make_scratch(&self, plan: &StpPlan) -> Box<dyn StpScratch> {
        Box::new(SplitCkScratch::new(plan))
    }

    fn run(
        &self,
        plan: &StpPlan,
        pde: &dyn LinearPde,
        scratch: &mut dyn StpScratch,
        inputs: &StpInputs<'_>,
        out: &mut StpOutputs,
    ) {
        stp_splitck(plan, pde, downcast_scratch(scratch), inputs, out);
    }
}
