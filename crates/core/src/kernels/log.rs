//! The Loop-over-GEMM Space-Time Predictor — paper Sec. III.
//!
//! Same algorithm as the generic kernel (the user API must not change),
//! but on SIMD-padded, aligned AoS tensors, with every tensor derivative
//! expressed as a batch of small matrix multiplications on tensor matrix
//! slices (offset + slice stride, Fig. 3) executed by the planned GEMM
//! kernels. The per-order tensors are still all kept in memory — the
//! `O(N^{d+1} m d)` footprint that Sec. IV identifies as this variant's
//! L2-capacity bottleneck.

use super::{project_faces, StpInputs, StpOutputs};
use crate::plan::StpPlan;
use aderdg_pde::LinearPde;
use aderdg_tensor::AlignedVec;

/// Temporaries of the LoG kernel — identical shape to the generic
/// scratch, but padded and aligned.
#[derive(Debug, Clone)]
pub struct LogScratch {
    /// `p[o]`, `o = 0..=N`, padded AoS.
    p: Vec<AlignedVec>,
    /// `flux[o][d]`, `o = 0..=N`.
    flux: Vec<[AlignedVec; 3]>,
    /// `dF[o][d]`, `o = 0..N`.
    d_f: Vec<[AlignedVec; 3]>,
    /// `gradQ[o][d]`, `o = 0..N`.
    grad_q: Vec<[AlignedVec; 3]>,
    /// Pointwise ncp result buffer.
    ncp: Vec<f64>,
}

impl LogScratch {
    /// Allocates the padded per-order tensors.
    pub fn new(plan: &StpPlan) -> Self {
        let n = plan.n();
        let vol = plan.aos.len();
        let tens = || AlignedVec::zeroed(vol);
        let tri = || [tens(), tens(), tens()];
        Self {
            p: (0..=n).map(|_| tens()).collect(),
            flux: (0..=n).map(|_| tri()).collect(),
            d_f: (0..n).map(|_| tri()).collect(),
            grad_q: (0..n).map(|_| tri()).collect(),
            ncp: vec![0.0; plan.m()],
        }
    }

    /// Bytes of temporary storage (padded — slightly above the analytic
    /// unpadded formula).
    pub fn footprint_bytes(&self) -> usize {
        let count: usize = self.p.iter().map(AlignedVec::len).sum::<usize>()
            + self
                .flux
                .iter()
                .chain(self.d_f.iter())
                .chain(self.grad_q.iter())
                .map(|t| t[0].len() * 3)
                .sum::<usize>();
        count * 8
    }
}

/// Derivative along `d` of a padded AoS tensor as a Loop-over-GEMM:
/// `dst = inv_dx · D ⨂_d src` (+ `dst` if `accumulate`).
pub(crate) fn derive_gemm_aos(
    plan: &StpPlan,
    d: usize,
    src: &[f64],
    dst: &mut [f64],
    accumulate: bool,
) {
    let gemm = if accumulate {
        &plan.gemm_aos_acc[d]
    } else {
        &plan.gemm_aos[d]
    };
    let (batches, stride) = plan.aos_batches(d);
    let diff = &plan.basis.diff;
    for b in 0..batches {
        gemm.execute_offset(diff, 0, src, b * stride, dst, b * stride);
    }
}

/// Pointwise flux sweep over a padded AoS tensor (the user functions stay
/// scalar in this variant — the Sec. V motivation).
pub(crate) fn flux_pointwise_aos(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    d: usize,
    src: &[f64],
    dst: &mut [f64],
) {
    let m = plan.m();
    let m_pad = plan.aos.m_pad();
    let vol = plan.n().pow(3);
    for k in 0..vol {
        pde.flux(
            d,
            &src[k * m_pad..k * m_pad + m],
            &mut dst[k * m_pad..k * m_pad + m],
        );
    }
}

/// Runs the LoG predictor.
pub fn stp_log(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    scratch: &mut LogScratch,
    inputs: &StpInputs<'_>,
    out: &mut StpOutputs,
) {
    let n = plan.n();
    let m = plan.m();
    let vars = pde.num_vars();
    let m_pad = plan.aos.m_pad();
    let vol = n * n * n;
    let has_ncp = pde.has_ncp();

    scratch.p[0]
        .as_mut_slice()
        .copy_from_slice(&inputs.q0[..plan.aos.len()]);

    for o in 0..n {
        let (head, tail) = scratch.p.split_at_mut(o + 1);
        let p_o = &head[o];
        let p_next = &mut tail[0];

        for d in 0..3 {
            flux_pointwise_aos(plan, pde, d, p_o, &mut scratch.flux[o][d]);
        }
        for d in 0..3 {
            derive_gemm_aos(plan, d, &scratch.flux[o][d], &mut scratch.d_f[o][d], false);
        }
        if has_ncp {
            for d in 0..3 {
                derive_gemm_aos(plan, d, p_o, &mut scratch.grad_q[o][d], false);
                let grad = &scratch.grad_q[o][d];
                let d_f = &mut scratch.d_f[o][d];
                for k in 0..vol {
                    pde.ncp(
                        d,
                        &p_o[k * m_pad..k * m_pad + m],
                        &grad[k * m_pad..k * m_pad + m],
                        &mut scratch.ncp,
                    );
                    for s in 0..m {
                        d_f[k * m_pad + s] += scratch.ncp[s];
                    }
                }
            }
        }
        // p[o+1] = Σ_d dF[o][d] — full padded arrays, vectorizable.
        p_next.fill_zero();
        for d in 0..3 {
            for (pv, dv) in p_next.iter_mut().zip(scratch.d_f[o][d].iter()) {
                *pv += dv;
            }
        }
        if let Some(src) = inputs.source {
            let amp = &src.derivs[o];
            for k in 0..vol {
                let c = src.node_coeffs[k];
                for (s, &a) in amp.iter().enumerate() {
                    p_next[k * m_pad + s] += c * a;
                }
            }
        }
        // Carry the material parameters along (they are not evolved).
        let p0 = &head[0];
        for k in 0..vol {
            p_next[k * m_pad + vars..k * m_pad + m]
                .copy_from_slice(&p0[k * m_pad + vars..k * m_pad + m]);
        }
    }

    for d in 0..3 {
        let (head, tail) = scratch.flux.split_at_mut(n);
        let _ = head;
        let flux_last = &mut tail[0][d];
        flux_pointwise_aos(plan, pde, d, &scratch.p[n], flux_last);
    }

    // Time averages over the padded arrays (packed accumulation).
    let coef = plan.taylor(inputs.dt);
    out.qavg.fill_zero();
    for f in out.favg.iter_mut() {
        f.fill_zero();
    }
    for o in 0..=n {
        let c = coef[o];
        for (qa, pv) in out.qavg.iter_mut().zip(scratch.p[o].iter()) {
            *qa += c * pv;
        }
        for d in 0..3 {
            for (fa, fv) in out.favg[d].iter_mut().zip(scratch.flux[o][d].iter()) {
                *fa += c * fv;
            }
        }
    }
    // q̄ carries the original parameters (see the generic kernel).
    for k in 0..vol {
        out.qavg[k * m_pad + vars..k * m_pad + m]
            .copy_from_slice(&inputs.q0[k * m_pad + vars..k * m_pad + m]);
    }

    project_faces(plan, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::generic::{stp_generic, GenericScratch};
    use crate::plan::StpConfig;
    use aderdg_pde::{AdvectionNcpSystem, AdvectionSystem};

    fn random_state(plan: &StpPlan, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let m = plan.m();
        let m_pad = plan.aos.m_pad();
        let mut q = vec![0.0; plan.aos.len()];
        for k in 0..plan.n().pow(3) {
            for s in 0..m {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                q[k * m_pad + s] = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            }
        }
        q
    }

    fn assert_outputs_close(a: &StpOutputs, b: &StpOutputs, tol: f64) {
        let close = |x: &[f64], y: &[f64], what: &str| {
            for (i, (u, v)) in x.iter().zip(y).enumerate() {
                assert!(
                    (u - v).abs() < tol * (1.0 + v.abs()),
                    "{what}[{i}]: {u} vs {v}"
                );
            }
        };
        close(&a.qavg, &b.qavg, "qavg");
        for d in 0..3 {
            close(&a.favg[d], &b.favg[d], "favg");
        }
        for f in 0..6 {
            close(&a.qface[f], &b.qface[f], "qface");
            close(&a.fface[f], &b.fface[f], "fface");
        }
    }

    #[test]
    fn log_matches_generic_flux_pde() {
        for (n, m) in [(3, 1), (4, 5), (5, 9)] {
            let plan = StpPlan::new(StpConfig::new(n, m), [0.8, 1.0, 1.25]);
            let pde = AdvectionSystem::new(m, [0.7, -0.3, 0.2]);
            let q0 = random_state(&plan, (n * 100 + m) as u64);
            let inputs = StpInputs {
                q0: &q0,
                dt: 0.02,
                source: None,
            };
            let mut out_g = StpOutputs::new(&plan);
            stp_generic(
                &plan,
                &pde,
                &mut GenericScratch::new(&plan),
                &inputs,
                &mut out_g,
            );
            let mut out_l = StpOutputs::new(&plan);
            stp_log(
                &plan,
                &pde,
                &mut LogScratch::new(&plan),
                &inputs,
                &mut out_l,
            );
            assert_outputs_close(&out_l, &out_g, 1e-12);
        }
    }

    #[test]
    fn log_matches_generic_ncp_pde() {
        let plan = StpPlan::new(StpConfig::new(4, 3), [1.0; 3]);
        let pde = AdvectionNcpSystem::new(3, [0.4, 0.9, -0.6]);
        let q0 = random_state(&plan, 99);
        let inputs = StpInputs {
            q0: &q0,
            dt: 0.03,
            source: None,
        };
        let mut out_g = StpOutputs::new(&plan);
        stp_generic(
            &plan,
            &pde,
            &mut GenericScratch::new(&plan),
            &inputs,
            &mut out_g,
        );
        let mut out_l = StpOutputs::new(&plan);
        stp_log(
            &plan,
            &pde,
            &mut LogScratch::new(&plan),
            &inputs,
            &mut out_l,
        );
        assert_outputs_close(&out_l, &out_g, 1e-12);
    }

    #[test]
    fn derive_gemm_matches_scalar_reference() {
        use crate::kernels::generic;
        let plan = StpPlan::new(StpConfig::new(5, 4), [1.0, 2.0, 0.5]);
        let n = 5;
        let m = 4;
        let m_pad = plan.aos.m_pad();
        let q = random_state(&plan, 7);
        for d in 0..3 {
            let mut dst = vec![0.0; plan.aos.len()];
            derive_gemm_aos(&plan, d, &q, &mut dst, false);
            // Scalar reference on the unpadded copy.
            let mut src_u = vec![0.0; n * n * n * m];
            for k in 0..n * n * n {
                src_u[k * m..(k + 1) * m].copy_from_slice(&q[k * m_pad..k * m_pad + m]);
            }
            let mut dst_u = vec![0.0; n * n * n * m];
            generic::derive_scalar(
                n,
                m,
                &plan.basis.diff,
                plan.inv_dx[d],
                d,
                &src_u,
                &mut dst_u,
            );
            for k in 0..n * n * n {
                for s in 0..m {
                    assert!(
                        (dst[k * m_pad + s] - dst_u[k * m + s]).abs() < 1e-11,
                        "d={d} k={k} s={s}"
                    );
                }
            }
        }
    }
}

use super::{downcast_scratch, impl_stp_scratch, StpKernel, StpScratch};

impl_stp_scratch!(LogScratch);

/// Registry entry for the Loop-over-GEMM variant (Sec. III).
#[derive(Debug, Clone, Copy)]
pub struct LogKernel;

impl StpKernel for LogKernel {
    fn name(&self) -> &'static str {
        "log"
    }

    fn label(&self) -> &'static str {
        "LoG"
    }

    fn make_scratch(&self, plan: &StpPlan) -> Box<dyn StpScratch> {
        Box::new(LogScratch::new(plan))
    }

    fn run(
        &self,
        plan: &StpPlan,
        pde: &dyn LinearPde,
        scratch: &mut dyn StpScratch,
        inputs: &StpInputs<'_>,
        out: &mut StpOutputs,
    ) {
        stp_log(plan, pde, downcast_scratch(scratch), inputs, out);
    }
}
