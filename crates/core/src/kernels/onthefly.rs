//! The *rejected* alternative of paper Sec. V-A: SplitCK on the AoS
//! layout, with on-the-fly AoS → SoA → AoS transposes around every
//! vectorized user-function call.
//!
//! The paper tested this design and found it effective only for complex
//! non-linear user functions; for the cheap linear fluxes of seismic
//! applications the transposition cost eats the vectorization gain, which
//! motivated the AoSoA layout. It is implemented here as a fifth kernel so
//! the ablation bench can reproduce that comparison (it is *not* part of
//! the paper's four measured variants).

use super::{project_faces, StpInputs, StpOutputs};
use crate::kernels::log::derive_gemm_aos;
use crate::plan::StpPlan;
use aderdg_pde::LinearPde;
use aderdg_tensor::AlignedVec;

/// SplitCK scratch plus two SoA line buffers for the per-call transposes.
#[derive(Debug, Clone)]
pub struct OnTheFlyScratch {
    p: AlignedVec,
    ptemp: AlignedVec,
    flux: AlignedVec,
    grad_q: AlignedVec,
    /// Gathered SoA input line (`m × n_pad`).
    line_q: AlignedVec,
    /// SoA output line.
    line_f: AlignedVec,
    /// Second gathered line (ncp gradient).
    line_g: AlignedVec,
}

impl OnTheFlyScratch {
    /// Allocates the working set.
    pub fn new(plan: &StpPlan) -> Self {
        let vol = plan.aos.len();
        let line = plan.m() * plan.aosoa.n_pad();
        Self {
            p: AlignedVec::zeroed(vol),
            ptemp: AlignedVec::zeroed(vol),
            flux: AlignedVec::zeroed(vol),
            grad_q: AlignedVec::zeroed(vol),
            line_q: AlignedVec::zeroed(line),
            line_f: AlignedVec::zeroed(line),
            line_g: AlignedVec::zeroed(line),
        }
    }

    /// Bytes of temporary storage.
    pub fn footprint_bytes(&self) -> usize {
        (self.p.len() * 4 + self.line_q.len() * 3) * 8
    }
}

/// Gathers the AoS x-line at `(k3, k2)` into an SoA block.
#[inline]
fn gather_line(plan: &StpPlan, src: &[f64], plane: usize, dst: &mut [f64]) {
    let n = plan.n();
    let m = plan.m();
    let m_pad = plan.aos.m_pad();
    let n_pad = plan.aosoa.n_pad();
    let base = plane * n * m_pad;
    for k1 in 0..n {
        let node = &src[base + k1 * m_pad..base + k1 * m_pad + m];
        for (s, &v) in node.iter().enumerate() {
            dst[s * n_pad + k1] = v;
        }
    }
}

/// Scatters an SoA block back into the AoS x-line at `(k3, k2)`.
#[inline]
fn scatter_line(plan: &StpPlan, src: &[f64], plane: usize, dst: &mut [f64]) {
    let n = plan.n();
    let m = plan.m();
    let m_pad = plan.aos.m_pad();
    let n_pad = plan.aosoa.n_pad();
    let base = plane * n * m_pad;
    for k1 in 0..n {
        let node = &mut dst[base + k1 * m_pad..base + k1 * m_pad + m];
        for (s, v) in node.iter_mut().enumerate() {
            *v = src[s * n_pad + k1];
        }
    }
}

/// Vectorized flux sweep with per-line gather/scatter transposes — the
/// Sec. V-A pattern whose cost the AoSoA layout eliminates.
fn flux_onthefly(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    d: usize,
    src: &[f64],
    dst: &mut [f64],
    line_q: &mut [f64],
    line_f: &mut [f64],
) {
    let n = plan.n();
    let n_pad = plan.aosoa.n_pad();
    for plane in 0..n * n {
        gather_line(plan, src, plane, line_q);
        pde.flux_vect(d, line_q, line_f, n, n_pad);
        scatter_line(plan, line_f, plane, dst);
    }
}

/// Runs the on-the-fly-transpose SplitCK predictor.
pub fn stp_onthefly(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    scratch: &mut OnTheFlyScratch,
    inputs: &StpInputs<'_>,
    out: &mut StpOutputs,
) {
    let n = plan.n();
    let m = plan.m();
    let vars = pde.num_vars();
    let m_pad = plan.aos.m_pad();
    let n_pad = plan.aosoa.n_pad();
    let vol = n * n * n;
    let has_ncp = pde.has_ncp();
    let coef = plan.taylor(inputs.dt);

    scratch
        .p
        .as_mut_slice()
        .copy_from_slice(&inputs.q0[..plan.aos.len()]);
    for (qa, pv) in out.qavg.iter_mut().zip(scratch.p.iter()) {
        *qa = coef[0] * pv;
    }

    for o in 0..n {
        scratch.ptemp.fill_zero();
        for d in 0..3 {
            {
                let OnTheFlyScratch {
                    p,
                    flux,
                    line_q,
                    line_f,
                    ..
                } = scratch;
                flux_onthefly(plan, pde, d, p, flux, line_q, line_f);
            }
            derive_gemm_aos(plan, d, &scratch.flux, &mut scratch.ptemp, true);
            if has_ncp {
                derive_gemm_aos(plan, d, &scratch.p, &mut scratch.grad_q, false);
                let OnTheFlyScratch {
                    p,
                    ptemp,
                    grad_q,
                    line_q,
                    line_f,
                    line_g,
                    ..
                } = scratch;
                for plane in 0..n * n {
                    gather_line(plan, p, plane, line_q);
                    gather_line(plan, grad_q, plane, line_g);
                    pde.ncp_vect(d, line_q, line_g, line_f, n, n_pad);
                    // Accumulate the scattered result into ptemp.
                    let base = plane * n * m_pad;
                    for k1 in 0..n {
                        for s in 0..m {
                            ptemp[base + k1 * m_pad + s] += line_f[s * n_pad + k1];
                        }
                    }
                }
            }
        }
        if let Some(src) = inputs.source {
            let amp = &src.derivs[o];
            for k in 0..vol {
                let c = src.node_coeffs[k];
                for (s, &a) in amp.iter().enumerate() {
                    scratch.ptemp[k * m_pad + s] += c * a;
                }
            }
        }
        {
            let OnTheFlyScratch { p, ptemp, .. } = scratch;
            for k in 0..vol {
                ptemp[k * m_pad + vars..k * m_pad + m]
                    .copy_from_slice(&p[k * m_pad + vars..k * m_pad + m]);
            }
        }
        std::mem::swap(&mut scratch.p, &mut scratch.ptemp);
        let c = coef[o + 1];
        for (qa, pv) in out.qavg.iter_mut().zip(scratch.p.iter()) {
            *qa += c * pv;
        }
    }

    for k in 0..vol {
        out.qavg[k * m_pad + vars..k * m_pad + m]
            .copy_from_slice(&inputs.q0[k * m_pad + vars..k * m_pad + m]);
    }
    for d in 0..3 {
        {
            let OnTheFlyScratch {
                flux,
                line_q,
                line_f,
                ..
            } = scratch;
            flux_onthefly(plan, pde, d, &out.qavg, flux, line_q, line_f);
        }
        out.favg[d].as_mut_slice().copy_from_slice(&scratch.flux);
    }

    project_faces(plan, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::generic::{stp_generic, GenericScratch};
    use crate::plan::StpConfig;
    use aderdg_pde::{AdvectionNcpSystem, Elastic, Material};

    fn random_state(plan: &StpPlan, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        let m_pad = plan.aos.m_pad();
        let mut q = vec![0.0; plan.aos.len()];
        for k in 0..plan.n().pow(3) {
            for s in 0..plan.m() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                q[k * m_pad + s] = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            }
        }
        q
    }

    #[test]
    fn onthefly_matches_generic_elastic() {
        let plan = StpPlan::new(StpConfig::new(4, 21), [1.0; 3]);
        let pde = Elastic;
        let mut q0 = random_state(&plan, 5);
        let m_pad = plan.aos.m_pad();
        let mat = Material {
            rho: 2.7,
            cp: 6.0,
            cs: 3.46,
        };
        for k in 0..64 {
            Elastic::set_params(
                &mut q0[k * m_pad..k * m_pad + 21],
                mat,
                &Elastic::IDENTITY_JAC,
            );
        }
        let inputs = StpInputs {
            q0: &q0,
            dt: 1e-3,
            source: None,
        };
        let mut out_g = StpOutputs::new(&plan);
        stp_generic(
            &plan,
            &pde,
            &mut GenericScratch::new(&plan),
            &inputs,
            &mut out_g,
        );
        let mut out_o = StpOutputs::new(&plan);
        stp_onthefly(
            &plan,
            &pde,
            &mut OnTheFlyScratch::new(&plan),
            &inputs,
            &mut out_o,
        );
        for (i, (a, b)) in out_o.qavg.iter().zip(out_g.qavg.iter()).enumerate() {
            assert!((a - b).abs() < 1e-11 * (1.0 + b.abs()), "qavg[{i}]");
        }
        for f in 0..6 {
            for (a, b) in out_o.fface[f].iter().zip(out_g.fface[f].iter()) {
                assert!((a - b).abs() < 1e-11 * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn onthefly_matches_generic_ncp() {
        let plan = StpPlan::new(StpConfig::new(5, 3), [1.0; 3]);
        let pde = AdvectionNcpSystem::new(3, [0.7, -0.4, 0.2]);
        let q0 = random_state(&plan, 17);
        let inputs = StpInputs {
            q0: &q0,
            dt: 0.02,
            source: None,
        };
        let mut out_g = StpOutputs::new(&plan);
        stp_generic(
            &plan,
            &pde,
            &mut GenericScratch::new(&plan),
            &inputs,
            &mut out_g,
        );
        let mut out_o = StpOutputs::new(&plan);
        stp_onthefly(
            &plan,
            &pde,
            &mut OnTheFlyScratch::new(&plan),
            &inputs,
            &mut out_o,
        );
        for (a, b) in out_o.qavg.iter().zip(out_g.qavg.iter()) {
            assert!((a - b).abs() < 1e-11 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn footprint_close_to_splitck() {
        use crate::kernels::splitck::SplitCkScratch;
        let plan = StpPlan::new(StpConfig::new(8, 21), [1.0; 3]);
        let otf = OnTheFlyScratch::new(&plan).footprint_bytes();
        let split = SplitCkScratch::new(&plan).footprint_bytes();
        assert!((otf as f64 / split as f64) < 1.2);
    }
}

use super::{downcast_scratch, impl_stp_scratch, StpKernel, StpScratch};

impl_stp_scratch!(OnTheFlyScratch);

/// Registry entry for the rejected on-the-fly-transpose design (Sec. V-A),
/// registered so the ablation harness and the equivalence matrix exercise
/// it like any other kernel.
#[derive(Debug, Clone, Copy)]
pub struct OnTheFlyKernel;

impl StpKernel for OnTheFlyKernel {
    fn name(&self) -> &'static str {
        "onthefly"
    }

    fn label(&self) -> &'static str {
        "on-the-fly SplitCK"
    }

    fn make_scratch(&self, plan: &StpPlan) -> Box<dyn StpScratch> {
        Box::new(OnTheFlyScratch::new(plan))
    }

    fn run(
        &self,
        plan: &StpPlan,
        pde: &dyn LinearPde,
        scratch: &mut dyn StpScratch,
        inputs: &StpInputs<'_>,
        out: &mut StpOutputs,
    ) {
        stp_onthefly(plan, pde, downcast_scratch(scratch), inputs, out);
    }
}
