//! The Space-Time Predictor kernel layer.
//!
//! All kernels share one contract: given the cell's current DOFs (padded
//! AoS), the time step, and an optional projected point source, produce
//!
//! * `qavg` — the time-integrated state `q̄ = ∫ q dt` (eq. 4),
//! * `favg[d]` — the time-integrated flux tensors `F̄_d = F_d(q̄)`
//!   (linearity, Sec. IV-B),
//! * `qface`, `fface` — `q̄` and the normal flux projected onto the six
//!   faces (inputs of the corrector / Riemann solve, Sec. II-B).
//!
//! The variants differ only in algorithm and data layout — which is the
//! paper's entire subject — and must agree to floating-point tolerance,
//! which the registry-driven equivalence tests enforce for **every**
//! registered kernel.
//!
//! The layer is open: a kernel is any implementation of [`StpKernel`]
//! (name, scratch factory, run), registered with the
//! [`KernelRegistry`](crate::registry::KernelRegistry). Adding a variant
//! is one new module plus one registration line; the engine, the solver
//! spec, the equivalence tests and the figure harnesses all resolve
//! kernels through the registry and pick the newcomer up automatically.

pub mod aosoa;
pub mod generic;
pub mod log;
pub mod onthefly;
pub mod splitck;

use crate::block::BlockInputs;
use crate::faceproj;
use crate::plan::{CellSource, StpPlan};
use aderdg_pde::LinearPde;
use aderdg_tensor::AlignedVec;
use std::any::Any;

/// Inputs of one predictor invocation.
#[derive(Debug, Clone, Copy)]
pub struct StpInputs<'a> {
    /// Current DOFs in padded AoS layout (`plan.aos`).
    pub q0: &'a [f64],
    /// Time-step length.
    pub dt: f64,
    /// Point source projected onto this cell, if any.
    pub source: Option<&'a CellSource>,
}

/// Outputs of one predictor invocation (buffers owned by the caller and
/// reused across cells).
#[derive(Debug, Clone)]
pub struct StpOutputs {
    /// Time-integrated DOFs, padded AoS.
    pub qavg: AlignedVec,
    /// Time-integrated flux tensor per dimension, padded AoS.
    pub favg: [AlignedVec; 3],
    /// `q̄` projected onto the six faces (−x, +x, −y, +y, −z, +z).
    pub qface: [AlignedVec; 6],
    /// Normal time-integrated flux projected onto the six faces.
    pub fface: [AlignedVec; 6],
}

impl StpOutputs {
    /// Allocates zeroed output buffers matching `plan`.
    pub fn new(plan: &StpPlan) -> Self {
        let vol = plan.aos.len();
        let face = plan.face.len();
        Self {
            qavg: AlignedVec::zeroed(vol),
            favg: std::array::from_fn(|_| AlignedVec::zeroed(vol)),
            qface: std::array::from_fn(|_| AlignedVec::zeroed(face)),
            fface: std::array::from_fn(|_| AlignedVec::zeroed(face)),
        }
    }
}

/// Reusable, kernel-specific scratch buffers (their sizes *are* the
/// memory-footprint story of the paper).
///
/// Object-safe so the engine can hold scratch for any registered kernel;
/// kernels recover their concrete type through [`StpScratch::as_any_mut`].
pub trait StpScratch: Send {
    /// Total bytes of temporary storage this kernel allocated — the
    /// measured counterpart of the Sec. IV-A footprint formulas.
    fn footprint_bytes(&self) -> usize;

    /// Downcast hook for [`StpKernel::run`] implementations.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Implements [`StpScratch`] for a concrete scratch type that already has
/// inherent `footprint_bytes(&self) -> usize`.
macro_rules! impl_stp_scratch {
    ($ty:ty) => {
        impl crate::kernels::StpScratch for $ty {
            fn footprint_bytes(&self) -> usize {
                <$ty>::footprint_bytes(self)
            }

            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
    };
}
pub(crate) use impl_stp_scratch;

/// Downcasts a `&mut dyn StpScratch` to the concrete scratch type a kernel
/// allocated in its `make_scratch`.
///
/// # Panics
/// If `scratch` was produced by a different kernel — pairing scratch and
/// kernel is the caller's contract, as it was with the former closed enum.
pub fn downcast_scratch<S: StpScratch + 'static>(scratch: &mut dyn StpScratch) -> &mut S {
    scratch
        .as_any_mut()
        .downcast_mut::<S>()
        // PANIC-OK: documented contract (`# Panics` above) — mispairing
        // scratch and kernel is a programming error.
        .expect("scratch buffer does not belong to this kernel")
}

/// An open-ended Space-Time Predictor implementation.
///
/// Object-safe: the engine and the figure harnesses work exclusively with
/// `&'static dyn StpKernel` resolved from the
/// [`KernelRegistry`](crate::registry::KernelRegistry).
pub trait StpKernel: Send + Sync {
    /// Registry key and specification-file name (e.g. `splitck`).
    fn name(&self) -> &'static str;

    /// Human-readable label used by the figure harnesses (defaults to
    /// [`name`](StpKernel::name)).
    fn label(&self) -> &'static str {
        self.name()
    }

    /// Allocates this kernel's scratch buffers for `plan`.
    fn make_scratch(&self, plan: &StpPlan) -> Box<dyn StpScratch>;

    /// Runs the predictor. `scratch` must come from this kernel's
    /// [`make_scratch`](StpKernel::make_scratch).
    fn run(
        &self,
        plan: &StpPlan,
        pde: &dyn LinearPde,
        scratch: &mut dyn StpScratch,
        inputs: &StpInputs<'_>,
        out: &mut StpOutputs,
    );

    /// Allocates scratch for block invocations of up to `capacity` cells
    /// ([`run_block`](StpKernel::run_block)).
    ///
    /// The default returns per-cell scratch, matching the default
    /// `run_block` fallback; kernels with a real block implementation
    /// override both together.
    fn make_block_scratch(&self, plan: &StpPlan, capacity: usize) -> Box<dyn StpScratch> {
        let _ = capacity;
        self.make_scratch(plan)
    }

    /// Runs the predictor over a staged cell block, writing one
    /// [`StpOutputs`] per staged cell. `scratch` must come from this
    /// kernel's [`make_block_scratch`](StpKernel::make_block_scratch)
    /// with a capacity of at least `inputs.len()`.
    ///
    /// The default loops [`run`](StpKernel::run) over the block's cells,
    /// so every kernel works under the engine's block pipeline; variants
    /// opt into genuine batching (amortized operator loads, batched
    /// GEMMs) by overriding this method — see [`generic`] and
    /// [`aosoa`].
    fn run_block(
        &self,
        plan: &StpPlan,
        pde: &dyn LinearPde,
        scratch: &mut dyn StpScratch,
        inputs: &BlockInputs<'_>,
        out: &mut [StpOutputs],
    ) {
        assert_eq!(inputs.len(), out.len(), "one output per staged cell");
        for (i, cell_out) in out.iter_mut().enumerate() {
            self.run(plan, pde, scratch, &inputs.cell_inputs(i), cell_out);
        }
    }

    /// Bytes of temporary storage this kernel would allocate under `plan`.
    fn footprint_bytes(&self, plan: &StpPlan) -> usize {
        self.make_scratch(plan).footprint_bytes()
    }
}

impl std::fmt::Debug for dyn StpKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StpKernel")
            .field("name", &self.name())
            .finish()
    }
}

/// Shared epilogue: projects `qavg` / `favg` onto the six faces.
pub(crate) fn project_faces(plan: &StpPlan, out: &mut StpOutputs) {
    for d in 0..3 {
        for side in 0..2 {
            let f = 2 * d + side;
            faceproj::project_to_face(plan, &out.qavg, d, side, &mut out.qface[f]);
            faceproj::project_to_face(plan, &out.favg[d], d, side, &mut out.fface[f]);
        }
    }
}
