//! The four Space-Time Predictor kernel variants.
//!
//! All variants share one contract: given the cell's current DOFs (padded
//! AoS), the time step, and an optional projected point source, produce
//!
//! * `qavg` — the time-integrated state `q̄ = ∫ q dt` (eq. 4),
//! * `favg[d]` — the time-integrated flux tensors `F̄_d = F_d(q̄)`
//!   (linearity, Sec. IV-B),
//! * `qface`, `fface` — `q̄` and the normal flux projected onto the six
//!   faces (inputs of the corrector / Riemann solve, Sec. II-B).
//!
//! The variants differ only in algorithm and data layout — which is the
//! paper's entire subject — and must agree to floating-point tolerance,
//! which the equivalence tests enforce.

pub mod aosoa;
pub mod generic;
pub mod log;
pub mod onthefly;
pub mod splitck;

use crate::faceproj;
use crate::plan::{CellSource, KernelVariant, StpPlan};
use aderdg_pde::LinearPde;
use aderdg_tensor::AlignedVec;

/// Inputs of one predictor invocation.
#[derive(Debug, Clone, Copy)]
pub struct StpInputs<'a> {
    /// Current DOFs in padded AoS layout (`plan.aos`).
    pub q0: &'a [f64],
    /// Time-step length.
    pub dt: f64,
    /// Point source projected onto this cell, if any.
    pub source: Option<&'a CellSource>,
}

/// Outputs of one predictor invocation (buffers owned by the caller and
/// reused across cells).
#[derive(Debug, Clone)]
pub struct StpOutputs {
    /// Time-integrated DOFs, padded AoS.
    pub qavg: AlignedVec,
    /// Time-integrated flux tensor per dimension, padded AoS.
    pub favg: [AlignedVec; 3],
    /// `q̄` projected onto the six faces (−x, +x, −y, +y, −z, +z).
    pub qface: [AlignedVec; 6],
    /// Normal time-integrated flux projected onto the six faces.
    pub fface: [AlignedVec; 6],
}

impl StpOutputs {
    /// Allocates zeroed output buffers matching `plan`.
    pub fn new(plan: &StpPlan) -> Self {
        let vol = plan.aos.len();
        let face = plan.face.len();
        Self {
            qavg: AlignedVec::zeroed(vol),
            favg: std::array::from_fn(|_| AlignedVec::zeroed(vol)),
            qface: std::array::from_fn(|_| AlignedVec::zeroed(face)),
            fface: std::array::from_fn(|_| AlignedVec::zeroed(face)),
        }
    }
}

/// Reusable scratch buffers, variant-specific (their sizes *are* the
/// memory-footprint story of the paper).
#[derive(Debug, Clone)]
pub enum StpScratch {
    /// Scratch of [`generic::stp_generic`].
    Generic(generic::GenericScratch),
    /// Scratch of [`log::stp_log`].
    LoG(log::LogScratch),
    /// Scratch of [`splitck::stp_splitck`].
    SplitCk(splitck::SplitCkScratch),
    /// Scratch of [`aosoa::stp_aosoa`].
    AoSoA(aosoa::AosoaScratch),
}

impl StpScratch {
    /// Allocates scratch for `variant` under `plan`.
    pub fn new(variant: KernelVariant, plan: &StpPlan) -> Self {
        match variant {
            KernelVariant::Generic => StpScratch::Generic(generic::GenericScratch::new(plan)),
            KernelVariant::LoG => StpScratch::LoG(log::LogScratch::new(plan)),
            KernelVariant::SplitCk => StpScratch::SplitCk(splitck::SplitCkScratch::new(plan)),
            KernelVariant::AoSoASplitCk => StpScratch::AoSoA(aosoa::AosoaScratch::new(plan)),
        }
    }

    /// Total bytes of temporary storage this variant allocated — the
    /// measured counterpart of the Sec. IV-A footprint formulas.
    pub fn footprint_bytes(&self) -> usize {
        match self {
            StpScratch::Generic(s) => s.footprint_bytes(),
            StpScratch::LoG(s) => s.footprint_bytes(),
            StpScratch::SplitCk(s) => s.footprint_bytes(),
            StpScratch::AoSoA(s) => s.footprint_bytes(),
        }
    }
}

/// Runs the predictor `variant`; dispatch mirrors the paper's opt-in kernel
/// selection through the specification file.
pub fn run_stp(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    scratch: &mut StpScratch,
    inputs: &StpInputs<'_>,
    out: &mut StpOutputs,
) {
    match scratch {
        StpScratch::Generic(s) => generic::stp_generic(plan, pde, s, inputs, out),
        StpScratch::LoG(s) => log::stp_log(plan, pde, s, inputs, out),
        StpScratch::SplitCk(s) => splitck::stp_splitck(plan, pde, s, inputs, out),
        StpScratch::AoSoA(s) => aosoa::stp_aosoa(plan, pde, s, inputs, out),
    }
}

/// Shared epilogue: projects `qavg` / `favg` onto the six faces.
pub(crate) fn project_faces(plan: &StpPlan, out: &mut StpOutputs) {
    for d in 0..3 {
        for side in 0..2 {
            let f = 2 * d + side;
            faceproj::project_to_face(plan, &out.qavg, d, side, &mut out.qface[f]);
            faceproj::project_to_face(plan, &out.favg[d], d, side, &mut out.fface[f]);
        }
    }
}
