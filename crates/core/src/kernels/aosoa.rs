//! The AoSoA SplitCK predictor — paper Sec. V.
//!
//! Same dimension-split Cauchy-Kowalewsky algorithm as
//! [`splitck`](crate::kernels::splitck), but on the hybrid
//! Array-of-Struct-of-Array layout `A[k3][k2][s][k1]`:
//!
//! * the x-derivative becomes a *transposed* GEMM against the precomputed
//!   padded `Dᵀ` (`Cᵀ = Bᵀ Aᵀ`, Sec. V-B case 1),
//! * y/z-derivatives fuse the `(s, k1)` resp. `(k2, s, k1)` dimensions into
//!   one wide GEMM operand (case 2, Fig. 7),
//! * user functions receive whole x-lines as SoA chunks and run their
//!   vectorized variants (Fig. 8) — this is what moves the ≈10 % scalar
//!   user-function FLOPs of the other variants into packed instructions,
//! * kernel inputs are transposed AoS → AoSoA on entry and outputs back on
//!   exit, because the rest of the engine keeps the AoS API (Sec. V-B).

use super::{project_faces, StpInputs, StpOutputs};
use crate::plan::StpPlan;
use aderdg_gemm::GemmBatch;
use aderdg_pde::LinearPde;
use aderdg_tensor::{aos_to_aosoa, aosoa_to_aos, AlignedVec};

/// Temporaries of the AoSoA kernel: the SplitCK working set in hybrid
/// layout plus one buffer for the hybrid-layout time average.
#[derive(Debug, Clone)]
pub struct AosoaScratch {
    /// Current Taylor term, AoSoA.
    p: AlignedVec,
    /// Next Taylor term, AoSoA.
    ptemp: AlignedVec,
    /// Flux tensor (reused across dimensions), AoSoA.
    flux: AlignedVec,
    /// Gradient tensor (ncp only), AoSoA.
    grad_q: AlignedVec,
    /// Time-averaged state in AoSoA (transposed to AoS on exit).
    qavg_h: AlignedVec,
}

impl AosoaScratch {
    /// Allocates the hybrid-layout working set.
    pub fn new(plan: &StpPlan) -> Self {
        let vol = plan.aosoa.len();
        Self {
            p: AlignedVec::zeroed(vol),
            ptemp: AlignedVec::zeroed(vol),
            flux: AlignedVec::zeroed(vol),
            grad_q: AlignedVec::zeroed(vol),
            qavg_h: AlignedVec::zeroed(vol),
        }
    }

    /// Bytes of temporary storage.
    pub fn footprint_bytes(&self) -> usize {
        (self.p.len() * 5) * 8
    }
}

/// Derivative along `d` of `cells` stacked AoSoA tensors (cell `c` at
/// offset `c · plan.aosoa.len()`) via **one** batched GEMM call: the
/// per-cell slice batches of the hybrid layout extend contiguously
/// across stacked cells, so the whole block becomes a single uniformly
/// strided batch sharing the operator operand. For `d = 0` the batch is
/// row-stacked with a shared `Dᵀ` and collapses into one tall GEMM
/// ([`aderdg_gemm::GemmBatch::fuse_rows`]).
pub(crate) fn derive_gemm_aosoa(
    plan: &StpPlan,
    d: usize,
    cells: usize,
    src: &[f64],
    dst: &mut [f64],
    accumulate: bool,
) {
    let gemm = if accumulate {
        &plan.gemm_aosoa_acc[d]
    } else {
        &plan.gemm_aosoa[d]
    };
    // Per-cell batches are contiguous (batches · stride = aosoa.len() for
    // d < 2), so stacked cells extend the batch uniformly; the z sweep is
    // one GEMM per cell at the cell stride.
    let (count, stride) = match d {
        2 => (cells, plan.aosoa.len()),
        _ => {
            let (batches, stride) = plan.aosoa_batches(d);
            (cells * batches, stride)
        }
    };
    if d == 0 {
        // Transposed form: C(block) = A(block) · Dᵀ_padded, Dᵀ shared.
        let batch = GemmBatch::shared_b(count, stride, stride);
        gemm.execute_batched(&batch, src, &plan.diff_t_padded, dst);
    } else {
        // Fused-dimension form: C(block) = D · B(block), D shared.
        let batch = GemmBatch::shared_a(count, stride, stride);
        gemm.execute_batched(&batch, &plan.basis.diff, src, dst);
    }
}

/// Vectorized flux sweep over `planes` x-lines: one user-function call
/// per line (Sec. V-C). Stacked cells are swept by passing
/// `cells · n²` planes.
pub(crate) fn flux_vect_aosoa(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    d: usize,
    planes: usize,
    src: &[f64],
    dst: &mut [f64],
) {
    let n = plan.n();
    let block = plan.m() * plan.aosoa.n_pad();
    for plane in 0..planes {
        let off = plane * block;
        pde.flux_vect(
            d,
            &src[off..off + block],
            &mut dst[off..off + block],
            n,
            plan.aosoa.n_pad(),
        );
    }
}

/// Runs the AoSoA SplitCK predictor.
pub fn stp_aosoa(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    scratch: &mut AosoaScratch,
    inputs: &StpInputs<'_>,
    out: &mut StpOutputs,
) {
    let n = plan.n();
    let m = plan.m();
    let vars = pde.num_vars();
    let n_pad = plan.aosoa.n_pad();
    let block = m * n_pad;
    let has_ncp = pde.has_ncp();
    let coef = plan.taylor(inputs.dt);

    // Entry transpose AoS → AoSoA (Sec. V-B: cheaper than per-call
    // on-the-fly transposes; the ablation bench quantifies it).
    scratch.p.fill_zero();
    aos_to_aosoa(inputs.q0, &plan.aos, &mut scratch.p, &plan.aosoa);

    for (qa, pv) in scratch.qavg_h.iter_mut().zip(scratch.p.iter()) {
        *qa = coef[0] * pv;
    }

    for o in 0..n {
        scratch.ptemp.fill_zero();
        for d in 0..3 {
            flux_vect_aosoa(plan, pde, d, n * n, &scratch.p, &mut scratch.flux);
            derive_gemm_aosoa(plan, d, 1, &scratch.flux, &mut scratch.ptemp, true);
            if has_ncp {
                derive_gemm_aosoa(plan, d, 1, &scratch.p, &mut scratch.grad_q, false);
                // Vectorized ncp per x-line, accumulated into ptemp.
                for plane in 0..n * n {
                    let off = plane * block;
                    // Reuse flux as the ncp output buffer for this plane.
                    let (qs, gs) = (
                        &scratch.p[off..off + block],
                        &scratch.grad_q[off..off + block],
                    );
                    pde.ncp_vect(d, qs, gs, &mut scratch.flux[off..off + block], n, n_pad);
                    for (pv, nv) in scratch.ptemp[off..off + block]
                        .iter_mut()
                        .zip(&scratch.flux[off..off + block])
                    {
                        *pv += nv;
                    }
                }
            }
        }
        if let Some(src) = inputs.source {
            let amp = &src.derivs[o];
            // node_coeffs are (k3, k2, k1)-ordered; address the AoSoA slot.
            for k3 in 0..n {
                for k2 in 0..n {
                    for k1 in 0..n {
                        let c = src.node_coeffs[(k3 * n + k2) * n + k1];
                        let base = (k3 * n + k2) * block + k1;
                        for (s, &a) in amp.iter().enumerate() {
                            scratch.ptemp[base + s * n_pad] += c * a;
                        }
                    }
                }
            }
        }
        // Carry the material parameters along: in AoSoA the parameter rows
        // of each (k3, k2) block are the contiguous runs s ∈ [vars, m).
        {
            let AosoaScratch { p, ptemp, .. } = scratch;
            for plane in 0..n * n {
                let off = plane * block + vars * n_pad;
                let end = plane * block + m * n_pad;
                ptemp[off..end].copy_from_slice(&p[off..end]);
            }
        }
        std::mem::swap(&mut scratch.p, &mut scratch.ptemp);
        let c = coef[o + 1];
        for (qa, pv) in scratch.qavg_h.iter_mut().zip(scratch.p.iter()) {
            *qa += c * pv;
        }
    }

    // q̄ carries the original parameters (restore in hybrid layout before
    // the flux recomputation; `p` still holds them after the last swap).
    {
        let AosoaScratch { p, qavg_h, .. } = scratch;
        for plane in 0..n * n {
            let off = plane * block + vars * n_pad;
            let end = plane * block + m * n_pad;
            qavg_h[off..end].copy_from_slice(&p[off..end]);
        }
    }

    // Exit transposes: q̄ and the recomputed time-averaged fluxes back to
    // the engine's AoS layout.
    out.qavg.fill_zero();
    aosoa_to_aos(&scratch.qavg_h, &plan.aosoa, &mut out.qavg, &plan.aos);
    for d in 0..3 {
        flux_vect_aosoa(plan, pde, d, n * n, &scratch.qavg_h, &mut scratch.flux);
        out.favg[d].fill_zero();
        aosoa_to_aos(&scratch.flux, &plan.aosoa, &mut out.favg[d], &plan.aos);
    }

    project_faces(plan, out);
}

/// Temporaries of the blocked AoSoA kernel: the SplitCK hybrid-layout
/// working set stacked over the cells of a block (cell `c` occupies
/// `[c · aosoa.len(), (c + 1) · aosoa.len())` of every buffer).
#[derive(Debug, Clone)]
pub struct AosoaBlockScratch {
    /// Maximum cells per block.
    capacity: usize,
    /// Current Taylor term, stacked AoSoA.
    p: AlignedVec,
    /// Next Taylor term, stacked AoSoA.
    ptemp: AlignedVec,
    /// Flux tensor (reused across dimensions), stacked AoSoA.
    flux: AlignedVec,
    /// Gradient tensor (ncp only), stacked AoSoA.
    grad_q: AlignedVec,
    /// Time-averaged state, stacked AoSoA.
    qavg_h: AlignedVec,
}

impl AosoaBlockScratch {
    /// Allocates the stacked hybrid-layout working set for up to
    /// `capacity` cells.
    pub fn new(plan: &StpPlan, capacity: usize) -> Self {
        assert!(capacity > 0, "block scratch needs capacity >= 1");
        let vol = capacity * plan.aosoa.len();
        Self {
            capacity,
            p: AlignedVec::zeroed(vol),
            ptemp: AlignedVec::zeroed(vol),
            flux: AlignedVec::zeroed(vol),
            grad_q: AlignedVec::zeroed(vol),
            qavg_h: AlignedVec::zeroed(vol),
        }
    }

    /// Bytes of temporary storage.
    pub fn footprint_bytes(&self) -> usize {
        (self.p.len() * 5) * 8
    }
}

/// Runs the AoSoA SplitCK predictor over a staged cell block.
///
/// This is the genuinely batched path of the paper's narrative: the
/// per-cell slice batches of the hybrid layout extend contiguously across
/// the stacked cells, so every derivative sweep of the whole block is
/// **one** batched GEMM call that loads the
/// operator matrix once, and the vectorized user functions sweep
/// `B · n²` x-lines back-to-back.
pub fn stp_aosoa_block(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    scratch: &mut AosoaBlockScratch,
    inputs: &crate::block::BlockInputs<'_>,
    out: &mut [StpOutputs],
) {
    let cells = inputs.len();
    assert_eq!(cells, out.len(), "one output per staged cell");
    assert!(
        cells <= scratch.capacity,
        "block of {cells} cells exceeds scratch capacity {}",
        scratch.capacity
    );
    let n = plan.n();
    let m = plan.m();
    let vars = pde.num_vars();
    let n_pad = plan.aosoa.n_pad();
    let block = m * n_pad;
    let cl = plan.aosoa.len();
    let len = cells * cl;
    let planes = cells * n * n;
    let has_ncp = pde.has_ncp();
    let coef = plan.taylor(inputs.dt);

    // Entry transposes AoS → AoSoA, cell by cell into the stacked buffer.
    scratch.p[..len].fill(0.0);
    for c in 0..cells {
        aos_to_aosoa(
            inputs.block.cell(c),
            &plan.aos,
            &mut scratch.p[c * cl..(c + 1) * cl],
            &plan.aosoa,
        );
    }

    for (qa, pv) in scratch.qavg_h[..len]
        .iter_mut()
        .zip(scratch.p[..len].iter())
    {
        *qa = coef[0] * pv;
    }

    for o in 0..n {
        scratch.ptemp[..len].fill(0.0);
        for d in 0..3 {
            flux_vect_aosoa(plan, pde, d, planes, &scratch.p, &mut scratch.flux);
            derive_gemm_aosoa(plan, d, cells, &scratch.flux, &mut scratch.ptemp, true);
            if has_ncp {
                derive_gemm_aosoa(plan, d, cells, &scratch.p, &mut scratch.grad_q, false);
                // Vectorized ncp per x-line, accumulated into ptemp.
                for plane in 0..planes {
                    let off = plane * block;
                    // Reuse flux as the ncp output buffer for this plane.
                    let (qs, gs) = (
                        &scratch.p[off..off + block],
                        &scratch.grad_q[off..off + block],
                    );
                    pde.ncp_vect(d, qs, gs, &mut scratch.flux[off..off + block], n, n_pad);
                    for (pv, nv) in scratch.ptemp[off..off + block]
                        .iter_mut()
                        .zip(&scratch.flux[off..off + block])
                    {
                        *pv += nv;
                    }
                }
            }
        }
        for c in 0..cells {
            if let Some(src) = inputs.sources[c] {
                let amp = &src.derivs[o];
                // node_coeffs are (k3, k2, k1)-ordered; address the
                // AoSoA slot within cell c's stacked range.
                for k3 in 0..n {
                    for k2 in 0..n {
                        for k1 in 0..n {
                            let coeff = src.node_coeffs[(k3 * n + k2) * n + k1];
                            let base = c * cl + (k3 * n + k2) * block + k1;
                            for (s, &a) in amp.iter().enumerate() {
                                scratch.ptemp[base + s * n_pad] += coeff * a;
                            }
                        }
                    }
                }
            }
        }
        // Carry the material parameters along across the whole block.
        {
            let AosoaBlockScratch { p, ptemp, .. } = scratch;
            for plane in 0..planes {
                let off = plane * block + vars * n_pad;
                let end = plane * block + m * n_pad;
                ptemp[off..end].copy_from_slice(&p[off..end]);
            }
        }
        std::mem::swap(&mut scratch.p, &mut scratch.ptemp);
        let co = coef[o + 1];
        for (qa, pv) in scratch.qavg_h[..len]
            .iter_mut()
            .zip(scratch.p[..len].iter())
        {
            *qa += co * pv;
        }
    }

    // q̄ carries the original parameters (restore in hybrid layout; `p`
    // still holds them after the last swap).
    {
        let AosoaBlockScratch { p, qavg_h, .. } = scratch;
        for plane in 0..planes {
            let off = plane * block + vars * n_pad;
            let end = plane * block + m * n_pad;
            qavg_h[off..end].copy_from_slice(&p[off..end]);
        }
    }

    // Exit transposes: q̄ per cell, then the recomputed time-averaged
    // fluxes (one block-wide vectorized sweep per dimension).
    for (c, cell_out) in out.iter_mut().enumerate() {
        cell_out.qavg.fill_zero();
        aosoa_to_aos(
            &scratch.qavg_h[c * cl..(c + 1) * cl],
            &plan.aosoa,
            &mut cell_out.qavg,
            &plan.aos,
        );
    }
    for d in 0..3 {
        flux_vect_aosoa(plan, pde, d, planes, &scratch.qavg_h, &mut scratch.flux);
        for (c, cell_out) in out.iter_mut().enumerate() {
            cell_out.favg[d].fill_zero();
            aosoa_to_aos(
                &scratch.flux[c * cl..(c + 1) * cl],
                &plan.aosoa,
                &mut cell_out.favg[d],
                &plan.aos,
            );
        }
    }
    for cell_out in out.iter_mut() {
        project_faces(plan, cell_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::generic::{stp_generic, GenericScratch};
    use crate::plan::{CellSource, StpConfig};
    use aderdg_pde::{Acoustic, AdvectionNcpSystem, AdvectionSystem, Elastic, LinearPde, Material};

    fn random_state(plan: &StpPlan, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let m = plan.m();
        let m_pad = plan.aos.m_pad();
        let mut q = vec![0.0; plan.aos.len()];
        for k in 0..plan.n().pow(3) {
            for s in 0..m {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                q[k * m_pad + s] = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            }
        }
        q
    }

    fn compare_with_generic(
        plan: &StpPlan,
        pde: &dyn LinearPde,
        q0: &[f64],
        source: Option<&CellSource>,
        tol: f64,
    ) {
        let inputs = StpInputs {
            q0,
            dt: 0.01,
            source,
        };
        let mut out_g = StpOutputs::new(plan);
        stp_generic(
            plan,
            pde,
            &mut GenericScratch::new(plan),
            &inputs,
            &mut out_g,
        );
        let mut out_h = StpOutputs::new(plan);
        stp_aosoa(plan, pde, &mut AosoaScratch::new(plan), &inputs, &mut out_h);
        for (i, (a, b)) in out_h.qavg.iter().zip(out_g.qavg.iter()).enumerate() {
            assert!(
                (a - b).abs() < tol * (1.0 + b.abs()),
                "qavg[{i}]: {a} vs {b}"
            );
        }
        for d in 0..3 {
            for (i, (a, b)) in out_h.favg[d].iter().zip(out_g.favg[d].iter()).enumerate() {
                assert!(
                    (a - b).abs() < tol * (1.0 + b.abs()),
                    "favg{d}[{i}]: {a} vs {b}"
                );
            }
        }
        for f in 0..6 {
            for (a, b) in out_h.qface[f].iter().zip(out_g.qface[f].iter()) {
                assert!((a - b).abs() < tol * (1.0 + b.abs()));
            }
            for (a, b) in out_h.fface[f].iter().zip(out_g.fface[f].iter()) {
                assert!((a - b).abs() < tol * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn aosoa_matches_generic_advection() {
        for (n, m) in [(3, 2), (5, 6), (8, 3)] {
            let plan = StpPlan::new(StpConfig::new(n, m), [1.25, 1.0, 0.8]);
            let pde = AdvectionSystem::new(m, [-0.4, 0.7, 0.3]);
            let q0 = random_state(&plan, (7 * n + m) as u64);
            compare_with_generic(&plan, &pde, &q0, None, 1e-11);
        }
    }

    #[test]
    fn aosoa_matches_generic_ncp() {
        let plan = StpPlan::new(StpConfig::new(4, 3), [1.0; 3]);
        let pde = AdvectionNcpSystem::new(3, [0.6, -0.1, 0.9]);
        let q0 = random_state(&plan, 21);
        compare_with_generic(&plan, &pde, &q0, None, 1e-11);
    }

    #[test]
    fn aosoa_matches_generic_acoustic() {
        let plan = StpPlan::new(StpConfig::new(5, 6), [1.0; 3]);
        let pde = Acoustic;
        let mut q0 = random_state(&plan, 3);
        let m_pad = plan.aos.m_pad();
        for k in 0..125 {
            q0[k * m_pad + 4] = 1.1 + 0.02 * (k % 7) as f64;
            q0[k * m_pad + 5] = 2.5;
        }
        compare_with_generic(&plan, &pde, &q0, None, 1e-11);
    }

    #[test]
    fn aosoa_matches_generic_elastic_21_quantities() {
        // The paper's benchmark configuration: m = 21, curvilinear metric.
        let plan = StpPlan::new(StpConfig::new(4, 21), [1.0; 3]);
        let pde = Elastic;
        let mut q0 = random_state(&plan, 17);
        let m_pad = plan.aos.m_pad();
        let mat = Material {
            rho: 2.7,
            cp: 6.0,
            cs: 3.46,
        };
        for k in 0..64 {
            let mut jac = Elastic::IDENTITY_JAC;
            // Mildly curvilinear, per-node varying metric.
            jac[1] = 0.05 * ((k % 5) as f64 - 2.0);
            jac[5] = 0.03 * ((k % 3) as f64 - 1.0);
            Elastic::set_params(&mut q0[k * m_pad..k * m_pad + 21], mat, &jac);
        }
        compare_with_generic(&plan, &pde, &q0, None, 1e-10);
    }

    #[test]
    fn aosoa_matches_generic_with_point_source() {
        let plan = StpPlan::new(StpConfig::new(4, 2), [1.0; 3]);
        let pde = AdvectionSystem::new(2, [0.2, 0.5, -0.7]);
        let q0 = random_state(&plan, 31);
        let derivs: Vec<Vec<f64>> = (0..=4)
            .map(|o| vec![0.1 * (o as f64 + 1.0), -0.05 * o as f64])
            .collect();
        let src = CellSource::project(&plan, [0.7, 0.2, 0.4], [1.0; 3], derivs);
        compare_with_generic(&plan, &pde, &q0, Some(&src), 1e-11);
    }

    #[test]
    fn footprint_comparable_to_splitck() {
        use crate::kernels::splitck::SplitCkScratch;
        let plan = StpPlan::new(StpConfig::new(8, 21), [1.0; 3]);
        let h = AosoaScratch::new(&plan).footprint_bytes();
        let s = SplitCkScratch::new(&plan).footprint_bytes();
        // Same O(N³m) class; ratio bounded by padding differences.
        let ratio = h as f64 / s as f64;
        assert!(ratio > 0.5 && ratio < 3.0, "ratio={ratio}");
    }
}

use super::{downcast_scratch, impl_stp_scratch, StpKernel, StpScratch};

impl_stp_scratch!(AosoaScratch);
impl_stp_scratch!(AosoaBlockScratch);

/// Registry entry for the AoSoA SplitCK variant with vectorized user
/// functions (Sec. V).
#[derive(Debug, Clone, Copy)]
pub struct AosoaKernel;

impl StpKernel for AosoaKernel {
    fn name(&self) -> &'static str {
        "aosoa_splitck"
    }

    fn label(&self) -> &'static str {
        "AoSoA SplitCK"
    }

    fn make_scratch(&self, plan: &StpPlan) -> Box<dyn StpScratch> {
        Box::new(AosoaScratch::new(plan))
    }

    fn run(
        &self,
        plan: &StpPlan,
        pde: &dyn LinearPde,
        scratch: &mut dyn StpScratch,
        inputs: &StpInputs<'_>,
        out: &mut StpOutputs,
    ) {
        stp_aosoa(plan, pde, downcast_scratch(scratch), inputs, out);
    }

    fn make_block_scratch(&self, plan: &StpPlan, capacity: usize) -> Box<dyn StpScratch> {
        Box::new(AosoaBlockScratch::new(plan, capacity))
    }

    fn run_block(
        &self,
        plan: &StpPlan,
        pde: &dyn LinearPde,
        scratch: &mut dyn StpScratch,
        inputs: &crate::block::BlockInputs<'_>,
        out: &mut [StpOutputs],
    ) {
        stp_aosoa_block(plan, pde, downcast_scratch(scratch), inputs, out);
    }
}
