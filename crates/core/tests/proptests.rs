//! Property-based tests of the Space-Time Predictor kernels: the paper's
//! implicit contracts (variant equivalence, linearity of the CK scheme,
//! layout invariance) over random configurations and states.

use aderdg_core::kernels::{run_stp, StpInputs, StpOutputs, StpScratch};
use aderdg_core::{KernelVariant, StpConfig, StpPlan};
use aderdg_pde::{AdvectionNcpSystem, AdvectionSystem, LinearPde};
use aderdg_tensor::SimdWidth;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn arb_width() -> impl Strategy<Value = SimdWidth> {
    prop_oneof![
        Just(SimdWidth::W2),
        Just(SimdWidth::W4),
        Just(SimdWidth::W8)
    ]
}

fn arb_variant() -> impl Strategy<Value = KernelVariant> {
    prop_oneof![
        Just(KernelVariant::LoG),
        Just(KernelVariant::SplitCk),
        Just(KernelVariant::AoSoASplitCk)
    ]
}

fn random_state(plan: &StpPlan, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let m_pad = plan.aos.m_pad();
    let mut q = vec![0.0; plan.aos.len()];
    for k in 0..plan.n().pow(3) {
        for s in 0..plan.m() {
            q[k * m_pad + s] = rng.gen_range(-1.0..1.0);
        }
    }
    q
}

fn run(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    variant: KernelVariant,
    q0: &[f64],
    dt: f64,
) -> StpOutputs {
    let mut scratch = StpScratch::new(variant, plan);
    let mut out = StpOutputs::new(plan);
    run_stp(
        plan,
        pde,
        &mut scratch,
        &StpInputs {
            q0,
            dt,
            source: None,
        },
        &mut out,
    );
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any optimized variant equals the generic reference for random
    /// sizes, widths, velocities and states.
    #[test]
    fn optimized_variants_match_generic(
        n in 3usize..7,
        m in 1usize..9,
        width in arb_width(),
        variant in arb_variant(),
        vx in -1.0f64..1.0,
        vy in -1.0f64..1.0,
        vz in -1.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let plan = StpPlan::new(StpConfig::new(n, m).with_width(width), [1.0; 3]);
        let pde = AdvectionSystem::new(m, [vx, vy, vz]);
        let q0 = random_state(&plan, seed);
        let a = run(&plan, &pde, KernelVariant::Generic, &q0, 0.01);
        let b = run(&plan, &pde, variant, &q0, 0.01);
        for (i, (x, y)) in b.qavg.iter().zip(a.qavg.iter()).enumerate() {
            prop_assert!((x - y).abs() < 1e-11 * (1.0 + y.abs()),
                "{variant:?} qavg[{i}]: {x} vs {y}");
        }
        for f in 0..6 {
            for (x, y) in b.fface[f].iter().zip(a.fface[f].iter()) {
                prop_assert!((x - y).abs() < 1e-11 * (1.0 + y.abs()));
            }
        }
    }

    /// The Cauchy-Kowalewsky predictor is linear in the input state:
    /// STP(a·q1 + b·q2) = a·STP(q1) + b·STP(q2) (evolved variables).
    #[test]
    fn predictor_is_linear_in_state(
        n in 3usize..6,
        variant in arb_variant(),
        a in -2.0f64..2.0,
        b in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let m = 3;
        let plan = StpPlan::new(StpConfig::new(n, m), [1.0; 3]);
        let pde = AdvectionSystem::new(m, [0.6, -0.3, 0.9]);
        let q1 = random_state(&plan, seed);
        let q2 = random_state(&plan, seed ^ 0xDEAD);
        let qc: Vec<f64> = q1.iter().zip(&q2).map(|(x, y)| a * x + b * y).collect();
        let o1 = run(&plan, &pde, variant, &q1, 0.02);
        let o2 = run(&plan, &pde, variant, &q2, 0.02);
        let oc = run(&plan, &pde, variant, &qc, 0.02);
        for (i, ((x1, x2), xc)) in o1.qavg.iter().zip(o2.qavg.iter()).zip(oc.qavg.iter()).enumerate() {
            let want = a * x1 + b * x2;
            prop_assert!((xc - want).abs() < 1e-9 * (1.0 + want.abs()),
                "qavg[{i}]: {xc} vs {want}");
        }
    }

    /// Zero time step: q̄ = dt·q = 0 and all face tensors vanish.
    #[test]
    fn zero_dt_gives_zero_integrals(
        n in 3usize..6,
        variant in arb_variant(),
        seed in any::<u64>(),
    ) {
        let plan = StpPlan::new(StpConfig::new(n, 2), [1.0; 3]);
        let pde = AdvectionSystem::new(2, [1.0, 1.0, 1.0]);
        let q0 = random_state(&plan, seed);
        let out = run(&plan, &pde, variant, &q0, 0.0);
        for v in out.qavg.iter() {
            prop_assert!(v.abs() < 1e-14);
        }
        for f in 0..6 {
            for v in out.fface[f].iter() {
                prop_assert!(v.abs() < 1e-14);
            }
        }
    }

    /// The time integral of a constant state is dt·q, for any dt.
    #[test]
    fn constant_state_time_integral(
        n in 3usize..6,
        variant in arb_variant(),
        dt in 0.0f64..0.2,
        c0 in -3.0f64..3.0,
    ) {
        let plan = StpPlan::new(StpConfig::new(n, 2), [1.0; 3]);
        let pde = AdvectionSystem::new(2, [0.8, -0.5, 0.3]);
        let m_pad = plan.aos.m_pad();
        let mut q0 = vec![0.0; plan.aos.len()];
        for k in 0..n * n * n {
            q0[k * m_pad] = c0;
            q0[k * m_pad + 1] = -c0;
        }
        let out = run(&plan, &pde, variant, &q0, dt);
        for k in 0..n * n * n {
            prop_assert!((out.qavg[k * m_pad] - dt * c0).abs() < 1e-12 * (1.0 + dt * c0.abs()));
            prop_assert!((out.qavg[k * m_pad + 1] + dt * c0).abs() < 1e-12 * (1.0 + dt * c0.abs()));
        }
    }

    /// Flux-form advection and ncp-form advection produce the same
    /// predictor output (the computeF and computeNcp kernel paths are
    /// exchangeable for constant coefficients).
    #[test]
    fn flux_and_ncp_formulations_agree(
        n in 3usize..6,
        variant in arb_variant(),
        vx in -1.0f64..1.0,
        vy in -1.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let m = 2;
        let plan = StpPlan::new(StpConfig::new(n, m), [1.0; 3]);
        let q0 = random_state(&plan, seed);
        let flux_form = AdvectionSystem::new(m, [vx, vy, 0.4]);
        let ncp_form = AdvectionNcpSystem::new(m, [vx, vy, 0.4]);
        let a = run(&plan, &flux_form, variant, &q0, 0.015);
        let b = run(&plan, &ncp_form, variant, &q0, 0.015);
        for (i, (x, y)) in b.qavg.iter().zip(a.qavg.iter()).enumerate() {
            prop_assert!((x - y).abs() < 1e-10 * (1.0 + y.abs()),
                "qavg[{i}]: ncp {x} vs flux {y}");
        }
    }

    /// Padding lanes of every output stay exactly zero.
    #[test]
    fn output_padding_stays_zero(
        n in 3usize..6,
        m in 1usize..6,
        variant in arb_variant(),
        seed in any::<u64>(),
    ) {
        let plan = StpPlan::new(StpConfig::new(n, m).with_width(SimdWidth::W8), [1.0; 3]);
        let pde = AdvectionSystem::new(m, [0.5, 0.5, 0.5]);
        let q0 = random_state(&plan, seed);
        let out = run(&plan, &pde, variant, &q0, 0.01);
        let m_pad = plan.aos.m_pad();
        for k in 0..n * n * n {
            for s in m..m_pad {
                prop_assert_eq!(out.qavg[k * m_pad + s], 0.0, "qavg pad k={} s={}", k, s);
                for d in 0..3 {
                    prop_assert_eq!(out.favg[d][k * m_pad + s], 0.0);
                }
            }
        }
    }
}
