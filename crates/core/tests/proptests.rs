//! Property-style tests of the Space-Time Predictor kernels: the paper's
//! implicit contracts (variant equivalence, linearity of the CK scheme,
//! layout invariance) over random configurations and states, driven by
//! deterministic seeded sweeps (hermetic build — no external
//! property-testing framework).
//!
//! Registry-driven: every kernel registered in [`KernelRegistry`] other
//! than the `generic` reference is checked against it, so a newly
//! registered variant is cross-checked with zero test edits.

use aderdg_core::kernels::{StpInputs, StpKernel, StpOutputs};
use aderdg_core::{KernelRegistry, StpConfig, StpPlan};
use aderdg_pde::{AdvectionNcpSystem, AdvectionSystem, LinearPde};
use aderdg_tensor::{Lcg, SimdWidth};

const WIDTHS: [SimdWidth; 3] = [SimdWidth::W2, SimdWidth::W4, SimdWidth::W8];

/// Every registered kernel except the scalar reference.
fn optimized_kernels() -> Vec<&'static dyn StpKernel> {
    let kernels: Vec<_> = KernelRegistry::global()
        .kernels()
        .into_iter()
        .filter(|k| k.name() != "generic")
        .collect();
    assert!(!kernels.is_empty());
    kernels
}

fn random_state(plan: &StpPlan, seed: u64) -> Vec<f64> {
    let mut rng = Lcg::new(seed);
    let m_pad = plan.aos.m_pad();
    let mut q = vec![0.0; plan.aos.len()];
    for k in 0..plan.n().pow(3) {
        for s in 0..plan.m() {
            q[k * m_pad + s] = rng.f64(-1.0, 1.0);
        }
    }
    q
}

fn run(
    plan: &StpPlan,
    pde: &dyn LinearPde,
    kernel: &dyn StpKernel,
    q0: &[f64],
    dt: f64,
) -> StpOutputs {
    let mut scratch = kernel.make_scratch(plan);
    let mut out = StpOutputs::new(plan);
    kernel.run(
        plan,
        pde,
        scratch.as_mut(),
        &StpInputs {
            q0,
            dt,
            source: None,
        },
        &mut out,
    );
    out
}

/// Any optimized variant equals the generic reference for random sizes,
/// widths, velocities and states.
#[test]
fn optimized_variants_match_generic() {
    let generic = KernelRegistry::global().resolve("generic").unwrap();
    let mut rng = Lcg::new(0x5EED);
    for case in 0..8u64 {
        let n = 3 + (case as usize % 4);
        let m = 1 + (case as usize * 3) % 8;
        let width = WIDTHS[case as usize % 3];
        let plan = StpPlan::new(StpConfig::new(n, m).with_width(width), [1.0; 3]);
        let pde = AdvectionSystem::new(
            m,
            [rng.f64(-1.0, 1.0), rng.f64(-1.0, 1.0), rng.f64(-1.0, 1.0)],
        );
        let q0 = random_state(&plan, 0xAB + case);
        let a = run(&plan, &pde, generic, &q0, 0.01);
        for kernel in optimized_kernels() {
            let b = run(&plan, &pde, kernel, &q0, 0.01);
            for (i, (x, y)) in b.qavg.iter().zip(a.qavg.iter()).enumerate() {
                assert!(
                    (x - y).abs() < 1e-11 * (1.0 + y.abs()),
                    "{} qavg[{i}]: {x} vs {y}",
                    kernel.name()
                );
            }
            for f in 0..6 {
                for (x, y) in b.fface[f].iter().zip(a.fface[f].iter()) {
                    assert!((x - y).abs() < 1e-11 * (1.0 + y.abs()), "{}", kernel.name());
                }
            }
        }
    }
}

/// The Cauchy-Kowalewsky predictor is linear in the input state:
/// STP(a·q1 + b·q2) = a·STP(q1) + b·STP(q2) (evolved variables).
#[test]
fn predictor_is_linear_in_state() {
    let m = 3;
    for kernel in optimized_kernels() {
        let mut rng = Lcg::new(0x11EA);
        for case in 0..4u64 {
            let n = 3 + (case as usize % 3);
            let (a, b) = (rng.f64(-2.0, 2.0), rng.f64(-2.0, 2.0));
            let plan = StpPlan::new(StpConfig::new(n, m), [1.0; 3]);
            let pde = AdvectionSystem::new(m, [0.6, -0.3, 0.9]);
            let q1 = random_state(&plan, 0xD0 + case);
            let q2 = random_state(&plan, 0xDEAD + case);
            let qc: Vec<f64> = q1.iter().zip(&q2).map(|(x, y)| a * x + b * y).collect();
            let o1 = run(&plan, &pde, kernel, &q1, 0.02);
            let o2 = run(&plan, &pde, kernel, &q2, 0.02);
            let oc = run(&plan, &pde, kernel, &qc, 0.02);
            for (i, ((x1, x2), xc)) in o1
                .qavg
                .iter()
                .zip(o2.qavg.iter())
                .zip(oc.qavg.iter())
                .enumerate()
            {
                let want = a * x1 + b * x2;
                assert!(
                    (xc - want).abs() < 1e-9 * (1.0 + want.abs()),
                    "{} qavg[{i}]: {xc} vs {want}",
                    kernel.name()
                );
            }
        }
    }
}

/// Zero time step: q̄ = dt·q = 0 and all face tensors vanish.
#[test]
fn zero_dt_gives_zero_integrals() {
    for kernel in optimized_kernels() {
        for n in 3usize..6 {
            let plan = StpPlan::new(StpConfig::new(n, 2), [1.0; 3]);
            let pde = AdvectionSystem::new(2, [1.0, 1.0, 1.0]);
            let q0 = random_state(&plan, n as u64 * 3);
            let out = run(&plan, &pde, kernel, &q0, 0.0);
            for v in out.qavg.iter() {
                assert!(v.abs() < 1e-14);
            }
            for f in 0..6 {
                for v in out.fface[f].iter() {
                    assert!(v.abs() < 1e-14);
                }
            }
        }
    }
}

/// The time integral of a constant state is dt·q, for any dt.
#[test]
fn constant_state_time_integral() {
    for kernel in optimized_kernels() {
        let mut rng = Lcg::new(0xC0);
        for n in 3usize..6 {
            let dt = rng.f64(0.0, 0.2);
            let c0 = rng.f64(-3.0, 3.0);
            let plan = StpPlan::new(StpConfig::new(n, 2), [1.0; 3]);
            let pde = AdvectionSystem::new(2, [0.8, -0.5, 0.3]);
            let m_pad = plan.aos.m_pad();
            let mut q0 = vec![0.0; plan.aos.len()];
            for k in 0..n * n * n {
                q0[k * m_pad] = c0;
                q0[k * m_pad + 1] = -c0;
            }
            let out = run(&plan, &pde, kernel, &q0, dt);
            for k in 0..n * n * n {
                assert!((out.qavg[k * m_pad] - dt * c0).abs() < 1e-12 * (1.0 + dt * c0.abs()));
                assert!((out.qavg[k * m_pad + 1] + dt * c0).abs() < 1e-12 * (1.0 + dt * c0.abs()));
            }
        }
    }
}

/// Flux-form advection and ncp-form advection produce the same predictor
/// output (the computeF and computeNcp kernel paths are exchangeable for
/// constant coefficients).
#[test]
fn flux_and_ncp_formulations_agree() {
    let m = 2;
    for kernel in optimized_kernels() {
        let mut rng = Lcg::new(0xF1);
        for n in 3usize..6 {
            let (vx, vy) = (rng.f64(-1.0, 1.0), rng.f64(-1.0, 1.0));
            let plan = StpPlan::new(StpConfig::new(n, m), [1.0; 3]);
            let q0 = random_state(&plan, 0xFACE + n as u64);
            let flux_form = AdvectionSystem::new(m, [vx, vy, 0.4]);
            let ncp_form = AdvectionNcpSystem::new(m, [vx, vy, 0.4]);
            let a = run(&plan, &flux_form, kernel, &q0, 0.015);
            let b = run(&plan, &ncp_form, kernel, &q0, 0.015);
            for (i, (x, y)) in b.qavg.iter().zip(a.qavg.iter()).enumerate() {
                assert!(
                    (x - y).abs() < 1e-10 * (1.0 + y.abs()),
                    "{} qavg[{i}]: ncp {x} vs flux {y}",
                    kernel.name()
                );
            }
        }
    }
}

/// Padding lanes of every output stay exactly zero.
#[test]
fn output_padding_stays_zero() {
    for kernel in optimized_kernels() {
        for (n, m) in [(3usize, 1usize), (4, 3), (5, 5)] {
            let plan = StpPlan::new(StpConfig::new(n, m).with_width(SimdWidth::W8), [1.0; 3]);
            let pde = AdvectionSystem::new(m, [0.5, 0.5, 0.5]);
            let q0 = random_state(&plan, (n * 7 + m) as u64);
            let out = run(&plan, &pde, kernel, &q0, 0.01);
            let m_pad = plan.aos.m_pad();
            for k in 0..n * n * n {
                for s in m..m_pad {
                    assert_eq!(
                        out.qavg[k * m_pad + s],
                        0.0,
                        "{} qavg pad k={k} s={s}",
                        kernel.name()
                    );
                    for d in 0..3 {
                        assert_eq!(out.favg[d][k * m_pad + s], 0.0, "{}", kernel.name());
                    }
                }
            }
        }
    }
}
