//! Engine-level integration tests: full predictor → Riemann → corrector
//! time stepping on periodic meshes, validated against exact solutions.

use aderdg_core::{Engine, EngineConfig, KernelVariant};
use aderdg_mesh::StructuredMesh;
use aderdg_pde::{
    acoustic, elastic, Acoustic, AcousticPlaneWave, AdvectedSine, AdvectionSystem, Elastic,
    ElasticPlaneWave, ExactSolution, Material, PointSource, SourceTimeFunction,
};

fn advection_error(order: usize, cells: usize, variant: KernelVariant, t_end: f64) -> f64 {
    let mesh = StructuredMesh::unit_cube(cells);
    let pde = AdvectionSystem::new(2, [1.0, 0.5, 0.0]);
    let exact = AdvectedSine {
        n_vars: 2,
        velocity: [1.0, 0.5, 0.0],
        wave: [1.0, 0.0, 0.0],
    };
    let mut engine = Engine::new(mesh, pde, EngineConfig::new(order).with_variant(variant));
    engine.set_initial(|x, q| exact.evaluate(x, 0.0, q));
    engine.run_until(t_end);
    engine.l2_error(&exact)
}

#[test]
fn advection_high_order_beats_low_order() {
    let e2 = advection_error(2, 3, KernelVariant::SplitCk, 0.1);
    let e4 = advection_error(4, 3, KernelVariant::SplitCk, 0.1);
    assert!(
        e4 < e2 / 20.0,
        "order 4 ({e4}) should be far below order 2 ({e2})"
    );
}

#[test]
fn advection_converges_under_mesh_refinement() {
    // Order 3: L2 error should drop by ~2^3 per refinement.
    let e2 = advection_error(3, 2, KernelVariant::SplitCk, 0.05);
    let e4 = advection_error(3, 4, KernelVariant::SplitCk, 0.05);
    let rate = (e2 / e4).log2();
    assert!(rate > 2.3, "observed rate {rate} (e2={e2}, e4={e4})");
}

#[test]
fn all_variants_produce_identical_evolution() {
    let errs: Vec<f64> = KernelVariant::ALL
        .iter()
        .map(|&v| advection_error(4, 2, v, 0.08))
        .collect();
    for (i, e) in errs.iter().enumerate() {
        assert!(
            (e - errs[0]).abs() < 1e-10 * (1.0 + errs[0]),
            "variant {i}: {e} vs {}",
            errs[0]
        );
    }
}

#[test]
fn acoustic_plane_wave_propagates() {
    let wave = AcousticPlaneWave {
        direction: [1.0, 0.0, 0.0],
        amplitude: 1.0,
        wavenumber: 1.0,
        rho: 1.0,
        bulk: 1.0,
    };
    let mesh = StructuredMesh::unit_cube(3);
    let mut engine = Engine::new(mesh, Acoustic, EngineConfig::new(5));
    engine.set_initial(|x, q| {
        wave.evaluate(x, 0.0, q);
        Acoustic::set_params(q, wave.rho, wave.bulk);
    });
    engine.run_until(0.2);
    let err = engine.l2_error(&wave);
    assert!(err < 1e-3, "acoustic error {err}");
}

#[test]
fn elastic_p_wave_propagates_m21() {
    let mat = Material {
        rho: 1.0,
        cp: 1.0,
        cs: 0.6,
    };
    let wave = ElasticPlaneWave {
        direction: [1.0, 0.0, 0.0],
        polarization: [1.0, 0.0, 0.0],
        amplitude: 0.1,
        wavenumber: 1.0,
        material: mat,
    };
    let mesh = StructuredMesh::unit_cube(3);
    let mut engine = Engine::new(
        mesh,
        Elastic,
        EngineConfig::new(4).with_variant(KernelVariant::AoSoASplitCk),
    );
    engine.set_initial(|x, q| {
        wave.evaluate(x, 0.0, q);
        Elastic::set_params(q, mat, &Elastic::IDENTITY_JAC);
    });
    engine.run_until(0.15);
    let err = engine.l2_error(&wave);
    assert!(err < 5e-3, "elastic P-wave error {err}");
}

#[test]
fn elastic_s_wave_propagates() {
    let mat = Material {
        rho: 1.0,
        cp: 1.0,
        cs: 0.5,
    };
    let wave = ElasticPlaneWave {
        direction: [0.0, 1.0, 0.0],
        polarization: [1.0, 0.0, 0.0],
        amplitude: 0.1,
        wavenumber: 1.0,
        material: mat,
    };
    let mesh = StructuredMesh::unit_cube(3);
    let mut engine = Engine::new(mesh, Elastic, EngineConfig::new(4));
    engine.set_initial(|x, q| {
        wave.evaluate(x, 0.0, q);
        Elastic::set_params(q, mat, &Elastic::IDENTITY_JAC);
    });
    engine.run_until(0.15);
    let err = engine.l2_error(&wave);
    assert!(err < 5e-3, "elastic S-wave error {err}");
}

#[test]
fn point_source_radiates_into_receiver() {
    // Quiescent acoustic medium, Ricker source at the centre; a nearby
    // receiver must record a signal after the travel time, a far one later.
    let mesh = StructuredMesh::unit_cube(4);
    let mut engine = Engine::new(mesh, Acoustic, EngineConfig::new(4));
    engine.set_initial(|_x, q| {
        q.fill(0.0);
        Acoustic::set_params(q, 1.0, 1.0); // c = 1
    });
    // Frequency chosen so the wavelet is resolved by the mesh (~5 cells
    // per wavelength): arrival timing is then physical, not dispersive.
    engine.add_point_source(PointSource {
        position: [0.55, 0.55, 0.55],
        amplitude: vec![1.0, 0.0, 0.0, 0.0], // pressure injection
        stf: SourceTimeFunction::Ricker {
            t0: 0.35,
            frequency: 3.0,
        },
    });
    // Receiver two cells away (the source cell itself sees the projected
    // delta immediately — spectral basis — so probe a distant cell).
    let far = engine.add_receiver([0.1, 0.55, 0.55]);
    engine.run_until(1.2);
    let peak: f64 = engine.receivers[far]
        .records
        .iter()
        .map(|(_, v)| v[acoustic::P].abs())
        .fold(0.0, f64::max);
    assert!(peak > 1e-6, "receiver recorded nothing (peak {peak})");
    // Distance 0.45, c = 1, wavelet onset ≈ t0 − 1/f ≈ 0.02: the signal
    // reaches the receiver from ≈ 0.47. Well before that it must be tiny.
    let early: f64 = engine.receivers[far]
        .records
        .iter()
        .filter(|(t, _)| *t < 0.25)
        .map(|(_, v)| v[acoustic::P].abs())
        .fold(0.0, f64::max);
    assert!(
        early < peak * 0.05,
        "signal before arrival: early={early} peak={peak}"
    );
}

#[test]
fn elastic_long_run_is_stable() {
    // Coarse, under-resolved run over many periods: dispersive error is
    // allowed, blow-up is not (Rusanov + CFL keep the scheme stable).
    let mat = Material {
        rho: 1.0,
        cp: 1.0,
        cs: 0.6,
    };
    let wave = ElasticPlaneWave {
        direction: [0.6, 0.8, 0.0],
        polarization: [0.6, 0.8, 0.0],
        amplitude: 0.1,
        wavenumber: 1.0,
        material: mat,
    };
    let mesh = StructuredMesh::unit_cube(2);
    let mut engine = Engine::new(mesh, Elastic, EngineConfig::new(3));
    engine.set_initial(|x, q| {
        wave.evaluate(x, 0.0, q);
        Elastic::set_params(q, mat, &Elastic::IDENTITY_JAC);
    });
    let max_v0 = max_abs_var(&engine, elastic::VX);
    engine.run_until(2.0);
    let max_v1 = max_abs_var(&engine, elastic::VX);
    assert!(
        max_v1 <= max_v0 * 3.0 && max_v1.is_finite(),
        "velocity blew up: {max_v0} -> {max_v1}"
    );
}

fn max_abs_var(engine: &Engine<Elastic>, s: usize) -> f64 {
    let m_pad = engine.plan.aos.m_pad();
    let nodes = engine.plan.n().pow(3);
    (0..engine.mesh.num_cells())
        .flat_map(|c| {
            let q = engine.cell_state(c);
            (0..nodes).map(move |k| q[k * m_pad + s].abs())
        })
        .fold(0.0, f64::max)
}

#[test]
fn maxwell_plane_wave_propagates() {
    use aderdg_pde::{Maxwell, MaxwellPlaneWave};
    let wave = MaxwellPlaneWave {
        direction: [0.0, 1.0, 0.0],
        polarization: [0.0, 0.0, 1.0],
        amplitude: 1.0,
        wavenumber: 1.0,
        epsilon: 1.0,
        mu: 1.0,
    };
    let mesh = StructuredMesh::unit_cube(3);
    let mut engine = Engine::new(
        mesh,
        Maxwell,
        EngineConfig::new(4).with_variant(KernelVariant::AoSoASplitCk),
    );
    engine.set_initial(|x, q| {
        wave.evaluate(x, 0.0, q);
        Maxwell::set_params(q, wave.epsilon, wave.mu);
    });
    engine.run_until(0.2);
    let err = engine.l2_error(&wave);
    assert!(err < 5e-3, "maxwell error {err}");
}

#[test]
fn swe_gravity_wave_propagates_with_mixed_flux_and_ncp() {
    use aderdg_pde::{LinearizedSwe, SweGravityWave};
    let wave = SweGravityWave {
        direction: [1.0, 0.0, 0.0],
        amplitude: 0.05,
        wavenumber: 1.0,
        depth: 1.0,
        gravity: 1.0,
    };
    let mesh = StructuredMesh::unit_cube(3);
    // Exercise both computeF and computeNcp through every variant.
    for variant in KernelVariant::ALL {
        let mut engine = Engine::new(
            mesh.clone(),
            LinearizedSwe,
            EngineConfig::new(4).with_variant(variant),
        );
        engine.set_initial(|x, q| {
            wave.evaluate(x, 0.0, q);
            LinearizedSwe::set_params(q, wave.depth, wave.gravity);
        });
        engine.run_until(0.1);
        let err = engine.l2_error(&wave);
        assert!(err < 5e-3, "{variant:?}: swe error {err}");
    }
}

#[test]
fn receiver_csv_roundtrip() {
    let wave = AcousticPlaneWave {
        direction: [1.0, 0.0, 0.0],
        amplitude: 1.0,
        wavenumber: 1.0,
        rho: 1.0,
        bulk: 1.0,
    };
    let mesh = StructuredMesh::unit_cube(2);
    let mut engine = Engine::new(mesh, Acoustic, EngineConfig::new(3));
    engine.set_initial(|x, q| {
        wave.evaluate(x, 0.0, q);
        Acoustic::set_params(q, 1.0, 1.0);
    });
    let id = engine.add_receiver([0.3, 0.3, 0.3]);
    engine.run_until(0.05);
    let mut buf = Vec::new();
    engine.write_receiver_csv(id, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines[0], "t,q0,q1,q2,q3");
    assert_eq!(lines.len() - 1, engine.receivers[id].records.len());
    assert!(lines.len() > 2);
}

#[test]
fn l2_norm_is_dissipative_on_resolved_wave() {
    let wave = AcousticPlaneWave {
        direction: [1.0, 0.0, 0.0],
        amplitude: 1.0,
        wavenumber: 1.0,
        rho: 1.0,
        bulk: 1.0,
    };
    let mesh = StructuredMesh::unit_cube(2);
    let mut engine = Engine::new(mesh, Acoustic, EngineConfig::new(5));
    engine.set_initial(|x, q| {
        wave.evaluate(x, 0.0, q);
        Acoustic::set_params(q, 1.0, 1.0);
    });
    let e0 = engine.l2_norm();
    engine.run_until(0.5);
    let e1 = engine.l2_norm();
    assert!(e1 <= e0 * 1.001, "norm grew: {e0} -> {e1}");
    assert!(e1 > e0 * 0.5, "over-dissipation: {e0} -> {e1}");
}

#[test]
fn spec_file_drives_engine() {
    use aderdg_core::SolverSpec;
    let spec = SolverSpec::parse("order = 3\nkernel = splitck\ncfl = 0.35\n").unwrap();
    let mesh = StructuredMesh::unit_cube(2);
    let pde = AdvectionSystem::new(1, [1.0, 0.0, 0.0]);
    let exact = AdvectedSine {
        n_vars: 1,
        velocity: [1.0, 0.0, 0.0],
        wave: [1.0, 0.0, 0.0],
    };
    let mut engine = Engine::new(mesh, pde, spec.engine_config());
    engine.set_initial(|x, q| exact.evaluate(x, 0.0, q));
    engine.run_until(0.05);
    assert!(engine.l2_error(&exact) < 0.05);
    assert_eq!(engine.config.kernel.name(), "splitck");
}

#[test]
fn gauss_lobatto_rule_works_end_to_end() {
    use aderdg_quadrature::QuadratureRule;
    let wave = AcousticPlaneWave {
        direction: [1.0, 0.0, 0.0],
        amplitude: 1.0,
        wavenumber: 1.0,
        rho: 1.0,
        bulk: 1.0,
    };
    let mesh = StructuredMesh::unit_cube(2);
    let mut engine = Engine::new(
        mesh,
        Acoustic,
        EngineConfig::new(5).with_rule(QuadratureRule::GaussLobatto),
    );
    engine.set_initial(|x, q| {
        wave.evaluate(x, 0.0, q);
        Acoustic::set_params(q, 1.0, 1.0);
    });
    engine.run_until(0.1);
    let err = engine.l2_error(&wave);
    assert!(err < 5e-3, "GLL acoustic error {err}");
}

#[test]
#[should_panic(expected = "already has a point source")]
fn colocated_point_sources_are_rejected() {
    // One rank-1 CellSource per cell: a second source in the same cell
    // cannot be superposed and must be rejected loudly, not dropped.
    use aderdg_pde::{PointSource, SourceTimeFunction};
    let mesh = StructuredMesh::unit_cube(2);
    let mut engine = Engine::new(mesh, Acoustic, EngineConfig::new(3));
    let src = |pos: [f64; 3]| PointSource {
        position: pos,
        amplitude: vec![1.0, 0.0, 0.0, 0.0],
        stf: SourceTimeFunction::Ricker {
            t0: 0.3,
            frequency: 2.0,
        },
    };
    engine.add_point_source(src([0.3, 0.3, 0.3]));
    engine.add_point_source(src([0.4, 0.4, 0.4])); // same cell on a 2³ mesh
}
