//! Tuner property tests: seeded sweeps over plan shapes asserting the
//! invariants the engine relies on — picks stay within `[1, cap]`,
//! `model` mode is deterministic for a fixed plan, and `tuning = static`
//! reproduces the original `auto_block_size` heuristic exactly for every
//! registered kernel.

use aderdg_core::engine::BLOCK_SIZE_CAP;
use aderdg_core::tune::{model_block_candidates, tune, TuningMode};
use aderdg_core::{auto_block_size, Engine, EngineConfig, KernelRegistry, StpConfig, StpPlan};
use aderdg_mesh::StructuredMesh;
use aderdg_pde::{Acoustic, LinearPde};
use aderdg_tensor::Lcg;

/// A seeded sweep of plan shapes (order, quantities) covering the paper's
/// range without an exhaustive grid.
fn seeded_shapes(seed: u64, count: usize) -> Vec<(usize, usize)> {
    let mut rng = Lcg::new(seed);
    (0..count)
        .map(|_| {
            let order = rng.usize(2, 7); // 2..=6
            let m = [3usize, 5, 9, 21][rng.usize(0, 4)];
            (order, m)
        })
        .collect()
}

#[test]
fn chosen_block_size_is_always_within_the_cap() {
    for (order, m) in seeded_shapes(0xA11C_E5ED, 8) {
        let plan = StpPlan::new(StpConfig::new(order, m), [0.5; 3]);
        for kernel in KernelRegistry::global().kernels() {
            for mode in [TuningMode::Static, TuningMode::Model] {
                let report = tune(&plan, kernel, &Acoustic, mode, None);
                assert!(
                    (1..=BLOCK_SIZE_CAP).contains(&report.block_size),
                    "kernel {} order {order} m {m} mode {mode}: pick {}",
                    kernel.name(),
                    report.block_size
                );
                for c in &report.block_candidates {
                    assert!((1..=BLOCK_SIZE_CAP).contains(&c.block_size));
                }
            }
        }
    }
}

#[test]
fn model_mode_is_deterministic_for_a_fixed_plan() {
    for (order, m) in seeded_shapes(0xD37E_0001, 4) {
        let plan = StpPlan::new(StpConfig::new(order, m), [0.5; 3]);
        for name in ["generic", "aosoa_splitck"] {
            // Bypass the tuner's memo: recompute the candidate slate from
            // scratch both times and require identical costs and pick.
            let a = model_block_candidates(&plan, name, false).unwrap();
            let b = model_block_candidates(&plan, name, false).unwrap();
            assert_eq!(a, b, "kernel {name} order {order} m {m}");
        }
    }
}

#[test]
fn static_tuning_reproduces_auto_block_size_for_every_registered_kernel() {
    for (order, m) in seeded_shapes(0x57A7_1C00, 6) {
        let plan = StpPlan::new(StpConfig::new(order, m), [0.5; 3]);
        for kernel in KernelRegistry::global().kernels() {
            let report = tune(&plan, kernel, &Acoustic, TuningMode::Static, None);
            assert_eq!(
                report.block_size,
                auto_block_size(kernel.footprint_bytes(&plan)),
                "kernel {} order {order} m {m}",
                kernel.name()
            );
            assert_eq!(report.static_block_size, report.block_size);
            assert!(report.block_candidates.is_empty());
        }
    }
}

#[test]
fn engine_level_static_tuning_matches_the_pre_tuner_heuristic() {
    // The full engine path: `tuning = static` must reproduce exactly the
    // block size the pre-tuner engine used, for every registered kernel.
    for kernel in KernelRegistry::global().kernels() {
        let config = EngineConfig::new(3)
            .with_kernel(kernel)
            .with_tuning(TuningMode::Static);
        let engine = Engine::new(StructuredMesh::unit_cube(2), Acoustic, config);
        assert_eq!(
            engine.block_size(),
            auto_block_size(kernel.footprint_bytes(&engine.plan)),
            "kernel {}",
            kernel.name()
        );
    }
}

#[test]
fn model_and_probe_agree_with_candidate_slate_membership() {
    // Whatever mode picks, the pick must come from the evaluated slate
    // (or be the static answer for per-cell fallback kernels).
    let plan = StpPlan::new(StpConfig::new(4, Acoustic.num_quantities()), [0.25; 3]);
    for kernel in KernelRegistry::global().kernels() {
        for mode in [TuningMode::Model, TuningMode::Probe] {
            let report = tune(&plan, kernel, &Acoustic, mode, None);
            if report.block_candidates.is_empty() {
                assert_eq!(report.block_size, report.static_block_size);
            } else {
                assert!(report
                    .block_candidates
                    .iter()
                    .any(|c| c.block_size == report.block_size));
            }
        }
    }
}
