//! Scheduler torture tests for the worker pool (`aderdg_core::par`).
//!
//! Seeded random DAGs — diamonds, wide fan-outs, long chains,
//! disconnected components — run at 1/2/4/16 threads on **both**
//! executors (persistent work-stealing pool and the scoped fallback),
//! asserting every task runs exactly once with its dependencies
//! finished first. Panic-in-task must propagate without deadlocking or
//! poisoning the pool for the next call; `set_num_threads` must resize
//! safely while idle and fail loudly mid-task; the cell-loop reductions
//! (`map_max`, `for_each_mut_init`) must keep their NaN/identity and
//! state-reuse semantics on the persistent pool.
//!
//! Every test mutates process-global knobs (thread count, pool mode), so
//! every test serializes on one mutex and restores what it found.

use aderdg_core::par::{self, PoolMode};
use aderdg_tensor::Lcg;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Serializes the knob-flipping tests; recovers from poisoning so one
/// failed test does not cascade into every other.
static KNOB: Mutex<()> = Mutex::new(());

fn knob_guard() -> std::sync::MutexGuard<'static, ()> {
    KNOB.lock().unwrap_or_else(|e| e.into_inner())
}

/// A task dependency graph in the `run_graph_init` encoding.
#[derive(Debug, Clone, Default)]
struct Dag {
    indegree: Vec<usize>,
    dependents: Vec<Vec<usize>>,
}

impl Dag {
    fn new(n: usize) -> Self {
        Dag {
            indegree: vec![0; n],
            dependents: vec![Vec::new(); n],
        }
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.dependents[from].push(to);
        self.indegree[to] += 1;
    }

    fn len(&self) -> usize {
        self.indegree.len()
    }
}

/// A chain of diamonds: `0 -> {1, 2} -> 3 -> {4, 5} -> 6 -> ...`.
fn diamond_chain(layers: usize) -> Dag {
    let mut g = Dag::new(4 * layers);
    for l in 0..layers {
        let b = 4 * l;
        g.edge(b, b + 1);
        g.edge(b, b + 2);
        g.edge(b + 1, b + 3);
        g.edge(b + 2, b + 3);
        if l + 1 < layers {
            g.edge(b + 3, b + 4);
        }
    }
    g
}

/// One source fanning out to `width` siblings, all joining one sink.
fn wide_fanout(width: usize) -> Dag {
    let mut g = Dag::new(width + 2);
    for t in 1..=width {
        g.edge(0, t);
        g.edge(t, width + 1);
    }
    g
}

/// A single dependency chain of `n` tasks (worst case for stealing:
/// no parallelism to find, scheduler overhead fully exposed).
fn long_chain(n: usize) -> Dag {
    let mut g = Dag::new(n);
    for t in 1..n {
        g.edge(t - 1, t);
    }
    g
}

/// `k` disconnected chains of uneven lengths.
fn disconnected_components(k: usize, seed: u64) -> Dag {
    let mut rng = Lcg::new(seed);
    let lens: Vec<usize> = (0..k).map(|_| rng.usize(1, 40)).collect();
    let mut g = Dag::new(lens.iter().sum());
    let mut base = 0;
    for &len in &lens {
        for t in 1..len {
            g.edge(base + t - 1, base + t);
        }
        base += len;
    }
    g
}

/// A seeded random layered DAG: every task in layer `l > 0` depends on
/// 1–3 random tasks of earlier layers, so diamonds, joins and skips all
/// occur; acyclic by construction.
fn random_layered(seed: u64, layers: usize, width: usize) -> Dag {
    let mut rng = Lcg::new(seed);
    let n = layers * width;
    let mut g = Dag::new(n);
    for t in width..n {
        let deps = rng.usize(1, 4);
        for _ in 0..deps {
            let d = rng.usize(0, (t / width) * width); // any earlier layer
            if !g.dependents[d].contains(&t) {
                g.edge(d, t);
            }
        }
    }
    g
}

/// Runs `g` and asserts exactly-once execution with every dependency
/// finished before its dependents (checked with completion stamps).
fn check_graph(g: &Dag) {
    let n = g.len();
    let finished: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    let stamp = AtomicUsize::new(0);
    // Reverse edges once so the in-task dependency check is O(deps).
    let mut deps_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (from, outs) in g.dependents.iter().enumerate() {
        for &to in outs {
            deps_of[to].push(from);
        }
    }
    par::run_graph_init(
        &g.indegree,
        &g.dependents,
        || (),
        |(), t| {
            for &d in &deps_of[t] {
                assert!(
                    finished[d].load(Ordering::Acquire) > 0,
                    "task {t} ran before dependency {d}"
                );
            }
            let s = 1 + stamp.fetch_add(1, Ordering::AcqRel);
            let prev = finished[t].swap(s, Ordering::AcqRel);
            assert_eq!(prev, 0, "task {t} ran twice");
        },
    );
    for (t, f) in finished.iter().enumerate() {
        assert!(f.load(Ordering::Acquire) > 0, "task {t} never ran");
    }
    assert_eq!(stamp.load(Ordering::Acquire), n, "wrong completion count");
}

/// Runs `body` across the full (threads × executor) torture matrix,
/// restoring the ambient configuration afterwards.
fn torture_matrix(body: impl Fn()) {
    let _guard = knob_guard();
    let threads_before = par::num_threads();
    let mode_before = par::pool_mode();
    for mode in [PoolMode::Persistent, PoolMode::Scoped] {
        par::set_pool_mode(mode);
        for threads in [1, 2, 4, 16] {
            par::set_num_threads(threads);
            body();
        }
    }
    par::set_pool_mode(mode_before);
    par::set_num_threads(threads_before);
}

#[test]
fn seeded_random_dags_run_exactly_once_in_topo_order() {
    torture_matrix(|| {
        for seed in [1, 7, 42] {
            check_graph(&random_layered(seed, 6, 9));
        }
    });
}

#[test]
fn diamond_chains_wide_fanouts_and_chains() {
    torture_matrix(|| {
        check_graph(&diamond_chain(24));
        check_graph(&wide_fanout(100));
        check_graph(&long_chain(200));
        check_graph(&disconnected_components(12, 3));
    });
}

#[test]
fn empty_graph_single_task_and_tasks_far_exceeding_threads() {
    torture_matrix(|| {
        // Empty graph: a no-op, the task closure must never run.
        par::run_graph_init(&[], &[], || (), |(), _| unreachable!("no tasks"));
        // Single task.
        check_graph(&long_chain(1));
        // Tasks ≫ threads: a 2000-task fan-out through a 16-worker pool.
        check_graph(&wide_fanout(2000));
    });
}

#[test]
fn unbalanced_task_durations_still_cover_every_task() {
    // Steal-heavy shape: the first sibling of a wide fan-out is ~1000×
    // slower than the rest, so with stealing every other worker drains
    // the remaining siblings while one worker is stuck. Covers the
    // "one slow shard" scheduling pattern the pool exists for.
    torture_matrix(|| {
        let g = wide_fanout(64);
        let n = g.len();
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par::run_graph_init(
            &g.indegree,
            &g.dependents,
            || (),
            |(), t| {
                if t == 1 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                hits[t].fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    });
}

#[test]
fn panic_in_task_propagates_and_pool_survives() {
    let _guard = knob_guard();
    let threads_before = par::num_threads();
    let mode_before = par::pool_mode();
    for mode in [PoolMode::Persistent, PoolMode::Scoped] {
        par::set_pool_mode(mode);
        for threads in [2, 4, 16] {
            par::set_num_threads(threads);
            let g = random_layered(11, 5, 8);
            let victim = g.len() / 2;
            let result = catch_unwind(AssertUnwindSafe(|| {
                par::run_graph_init(
                    &g.indegree,
                    &g.dependents,
                    || (),
                    |(), t| {
                        if t == victim {
                            panic!("boom in task {t}");
                        }
                    },
                );
            }));
            assert!(result.is_err(), "the task panic must propagate");
            // The pool is not poisoned: graph, cell loop and reduction
            // all still work on the very next calls.
            check_graph(&diamond_chain(8));
            let mut v = vec![0usize; 257];
            par::for_each_mut(&mut v, |i, x| *x = i);
            assert!(v.iter().enumerate().all(|(i, &x)| x == i));
            let m = par::map_max(&v, 0.0, |&x| x as f64);
            assert_eq!(m, 256.0);
        }
    }
    par::set_pool_mode(mode_before);
    par::set_num_threads(threads_before);
}

#[test]
fn panic_in_cell_loop_propagates_on_persistent_pool() {
    let _guard = knob_guard();
    let threads_before = par::num_threads();
    let mode_before = par::pool_mode();
    par::set_pool_mode(PoolMode::Persistent);
    par::set_num_threads(4);
    let mut v = vec![0usize; 64];
    let result = catch_unwind(AssertUnwindSafe(|| {
        par::for_each_mut(&mut v, |i, _| {
            if i == 33 {
                panic!("boom in item {i}");
            }
        });
    }));
    assert!(result.is_err(), "the item panic must propagate");
    // Next batch is unaffected.
    par::for_each_mut(&mut v, |i, x| *x = i + 1);
    assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
    par::set_pool_mode(mode_before);
    par::set_num_threads(threads_before);
}

#[test]
fn set_num_threads_resizes_the_idle_pool_safely() {
    let _guard = knob_guard();
    let threads_before = par::num_threads();
    let mode_before = par::pool_mode();
    par::set_pool_mode(PoolMode::Persistent);
    // Grow, shrink, regrow — a graph and a reduction must work at every
    // size (the pool is rebuilt lazily after each resize).
    for &threads in &[4, 2, 16, 1, 8] {
        par::set_num_threads(threads);
        assert_eq!(par::num_threads(), threads);
        check_graph(&random_layered(5, 4, 6));
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(par::map_max(&v, 0.0, |&x| x), 99.0);
    }
    par::set_pool_mode(mode_before);
    par::set_num_threads(threads_before);
}

#[test]
fn set_num_threads_mid_task_panics_with_a_clear_message() {
    // The pre-pool implementation silently accepted a resize from inside
    // a running graph (a documented-comment-only footgun); the pool makes
    // it a loud error. Pin the message so it stays actionable.
    let _guard = knob_guard();
    let threads_before = par::num_threads();
    let mode_before = par::pool_mode();
    for mode in [PoolMode::Persistent, PoolMode::Scoped] {
        par::set_pool_mode(mode);
        par::set_num_threads(4);
        let mut v = vec![0usize; 16];
        let result = catch_unwind(AssertUnwindSafe(|| {
            par::for_each_mut(&mut v, |_, _| par::set_num_threads(2));
        }));
        let payload = result.expect_err("mid-task resize must panic");
        // The persistent pool propagates the worker's payload verbatim; the
        // scoped fallback re-panics from the scope join with its own payload
        // ("a scoped thread panicked"), so only pin the message for the pool.
        if mode == PoolMode::Persistent {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            assert!(
                msg.contains("inside a parallel task"),
                "unexpected panic message: {msg:?}"
            );
        }
    }
    par::set_pool_mode(mode_before);
    par::set_num_threads(threads_before);
}

#[test]
fn map_max_nan_and_identity_semantics_on_the_persistent_pool() {
    let _guard = knob_guard();
    let threads_before = par::num_threads();
    let mode_before = par::pool_mode();
    par::set_pool_mode(PoolMode::Persistent);
    par::set_num_threads(16);
    // NaN items lose against any non-NaN operand...
    let v = [1.0f64, f64::NAN, 5.0, f64::NAN, 2.0];
    assert_eq!(par::map_max(&v, 0.0, |&x| x), 5.0);
    // ...an all-NaN slice falls back to the identity...
    let all_nan = vec![f64::NAN; 40];
    assert_eq!(par::map_max(&all_nan, -1.0, |&x| x), -1.0);
    // ...the empty slice returns the identity without touching the pool...
    assert_eq!(par::map_max::<f64>(&[], 7.5, |&x| x), 7.5);
    // ...and a NaN identity behaves like f64::max with a NaN seed.
    let w = [2.0f64, 9.0];
    assert_eq!(par::map_max(&w, f64::NAN, |&x| x), 9.0);
    par::set_pool_mode(mode_before);
    par::set_num_threads(threads_before);
}

#[test]
fn for_each_state_reuse_on_the_persistent_pool() {
    let _guard = knob_guard();
    let threads_before = par::num_threads();
    let mode_before = par::pool_mode();
    par::set_pool_mode(PoolMode::Persistent);
    par::set_num_threads(4);
    // Each chunk gets one init()-produced state, reused across the
    // chunk's items: the per-state counts must sum to the item count,
    // and no more states than worker threads may ever be created.
    let states = AtomicUsize::new(0);
    let visits = AtomicUsize::new(0);
    let mut v = vec![0u8; 1003];
    par::for_each_mut_init(
        &mut v,
        || {
            states.fetch_add(1, Ordering::Relaxed);
            0usize
        },
        |count, _, _| {
            *count += 1;
            visits.fetch_add(1, Ordering::Relaxed);
        },
    );
    assert_eq!(visits.load(Ordering::Relaxed), 1003);
    let created = states.load(Ordering::Relaxed);
    assert!(
        (1..=4).contains(&created),
        "expected at most one state per worker, got {created}"
    );
    par::set_pool_mode(mode_before);
    par::set_num_threads(threads_before);
}

#[test]
fn graph_worker_states_are_reused_across_tasks() {
    let _guard = knob_guard();
    let threads_before = par::num_threads();
    let mode_before = par::pool_mode();
    par::set_pool_mode(PoolMode::Persistent);
    par::set_num_threads(4);
    // 500 independent tasks on 4 workers: at most 4 states may be
    // created (one per worker), far fewer than tasks — the whole point
    // of step-spanning scratch reuse.
    let states = AtomicUsize::new(0);
    let ran = AtomicUsize::new(0);
    let g = wide_fanout(498); // 500 tasks
    par::run_graph_init(
        &g.indegree,
        &g.dependents,
        || states.fetch_add(1, Ordering::Relaxed),
        |_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        },
    );
    assert_eq!(ran.load(Ordering::Relaxed), 500);
    let created = states.load(Ordering::Relaxed);
    assert!(
        (1..=4).contains(&created),
        "expected at most one state per worker, got {created}"
    );
    par::set_pool_mode(mode_before);
    par::set_num_threads(threads_before);
}

#[test]
fn cycle_detection_does_not_wedge_either_executor() {
    torture_matrix(|| {
        // Self-cycle hanging off an acyclic prefix.
        let mut g = Dag::new(4);
        g.edge(0, 1);
        g.edge(1, 2);
        g.edge(3, 3); // self-loop: never ready
        let result = catch_unwind(AssertUnwindSafe(|| {
            par::run_graph_init(&g.indegree, &g.dependents, || (), |(), _| {});
        }));
        assert!(result.is_err(), "the cycle must be detected");
        // And the executor still works afterwards.
        check_graph(&diamond_chain(4));
    });
}
