//! CLI parser and driver tests: every user mistake must come back as an
//! actionable [`CliError`], never a panic; the smoke gate must cover
//! every registered scenario on both pipelines and the documented
//! gallery.

use aderdg_cli::{
    args_from_config, execute_run, expand_sweep, missing_gallery_sections, parse_args, render_list,
    render_summary, run_sweep, toml, write_receivers_csv, write_series_csv, Command, RunArgs,
};
use aderdg_core::engine::PipelineMode;
use aderdg_core::scenario::{RunRequest, ScenarioRegistry};
use aderdg_core::tune::TuningMode;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn parses_a_full_run_command() {
    let cmd = parse_args(&args(&[
        "--scenario",
        "loh1",
        "--order",
        "4",
        "--kernel",
        "aosoa_splitck",
        "--pipeline",
        "sharded",
        "--tuning",
        "model",
        "--cells",
        "3",
        "--t-end",
        "0.5",
        "--block-size",
        "auto",
        "--shard-size",
        "6",
        "--cfl",
        "0.35",
        "--out",
        "run.csv",
    ]))
    .unwrap();
    let Command::Run(run) = cmd else {
        panic!("expected a run command");
    };
    assert_eq!(run.scenario, "loh1");
    assert_eq!(run.request.order, Some(4));
    assert_eq!(run.request.kernel.as_deref(), Some("aosoa_splitck"));
    assert_eq!(run.request.pipeline, Some(PipelineMode::Sharded));
    assert_eq!(run.request.tuning, Some(TuningMode::Model));
    assert_eq!(run.request.cells, Some(3));
    assert_eq!(run.request.t_end, Some(0.5));
    assert_eq!(run.request.block_size, Some(None));
    assert_eq!(run.request.shard_size, Some(Some(6)));
    assert_eq!(run.request.cfl, Some(0.35));
    assert_eq!(run.out.as_deref(), Some(std::path::Path::new("run.csv")));
    assert!(!run.request.smoke);
}

#[test]
fn unknown_flag_is_an_actionable_error() {
    let e = parse_args(&args(&["--scenario", "loh1", "--warp", "9"])).unwrap_err();
    assert!(e.message.contains("unknown flag `--warp`"), "{e}");
    assert!(e.message.contains("--help"), "{e}");
}

#[test]
fn bad_values_are_actionable_errors() {
    for (cli, needle) in [
        (
            vec!["--scenario", "x", "--order", "four"],
            "invalid value `four` for --order",
        ),
        (vec!["--scenario", "x", "--cfl", "fast"], "--cfl"),
        (
            vec!["--scenario", "x", "--pipeline", "warp"],
            "barrier|sharded",
        ),
        (
            vec!["--scenario", "x", "--tuning", "lucky"],
            "static|model|probe",
        ),
        (
            vec!["--scenario", "x", "--width", "mmx"],
            "sse|avx2|avx512|host",
        ),
        (
            vec!["--scenario", "x", "--rule", "simpson"],
            "gauss_legendre|gauss_lobatto",
        ),
        (
            vec!["--scenario", "x", "--block-size", "0"],
            "auto or an integer >= 1",
        ),
        (
            vec!["--scenario", "x", "--shard-size", "-3"],
            "auto or an integer >= 1",
        ),
        (
            vec!["--scenario", "x", "--t-end"],
            "--t-end requires a value",
        ),
    ] {
        let e = parse_args(&args(&cli)).unwrap_err();
        assert!(e.message.contains(needle), "{cli:?}: {e}");
    }
}

#[test]
fn missing_scenario_is_an_actionable_error() {
    let e = parse_args(&args(&["--order", "4"])).unwrap_err();
    assert!(e.message.contains("missing scenario"), "{e}");
    assert!(e.message.contains("--list"), "{e}");
    let e = parse_args(&args(&[])).unwrap_err();
    assert!(e.message.contains("no arguments"), "{e}");
}

#[test]
fn unknown_scenario_lists_the_registry() {
    let run = RunArgs {
        scenario: "warp_drive".into(),
        ..RunArgs::default()
    };
    let e = execute_run(&run).unwrap_err();
    assert!(e.message.contains("unknown scenario `warp_drive`"), "{e}");
    assert!(e.message.contains("loh1"), "{e}");
}

#[test]
fn invalid_override_fails_the_run_not_the_process() {
    let run = RunArgs {
        scenario: "acoustic_wave".into(),
        request: RunRequest {
            kernel: Some("turbo".into()),
            smoke: true,
            ..RunRequest::default()
        },
        ..RunArgs::default()
    };
    let e = execute_run(&run).unwrap_err();
    assert!(e.message.contains("unknown kernel `turbo`"), "{e}");
}

#[test]
fn config_file_parses_and_flags_override() {
    let dir = std::env::temp_dir().join("aderdg-cli-test-config");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.toml");
    std::fs::write(
        &path,
        "[run]\n\
         scenario = \"acoustic_wave\"\n\
         t_end = 0.2\n\
         cells = 3\n\
         [solver]\n\
         order = 4\n\
         kernel = \"generic\"\n\
         pipeline = barrier\n",
    )
    .unwrap();
    let cmd = parse_args(&args(&["--config", path.to_str().unwrap(), "--order", "5"])).unwrap();
    let Command::Run(run) = cmd else {
        panic!("expected a run command");
    };
    assert_eq!(run.scenario, "acoustic_wave");
    assert_eq!(run.request.t_end, Some(0.2));
    assert_eq!(run.request.cells, Some(3));
    assert_eq!(run.request.order, Some(5)); // flag wins over the file
    assert_eq!(run.request.kernel.as_deref(), Some("generic"));
    assert_eq!(run.request.pipeline, Some(PipelineMode::Barrier));
}

#[test]
fn config_rejects_unknown_tables_keys_and_bad_values() {
    for (text, needle) in [
        ("[plotting]\nx = 1\n", "unknown table `[plotting]`"),
        ("[run]\ncolour = red\n", "unknown [run] key `colour`"),
        ("[solver]\ncells = 4\n", "unknown [solver] key `cells`"),
        ("[solver]\norder = four\n", "[solver] order"),
        ("[run]\nsmoke = maybe\n", "true|false"),
        ("scenario = \"x\"\n", "outside any table"),
    ] {
        let doc = toml::parse(text).unwrap();
        let e = args_from_config(&doc).unwrap_err();
        assert!(e.message.contains(needle), "`{text}`: {e}");
    }
}

#[test]
fn smoke_all_covers_every_scenario_and_both_pipelines() {
    // The real gate CI runs — against the real gallery document.
    let docs = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/SCENARIOS.md");
    let mut log = Vec::new();
    aderdg_cli::smoke_all(&docs, &mut log).unwrap();
    let log = String::from_utf8(log).unwrap();
    for name in ScenarioRegistry::global().names() {
        assert!(log.contains(name), "no smoke line for `{name}`");
    }
    assert!(log.contains("Sharded") && log.contains("Barrier"));
}

#[test]
fn gallery_check_reports_missing_sections() {
    let missing = missing_gallery_sections("# empty\n");
    assert_eq!(
        missing.len(),
        ScenarioRegistry::global().names().len(),
        "an empty gallery must miss every scenario"
    );
    // A heading alone (without the reproduction command) does not count.
    let text = "## `acoustic_wave` — something\n";
    assert!(missing_gallery_sections(text).contains(&"acoustic_wave"));
    let text = "## `acoustic_wave` — something\n```sh\naderdg-run --scenario acoustic_wave\n```\n";
    assert!(!missing_gallery_sections(text).contains(&"acoustic_wave"));
}

#[test]
fn run_outputs_series_and_receiver_csv() {
    let run = RunArgs {
        scenario: "loh1".into(),
        request: RunRequest::smoke(),
        ..RunArgs::default()
    };
    let summary = execute_run(&run).unwrap();
    assert_eq!(summary.scenario, "loh1");
    assert_eq!(summary.receivers.len(), 3);

    let mut series = Vec::new();
    write_series_csv(&summary, &mut series).unwrap();
    let series = String::from_utf8(series).unwrap();
    assert!(series.starts_with("t,steps,l2_norm,l2_error\n"));
    // Header + initial point + one per smoke step; loh1 has no exact
    // solution, so the error column is empty.
    assert_eq!(series.lines().count(), 2 + summary.steps);
    assert!(series.lines().nth(1).unwrap().ends_with(','));

    let mut recv = Vec::new();
    write_receivers_csv(&summary, &mut recv).unwrap();
    let recv = String::from_utf8(recv).unwrap();
    assert!(recv.starts_with("receiver,x,y,z,t"));
    assert_eq!(recv.lines().count(), 1 + 3 * summary.steps);

    let text = render_summary(&summary);
    assert!(text.contains("scenario loh1"));
    assert!(text.contains("receiver(s) recorded"));
}

#[test]
fn list_renders_every_scenario() {
    let text = render_list();
    for name in ScenarioRegistry::global().names() {
        assert!(text.contains(name), "`{name}` missing from --list");
    }
}

#[test]
fn checkpoint_flags_parse() {
    let cmd = parse_args(&args(&[
        "--scenario",
        "acoustic_wave",
        "--smoke",
        "--save-checkpoint",
        "state.ckpt",
    ]))
    .unwrap();
    let Command::Run(run) = cmd else {
        panic!("expected a run command");
    };
    assert_eq!(
        run.request.save_checkpoint.as_deref(),
        Some(std::path::Path::new("state.ckpt"))
    );

    // --resume needs no --scenario: the checkpoint names it.
    let cmd = parse_args(&args(&["--resume", "state.ckpt", "--t-end", "2.0"])).unwrap();
    let Command::Run(run) = cmd else {
        panic!("expected a run command");
    };
    assert!(run.scenario.is_empty());
    assert_eq!(
        run.resume.as_deref(),
        Some(std::path::Path::new("state.ckpt"))
    );
    assert_eq!(run.request.t_end, Some(2.0));
}

#[test]
fn resume_round_trips_through_real_checkpoint_files() {
    let dir = std::env::temp_dir();
    let ck = dir.join(format!("aderdg-cli-resume-{}.ckpt", std::process::id()));

    // Pause a smoke run at step 1 into a checkpoint.
    let mut request = RunRequest::smoke();
    request.set("tuning", "static").unwrap();
    request.save_checkpoint = Some(ck.clone());
    let control = std::sync::Arc::new(aderdg_core::scenario::RunControl::new());
    control.pause_at_step(1);
    request.control = Some(control);
    let paused = execute_run(&RunArgs {
        scenario: "acoustic_wave".into(),
        request,
        ..RunArgs::default()
    })
    .unwrap();
    assert!(paused.paused);

    // Resume purely from the file — no scenario, knobs from the
    // checkpoint — and finish the run.
    let resumed = execute_run(&RunArgs {
        resume: Some(ck.clone()),
        ..RunArgs::default()
    })
    .unwrap();
    assert!(!resumed.paused);
    assert_eq!(resumed.scenario, "acoustic_wave");

    // A mismatched --scenario is rejected before any engine is built.
    let e = execute_run(&RunArgs {
        scenario: "loh1".into(),
        resume: Some(ck.clone()),
        ..RunArgs::default()
    })
    .unwrap_err();
    assert!(e.message.contains("is for scenario `acoustic_wave`"), "{e}");
    let _ = std::fs::remove_file(&ck);

    // A missing checkpoint file is an actionable error.
    let e = execute_run(&RunArgs {
        resume: Some(dir.join("aderdg-cli-no-such.ckpt")),
        ..RunArgs::default()
    })
    .unwrap_err();
    assert!(e.message.contains("cannot read"), "{e}");
}

#[test]
fn sweep_parses_expands_and_rejects_conflicts() {
    let cmd = parse_args(&args(&[
        "--scenario",
        "acoustic_wave",
        "--smoke",
        "--sweep",
        "kernel=generic,splitck",
        "--sweep",
        "order=2,3",
        "--jobs",
        "2",
    ]))
    .unwrap();
    let Command::Run(run) = cmd else {
        panic!("expected a run command");
    };
    assert_eq!(run.jobs, Some(2));
    let combos = expand_sweep(&run.request, &run.sweep).unwrap();
    assert_eq!(combos.len(), 4);
    assert_eq!(combos[0].0, "kernel=generic order=2");
    assert_eq!(combos[3].0, "kernel=splitck order=3");
    assert_eq!(combos[3].1.kernel.as_deref(), Some("splitck"));
    assert_eq!(combos[3].1.order, Some(3));

    // kernel=* expands to the whole registry.
    let combos =
        expand_sweep(&RunRequest::smoke(), &[("kernel".into(), vec!["*".into()])]).unwrap();
    assert_eq!(
        combos.len(),
        aderdg_core::KernelRegistry::global().names().len()
    );

    for (cli, needle) in [
        (
            vec!["--scenario", "x", "--sweep", "kernels"],
            "expected key=value1,value2",
        ),
        (
            vec!["--scenario", "x", "--jobs", "2"],
            "--jobs only applies to --sweep",
        ),
        (
            vec!["--scenario", "x", "--sweep", "order=2", "--jobs", "0"],
            "invalid value `0` for --jobs",
        ),
        (
            vec!["--scenario", "x", "--sweep", "order=2", "--out", "a.csv"],
            "--out cannot be combined with --sweep",
        ),
        (
            vec![
                "--scenario",
                "x",
                "--sweep",
                "order=2",
                "--resume",
                "a.ckpt",
            ],
            "--resume cannot be combined with --sweep",
        ),
    ] {
        let e = parse_args(&args(&cli)).unwrap_err();
        assert!(e.message.contains(needle), "{cli:?}: {e}");
    }

    let e = expand_sweep(&RunRequest::smoke(), &[("warp".into(), vec!["9".into()])]).unwrap_err();
    assert!(e.message.contains("unknown --sweep key `warp`"), "{e}");
}

#[test]
fn sweep_runs_every_combination_and_reports_failures() {
    let run = RunArgs {
        scenario: "acoustic_wave".into(),
        request: RunRequest::smoke(),
        sweep: vec![
            ("kernel".into(), vec!["generic".into(), "splitck".into()]),
            ("pipeline".into(), vec!["barrier".into(), "sharded".into()]),
        ],
        jobs: Some(4),
        ..RunArgs::default()
    };
    let mut log = Vec::new();
    run_sweep(&run, &mut log).unwrap();
    let log = String::from_utf8(log).unwrap();
    assert!(log.contains("4 combination(s)"), "{log}");
    assert_eq!(log.matches("  ok   ").count(), 4, "{log}");

    // A bad kernel value fails its combination — and the sweep.
    let run = RunArgs {
        scenario: "acoustic_wave".into(),
        request: RunRequest::smoke(),
        sweep: vec![("kernel".into(), vec!["generic".into(), "turbo".into()])],
        ..RunArgs::default()
    };
    let mut log = Vec::new();
    let e = run_sweep(&run, &mut log).unwrap_err();
    assert!(e.message.contains("1 of 2"), "{e}");
    let log = String::from_utf8(log).unwrap();
    assert!(log.contains("  FAIL kernel=turbo"), "{log}");
    assert!(log.contains("unknown kernel"), "{log}");
}

#[test]
fn solver_table_rejects_run_level_keys() {
    for key in ["cells", "t_end", "smoke", "snapshot", "save_checkpoint"] {
        let text = format!("[solver]\n{key} = 4\n");
        let doc = toml::parse(&text).unwrap();
        let e = args_from_config(&doc).unwrap_err();
        assert!(
            e.message.contains(&format!("unknown [solver] key `{key}`")),
            "{key}: {e}"
        );
    }
    // …but [run] accepts them.
    let doc = toml::parse(
        "[run]\nscenario = \"acoustic_wave\"\nsmoke = true\nsave_checkpoint = out.ckpt\n",
    )
    .unwrap();
    let run = args_from_config(&doc).unwrap();
    assert!(run.request.smoke);
    assert_eq!(
        run.request.save_checkpoint.as_deref(),
        Some(std::path::Path::new("out.ckpt"))
    );
}

#[test]
fn help_and_list_commands_parse() {
    assert!(matches!(
        parse_args(&args(&["--help"])).unwrap(),
        Command::Help
    ));
    assert!(matches!(
        parse_args(&args(&["--list"])).unwrap(),
        Command::List
    ));
    assert!(matches!(
        parse_args(&args(&["--list-names"])).unwrap(),
        Command::ListNames
    ));
    let Command::SmokeAll { docs } = parse_args(&args(&["--smoke-all"])).unwrap() else {
        panic!("expected smoke-all");
    };
    assert_eq!(docs, std::path::PathBuf::from("docs/SCENARIOS.md"));
}
