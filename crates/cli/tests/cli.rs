//! CLI parser and driver tests: every user mistake must come back as an
//! actionable [`CliError`], never a panic; the smoke gate must cover
//! every registered scenario on both pipelines and the documented
//! gallery.

use aderdg_cli::{
    args_from_config, execute_run, missing_gallery_sections, parse_args, render_list,
    render_summary, toml, write_receivers_csv, write_series_csv, Command, RunArgs,
};
use aderdg_core::engine::PipelineMode;
use aderdg_core::scenario::{RunRequest, ScenarioRegistry};
use aderdg_core::tune::TuningMode;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn parses_a_full_run_command() {
    let cmd = parse_args(&args(&[
        "--scenario",
        "loh1",
        "--order",
        "4",
        "--kernel",
        "aosoa_splitck",
        "--pipeline",
        "sharded",
        "--tuning",
        "model",
        "--cells",
        "3",
        "--t-end",
        "0.5",
        "--block-size",
        "auto",
        "--shard-size",
        "6",
        "--cfl",
        "0.35",
        "--out",
        "run.csv",
    ]))
    .unwrap();
    let Command::Run(run) = cmd else {
        panic!("expected a run command");
    };
    assert_eq!(run.scenario, "loh1");
    assert_eq!(run.request.order, Some(4));
    assert_eq!(run.request.kernel.as_deref(), Some("aosoa_splitck"));
    assert_eq!(run.request.pipeline, Some(PipelineMode::Sharded));
    assert_eq!(run.request.tuning, Some(TuningMode::Model));
    assert_eq!(run.request.cells, Some(3));
    assert_eq!(run.request.t_end, Some(0.5));
    assert_eq!(run.request.block_size, Some(None));
    assert_eq!(run.request.shard_size, Some(Some(6)));
    assert_eq!(run.request.cfl, Some(0.35));
    assert_eq!(run.out.as_deref(), Some(std::path::Path::new("run.csv")));
    assert!(!run.request.smoke);
}

#[test]
fn unknown_flag_is_an_actionable_error() {
    let e = parse_args(&args(&["--scenario", "loh1", "--warp", "9"])).unwrap_err();
    assert!(e.message.contains("unknown flag `--warp`"), "{e}");
    assert!(e.message.contains("--help"), "{e}");
}

#[test]
fn bad_values_are_actionable_errors() {
    for (cli, needle) in [
        (
            vec!["--scenario", "x", "--order", "four"],
            "invalid value `four` for --order",
        ),
        (vec!["--scenario", "x", "--cfl", "fast"], "--cfl"),
        (
            vec!["--scenario", "x", "--pipeline", "warp"],
            "barrier|sharded",
        ),
        (
            vec!["--scenario", "x", "--tuning", "lucky"],
            "static|model|probe",
        ),
        (
            vec!["--scenario", "x", "--width", "mmx"],
            "sse|avx2|avx512|host",
        ),
        (
            vec!["--scenario", "x", "--rule", "simpson"],
            "gauss_legendre|gauss_lobatto",
        ),
        (
            vec!["--scenario", "x", "--block-size", "0"],
            "auto or an integer >= 1",
        ),
        (
            vec!["--scenario", "x", "--shard-size", "-3"],
            "auto or an integer >= 1",
        ),
        (
            vec!["--scenario", "x", "--t-end"],
            "--t-end requires a value",
        ),
    ] {
        let e = parse_args(&args(&cli)).unwrap_err();
        assert!(e.message.contains(needle), "{cli:?}: {e}");
    }
}

#[test]
fn missing_scenario_is_an_actionable_error() {
    let e = parse_args(&args(&["--order", "4"])).unwrap_err();
    assert!(e.message.contains("missing scenario"), "{e}");
    assert!(e.message.contains("--list"), "{e}");
    let e = parse_args(&args(&[])).unwrap_err();
    assert!(e.message.contains("no arguments"), "{e}");
}

#[test]
fn unknown_scenario_lists_the_registry() {
    let run = RunArgs {
        scenario: "warp_drive".into(),
        ..RunArgs::default()
    };
    let e = execute_run(&run).unwrap_err();
    assert!(e.message.contains("unknown scenario `warp_drive`"), "{e}");
    assert!(e.message.contains("loh1"), "{e}");
}

#[test]
fn invalid_override_fails_the_run_not_the_process() {
    let run = RunArgs {
        scenario: "acoustic_wave".into(),
        request: RunRequest {
            kernel: Some("turbo".into()),
            smoke: true,
            ..RunRequest::default()
        },
        ..RunArgs::default()
    };
    let e = execute_run(&run).unwrap_err();
    assert!(e.message.contains("unknown kernel `turbo`"), "{e}");
}

#[test]
fn config_file_parses_and_flags_override() {
    let dir = std::env::temp_dir().join("aderdg-cli-test-config");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.toml");
    std::fs::write(
        &path,
        "[run]\n\
         scenario = \"acoustic_wave\"\n\
         t_end = 0.2\n\
         cells = 3\n\
         [solver]\n\
         order = 4\n\
         kernel = \"generic\"\n\
         pipeline = barrier\n",
    )
    .unwrap();
    let cmd = parse_args(&args(&["--config", path.to_str().unwrap(), "--order", "5"])).unwrap();
    let Command::Run(run) = cmd else {
        panic!("expected a run command");
    };
    assert_eq!(run.scenario, "acoustic_wave");
    assert_eq!(run.request.t_end, Some(0.2));
    assert_eq!(run.request.cells, Some(3));
    assert_eq!(run.request.order, Some(5)); // flag wins over the file
    assert_eq!(run.request.kernel.as_deref(), Some("generic"));
    assert_eq!(run.request.pipeline, Some(PipelineMode::Barrier));
}

#[test]
fn config_rejects_unknown_tables_keys_and_bad_values() {
    for (text, needle) in [
        ("[plotting]\nx = 1\n", "unknown table `[plotting]`"),
        ("[run]\ncolour = red\n", "unknown [run] key `colour`"),
        ("[solver]\ncells = 4\n", "unknown [solver] key `cells`"),
        ("[solver]\norder = four\n", "[solver] order"),
        ("[run]\nsmoke = maybe\n", "true|false"),
        ("scenario = \"x\"\n", "outside any table"),
    ] {
        let doc = toml::parse(text).unwrap();
        let e = args_from_config(&doc).unwrap_err();
        assert!(e.message.contains(needle), "`{text}`: {e}");
    }
}

#[test]
fn smoke_all_covers_every_scenario_and_both_pipelines() {
    // The real gate CI runs — against the real gallery document.
    let docs = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/SCENARIOS.md");
    let mut log = Vec::new();
    aderdg_cli::smoke_all(&docs, &mut log).unwrap();
    let log = String::from_utf8(log).unwrap();
    for name in ScenarioRegistry::global().names() {
        assert!(log.contains(name), "no smoke line for `{name}`");
    }
    assert!(log.contains("Sharded") && log.contains("Barrier"));
}

#[test]
fn gallery_check_reports_missing_sections() {
    let missing = missing_gallery_sections("# empty\n");
    assert_eq!(
        missing.len(),
        ScenarioRegistry::global().names().len(),
        "an empty gallery must miss every scenario"
    );
    // A heading alone (without the reproduction command) does not count.
    let text = "## `acoustic_wave` — something\n";
    assert!(missing_gallery_sections(text).contains(&"acoustic_wave"));
    let text = "## `acoustic_wave` — something\n```sh\naderdg-run --scenario acoustic_wave\n```\n";
    assert!(!missing_gallery_sections(text).contains(&"acoustic_wave"));
}

#[test]
fn run_outputs_series_and_receiver_csv() {
    let run = RunArgs {
        scenario: "loh1".into(),
        request: RunRequest::smoke(),
        ..RunArgs::default()
    };
    let summary = execute_run(&run).unwrap();
    assert_eq!(summary.scenario, "loh1");
    assert_eq!(summary.receivers.len(), 3);

    let mut series = Vec::new();
    write_series_csv(&summary, &mut series).unwrap();
    let series = String::from_utf8(series).unwrap();
    assert!(series.starts_with("t,steps,l2_norm,l2_error\n"));
    // Header + initial point + one per smoke step; loh1 has no exact
    // solution, so the error column is empty.
    assert_eq!(series.lines().count(), 2 + summary.steps);
    assert!(series.lines().nth(1).unwrap().ends_with(','));

    let mut recv = Vec::new();
    write_receivers_csv(&summary, &mut recv).unwrap();
    let recv = String::from_utf8(recv).unwrap();
    assert!(recv.starts_with("receiver,x,y,z,t"));
    assert_eq!(recv.lines().count(), 1 + 3 * summary.steps);

    let text = render_summary(&summary);
    assert!(text.contains("scenario loh1"));
    assert!(text.contains("receiver(s) recorded"));
}

#[test]
fn list_renders_every_scenario() {
    let text = render_list();
    for name in ScenarioRegistry::global().names() {
        assert!(text.contains(name), "`{name}` missing from --list");
    }
}

#[test]
fn help_and_list_commands_parse() {
    assert!(matches!(
        parse_args(&args(&["--help"])).unwrap(),
        Command::Help
    ));
    assert!(matches!(
        parse_args(&args(&["--list"])).unwrap(),
        Command::List
    ));
    assert!(matches!(
        parse_args(&args(&["--list-names"])).unwrap(),
        Command::ListNames
    ));
    let Command::SmokeAll { docs } = parse_args(&args(&["--smoke-all"])).unwrap() else {
        panic!("expected smoke-all");
    };
    assert_eq!(docs, std::path::PathBuf::from("docs/SCENARIOS.md"));
}
